// Huge (2 MiB) pages: PMD-level mappings, compound pages, fork behaviour, and the 512x COW
// amplification the paper attributes to them (§2.3).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace odf {
namespace {

class HugePageTest : public ::testing::Test {
 protected:
  HugePageTest() : p_(kernel_.CreateProcess()) {}

  Pte PmdEntryOf(Process& p, Vaddr va) {
    AddressSpace& as = p.address_space();
    uint64_t* pmd = as.walker().FindEntry(as.pgd(), va, PtLevel::kPmd);
    return pmd == nullptr ? Pte() : LoadEntry(pmd);
  }

  Kernel kernel_;
  Process& p_;
};

TEST_F(HugePageTest, MmapHugeIsAlignedAndPmdMapped) {
  Vaddr va = p_.Mmap(3 * kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  EXPECT_TRUE(IsHugeAligned(va));
  WriteByte(p_, va, std::byte{1});
  Pte pmd = PmdEntryOf(p_, va);
  EXPECT_TRUE(pmd.IsPresent());
  EXPECT_TRUE(pmd.IsHuge());
  EXPECT_TRUE(kernel_.allocator().GetMeta(pmd.frame()).IsCompoundHead());
}

TEST_F(HugePageTest, HugeLengthIsRoundedUpTo2MiB) {
  Vaddr va = p_.Mmap(kHugePageSize + 1, kProtRead | kProtWrite, /*huge=*/true);
  VmArea* vma = p_.address_space().FindVma(va);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->length(), 2 * kHugePageSize);
}

TEST_F(HugePageTest, WriteReadRoundTripAcrossHugePages) {
  Vaddr va = p_.Mmap(2 * kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  FillPattern(p_, va, 2 * kHugePageSize, 21);
  ExpectPattern(p_, va, 2 * kHugePageSize, 21);
}

TEST_F(HugePageTest, DemandFaultAllocatesOneCompoundPer2MiB) {
  Vaddr va = p_.Mmap(4 * kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  WriteByte(p_, va, std::byte{1});
  WriteByte(p_, va + 3 * kHugePageSize, std::byte{1});
  EXPECT_EQ(kernel_.allocator().Stats().allocated_frames,
            2 * (1u << kHugePageOrder) + kernel_.allocator().Stats().page_table_frames);
}

class HugeForkTest : public HugePageTest, public ::testing::WithParamInterface<ForkMode> {};

TEST_P(HugeForkTest, ForkSharesCompoundsWithRefcount) {
  Vaddr va = p_.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  FillPattern(p_, va, kHugePageSize, 22);
  FrameId head = PmdEntryOf(p_, va).frame();
  Process& child = kernel_.Fork(p_, GetParam());
  EXPECT_EQ(kernel_.allocator().GetMeta(head).refcount.load(), 2u);
  EXPECT_FALSE(PmdEntryOf(p_, va).IsWritable());
  EXPECT_FALSE(PmdEntryOf(child, va).IsWritable());
  ExpectPattern(child, va, kHugePageSize, 22);
}

TEST_P(HugeForkTest, WriteCopiesWhole2MiB) {
  Vaddr va = p_.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  FillPattern(p_, va, kHugePageSize, 23);
  Process& child = kernel_.Fork(p_, GetParam());
  uint64_t materialized = kernel_.allocator().Stats().materialized_bytes;
  WriteByte(child, va + 12345, std::byte{0x44});
  EXPECT_EQ(child.address_space().stats().cow_huge_faults, 1u);
  EXPECT_EQ(kernel_.allocator().Stats().materialized_bytes - materialized, kHugePageSize)
      << "a huge COW fault copies the entire 2 MiB page (the paper's 512x cost)";
  EXPECT_EQ(ReadByte(child, va + 12345), std::byte{0x44});
  ExpectPattern(p_, va, kHugePageSize, 23);
}

TEST_P(HugeForkTest, SoleOwnerHugeWriteReuses) {
  Vaddr va = p_.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  FillPattern(p_, va, kHugePageSize, 24);
  Process& child = kernel_.Fork(p_, GetParam());
  kernel_.Exit(child, 0);
  kernel_.Wait(p_);
  WriteByte(p_, va, std::byte{1});
  EXPECT_EQ(p_.address_space().stats().cow_huge_faults, 0u);
  EXPECT_GE(p_.address_space().stats().cow_reuse_faults, 1u);
}

TEST_P(HugeForkTest, NoLeaks) {
  Vaddr va = p_.Mmap(2 * kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  FillPattern(p_, va, 2 * kHugePageSize, 25);
  Process& child = kernel_.Fork(p_, GetParam());
  WriteByte(child, va, std::byte{1});
  kernel_.Exit(child, 0);
  kernel_.Wait(p_);
  p_.Munmap(va, 2 * kHugePageSize);
  kernel_.Exit(p_, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

INSTANTIATE_TEST_SUITE_P(BothForks, HugeForkTest,
                         ::testing::Values(ForkMode::kClassic, ForkMode::kOnDemand),
                         [](const auto& param_info) {
                           return param_info.param == ForkMode::kClassic ? "classic" : "ondemand";
                         });

}  // namespace
}  // namespace odf
