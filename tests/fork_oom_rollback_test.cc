// Transactional fork under allocation failure (docs/robustness.md): Kernel::TryFork either
// fully succeeds (possibly via a graceful-degradation path) or rolls the half-built child
// back completely — parent memory byte-identical, zero leaked frames — and the fault
// handler's typed verdicts (kOom / kSwapIoError) are recoverable by retrying.
#include <gtest/gtest.h>

#include "src/fi/fault_inject.h"
#include "src/mm/fault.h"
#include "src/mm/range_ops.h"
#include "src/trace/metrics.h"
#include "tests/test_util.h"

namespace odf {
namespace {

using fi::FaultInjector;
using fi::ScopedInjection;

class ForkOomRollbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !ODF_FAULT_INJECT_COMPILED
    GTEST_SKIP() << "fault-injection hooks compiled out (ODF_FAULT_INJECT=OFF)";
#endif
    FaultInjector::Global().Reset();
  }
  void TearDown() override { FaultInjector::Global().Reset(); }

  Process& MakeParent(uint64_t length, bool huge = false, uint64_t seed = 21) {
    Process& parent = kernel_.CreateProcess();
    region_ = parent.Mmap(length, kProtRead | kProtWrite, huge);
    region_length_ = length;
    pattern_seed_ = seed;
    FillPattern(parent, region_, length, seed);
    return parent;
  }

  void ExpectParentIntact(Process& parent) {
    ExpectPattern(parent, region_, region_length_, pattern_seed_);
  }

  Pte PmdEntryOf(Process& p, Vaddr va) {
    AddressSpace& as = p.address_space();
    uint64_t* pmd = as.walker().FindEntry(as.pgd(), va, PtLevel::kPmd);
    return pmd == nullptr ? Pte() : LoadEntry(pmd);
  }

  FrameId PteTableOf(Process& p, Vaddr va) {
    Pte entry = PmdEntryOf(p, va);
    return entry.IsPresent() && !entry.IsHuge() ? entry.frame() : kInvalidFrame;
  }

  // Exit + reap a TryFork child so its frames return to the pool.
  void Dispose(Process& parent, Process* child) {
    ASSERT_NE(child, nullptr);
    Pid pid = child->pid();
    kernel_.Exit(*child, 0);
    ASSERT_EQ(kernel_.Wait(parent), pid);
  }

  // Injects a page-table-allocation failure at every call index the fork makes, one fork
  // attempt per index. Each attempt must either roll back completely (parent byte-identical,
  // allocated-frame count restored) or succeed through a degradation path (child sees the
  // parent's data). This is the "injection at each fork phase" satellite: the sweep hits the
  // upper-level walk, the PTE/PMD table copies, and the shared-table install in turn.
  void SweepPageTableAllocFailures(ForkMode mode, uint64_t* rollbacks_out,
                                   uint64_t* degraded_out) {
    Process& parent = MakeParent(4 * kPteTableSpan);  // 4 PTE tables, multi-level skeleton.
    FaultInjector& fi = FaultInjector::Global();
    uint64_t baseline = kernel_.allocator().Stats().allocated_frames;
    uint64_t rollbacks = 0;
    uint64_t degraded = 0;
    for (uint64_t nth = 1; nth <= 64; ++nth) {
      fi.Arm(FiSite::k_page_table_alloc, FiSiteConfig{.nth = nth});
      uint64_t rollback_before = ReadVm(VmCounter::k_fork_rollback);
      uint64_t degrade_before = ReadVm(VmCounter::k_fork_degrade_classic);
      Process* child = kernel_.TryFork(parent, mode);
      uint64_t injected = fi.SiteStats(FiSite::k_page_table_alloc).injected;
      if (child == nullptr) {
        ++rollbacks;
        EXPECT_EQ(ReadVm(VmCounter::k_fork_rollback), rollback_before + 1);
        EXPECT_EQ(kernel_.allocator().Stats().allocated_frames, baseline)
            << "nth=" << nth << ": rollback must free every frame the child held";
        ExpectParentIntact(parent);
      } else {
        if (ReadVm(VmCounter::k_fork_degrade_classic) > degrade_before) {
          ++degraded;
        }
        ExpectPattern(*child, region_, region_length_, pattern_seed_);
        ExpectParentIntact(parent);
        Dispose(parent, child);
        EXPECT_EQ(kernel_.allocator().Stats().allocated_frames, baseline)
            << "nth=" << nth << ": child teardown must free every frame";
      }
      fi.Disarm(FiSite::k_page_table_alloc);
      if (injected == 0) {
        break;  // nth exceeded the fork's page-table allocations: schedule exhausted.
      }
    }
    // A disarmed fork still works and the parent still has its memory.
    Process* child = kernel_.TryFork(parent, mode);
    ASSERT_NE(child, nullptr);
    ExpectPattern(*child, region_, region_length_, pattern_seed_);
    Dispose(parent, child);
    kernel_.Exit(parent, 0);
    EXPECT_TRUE(kernel_.allocator().AllFree()) << "sweep leaked frames";
    *rollbacks_out = rollbacks;
    *degraded_out = degraded;
  }

  Kernel kernel_;
  Vaddr region_ = 0;
  uint64_t region_length_ = 0;
  uint64_t pattern_seed_ = 0;
};

TEST_F(ForkOomRollbackTest, TryForkMatchesForkWhenNothingFails) {
  Process& parent = MakeParent(2 * kPteTableSpan);
  Process* child = kernel_.TryFork(parent, ForkMode::kOnDemand);
  ASSERT_NE(child, nullptr);
  ExpectPattern(*child, region_, region_length_, pattern_seed_);
  Dispose(parent, child);
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, ClassicForkSurvivesFailureAtEveryTableAlloc) {
  uint64_t rollbacks = 0;
  uint64_t degraded = 0;
  SweepPageTableAllocFailures(ForkMode::kClassic, &rollbacks, &degraded);
  // A single injected failure never rolls a classic fork back: whichever table alloc fails,
  // the chunk falls into the zero-allocation sharing fallback (whose own walk retries the
  // chain after the one-shot schedule has fired). That resilience is the point.
  EXPECT_EQ(rollbacks, 0u);
  EXPECT_GT(degraded, 0u) << "a table-alloc failure must degrade to ODF-style sharing";
}

TEST_F(ForkOomRollbackTest, ClassicForkRollsBackWhenFallbackAllocFailsToo) {
  Process& parent = MakeParent(2 * kPteTableSpan);
  uint64_t baseline = kernel_.allocator().Stats().allocated_frames;
  // Every page-table allocation fails: the chunk copy fails AND its sharing fallback cannot
  // build the child's PMD path. Nothing is left to degrade to — transactional rollback.
  ScopedInjection inject(FiSite::k_page_table_alloc, FiSiteConfig{.interval = 1});
  EXPECT_EQ(kernel_.TryFork(parent, ForkMode::kClassic), nullptr);
  EXPECT_EQ(kernel_.allocator().Stats().allocated_frames, baseline);
  ExpectParentIntact(parent);
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, OnDemandForkSurvivesFailureAtEveryTableAlloc) {
  uint64_t rollbacks = 0;
  uint64_t degraded = 0;
  SweepPageTableAllocFailures(ForkMode::kOnDemand, &rollbacks, &degraded);
  EXPECT_GT(rollbacks, 0u) << "a PUD-table alloc failure must roll the fork back";
  EXPECT_GT(degraded, 0u) << "a PMD-table alloc failure must degrade to PMD-table sharing";
}

TEST_F(ForkOomRollbackTest, OnDemandHugeForkSurvivesFailureAtEveryTableAlloc) {
  uint64_t rollbacks = 0;
  uint64_t degraded = 0;
  SweepPageTableAllocFailures(ForkMode::kOnDemandHuge, &rollbacks, &degraded);
  EXPECT_GT(rollbacks, 0u);
}

TEST_F(ForkOomRollbackTest, ClassicForkSharesTableWhenPteTableAllocFails) {
  Process& parent = MakeParent(kPteTableSpan);  // One chunk: child allocs PUD, PMD, PTE.
  uint64_t shared_before = kernel_.fork_counters().pte_tables_shared.load();
  ScopedInjection inject(FiSite::k_page_table_alloc, FiSiteConfig{.nth = 3});
  Process* child = kernel_.TryFork(parent, ForkMode::kClassic);
  ASSERT_NE(child, nullptr) << "PTE-table failure has a zero-allocation sharing fallback";
  EXPECT_EQ(kernel_.fork_counters().pte_tables_shared.load(), shared_before + 1);

  // The degraded chunk looks exactly like an on-demand fork: one shared, write-protected
  // PTE table reached from both PMDs.
  FrameId table = PteTableOf(parent, region_);
  ASSERT_NE(table, kInvalidFrame);
  EXPECT_EQ(PteTableOf(*child, region_), table);
  EXPECT_EQ(kernel_.allocator().GetMeta(table).pt_share_count.load(), 2u);
  EXPECT_FALSE(PmdEntryOf(parent, region_).IsWritable());
  EXPECT_FALSE(PmdEntryOf(*child, region_).IsWritable());

  // And it behaves like one: the child's write COWs the table and leaves the parent intact.
  WriteByte(*child, region_ + 64, std::byte{0xcd});
  EXPECT_NE(PteTableOf(*child, region_), table);
  ExpectParentIntact(parent);
  Dispose(parent, child);
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, OnDemandForkSharesPmdTableWhenItsAllocFails) {
  Process& parent = MakeParent(2 * kPteTableSpan);
  uint64_t pmd_shared_before = kernel_.fork_counters().pmd_tables_shared.load();
  // Call 1 allocates the child PUD table; call 2 would be the child PMD table.
  ScopedInjection inject(FiSite::k_page_table_alloc, FiSiteConfig{.nth = 2});
  Process* child = kernel_.TryFork(parent, ForkMode::kOnDemand);
  ASSERT_NE(child, nullptr) << "PMD-table failure degrades to kOnDemandHuge-style sharing";
  EXPECT_EQ(kernel_.fork_counters().pmd_tables_shared.load(), pmd_shared_before + 1);
  ExpectPattern(*child, region_, region_length_, pattern_seed_);

  // Writes still work on both sides of the shared-PMD path and stay isolated.
  WriteByte(*child, region_ + 128, std::byte{0x42});
  ExpectParentIntact(parent);
  WriteByte(parent, region_ + kPteTableSpan + 7, std::byte{0x43});
  EXPECT_EQ(ReadByte(*child, region_ + 128), std::byte{0x42});
  Dispose(parent, child);
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, OnDemandForkRollsBackWhenPudTableAllocFails) {
  Process& parent = MakeParent(2 * kPteTableSpan);
  uint64_t baseline = kernel_.allocator().Stats().allocated_frames;
  ScopedInjection inject(FiSite::k_page_table_alloc, FiSiteConfig{.nth = 1});
  EXPECT_EQ(kernel_.TryFork(parent, ForkMode::kOnDemand), nullptr)
      << "a PGD-level child-table failure has no sharing fallback";
  EXPECT_EQ(kernel_.allocator().Stats().allocated_frames, baseline);
  ExpectParentIntact(parent);
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, HugeDemandInstallDegradesTo4kPaging) {
  Process& parent = kernel_.CreateProcess();
  Vaddr va = parent.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  uint64_t degrade_before = ReadVm(VmCounter::k_fork_degrade_classic);
  {
    ScopedInjection inject(FiSite::k_compound_alloc, FiSiteConfig{.interval = 1});
    // Every compound allocation fails, so the first touch cannot install a 2 MiB page —
    // it must fall back to plain 4 KiB demand paging instead of failing the access.
    WriteByte(parent, va + 5 * kPageSize, std::byte{0x77});
  }
  EXPECT_GT(ReadVm(VmCounter::k_fork_degrade_classic), degrade_before);
  EXPECT_EQ(ReadByte(parent, va + 5 * kPageSize), std::byte{0x77});
  Pte pmd = PmdEntryOf(parent, va);
  ASSERT_TRUE(pmd.IsPresent());
  EXPECT_FALSE(pmd.IsHuge()) << "the degraded mapping goes through a PTE table";
  // With injection gone the degraded chunk keeps working through its PTE table.
  WriteByte(parent, va + kHugePageSize / 2, std::byte{0x78});
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, HugeCowSplitsMappingWhenCompoundAllocFails) {
  Process& parent = MakeParent(kHugePageSize, /*huge=*/true, /*seed=*/33);
  ASSERT_TRUE(PmdEntryOf(parent, region_).IsHuge());
  Process* child = kernel_.TryFork(parent, ForkMode::kClassic);
  ASSERT_NE(child, nullptr);

  {
    ScopedInjection inject(FiSite::k_compound_alloc, FiSiteConfig{.interval = 1});
    // The huge COW cannot get a 2 MiB frame; it must split the child's mapping into a PTE
    // table of 4 KiB entries and copy only the single faulting page.
    WriteByte(*child, region_ + 3 * kPageSize, std::byte{0x99});
  }
  EXPECT_EQ(ReadByte(*child, region_ + 3 * kPageSize), std::byte{0x99});
  EXPECT_FALSE(PmdEntryOf(*child, region_).IsHuge()) << "child mapping split to 4 KiB";
  EXPECT_TRUE(PmdEntryOf(parent, region_).IsHuge()) << "parent keeps its 2 MiB mapping";
  ExpectParentIntact(parent);
  // The untouched remainder of the split region still reads the original bytes.
  for (uint64_t offset : {uint64_t{0}, 100 * kPageSize, kHugePageSize - kPageSize}) {
    ExpectPattern(*child, region_ + offset, kPageSize, pattern_seed_);
  }
  Dispose(parent, child);
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, FaultReturnsTypedOomAndTheAccessIsRetryable) {
  Process& parent = kernel_.CreateProcess();
  Vaddr va = parent.Mmap(16 * kPageSize, kProtRead | kProtWrite);
  std::byte value{0x11};
  {
    ScopedInjection inject(FiSite::k_frame_alloc, FiSiteConfig{.nth = 1});
    EXPECT_FALSE(parent.WriteMemory(va, std::span(&value, 1)));
    EXPECT_EQ(parent.last_fault_result(), FaultResult::kOom);
    EXPECT_TRUE(IsRecoverableFault(parent.last_fault_result()));
    EXPECT_EQ(parent.address_space().stats().oom_faults, 1u);
    // The schedule fired once; the same access now succeeds (the errno-style retry story).
    EXPECT_TRUE(parent.WriteMemory(va, std::span(&value, 1)));
  }
  EXPECT_EQ(ReadByte(parent, va), value);
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, SwapInErrorIsRecoverableAndKeepsTheSlot) {
  Process& parent = MakeParent(kPteTableSpan, /*huge=*/false, /*seed=*/55);
  // Push cold pages out to the swap device, then find one that left residency.
  ASSERT_GT(kernel_.ReclaimMemory(64), 0u);
  std::vector<uint8_t> residency = parent.Mincore(region_, region_length_);
  uint64_t swapped_page = residency.size();
  for (uint64_t i = 0; i < residency.size(); ++i) {
    if (residency[i] == 2) {  // Mincore: 0 = untouched, 1 = resident, 2 = on swap.
      swapped_page = i;
      break;
    }
  }
  ASSERT_LT(swapped_page, residency.size()) << "reclaim should have swapped something out";
  Vaddr victim = region_ + swapped_page * kPageSize;

  std::byte out{0};
  {
    ScopedInjection inject(FiSite::k_swap_in, FiSiteConfig{.nth = 1});
    EXPECT_FALSE(parent.ReadMemory(victim, std::span(&out, 1)));
    EXPECT_EQ(parent.last_fault_result(), FaultResult::kSwapIoError);
    EXPECT_EQ(parent.address_space().stats().swap_io_faults, 1u);
  }
  // The slot kept its reference, so the retry reads the page back intact.
  ExpectPattern(parent, victim, kPageSize, pattern_seed_);
  ExpectParentIntact(parent);
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, GenuineEnomemUnderFrameLimitRollsForkBack) {
  Process& parent = MakeParent(2 * kPteTableSpan);
  // Block the reclaimer's writeback so the limit is a hard wall, and leave exactly one
  // spare frame: enough for the child's PGD (NOFAIL) but not for the first Try table.
  ScopedInjection block_swap(FiSite::k_swap_out, FiSiteConfig{.interval = 1});
  uint64_t allocated = kernel_.allocator().Stats().allocated_frames;
  kernel_.SetMemoryLimitFrames(allocated + 1);
  EXPECT_EQ(kernel_.TryFork(parent, ForkMode::kOnDemand), nullptr);
  EXPECT_EQ(kernel_.allocator().Stats().allocated_frames, allocated);
  EXPECT_EQ(kernel_.oom_kills(), 0u) << "the forking parent is immune to its own OOM";
  ExpectParentIntact(parent);

  // Lifting the limit makes the identical fork succeed.
  kernel_.SetMemoryLimitFrames(0);
  Process* child = kernel_.TryFork(parent, ForkMode::kOnDemand);
  ASSERT_NE(child, nullptr);
  ExpectPattern(*child, region_, region_length_, pattern_seed_);
  Dispose(parent, child);
  kernel_.Exit(parent, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ForkOomRollbackTest, OomKillerStillFiresForNofailPressureAndCountsAtomically) {
  Process& hog = kernel_.CreateProcess();
  Vaddr hog_va = hog.Mmap(2 * kPteTableSpan, kProtRead | kProtWrite);
  ASSERT_TRUE(hog.TouchRange(hog_va, 2 * kPteTableSpan, AccessType::kWrite));
  Process& small = kernel_.CreateProcess();
  Vaddr small_va = small.Mmap(8 * kPageSize, kProtRead | kProtWrite);

  // Nothing is reclaimable (writeback blocked), so satisfying the small process's fault
  // under the limit requires killing the hog — the classic last resort.
  ScopedInjection block_swap(FiSite::k_swap_out, FiSiteConfig{.interval = 1});
  kernel_.SetMemoryLimitFrames(kernel_.allocator().Stats().allocated_frames + 2);
  ASSERT_TRUE(small.TouchRange(small_va, 8 * kPageSize, AccessType::kWrite));
  EXPECT_EQ(kernel_.oom_kills(), 1u);
  EXPECT_EQ(hog.state(), ProcessState::kZombie);

  kernel_.SetMemoryLimitFrames(0);
  kernel_.Exit(small, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

}  // namespace
}  // namespace odf
