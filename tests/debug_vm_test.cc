// odf::debug verifier coverage: each test seeds one deliberate corruption of the kind
// the paper's mechanism is most exposed to (stale PTEs, drifted refcounts, wrong table
// share counts, writes to freed frames) and asserts VerifyKernel reports it — then
// restores the damage and asserts the kernel verifies clean again, proving the detection
// is specific, not noise. VerifyKernel is compiled into every build; only the poison
// canary subtest and the VM_BUG_ON death test require the debug-vm preset and skip
// themselves elsewhere.
#include <gtest/gtest.h>

#include "src/debug/verify.h"
#include "src/pt/pte.h"
#include "src/pt/walker.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class DebugVmTest : public ::testing::Test {
 protected:
  // Seeded corruptions would make the automatic post-mutation verifier abort the test
  // before its EXPECT; run the verifier by hand instead.
  void SetUp() override { debug::SetAutoVerify(false); }
  void TearDown() override { debug::SetAutoVerify(true); }
};

TEST_F(DebugVmTest, CleanKernelVerifiesOk) {
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr va = parent.Mmap(8 * kPageSize, kProtRead | kProtWrite);
  FillPattern(parent, va, 8 * kPageSize, 1);
  kernel.Fork(parent, ForkMode::kOnDemand);
  debug::VerifyResult result = debug::VerifyKernel(kernel);
  EXPECT_TRUE(result.ok()) << result.Describe();
  EXPECT_EQ(result.processes_audited, 2u);
  EXPECT_GT(result.frames_swept, 0u);
  EXPECT_GT(result.leaf_entries_checked, 0u);
}

TEST_F(DebugVmTest, CatchesRefcountOffByOne) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, kPageSize, 2);
  AddressSpace& as = p.address_space();
  Translation t = as.walker().Translate(as.pgd(), va, AccessType::kRead);
  ASSERT_EQ(t.status, TranslateStatus::kOk);

  kernel.allocator().IncRef(t.frame);  // One reference nothing maps.
  EXPECT_FALSE(debug::VerifyKernel(kernel).ok())
      << "a refcount with no matching mapping must be reported";

  kernel.allocator().DecRef(t.frame);
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

TEST_F(DebugVmTest, CatchesStalePteToFreedFrame) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, kPageSize, 3);
  // A frame that was genuinely allocated and freed: the worst-case dangling target.
  FrameId freed = kernel.allocator().Allocate(kPageFlagAnon);
  kernel.allocator().DecRef(freed);

  AddressSpace& as = p.address_space();
  uint64_t* slot = as.walker().FindEntry(as.pgd(), va, PtLevel::kPte);
  ASSERT_NE(slot, nullptr);
  Pte good = LoadEntry(slot);
  ASSERT_TRUE(good.IsPresent());
  StoreEntry(slot, Pte::Make(freed, good.flags()));
  as.tlb().FlushAll();  // The stale entry must be read from the table, not the TLB.

  EXPECT_FALSE(debug::VerifyKernel(kernel).ok())
      << "a present PTE referencing a freed frame must be reported";

  StoreEntry(slot, good);
  as.tlb().FlushAll();
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

TEST_F(DebugVmTest, CatchesPtShareCountDrift) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kHugePageSize, kProtRead | kProtWrite);
  FillPattern(p, va, kHugePageSize, 4);
  kernel.Fork(p, ForkMode::kOnDemand);  // Shares the PTE table (§3.6).

  AddressSpace& as = p.address_space();
  uint64_t* pmd = as.walker().FindEntry(as.pgd(), va, PtLevel::kPmd);
  ASSERT_NE(pmd, nullptr);
  FrameId table = LoadEntry(pmd).frame();

  kernel.allocator().IncPtShare(table);  // Claims a sharer that does not exist.
  EXPECT_FALSE(debug::VerifyKernel(kernel).ok())
      << "a pt_share_count disagreeing with the sharing topology must be reported";

  EXPECT_EQ(kernel.allocator().DecPtShare(table), 3u);
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

TEST_F(DebugVmTest, CatchesMutatedFreedFrame) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, kPageSize, 5);
  FrameId freed = kernel.allocator().Allocate(kPageFlagAnon);
  kernel.allocator().DecRef(freed);
  PageMeta& meta = kernel.allocator().GetMeta(freed);

  // odf-lint: allow(raw-refcount) — deliberate stale write to a freed frame under test.
  meta.refcount.store(1, std::memory_order_relaxed);
  EXPECT_FALSE(debug::VerifyKernel(kernel).ok())
      << "a freed frame with a nonzero refcount must be reported";
  // odf-lint: allow(raw-refcount) — undo the seeded corruption.
  meta.refcount.store(0, std::memory_order_relaxed);
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

TEST_F(DebugVmTest, CatchesFreedFramePoisonOverwrite) {
  if (!debug::Compiled()) {
    GTEST_SKIP() << "poison canaries exist only in debug-vm builds (-DODF_DEBUG_VM=ON)";
  }
  Kernel kernel;
  FrameId freed = kernel.allocator().Allocate(kPageFlagAnon);
  kernel.allocator().DecRef(freed);
  PageMeta& meta = kernel.allocator().GetMeta(freed);
  ASSERT_EQ(meta.reserved, debug::kPoisonFreed);

  meta.reserved = 0x1234;  // The stale-write the canary is there to catch.
  EXPECT_FALSE(debug::VerifyKernel(kernel).ok())
      << "a clobbered free-frame canary must be reported";

  meta.reserved = debug::kPoisonFreed;
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

TEST_F(DebugVmTest, AutoVerifyRunsAfterForkExitAndZap) {
  if (!debug::Compiled()) {
    GTEST_SKIP() << "the automatic hook compiles out with -DODF_DEBUG_VM=OFF";
  }
  debug::SetAutoVerify(true);
  uint64_t runs_before = debug::GetVerifyStats().runs;
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(4 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, 4 * kPageSize, 6);
  Process& child = kernel.Fork(p, ForkMode::kOnDemand);  // hook: fork
  p.Munmap(va, 4 * kPageSize);                           // hook: zap
  kernel.Exit(child, 0);                                 // hook: exit
  EXPECT_GE(debug::GetVerifyStats().runs - runs_before, 3u)
      << "fork, zap, and exit must each trigger an automatic verification";
}

using DebugVmDeathTest = DebugVmTest;

TEST_F(DebugVmDeathTest, DecRefOnFreedFrameAborts) {
  if (!debug::Compiled()) {
    GTEST_SKIP() << "VM_BUG_ON compiles out with -DODF_DEBUG_VM=OFF";
  }
  FrameAllocator allocator;
  FrameId frame = allocator.Allocate(kPageFlagAnon);
  allocator.DecRef(frame);
  EXPECT_DEATH(allocator.DecRef(frame), "VM_BUG_ON");
}

}  // namespace
}  // namespace odf
