// The §4 "Huge Page Support" extension (ForkMode::kOnDemandHuge): PMD tables are shared too,
// write-protected at the PUD level, and tables COW lazily at two levels.
#include <gtest/gtest.h>

#include "src/mm/range_ops.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class OdfHugeForkTest : public ::testing::Test {
 protected:
  OdfHugeForkTest() : parent_(kernel_.CreateProcess()) {}

  Pte EntryOf(Process& p, Vaddr va, PtLevel level) {
    AddressSpace& as = p.address_space();
    uint64_t* slot = as.walker().FindEntry(as.pgd(), va, level);
    return slot == nullptr ? Pte() : LoadEntry(slot);
  }

  uint32_t ShareCount(FrameId table) {
    return kernel_.allocator().GetMeta(table).pt_share_count.load();
  }

  Kernel kernel_;
  Process& parent_;
};

TEST_F(OdfHugeForkTest, SharesPmdTablesAtPudLevel) {
  Vaddr va = parent_.Mmap(8 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, 8 * kHugePageSize, 1);
  Pte pud_before = EntryOf(parent_, va, PtLevel::kPud);
  ASSERT_TRUE(pud_before.IsPresent());
  FrameId pmd_table = pud_before.frame();

  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemandHuge);
  EXPECT_EQ(EntryOf(child, va, PtLevel::kPud).frame(), pmd_table)
      << "parent and child must reference the same PMD table";
  EXPECT_EQ(ShareCount(pmd_table), 2u);
  EXPECT_FALSE(EntryOf(parent_, va, PtLevel::kPud).IsWritable());
  EXPECT_FALSE(EntryOf(child, va, PtLevel::kPud).IsWritable());
  // The PTE tables below are NOT individually share-counted: the PMD table owns them.
  FrameId pte_table = EntryOf(parent_, va, PtLevel::kPmd).frame();
  EXPECT_EQ(ShareCount(pte_table), 1u);
  EXPECT_EQ(kernel_.fork_counters().pmd_tables_shared, 1u);
  EXPECT_EQ(kernel_.fork_counters().pte_tables_shared, 0u);
}

TEST_F(OdfHugeForkTest, ReadsFlowThroughBothSharedLevels) {
  Vaddr va = parent_.Mmap(4 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, 4 * kHugePageSize, 2);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemandHuge);
  ExpectPattern(child, va, 4 * kHugePageSize, 2);
  EXPECT_EQ(child.address_space().stats().pmd_table_cow_faults, 0u);
  EXPECT_EQ(child.address_space().stats().pte_table_cow_faults, 0u);
}

TEST_F(OdfHugeForkTest, WriteCowsTablesAtTwoLevelsThenThePage) {
  Vaddr va = parent_.Mmap(4 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, 4 * kHugePageSize, 3);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemandHuge);
  FrameId shared_pmd = EntryOf(child, va, PtLevel::kPud).frame();
  FrameId shared_pte = EntryOf(child, va, PtLevel::kPmd).frame();

  WriteByte(child, va + 5, std::byte{0x5e});
  AddressSpace& cas = child.address_space();
  EXPECT_EQ(cas.stats().pmd_table_cow_faults, 1u) << "first: the PMD table is copied";
  EXPECT_EQ(cas.stats().pte_table_cow_faults, 1u) << "second: the PTE table is copied";
  EXPECT_EQ(cas.stats().cow_page_faults, 1u) << "third: the data page is copied";
  EXPECT_NE(EntryOf(child, va, PtLevel::kPud).frame(), shared_pmd);
  EXPECT_NE(EntryOf(child, va, PtLevel::kPmd).frame(), shared_pte);
  // The parent keeps the old tables, now dedicated.
  EXPECT_EQ(EntryOf(parent_, va, PtLevel::kPud).frame(), shared_pmd);
  EXPECT_EQ(ShareCount(shared_pmd), 1u);
  // Isolation both ways.
  EXPECT_EQ(ReadByte(child, va + 5), std::byte{0x5e});
  ExpectPattern(parent_, va, 4 * kHugePageSize, 3);

  // Writes in a different 2 MiB chunk of the SAME 1 GiB span only copy the PTE table now.
  WriteByte(child, va + kHugePageSize, std::byte{0x11});
  EXPECT_EQ(cas.stats().pmd_table_cow_faults, 1u);
  EXPECT_EQ(cas.stats().pte_table_cow_faults, 2u);
}

TEST_F(OdfHugeForkTest, HugeMappingsShareViaPmdTableAndCowWholePages) {
  Vaddr va = parent_.Mmap(4 * kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  FillPattern(parent_, va, 2 * kHugePageSize, 4);
  Pte pmd_before = EntryOf(parent_, va, PtLevel::kPmd);
  ASSERT_TRUE(pmd_before.IsHuge());
  FrameId head = pmd_before.frame();

  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemandHuge);
  // Unlike kOnDemand, the fork did NOT touch the compound page's refcount — the shared PMD
  // table stands in for it.
  EXPECT_EQ(kernel_.allocator().GetMeta(head).refcount.load(), 1u);
  EXPECT_EQ(kernel_.fork_counters().huge_entries_copied, 0u);

  WriteByte(child, va + 100, std::byte{0x77});
  // The PMD-table dedication takes the compound reference; then the 2 MiB page COWs.
  EXPECT_EQ(child.address_space().stats().pmd_table_cow_faults, 1u);
  EXPECT_EQ(child.address_space().stats().cow_huge_faults, 1u);
  EXPECT_EQ(ReadByte(child, va + 100), std::byte{0x77});
  ExpectPattern(parent_, va, 2 * kHugePageSize, 4);
}

TEST_F(OdfHugeForkTest, SoleSharerGetsPudFixup) {
  Vaddr va = parent_.Mmap(kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, kHugePageSize, 5);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemandHuge);
  WriteByte(child, va, std::byte{1});  // Child dedicates its chain.
  WriteByte(parent_, va + kPageSize, std::byte{2});
  AddressSpace& pas = parent_.address_space();
  EXPECT_EQ(pas.stats().pmd_table_cow_faults, 0u);
  EXPECT_EQ(pas.stats().pmd_table_fixups, 1u) << "sole sharer re-enables the PUD write bit";
  EXPECT_TRUE(EntryOf(parent_, va, PtLevel::kPud).IsWritable());
}

TEST_F(OdfHugeForkTest, UnmapDropsWholePmdTableReference) {
  Vaddr va = parent_.Mmap(8 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, 8 * kHugePageSize, 6);
  FrameId pmd_table = EntryOf(parent_, va, PtLevel::kPud).frame();
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemandHuge);
  ASSERT_EQ(ShareCount(pmd_table), 2u);

  child.Munmap(va, 8 * kHugePageSize);
  EXPECT_EQ(ShareCount(pmd_table), 1u);
  EXPECT_EQ(child.address_space().stats().pmd_table_cow_faults, 0u)
      << "a full unmap must drop the span reference without copying";
  ExpectPattern(parent_, va, 8 * kHugePageSize, 6);
}

TEST_F(OdfHugeForkTest, PartialUnmapDedicatesPmdTable) {
  Vaddr va = parent_.Mmap(8 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, 8 * kHugePageSize, 7);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemandHuge);

  child.Munmap(va, 2 * kHugePageSize);  // The rest of the mapping is still live.
  EXPECT_EQ(child.address_space().stats().pmd_table_cow_faults, 1u);
  std::byte probe{0};
  EXPECT_FALSE(child.ReadMemory(va, std::span(&probe, 1)));
  ExpectPattern(child, va + 2 * kHugePageSize, 6 * kHugePageSize, 7);
  ExpectPattern(parent_, va, 8 * kHugePageSize, 7);
}

TEST_F(OdfHugeForkTest, ClassicForkAfterHugeOdfForkStaysCorrect) {
  Vaddr va = parent_.Mmap(2 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, 2 * kHugePageSize, 8);
  Process& odf_child = kernel_.Fork(parent_, ForkMode::kOnDemandHuge);
  Process& classic_child = kernel_.Fork(parent_, ForkMode::kClassic);
  WriteByte(classic_child, va, std::byte{0xaa});
  WriteByte(parent_, va + kPageSize, std::byte{0xbb});
  ExpectPattern(odf_child, va, 2 * kHugePageSize, 8);
  EXPECT_EQ(ReadByte(classic_child, va), std::byte{0xaa});
}

TEST_F(OdfHugeForkTest, GenerationsOfSharingAndExitsLeakNothing) {
  Vaddr anon = parent_.Mmap(6 * kHugePageSize, kProtRead | kProtWrite);
  Vaddr huge = parent_.Mmap(4 * kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  FillPattern(parent_, anon, 6 * kHugePageSize, 9);
  FillPattern(parent_, huge, kHugePageSize, 10);

  Process& c1 = kernel_.Fork(parent_, ForkMode::kOnDemandHuge);
  Process& c2 = kernel_.Fork(c1, ForkMode::kOnDemandHuge);
  Process& c3 = kernel_.Fork(c2, ForkMode::kOnDemand);  // Mixed modes in one lineage.
  WriteByte(c1, anon, std::byte{1});
  WriteByte(c2, huge + 7, std::byte{2});
  WriteByte(c3, anon + 3 * kHugePageSize, std::byte{3});
  ExpectPattern(parent_, anon, 6 * kHugePageSize, 9);
  ExpectPattern(parent_, huge, kHugePageSize, 10);

  kernel_.Exit(parent_, 0);
  kernel_.Exit(c2, 0);
  ExpectPattern(c3, anon + kHugePageSize, kHugePageSize, 9);  // Still served via survivors.
  kernel_.Exit(c1, 0);
  kernel_.Exit(c3, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(OdfHugeForkTest, InvocationTouchesFarFewerTablesThanOdf) {
  // 4 GiB mapping -> 2048 PTE tables but only 4 PMD tables.
  Vaddr va = parent_.Mmap(4ULL << 30, kProtRead | kProtWrite);
  parent_.address_space().PopulateRange(va, 4ULL << 30);
  kernel_.Fork(parent_, ForkMode::kOnDemandHuge);
  EXPECT_EQ(kernel_.fork_counters().pte_tables_shared, 0u);
  EXPECT_LE(kernel_.fork_counters().pmd_tables_shared, 5u);
  EXPECT_GE(kernel_.fork_counters().pmd_tables_shared, 4u);
}

}  // namespace
}  // namespace odf
