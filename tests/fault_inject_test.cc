// odf::fi — the deterministic fault injector itself: schedule modes, determinism of the
// (seed, site, call) decision, the procfs Configure knob, and the FrameAllocator Try paths
// it hooks (docs/robustness.md).
#include "src/fi/fault_inject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/phys/frame_allocator.h"
#include "src/phys/page_meta.h"

namespace odf {
namespace {

using fi::FaultInjector;
using fi::ScopedInjection;

// Every test leaves the (process-global) injector the way it found it.
class FaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectTest, SiteNamesRoundTrip) {
  for (size_t i = 0; i < kFiSiteCount; ++i) {
    FiSite site = static_cast<FiSite>(i);
    FiSite parsed = FiSite::kCount;
    ASSERT_TRUE(ParseFiSite(FiSiteName(site), &parsed)) << FiSiteName(site);
    EXPECT_EQ(parsed, site);
  }
  FiSite parsed = FiSite::kCount;
  EXPECT_FALSE(ParseFiSite("no_such_site", &parsed));
}

TEST_F(FaultInjectTest, DisarmedSiteNeverFailsAndCountsNothing) {
  FaultInjector& fi = FaultInjector::Global();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fi.ShouldFail(FiSite::k_frame_alloc));
  }
  EXPECT_EQ(fi.SiteStats(FiSite::k_frame_alloc).calls, 0u)
      << "disarmed sites must not accumulate call counts";
  EXPECT_FALSE(fi::g_fi_armed.load());
}

TEST_F(FaultInjectTest, NthModeFailsExactlyTheNthCallOnce) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm(FiSite::k_frame_alloc, FiSiteConfig{.nth = 5});
  for (uint64_t call = 1; call <= 20; ++call) {
    EXPECT_EQ(fi.ShouldFail(FiSite::k_frame_alloc), call == 5) << "call " << call;
  }
  FiSiteStats stats = fi.SiteStats(FiSite::k_frame_alloc);
  EXPECT_EQ(stats.calls, 20u);
  EXPECT_EQ(stats.injected, 1u);
}

TEST_F(FaultInjectTest, ArmingRestartsTheCallCounter) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm(FiSite::k_swap_out, FiSiteConfig{.nth = 2});
  EXPECT_FALSE(fi.ShouldFail(FiSite::k_swap_out));
  EXPECT_TRUE(fi.ShouldFail(FiSite::k_swap_out));
  // Re-arming makes `nth` relative to now, not to the first arming.
  fi.Arm(FiSite::k_swap_out, FiSiteConfig{.nth = 2});
  EXPECT_FALSE(fi.ShouldFail(FiSite::k_swap_out));
  EXPECT_TRUE(fi.ShouldFail(FiSite::k_swap_out));
}

TEST_F(FaultInjectTest, IntervalModeFailsEveryKthCall) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm(FiSite::k_page_table_alloc, FiSiteConfig{.interval = 3});
  for (uint64_t call = 1; call <= 12; ++call) {
    EXPECT_EQ(fi.ShouldFail(FiSite::k_page_table_alloc), call % 3 == 0) << "call " << call;
  }
  EXPECT_EQ(fi.SiteStats(FiSite::k_page_table_alloc).injected, 4u);
}

TEST_F(FaultInjectTest, TimesBudgetCapsInjections) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Arm(FiSite::k_compound_alloc, FiSiteConfig{.interval = 1, .times = 3});
  uint64_t injected = 0;
  for (int call = 0; call < 10; ++call) {
    injected += fi.ShouldFail(FiSite::k_compound_alloc) ? 1u : 0u;
  }
  EXPECT_EQ(injected, 3u) << "times=3 must stop the every-call schedule after 3 failures";
  EXPECT_EQ(fi.TotalInjected(), 3u);
}

TEST_F(FaultInjectTest, ProbabilityModeIsDeterministicInSeedAndCallIndex) {
  FaultInjector& fi = FaultInjector::Global();
  constexpr int kCalls = 2000;

  auto run_schedule = [&fi](uint64_t seed) {
    fi.Reset(seed);
    fi.Arm(FiSite::k_frame_alloc, FiSiteConfig{.probability = 0.1});
    std::vector<bool> decisions;
    decisions.reserve(kCalls);
    for (int i = 0; i < kCalls; ++i) {
      decisions.push_back(fi.ShouldFail(FiSite::k_frame_alloc));
    }
    return decisions;
  };

  std::vector<bool> first = run_schedule(42);
  std::vector<bool> replay = run_schedule(42);
  EXPECT_EQ(first, replay) << "same seed must replay the exact same schedule";
  EXPECT_NE(first, run_schedule(43)) << "a different seed must give a different schedule";

  // p = 0.1 over 2000 draws: expect roughly 200 hits; a wide band guards against a broken
  // hash (all-true / all-false) without flaking.
  auto hits = static_cast<uint64_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(hits, 100u);
  EXPECT_LT(hits, 350u);
}

TEST_F(FaultInjectTest, ProbabilityScheduleIsIndependentOfOtherSites) {
  FaultInjector& fi = FaultInjector::Global();
  constexpr int kCalls = 200;

  // Run A: frame_alloc alone. Run B: the same frame_alloc calls interleaved with swap_out
  // traffic. The per-site decision hashes (seed, site, per-site call index), so the
  // frame_alloc schedule must not shift.
  auto run_schedule = [&fi](bool interleave) {
    fi.Reset(7);
    fi.Arm(FiSite::k_frame_alloc, FiSiteConfig{.probability = 0.2});
    fi.Arm(FiSite::k_swap_out, FiSiteConfig{.probability = 0.5});
    std::vector<bool> decisions;
    for (int i = 0; i < kCalls; ++i) {
      if (interleave) {
        fi.ShouldFail(FiSite::k_swap_out);
        fi.ShouldFail(FiSite::k_swap_out);
      }
      decisions.push_back(fi.ShouldFail(FiSite::k_frame_alloc));
    }
    return decisions;
  };

  EXPECT_EQ(run_schedule(false), run_schedule(true))
      << "cross-site interleaving must not perturb a site's schedule (replay stability)";
}

TEST_F(FaultInjectTest, ModesCompose) {
  FaultInjector& fi = FaultInjector::Global();
  // nth=2 and interval=5 together: calls 2, 5, 10 fail in the first 10.
  fi.Arm(FiSite::k_swap_in, FiSiteConfig{.nth = 2, .interval = 5});
  std::vector<uint64_t> failed;
  for (uint64_t call = 1; call <= 10; ++call) {
    if (fi.ShouldFail(FiSite::k_swap_in)) {
      failed.push_back(call);
    }
  }
  EXPECT_EQ(failed, (std::vector<uint64_t>{2, 5, 10}));
}

TEST_F(FaultInjectTest, ScopedInjectionDisarmsOnExit) {
  {
    ScopedInjection inject(FiSite::k_frame_alloc, FiSiteConfig{.interval = 1});
    EXPECT_TRUE(FaultInjector::Global().IsArmed(FiSite::k_frame_alloc));
    EXPECT_TRUE(FaultInjector::Global().ShouldFail(FiSite::k_frame_alloc));
  }
  EXPECT_FALSE(FaultInjector::Global().IsArmed(FiSite::k_frame_alloc));
  EXPECT_FALSE(fi::g_fi_armed.load());
  EXPECT_FALSE(FaultInjector::Global().ShouldFail(FiSite::k_frame_alloc));
}

TEST_F(FaultInjectTest, ConfigureAppliesSpecTokens) {
  FaultInjector& fi = FaultInjector::Global();
  std::string error;
  ASSERT_TRUE(fi.Configure(
      "seed=99 site=frame_alloc probability=0.25 times=4 site=swap_in nth=3", &error))
      << error;
  EXPECT_EQ(fi.seed(), 99u);
  EXPECT_TRUE(fi.IsArmed(FiSite::k_frame_alloc));
  FiSiteConfig frame = fi.SiteConfig(FiSite::k_frame_alloc);
  EXPECT_DOUBLE_EQ(frame.probability, 0.25);
  EXPECT_EQ(frame.times, 4);
  EXPECT_TRUE(fi.IsArmed(FiSite::k_swap_in));
  EXPECT_EQ(fi.SiteConfig(FiSite::k_swap_in).nth, 3u);
  EXPECT_FALSE(fi.IsArmed(FiSite::k_compound_alloc));

  ASSERT_TRUE(fi.Configure("site=frame_alloc off", &error)) << error;
  EXPECT_FALSE(fi.IsArmed(FiSite::k_frame_alloc));
  EXPECT_TRUE(fi.IsArmed(FiSite::k_swap_in)) << "'off' only disarms the named site";

  ASSERT_TRUE(fi.Configure("reset", &error)) << error;
  EXPECT_FALSE(fi.IsArmed(FiSite::k_swap_in));
  EXPECT_EQ(fi.seed(), FaultInjector::kDefaultSeed);
}

TEST_F(FaultInjectTest, ConfigureRejectsMalformedSpecs) {
  FaultInjector& fi = FaultInjector::Global();
  std::string error;
  EXPECT_FALSE(fi.Configure("site=not_a_site nth=1", &error));
  EXPECT_NE(error.find("unknown site"), std::string::npos) << error;
  EXPECT_FALSE(fi.Configure("nth=1", &error));
  EXPECT_NE(error.find("before any site="), std::string::npos) << error;
  EXPECT_FALSE(fi.Configure("site=frame_alloc nth=banana", &error));
  EXPECT_FALSE(fi.Configure("site=frame_alloc wibble=1", &error));
  EXPECT_FALSE(fi.Configure("bare-token", &error));
}

TEST_F(FaultInjectTest, FormatStatusShowsSeedArmingAndCounts) {
  FaultInjector& fi = FaultInjector::Global();
  fi.SetSeed(1234);
  fi.Arm(FiSite::k_page_table_alloc, FiSiteConfig{.nth = 2});
  fi.ShouldFail(FiSite::k_page_table_alloc);
  fi.ShouldFail(FiSite::k_page_table_alloc);
  std::string status = fi.FormatStatus();
  EXPECT_NE(status.find("seed 1234"), std::string::npos) << status;
  EXPECT_NE(status.find("page_table_alloc probability"), std::string::npos) << status;
  EXPECT_NE(status.find("calls 2 injected 1"), std::string::npos) << status;
  EXPECT_NE(status.find("frame_alloc off"), std::string::npos) << status;
}

// --- The hook side: FrameAllocator's fallible entry points under injection. ---

#if ODF_FAULT_INJECT_COMPILED

TEST_F(FaultInjectTest, TryAllocateFailsCleanlyUnderInjection) {
  FrameAllocator allocator;
  FrameId warm = allocator.Allocate(kPageFlagAnon);  // Warm the pool before arming.
  ASSERT_NE(warm, kInvalidFrame);
  uint64_t allocated_before = allocator.Stats().allocated_frames;

  {
    ScopedInjection inject(FiSite::k_frame_alloc, FiSiteConfig{.nth = 1});
    EXPECT_EQ(allocator.TryAllocate(kPageFlagAnon), kInvalidFrame);
    EXPECT_EQ(allocator.Stats().allocated_frames, allocated_before)
        << "an injected failure must not consume a frame";
    // The schedule only fails the first call; the retry succeeds.
    FrameId frame = allocator.TryAllocate(kPageFlagAnon);
    ASSERT_NE(frame, kInvalidFrame);
    allocator.DecRef(frame);
  }

  allocator.DecRef(warm);
  EXPECT_TRUE(allocator.AllFree());
}

TEST_F(FaultInjectTest, InjectionFailsTheLogicalAllocationEvenOnACacheHit) {
  FrameAllocator allocator;
  // Park a frame in this thread's per-CPU cache so the next TryAllocate would be a pure
  // cache hit (no pool lock, no ENOMEM possible).
  FrameId warm = allocator.Allocate(kPageFlagAnon);
  ASSERT_NE(warm, kInvalidFrame);
  allocator.DecRef(warm);
  uint64_t cached_before = allocator.CachedFrames();
  ASSERT_GT(cached_before, 0u) << "the freed frame must have parked in the cache";

  {
    ScopedInjection inject(FiSite::k_frame_alloc, FiSiteConfig{.nth = 1});
    // The injector is consulted before the cache: the logical allocation fails even though
    // a cached frame was sitting ready, and the cached frame is not consumed.
    EXPECT_EQ(allocator.TryAllocate(kPageFlagAnon), kInvalidFrame);
    EXPECT_EQ(allocator.CachedFrames(), cached_before)
        << "an injected failure must not consume a cached frame";
    EXPECT_EQ(FaultInjector::Global().SiteStats(FiSite::k_frame_alloc).injected, 1u);
    // The nth=1 schedule is spent: the retry is served from the cache.
    FrameId frame = allocator.TryAllocate(kPageFlagAnon);
    ASSERT_EQ(frame, warm) << "the retry must recycle the parked frame";
    allocator.DecRef(frame);
  }
  EXPECT_TRUE(allocator.AllFree());
}

TEST_F(FaultInjectTest, TryAllocateCompoundConsultsTheCompoundSite) {
  FrameAllocator allocator;
  ScopedInjection inject(FiSite::k_compound_alloc, FiSiteConfig{.nth = 1});
  EXPECT_EQ(allocator.TryAllocateCompound(kPageFlagAnon), kInvalidFrame);
  // frame_alloc was never consulted; compound_alloc was.
  EXPECT_EQ(FaultInjector::Global().SiteStats(FiSite::k_compound_alloc).injected, 1u);
  FrameId head = allocator.TryAllocateCompound(kPageFlagAnon);
  ASSERT_NE(head, kInvalidFrame);
  allocator.DecRef(head);
  EXPECT_TRUE(allocator.AllFree());
}

TEST_F(FaultInjectTest, PageTableAllocationsUseTheirOwnSite) {
  FrameAllocator allocator;
  ScopedInjection inject(FiSite::k_page_table_alloc, FiSiteConfig{.interval = 1});
  // Data-frame allocation is unaffected by a page_table_alloc schedule...
  FrameId data = allocator.TryAllocate(kPageFlagAnon);
  ASSERT_NE(data, kInvalidFrame);
  // ...while a page-table allocation fails.
  EXPECT_EQ(allocator.TryAllocate(kPageFlagPageTable), kInvalidFrame);
  EXPECT_EQ(FaultInjector::Global().SiteStats(FiSite::k_page_table_alloc).injected, 1u);
  EXPECT_EQ(FaultInjector::Global().SiteStats(FiSite::k_frame_alloc).calls, 0u);
  allocator.DecRef(data);
  EXPECT_TRUE(allocator.AllFree());
}

TEST_F(FaultInjectTest, NofailAllocateNeverConsultsInjection) {
  FrameAllocator allocator;
  ScopedInjection inject(FiSite::k_frame_alloc, FiSiteConfig{.interval = 1});
  // The NOFAIL path ignores an every-call schedule entirely (GFP_NOFAIL analog).
  FrameId frame = allocator.Allocate(kPageFlagAnon);
  ASSERT_NE(frame, kInvalidFrame);
  EXPECT_EQ(FaultInjector::Global().SiteStats(FiSite::k_frame_alloc).calls, 0u);
  allocator.DecRef(frame);
  EXPECT_TRUE(allocator.AllFree());
}

#else  // !ODF_FAULT_INJECT_COMPILED

TEST_F(FaultInjectTest, CompiledOutShouldInjectIsConstantFalse) {
  ScopedInjection inject(FiSite::k_frame_alloc, FiSiteConfig{.interval = 1});
  EXPECT_FALSE(fi::ShouldInject(FiSite::k_frame_alloc));
  FrameAllocator allocator;
  FrameId frame = allocator.TryAllocate(kPageFlagAnon);
  EXPECT_NE(frame, kInvalidFrame) << "with hooks compiled out, Try paths fail only on ENOMEM";
  allocator.DecRef(frame);
  EXPECT_TRUE(allocator.AllFree());
}

#endif  // ODF_FAULT_INJECT_COMPILED

}  // namespace
}  // namespace odf
