// Property-based testing: random interleavings of writes, reads, forks (both modes), unmaps,
// remaps and exits are executed against the simulator AND against a trivially-correct shadow
// model (a flat per-process byte map). Any divergence — a COW leak between parent and child,
// a stale TLB translation, a mis-refcounted page — shows up as a content mismatch.
//
// This checks the paper's core claim directly: on-demand-fork has EXACTLY fork semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tests/test_util.h"

namespace odf {
namespace {

// Shadow of one process: sparse byte contents plus the mapped regions.
struct ShadowProcess {
  Pid pid;
  std::map<Vaddr, uint64_t> regions;  // start -> length
  std::unordered_map<Vaddr, std::byte> bytes;

  bool Mapped(Vaddr va) const {
    auto it = regions.upper_bound(va);
    if (it == regions.begin()) {
      return false;
    }
    --it;
    return va >= it->first && va < it->first + it->second;
  }

  std::byte At(Vaddr va) const {
    auto it = bytes.find(va);
    return it == bytes.end() ? std::byte{0} : it->second;
  }
};

class ForkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForkPropertyTest, RandomOpSequenceMatchesShadowModel) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Kernel kernel;

  struct Pair {
    Process* process;
    std::unique_ptr<ShadowProcess> shadow;
  };
  std::vector<Pair> live;

  Process& root = kernel.CreateProcess();
  auto root_shadow = std::make_unique<ShadowProcess>();
  root_shadow->pid = root.pid();
  live.push_back({&root, std::move(root_shadow)});

  // Root maps a handful of regions spanning several PTE-table chunks.
  for (int r = 0; r < 3; ++r) {
    uint64_t length = (rng.NextInRange(1, 3)) * kHugePageSize + rng.NextInRange(0, 16) * kPageSize;
    Vaddr va = root.Mmap(length, kProtRead | kProtWrite);
    live[0].shadow->regions[va] = length;
  }

  auto random_mapped_va = [&](ShadowProcess& shadow) -> std::optional<Vaddr> {
    if (shadow.regions.empty()) {
      return std::nullopt;
    }
    auto it = shadow.regions.begin();
    std::advance(it, static_cast<long>(rng.NextBelow(shadow.regions.size())));
    return it->first + rng.NextBelow(it->second);
  };

  const int kOps = 400;
  for (int op = 0; op < kOps; ++op) {
    size_t idx = rng.NextBelow(live.size());
    Pair& pair = live[idx];
    Process& p = *pair.process;
    ShadowProcess& shadow = *pair.shadow;

    switch (rng.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Write a short run of bytes.
        auto va = random_mapped_va(shadow);
        if (!va) {
          break;
        }
        uint64_t run = rng.NextInRange(1, 64);
        for (uint64_t i = 0; i < run; ++i) {
          if (!shadow.Mapped(*va + i)) {
            run = i;
            break;
          }
        }
        if (run == 0) {
          break;
        }
        std::vector<std::byte> data(run);
        for (auto& b : data) {
          b = static_cast<std::byte>(rng.Next());
        }
        ASSERT_TRUE(p.WriteMemory(*va, data));
        for (uint64_t i = 0; i < run; ++i) {
          shadow.bytes[*va + i] = data[i];
        }
        break;
      }
      case 4:
      case 5: {  // Read-verify a short run.
        auto va = random_mapped_va(shadow);
        if (!va) {
          break;
        }
        uint64_t run = rng.NextInRange(1, 64);
        for (uint64_t i = 0; i < run; ++i) {
          if (!shadow.Mapped(*va + i)) {
            run = i;
            break;
          }
        }
        if (run == 0) {
          break;
        }
        std::vector<std::byte> data(run);
        ASSERT_TRUE(p.ReadMemory(*va, data));
        for (uint64_t i = 0; i < run; ++i) {
          ASSERT_EQ(data[i], shadow.At(*va + i))
              << "divergence at pid " << p.pid() << " va " << *va + i << " seed " << seed
              << " op " << op;
        }
        break;
      }
      case 6: {  // Fork (random mode).
        if (live.size() >= 6) {
          break;
        }
        static constexpr ForkMode kModes[] = {ForkMode::kClassic, ForkMode::kOnDemand,
                                              ForkMode::kOnDemandHuge};
        ForkMode mode = kModes[rng.NextBelow(3)];
        Process& child = kernel.Fork(p, mode);
        auto child_shadow = std::make_unique<ShadowProcess>(shadow);  // Deep copy.
        child_shadow->pid = child.pid();
        live.push_back({&child, std::move(child_shadow)});
        break;
      }
      case 7: {  // Unmap a random whole region or a prefix/suffix of it.
        if (shadow.regions.size() <= 1) {
          break;
        }
        auto it = shadow.regions.begin();
        std::advance(it, static_cast<long>(rng.NextBelow(shadow.regions.size())));
        Vaddr start = it->first;
        uint64_t length = it->second;
        uint64_t cut = rng.NextInRange(1, length / kPageSize) * kPageSize;
        if (rng.NextBool()) {  // Unmap prefix.
          p.Munmap(start, cut);
          shadow.regions.erase(it);
          if (cut < length) {
            shadow.regions[start + cut] = length - cut;
          }
          for (Vaddr va = start; va < start + cut; ++va) {
            shadow.bytes.erase(va);
          }
        } else {  // Unmap suffix.
          p.Munmap(start + length - cut, cut);
          it->second = length - cut;
          if (it->second == 0) {
            shadow.regions.erase(it);
          }
          for (Vaddr va = start + length - cut; va < start + length; ++va) {
            shadow.bytes.erase(va);
          }
        }
        break;
      }
      case 8: {  // Map a fresh region.
        if (shadow.regions.size() >= 8) {
          break;
        }
        uint64_t length = rng.NextInRange(1, 2) * kHugePageSize;
        Vaddr va = p.Mmap(length, kProtRead | kProtWrite);
        shadow.regions[va] = length;
        break;
      }
      case 9: {  // Exit a non-root process.
        if (idx == 0 || live.size() <= 1) {
          break;
        }
        kernel.Exit(p, 0);
        live.erase(live.begin() + static_cast<long>(idx));
        break;
      }
    }
  }

  // Final full verification of every live process against its shadow.
  for (Pair& pair : live) {
    for (const auto& [start, length] : pair.shadow->regions) {
      std::vector<std::byte> data(length);
      ASSERT_TRUE(pair.process->ReadMemory(start, data));
      for (uint64_t i = 0; i < length; ++i) {
        ASSERT_EQ(data[i], pair.shadow->At(start + i))
            << "final divergence pid " << pair.process->pid() << " va " << start + i
            << " seed " << seed;
      }
    }
  }

  // Tear everything down and verify nothing leaked.
  for (Pair& pair : live) {
    kernel.Exit(*pair.process, 0);
  }
  EXPECT_TRUE(kernel.allocator().AllFree()) << "leak with seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace odf
