#include <gtest/gtest.h>

#include "src/util/histogram.h"
#include "src/util/latency_recorder.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table_printer.h"

namespace odf {
namespace {

TEST(StatsTest, SummarizeBasics) {
  const double samples[] = {1, 2, 3, 4, 5};
  StatsSummary s = Summarize(samples);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(StatsTest, EmptyInput) {
  StatsSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const double samples[] = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 25.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const double samples[] = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 10.0);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  Rng rng(7);
  std::vector<double> samples;
  RunningStats running;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble() * 100;
    samples.push_back(v);
    running.Add(v);
  }
  StatsSummary batch = Summarize(samples);
  EXPECT_NEAR(running.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(running.stddev(), batch.stddev, 1e-9);
  EXPECT_EQ(running.min(), batch.min);
  EXPECT_EQ(running.max(), batch.max);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundsRespected) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextInRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RoughlyUniform) {
  Rng rng(9);
  int buckets[10] = {};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.NextBelow(10)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 50);
  }
}

TEST(LatencyRecorderTest, RecordsAndSummarizes) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) {
    recorder.Record(i);
  }
  EXPECT_EQ(recorder.count(), 100u);
  EXPECT_DOUBLE_EQ(recorder.Summary().mean, 50.5);
  EXPECT_NEAR(recorder.PercentileValue(99), 99.0, 1.0);
}

TEST(HistogramTest, PercentilesApproximateStoredSamples) {
  LatencyHistogram histogram;
  for (int i = 0; i < 10000; ++i) {
    histogram.RecordMicros(100.0);  // 100us = 1e5 ns.
  }
  EXPECT_EQ(histogram.TotalCount(), 10000u);
  double p50 = histogram.PercentileMicros(50);
  EXPECT_GT(p50, 80.0);
  EXPECT_LT(p50, 120.0);
  EXPECT_NEAR(histogram.MeanMicros(), 100.0, 1.0);
}

TEST(HistogramTest, OrderingOfPercentiles) {
  LatencyHistogram histogram;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    histogram.RecordMicros(rng.NextDouble() * 1000.0);
  }
  double p50 = histogram.PercentileMicros(50);
  double p90 = histogram.PercentileMicros(90);
  double p99 = histogram.PercentileMicros(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
}

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "123456"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TablePrinterTest, RendersCsvWithQuoting) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"plain", "1"});
  table.AddRow({"with,comma", "say \"hi\""});
  std::string csv = table.RenderCsv();
  EXPECT_EQ(csv,
            "Name,Value\n"
            "plain,1\n"
            "\"with,comma\",\"say \"\"hi\"\"\"\n");
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatPercent(0.4567, 1), "45.7%");
}

}  // namespace
}  // namespace odf
