// Semantics of classic fork (the baseline): eager PTE copying, per-page refcounts, data COW.
#include <gtest/gtest.h>

#include "src/mm/range_ops.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class ClassicForkTest : public ::testing::Test {
 protected:
  ClassicForkTest() : parent_(kernel_.CreateProcess()) {}

  Vaddr MapFilled(uint64_t length, uint64_t seed = 1) {
    Vaddr va = parent_.Mmap(length, kProtRead | kProtWrite);
    FillPattern(parent_, va, length, seed);
    return va;
  }

  FrameId FrameOf(Process& p, Vaddr va) {
    AddressSpace& as = p.address_space();
    Translation t = as.walker().Translate(as.pgd(), va, AccessType::kRead);
    return t.status == TranslateStatus::kOk ? t.frame : kInvalidFrame;
  }

  Kernel kernel_;
  Process& parent_;
};

TEST_F(ClassicForkTest, ChildGetsPrivateTablesSharedPages) {
  Vaddr va = MapFilled(2 * kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kClassic);

  AddressSpace& pas = parent_.address_space();
  AddressSpace& cas = child.address_space();
  uint64_t* p_pmd = pas.walker().FindEntry(pas.pgd(), va, PtLevel::kPmd);
  uint64_t* c_pmd = cas.walker().FindEntry(cas.pgd(), va, PtLevel::kPmd);
  ASSERT_NE(p_pmd, nullptr);
  ASSERT_NE(c_pmd, nullptr);
  EXPECT_NE(LoadEntry(p_pmd).frame(), LoadEntry(c_pmd).frame())
      << "classic fork must give the child its own PTE tables";
  EXPECT_TRUE(LoadEntry(p_pmd).IsWritable()) << "classic fork does not protect the PMD";

  // Data pages are shared (same frame) with refcount 2 and write-protected on both sides.
  FrameId p_frame = FrameOf(parent_, va);
  FrameId c_frame = FrameOf(child, va);
  EXPECT_EQ(p_frame, c_frame);
  EXPECT_EQ(kernel_.allocator().GetMeta(p_frame).refcount.load(), 2u);
}

TEST_F(ClassicForkTest, EveryPteEntryIsCopied) {
  MapFilled(3 * kHugePageSize);
  kernel_.Fork(parent_, ForkMode::kClassic);
  EXPECT_EQ(kernel_.fork_counters().pte_entries_copied, 3 * kEntriesPerTable);
  EXPECT_EQ(kernel_.fork_counters().pte_tables_shared, 0u);
}

TEST_F(ClassicForkTest, ChildSeesParentData) {
  Vaddr va = MapFilled(kHugePageSize, /*seed=*/5);
  Process& child = kernel_.Fork(parent_, ForkMode::kClassic);
  ExpectPattern(child, va, kHugePageSize, 5);
}

TEST_F(ClassicForkTest, WritesAreIsolatedBothWays) {
  Vaddr va = MapFilled(kHugePageSize, /*seed=*/6);
  Process& child = kernel_.Fork(parent_, ForkMode::kClassic);
  WriteByte(child, va + 777, std::byte{0xc1});
  WriteByte(parent_, va + 999, std::byte{0xc2});
  EXPECT_EQ(ReadByte(child, va + 777), std::byte{0xc1});
  EXPECT_EQ(ReadByte(parent_, va + 999), std::byte{0xc2});
  // Each side still sees the original pattern at the other side's write offset.
  auto original = [&](Vaddr addr) {
    return static_cast<std::byte>((6 * 1099511628211ULL + addr) >> 5);
  };
  EXPECT_EQ(ReadByte(child, va + 999), original(va + 999));
  EXPECT_EQ(ReadByte(parent_, va + 777), original(va + 777));
}

TEST_F(ClassicForkTest, CowCopiesOnlyTheWrittenPage) {
  Vaddr va = MapFilled(kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kClassic);
  FrameId before = FrameOf(child, va);
  WriteByte(child, va, std::byte{1});
  FrameId after = FrameOf(child, va);
  EXPECT_NE(before, after);
  EXPECT_EQ(child.address_space().stats().cow_page_faults, 1u);
  // Neighbouring page still shared.
  EXPECT_EQ(FrameOf(child, va + kPageSize), FrameOf(parent_, va + kPageSize));
  // The old page's refcount dropped back to 1 (parent only).
  EXPECT_EQ(kernel_.allocator().GetMeta(before).refcount.load(), 1u);
}

TEST_F(ClassicForkTest, SoleOwnerWriteReusesPageInPlace) {
  Vaddr va = MapFilled(kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kClassic);
  WriteByte(child, va, std::byte{1});                       // COW copy.
  kernel_.Exit(child, 0);
  kernel_.Wait(parent_);
  uint64_t copies = parent_.address_space().stats().cow_page_faults;
  WriteByte(parent_, va, std::byte{2});  // Parent now sole owner: reuse, no copy.
  EXPECT_EQ(parent_.address_space().stats().cow_page_faults, copies);
  EXPECT_GE(parent_.address_space().stats().cow_reuse_faults, 1u);
}

TEST_F(ClassicForkTest, ForkAfterOnDemandForkDedicatesSharedTables) {
  Vaddr va = MapFilled(kHugePageSize, /*seed=*/8);
  Process& odf_child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  // Parent's table is now shared; a classic fork must not corrupt the sharer's view.
  Process& classic_child = kernel_.Fork(parent_, ForkMode::kClassic);
  WriteByte(classic_child, va, std::byte{0xaa});
  WriteByte(parent_, va + kPageSize, std::byte{0xbb});
  ExpectPattern(odf_child, va, kHugePageSize, 8);
  EXPECT_EQ(ReadByte(classic_child, va), std::byte{0xaa});
}

TEST_F(ClassicForkTest, GrandchildForkChains) {
  Vaddr va = MapFilled(kHugePageSize, /*seed=*/9);
  Process& child = kernel_.Fork(parent_, ForkMode::kClassic);
  Process& grandchild = kernel_.Fork(child, ForkMode::kClassic);
  FrameId frame = FrameOf(grandchild, va);
  EXPECT_EQ(kernel_.allocator().GetMeta(frame).refcount.load(), 3u);
  WriteByte(grandchild, va, std::byte{0x99});
  ExpectPattern(child, va, kHugePageSize, 9);
  ExpectPattern(parent_, va, kHugePageSize, 9);
}

TEST_F(ClassicForkTest, NoLeaksAfterLineageExits) {
  Vaddr va = MapFilled(2 * kHugePageSize, /*seed=*/10);
  Process& child = kernel_.Fork(parent_, ForkMode::kClassic);
  Process& grandchild = kernel_.Fork(child, ForkMode::kClassic);
  WriteByte(grandchild, va, std::byte{1});
  WriteByte(child, va + kPageSize, std::byte{2});
  kernel_.Exit(grandchild, 0);
  kernel_.Wait(child);
  kernel_.Exit(child, 0);
  kernel_.Wait(parent_);
  kernel_.Exit(parent_, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(ClassicForkTest, ReadOnlyMappingSurvivesFork) {
  Vaddr va = parent_.Mmap(kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, kHugePageSize, 12);
  parent_.address_space().Protect(va, kHugePageSize, kProtRead);
  Process& child = kernel_.Fork(parent_, ForkMode::kClassic);
  ExpectPattern(child, va, kHugePageSize, 12);
  std::byte b{1};
  EXPECT_FALSE(child.WriteMemory(va, std::span(&b, 1))) << "read-only VMA must SEGV on write";
}

}  // namespace
}  // namespace odf
