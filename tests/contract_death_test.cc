// Contract checks: invalid API usage must fail fast and loudly (ODF_CHECK aborts), exactly
// like the kernel's BUG_ON. Each death test documents a usage rule.
#include <gtest/gtest.h>

#include "src/apps/simalloc.h"
#include "tests/test_util.h"

namespace odf {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, MemoryAccessOnZombieAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  kernel.Exit(p, 0);
  std::byte b{0};
  EXPECT_DEATH((void)p.ReadMemory(va, std::span(&b, 1)), "exited process");
}

TEST(ContractDeathTest, DoubleExitAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  kernel.Exit(p, 0);
  EXPECT_DEATH(kernel.Exit(p, 0), "double exit");
}

TEST(ContractDeathTest, MremapAcrossTwoVmasAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr a = p.Mmap(4 * kPageSize, kProtRead | kProtWrite);
  p.Mmap(4 * kPageSize, kProtRead | kProtWrite);
  EXPECT_DEATH(p.Mremap(a, 16 * kPageSize, 32 * kPageSize), "exactly one mapping");
}

TEST(ContractDeathTest, HugeVmaPartialUnmapAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(2 * kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  EXPECT_DEATH(p.Munmap(va, kPageSize), "2 MiB");
}

TEST(ContractDeathTest, MadviseOverUnmappedHoleAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(2 * kPageSize, kProtRead | kProtWrite);
  EXPECT_DEATH(p.MadviseDontNeed(va, 64 * kPageSize), "madvise over unmapped");
}

TEST(ContractDeathTest, SimHeapDoubleFreeAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  SimHeap heap = SimHeap::Create(p, 1 << 20);
  Vaddr block = heap.Alloc(64);
  heap.Free(block);
  EXPECT_DEATH(heap.Free(block), "double free");
}

TEST(ContractDeathTest, SimHeapExhaustionAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  SimHeap heap = SimHeap::Create(p, 64 * kPageSize);
  EXPECT_DEATH(
      {
        for (int i = 0; i < 1000; ++i) {
          heap.Alloc(4096);
        }
      },
      "exhausted");
}

TEST(ContractDeathTest, OutOfSimulatedMemoryWithoutVictimsAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  // Huge pages are unswappable and the allocating process is OOM-immune, so with no other
  // process to sacrifice there is no way to free a frame. The fault handler itself now
  // fails such accesses with a recoverable kOom verdict (docs/robustness.md), so the hard
  // OOM contract lives on the NOFAIL paths: drive one via Fork, whose first child-table
  // allocation cannot be satisfied under a zero-headroom limit.
  Vaddr va = p.Mmap(2 * kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  ASSERT_TRUE(p.TouchRange(va, 2 * kHugePageSize, AccessType::kWrite));
  kernel.SetMemoryLimitFrames(kernel.allocator().Stats().allocated_frames);
  EXPECT_DEATH(kernel.Fork(p, ForkMode::kClassic), "out of simulated memory");
}

TEST(ContractDeathTest, AttachToGarbageHeapAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(1 << 20, kProtRead | kProtWrite);
  EXPECT_DEATH(SimHeap::Attach(p, va), "no heap");
}

}  // namespace
}  // namespace odf
