// procfs-style introspection: RSS/PSS/swap accounting and the page-table footprint that
// demonstrates on-demand-fork's memory efficiency.
#include <gtest/gtest.h>

#include "src/debug/debug.h"
#include "src/mm/reclaim.h"
#include "src/proc/procfs.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class ProcfsTest : public ::testing::Test {
 protected:
  ProcfsTest() : p_(kernel_.CreateProcess()) {}

  Kernel kernel_;
  Process& p_;
};

TEST_F(ProcfsTest, EmptyProcess) {
  ProcessMemoryReport report = BuildMemoryReport(p_);
  EXPECT_EQ(report.vss_bytes, 0u);
  EXPECT_EQ(report.rss_bytes, 0u);
  EXPECT_EQ(report.upper_tables, 1u);  // Just the PGD.
  EXPECT_EQ(report.page_table_bytes, kPageSize);
}

TEST_F(ProcfsTest, VssCountsMappedRssCountsResident) {
  Vaddr va = p_.Mmap(kHugePageSize, kProtRead | kProtWrite);
  ProcessMemoryReport before = BuildMemoryReport(p_);
  EXPECT_EQ(before.vss_bytes, kHugePageSize);
  EXPECT_EQ(before.rss_bytes, 0u) << "nothing resident until touched";

  FillPattern(p_, va, 64 * kPageSize, 1);
  ProcessMemoryReport after = BuildMemoryReport(p_);
  EXPECT_EQ(after.rss_bytes, 64 * kPageSize);
  EXPECT_EQ(after.pss_bytes, 64 * kPageSize) << "sole owner: PSS == RSS";
  ASSERT_EQ(after.vmas.size(), 1u);
  EXPECT_EQ(after.vmas[0].private_pages, 64u);
  EXPECT_EQ(after.vmas[0].shared_pages, 0u);
}

TEST_F(ProcfsTest, ClassicForkHalvesPss) {
  Vaddr va = p_.Mmap(kHugePageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, kHugePageSize, 2);
  Process& child = kernel_.Fork(p_, ForkMode::kClassic);
  ProcessMemoryReport parent_report = BuildMemoryReport(p_);
  ProcessMemoryReport child_report = BuildMemoryReport(child);
  EXPECT_EQ(parent_report.rss_bytes, kHugePageSize);
  EXPECT_EQ(child_report.rss_bytes, kHugePageSize);
  EXPECT_EQ(parent_report.pss_bytes, kHugePageSize / 2) << "pages shared two ways";
  EXPECT_EQ(child_report.pss_bytes, kHugePageSize / 2);
  EXPECT_EQ(parent_report.vmas[0].shared_pages, 512u);
  // Classic fork: both sides own dedicated tables.
  EXPECT_EQ(child_report.dedicated_pte_tables, 1u);
  EXPECT_EQ(child_report.shared_pte_tables, 0u);
}

TEST_F(ProcfsTest, OnDemandForkSharesTablesInReport) {
  Vaddr va = p_.Mmap(4 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 4 * kHugePageSize, 3);
  Process& child = kernel_.Fork(p_, ForkMode::kOnDemand);
  ProcessMemoryReport child_report = BuildMemoryReport(child);
  EXPECT_EQ(child_report.shared_pte_tables, 4u);
  EXPECT_EQ(child_report.dedicated_pte_tables, 0u);
  EXPECT_EQ(child_report.rss_bytes, 4 * kHugePageSize)
      << "pages are resident through the shared tables";
  EXPECT_EQ(child_report.pss_bytes, 2 * kHugePageSize) << "two-way proportional split";

  // After the child writes into one chunk, that table becomes dedicated.
  WriteByte(child, va, std::byte{1});
  ProcessMemoryReport after = BuildMemoryReport(child);
  EXPECT_EQ(after.dedicated_pte_tables, 1u);
  EXPECT_EQ(after.shared_pte_tables, 3u);

  // The child's table footprint is tiny compared to a classic child's. (This classic fork
  // also dedicates the parent's remaining shared tables — §3 semantics — so it runs last.)
  Process& classic_child = kernel_.Fork(p_, ForkMode::kClassic);
  ProcessMemoryReport classic_report = BuildMemoryReport(classic_child);
  EXPECT_LT(child_report.page_table_bytes, classic_report.page_table_bytes);
}

TEST_F(ProcfsTest, SwapBytesReported) {
  Vaddr va = p_.Mmap(32 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 32 * kPageSize, 4);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  ProcessMemoryReport report = BuildMemoryReport(p_);
  EXPECT_EQ(report.swap_bytes, 32 * kPageSize);
  EXPECT_EQ(report.rss_bytes, 0u);
}

TEST_F(ProcfsTest, HugeMappingsCount512PagesPerEntry) {
  Vaddr va = p_.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  WriteByte(p_, va, std::byte{1});
  ProcessMemoryReport report = BuildMemoryReport(p_);
  EXPECT_EQ(report.rss_bytes, kHugePageSize);
  ASSERT_EQ(report.vmas.size(), 1u);
  EXPECT_TRUE(report.vmas[0].huge);
  EXPECT_EQ(report.vmas[0].present_pages, 512u);
}

TEST_F(ProcfsTest, FormattersProduceReadableText) {
  Vaddr va = p_.Mmap(16 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 16 * kPageSize, 5);
  ProcessMemoryReport report = BuildMemoryReport(p_);
  std::string smaps = FormatSmaps(report);
  EXPECT_NE(smaps.find("Rss:"), std::string::npos);
  EXPECT_NE(smaps.find("anon"), std::string::npos);
  std::string status = FormatStatusLine(report);
  EXPECT_NE(status.find("VmRSS 64 kB"), std::string::npos) << status;
}

TEST_F(ProcfsTest, DebugVmReportsCompileStateAndCounters) {
  // The /sys/kernel/debug/debug_vm analog exists in every build; whether the counters
  // move depends on whether the checkers are compiled in.
  Vaddr va = p_.Mmap(4 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 4 * kPageSize, 6);
  kernel_.Fork(p_, ForkMode::kOnDemand);
  std::string text = FormatDebugVm();
  std::string expected_compiled =
      std::string("debug_vm_compiled ") + (debug::Compiled() ? "1" : "0");
  EXPECT_NE(text.find(expected_compiled), std::string::npos) << text;
  for (const char* key : {"vm_checks", "lockdep_acquisitions", "verify_runs",
                          "verify_skipped_concurrent"}) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing " << key << " in:\n" << text;
  }
  if (debug::Compiled()) {
    EXPECT_EQ(text.find("vm_checks 0\n"), std::string::npos)
        << "a fork must exercise VM_BUG_ON checks when compiled in:\n" << text;
    EXPECT_EQ(text.find("lockdep_acquisitions 0\n"), std::string::npos) << text;
  }
}

TEST_F(ProcfsTest, HundredOdfChildrenCostAlmostNoTableMemory) {
  // The paper's efficiency angle, quantified: 100 on-demand children of a 64 MiB parent
  // share its 32 PTE tables instead of duplicating them.
  Vaddr va = p_.Mmap(64ULL << 20, kProtRead | kProtWrite);
  p_.address_space().PopulateRange(va, 64ULL << 20);
  uint64_t tables_before = kernel_.allocator().Stats().page_table_frames;
  std::vector<Process*> children;
  for (int i = 0; i < 100; ++i) {
    children.push_back(&kernel_.Fork(p_, ForkMode::kOnDemand));
  }
  uint64_t odf_extra = kernel_.allocator().Stats().page_table_frames - tables_before;
  EXPECT_LT(odf_extra, 100u * 8u) << "ODF children should add only upper-level tables";
  for (Process* child : children) {
    kernel_.Exit(*child, 0);
  }

  // The same with classic fork duplicates every PTE table per child.
  tables_before = kernel_.allocator().Stats().page_table_frames;
  Process& classic_child = kernel_.Fork(p_, ForkMode::kClassic);
  uint64_t classic_extra = kernel_.allocator().Stats().page_table_frames - tables_before;
  EXPECT_GE(classic_extra, 32u) << "one classic child duplicates all 32 PTE tables";
  kernel_.Exit(classic_child, 0);
}

}  // namespace
}  // namespace odf
