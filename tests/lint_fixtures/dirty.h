// Lint fixture (header rules): see dirty.cc. Never compiled.
#ifndef ODF_TESTS_LINT_FIXTURES_DIRTY_H_
#define ODF_TESTS_LINT_FIXTURES_DIRTY_H_

namespace odf_fixture {

class Fallible {
 public:
  bool TryAllocate(int frames);  // missing-nodiscard

  [[nodiscard]] bool TryReserve(int frames);  // fine: has the attribute
};

}  // namespace odf_fixture

#endif  // ODF_TESTS_LINT_FIXTURES_DIRTY_H_
