// Lint fixture: the same violations as dirty.cc, each suppressed with an
// `// odf-lint: allow(<rule>)` comment (on the line or the line above).
// tests/lint_selftest.py asserts this file lints CLEAN — proving the allow
// mechanism works for every rule. Never compiled.

#include <mutex>  // odf-lint: allow(raw-std-mutex) — fixture exercises suppression

namespace odf_fixture {

void RawRefcount(Meta& meta) {
  meta.refcount.fetch_add(1);  // odf-lint: allow(raw-refcount)
}

void NakedLock(RawMutex& mu) {
  // odf-lint: allow(naked-lock)
  mu.lock();
}

void RawStdMutex() {
  // odf-lint: allow(raw-std-mutex)
  std::mutex mu;
  // odf-lint: allow(naked-lock)
  mu.lock();  // odf-lint: allow(raw-std-mutex)
}

void LockFreeWalkGuarded(Walker& walker) {
  PtEpoch::ReadGuard guard;
  auto t = walker.TranslateLockFree(pgd, va);  // guard above: no finding
  (void)t;
}

void LockFreeWalkAllowed(Walker& walker) {
  // odf-lint: allow(lockfree-walk-guard)
  auto t = walker.TranslateLockFree(pgd, va);
  (void)t;
}

void GenBeforeFreeOrdered(Allocator& allocator, Tlb& tlb, uint64_t* slot) {
  StoreEntry(slot, Pte());
  tlb.InvalidatePage(va);  // bump between rewrite and free: no finding
  allocator.DecRef(frame);
}

void GenBeforeFreeAllowed(Allocator& allocator, uint64_t* slot) {
  StoreEntry(slot, Pte());
  // odf-lint: allow(gen-before-free)
  allocator.DecRef(frame);
}

void TraceOutsideGuard() {
  trace::Emit(TraceEventId::k_fault, 0, 0);  // odf-lint: allow(trace-outside-guard)
}

void DirectWriteback(SwapSpace& swap, const std::byte* data) {
  // odf-lint: allow(direct-writeback)
  swap.TryWriteOut(data);
}

void TableMutex(Kernel& kernel) {
  // odf-lint: allow(naked-lock)
  kernel.table_mutex_.lock();  // odf-lint: allow(table-mutex)
}

void HwPoison(Allocator& allocator) {
  allocator.MarkHwPoison(frame);  // odf-lint: allow(hwpoison-flag)
}

}  // namespace odf_fixture
