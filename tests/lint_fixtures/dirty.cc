// Lint fixture: every directory-scoped odf_lint rule fires at least once here.
// NEVER compiled — tests/lint_selftest.py lints this file explicitly and asserts
// the exact rule ids below. The default tree scan skips tests/lint_fixtures/.
//
// Line numbers matter to the selftest: add new cases at the END of the file.

#include <mutex>

namespace odf_fixture {

void RawRefcount(Meta& meta) {
  meta.refcount.fetch_add(1);  // raw-refcount
}

void NakedLock(std::mutex& mu) {
  mu.lock();  // naked-lock (and the std::mutex parameter above is raw-std-mutex)
}

void RawStdMutex() {
  std::lock_guard<std::mutex> guard(g_mutex);  // raw-std-mutex (+ naked-lock)
}

void LockFreeWalkNoGuard(Walker& walker) {
  auto t = walker.TranslateLockFree(pgd, va);  // lockfree-walk-guard
  (void)t;
}

void GenBeforeFreeViolation(Allocator& allocator, uint64_t* slot) {
  StoreEntry(slot, Pte());
  allocator.DecRef(frame);  // gen-before-free: rewrite above, no bump between
}

void TraceOutsideGuard() {
  trace::Emit(TraceEventId::k_fault, 0, 0);  // trace-outside-guard
}

void DirectWriteback(SwapSpace& swap, const std::byte* data) {
  swap.TryWriteOut(data);  // direct-writeback
}

void TableMutex(Kernel& kernel) {
  kernel.table_mutex_.lock();  // table-mutex (+ naked-lock)
}

void HwPoison(Allocator& allocator) {
  allocator.MarkHwPoison(frame);  // hwpoison-flag
}

}  // namespace odf_fixture
