// Lint fixture (header rules, suppressed): see clean.cc. Never compiled.
#ifndef ODF_TESTS_LINT_FIXTURES_CLEAN_H_
#define ODF_TESTS_LINT_FIXTURES_CLEAN_H_

namespace odf_fixture {

class Fallible {
 public:
  // odf-lint: allow(missing-nodiscard)
  bool TryAllocate(int frames);

  [[nodiscard]] bool TryReserve(int frames);
};

}  // namespace odf_fixture

#endif  // ODF_TESTS_LINT_FIXTURES_CLEAN_H_
