// Memory-failure resilience (docs/memory-failure.md): hard offline (HWPoison) containment
// through shared on-demand-fork page tables, soft offline via page migration, quarantine
// permanence, the poisoned-PTE fault contract, the injected-ECC delivery path, and the
// replay determinism of the whole lot.
#include "src/mf/memory_failure.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/debug/verify.h"
#include "src/fi/fault_inject.h"
#include "src/mm/fault.h"
#include "src/proc/kernel.h"
#include "src/proc/procfs.h"
#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "tests/test_util.h"

namespace odf {
namespace {

using mf::MfResult;

// Resolves the 4 KiB frame currently backing `va` (tail-resolved for huge mappings).
FrameId FrameAt(Process& p, Vaddr va) {
  AddressSpace& as = p.address_space();
  Translation t = as.walker().Translate(as.pgd(), va, AccessType::kRead);
  EXPECT_EQ(t.status, TranslateStatus::kOk) << "va " << va << " not present";
  return t.frame;
}

// Every test leaves the (process-global) injector the way it found it.
class MemoryFailureTest : public ::testing::Test {
 protected:
  void SetUp() override { fi::FaultInjector::Global().Reset(); }
  void TearDown() override { fi::FaultInjector::Global().Reset(); }
};

TEST_F(MemoryFailureTest, ResultNamesAreStable) {
  EXPECT_STREQ(MfResultName(MfResult::kRecovered), "recovered");
  EXPECT_STREQ(MfResultName(MfResult::kDelayed), "delayed");
  EXPECT_STREQ(MfResultName(MfResult::kAlreadyPoisoned), "already-poisoned");
  EXPECT_STREQ(MfResultName(MfResult::kMigrated), "migrated");
  EXPECT_STREQ(MfResultName(MfResult::kFailedBusy), "failed-busy");
  EXPECT_STREQ(MfResultName(MfResult::kFailedKernelPage), "failed-kernel-page");
  EXPECT_STREQ(MfResultName(MfResult::kNotSupported), "not-supported");
}

// The FaultResult classification contract (src/mm/fault.h): kHwPoison is recoverable —
// the kernel survives, the toucher gets the SIGBUS analog — while the SEGV class is not.
// The switch in IsRecoverableFault is exhaustive with no default, so ADDING a FaultResult
// without classifying it is a compile error; this test pins the decided classification.
TEST_F(MemoryFailureTest, FaultResultClassificationContract) {
  EXPECT_FALSE(IsRecoverableFault(FaultResult::kHandled));
  EXPECT_FALSE(IsRecoverableFault(FaultResult::kSegvUnmapped));
  EXPECT_FALSE(IsRecoverableFault(FaultResult::kSegvProt));
  EXPECT_TRUE(IsRecoverableFault(FaultResult::kOom));
  EXPECT_TRUE(IsRecoverableFault(FaultResult::kSwapIoError));
  EXPECT_TRUE(IsRecoverableFault(FaultResult::kRetryExhausted));
  EXPECT_TRUE(IsRecoverableFault(FaultResult::kHwPoison));
}

#if !ODF_MEMORY_FAILURE_COMPILED

TEST_F(MemoryFailureTest, CompiledOutReturnsNotSupported) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  WriteByte(p, va, std::byte{1});
  EXPECT_EQ(kernel.MemoryFailure(FrameAt(p, va)), MfResult::kNotSupported);
  EXPECT_EQ(kernel.SoftOfflinePage(FrameAt(p, va)), MfResult::kNotSupported);
  EXPECT_EQ(ReadByte(p, va), std::byte{1});  // Nothing happened.
}

#else  // ODF_MEMORY_FAILURE_COMPILED

constexpr uint64_t kPages = 16;
constexpr uint64_t kLength = kPages * kPageSize;

// Verifies the seed-1 pattern everywhere except the dead page, which must fault with
// kHwPoison — the per-page containment shape every hard-offline test asserts.
void ExpectContained(Process& p, Vaddr base, Vaddr dead_va) {
  for (uint64_t page = 0; page < kPages; ++page) {
    Vaddr va = base + page * kPageSize;
    if (va == dead_va) {
      std::byte scratch{0};
      EXPECT_FALSE(p.ReadMemory(va, std::span(&scratch, 1)));
      EXPECT_EQ(p.last_fault_result(), FaultResult::kHwPoison)
          << "pid " << p.pid() << ": dead page must raise the SIGBUS analog";
    } else {
      ExpectPattern(p, va, kPageSize, 1);
    }
  }
}

// The §3.6 headline: a frame mapped into 9 processes through shared on-demand-fork PTE
// tables has ONE rmap location, so hard offline rewrites ONE slot — and still contains
// the error for every sharer. Every byte outside the dead page survives in all of them.
TEST_F(MemoryFailureTest, HardOfflineContainsThroughSharedOdfTables) {
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr base = parent.Mmap(kLength, kProtRead | kProtWrite);
  FillPattern(parent, base, kLength, 1);

  std::vector<Process*> children;
  for (int i = 0; i < 8; ++i) {
    children.push_back(&kernel.Fork(parent, ForkMode::kOnDemand));
  }
  Vaddr dead_va = base + 5 * kPageSize;
  FrameId frame = FrameAt(parent, dead_va);
  // All 9 processes map the frame, through ONE slot in ONE shared table.
  ASSERT_EQ(kernel.rmap().LocationCount(frame), 1u);

  EXPECT_EQ(kernel.MemoryFailure(frame), MfResult::kRecovered);

  EXPECT_EQ(kernel.rmap().LocationCount(frame), 0u);
  EXPECT_TRUE(kernel.allocator().IsHwPoisoned(frame));
  EXPECT_EQ(kernel.allocator().Stats().hwpoisoned_frames, 1u);
  ExpectContained(parent, base, dead_va);
  for (Process* child : children) {
    ExpectContained(*child, base, dead_va);
  }
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());

  for (Process* child : children) {
    kernel.Exit(*child, 0);
    kernel.Wait(parent);
  }
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

// Classic fork copies tables eagerly, so the same frame has one location per process —
// offline must find and rewrite all 9.
TEST_F(MemoryFailureTest, HardOfflineContainsThroughClassicTables) {
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr base = parent.Mmap(kLength, kProtRead | kProtWrite);
  FillPattern(parent, base, kLength, 1);

  std::vector<Process*> children;
  for (int i = 0; i < 8; ++i) {
    children.push_back(&kernel.Fork(parent, ForkMode::kClassic));
  }
  Vaddr dead_va = base + 9 * kPageSize;
  FrameId frame = FrameAt(parent, dead_va);
  ASSERT_EQ(kernel.rmap().LocationCount(frame), 9u)
      << "classic fork: one dedicated-table slot per process";

  EXPECT_EQ(kernel.MemoryFailure(frame), MfResult::kRecovered);

  ExpectContained(parent, base, dead_va);
  for (Process* child : children) {
    ExpectContained(*child, base, dead_va);
  }
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
  for (Process* child : children) {
    kernel.Exit(*child, 0);
    kernel.Wait(parent);
  }
}

// Fork after the failure: the child inherits the poison marker (not the dead page), under
// both engines — the child's copy of the VA is exactly as lost as the parent's.
TEST_F(MemoryFailureTest, ForkPropagatesPoisonMarkers) {
  for (ForkMode mode : {ForkMode::kClassic, ForkMode::kOnDemand}) {
    Kernel kernel;
    Process& parent = kernel.CreateProcess();
    Vaddr base = parent.Mmap(kLength, kProtRead | kProtWrite);
    FillPattern(parent, base, kLength, 1);
    Vaddr dead_va = base + 2 * kPageSize;
    ASSERT_EQ(kernel.MemoryFailure(FrameAt(parent, dead_va)), MfResult::kRecovered);

    Process& child = kernel.Fork(parent, mode);
    ExpectContained(child, base, dead_va);
    ExpectContained(parent, base, dead_va);
    EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
  }
}

// A 2 MiB mapping loses exactly one 4 KiB subpage: the huge mapping is split (in the
// parent AND a PMD-sharing child) and the other 511 subpages keep their bytes.
TEST_F(MemoryFailureTest, HugeMappingSplitsAndLosesOneSubpage) {
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr base = parent.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  FillPattern(parent, base, kLength, 1);  // Pattern over the first 16 subpages.
  Process& child = kernel.Fork(parent, ForkMode::kOnDemandHuge);

  Vaddr dead_va = base + 5 * kPageSize;
  FrameId frame = FrameAt(parent, dead_va);
  uint64_t splits_before = ReadVm(VmCounter::k_mf_huge_splits);
  EXPECT_EQ(kernel.MemoryFailure(frame), MfResult::kRecovered);
  EXPECT_GT(ReadVm(VmCounter::k_mf_huge_splits), splits_before);

  ExpectContained(parent, base, dead_va);
  ExpectContained(child, base, dead_va);
  // The untouched tail of the 2 MiB page still reads as zeros (never written).
  std::byte far{0xff};
  EXPECT_TRUE(parent.ReadMemory(base + 400 * kPageSize, std::span(&far, 1)));
  EXPECT_EQ(far, std::byte{0});
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());

  kernel.Exit(child, 0);
  kernel.Wait(parent);
  parent.Munmap(base, kHugePageSize);
  // With the compound fully unmapped, its last free salvages the run: the one poisoned
  // subpage is quarantined, the 511 healthy ones return to the allocator.
  EXPECT_EQ(kernel.allocator().Stats().quarantined_frames, 1u);
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

// Offline of a resident frame whose PTE table also holds swap entries: the swap slots are
// untouched and swap-in still works around the dead page.
TEST_F(MemoryFailureTest, SwappedOutNeighborsSurviveOffline) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr base = p.Mmap(kLength, kProtRead | kProtWrite);
  FillPattern(p, base, kLength, 1);
  // Two passes: the first clears accessed bits (second chance), the second evicts.
  kernel.ReclaimMemory(4);
  kernel.ReclaimMemory(4);
  ASSERT_GT(kernel.swap_space().Stats().slots_in_use, 0u) << "no pages were swapped out";

  // Pick a page that is still resident.
  Vaddr dead_va = 0;
  for (uint64_t page = 0; page < kPages; ++page) {
    Vaddr va = base + page * kPageSize;
    Translation t = p.address_space().walker().Translate(p.address_space().pgd(), va,
                                                         AccessType::kRead);
    if (t.status == TranslateStatus::kOk) {
      dead_va = va;
      break;
    }
  }
  ASSERT_NE(dead_va, 0u) << "everything was swapped out";
  uint64_t slots_before = kernel.swap_space().Stats().slots_in_use;

  EXPECT_EQ(kernel.MemoryFailure(FrameAt(p, dead_va)), MfResult::kRecovered);

  EXPECT_EQ(kernel.swap_space().Stats().slots_in_use, slots_before)
      << "offline must not disturb swap entries sharing the table";
  ExpectContained(p, base, dead_va);  // Swapped pages fault back in around the dead one.
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

// Soft offline: the frame is migrated, so NOTHING is lost — all 9 sharers still read
// every byte, through the single repointed shared-table slot.
TEST_F(MemoryFailureTest, SoftOfflineMigratesWithZeroLossAcrossSharers) {
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr base = parent.Mmap(kLength, kProtRead | kProtWrite);
  FillPattern(parent, base, kLength, 1);
  std::vector<Process*> children;
  for (int i = 0; i < 8; ++i) {
    children.push_back(&kernel.Fork(parent, ForkMode::kOnDemand));
  }
  Vaddr va = base + 7 * kPageSize;
  FrameId old_frame = FrameAt(parent, va);
  ASSERT_EQ(kernel.rmap().LocationCount(old_frame), 1u);

  EXPECT_EQ(kernel.SoftOfflinePage(old_frame), MfResult::kMigrated);

  FrameId new_frame = FrameAt(parent, va);
  EXPECT_NE(new_frame, old_frame);
  EXPECT_TRUE(kernel.allocator().IsHwPoisoned(old_frame));
  EXPECT_EQ(kernel.allocator().Stats().quarantined_frames, 1u)
      << "the source's only references were its mappings; it must be parked already";
  EXPECT_EQ(kernel.rmap().LocationCount(new_frame), 1u) << "one slot repointed, not nine";
  ExpectPattern(parent, base, kLength, 1);
  for (Process* child : children) {
    ExpectPattern(*child, base, kLength, 1);
  }
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

// The transactional contract: when the one allocation of the migration fails (injected
// frame_alloc verdict), NOTHING has been mutated — same discipline as TryFork.
TEST_F(MemoryFailureTest, SoftOfflineRollsBackOnAllocationFailure) {
  if (!ODF_FAULT_INJECT_COMPILED) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr base = p.Mmap(kLength, kProtRead | kProtWrite);
  FillPattern(p, base, kLength, 1);
  Vaddr va = base + 3 * kPageSize;
  FrameId frame = FrameAt(p, va);
  uint64_t failed_before = ReadVm(VmCounter::k_mf_offline_failed);
  {
    fi::ScopedInjection inject(FiSite::k_frame_alloc, FiSiteConfig{.nth = 1});
    EXPECT_EQ(kernel.SoftOfflinePage(frame), MfResult::kFailedBusy);
  }
  EXPECT_EQ(ReadVm(VmCounter::k_mf_offline_failed), failed_before + 1);
  EXPECT_EQ(FrameAt(p, va), frame) << "mapping must be untouched";
  EXPECT_FALSE(kernel.allocator().IsHwPoisoned(frame));
  ExpectPattern(p, base, kLength, 1);
  // The retry (injection disarmed) succeeds.
  EXPECT_EQ(kernel.SoftOfflinePage(frame), MfResult::kMigrated);
  ExpectPattern(p, base, kLength, 1);
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

// A clean page-cache frame loses nothing on HARD offline either: the contents relocate
// (the "re-read from disk" analog) and mappers simply refault.
TEST_F(MemoryFailureTest, HardOfflineRelocatesFileBackedPages) {
  Kernel kernel;
  auto file = kernel.fs().Open("/data");
  std::vector<std::byte> content(kPageSize);
  for (uint64_t i = 0; i < kPageSize; ++i) {
    content[i] = static_cast<std::byte>(i * 7);
  }
  file->Write(0, content);

  Process& p = kernel.CreateProcess();
  Vaddr va = p.address_space().MapFile(file, 0, kPageSize, kProtRead, /*shared=*/true);
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(p.ReadMemory(va, out));
  ASSERT_EQ(out, content);
  FrameId frame = FrameAt(p, va);

  EXPECT_EQ(kernel.MemoryFailure(frame), MfResult::kRecovered);

  EXPECT_TRUE(p.ReadMemory(va, out)) << "clean file page must NOT raise SIGBUS";
  EXPECT_EQ(out, content) << "contents must survive via the relocated cache frame";
  EXPECT_NE(FrameAt(p, va), frame);
  EXPECT_TRUE(kernel.allocator().IsHwPoisoned(frame));
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

// Quarantine is terminal: a poisoned frame is never handed out again, no matter how much
// allocation pressure follows.
TEST_F(MemoryFailureTest, QuarantinedFramesAreNeverReallocated) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr base = p.Mmap(kLength, kProtRead | kProtWrite);
  FillPattern(p, base, kLength, 1);
  FrameId frame = FrameAt(p, base);
  ASSERT_EQ(kernel.MemoryFailure(frame), MfResult::kRecovered);
  EXPECT_EQ(kernel.allocator().Stats().quarantined_frames, 1u);

  // Churn far more frames than the pool had free; the dead one must never come back.
  for (int round = 0; round < 4; ++round) {
    Vaddr churn = p.Mmap(64 * kPageSize, kProtRead | kProtWrite);
    FillPattern(p, churn, 64 * kPageSize, static_cast<uint64_t>(round) + 2);
    for (uint64_t page = 0; page < 64; ++page) {
      EXPECT_NE(FrameAt(p, churn + page * kPageSize), frame)
          << "quarantined frame re-entered circulation";
    }
    p.Munmap(churn, 64 * kPageSize);
  }
  EXPECT_TRUE(kernel.allocator().IsHwPoisoned(frame));
  EXPECT_EQ(kernel.allocator().Stats().quarantined_frames, 1u);
}

TEST_F(MemoryFailureTest, SecondReportIsAlreadyPoisoned) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  WriteByte(p, va, std::byte{1});
  FrameId frame = FrameAt(p, va);
  EXPECT_EQ(kernel.MemoryFailure(frame), MfResult::kRecovered);
  EXPECT_EQ(kernel.MemoryFailure(frame), MfResult::kAlreadyPoisoned);
  EXPECT_EQ(kernel.SoftOfflinePage(frame), MfResult::kAlreadyPoisoned);
  EXPECT_EQ(kernel.allocator().Stats().hwpoisoned_frames, 1u);
}

TEST_F(MemoryFailureTest, PageTableFramesAreRefused) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  WriteByte(p, va, std::byte{1});
  AddressSpace& as = p.address_space();
  FrameId table = as.walker().FindTable(as.pgd(), va, PtLevel::kPte);
  ASSERT_NE(table, kInvalidFrame);
  EXPECT_EQ(kernel.MemoryFailure(table), MfResult::kFailedKernelPage);
  EXPECT_EQ(kernel.SoftOfflinePage(table), MfResult::kFailedKernelPage);
  EXPECT_FALSE(kernel.allocator().IsHwPoisoned(table));
  EXPECT_EQ(ReadByte(p, va), std::byte{1});  // Still readable; nothing was torn down.
}

TEST_F(MemoryFailureTest, FreeFrameOfflineIsDelayedAndStillQuarantined) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  WriteByte(p, va, std::byte{1});
  FrameId frame = FrameAt(p, va);
  p.Munmap(va, kPageSize);  // Frees the frame (possibly into a per-thread cache).
  EXPECT_EQ(kernel.MemoryFailure(frame), MfResult::kDelayed);
  EXPECT_TRUE(kernel.allocator().IsHwPoisoned(frame));
  // Churn allocations: the poisoned id must be diverted, not served.
  Vaddr churn = p.Mmap(64 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, churn, 64 * kPageSize, 3);
  for (uint64_t page = 0; page < 64; ++page) {
    EXPECT_NE(FrameAt(p, churn + page * kPageSize), frame);
  }
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

// The delivery path: an injected machine check (fi site mf_ecc) fails the access that
// consumed the poison with kHwPoison, and the frame is contained for everyone else.
TEST_F(MemoryFailureTest, InjectedEccDeliversSigbusToTheToucher) {
  if (!ODF_FAULT_INJECT_COMPILED) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr base = parent.Mmap(kLength, kProtRead | kProtWrite);
  FillPattern(parent, base, kLength, 1);
  Process& child = kernel.Fork(parent, ForkMode::kOnDemand);

  Vaddr dead_va = base + 4 * kPageSize;
  uint64_t sigbus_before = ReadVm(VmCounter::k_mf_sigbus);
  {
    fi::ScopedInjection inject(FiSite::k_mf_ecc, FiSiteConfig{.nth = 1});
    std::byte scratch{0};
    EXPECT_FALSE(parent.ReadMemory(dead_va, std::span(&scratch, 1)));
    EXPECT_EQ(parent.last_fault_result(), FaultResult::kHwPoison);
  }
  EXPECT_EQ(kernel.allocator().Stats().hwpoisoned_frames, 1u);
  ExpectContained(parent, base, dead_va);
  EXPECT_GT(ReadVm(VmCounter::k_mf_sigbus), sigbus_before);
  ExpectContained(child, base, dead_va);
  EXPECT_TRUE(debug::VerifyKernel(kernel).ok());
}

TEST_F(MemoryFailureTest, ProcfsReportsCountersAndGauges) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  WriteByte(p, va, std::byte{1});
  ASSERT_EQ(kernel.MemoryFailure(FrameAt(p, va)), MfResult::kRecovered);

  std::string text = FormatMemoryFailure(kernel);
  EXPECT_NE(text.find("memory_failure_compiled 1"), std::string::npos) << text;
  EXPECT_NE(text.find("nr_hwpoisoned_frames 1"), std::string::npos) << text;
  std::string meminfo = FormatMeminfo(kernel);
  EXPECT_NE(meminfo.find("HardwareCorrupted: 4 kB"), std::string::npos) << meminfo;
}

#if ODF_REPLAY_COMPILED
// The acceptance gate: an mf-heavy recorded run — hard offline through shared tables,
// soft offline, an injected ECC delivery — replays deterministically, final memory
// digests and all.
TEST_F(MemoryFailureTest, MfHeavyRecordingReplaysDeterministically) {
  std::string path = ::testing::TempDir() + "mf_replay.odflog";
  replay::RecorderOptions options;
  options.mode = replay::RecorderMode::kFull;
  ASSERT_TRUE(replay::Recorder::Global().Start(options));
  {
    Kernel kernel;
    Process& parent = kernel.CreateProcess();
    Vaddr base = parent.Mmap(kLength, kProtRead | kProtWrite);
    FillPattern(parent, base, kLength, 1);
    Process& child = kernel.Fork(parent, ForkMode::kOnDemand);
    kernel.MemoryFailure(FrameAt(parent, base + 2 * kPageSize));
    kernel.SoftOfflinePage(FrameAt(parent, base + 6 * kPageSize));
    if (ODF_FAULT_INJECT_COMPILED) {
      fi::ScopedInjection inject(FiSite::k_mf_ecc, FiSiteConfig{.nth = 1});
      parent.TouchRange(base + 9 * kPageSize, kPageSize, AccessType::kWrite);
    }
    // Survivors still see every healthy byte; the recording captures the digests.
    std::byte scratch{0};
    child.ReadMemory(base + 3 * kPageSize, std::span(&scratch, 1));
    kernel.Exit(child, 0);
    kernel.Wait(parent);
    std::string error;
    ASSERT_TRUE(replay::StopAndWriteLog(kernel, path, &error)) << error;
  }
  replay::ReplayLog log;
  std::string error;
  ASSERT_TRUE(replay::ReadLogFile(path, &log, &error)) << error;
  ASSERT_TRUE(log.Complete());
  replay::ReplayReport report = replay::Replay(log, replay::ReplayOptions{});
  EXPECT_TRUE(report.ok()) << report.Describe();
  EXPECT_EQ(report.ops_replayed, report.ops_total);
}
#endif  // ODF_REPLAY_COMPILED

using MemoryFailureDeathTest = MemoryFailureTest;

// The NOFAIL accessors CHECK on any failed read; consuming poisoned memory through them
// is a contract violation that must abort loudly, not return garbage.
TEST_F(MemoryFailureDeathTest, LoadThroughPoisonAborts) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  p.StoreU64(va, 0x1234);
  ASSERT_EQ(kernel.MemoryFailure(FrameAt(p, va)), MfResult::kRecovered);
  EXPECT_DEATH((void)p.LoadU64(va), "SEGV reading u64");
}

#endif  // ODF_MEMORY_FAILURE_COMPILED

}  // namespace
}  // namespace odf
