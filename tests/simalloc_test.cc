#include "src/apps/simalloc.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "tests/test_util.h"

namespace odf {
namespace {

class SimHeapTest : public ::testing::Test {
 protected:
  SimHeapTest() : p_(kernel_.CreateProcess()), heap_(SimHeap::Create(p_, 64 << 20)) {}

  Kernel kernel_;
  Process& p_;
  SimHeap heap_;
};

TEST_F(SimHeapTest, AllocReturnsUsableDisjointBlocks) {
  Vaddr a = heap_.Alloc(100);
  Vaddr b = heap_.Alloc(100);
  EXPECT_NE(a, b);
  p_.StoreU64(a, 0x1111);
  p_.StoreU64(b, 0x2222);
  EXPECT_EQ(p_.LoadU64(a), 0x1111u);
  EXPECT_EQ(p_.LoadU64(b), 0x2222u);
  EXPECT_TRUE(heap_.CheckConsistency());
}

TEST_F(SimHeapTest, FreeRecyclesMemory) {
  Vaddr a = heap_.Alloc(256);
  heap_.Free(a);
  Vaddr b = heap_.Alloc(256);
  EXPECT_EQ(a, b) << "exact-size free block should be reused";
  EXPECT_TRUE(heap_.CheckConsistency());
}

TEST_F(SimHeapTest, SplitLargeBlock) {
  Vaddr big = heap_.Alloc(8192);
  heap_.Free(big);
  Vaddr small = heap_.Alloc(128);
  EXPECT_EQ(small, big) << "small alloc should carve the freed big block";
  Vaddr rest = heap_.Alloc(4096);
  // The tail of the split must be available without growing brk.
  EXPECT_GT(rest, small);
  EXPECT_LT(rest, big + 8192 + 64);
  EXPECT_TRUE(heap_.CheckConsistency());
}

TEST_F(SimHeapTest, StatsTrackAllocations) {
  Vaddr a = heap_.Alloc(1000);
  heap_.Alloc(2000);
  SimHeapStats stats = heap_.Stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_GE(stats.allocated_bytes, 3000u);
  heap_.Free(a);
  stats = heap_.Stats();
  EXPECT_EQ(stats.frees, 1u);
  EXPECT_LT(stats.allocated_bytes, 3000u);
}

TEST_F(SimHeapTest, ManyAllocFreeCyclesStayConsistent) {
  Rng rng(11);
  std::map<Vaddr, uint64_t> live;  // addr -> tag
  for (int i = 0; i < 3000; ++i) {
    if (live.size() < 100 && (live.empty() || rng.NextBool(0.6))) {
      uint64_t size = 16 + rng.NextBelow(5000);
      Vaddr block = heap_.Alloc(size);
      uint64_t tag = rng.Next();
      p_.StoreU64(block, tag);
      ASSERT_TRUE(live.emplace(block, tag).second) << "allocator returned a live block";
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      ASSERT_EQ(p_.LoadU64(it->first), it->second) << "heap corruption detected";
      heap_.Free(it->first);
      live.erase(it);
    }
  }
  EXPECT_TRUE(heap_.CheckConsistency());
}

TEST_F(SimHeapTest, AttachSeesSameHeap) {
  Vaddr a = heap_.Alloc(64);
  p_.StoreU64(a, 42);
  SimHeap view = SimHeap::Attach(p_, heap_.base());
  EXPECT_EQ(view.Stats().allocations, heap_.Stats().allocations);
  // Allocations through the second view continue the same heap.
  Vaddr b = view.Alloc(64);
  EXPECT_NE(a, b);
  EXPECT_EQ(p_.LoadU64(a), 42u);
}

TEST_F(SimHeapTest, ForkedChildInheritsHeapCow) {
  Vaddr a = heap_.Alloc(64);
  p_.StoreU64(a, 0xabc);
  Process& child = kernel_.Fork(p_, ForkMode::kOnDemand);
  SimHeap child_heap = SimHeap::Attach(child, heap_.base());
  EXPECT_EQ(child.LoadU64(a), 0xabcu);
  // Child allocations/writes must not disturb the parent heap.
  Vaddr b = child_heap.Alloc(128);
  child.StoreU64(b, 0xdef);
  child.StoreU64(a, 0x999);
  EXPECT_EQ(p_.LoadU64(a), 0xabcu);
  EXPECT_EQ(heap_.Stats().allocations, 1u);
  EXPECT_EQ(child_heap.Stats().allocations, 2u);
  EXPECT_TRUE(heap_.CheckConsistency());
  EXPECT_TRUE(child_heap.CheckConsistency());
}

}  // namespace
}  // namespace odf
