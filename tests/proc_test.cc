// Process and Kernel facade: lifecycle, wait semantics, per-process fork-mode config, the
// typed memory API, and TLB behaviour through the access path.
#include <gtest/gtest.h>

#include "src/apps/lambda.h"
#include "src/debug/verify.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class ProcTest : public ::testing::Test {
 protected:
  Kernel kernel_;
};

TEST_F(ProcTest, PidsAreSequentialAndDistinct) {
  Process& a = kernel_.CreateProcess();
  Process& b = kernel_.CreateProcess();
  EXPECT_NE(a.pid(), b.pid());
  EXPECT_EQ(kernel_.ProcessCount(), 2u);
  EXPECT_EQ(kernel_.FindProcess(a.pid()), &a);
  EXPECT_EQ(kernel_.FindProcess(9999), nullptr);
}

TEST_F(ProcTest, ExitMakesZombieAndReleasesMemory) {
  Process& p = kernel_.CreateProcess();
  Vaddr va = p.Mmap(1 << 20, kProtRead | kProtWrite);
  FillPattern(p, va, 1 << 20, 1);
  ASSERT_GT(kernel_.allocator().Stats().allocated_frames, 0u);
  kernel_.Exit(p, 42);
  EXPECT_EQ(p.state(), ProcessState::kZombie);
  EXPECT_EQ(p.exit_code(), 42);
  EXPECT_TRUE(kernel_.allocator().AllFree()) << "exit must tear down the address space";
  EXPECT_EQ(kernel_.ProcessCount(), 1u) << "zombie remains until reaped";
}

TEST_F(ProcTest, WaitReapsOnlyZombieChildren) {
  Process& parent = kernel_.CreateProcess();
  Process& child1 = kernel_.Fork(parent, ForkMode::kOnDemand);
  Process& child2 = kernel_.Fork(parent, ForkMode::kOnDemand);
  EXPECT_EQ(kernel_.Wait(parent), -1) << "no zombies yet";
  Pid child1_pid = child1.pid();
  kernel_.Exit(child1, 0);
  EXPECT_EQ(kernel_.Wait(parent), child1_pid);
  EXPECT_EQ(kernel_.Wait(parent), -1);
  Pid child2_pid = child2.pid();
  kernel_.Exit(child2, 0);
  EXPECT_EQ(kernel_.Wait(parent), child2_pid);
  EXPECT_EQ(kernel_.ProcessCount(), 1u);
}

TEST_F(ProcTest, WaitDoesNotReapOtherProcessesChildren) {
  Process& parent = kernel_.CreateProcess();
  Process& stranger = kernel_.CreateProcess();
  Process& child = kernel_.Fork(parent, ForkMode::kClassic);
  kernel_.Exit(child, 0);
  EXPECT_EQ(kernel_.Wait(stranger), -1);
  EXPECT_NE(kernel_.Wait(parent), -1);
}

TEST_F(ProcTest, ForkModeConfigIsInherited) {
  kernel_.set_default_fork_mode(ForkMode::kOnDemand);
  Process& p = kernel_.CreateProcess();
  EXPECT_EQ(p.fork_mode(), ForkMode::kOnDemand);
  Process& child = kernel_.Fork(p);  // Uses the configured mode.
  EXPECT_EQ(child.fork_mode(), ForkMode::kOnDemand);
  EXPECT_EQ(kernel_.fork_counters().on_demand_forks, 1u);
  EXPECT_EQ(kernel_.fork_counters().classic_forks, 0u);

  child.set_fork_mode(ForkMode::kClassic);
  Process& grandchild = kernel_.Fork(child);
  EXPECT_EQ(grandchild.fork_mode(), ForkMode::kClassic);
  EXPECT_EQ(kernel_.fork_counters().classic_forks, 1u);
}

TEST_F(ProcTest, TypedAccessorsRoundTrip) {
  Process& p = kernel_.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  p.StoreU64(va, 0x1122334455667788ULL);
  EXPECT_EQ(p.LoadU64(va), 0x1122334455667788ULL);
  p.StoreU32(va + 8, 0xabcd1234u);
  EXPECT_EQ(p.LoadU32(va + 8), 0xabcd1234u);
  // Little-endian composition check: the u32 sits inside the following u64 read.
  EXPECT_EQ(p.LoadU64(va + 8) & 0xffffffffu, 0xabcd1234u);
}

TEST_F(ProcTest, ReadStringStopsAtNulAndSegv) {
  Process& p = kernel_.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  const char text[] = "hello world";
  ASSERT_TRUE(p.WriteMemory(va, std::as_bytes(std::span(text))));
  EXPECT_EQ(p.ReadString(va, 100), "hello world");
  EXPECT_EQ(p.ReadString(va, 5), "hello");
  // A string running off the mapping ends at the fault instead of dying.
  Vaddr tail = va + kPageSize - 3;
  ASSERT_TRUE(p.WriteMemory(tail, std::as_bytes(std::span("ab", 2))));
  EXPECT_EQ(p.ReadString(tail, 100), "ab");
}

TEST_F(ProcTest, TouchRangeFaultsEveryPage) {
  Process& p = kernel_.CreateProcess();
  Vaddr va = p.Mmap(16 * kPageSize, kProtRead | kProtWrite);
  EXPECT_TRUE(p.TouchRange(va, 16 * kPageSize, AccessType::kWrite));
  EXPECT_EQ(p.address_space().CountPresentPtes(), 16u);
  EXPECT_FALSE(p.TouchRange(va, 17 * kPageSize, AccessType::kRead))
      << "touching past the VMA must report the SEGV";
}

TEST_F(ProcTest, TlbAcceleratesRepeatedAccess) {
  Process& p = kernel_.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  WriteByte(p, va, std::byte{1});
  const TlbStats& stats = p.address_space().tlb().stats();
  uint64_t hits_before = stats.hits;
  for (int i = 0; i < 100; ++i) {
    ReadByte(p, va);
  }
  EXPECT_GE(stats.hits - hits_before, 99u) << "hot-page reads must be TLB hits";
}

TEST_F(ProcTest, TlbFlushedOnFork) {
  Process& p = kernel_.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  WriteByte(p, va, std::byte{1});
  uint64_t flushes_before = p.address_space().tlb().stats().flushes;
  kernel_.Fork(p, ForkMode::kOnDemand);
  EXPECT_GT(p.address_space().tlb().stats().flushes, flushes_before)
      << "the parent's TLB must be flushed when its PMDs lose write permission";
  // And the stale cached writable translation must not bypass COW:
  WriteByte(p, va, std::byte{2});
  EXPECT_EQ(ReadByte(p, va), std::byte{2});
}

TEST(LambdaTest, WarmInvocationMatchesColdResult) {
  Kernel kernel;
  LambdaConfig config;
  config.runtime_image_bytes = 8 << 20;
  config.state_table_entries = 1 << 14;
  LambdaPlatform platform = LambdaPlatform::Deploy(kernel, config);

  uint8_t payload[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  // The warm path's whole advantage is fork speed; under the debug-vm preset every fork
  // and exit also runs an O(mapped memory) kernel verification, which swamps the timing
  // comparison. Disarm the hook for the timed region only.
  debug::SetAutoVerify(false);
  LambdaInvocation warm = platform.Invoke(payload);
  LambdaInvocation cold = platform.InvokeCold(payload);
  debug::SetAutoVerify(true);
  EXPECT_EQ(warm.result, cold.result) << "template cloning must not change handler output";
  EXPECT_LT(warm.startup_us, cold.startup_us) << "warm start must beat cold start";
  EXPECT_EQ(kernel.ProcessCount(), 2u);  // Template + the cold zombie (never reaped).
}

TEST(LambdaTest, InvocationsAreIsolated) {
  Kernel kernel;
  LambdaConfig config;
  config.runtime_image_bytes = 4 << 20;
  config.state_table_entries = 1 << 12;
  LambdaPlatform platform = LambdaPlatform::Deploy(kernel, config);
  uint8_t a[1] = {1};
  uint8_t b[1] = {2};
  uint64_t first = platform.Invoke(a).result;
  platform.Invoke(b);
  EXPECT_EQ(platform.Invoke(a).result, first)
      << "clone writes must never leak back into the template";
}

}  // namespace
}  // namespace odf
