// madvise(MADV_DONTNEED) and mincore analogs, including their interaction with COW sharing
// and the swap device.
#include <gtest/gtest.h>

#include "src/mm/reclaim.h"
#include "src/proc/auditor.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class MadviseTest : public ::testing::Test {
 protected:
  MadviseTest() : p_(kernel_.CreateProcess()) {}

  Kernel kernel_;
  Process& p_;
};

TEST_F(MadviseTest, DontNeedZeroesAnonymousMemory) {
  Vaddr va = p_.Mmap(16 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 16 * kPageSize, 1);
  uint64_t frames_before = kernel_.allocator().Stats().allocated_frames;
  p_.MadviseDontNeed(va, 16 * kPageSize);
  EXPECT_LT(kernel_.allocator().Stats().allocated_frames, frames_before)
      << "DONTNEED must release the backing frames";
  for (Vaddr addr = va; addr < va + 16 * kPageSize; addr += kPageSize) {
    EXPECT_EQ(ReadByte(p_, addr), std::byte{0});
  }
  // The mapping itself survives: writes work again.
  WriteByte(p_, va, std::byte{7});
  EXPECT_EQ(ReadByte(p_, va), std::byte{7});
}

TEST_F(MadviseTest, DontNeedOnSubrangeKeepsTheRest) {
  Vaddr va = p_.Mmap(8 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 8 * kPageSize, 2);
  p_.MadviseDontNeed(va + 2 * kPageSize, 2 * kPageSize);
  ExpectPattern(p_, va, 2 * kPageSize, 2);
  EXPECT_EQ(ReadByte(p_, va + 2 * kPageSize), std::byte{0});
  EXPECT_EQ(ReadByte(p_, va + 3 * kPageSize), std::byte{0});
  ExpectPattern(p_, va + 4 * kPageSize, 4 * kPageSize, 2);
  EXPECT_EQ(p_.address_space().vmas().size(), 1u) << "madvise must not split the VMA";
}

TEST_F(MadviseTest, DontNeedRevertsPrivateFilePagesToCache) {
  auto file = kernel_.fs().Open("/f");
  std::vector<std::byte> content(2 * kPageSize, std::byte{0x44});
  file->Write(0, content);
  Vaddr va = p_.address_space().MapFile(file, 0, 2 * kPageSize, kProtRead | kProtWrite,
                                        /*shared=*/false);
  WriteByte(p_, va, std::byte{0x99});  // COW off the cache.
  EXPECT_EQ(ReadByte(p_, va), std::byte{0x99});
  p_.MadviseDontNeed(va, 2 * kPageSize);
  EXPECT_EQ(ReadByte(p_, va), std::byte{0x44}) << "DONTNEED must restore the file view";
}

TEST_F(MadviseTest, DontNeedInChildLeavesParentAndSharedTableIntact) {
  Vaddr va = p_.Mmap(2 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 2 * kHugePageSize, 3);
  Process& child = kernel_.Fork(p_, ForkMode::kOnDemand);
  child.MadviseDontNeed(va, 2 * kHugePageSize);
  EXPECT_EQ(ReadByte(child, va), std::byte{0});
  ExpectPattern(p_, va, 2 * kHugePageSize, 3);
  AuditResult audit = AuditKernel(kernel_);
  EXPECT_TRUE(audit.ok()) << audit.Describe();
}

TEST_F(MadviseTest, DontNeedReleasesSwapSlots) {
  Vaddr va = p_.Mmap(32 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 32 * kPageSize, 4);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  ASSERT_GT(kernel_.swap_space().Stats().slots_in_use, 0u);
  p_.MadviseDontNeed(va, 32 * kPageSize);
  EXPECT_TRUE(kernel_.swap_space().AllFree())
      << "dropping swapped pages must free their slots";
  EXPECT_EQ(ReadByte(p_, va), std::byte{0});
}

TEST_F(MadviseTest, MincoreReportsResidency) {
  Vaddr va = p_.Mmap(8 * kPageSize, kProtRead | kProtWrite);
  WriteByte(p_, va + kPageSize, std::byte{1});
  WriteByte(p_, va + 5 * kPageSize, std::byte{1});
  std::vector<uint8_t> residency = p_.Mincore(va, 8 * kPageSize);
  ASSERT_EQ(residency.size(), 8u);
  EXPECT_EQ(residency[0], 0);
  EXPECT_EQ(residency[1], 1);
  EXPECT_EQ(residency[5], 1);
  EXPECT_EQ(residency[7], 0);
}

TEST_F(MadviseTest, MincoreReportsSwappedPages) {
  Vaddr va = p_.Mmap(4 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 4 * kPageSize, 5);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  std::vector<uint8_t> residency = p_.Mincore(va, 4 * kPageSize);
  for (uint8_t state : residency) {
    EXPECT_EQ(state, 2) << "every page should be on swap";
  }
  ExpectPattern(p_, va, 4 * kPageSize, 5);  // Swap back in.
  residency = p_.Mincore(va, 4 * kPageSize);
  for (uint8_t state : residency) {
    EXPECT_EQ(state, 1);
  }
}

TEST_F(MadviseTest, MincoreSeesHugeMappings) {
  Vaddr va = p_.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  std::vector<uint8_t> before = p_.Mincore(va, kHugePageSize);
  for (uint8_t state : before) {
    EXPECT_EQ(state, 0);
  }
  WriteByte(p_, va, std::byte{1});
  std::vector<uint8_t> after = p_.Mincore(va, kHugePageSize);
  for (uint8_t state : after) {
    EXPECT_EQ(state, 1) << "one write populates the whole 2 MiB mapping";
  }
}

TEST_F(MadviseTest, FuzzerStyleResetLoop) {
  // The fuzzing pattern madvise exists for: reset a scratch region between runs without
  // remapping. Every iteration must observe zeros, cheaply.
  Vaddr scratch = p_.Mmap(64 * kPageSize, kProtRead | kProtWrite);
  for (int run = 0; run < 20; ++run) {
    EXPECT_EQ(ReadByte(p_, scratch + static_cast<uint64_t>(run) * kPageSize), std::byte{0});
    ASSERT_TRUE(p_.MemsetMemory(scratch, std::byte{0xcc}, 64 * kPageSize));
    p_.MadviseDontNeed(scratch, 64 * kPageSize);
  }
  EXPECT_TRUE(kernel_.allocator().Stats().allocated_frames <
              64 + kernel_.allocator().Stats().page_table_frames + 8)
      << "the reset loop must not accumulate frames";
}

}  // namespace
}  // namespace odf
