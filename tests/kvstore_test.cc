#include "src/apps/kvstore.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace odf {
namespace {

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest()
      : p_(kernel_.CreateProcess()),
        store_(KvStore::Create(kernel_, p_, 256 << 20, /*bucket_count=*/4096)) {}

  Kernel kernel_;
  Process& p_;
  KvStore store_;
};

TEST_F(KvStoreTest, SetGetRoundTrip) {
  store_.Set("alpha", "one");
  store_.Set("beta", "two");
  EXPECT_EQ(store_.Get("alpha"), "one");
  EXPECT_EQ(store_.Get("beta"), "two");
  EXPECT_EQ(store_.Get("gamma"), std::nullopt);
  EXPECT_EQ(store_.Count(), 2u);
}

TEST_F(KvStoreTest, OverwriteSameSizeAndDifferentSize) {
  store_.Set("k", "aaaa");
  store_.Set("k", "bbbb");
  EXPECT_EQ(store_.Get("k"), "bbbb");
  EXPECT_EQ(store_.Count(), 1u);
  store_.Set("k", "a-longer-value");
  EXPECT_EQ(store_.Get("k"), "a-longer-value");
  EXPECT_EQ(store_.Count(), 1u);
}

TEST_F(KvStoreTest, DeleteRemovesKey) {
  store_.Set("k1", "v1");
  store_.Set("k2", "v2");
  EXPECT_TRUE(store_.Delete("k1"));
  EXPECT_FALSE(store_.Delete("k1"));
  EXPECT_EQ(store_.Get("k1"), std::nullopt);
  EXPECT_EQ(store_.Get("k2"), "v2");
  EXPECT_EQ(store_.Count(), 1u);
}

TEST_F(KvStoreTest, CollidingKeysChainCorrectly) {
  // With 4096 buckets, 10k keys guarantee chains.
  for (int i = 0; i < 10000; ++i) {
    store_.Set("key:" + std::to_string(i), "value-" + std::to_string(i));
  }
  EXPECT_EQ(store_.Count(), 10000u);
  for (int i = 0; i < 10000; i += 97) {
    EXPECT_EQ(store_.Get("key:" + std::to_string(i)), "value-" + std::to_string(i));
  }
  // Delete every third key, verify the rest survive the unlinking.
  for (int i = 0; i < 10000; i += 3) {
    EXPECT_TRUE(store_.Delete("key:" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    auto value = store_.Get("key:" + std::to_string(i));
    if (i % 3 == 0) {
      EXPECT_EQ(value, std::nullopt);
    } else {
      EXPECT_EQ(value, "value-" + std::to_string(i));
    }
  }
}

TEST_F(KvStoreTest, FillSequentialLoadsDataset) {
  Rng rng(1);
  store_.FillSequential(1000, 512, rng);
  EXPECT_EQ(store_.Count(), 1000u);
  EXPECT_GE(store_.Stats().bytes_in_heap, 1000u * 512u);
  EXPECT_TRUE(store_.Get("key:999").has_value());
}

TEST_F(KvStoreTest, SnapshotSerializesAllEntries) {
  Rng rng(2);
  store_.FillSequential(500, 128, rng);
  uint64_t bytes = store_.SaveSnapshot("/snap.rdb");
  // 500 entries x (8 header + keylen + 128 value).
  EXPECT_GT(bytes, 500u * 136u);
  auto file = kernel_.fs().Lookup("/snap.rdb");
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->size(), bytes);
}

class KvSnapshotForkTest : public KvStoreTest,
                           public ::testing::WithParamInterface<ForkMode> {};

TEST_P(KvSnapshotForkTest, SnapshotIsConsistentWhileParentMutates) {
  Rng rng(3);
  store_.FillSequential(300, 64, rng);

  // Snapshot via fork, then mutate the parent immediately; the snapshot file must reflect
  // the pre-fork state (300 entries), not the mutations.
  double blocked = store_.SnapshotWithFork("/snap.rdb", GetParam());
  EXPECT_GT(blocked, 0.0);
  store_.Set("after", "snapshot");
  EXPECT_EQ(store_.Count(), 301u);

  auto file = kernel_.fs().Lookup("/snap.rdb");
  ASSERT_NE(file, nullptr);
  // Parse the snapshot: count records.
  uint64_t offset = 0;
  uint64_t records = 0;
  while (offset < file->size()) {
    uint32_t lens[2];
    file->Read(offset, std::as_writable_bytes(std::span(lens)));
    offset += 8 + lens[0] + lens[1];
    ++records;
  }
  EXPECT_EQ(records, 300u);
}

TEST_P(KvSnapshotForkTest, RepeatedSnapshotsLeakNothing) {
  Rng rng(4);
  store_.FillSequential(200, 64, rng);
  for (int round = 0; round < 5; ++round) {
    store_.SnapshotWithFork("/snap.rdb", GetParam());
    store_.Set("round:" + std::to_string(round), "x");
  }
  EXPECT_EQ(store_.Count(), 205u);
  uint64_t processes = kernel_.ProcessCount();
  EXPECT_EQ(processes, 1u) << "snapshot children must be reaped";
}

INSTANTIATE_TEST_SUITE_P(BothForks, KvSnapshotForkTest,
                         ::testing::Values(ForkMode::kClassic, ForkMode::kOnDemand),
                         [](const auto& param_info) {
                           return param_info.param == ForkMode::kClassic ? "classic" : "ondemand";
                         });

}  // namespace
}  // namespace odf
