#include "src/phys/frame_allocator.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace odf {
namespace {

TEST(FrameAllocatorTest, AllocateReturnsDistinctFrames) {
  FrameAllocator allocator;
  std::set<FrameId> seen;
  for (int i = 0; i < 1000; ++i) {
    FrameId frame = allocator.Allocate(kPageFlagAnon);
    EXPECT_TRUE(seen.insert(frame).second) << "frame " << frame << " handed out twice";
  }
  EXPECT_EQ(allocator.Stats().allocated_frames, 1000u);
}

TEST(FrameAllocatorTest, AllocateSetsInitialState) {
  FrameAllocator allocator;
  FrameId frame = allocator.Allocate(kPageFlagAnon);
  const PageMeta& meta = allocator.GetMeta(frame);
  EXPECT_EQ(meta.refcount.load(), 1u);
  EXPECT_TRUE((meta.flags & kPageFlagAllocated) != 0);
  EXPECT_FALSE(meta.IsCompound());
  EXPECT_EQ(meta.compound_head, frame);
  EXPECT_EQ(allocator.PeekData(frame), nullptr) << "data must be lazy for non-table frames";
}

TEST(FrameAllocatorTest, PageTableFramesAreMaterializedAndZeroed) {
  FrameAllocator allocator;
  FrameId frame = allocator.Allocate(kPageFlagPageTable);
  EXPECT_TRUE(allocator.GetMeta(frame).IsPageTable());
  uint64_t* entries = allocator.TableEntries(frame);
  ASSERT_NE(entries, nullptr);
  for (uint64_t i = 0; i < kPageSize / sizeof(uint64_t); ++i) {
    EXPECT_EQ(entries[i], 0u);
  }
}

TEST(FrameAllocatorTest, DecRefFreesAtZero) {
  FrameAllocator allocator;
  FrameId frame = allocator.Allocate(kPageFlagAnon);
  allocator.IncRef(frame);
  allocator.DecRef(frame);
  EXPECT_EQ(allocator.Stats().allocated_frames, 1u);
  allocator.DecRef(frame);
  EXPECT_EQ(allocator.Stats().allocated_frames, 0u);
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameAllocatorTest, FreedFramesAreRecycled) {
  FrameAllocator allocator;
  FrameId first = allocator.Allocate(kPageFlagAnon);
  allocator.DecRef(first);
  FrameId second = allocator.Allocate(kPageFlagAnon);
  EXPECT_EQ(first, second);
}

TEST(FrameAllocatorTest, MaterializeZeroFillsAndAccounts) {
  FrameAllocator allocator;
  FrameId frame = allocator.Allocate(kPageFlagAnon);
  std::byte* data = allocator.MaterializeData(frame);
  ASSERT_NE(data, nullptr);
  for (uint64_t i = 0; i < kPageSize; ++i) {
    EXPECT_EQ(data[i], std::byte{0});
  }
  EXPECT_EQ(allocator.Stats().materialized_bytes, kPageSize);
  EXPECT_EQ(allocator.MaterializeData(frame), data) << "second materialize must be idempotent";
  allocator.DecRef(frame);
  EXPECT_EQ(allocator.Stats().materialized_bytes, 0u);
}

TEST(FrameAllocatorTest, CompoundAllocationShapesHeadAndTails) {
  FrameAllocator allocator;
  FrameId head = allocator.AllocateCompound(kPageFlagAnon);
  EXPECT_EQ(head % (1u << kHugePageOrder), 0u) << "compound head must be 512-aligned";
  const PageMeta& head_meta = allocator.GetMeta(head);
  EXPECT_TRUE(head_meta.IsCompoundHead());
  EXPECT_EQ(head_meta.order, kHugePageOrder);
  EXPECT_EQ(head_meta.refcount.load(), 1u);
  for (FrameId i = 1; i < (1u << kHugePageOrder); ++i) {
    const PageMeta& tail = allocator.GetMeta(head + i);
    EXPECT_TRUE(tail.IsCompoundTail());
    EXPECT_EQ(tail.compound_head, head);
    EXPECT_EQ(ResolveCompoundHead(tail, head + i), head);
  }
  EXPECT_EQ(allocator.Stats().allocated_frames, 1u << kHugePageOrder);
}

TEST(FrameAllocatorTest, CompoundTailDataPointsIntoHeadBuffer) {
  FrameAllocator allocator;
  FrameId head = allocator.AllocateCompound(kPageFlagAnon);
  std::byte* head_data = allocator.MaterializeData(head);
  std::byte* tail_data = allocator.MaterializeData(head + 3);
  EXPECT_EQ(tail_data, head_data + 3 * kPageSize);
  EXPECT_EQ(allocator.Stats().materialized_bytes, kHugePageSize);
}

TEST(FrameAllocatorTest, CompoundFreeReleasesWholeUnitAndRecycles) {
  FrameAllocator allocator;
  FrameId head = allocator.AllocateCompound(kPageFlagAnon);
  allocator.DecRef(head);
  EXPECT_TRUE(allocator.AllFree());
  FrameId again = allocator.AllocateCompound(kPageFlagAnon);
  EXPECT_EQ(again, head) << "freed compounds should be recycled whole";
}

TEST(FrameAllocatorTest, MixedSinglesAndCompoundsDoNotCollide) {
  FrameAllocator allocator;
  std::vector<FrameId> singles;
  for (int i = 0; i < 100; ++i) {
    singles.push_back(allocator.Allocate(kPageFlagAnon));
  }
  FrameId head = allocator.AllocateCompound(kPageFlagAnon);
  for (FrameId single : singles) {
    EXPECT_TRUE(single < head || single >= head + (1u << kHugePageOrder));
  }
}

TEST(FrameAllocatorTest, GrowsBeyondOneChunk) {
  FrameAllocator allocator;
  // One chunk is 65536 frames; allocate past it.
  std::vector<FrameId> frames;
  for (int i = 0; i < 70000; ++i) {
    frames.push_back(allocator.Allocate(kPageFlagAnon));
  }
  EXPECT_GE(allocator.Stats().total_frames, 70000u);
  for (FrameId frame : frames) {
    allocator.DecRef(frame);
  }
  EXPECT_TRUE(allocator.AllFree());
}

}  // namespace
}  // namespace odf
