// The odf::reclaim subsystem end to end (ctest labels: reclaim, concurrency):
// reverse-map bookkeeping under both fork flavours, LRU second-chance aging,
// workingset refault detection, watermark-driven kswapd balancing, and the
// acceptance workload from docs/reclaim.md — a working set twice the frame pool
// that completes through reclaim alone, byte-checked, with zero OOM kills.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/debug/verify.h"
#include "src/fi/fault_inject.h"
#include "src/proc/procfs.h"
#include "src/reclaim/kswapd.h"
#include "src/reclaim/lru.h"
#include "src/reclaim/rmap.h"
#include "src/trace/metrics.h"
#include "tests/test_util.h"

namespace odf {
namespace {

// The built-in vmstat counters are process-global, so every assertion works on deltas.
class CounterDelta {
 public:
  explicit CounterDelta(VmCounter counter)
      : counter_(counter), start_(ReadVm(counter)) {}
  uint64_t Get() const { return ReadVm(counter_) - start_; }

 private:
  VmCounter counter_;
  uint64_t start_;
};

uint64_t VmstatValue(const std::string& vmstat, const std::string& name) {
  std::istringstream in(vmstat);
  std::string line;
  while (std::getline(in, line)) {
    size_t space = line.find(' ');
    if (space != std::string::npos && line.substr(0, space) == name) {
      return std::stoull(line.substr(space + 1));
    }
  }
  ADD_FAILURE() << "vmstat has no line for " << name;
  return 0;
}

void ExpectVerifies(Kernel& kernel) {
  debug::VerifyResult result = debug::VerifyKernel(kernel);
  EXPECT_TRUE(result.ok()) << result.Describe();
}

// --- Rmap bookkeeping ---

TEST(RmapTest, TracksLeafInstallAndClear) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  reclaim::RmapRegistry& rmap = kernel.rmap();
  ASSERT_EQ(rmap.TotalLocations(), 0u);

  Vaddr va = p.Mmap(8 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, 8 * kPageSize, 1);
  EXPECT_EQ(rmap.TotalLocations(), 8u);
  EXPECT_EQ(rmap.MappedFrames(), 8u);
  EXPECT_EQ(kernel.lru().Size(), 8u) << "anonymous order-0 frames join the LRU";
  ExpectVerifies(kernel);

  p.Munmap(va, 8 * kPageSize);
  EXPECT_EQ(rmap.TotalLocations(), 0u);
  EXPECT_EQ(kernel.lru().Size(), 0u);
  ExpectVerifies(kernel);
}

TEST(RmapTest, HugePagesAreMappedButNotLruManaged) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  WriteByte(p, va, std::byte{0x5a});
  EXPECT_EQ(kernel.rmap().TotalLocations(), 1u) << "one huge PMD entry, one location";
  EXPECT_EQ(kernel.lru().Size(), 0u) << "compound pages are not reclaim candidates";
  ExpectVerifies(kernel);
}

TEST(RmapTest, SharedPteTableIsOneLocationPerSlot) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(8 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, 8 * kPageSize, 2);
  ASSERT_EQ(kernel.rmap().TotalLocations(), 8u);

  // On-demand fork shares the PTE table: the same 8 slots now map the frames into both
  // processes, so the registry must NOT grow — the fan-out lives in pt_share_count (§3.6).
  Process& odf_child = kernel.Fork(p, ForkMode::kOnDemand);
  EXPECT_EQ(kernel.rmap().TotalLocations(), 8u)
      << "a shared table contributes one location per slot, not one per sharer";

  // A write through the shared table COW-breaks it: the child gets a private copy whose 8
  // present entries (7 still-shared frames + 1 fresh COW frame) all register.
  WriteByte(odf_child, va, std::byte{0x11});
  EXPECT_EQ(kernel.rmap().TotalLocations(), 16u);
  ExpectVerifies(kernel);

  // Classic fork copies every present leaf entry into its own private table: +8.
  Process& classic_child = kernel.Fork(p, ForkMode::kClassic);
  EXPECT_EQ(kernel.rmap().TotalLocations(), 24u);
  ExpectVerifies(kernel);

  kernel.Exit(classic_child, 0);
  kernel.Exit(odf_child, 0);
  EXPECT_EQ(kernel.rmap().TotalLocations(), 8u) << "teardown unregisters exactly";
  ExpectVerifies(kernel);
}

// --- LRU aging and workingset shadows (direct unit coverage) ---

TEST(LruTest, InactiveTailIsColdestAndSecondChanceReinserts) {
  reclaim::PageLru lru;
  lru.Insert(1, /*active=*/false);
  lru.Insert(2, /*active=*/false);
  lru.Insert(3, /*active=*/false);
  EXPECT_EQ(lru.InactiveSize(), 3u);

  std::vector<FrameId> batch;
  ASSERT_EQ(lru.TakeInactive(2, &batch), 2u);
  EXPECT_EQ(batch[0], 1u) << "tail of the inactive list is the first inserted (coldest)";
  EXPECT_EQ(batch[1], 2u);

  lru.PutBack(batch[0], /*active=*/true);  // Referenced: promoted.
  lru.PutBack(batch[1], /*active=*/false);
  EXPECT_EQ(lru.ActiveSize(), 1u);
  EXPECT_EQ(lru.InactiveSize(), 2u);

  lru.Activate(3);
  EXPECT_EQ(lru.ActiveSize(), 2u);
  lru.Erase(3);
  EXPECT_EQ(lru.Size(), 2u);
}

TEST(LruTest, RefaultWithinHorizonCountsAndConsumesShadow) {
  reclaim::PageLru lru;
  CounterDelta refaults(VmCounter::k_pgrefault);
  lru.RecordEviction(/*slot=*/7);
  EXPECT_EQ(lru.ShadowCount(), 1u);
  EXPECT_TRUE(lru.NoteRefault(7)) << "distance 0 is always within the workingset";
  EXPECT_EQ(refaults.Get(), 1u);
  EXPECT_EQ(lru.ShadowCount(), 0u) << "a shadow is consumed by its refault";
  EXPECT_FALSE(lru.NoteRefault(7)) << "no shadow, no refault";
  EXPECT_FALSE(lru.NoteRefault(99)) << "never-evicted slots are not refaults";
}

// --- Direct reclaim through the kernel entry point ---

TEST(ReclaimTest, DirectReclaimEvictsColdPagesAndFaultsBackByteIdentical) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(64 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, 64 * kPageSize, 3);

  CounterDelta scanned(VmCounter::k_pgscan);
  CounterDelta stolen(VmCounter::k_pgsteal);
  uint64_t freed = kernel.ReclaimMemory(16);
  EXPECT_GE(freed, 16u) << "aging rounds must defeat the freshly-set accessed bits";
  EXPECT_GT(scanned.Get(), 0u);
  EXPECT_GE(stolen.Get(), freed);
  EXPECT_GT(kernel.swap_space().Stats().writes, 0u);
  ExpectVerifies(kernel);

  // Every page faults back byte-identical, and recent evictions count as refaults.
  CounterDelta refaults(VmCounter::k_pgrefault);
  ExpectPattern(p, va, 64 * kPageSize, 3);
  EXPECT_GT(refaults.Get(), 0u) << "immediate re-touch is inside the workingset horizon";
  ExpectVerifies(kernel);
}

// The headline satellite: evict a frame that is mapped through an on-demand-SHARED PTE
// table, then make every forked child fault it back. The data must round-trip
// byte-identical through the swap device and the verifier must find the table share
// counts exactly balanced afterwards.
TEST(ReclaimTest, SharedTableEvictionFaultsBackInAllChildren) {
  constexpr int kChildren = 4;
  constexpr uint64_t kBytes = 32 * kPageSize;
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr va = parent.Mmap(kBytes, kProtRead | kProtWrite);
  FillPattern(parent, va, kBytes, 4);

  std::vector<Process*> children;
  for (int i = 0; i < kChildren; ++i) {
    children.push_back(&kernel.Fork(parent, ForkMode::kOnDemand));
  }
  ASSERT_EQ(kernel.rmap().TotalLocations(), kBytes / kPageSize)
      << "all children share the parent's leaf slots";

  CounterDelta stolen(VmCounter::k_pgsteal);
  uint64_t freed = kernel.ReclaimMemory(kBytes / kPageSize);
  EXPECT_GT(freed, 0u) << "pages under shared tables must be evictable via the rmap";
  EXPECT_GT(kernel.swap_space().Stats().writes, 0u);
  ExpectVerifies(kernel);

  // Children first (their faults go through the shared-table paths), parent last.
  for (Process* child : children) {
    ExpectPattern(*child, va, kBytes, 4);
  }
  ExpectPattern(parent, va, kBytes, 4);
  EXPECT_GT(stolen.Get(), 0u);
  ExpectVerifies(kernel);  // Walk/rmap bijection AND pt_share_count balance.

  for (Process* child : children) {
    kernel.Exit(*child, 0);
  }
  ExpectVerifies(kernel);
}

TEST(ReclaimTest, RmapAllocFailureMakesFrameUnevictableNotLost) {
#if !ODF_FAULT_INJECT_COMPILED
  GTEST_SKIP() << "fault-injection hooks compiled out (ODF_FAULT_INJECT=OFF)";
#endif
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kPageSize, kProtRead | kProtWrite);
  {
    // The rmap entry for the faulted-in page fails to allocate: the mapping still
    // registers (accounting stays exact) but the frame goes sticky-unstable.
    fi::ScopedInjection inject(FiSite::k_rmap_alloc,
                               FiSiteConfig{.probability = 1.0, .times = 1});
    WriteByte(p, va, std::byte{0x77});
  }
  ExpectVerifies(kernel);  // An injected rmap failure must not unbalance the registry.

  uint64_t swap_writes_before = kernel.swap_space().Stats().writes;
  kernel.ReclaimMemory(1);
  kernel.ReclaimMemory(1);  // Second pass: the accessed-bit second chance is spent.
  EXPECT_EQ(kernel.swap_space().Stats().writes, swap_writes_before)
      << "the shrinker must refuse rmap-unstable frames";
  EXPECT_EQ(ReadByte(p, va), std::byte{0x77});
  ExpectVerifies(kernel);
}

// --- Watermarks and the background daemon ---

TEST(WatermarkTest, DerivedDefaultsScaleWithTheLimitAndExplicitValuesPin) {
  Kernel kernel;
  kernel.SetMemoryLimitFrames(640);
  FrameAllocator::Watermarks wm = kernel.allocator().watermarks();
  EXPECT_EQ(wm.min, 640 / 64 + 4);
  EXPECT_EQ(wm.low, 2 * wm.min);
  EXPECT_EQ(wm.high, 3 * wm.min);

  kernel.allocator().SetWatermarks({.min = 5, .low = 11, .high = 23});
  kernel.SetMemoryLimitFrames(1280);  // Explicit values survive a limit change.
  wm = kernel.allocator().watermarks();
  EXPECT_EQ(wm.min, 5u);
  EXPECT_EQ(wm.low, 11u);
  EXPECT_EQ(wm.high, 23u);
}

TEST(KswapdTest, PressureBelowLowWatermarkWakesDaemonWhichBalancesToHigh) {
  constexpr uint64_t kLimit = 512;
  Kernel kernel;
  kernel.SetMemoryLimitFrames(kLimit);
  kernel.StartKswapd();
  ASSERT_NE(kernel.kswapd(), nullptr);
  ASSERT_TRUE(kernel.kswapd()->Running());

  CounterDelta wakes(VmCounter::k_kswapd_wake);
  Process& p = kernel.CreateProcess();
  constexpr uint64_t kPages = 500;  // Deep past LOW (24 for this limit).
  Vaddr va = p.Mmap(kPages * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, kPages * kPageSize, 5);

  // The allocations crossed the LOW watermark, so the pressure callback must have fired;
  // the daemon then reclaims in the background until free frames recover to HIGH.
  uint64_t high = kernel.allocator().watermarks().high;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((kernel.allocator().FreeFrames() < high ||
          kernel.kswapd()->stats().wakeups.load() == 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(kernel.kswapd()->stats().wakeups.load(), 0u);
  EXPECT_GT(wakes.Get(), 0u);
  EXPECT_GE(kernel.allocator().FreeFrames(), high)
      << "kswapd balances until the high watermark";
  EXPECT_GT(kernel.kswapd()->stats().pages_freed.load(), 0u);

  // The evicted pages come back byte-identical while the daemon keeps running.
  ExpectPattern(p, va, kPages * kPageSize, 5);
  kernel.StopKswapd();
  EXPECT_EQ(kernel.kswapd(), nullptr);
  ExpectVerifies(kernel);
}

// --- The docs/reclaim.md acceptance workload ---

// A frame pool HALF the size of the working set: before src/reclaim this configuration
// died in the OOM killer; now it must complete through reclaim with every byte intact.
TEST(ReclaimAcceptanceTest, PoolAtHalfTheWorkingSetCompletesWithZeroCorruption) {
  constexpr uint64_t kWorkingSetPages = 512;
  constexpr uint64_t kPoolFrames = 300;  // ~50% of pages + tables.
  Kernel kernel;
  kernel.SetMemoryLimitFrames(kPoolFrames);

  CounterDelta scanned(VmCounter::k_pgscan);
  CounterDelta stolen(VmCounter::k_pgsteal);
  CounterDelta refaults(VmCounter::k_pgrefault);
  CounterDelta direct(VmCounter::k_direct_reclaim);

  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kWorkingSetPages * kPageSize, kProtRead | kProtWrite);
  // Two full passes: the fill forces eviction of its own tail, the verify refaults
  // everything back in (and evicts again to make room while doing so).
  FillPattern(p, va, kWorkingSetPages * kPageSize, 6);
  ExpectPattern(p, va, kWorkingSetPages * kPageSize, 6);

  EXPECT_EQ(kernel.oom_kills(), 0u) << "reclaim must carry this load without killing";
  EXPECT_GT(scanned.Get(), 0u);
  EXPECT_GT(stolen.Get(), 0u);
  EXPECT_GT(refaults.Get(), 0u);
  EXPECT_GT(direct.Get(), 0u);
  ExpectVerifies(kernel);

  std::string vmstat = FormatVmstat(kernel);
  EXPECT_GT(VmstatValue(vmstat, "pgscan"), 0u);
  EXPECT_GT(VmstatValue(vmstat, "pgsteal"), 0u);
  EXPECT_GT(VmstatValue(vmstat, "pgrefault"), 0u);
}

// The same over-committed workload with the daemon running: mutator faults race kswapd's
// balance rounds (this is the TSan-interesting configuration).
TEST(ReclaimAcceptanceTest, OverCommittedWorkloadCompletesWithKswapdRunning) {
  constexpr uint64_t kWorkingSetPages = 512;
  Kernel kernel;
  kernel.SetMemoryLimitFrames(300);
  kernel.StartKswapd();

  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kWorkingSetPages * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, kWorkingSetPages * kPageSize, 7);
  ExpectPattern(p, va, kWorkingSetPages * kPageSize, 7);

  EXPECT_EQ(kernel.oom_kills(), 0u);
  kernel.StopKswapd();
  ExpectVerifies(kernel);
}

// --- Observability surfaces (docs/observability.md, docs/reclaim.md) ---

TEST(ReclaimProcfsTest, MeminfoReportsPoolLruAndWatermarks) {
  Kernel kernel;
  kernel.SetMemoryLimitFrames(1024);
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(16 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, 16 * kPageSize, 8);

  std::string meminfo = FormatMeminfo(kernel);
  EXPECT_NE(meminfo.find("MemTotal:"), std::string::npos) << meminfo;
  EXPECT_NE(meminfo.find("Inactive(anon):"), std::string::npos) << meminfo;
  EXPECT_NE(meminfo.find("WatermarkLow:"), std::string::npos) << meminfo;

  std::string vmstat = FormatVmstat(kernel);
  EXPECT_EQ(VmstatValue(vmstat, "nr_rmap_locations"), 16u);
  EXPECT_EQ(VmstatValue(vmstat, "nr_inactive_anon") + VmstatValue(vmstat, "nr_active_anon"),
            16u);
  EXPECT_EQ(VmstatValue(vmstat, "kswapd_running"), 0u);
}

}  // namespace
}  // namespace odf
