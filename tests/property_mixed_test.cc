// Second property suite: random op sequences over the FULL feature set — file mappings
// (shared + private), mprotect, mremap, huge mappings, all three fork modes, and a frame
// quota that keeps the reclaimer/swap constantly active — checked against the flat shadow
// model. If any interaction between these features corrupts memory, this finds it.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tests/test_util.h"

namespace odf {
namespace {

struct Region {
  uint64_t length = 0;
  bool writable = true;
  bool huge = false;
};

struct Shadow {
  std::map<Vaddr, Region> regions;
  std::unordered_map<Vaddr, std::byte> bytes;

  Region* Find(Vaddr va, Vaddr* base_out) {
    auto it = regions.upper_bound(va);
    if (it == regions.begin()) {
      return nullptr;
    }
    --it;
    if (va >= it->first + it->second.length) {
      return nullptr;
    }
    *base_out = it->first;
    return &it->second;
  }

  std::byte At(Vaddr va) const {
    auto it = bytes.find(va);
    return it == bytes.end() ? std::byte{0} : it->second;
  }
};

class MixedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MixedPropertyTest, FullFeatureRandomOps) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0xfeedface);
  Kernel kernel;
  // Keep the machine small enough that reclaim/swap runs during the test (but large enough
  // that page tables + the unswappable file/huge pages always fit).
  kernel.SetMemoryLimitFrames(6000);

  auto file = kernel.fs().Open("/shared-data");
  {
    std::vector<std::byte> content(8 * kPageSize);
    for (size_t i = 0; i < content.size(); ++i) {
      content[i] = static_cast<std::byte>(i * 13);
    }
    file->Write(0, content);
  }

  struct Actor {
    Process* process;
    std::unique_ptr<Shadow> shadow;
  };
  std::vector<Actor> actors;
  Process& root = kernel.CreateProcess();
  actors.push_back({&root, std::make_unique<Shadow>()});

  auto map_anon = [&](Actor& actor, bool huge) {
    uint64_t length = huge ? rng.NextInRange(1, 2) * kHugePageSize
                           : rng.NextInRange(4, 600) * kPageSize;
    Vaddr va = actor.process->Mmap(length, kProtRead | kProtWrite, huge);
    actor.shadow->regions[va] = Region{length, true, huge};
    return va;
  };
  map_anon(actors[0], false);
  map_anon(actors[0], false);

  const int kOps = 300;
  for (int op = 0; op < kOps; ++op) {
    Actor& actor = actors[rng.NextBelow(actors.size())];
    Process& p = *actor.process;
    Shadow& shadow = *actor.shadow;

    auto random_region = [&]() -> std::pair<Vaddr, Region*> {
      if (shadow.regions.empty()) {
        return {0, nullptr};
      }
      auto it = shadow.regions.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(shadow.regions.size())));
      return {it->first, &it->second};
    };

    switch (rng.NextBelow(12)) {
      case 0:
      case 1:
      case 2: {  // Write a run.
        auto [base, region] = random_region();
        if (region == nullptr || !region->writable) {
          break;
        }
        uint64_t offset = rng.NextBelow(region->length);
        uint64_t run = std::min<uint64_t>(rng.NextInRange(1, 128), region->length - offset);
        std::vector<std::byte> data(run);
        for (auto& b : data) {
          b = static_cast<std::byte>(rng.Next());
        }
        ASSERT_TRUE(p.WriteMemory(base + offset, data)) << "seed " << seed << " op " << op;
        for (uint64_t i = 0; i < run; ++i) {
          shadow.bytes[base + offset + i] = data[i];
        }
        break;
      }
      case 3:
      case 4: {  // Read-verify a run.
        auto [base, region] = random_region();
        if (region == nullptr) {
          break;
        }
        uint64_t offset = rng.NextBelow(region->length);
        uint64_t run = std::min<uint64_t>(rng.NextInRange(1, 128), region->length - offset);
        std::vector<std::byte> data(run);
        ASSERT_TRUE(p.ReadMemory(base + offset, data));
        for (uint64_t i = 0; i < run; ++i) {
          ASSERT_EQ(data[i], shadow.At(base + offset + i))
              << "seed " << seed << " op " << op << " va " << base + offset + i;
        }
        break;
      }
      case 5: {  // Fork (any mode).
        if (actors.size() >= 5) {
          break;
        }
        static constexpr ForkMode kModes[] = {ForkMode::kClassic, ForkMode::kOnDemand,
                                              ForkMode::kOnDemandHuge};
        Process& child = kernel.Fork(p, kModes[rng.NextBelow(3)]);
        actors.push_back({&child, std::make_unique<Shadow>(shadow)});
        break;
      }
      case 6: {  // Map something new (occasionally huge).
        if (shadow.regions.size() < 7) {
          map_anon(actor, rng.NextBool(0.2));
        }
        break;
      }
      case 7: {  // Unmap a whole region.
        auto [base, region] = random_region();
        if (region == nullptr || shadow.regions.size() <= 1) {
          break;
        }
        p.Munmap(base, region->length);
        for (Vaddr va = base; va < base + region->length; ++va) {
          shadow.bytes.erase(va);
        }
        shadow.regions.erase(base);
        break;
      }
      case 8: {  // mprotect toggle (4 KiB regions only, whole region).
        auto [base, region] = random_region();
        if (region == nullptr || region->huge) {
          break;
        }
        region->writable = !region->writable;
        p.address_space().Protect(base, region->length,
                                  region->writable ? (kProtRead | kProtWrite) : kProtRead);
        // A write to the read-only region must SEGV and change nothing.
        if (!region->writable) {
          std::byte probe{0x55};
          EXPECT_FALSE(p.WriteMemory(base + rng.NextBelow(region->length),
                                     std::span(&probe, 1)));
        }
        break;
      }
      case 9: {  // mremap grow or shrink (4 KiB regions, writable only for simplicity).
        auto [base, region] = random_region();
        if (region == nullptr || region->huge || !region->writable) {
          break;
        }
        uint64_t old_length = region->length;
        uint64_t new_length =
            rng.NextBool() ? old_length + rng.NextInRange(1, 64) * kPageSize
                           : std::max<uint64_t>(kPageSize,
                                                old_length / 2 & ~(kPageSize - 1));
        Region moved = *region;
        moved.length = new_length;
        shadow.regions.erase(base);
        Vaddr new_base = p.Mremap(base, old_length, new_length);
        // Relocate shadow bytes.
        uint64_t keep = std::min(old_length, new_length);
        if (new_base != base) {
          std::vector<std::pair<Vaddr, std::byte>> moved_bytes;
          for (Vaddr va = base; va < base + keep; ++va) {
            auto it = shadow.bytes.find(va);
            if (it != shadow.bytes.end()) {
              moved_bytes.emplace_back(new_base + (va - base), it->second);
              shadow.bytes.erase(it);
            }
          }
          for (auto& [va, b] : moved_bytes) {
            shadow.bytes[va] = b;
          }
        }
        for (Vaddr va = base + keep; va < base + old_length; ++va) {
          shadow.bytes.erase(va);
        }
        shadow.regions[new_base] = moved;
        break;
      }
      case 10: {  // Map the shared file somewhere (read-only view; content never changes).
        if (shadow.regions.size() >= 7) {
          break;
        }
        Vaddr va = p.address_space().MapFile(file, 0, 4 * kPageSize, kProtRead, true);
        // Verify through the mapping immediately (the file is immutable in this test).
        std::vector<std::byte> data(4 * kPageSize);
        ASSERT_TRUE(p.ReadMemory(va, data));
        for (size_t i = 0; i < data.size(); ++i) {
          ASSERT_EQ(data[i], static_cast<std::byte>(i * 13));
        }
        p.Munmap(va, 4 * kPageSize);
        break;
      }
      case 11: {  // Exit a non-root actor.
        if (actors.size() <= 1 || actor.process == &root) {
          break;
        }
        kernel.Exit(p, 0);
        for (size_t i = 0; i < actors.size(); ++i) {
          if (actors[i].process == &p) {
            actors.erase(actors.begin() + static_cast<long>(i));
            break;
          }
        }
        break;
      }
    }
  }

  // Full final verification (this also swap-ins everything that was reclaimed).
  for (Actor& actor : actors) {
    for (const auto& [base, region] : actor.shadow->regions) {
      std::vector<std::byte> data(region.length);
      ASSERT_TRUE(actor.process->ReadMemory(base, data));
      for (uint64_t i = 0; i < region.length; ++i) {
        ASSERT_EQ(data[i], actor.shadow->At(base + i))
            << "final divergence seed " << seed << " pid " << actor.process->pid();
      }
    }
  }
  for (Actor& actor : actors) {
    kernel.Exit(*actor.process, 0);
  }
  kernel.fs().Remove("/shared-data");
  file.reset();  // The page cache legitimately held the file's frames until now.
  EXPECT_TRUE(kernel.allocator().AllFree()) << "frame leak, seed " << seed;
  EXPECT_TRUE(kernel.swap_space().AllFree()) << "swap-slot leak, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedPropertyTest, ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace odf
