// Thread-safety (paper §4 "Thread Safety"): concurrent fork/fault/exit activity from
// multiple threads, both across independent lineages (the Fig. 2 concurrent setup) and
// within one sharing lineage where threads race on the same shared PTE tables through the
// split locks and atomic share counts.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "src/debug/verify.h"
#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "tests/test_util.h"

namespace odf {
namespace {

TEST(ConcurrencyTest, IndependentLineagesForkInParallel) {
  Kernel kernel;
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};

  std::vector<Process*> parents;
  for (int t = 0; t < kThreads; ++t) {
    Process& parent = kernel.CreateProcess();
    Vaddr va = parent.Mmap(8 << 20, kProtRead | kProtWrite);
    FillPattern(parent, va, 8 << 20, static_cast<uint64_t>(t));
    parents.push_back(&parent);
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Process& parent = *parents[static_cast<size_t>(t)];
      Vaddr va = parent.address_space().vmas().begin()->second.start;
      for (int round = 0; round < kRounds; ++round) {
        ForkMode mode = round % 2 == 0 ? ForkMode::kClassic : ForkMode::kOnDemand;
        Process& child = kernel.Fork(parent, mode);
        std::byte value{static_cast<uint8_t>(round)};
        if (!child.WriteMemory(va + static_cast<uint64_t>(round) * kPageSize,
                               std::span(&value, 1))) {
          ++failures;
        }
        std::byte read_back{0};
        if (!child.ReadMemory(va + static_cast<uint64_t>(round) * kPageSize,
                              std::span(&read_back, 1)) ||
            read_back != value) {
          ++failures;
        }
        kernel.Exit(child, 0);
        kernel.Wait(parent);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Every parent's memory must be untouched by all that COW traffic.
  for (int t = 0; t < kThreads; ++t) {
    Vaddr va = parents[static_cast<size_t>(t)]->address_space().vmas().begin()->second.start;
    ExpectPattern(*parents[static_cast<size_t>(t)], va, 8 << 20, static_cast<uint64_t>(t));
  }
  for (Process* parent : parents) {
    kernel.Exit(*parent, 0);
  }
  EXPECT_TRUE(kernel.allocator().AllFree());
}

TEST(ConcurrencyTest, SharingLineageFaultsInParallel) {
  // One parent, N on-demand children sharing its PTE tables; each child's driver thread
  // writes/reads its own clone concurrently. Dedications race on the same shared tables
  // through PtSplitLock and the atomic share counts.
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr va = parent.Mmap(16 << 20, kProtRead | kProtWrite);
  FillPattern(parent, va, 16 << 20, 99);

  constexpr int kChildren = 6;
  std::vector<Process*> children;
  for (int c = 0; c < kChildren; ++c) {
    children.push_back(&kernel.Fork(parent, ForkMode::kOnDemand));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kChildren; ++c) {
    threads.emplace_back([&, c] {
      Process& child = *children[static_cast<size_t>(c)];
      Rng rng(static_cast<uint64_t>(c) + 1000);
      for (int i = 0; i < 200; ++i) {
        Vaddr address = va + rng.NextBelow(16 << 20);
        std::byte value{static_cast<uint8_t>(c * 16 + (i & 0xf))};
        if (rng.NextBool(0.7)) {
          if (!child.WriteMemory(address, std::span(&value, 1))) {
            ++failures;
          }
          std::byte back{0};
          if (!child.ReadMemory(address, std::span(&back, 1)) || back != value) {
            ++failures;
          }
        } else {
          std::byte back{0};
          if (!child.ReadMemory(address, std::span(&back, 1))) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ExpectPattern(parent, va, 16 << 20, 99);  // The template never changes.

  for (Process* child : children) {
    kernel.Exit(*child, 0);
  }
  kernel.Exit(parent, 0);
  EXPECT_TRUE(kernel.allocator().AllFree());
}

TEST(ConcurrencyTest, DisjointFaultsOverlappingForksUnderReclaim) {
  // The sharded-locking stress mix (docs/performance.md "Lock sharding & TLB
  // generations"): N faulter threads hammer DISJOINT 2 MiB-aligned slices of ONE address
  // space (they should ride the shard locks and lock-free read path, almost never
  // contending), while a forker thread repeatedly forks that same process — a whole-AS
  // exclusive operation overlapping every faulter's range — and kswapd plus a direct
  // reclaimer run the evictor side against the mutators. No memory limit is set, so free
  // frames stay plentiful and the OOM killer is structurally unreachable (it only runs
  // when reclaim fails AND free frames are short) — no driven process can be killed.
  Kernel kernel;
  Process& target = kernel.CreateProcess();
  constexpr int kFaulters = 4;
  constexpr uint64_t kRegion = 4ull << 20;  // One 2 MiB-shard multiple per thread.
  Vaddr base = target.Mmap(kFaulters * kRegion, kProtRead | kProtWrite);
  kernel.StartKswapd();

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kFaulters; ++t) {
    threads.emplace_back([&, t] {
      Vaddr lo = base + static_cast<uint64_t>(t) * kRegion;
      Rng rng(static_cast<uint64_t>(t) + 7);
      for (int i = 0; i < 400; ++i) {
        Vaddr address = lo + (rng.NextBelow(kRegion) & ~(kPageSize - 1));
        std::byte value{static_cast<uint8_t>(t * 32 + (i & 0x1f))};
        if (rng.NextBool(0.5)) {
          if (!target.WriteMemory(address, std::span(&value, 1))) {
            ++failures;
          }
          std::byte back{0};
          if (!target.ReadMemory(address, std::span(&back, 1)) || back != value) {
            ++failures;
          }
        } else {
          std::byte back{0};
          if (!target.ReadMemory(address, std::span(&back, 1))) {
            ++failures;
          }
        }
      }
    });
  }
  // Overlapping-range forks: every fork write-protects the whole AS the faulters are
  // faulting into, serialized against them by the per-AS gate.
  threads.emplace_back([&] {
    for (int i = 0; i < 25 && !stop.load(std::memory_order_relaxed); ++i) {
      Process* child = kernel.TryFork(target, ForkMode::kOnDemand);
      if (child == nullptr) {
        ++failures;
        continue;
      }
      std::byte probe{0};
      if (!child->ReadMemory(base, std::span(&probe, 1))) {
        ++failures;
      }
      kernel.Exit(*child, 0);
      kernel.Wait(target);
    }
  });
  // Evictor pressure: explicit direct-reclaim rounds (MmGate exclusive, rmap unmapping)
  // and kswapd wakes racing the fault storm above.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      kernel.ReclaimMemory(16);
      if (kernel.kswapd() != nullptr) {
        kernel.kswapd()->Wake();
      }
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < kFaulters + 1; ++t) {
    threads[static_cast<size_t>(t)].join();
  }
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();
  kernel.StopKswapd();

  EXPECT_EQ(failures.load(), 0);
  // Last-writer-wins per page within one thread's slice: every page a faulter wrote must
  // read back SOME value that thread wrote (its 5-bit lane tags the byte). Cheaper and
  // race-free: just verify the kernel invariants and that teardown balances.
  debug::VerifyKernel(kernel);
  kernel.Exit(target, 0);
  EXPECT_TRUE(kernel.allocator().AllFree());
}

#if ODF_REPLAY_COMPILED
TEST(ConcurrencyTest, ConcurrentRecordedScheduleReplaysDeterministically) {
  // Records THREE driver threads concurrently, each driving its own process lineage.
  // The recorder serializes ops in arrival order, so the log captures one (arbitrary)
  // interleaving of the three schedules — and because each process is driven by a single
  // thread, replaying that interleaving single-threaded must reproduce every per-op
  // result digest and the final content digests exactly.
  replay::Recorder::Global().Stop();
  replay::RecorderOptions options;
  options.mode = replay::RecorderMode::kFull;
  ASSERT_TRUE(replay::Recorder::Global().Start(options));
  std::string path = ::testing::TempDir() + "concurrent_schedule.odflog";
  {
    Kernel kernel;
    constexpr int kDrivers = 3;
    std::vector<Process*> parents;
    for (int t = 0; t < kDrivers; ++t) {
      Process& parent = kernel.CreateProcess();
      parent.Mmap(4ull << 20, kProtRead | kProtWrite);
      parents.push_back(&parent);
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < kDrivers; ++t) {
      threads.emplace_back([&, t] {
        Process& parent = *parents[static_cast<size_t>(t)];
        Vaddr va = parent.address_space().vmas().begin()->second.start;
        std::vector<std::byte> page(kPageSize, std::byte{static_cast<uint8_t>(0x40 + t)});
        for (int i = 0; i < 24; ++i) {
          ASSERT_TRUE(parent.WriteMemory(va + static_cast<uint64_t>(i) * kPageSize, page));
        }
        Process* child = kernel.TryFork(parent, ForkMode::kOnDemand);
        ASSERT_NE(child, nullptr);
        for (int i = 0; i < 24; i += 2) {
          child->MemsetMemory(va + static_cast<uint64_t>(i) * kPageSize,
                              std::byte{static_cast<uint8_t>(t)}, kPageSize);
        }
        std::vector<std::byte> back(kPageSize);
        ASSERT_TRUE(child->ReadMemory(va, back));
        kernel.Exit(*child, 0);
        kernel.Wait(parent);
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    std::string error;
    ASSERT_TRUE(replay::StopAndWriteLog(kernel, path, &error)) << error;
  }
  replay::ReplayLog log;
  std::string error;
  ASSERT_TRUE(replay::ReadLogFile(path, &log, &error)) << error;
  EXPECT_TRUE(log.Complete());
  replay::ReplayReport report = replay::Replay(log, replay::ReplayOptions{});
  EXPECT_TRUE(report.ok()) << report.Describe();
  EXPECT_EQ(report.ops_replayed, report.ops_total);
}
#endif  // ODF_REPLAY_COMPILED

TEST(ConcurrencyTest, ConcurrentForkCountersStayConsistent) {
  Kernel kernel;
  constexpr int kThreads = 4;
  constexpr int kForksPerThread = 50;
  std::vector<Process*> parents;
  for (int t = 0; t < kThreads; ++t) {
    Process& parent = kernel.CreateProcess();
    Vaddr va = parent.Mmap(2 << 20, kProtRead | kProtWrite);
    parent.address_space().PopulateRange(va, 2 << 20);
    parents.push_back(&parent);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kForksPerThread; ++i) {
        Process& child = kernel.Fork(*parents[static_cast<size_t>(t)], ForkMode::kOnDemand);
        kernel.Exit(child, 0);
        kernel.Wait(*parents[static_cast<size_t>(t)]);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(kernel.fork_counters().on_demand_forks,
            static_cast<uint64_t>(kThreads) * kForksPerThread);
  EXPECT_EQ(kernel.ProcessCount(), static_cast<size_t>(kThreads));
}

}  // namespace
}  // namespace odf
