// Thread-safety (paper §4 "Thread Safety"): concurrent fork/fault/exit activity from
// multiple threads, both across independent lineages (the Fig. 2 concurrent setup) and
// within one sharing lineage where threads race on the same shared PTE tables through the
// split locks and atomic share counts.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/test_util.h"

namespace odf {
namespace {

TEST(ConcurrencyTest, IndependentLineagesForkInParallel) {
  Kernel kernel;
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};

  std::vector<Process*> parents;
  for (int t = 0; t < kThreads; ++t) {
    Process& parent = kernel.CreateProcess();
    Vaddr va = parent.Mmap(8 << 20, kProtRead | kProtWrite);
    FillPattern(parent, va, 8 << 20, static_cast<uint64_t>(t));
    parents.push_back(&parent);
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Process& parent = *parents[static_cast<size_t>(t)];
      Vaddr va = parent.address_space().vmas().begin()->second.start;
      for (int round = 0; round < kRounds; ++round) {
        ForkMode mode = round % 2 == 0 ? ForkMode::kClassic : ForkMode::kOnDemand;
        Process& child = kernel.Fork(parent, mode);
        std::byte value{static_cast<uint8_t>(round)};
        if (!child.WriteMemory(va + static_cast<uint64_t>(round) * kPageSize,
                               std::span(&value, 1))) {
          ++failures;
        }
        std::byte read_back{0};
        if (!child.ReadMemory(va + static_cast<uint64_t>(round) * kPageSize,
                              std::span(&read_back, 1)) ||
            read_back != value) {
          ++failures;
        }
        kernel.Exit(child, 0);
        kernel.Wait(parent);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Every parent's memory must be untouched by all that COW traffic.
  for (int t = 0; t < kThreads; ++t) {
    Vaddr va = parents[static_cast<size_t>(t)]->address_space().vmas().begin()->second.start;
    ExpectPattern(*parents[static_cast<size_t>(t)], va, 8 << 20, static_cast<uint64_t>(t));
  }
  for (Process* parent : parents) {
    kernel.Exit(*parent, 0);
  }
  EXPECT_TRUE(kernel.allocator().AllFree());
}

TEST(ConcurrencyTest, SharingLineageFaultsInParallel) {
  // One parent, N on-demand children sharing its PTE tables; each child's driver thread
  // writes/reads its own clone concurrently. Dedications race on the same shared tables
  // through PtSplitLock and the atomic share counts.
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr va = parent.Mmap(16 << 20, kProtRead | kProtWrite);
  FillPattern(parent, va, 16 << 20, 99);

  constexpr int kChildren = 6;
  std::vector<Process*> children;
  for (int c = 0; c < kChildren; ++c) {
    children.push_back(&kernel.Fork(parent, ForkMode::kOnDemand));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kChildren; ++c) {
    threads.emplace_back([&, c] {
      Process& child = *children[static_cast<size_t>(c)];
      Rng rng(static_cast<uint64_t>(c) + 1000);
      for (int i = 0; i < 200; ++i) {
        Vaddr address = va + rng.NextBelow(16 << 20);
        std::byte value{static_cast<uint8_t>(c * 16 + (i & 0xf))};
        if (rng.NextBool(0.7)) {
          if (!child.WriteMemory(address, std::span(&value, 1))) {
            ++failures;
          }
          std::byte back{0};
          if (!child.ReadMemory(address, std::span(&back, 1)) || back != value) {
            ++failures;
          }
        } else {
          std::byte back{0};
          if (!child.ReadMemory(address, std::span(&back, 1))) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ExpectPattern(parent, va, 16 << 20, 99);  // The template never changes.

  for (Process* child : children) {
    kernel.Exit(*child, 0);
  }
  kernel.Exit(parent, 0);
  EXPECT_TRUE(kernel.allocator().AllFree());
}

TEST(ConcurrencyTest, ConcurrentForkCountersStayConsistent) {
  Kernel kernel;
  constexpr int kThreads = 4;
  constexpr int kForksPerThread = 50;
  std::vector<Process*> parents;
  for (int t = 0; t < kThreads; ++t) {
    Process& parent = kernel.CreateProcess();
    Vaddr va = parent.Mmap(2 << 20, kProtRead | kProtWrite);
    parent.address_space().PopulateRange(va, 2 << 20);
    parents.push_back(&parent);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kForksPerThread; ++i) {
        Process& child = kernel.Fork(*parents[static_cast<size_t>(t)], ForkMode::kOnDemand);
        kernel.Exit(child, 0);
        kernel.Wait(*parents[static_cast<size_t>(t)]);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(kernel.fork_counters().on_demand_forks,
            static_cast<uint64_t>(kThreads) * kForksPerThread);
  EXPECT_EQ(kernel.ProcessCount(), static_cast<size_t>(kThreads));
}

}  // namespace
}  // namespace odf
