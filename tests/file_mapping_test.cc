// File-backed mappings (§3.7): page-cache sharing, MAP_SHARED write-through, MAP_PRIVATE
// COW, and interaction with both fork flavours.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace odf {
namespace {

class FileMappingTest : public ::testing::Test {
 protected:
  FileMappingTest() : p_(kernel_.CreateProcess()) {}

  std::shared_ptr<MemFile> MakeFile(const std::string& name, uint64_t length, uint64_t seed) {
    auto file = kernel_.fs().Open(name);
    std::vector<std::byte> data(length);
    for (uint64_t i = 0; i < length; ++i) {
      data[i] = static_cast<std::byte>((seed + i) * 31);
    }
    file->Write(0, data);
    return file;
  }

  Kernel kernel_;
  Process& p_;
};

TEST(MemFsTest, WriteReadRoundTrip) {
  FrameAllocator allocator;
  MemFilesystem fs(&allocator);
  auto file = fs.Open("/data");
  std::vector<std::byte> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7);
  }
  file->Write(100, data);
  EXPECT_EQ(file->size(), 10100u);
  std::vector<std::byte> out(10000);
  file->Read(100, out);
  EXPECT_EQ(out, data);
}

TEST(MemFsTest, ReadOfHoleReturnsZeros) {
  FrameAllocator allocator;
  MemFilesystem fs(&allocator);
  auto file = fs.Open("/sparse");
  std::byte one{1};
  file->Write(5 * kPageSize, std::span(&one, 1));
  std::vector<std::byte> out(kPageSize, std::byte{0xff});
  file->Read(0, out);
  for (std::byte b : out) {
    ASSERT_EQ(b, std::byte{0});
  }
}

TEST(MemFsTest, TruncateReleasesPages) {
  FrameAllocator allocator;
  {
    MemFilesystem fs(&allocator);
    auto file = fs.Open("/t");
    std::vector<std::byte> data(10 * kPageSize, std::byte{1});
    file->Write(0, data);
    EXPECT_EQ(file->CachedPages(), 10u);
    file->Truncate(3 * kPageSize);
    EXPECT_EQ(file->CachedPages(), 3u);
    EXPECT_EQ(file->size(), 3 * kPageSize);
    fs.Remove("/t");
    file.reset();
  }
  EXPECT_TRUE(allocator.AllFree());
}

TEST(MemFsTest, OpenReturnsSameFile) {
  FrameAllocator allocator;
  MemFilesystem fs(&allocator);
  auto a = fs.Open("/x");
  auto b = fs.Open("/x");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(fs.FileCount(), 1u);
}

TEST_F(FileMappingTest, SharedMappingReadsFileContent) {
  auto file = MakeFile("/f", 3 * kPageSize, 1);
  Vaddr va = p_.address_space().MapFile(file, 0, 3 * kPageSize, kProtRead | kProtWrite, true);
  std::vector<std::byte> out(3 * kPageSize);
  ASSERT_TRUE(p_.ReadMemory(va, out));
  for (uint64_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<std::byte>((1 + i) * 31));
  }
}

TEST_F(FileMappingTest, SharedMappingWritesReachTheFile) {
  auto file = MakeFile("/f", 2 * kPageSize, 2);
  Vaddr va = p_.address_space().MapFile(file, 0, 2 * kPageSize, kProtRead | kProtWrite, true);
  WriteByte(p_, va + 10, std::byte{0x42});
  std::byte from_file{0};
  file->Read(10, std::span(&from_file, 1));
  EXPECT_EQ(from_file, std::byte{0x42}) << "MAP_SHARED writes must hit the page cache";
}

TEST_F(FileMappingTest, PrivateMappingWritesDoNotReachTheFile) {
  auto file = MakeFile("/f", 2 * kPageSize, 3);
  Vaddr va = p_.address_space().MapFile(file, 0, 2 * kPageSize, kProtRead | kProtWrite, false);
  WriteByte(p_, va + 10, std::byte{0x42});
  EXPECT_EQ(ReadByte(p_, va + 10), std::byte{0x42});
  std::byte from_file{0};
  file->Read(10, std::span(&from_file, 1));
  EXPECT_EQ(from_file, static_cast<std::byte>(((3 + 10) * 31) & 0xff))
      << "MAP_PRIVATE writes must COW off the page cache";
}

TEST_F(FileMappingTest, PrivateMappingSeesPreCowFileUpdates) {
  auto file = MakeFile("/f", kPageSize, 4);
  Vaddr va = p_.address_space().MapFile(file, 0, kPageSize, kProtRead, false);
  EXPECT_EQ(ReadByte(p_, va), static_cast<std::byte>(4 * 31));
  // An update through the file is visible because the mapping still points at the cache.
  std::byte nv{0x99};
  file->Write(0, std::span(&nv, 1));
  p_.address_space().tlb().FlushAll();
  EXPECT_EQ(ReadByte(p_, va), std::byte{0x99});
}

TEST_F(FileMappingTest, FileOffsetMapping) {
  auto file = MakeFile("/f", 10 * kPageSize, 5);
  Vaddr va =
      p_.address_space().MapFile(file, 4 * kPageSize, 2 * kPageSize, kProtRead, false);
  EXPECT_EQ(ReadByte(p_, va), static_cast<std::byte>(((5 + 4 * kPageSize) * 31) & 0xff));
}

TEST_F(FileMappingTest, TwoProcessesShareOneCachePage) {
  auto file = MakeFile("/f", kPageSize, 6);
  Vaddr va = p_.address_space().MapFile(file, 0, kPageSize, kProtRead | kProtWrite, true);
  ASSERT_EQ(ReadByte(p_, va), static_cast<std::byte>(6 * 31));

  Process& other = kernel_.CreateProcess();
  Vaddr vb = other.address_space().MapFile(file, 0, kPageSize, kProtRead | kProtWrite, true);
  WriteByte(other, vb + 5, std::byte{0x7e});
  EXPECT_EQ(ReadByte(p_, va + 5), std::byte{0x7e})
      << "shared mappings in different processes must alias the same cache page";
}

class FileForkTest : public FileMappingTest,
                     public ::testing::WithParamInterface<ForkMode> {};

TEST_P(FileForkTest, SharedMappingRemainsSharedAcrossFork) {
  auto file = MakeFile("/f", 2 * kPageSize, 7);
  Vaddr va = p_.address_space().MapFile(file, 0, 2 * kPageSize, kProtRead | kProtWrite, true);
  ASSERT_EQ(ReadByte(p_, va), static_cast<std::byte>(7 * 31));
  Process& child = kernel_.Fork(p_, GetParam());
  WriteByte(child, va, std::byte{0x31});
  EXPECT_EQ(ReadByte(p_, va), std::byte{0x31})
      << "MAP_SHARED must not become COW across " << ForkModeName(GetParam());
  std::byte from_file{0};
  file->Read(0, std::span(&from_file, 1));
  EXPECT_EQ(from_file, std::byte{0x31});
}

TEST_P(FileForkTest, PrivateMappingIsCowAcrossFork) {
  auto file = MakeFile("/f", 2 * kPageSize, 8);
  Vaddr va =
      p_.address_space().MapFile(file, 0, 2 * kPageSize, kProtRead | kProtWrite, false);
  WriteByte(p_, va, std::byte{0x10});  // Parent COWs page 0 pre-fork.
  Process& child = kernel_.Fork(p_, GetParam());
  WriteByte(child, va, std::byte{0x20});
  EXPECT_EQ(ReadByte(p_, va), std::byte{0x10});
  EXPECT_EQ(ReadByte(child, va), std::byte{0x20});
  std::byte from_file{0};
  file->Read(0, std::span(&from_file, 1));
  EXPECT_EQ(from_file, static_cast<std::byte>(8 * 31));
}

TEST_P(FileForkTest, NoLeaksWithFileMappings) {
  auto file = MakeFile("/f", 4 * kPageSize, 9);
  Vaddr shared =
      p_.address_space().MapFile(file, 0, 2 * kPageSize, kProtRead | kProtWrite, true);
  Vaddr priv =
      p_.address_space().MapFile(file, 0, 4 * kPageSize, kProtRead | kProtWrite, false);
  WriteByte(p_, shared, std::byte{1});
  WriteByte(p_, priv, std::byte{2});
  Process& child = kernel_.Fork(p_, GetParam());
  WriteByte(child, priv + kPageSize, std::byte{3});
  kernel_.Exit(child, 0);
  kernel_.Wait(p_);
  kernel_.Exit(p_, 0);
  kernel_.fs().Remove("/f");
  file.reset();
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

INSTANTIATE_TEST_SUITE_P(BothForks, FileForkTest,
                         ::testing::Values(ForkMode::kClassic, ForkMode::kOnDemand),
                         [](const auto& param_info) {
                           return param_info.param == ForkMode::kClassic ? "classic" : "ondemand";
                         });

}  // namespace
}  // namespace odf
