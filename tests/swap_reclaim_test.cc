// Memory pressure (paper §4 "Robustness"): frame quota, clock reclaim over accessed bits,
// the swap device, swap-entry interaction with both fork flavours, and the OOM killer.
#include <gtest/gtest.h>

#include "src/mm/reclaim.h"
#include "tests/test_util.h"

namespace odf {
namespace {

TEST(SwapSpaceTest, WriteReadRoundTrip) {
  SwapSpace swap;
  std::vector<std::byte> page(kPageSize);
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<std::byte>(i * 3);
  }
  SwapSlot slot = swap.WriteOut(page.data());
  std::vector<std::byte> back(kPageSize);
  swap.ReadIn(slot, back.data());
  EXPECT_EQ(back, page);
  EXPECT_EQ(swap.Stats().slots_in_use, 1u);
  swap.DecRef(slot);
  EXPECT_TRUE(swap.AllFree());
}

TEST(SwapSpaceTest, ZeroPagesNeedNoStorage) {
  SwapSpace swap;
  SwapSlot slot = swap.WriteOut(nullptr);
  std::vector<std::byte> back(kPageSize, std::byte{0xff});
  swap.ReadIn(slot, back.data());
  for (std::byte b : back) {
    ASSERT_EQ(b, std::byte{0});
  }
  swap.DecRef(slot);
}

TEST(SwapSpaceTest, RefcountingAndRecycling) {
  SwapSpace swap;
  std::vector<std::byte> page(kPageSize, std::byte{7});
  SwapSlot a = swap.WriteOut(page.data());
  swap.IncRef(a);
  swap.DecRef(a);
  EXPECT_EQ(swap.Stats().slots_in_use, 1u);
  swap.DecRef(a);
  EXPECT_EQ(swap.Stats().slots_in_use, 0u);
  SwapSlot b = swap.WriteOut(page.data());
  EXPECT_EQ(b, a) << "freed slots should be recycled";
  swap.DecRef(b);
}

class ReclaimTest : public ::testing::Test {
 protected:
  ReclaimTest() : p_(kernel_.CreateProcess()) {}

  Kernel kernel_;
  Process& p_;
};

TEST_F(ReclaimTest, ClockSwapsOutColdPagesAfterSecondChance) {
  Vaddr va = p_.Mmap(64 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 64 * kPageSize, 1);

  // Pass 1 clears accessed bits; pass 2 collects cold pages.
  uint64_t freed1 = ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  EXPECT_EQ(freed1, 0u) << "all pages were recently accessed: only second chances";
  uint64_t freed2 = ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  EXPECT_EQ(freed2, 64u);
  EXPECT_EQ(p_.address_space().stats().pages_swapped_out, 64u);
  EXPECT_EQ(kernel_.swap_space().Stats().slots_in_use, 64u);

  // Content must survive the round trip through the device (swap-in faults).
  ExpectPattern(p_, va, 64 * kPageSize, 1);
  EXPECT_EQ(p_.address_space().stats().swap_in_faults, 64u);
  EXPECT_TRUE(kernel_.swap_space().AllFree());
}

TEST_F(ReclaimTest, AccessedPagesSurviveOnePass) {
  Vaddr va = p_.Mmap(32 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 32 * kPageSize, 2);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);  // Clear bits.
  // Touch the first half again: those pages get their accessed bit back.
  std::vector<std::byte> buffer(16 * kPageSize);
  ASSERT_TRUE(p_.ReadMemory(va, buffer));
  uint64_t freed = ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  EXPECT_EQ(freed, 16u) << "only the untouched half is cold";
  ExpectPattern(p_, va, 32 * kPageSize, 2);
}

TEST_F(ReclaimTest, NeverMaterializedPagesAreDroppedWithoutSwap) {
  Vaddr va = p_.Mmap(16 * kPageSize, kProtRead | kProtWrite);
  p_.address_space().PopulateRange(va, 16 * kPageSize);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  uint64_t freed = ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  EXPECT_EQ(freed, 16u);
  EXPECT_EQ(kernel_.swap_space().Stats().writes, 0u) << "zero pages need no swap slots";
  EXPECT_EQ(ReadByte(p_, va), std::byte{0});
}

TEST_F(ReclaimTest, SharedTablesAreSkipped) {
  Vaddr va = p_.Mmap(kHugePageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, kHugePageSize, 3);
  kernel_.Fork(p_, ForkMode::kOnDemand);  // Table now shared.
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  uint64_t freed = ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  EXPECT_EQ(freed, 0u) << "pages under shared PTE tables must not be reclaimed";
}

class SwapForkTest : public ReclaimTest, public ::testing::WithParamInterface<ForkMode> {};

TEST_P(SwapForkTest, ForkWithSwappedPagesKeepsCowSemantics) {
  Vaddr va = p_.Mmap(32 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 32 * kPageSize, 4);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  uint64_t freed = ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  ASSERT_EQ(freed, 32u);

  Process& child = kernel_.Fork(p_, GetParam());
  // Both sides fault their own copies in; writes stay private.
  WriteByte(child, va + 5, std::byte{0xc1});
  EXPECT_EQ(ReadByte(child, va + 5), std::byte{0xc1});
  ExpectPattern(p_, va, 32 * kPageSize, 4);
  // And the child sees the parent's pre-fork data everywhere else.
  auto original = [&](Vaddr addr) {
    return static_cast<std::byte>((4 * 1099511628211ULL + addr) >> 5);
  };
  EXPECT_EQ(ReadByte(child, va + 6), original(va + 6));

  kernel_.Exit(child, 0);
  kernel_.Wait(p_);
  kernel_.Exit(p_, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
  EXPECT_TRUE(kernel_.swap_space().AllFree()) << "swap slots leaked";
}

TEST_P(SwapForkTest, UnmapReleasesSwapSlots) {
  Vaddr va = p_.Mmap(16 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 16 * kPageSize, 5);
  ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000);
  ASSERT_EQ(ClockReclaimAddressSpace(p_.address_space(), kernel_.swap_space(), 1000), 16u);
  Process& child = kernel_.Fork(p_, GetParam());
  ASSERT_GT(kernel_.swap_space().Stats().slots_in_use, 0u);
  child.Munmap(va, 16 * kPageSize);
  p_.Munmap(va, 16 * kPageSize);
  EXPECT_TRUE(kernel_.swap_space().AllFree());
}

INSTANTIATE_TEST_SUITE_P(BothForks, SwapForkTest,
                         ::testing::Values(ForkMode::kClassic, ForkMode::kOnDemand),
                         [](const auto& param_info) {
                           return param_info.param == ForkMode::kClassic ? "classic"
                                                                         : "ondemand";
                         });

TEST(MemoryPressureTest, QuotaTriggersTransparentSwapping) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  // Budget: 2048 frames (8 MiB of simulated RAM). Write 12 MiB of data through it.
  kernel.SetMemoryLimitFrames(2048);
  Vaddr va = p.Mmap(12 << 20, kProtRead | kProtWrite);
  FillPattern(p, va, 12 << 20, 6);
  // The rmap shrinker evicts via reverse-map walks, not per-address-space clock sweeps,
  // so swap-out shows up in the swap device's ledger rather than per-AS stats.
  EXPECT_GT(kernel.swap_space().Stats().writes, 0u)
      << "filling past the quota must push pages to swap";
  EXPECT_LE(kernel.allocator().Stats().allocated_frames, 2048u);
  // Every byte must still read back correctly through swap-in faults.
  ExpectPattern(p, va, 12 << 20, 6);
  EXPECT_GT(p.address_space().stats().swap_in_faults, 0u);
  EXPECT_EQ(kernel.oom_kills(), 0u);
  kernel.Exit(p, 0);
  EXPECT_TRUE(kernel.allocator().AllFree());
  EXPECT_TRUE(kernel.swap_space().AllFree());
}

TEST(MemoryPressureTest, ForkUnderPressureStaysCorrect) {
  Kernel kernel;
  kernel.SetMemoryLimitFrames(3072);  // 12 MiB simulated RAM.
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(8 << 20, kProtRead | kProtWrite);
  FillPattern(p, va, 8 << 20, 7);

  Process& child = kernel.Fork(p, ForkMode::kOnDemand);
  WriteByte(child, va + 1000, std::byte{0x3c});
  ExpectPattern(p, va, 8 << 20, 7);
  EXPECT_EQ(ReadByte(child, va + 1000), std::byte{0x3c});
  kernel.Exit(child, 0);
  kernel.Wait(p);
  kernel.Exit(p, 0);
  EXPECT_TRUE(kernel.allocator().AllFree());
  EXPECT_TRUE(kernel.swap_space().AllFree());
}

TEST(MemoryPressureTest, OomKillerFiresWhenNothingIsReclaimable) {
  Kernel kernel;
  Process& small = kernel.CreateProcess();
  Process& big = kernel.CreateProcess();

  // Huge (compound) pages are not swappable by the clock reclaimer, so filling the machine
  // with them leaves the OOM killer as the only way out — like a hugetlbfs-heavy box.
  Vaddr big_va = big.Mmap(8 * kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  WriteByte(big, big_va, std::byte{1});  // Populate all 8 compounds.
  for (int i = 1; i < 8; ++i) {
    WriteByte(big, big_va + static_cast<uint64_t>(i) * kHugePageSize, std::byte{1});
  }
  Vaddr small_va = small.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  WriteByte(small, small_va, std::byte{2});

  // Cap RAM just above current usage: the next compound allocation cannot fit, nothing is
  // reclaimable, so the largest process must die.
  kernel.SetMemoryLimitFrames(kernel.allocator().Stats().allocated_frames + 4);
  Vaddr extra = small.Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
  WriteByte(small, extra, std::byte{3});

  EXPECT_GE(kernel.oom_kills(), 1u);
  EXPECT_EQ(big.state(), ProcessState::kZombie) << "the largest process should be the victim";
  EXPECT_EQ(small.state(), ProcessState::kRunning);
  EXPECT_EQ(ReadByte(small, extra), std::byte{3});
  EXPECT_EQ(ReadByte(small, small_va), std::byte{2});
}

}  // namespace
}  // namespace odf
