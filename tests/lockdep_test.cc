// Lockdep coverage: the cycle detector must abort on the first ordering inversion and on
// same-class nesting, tolerate out-of-order releases (guard objects destruct in any
// order), and count acquisitions. Tests drive the raw LockAcquired/LockReleased API so
// each scenario is explicit; production code goes through debug::MutexGuard. Everything
// here requires the debug-vm preset — with the checkers compiled out the API is a no-op
// and the tests skip.
#include <gtest/gtest.h>

#include "src/debug/lockdep.h"
#include "src/pt/mm_locks.h"

namespace odf {
namespace {

// Each test uses its own classes: lock classes are process-lifetime (like the kernel's
// static lock_class_key), so sharing them across tests would entangle their edges.

TEST(LockdepTest, MutexGuardCountsAcquisitions) {
  if (!debug::Compiled()) {
    GTEST_SKIP() << "lockdep compiles out with -DODF_DEBUG_VM=OFF";
  }
  static debug::LockClass cls("lockdep_test::counted");
  util::Mutex mutex;
  uint64_t before = debug::GetLockdepStats().acquisitions;
  {
    debug::MutexGuard guard(mutex, cls);
  }
  {
    debug::MutexGuard guard(mutex, cls);
  }
  debug::LockdepStats stats = debug::GetLockdepStats();
  EXPECT_GE(stats.acquisitions - before, 2u);
  EXPECT_GE(stats.classes, 1u);
}

TEST(LockdepTest, ToleratesOutOfOrderRelease) {
  if (!debug::Compiled()) {
    GTEST_SKIP() << "lockdep compiles out with -DODF_DEBUG_VM=OFF";
  }
  static debug::LockClass a("lockdep_test::ooo_a");
  static debug::LockClass b("lockdep_test::ooo_b");
  // Releasing the outer class first is legal (independent guards go out of scope in
  // whatever order the code block dictates); lockdep must just unwind its stack.
  debug::LockAcquired(a, __FILE__, __LINE__);
  debug::LockAcquired(b, __FILE__, __LINE__);
  debug::LockReleased(a);
  debug::LockReleased(b);
}

TEST(LockdepDeathTest, AbortsOnLockOrderInversion) {
  if (!debug::Compiled()) {
    GTEST_SKIP() << "lockdep compiles out with -DODF_DEBUG_VM=OFF";
  }
  static debug::LockClass a("lockdep_test::inv_a");
  static debug::LockClass b("lockdep_test::inv_b");
  // Establish a -> b as the known-good order.
  debug::LockAcquired(a, __FILE__, __LINE__);
  debug::LockAcquired(b, __FILE__, __LINE__);
  debug::LockReleased(b);
  debug::LockReleased(a);
  // The reverse nesting is a potential deadlock even though nothing blocks here — that is
  // the whole point of lockdep: the abort message must carry both acquisition contexts.
  EXPECT_DEATH(
      {
        debug::LockAcquired(b, __FILE__, __LINE__);
        debug::LockAcquired(a, __FILE__, __LINE__);
      },
      "lock-order inversion: acquiring \"lockdep_test::inv_a\"");
}

TEST(LockdepDeathTest, AbortsOnNestedShardAcquisition) {
  if (!debug::Compiled()) {
    GTEST_SKIP() << "lockdep compiles out with -DODF_DEBUG_VM=OFF";
  }
  // All 64 range-shard mutexes of every MmLockTable share ONE lock class ("mm::AsShard"):
  // the fault slow path holds exactly one shard, so a thread nesting a second shard —
  // the classic shard-vs-shard ABBA between two faulting threads — is flagged as
  // same-class recursion at the first acquisition, without needing the two threads to
  // actually interleave into a deadlock.
  debug::LockClass& shard_class = AsShardLockClass();
  debug::LockAcquired(shard_class, __FILE__, __LINE__);
  EXPECT_DEATH(debug::LockAcquired(shard_class, __FILE__, __LINE__),
               "recursive acquisition");
  debug::LockReleased(shard_class);
}

TEST(LockdepDeathTest, AbortsOnRecursiveSameClassAcquisition) {
  if (!debug::Compiled()) {
    GTEST_SKIP() << "lockdep compiles out with -DODF_DEBUG_VM=OFF";
  }
  static debug::LockClass cls("lockdep_test::recursive");
  debug::LockAcquired(cls, __FILE__, __LINE__);
  EXPECT_DEATH(debug::LockAcquired(cls, __FILE__, __LINE__), "recursive acquisition");
  debug::LockReleased(cls);
}

TEST(LockdepDeathTest, AbortsOnReleaseOfUnheldClass) {
  if (!debug::Compiled()) {
    GTEST_SKIP() << "lockdep compiles out with -DODF_DEBUG_VM=OFF";
  }
  static debug::LockClass cls("lockdep_test::never_held");
  EXPECT_DEATH(debug::LockReleased(cls), "not held");
}

}  // namespace
}  // namespace odf
