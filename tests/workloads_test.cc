// Tests for the fuzzer fork server, the VM-cloning harness, and the prefork HTTP server.
#include <gtest/gtest.h>

#include "src/apps/fuzzer.h"
#include "src/apps/httpd.h"
#include "src/apps/vmclone.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class FuzzerTest : public ::testing::Test {
 protected:
  FuzzerTest() : p_(kernel_.CreateProcess()), db_(MiniDb::Create(kernel_, p_, 512 << 20)) {
    Rng rng(1);
    db_.BulkLoadFixture("t", 2000, 32, rng);
  }

  Kernel kernel_;
  Process& p_;
  MiniDb db_;
};

TEST_F(FuzzerTest, RunsInputsAndFindsCoverage) {
  FuzzerConfig config;
  config.fork_mode = ForkMode::kOnDemand;
  ForkServerFuzzer fuzzer(kernel_, p_, MakeMiniDbShellTarget(kernel_, "t", db_.meta_base()),
                          config, MiniDbSeedCorpus());
  for (int i = 0; i < 50; ++i) {
    fuzzer.RunOne();
  }
  // Inputs with new coverage trigger extra deterministic-stage executions.
  EXPECT_GE(fuzzer.stats().executions, 50u);
  EXPECT_GT(fuzzer.stats().covered_edges, 0u);
  EXPECT_GT(fuzzer.corpus_size(), MiniDbSeedCorpus().size() - 1);
  // The parent database must be untouched by all the fuzzed children.
  EXPECT_EQ(db_.RowCount("t"), 2000u);
  EXPECT_EQ(kernel_.ProcessCount(), 1u) << "all children reaped";
}

TEST_F(FuzzerTest, DeterministicForSameSeed) {
  FuzzerConfig config;
  config.seed = 42;
  ForkServerFuzzer a(kernel_, p_, MakeMiniDbShellTarget(kernel_, "t", db_.meta_base()),
                     config, MiniDbSeedCorpus());
  for (int i = 0; i < 20; ++i) {
    a.RunOne();
  }
  // Re-run with a fresh identical world.
  Kernel kernel2;
  Process& p2 = kernel2.CreateProcess();
  MiniDb db2 = MiniDb::Create(kernel2, p2, 512 << 20);
  Rng rng(1);
  db2.BulkLoadFixture("t", 2000, 32, rng);
  ForkServerFuzzer b(kernel2, p2, MakeMiniDbShellTarget(kernel2, "t", db2.meta_base()),
                     config, MiniDbSeedCorpus());
  for (int i = 0; i < 20; ++i) {
    b.RunOne();
  }
  EXPECT_EQ(a.stats().covered_edges, b.stats().covered_edges);
  EXPECT_EQ(a.corpus_size(), b.corpus_size());
}

TEST(GuestVmTest, ArithmeticAndControlFlow) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr cpu = p.Mmap(kPageSize, kProtRead | kProtWrite);
  Vaddr data = p.Mmap(kPageSize, kProtRead | kProtWrite);
  // Program: r1 = 10; r2 = 0; loop { r2 += r1; r1 -= 1 } until r1 == 0; mem[r3] = r2; halt.
  // Computes 10+9+...+1 = 55.
  std::vector<uint64_t> code = {
      EncodeInstr(GuestOp::kMovi, 1, 0, 10),
      EncodeInstr(GuestOp::kMovi, 2, 0, 0),
      EncodeInstr(GuestOp::kMovi, 4, 0, 1),
      // loop (pc 3):
      EncodeInstr(GuestOp::kAdd, 2, 1, 0),
      EncodeInstr(static_cast<GuestOp>(14), 1, 4, 0),  // SUB r1, r4.
      EncodeInstr(GuestOp::kJnz, 1, 0, 3),
      EncodeInstr(GuestOp::kStore, 3, 2, 0),
      EncodeInstr(GuestOp::kHalt, 0, 0, 0),
  };
  Vaddr code_base = p.Mmap(code.size() * 8, kProtRead | kProtWrite);
  ASSERT_TRUE(p.WriteMemory(code_base, std::as_bytes(std::span(code))));
  p.StoreU64(cpu + 3 * 8, data);  // r3 = result address.

  GuestExit exit_state = RunGuest(p, cpu, code_base, 1000);
  EXPECT_EQ(exit_state.reason, GuestExit::Reason::kHalt);
  EXPECT_EQ(p.LoadU64(data), 55u);
}

TEST(GuestVmTest, StepLimitStopsRunawayProgram) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr cpu = p.Mmap(kPageSize, kProtRead | kProtWrite);
  std::vector<uint64_t> code = {EncodeInstr(GuestOp::kJmp, 0, 0, 0)};  // while(true);
  Vaddr code_base = p.Mmap(64, kProtRead | kProtWrite);
  ASSERT_TRUE(p.WriteMemory(code_base, std::as_bytes(std::span(code))));
  GuestExit exit_state = RunGuest(p, cpu, code_base, 500);
  EXPECT_EQ(exit_state.reason, GuestExit::Reason::kStepLimit);
  EXPECT_EQ(exit_state.steps, 500u);
}

TEST(GuestVmTest, BadMemoryAccessIsCaught) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr cpu = p.Mmap(kPageSize, kProtRead | kProtWrite);
  std::vector<uint64_t> code = {
      EncodeInstr(GuestOp::kMovi, 1, 0, 0xdead0000u),
      EncodeInstr(GuestOp::kLoad, 2, 1, 0),
      EncodeInstr(GuestOp::kHalt, 0, 0, 0),
  };
  Vaddr code_base = p.Mmap(64, kProtRead | kProtWrite);
  ASSERT_TRUE(p.WriteMemory(code_base, std::as_bytes(std::span(code))));
  GuestExit exit_state = RunGuest(p, cpu, code_base, 100);
  EXPECT_EQ(exit_state.reason, GuestExit::Reason::kBadAccess);
}

TEST(VmCloneTest, CloneRunsInputAndIsolatesImage) {
  Kernel kernel;
  VmConfig config;
  config.image_bytes = 8 << 20;  // Small image for the unit test.
  config.fork_mode = ForkMode::kOnDemand;
  config.max_steps_per_input = 100000;
  VirtualMachine vm = VirtualMachine::Boot(kernel, config);

  uint64_t image_word_before = vm.process().LoadU64(
      vm.process().address_space().vmas().begin()->second.start);

  std::vector<uint8_t> input;
  for (int i = 0; i < 50; ++i) {
    input.push_back(static_cast<uint8_t>(i * 7 + 1));
  }
  GuestExit exit_state = vm.RunInputInClone(input);
  EXPECT_EQ(exit_state.reason, GuestExit::Reason::kHalt);
  EXPECT_GT(exit_state.steps, 50u * 10);

  // The parent VM image must be unchanged by the clone's writes.
  uint64_t image_word_after = vm.process().LoadU64(
      vm.process().address_space().vmas().begin()->second.start);
  EXPECT_EQ(image_word_before, image_word_after);
  EXPECT_EQ(kernel.ProcessCount(), 1u);
}

TEST(VmCloneTest, ManyClonesLeakNothing) {
  Kernel kernel;
  VmConfig config;
  config.image_bytes = 4 << 20;
  config.fork_mode = ForkMode::kClassic;
  VirtualMachine vm = VirtualMachine::Boot(kernel, config);
  uint64_t frames_after_boot = kernel.allocator().Stats().allocated_frames;
  std::vector<uint8_t> input = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 10; ++i) {
    vm.RunInputInClone(input);
  }
  EXPECT_EQ(kernel.allocator().Stats().allocated_frames, frames_after_boot)
      << "clones must release every frame";
}

TEST(HttpdTest, ServesRequestsFromWorkers) {
  Kernel kernel;
  HttpdConfig config;
  config.worker_count = 4;
  PreforkServer server = PreforkServer::Start(kernel, config);
  EXPECT_EQ(server.worker_count(), 4);
  EXPECT_GT(server.startup_fork_micros(), 0.0);

  LatencyRecorder latency;
  uint64_t checksum1 = server.HandleRequest(3, &latency);
  uint64_t checksum2 = server.HandleRequest(3, &latency);  // Different worker, same doc.
  uint64_t checksum3 = server.HandleRequest(4, &latency);
  EXPECT_EQ(checksum1, checksum2) << "all workers must serve identical documents";
  EXPECT_NE(checksum1, checksum3);
  EXPECT_EQ(latency.count(), 3u);

  server.Shutdown();
  EXPECT_TRUE(kernel.allocator().AllFree());
}

TEST(HttpdTest, BothForkModesServeIdenticalContent) {
  uint64_t checksums[2];
  int i = 0;
  for (ForkMode mode : {ForkMode::kClassic, ForkMode::kOnDemand}) {
    Kernel kernel;
    HttpdConfig config;
    config.worker_count = 2;
    config.fork_mode = mode;
    PreforkServer server = PreforkServer::Start(kernel, config);
    checksums[i++] = server.HandleRequest(7, nullptr);
    server.Shutdown();
  }
  EXPECT_EQ(checksums[0], checksums[1]);
}

}  // namespace
}  // namespace odf
