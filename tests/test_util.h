// Shared helpers for the odfork test suite.
#ifndef ODF_TESTS_TEST_UTIL_H_
#define ODF_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/proc/kernel.h"
#include "src/proc/process.h"
#include "src/util/rng.h"

namespace odf {

// Fills `length` bytes at `va` with a deterministic pattern derived from `seed` and the
// address, via the process memory API.
inline void FillPattern(Process& p, Vaddr va, uint64_t length, uint64_t seed) {
  std::vector<std::byte> buffer(length);
  for (uint64_t i = 0; i < length; ++i) {
    buffer[i] = static_cast<std::byte>((seed * 1099511628211ULL + va + i) >> 5);
  }
  ASSERT_TRUE(p.WriteMemory(va, buffer));
}

// Verifies the pattern previously written by FillPattern.
inline void ExpectPattern(Process& p, Vaddr va, uint64_t length, uint64_t seed) {
  std::vector<std::byte> buffer(length);
  ASSERT_TRUE(p.ReadMemory(va, buffer));
  for (uint64_t i = 0; i < length; ++i) {
    auto expected = static_cast<std::byte>((seed * 1099511628211ULL + va + i) >> 5);
    ASSERT_EQ(buffer[i], expected) << "mismatch at offset " << i << " (va " << va + i << ")";
  }
}

inline std::byte ReadByte(Process& p, Vaddr va) {
  std::byte value{0};
  EXPECT_TRUE(p.ReadMemory(va, std::span(&value, 1)));
  return value;
}

inline void WriteByte(Process& p, Vaddr va, std::byte value) {
  EXPECT_TRUE(p.WriteMemory(va, std::span(&value, 1)));
}

}  // namespace odf

#endif  // ODF_TESTS_TEST_UTIL_H_
