// odf::trace unit tests: ring-buffer semantics (wraparound, per-thread ordering), the
// runtime enable switch, the vmstat counter catalog + MetricsRegistry, and the JSON writer
// used by the bench sidecar files.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "src/trace/json.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace odf {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SetEnabled(false);
    trace::Tracer::Global().Clear();
    MetricsRegistry::Global().ResetForTest();
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::Tracer::Global().Clear();
    MetricsRegistry::Global().ResetForTest();
  }
};

TEST_F(TraceTest, DisabledMacroEmitsNothing) {
  trace::SetEnabled(false);
  ODF_TRACE(tlb_flush, 1, 2);
  EXPECT_TRUE(trace::Tracer::Global().CollectAll().empty());
}

TEST_F(TraceTest, EnabledMacroRecordsEventWithArgs) {
#if !ODF_TRACE_COMPILED
  GTEST_SKIP() << "tracepoints compiled out (ODF_TRACE=OFF)";
#endif
  trace::SetEnabled(true);
  ODF_TRACE(fault_cow_page, /*pid=*/7, /*a0=*/0x1000, /*a1=*/42);
  trace::SetEnabled(false);
  std::vector<TraceEvent> events = trace::Tracer::Global().CollectAll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, TraceEventId::k_fault_cow_page);
  EXPECT_EQ(events[0].pid, 7);
  EXPECT_EQ(events[0].a0, 0x1000u);
  EXPECT_EQ(events[0].a1, 42u);
  EXPECT_EQ(events[0].a2, 0u);
}

TEST_F(TraceTest, ArgumentsNotEvaluatedWhenDisabled) {
  trace::SetEnabled(false);
  int evaluations = 0;
  auto expensive = [&evaluations]() -> uint64_t {
    ++evaluations;
    return 0;
  };
  ODF_TRACE(fork_begin, 1, expensive());
  EXPECT_EQ(evaluations, 0);
}

TEST_F(TraceTest, TimestampsAreMonotonicPerThread) {
#if !ODF_TRACE_COMPILED
  GTEST_SKIP() << "tracepoints compiled out (ODF_TRACE=OFF)";
#endif
  trace::SetEnabled(true);
  for (int i = 0; i < 100; ++i) {
    ODF_TRACE(tlb_flush, 0, static_cast<uint64_t>(i));
  }
  trace::SetEnabled(false);
  std::vector<TraceEvent> events = trace::Tracer::Global().CollectAll();
  ASSERT_EQ(events.size(), 100u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
    EXPECT_EQ(events[i].a0, events[i - 1].a0 + 1) << "per-thread order lost";
  }
}

TEST_F(TraceTest, RingWrapsKeepingNewestEvents) {
  constexpr uint64_t kOverflow = 100;
  constexpr uint64_t kTotal = trace::TraceRing::kCapacity + kOverflow;
  trace::TraceRing ring(/*tid=*/0);
  for (uint64_t i = 0; i < kTotal; ++i) {
    TraceEvent event;
    event.ts_ns = i;
    event.a0 = i;
    event.id = TraceEventId::k_tlb_flush;
    ring.Append(event);
  }
  EXPECT_EQ(ring.TotalAppended(), kTotal);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), trace::TraceRing::kCapacity);
  // The oldest kOverflow events were overwritten; the survivors are contiguous and ordered.
  EXPECT_EQ(events.front().a0, kOverflow);
  EXPECT_EQ(events.back().a0, kTotal - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a0, events[i - 1].a0 + 1);
  }
}

TEST_F(TraceTest, MultiThreadEventsLandInPerThreadRingsInOrder) {
#if !ODF_TRACE_COMPILED
  GTEST_SKIP() << "tracepoints compiled out (ODF_TRACE=OFF)";
#endif
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 1000;
  trace::SetEnabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ODF_TRACE(fault_demand_zero, /*pid=*/t + 1, i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  trace::SetEnabled(false);

  // This test body may or may not have its own ring (other tests in this process register
  // the main thread); count only rings that saw events.
  std::vector<std::vector<TraceEvent>> per_thread = trace::Tracer::Global().CollectPerThread();
  int active_rings = 0;
  uint64_t total = 0;
  for (const auto& events : per_thread) {
    if (events.empty()) {
      continue;
    }
    ++active_rings;
    total += events.size();
    // Within one ring: a single writer, so sequence numbers are strictly increasing and all
    // events carry the same pid.
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_EQ(events[i].a0, events[i - 1].a0 + 1);
      EXPECT_EQ(events[i].pid, events[0].pid);
    }
  }
  EXPECT_EQ(active_rings, kThreads);
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_GE(trace::Tracer::Global().ThreadCount(), static_cast<size_t>(kThreads));
}

TEST_F(TraceTest, ClearDropsBufferedEvents) {
#if !ODF_TRACE_COMPILED
  GTEST_SKIP() << "tracepoints compiled out (ODF_TRACE=OFF)";
#endif
  trace::SetEnabled(true);
  ODF_TRACE(proc_create, 1);
  trace::SetEnabled(false);
  EXPECT_FALSE(trace::Tracer::Global().CollectAll().empty());
  trace::Tracer::Global().Clear();
  EXPECT_TRUE(trace::Tracer::Global().CollectAll().empty());
}

TEST_F(TraceTest, FormatDumpNamesEvents) {
#if !ODF_TRACE_COMPILED
  GTEST_SKIP() << "tracepoints compiled out (ODF_TRACE=OFF)";
#endif
  trace::SetEnabled(true);
  ODF_TRACE(fork_begin, 3, 1, 4096);
  ODF_TRACE(fork_end, 3, 1, 777);
  trace::SetEnabled(false);
  std::string dump = trace::Tracer::Global().FormatDump();
  EXPECT_NE(dump.find("fork_begin"), std::string::npos);
  EXPECT_NE(dump.find("fork_end"), std::string::npos);
  EXPECT_NE(dump.find("pid=3"), std::string::npos);
}

TEST_F(TraceTest, EventNamesCoverCatalog) {
  EXPECT_STREQ(TraceEventName(TraceEventId::k_fork_begin), "fork_begin");
  EXPECT_STREQ(TraceEventName(TraceEventId::k_pte_table_shared), "pte_table_shared");
  EXPECT_STREQ(TraceEventName(TraceEventId::k_oom_kill), "oom_kill");
  EXPECT_STREQ(TraceEventName(TraceEventId::kCount), "?");
}

TEST_F(TraceTest, VmCountersAccumulateAndSnapshot) {
  uint64_t before = ReadVm(VmCounter::k_pgfault_cow_page);
  CountVm(VmCounter::k_pgfault_cow_page);
  CountVm(VmCounter::k_pgfault_cow_page, 4);
  EXPECT_EQ(ReadVm(VmCounter::k_pgfault_cow_page), before + 5);

  auto counters = MetricsRegistry::Global().SnapshotCounters();
  // Built-ins come first, in catalog order, and include every VmCounter.
  ASSERT_GE(counters.size(), kVmCounterCount);
  EXPECT_EQ(counters[0].first, VmCounterName(static_cast<VmCounter>(0)));
  bool found = false;
  for (const auto& [name, value] : counters) {
    if (name == "pgfault_cow_page") {
      EXPECT_EQ(value, before + 5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, RegisteredCountersAndHistogramsExport) {
  Counter& counter = MetricsRegistry::Global().RegisterCounter("test_custom_counter");
  counter.Add(3);
  // Re-registration returns the same object.
  EXPECT_EQ(&MetricsRegistry::Global().RegisterCounter("test_custom_counter"), &counter);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("test_custom_counter"), 3u);

  LatencyHistogram& histogram =
      MetricsRegistry::Global().RegisterHistogram("test_custom_latency_ns");
  histogram.RecordNanos(1000);
  histogram.RecordNanos(2000);

  std::string vmstat = MetricsRegistry::Global().FormatVmstat();
  EXPECT_NE(vmstat.find("test_custom_counter 3"), std::string::npos);
  EXPECT_NE(vmstat.find("test_custom_latency_ns_count 2"), std::string::npos);
  EXPECT_NE(vmstat.find("pgfault_demand_zero "), std::string::npos);

  MetricsRegistry::Global().ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);           // Zeroed...
  EXPECT_EQ(histogram.TotalCount(), 0u);
  EXPECT_EQ(&MetricsRegistry::Global().RegisterCounter("test_custom_counter"),
            &counter);  // ...but never unregistered: cached references stay valid.
}

TEST_F(TraceTest, JsonWriterProducesValidStructure) {
  std::ostringstream out;
  JsonWriter json(out, /*indent_width=*/0);
  json.BeginObject();
  json.Key("name").Value("fig02");
  json.Key("count").Value(static_cast<uint64_t>(3));
  json.Key("ratio").Value(2.5);
  json.Key("fast").Value(false);
  json.Key("missing").Null();
  json.Key("rows").BeginArray();
  json.BeginArray().Value("a\"b").Value(1).EndArray();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(out.str(),
            "{\"name\":\"fig02\",\"count\":3,\"ratio\":2.5,\"fast\":false,"
            "\"missing\":null,\"rows\":[[\"a\\\"b\",1]]}");
}

TEST_F(TraceTest, JsonWriterEscapesControlCharacters) {
  std::ostringstream out;
  JsonWriter json(out, /*indent_width=*/0);
  json.Value(std::string_view("line\nbreak\ttab\x01"));
  EXPECT_EQ(out.str(), "\"line\\nbreak\\ttab\\u0001\"");
}


TEST_F(TraceTest, JsonWriterPassesMultiByteUtf8Unescaped) {
  // WriteEscaped treats bytes >= 0x20 other than '"' and '\\' as passthrough, so UTF-8
  // multi-byte sequences survive verbatim (JSON strings are UTF-8 by definition).
  std::ostringstream out;
  JsonWriter json(out, /*indent_width=*/0);
  json.Value(std::string_view("caf\xc3\xa9 \xe2\x9c\x93 \xf0\x9f\x90\x99"));
  EXPECT_EQ(out.str(), "\"caf\xc3\xa9 \xe2\x9c\x93 \xf0\x9f\x90\x99\"");
}

TEST_F(TraceTest, JsonWriterEscapesEveryC0ControlCharacter) {
  // Every byte below 0x20 must leave the writer escaped: the named escapes for the
  // whitespace trio, \uXXXX for the rest (including \b and \f, which this writer does
  // not special-case).
  for (int c = 1; c < 0x20; ++c) {
    std::ostringstream out;
    JsonWriter json(out, /*indent_width=*/0);
    char raw[2] = {static_cast<char>(c), '\0'};
    json.Value(std::string_view(raw, 1));
    std::string printed = out.str();
    ASSERT_GE(printed.size(), 4u) << "c=" << c;
    std::string body = printed.substr(1, printed.size() - 2);  // Strip the quotes.
    ASSERT_FALSE(body.empty()) << "c=" << c;
    EXPECT_EQ(body[0], '\\') << "unescaped control char " << c << ": " << printed;
    if (c == '\n') {
      EXPECT_EQ(body, "\\n");
    } else if (c == '\t') {
      EXPECT_EQ(body, "\\t");
    } else if (c == '\r') {
      EXPECT_EQ(body, "\\r");
    } else {
      char expected[8];
      std::snprintf(expected, sizeof(expected), "\\u%04x", c);
      EXPECT_EQ(body, expected) << "c=" << c;
    }
  }
}

TEST_F(TraceTest, JsonWriterDeepNestingBalances) {
  constexpr int kDepth = 64;
  std::ostringstream out;
  JsonWriter json(out, /*indent_width=*/0);
  for (int i = 0; i < kDepth; ++i) {
    json.BeginObject();
    json.Key("a").BeginArray();
  }
  json.Value(static_cast<uint64_t>(1));
  for (int i = 0; i < kDepth; ++i) {
    json.EndArray();
    json.EndObject();
  }
  std::string printed = out.str();
  auto count = [&printed](char c) {
    size_t n = 0;
    for (char x : printed) {
      n += (x == c) ? 1 : 0;
    }
    return n;
  };
  EXPECT_EQ(count('{'), static_cast<size_t>(kDepth));
  EXPECT_EQ(count('}'), static_cast<size_t>(kDepth));
  EXPECT_EQ(count('['), static_cast<size_t>(kDepth));
  EXPECT_EQ(count(']'), static_cast<size_t>(kDepth));
  EXPECT_NE(printed.find("[1]"), std::string::npos);
}

TEST_F(TraceTest, JsonWriterNumericPrecisionRoundTrips) {
  // Value(double) prints with %.12g; every value a bench sidecar actually emits (counters,
  // millisecond latencies, ratios) must parse back to the identical double.
  const double values[] = {0.0,       0.5,   -0.125, 0.1, 1e-9, 1048576.25,
                           8589934592.0, 3.25e15};
  for (double value : values) {
    std::ostringstream out;
    JsonWriter json(out, /*indent_width=*/0);
    json.Value(value);
    std::string printed = out.str();
    EXPECT_EQ(std::strtod(printed.c_str(), nullptr), value) << printed;
  }
}

TEST_F(TraceTest, JsonWriterNonFiniteBecomesNull) {
  // JSON has no NaN/Infinity literals; the writer degrades them to null rather than
  // emitting an unparsable document.
  std::ostringstream out;
  JsonWriter json(out, /*indent_width=*/0);
  json.BeginArray();
  json.Value(std::numeric_limits<double>::quiet_NaN());
  json.Value(std::numeric_limits<double>::infinity());
  json.Value(-std::numeric_limits<double>::infinity());
  json.EndArray();
  EXPECT_EQ(out.str(), "[null,null,null]");
}

}  // namespace
}  // namespace odf
