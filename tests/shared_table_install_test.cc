// Regression tests for a subtle shared-table hazard found by the property suite: after an
// on-demand fork, sharers' VMA layouts can diverge (one process unmaps a region and another
// maps something new into the same 2 MiB span). Installing a demand-faulted entry into the
// still-shared table would make the new mapping's pages visible to every sharer. The fault
// handler must dedicate tables before ANY install, not just before COW writes.
#include <gtest/gtest.h>

#include "src/mm/range_ops.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class SharedTableInstallTest : public ::testing::Test {
 protected:
  SharedTableInstallTest() : parent_(kernel_.CreateProcess()) {}

  Kernel kernel_;
  Process& parent_;
};

TEST_F(SharedTableInstallTest, ChildMappingInSharedSpanStaysInvisibleToParent) {
  // Parent: region A (small) and region B in the same 2 MiB chunk.
  AddressSpace& pas = parent_.address_space();
  Vaddr base = 0x40000000;
  Vaddr a = pas.MapAnonymous(8 * kPageSize, kProtRead | kProtWrite, false, base);
  Vaddr b = pas.MapAnonymous(64 * kPageSize, kProtRead | kProtWrite, false,
                             base + 16 * kPageSize);
  ASSERT_EQ(a, base);
  FillPattern(parent_, a, 8 * kPageSize, 1);
  FillPattern(parent_, b, 64 * kPageSize, 2);

  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);

  // The child unmaps B and maps a file view at the same address (same shared chunk).
  auto file = kernel_.fs().Open("/f");
  std::vector<std::byte> content(4 * kPageSize, std::byte{0xee});
  file->Write(0, content);
  child.Munmap(b, 64 * kPageSize);
  Vaddr view = child.address_space().MapFile(file, 0, 4 * kPageSize, kProtRead, false, b);
  ASSERT_EQ(view, b);
  EXPECT_EQ(ReadByte(child, view), std::byte{0xee});

  // The parent still has its OWN region B with its own contents; the child's file pages
  // must not have leaked into the parent's view through the shared table.
  ExpectPattern(parent_, b, 64 * kPageSize, 2);
  ExpectPattern(parent_, a, 8 * kPageSize, 1);
}

TEST_F(SharedTableInstallTest, ParentGrowthOverChildRemnantSeesZeroes) {
  // The exact shape the property suite caught: the parent unmaps B, a child (sharing the
  // chunk) maps and faults pages at B's old address, the parent later grows A over it.
  AddressSpace& pas = parent_.address_space();
  Vaddr base = 0x40000000;
  Vaddr a = pas.MapAnonymous(8 * kPageSize, kProtRead | kProtWrite, false, base);
  ASSERT_EQ(a, base);
  FillPattern(parent_, a, 8 * kPageSize, 3);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);

  // The child maps fresh memory into the shared chunk and faults it in (reads+writes).
  Vaddr child_extra = child.address_space().MapAnonymous(16 * kPageSize,
                                                         kProtRead | kProtWrite, false,
                                                         base + 32 * kPageSize);
  ASSERT_EQ(child_extra, base + 32 * kPageSize);
  ASSERT_TRUE(child.MemsetMemory(child_extra, std::byte{0xbd}, 16 * kPageSize));

  // The parent grows A over the same addresses; fresh anonymous memory must read as zero.
  Vaddr grown = parent_.Mremap(a, 8 * kPageSize, 64 * kPageSize);
  ASSERT_EQ(grown, a);
  for (Vaddr va = a + 32 * kPageSize; va < a + 48 * kPageSize; va += kPageSize) {
    ASSERT_EQ(ReadByte(parent_, va), std::byte{0})
        << "child-faulted page leaked into the parent at " << va;
  }
  // And the child still sees its own data.
  EXPECT_EQ(ReadByte(child, child_extra), std::byte{0xbd});
}

TEST_F(SharedTableInstallTest, ReadFaultInSharedSpanDedicatesInsteadOfPolluting) {
  // Partially populated parent: only half the chunk has present pages at fork time.
  Vaddr a = parent_.Mmap(256 * kPageSize, kProtRead | kProtWrite);
  FillPattern(parent_, a, 64 * kPageSize, 4);  // First 64 pages present, rest not.
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);

  AddressSpace& cas = child.address_space();
  uint64_t* pmd = cas.walker().FindEntry(cas.pgd(), a, PtLevel::kPmd);
  FrameId shared_table = LoadEntry(pmd).frame();
  ASSERT_EQ(kernel_.allocator().GetMeta(shared_table).pt_share_count.load(), 2u);

  // Child reads a not-yet-faulted page: the install must go into a dedicated copy.
  EXPECT_EQ(ReadByte(child, a + 128 * kPageSize), std::byte{0});
  uint64_t* pmd_after = cas.walker().FindEntry(cas.pgd(), a, PtLevel::kPmd);
  EXPECT_NE(LoadEntry(pmd_after).frame(), shared_table)
      << "a demand install must dedicate the shared table first";
  // The parent's shared table must NOT have gained an entry for that page.
  AddressSpace& pas = parent_.address_space();
  Translation t = pas.walker().Translate(pas.pgd(), a + 128 * kPageSize, AccessType::kRead);
  EXPECT_EQ(t.status, TranslateStatus::kNotPresent)
      << "the child's demand-zero page leaked into the parent's table";
}

TEST_F(SharedTableInstallTest, PopulateIntoSharedSpanDedicates) {
  Vaddr a = parent_.Mmap(128 * kPageSize, kProtRead | kProtWrite);
  FillPattern(parent_, a, 32 * kPageSize, 5);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);

  child.address_space().PopulateRange(a, 128 * kPageSize);
  // Parent must still translate only its original 32 pages.
  EXPECT_EQ(parent_.address_space().CountPresentPtes(), 32u);
  EXPECT_EQ(child.address_space().CountPresentPtes(), 128u);
  ExpectPattern(parent_, a, 32 * kPageSize, 5);
}

}  // namespace
}  // namespace odf
