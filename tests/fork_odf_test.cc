// Semantics of on-demand-fork: last-level table sharing, PMD write-protection, fast reads,
// on-demand table COW, the share-count lifecycle (§3.1–§3.5) and accounting (§3.6).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/mm/range_ops.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class OdfForkTest : public ::testing::Test {
 protected:
  OdfForkTest() : parent_(kernel_.CreateProcess()) {}

  // Maps and fully populates (with real data) an anonymous region in the parent.
  Vaddr MapFilled(uint64_t length, uint64_t seed = 1) {
    Vaddr va = parent_.Mmap(length, kProtRead | kProtWrite);
    FillPattern(parent_, va, length, seed);
    return va;
  }

  FrameId PteTableOf(Process& p, Vaddr va) {
    AddressSpace& as = p.address_space();
    uint64_t* pmd = as.walker().FindEntry(as.pgd(), va, PtLevel::kPmd);
    if (pmd == nullptr) {
      return kInvalidFrame;
    }
    Pte entry = LoadEntry(pmd);
    return entry.IsPresent() && !entry.IsHuge() ? entry.frame() : kInvalidFrame;
  }

  Pte PmdEntryOf(Process& p, Vaddr va) {
    AddressSpace& as = p.address_space();
    uint64_t* pmd = as.walker().FindEntry(as.pgd(), va, PtLevel::kPmd);
    return pmd == nullptr ? Pte() : LoadEntry(pmd);
  }

  uint32_t ShareCount(FrameId table) {
    return kernel_.allocator().GetMeta(table).pt_share_count.load();
  }

  Kernel kernel_;
  Process& parent_;
};

TEST_F(OdfForkTest, ChildSharesParentPteTables) {
  Vaddr va = MapFilled(8 * kHugePageSize);  // 16 MiB -> 8 PTE tables.
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  for (uint64_t i = 0; i < 8; ++i) {
    Vaddr probe = va + i * kHugePageSize;
    FrameId parent_table = PteTableOf(parent_, probe);
    FrameId child_table = PteTableOf(child, probe);
    ASSERT_NE(parent_table, kInvalidFrame);
    EXPECT_EQ(parent_table, child_table) << "chunk " << i << " must share one PTE table";
    EXPECT_EQ(ShareCount(parent_table), 2u);
  }
}

TEST_F(OdfForkTest, UpperLevelsAreCopiedNotShared) {
  Vaddr va = MapFilled(kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  AddressSpace& pas = parent_.address_space();
  AddressSpace& cas = child.address_space();
  EXPECT_NE(pas.pgd(), cas.pgd());
  for (PtLevel level : {PtLevel::kPud, PtLevel::kPmd}) {
    uint64_t* p_entry = pas.walker().FindEntry(pas.pgd(), va, level);
    uint64_t* c_entry = cas.walker().FindEntry(cas.pgd(), va, level);
    ASSERT_NE(p_entry, nullptr);
    ASSERT_NE(c_entry, nullptr);
    if (level != PtLevel::kPmd) {
      EXPECT_NE(LoadEntry(p_entry).frame(), LoadEntry(c_entry).frame());
    }
  }
}

TEST_F(OdfForkTest, BothPmdEntriesAreWriteProtected) {
  Vaddr va = MapFilled(kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  EXPECT_FALSE(PmdEntryOf(parent_, va).IsWritable());
  EXPECT_FALSE(PmdEntryOf(child, va).IsWritable());
}

TEST_F(OdfForkTest, PageRefcountsAreNotTouchedAtForkTime) {
  Vaddr va = MapFilled(kHugePageSize);
  AddressSpace& as = parent_.address_space();
  Translation t = as.walker().Translate(as.pgd(), va, AccessType::kRead);
  ASSERT_EQ(t.status, TranslateStatus::kOk);
  EXPECT_EQ(kernel_.allocator().GetMeta(t.frame).refcount.load(), 1u);
  kernel_.Fork(parent_, ForkMode::kOnDemand);
  EXPECT_EQ(kernel_.allocator().GetMeta(t.frame).refcount.load(), 1u)
      << "ODF must not reference-count data pages during the fork call (§3.6)";
}

TEST_F(OdfForkTest, ChildSeesParentDataAfterFork) {
  Vaddr va = MapFilled(3 * kHugePageSize, /*seed=*/7);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  ExpectPattern(child, va, 3 * kHugePageSize, 7);
}

TEST_F(OdfForkTest, ReadsDoNotCopyTables) {
  Vaddr va = MapFilled(4 * kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  std::vector<std::byte> buffer(4 * kHugePageSize);
  ASSERT_TRUE(child.ReadMemory(va, buffer));
  EXPECT_EQ(child.address_space().stats().pte_table_cow_faults, 0u)
      << "reads must be served through shared tables without faults (fast read, §3.4)";
  FrameId table = PteTableOf(parent_, va);
  EXPECT_EQ(ShareCount(table), 2u);
}

TEST_F(OdfForkTest, FirstWriteCopiesTableOncePer2MiB) {
  Vaddr va = MapFilled(2 * kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  FrameId shared_table = PteTableOf(child, va);

  WriteByte(child, va + 100, std::byte{0xaa});
  AddressSpace& cas = child.address_space();
  EXPECT_EQ(cas.stats().pte_table_cow_faults, 1u);
  FrameId child_table = PteTableOf(child, va);
  EXPECT_NE(child_table, shared_table) << "child must have its own table after the write";
  EXPECT_EQ(PteTableOf(parent_, va), shared_table);
  EXPECT_EQ(ShareCount(shared_table), 1u) << "parent remains the only user of the old table";
  EXPECT_EQ(ShareCount(child_table), 1u);
  EXPECT_TRUE(PmdEntryOf(child, va).IsWritable()) << "child PMD write permission restored";

  // More writes within the same 2 MiB region must not copy tables again.
  for (int i = 1; i <= 64; ++i) {
    WriteByte(child, va + static_cast<uint64_t>(i) * kPageSize, std::byte{0xbb});
  }
  EXPECT_EQ(cas.stats().pte_table_cow_faults, 1u)
      << "table COW can only occur once per process per 2 MiB region (§3.4)";

  // The second 2 MiB region still shares; writing there copies its table.
  WriteByte(child, va + kHugePageSize, std::byte{0xcc});
  EXPECT_EQ(cas.stats().pte_table_cow_faults, 2u);
}

TEST_F(OdfForkTest, TableCopyTakesPageReferences) {
  Vaddr va = MapFilled(kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  AddressSpace& pas = parent_.address_space();
  Translation t = pas.walker().Translate(pas.pgd(), va + 8 * kPageSize, AccessType::kRead);
  ASSERT_EQ(t.status, TranslateStatus::kOk);

  WriteByte(child, va, std::byte{1});  // Dedicates the child's table.
  EXPECT_EQ(kernel_.allocator().GetMeta(t.frame).refcount.load(), 2u)
      << "the dedicated copy must take one reference on every mapped page (§3.6)";
}

TEST_F(OdfForkTest, CowIsolatesChildWritesFromParent) {
  Vaddr va = MapFilled(2 * kHugePageSize, /*seed=*/3);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  WriteByte(child, va + 5000, std::byte{0x5a});
  EXPECT_EQ(ReadByte(child, va + 5000), std::byte{0x5a});
  ExpectPattern(parent_, va, 2 * kHugePageSize, 3);
}

TEST_F(OdfForkTest, CowIsolatesParentWritesFromChild) {
  Vaddr va = MapFilled(2 * kHugePageSize, /*seed=*/4);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  WriteByte(parent_, va + 123456, std::byte{0x77});
  ExpectPattern(child, va, 2 * kHugePageSize, 4);
  EXPECT_EQ(ReadByte(parent_, va + 123456), std::byte{0x77});
}

TEST_F(OdfForkTest, SoleSharerGetsFixupNotCopy) {
  Vaddr va = MapFilled(kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  WriteByte(child, va, std::byte{1});  // Child dedicates; parent's table share drops to 1.
  AddressSpace& pas = parent_.address_space();
  uint64_t copies_before = pas.stats().pte_table_cow_faults;
  WriteByte(parent_, va + kPageSize, std::byte{2});
  EXPECT_EQ(pas.stats().pte_table_cow_faults, copies_before)
      << "a sole sharer must not copy the table";
  EXPECT_EQ(pas.stats().pte_table_fixups, 1u)
      << "the PMD write permission is simply re-enabled";
  EXPECT_TRUE(PmdEntryOf(parent_, va).IsWritable());
}

TEST_F(OdfForkTest, ManyProcessesCanShareOneTable) {
  Vaddr va = MapFilled(kHugePageSize);
  FrameId table = PteTableOf(parent_, va);
  Process& c1 = kernel_.Fork(parent_, ForkMode::kOnDemand);
  Process& c2 = kernel_.Fork(parent_, ForkMode::kOnDemand);
  Process& grandchild = kernel_.Fork(c1, ForkMode::kOnDemand);
  EXPECT_EQ(ShareCount(table), 4u) << "unlimited processes may share one table (§3.4)";
  WriteByte(grandchild, va, std::byte{9});
  EXPECT_EQ(ShareCount(table), 3u);
  EXPECT_EQ(ReadByte(c2, va), ReadByte(parent_, va));
}

TEST_F(OdfForkTest, SharedTableSurvivesParentExit) {
  Vaddr va = MapFilled(kHugePageSize, /*seed=*/11);
  FrameId table = PteTableOf(parent_, va);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  kernel_.Exit(parent_, 0);
  EXPECT_EQ(ShareCount(table), 1u);
  ExpectPattern(child, va, kHugePageSize, 11);  // Reads through the surviving table.
  WriteByte(child, va, std::byte{0x11});
  EXPECT_EQ(ReadByte(child, va), std::byte{0x11});
}

TEST_F(OdfForkTest, DirtyBitNeverSetWhileShared) {
  Vaddr va = MapFilled(kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);

  // The parent's pre-fork writes dirtied entries; scrub them so any dirty bit observed below
  // must have been set while the table was shared — which §3.2 guarantees cannot happen
  // because write permission is revoked at the PMD.
  FrameId table = PteTableOf(parent_, va);
  ASSERT_EQ(ShareCount(table), 2u);
  uint64_t* entries = kernel_.allocator().TableEntries(table);
  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    StoreEntry(&entries[i], LoadEntry(&entries[i]).WithoutFlag(kPteDirty));
  }

  std::vector<std::byte> buffer(kHugePageSize);
  ASSERT_TRUE(child.ReadMemory(va, buffer));
  ASSERT_TRUE(parent_.ReadMemory(va, buffer));
  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    Pte entry = LoadEntry(&entries[i]);
    if (entry.IsPresent()) {
      EXPECT_FALSE(entry.IsDirty()) << "entry " << i << " dirtied while table shared (§3.2)";
    }
  }
}

TEST_F(OdfForkTest, AccessedBitsAreDuplicatedOnTableCopy) {
  Vaddr va = MapFilled(kHugePageSize);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  // Touch one page so its entry is accessed in the shared table; the populate path set
  // accessed everywhere, so clear a different entry first to create contrast.
  FrameId table = PteTableOf(parent_, va);
  uint64_t* entries = kernel_.allocator().TableEntries(table);
  StoreEntry(&entries[9], LoadEntry(&entries[9]).WithoutFlag(kPteAccessed));

  WriteByte(child, va, std::byte{1});  // Table copy.
  AddressSpace& cas = child.address_space();
  uint64_t* c_pmd = cas.walker().FindEntry(cas.pgd(), va, PtLevel::kPmd);
  uint64_t* c_entries = kernel_.allocator().TableEntries(LoadEntry(c_pmd).frame());
  EXPECT_FALSE(LoadEntry(&c_entries[9]).IsAccessed())
      << "the copy must duplicate accessed-bit values, not invent them (§3.2)";
  EXPECT_TRUE(LoadEntry(&c_entries[3]).IsAccessed());
}

TEST_F(OdfForkTest, NoLeaksAfterForkStorm) {
  Vaddr va = MapFilled(4 * kHugePageSize, /*seed=*/2);
  for (int round = 0; round < 10; ++round) {
    Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
    Pid child_pid = child.pid();
    WriteByte(child, va + static_cast<uint64_t>(round) * kPageSize, std::byte{0xee});
    kernel_.Exit(child, 0);
    ASSERT_EQ(kernel_.Wait(parent_), child_pid);  // Wait frees the child Process object.
  }
  ExpectPattern(parent_, va, 4 * kHugePageSize, 2);
  kernel_.Exit(parent_, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree()) << "fork storm leaked frames";
}

TEST_F(OdfForkTest, ForkCountersTrackSharing) {
  MapFilled(8 * kHugePageSize);
  kernel_.Fork(parent_, ForkMode::kOnDemand);
  EXPECT_EQ(kernel_.fork_counters().on_demand_forks, 1u);
  EXPECT_EQ(kernel_.fork_counters().pte_tables_shared, 8u);
  EXPECT_EQ(kernel_.fork_counters().pte_entries_copied, 0u);
}

// The acceptance scenario from docs/observability.md: with tracing enabled, an on-demand
// fork of a 1 GiB-mapped process emits fork_begin, one pte_table_shared per last-level
// table, fork_end — and a subsequent child write emits the deferred COW events.
TEST_F(OdfForkTest, TraceCapturesOnDemandForkSequence) {
#if !ODF_TRACE_COMPILED
  GTEST_SKIP() << "tracepoints compiled out (ODF_TRACE=OFF)";
#endif
  constexpr uint64_t kGiB = 1ull << 30;
  constexpr uint64_t kTables = kGiB / kPteTableSpan;  // 512 PTE tables.
  Vaddr va = parent_.Mmap(kGiB, kProtRead | kProtWrite);
  parent_.address_space().PopulateRange(va, kGiB);  // Every page present, no data buffers.

  trace::Tracer::Global().Clear();
  MetricsRegistry::Global().ResetForTest();
  trace::SetEnabled(true);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  child.StoreU64(va, 1);  // First write: PTE-table COW, then data-page COW.
  trace::SetEnabled(false);

  std::vector<TraceEvent> events = trace::Tracer::Global().CollectAll();
  auto count_of = [&events](TraceEventId id) {
    return std::count_if(events.begin(), events.end(),
                         [id](const TraceEvent& e) { return e.id == id; });
  };
  auto index_of = [&events](TraceEventId id) {
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].id == id) {
        return static_cast<ptrdiff_t>(i);
      }
    }
    return static_cast<ptrdiff_t>(-1);
  };

  // Fork bracketing, with every table-share event in between.
  EXPECT_EQ(count_of(TraceEventId::k_fork_begin), 1);
  EXPECT_EQ(count_of(TraceEventId::k_fork_end), 1);
  EXPECT_EQ(count_of(TraceEventId::k_pte_table_shared), static_cast<ptrdiff_t>(kTables));
  ptrdiff_t begin_at = index_of(TraceEventId::k_fork_begin);
  ptrdiff_t end_at = index_of(TraceEventId::k_fork_end);
  ASSERT_NE(begin_at, -1);
  ASSERT_NE(end_at, -1);
  EXPECT_LT(begin_at, index_of(TraceEventId::k_pte_table_shared));
  EXPECT_LT(index_of(TraceEventId::k_pte_table_shared), end_at);

  // fork_begin carries (mode, mapped bytes); all fork events name the parent.
  const TraceEvent& begin = events[static_cast<size_t>(begin_at)];
  EXPECT_EQ(begin.pid, parent_.pid());
  EXPECT_EQ(begin.a0, static_cast<uint64_t>(ForkMode::kOnDemand));
  EXPECT_EQ(begin.a1, kGiB);

  // The deferred costs surfaced after fork_end: the child's write COWed one PTE table, then
  // one data page (the populated-no-data page COWs as a reuse or copy depending on backing).
  EXPECT_EQ(count_of(TraceEventId::k_fault_cow_pte_table), 1);
  EXPECT_GT(index_of(TraceEventId::k_fault_cow_pte_table), end_at);

  // And the vmstat counters saw the same story.
  EXPECT_EQ(ReadVm(VmCounter::k_fork_on_demand), 1u);
  EXPECT_EQ(ReadVm(VmCounter::k_pte_tables_shared), kTables);
  EXPECT_EQ(ReadVm(VmCounter::k_pte_table_cow), 1u);
  EXPECT_EQ(ReadVm(VmCounter::k_fork_pte_entries_copied), 0u);
}

}  // namespace
}  // namespace odf
