// Per-thread frame caches (src/phys/per_cpu_cache.h, the pcplist analog) and the batched
// refcount/free paths: cache hit/miss/refill/drain behaviour, drain on thread exit, leak
// freedom under randomized multi-thread churn, and scalar/batch API equivalence. Part of the
// `concurrency` ctest label and expected to run clean under -fsanitize=thread (the tsan
// preset, docs/testing.md).
#include "src/phys/frame_allocator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "src/trace/metrics.h"
#include "src/util/rng.h"

namespace odf {
namespace {

TEST(FrameCacheTest, FreedFrameParksInCacheAndIsRecycledWithoutThePool) {
  FrameAllocator allocator;
  FrameId first = allocator.Allocate(kPageFlagAnon);
  uint64_t cached_before = allocator.CachedFrames();
  allocator.DecRef(first);
  EXPECT_EQ(allocator.CachedFrames(), cached_before + 1)
      << "order-0 free must park in the thread cache";
  EXPECT_TRUE(allocator.AllFree()) << "cached frames are free, not allocated";

  uint64_t hits_before = ReadVm(VmCounter::k_pcp_hit);
  FrameId second = allocator.Allocate(kPageFlagAnon);
  EXPECT_EQ(second, first) << "LIFO cache must recycle the hottest frame";
  EXPECT_EQ(ReadVm(VmCounter::k_pcp_hit), hits_before + 1);
  EXPECT_EQ(allocator.CachedFrames(), cached_before);
  allocator.DecRef(second);
}

TEST(FrameCacheTest, FirstAllocationRefillsOneBatch) {
  FrameAllocator allocator;
  uint64_t misses_before = ReadVm(VmCounter::k_pcp_miss);
  uint64_t refill_before = ReadVm(VmCounter::k_pcp_refill);
  FrameId frame = allocator.Allocate(kPageFlagAnon);
  EXPECT_EQ(ReadVm(VmCounter::k_pcp_miss), misses_before + 1);
  uint64_t batch = ReadVm(VmCounter::k_pcp_refill) - refill_before;
  EXPECT_GE(batch, 1u);
  // One frame was handed out; the rest of the refill batch is parked in the cache.
  EXPECT_EQ(allocator.CachedFrames(), batch - 1);
  allocator.DecRef(frame);
}

TEST(FrameCacheTest, OverfullCacheSpillsBatchToPool) {
  FrameAllocator allocator;
  // Allocate well past one refill batch, then free everything: the cache must spill in
  // batches rather than grow without bound.
  constexpr size_t kFrames = 512;
  std::vector<FrameId> frames;
  for (size_t i = 0; i < kFrames; ++i) {
    frames.push_back(allocator.Allocate(kPageFlagAnon));
  }
  uint64_t drains_before = ReadVm(VmCounter::k_pcp_drain);
  for (FrameId frame : frames) {
    allocator.DecRef(frame);
  }
  EXPECT_GT(ReadVm(VmCounter::k_pcp_drain), drains_before) << "spill must have happened";
  EXPECT_LE(allocator.CachedFrames(), 64u) << "cache capacity must stay bounded";
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameCacheTest, CacheDrainsBackToPoolOnThreadExit) {
  FrameAllocator allocator;
  std::thread worker([&allocator] {
    std::vector<FrameId> frames;
    for (int i = 0; i < 40; ++i) {
      frames.push_back(allocator.Allocate(kPageFlagAnon));
    }
    for (FrameId frame : frames) {
      allocator.DecRef(frame);
    }
    EXPECT_GT(allocator.CachedFrames(), 0u) << "worker's cache should hold its frees";
  });
  worker.join();
  EXPECT_EQ(allocator.CachedFrames(), 0u)
      << "thread exit must drain its cache back to the shared pool";
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameCacheTest, FrameLimitBypassesTheCache) {
  FrameAllocator allocator;
  allocator.SetFrameLimit(1u << 16);
  uint64_t hits_before = ReadVm(VmCounter::k_pcp_hit);
  uint64_t misses_before = ReadVm(VmCounter::k_pcp_miss);
  FrameId frame = allocator.Allocate(kPageFlagAnon);
  allocator.DecRef(frame);
  EXPECT_EQ(allocator.CachedFrames(), 0u) << "caches stand down while a limit is armed";
  EXPECT_EQ(ReadVm(VmCounter::k_pcp_hit), hits_before);
  EXPECT_EQ(ReadVm(VmCounter::k_pcp_miss), misses_before);
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameCacheTest, ThreadedChurnKeepsFramesDistinctAndLeakFree) {
  FrameAllocator allocator;
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&allocator, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      std::vector<FrameId> held;
      for (int round = 0; round < kRounds; ++round) {
        if (held.empty() || rng.Next() % 2 == 0) {
          FrameId frame = allocator.Allocate(kPageFlagAnon);
          // The frame is exclusively ours: its metadata must say so.
          EXPECT_EQ(allocator.GetMeta(frame).refcount.load(std::memory_order_relaxed), 1u);
          held.push_back(frame);
        } else {
          size_t victim = rng.Next() % held.size();
          allocator.DecRef(held[victim]);
          held[victim] = held.back();
          held.pop_back();
        }
      }
      for (FrameId frame : held) {
        allocator.DecRef(frame);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(allocator.AllFree()) << "randomized multi-thread churn must not leak";
}

TEST(FrameCacheTest, CrossThreadFreeOfSharedFrames) {
  // COW shape: frames allocated on one thread, referenced by many, freed by whichever
  // thread drops the last reference (the acq_rel DecRef chain).
  FrameAllocator allocator;
  constexpr int kThreads = 4;
  constexpr size_t kFrames = 256;
  std::vector<FrameId> frames;
  for (size_t i = 0; i < kFrames; ++i) {
    FrameId frame = allocator.Allocate(kPageFlagAnon);
    for (int t = 1; t < kThreads; ++t) {
      allocator.IncRef(frame);
    }
    frames.push_back(frame);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&allocator, &frames] {
      for (FrameId frame : frames) {
        allocator.DecRef(frame);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameCacheTest, ConcurrentMaterializeResolvesToOneBuffer) {
  FrameAllocator allocator;
  constexpr size_t kFrames = 64;
  std::vector<FrameId> frames;
  for (size_t i = 0; i < kFrames; ++i) {
    frames.push_back(allocator.Allocate(kPageFlagAnon));
  }
  constexpr int kThreads = 4;
  std::array<std::array<std::byte*, kFrames>, kThreads> observed{};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&allocator, &frames, &observed, t] {
      for (size_t i = 0; i < kFrames; ++i) {
        observed[static_cast<size_t>(t)][i] = allocator.MaterializeData(frames[i]);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (size_t i = 0; i < kFrames; ++i) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(observed[static_cast<size_t>(t)][i], observed[0][i])
          << "racing materialisations of frame " << frames[i] << " must agree";
    }
  }
  for (FrameId frame : frames) {
    allocator.DecRef(frame);
  }
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameCacheTest, AllocateBatchMatchesScalarAllocate) {
  FrameAllocator allocator;
  std::array<FrameId, 300> batch;
  allocator.AllocateBatch(kPageFlagAnon | kPageFlagZeroFill, std::span<FrameId>(batch));
  std::set<FrameId> seen;
  for (FrameId frame : batch) {
    EXPECT_TRUE(seen.insert(frame).second) << "batch handed out frame " << frame << " twice";
    const PageMeta& meta = allocator.GetMeta(frame);
    EXPECT_EQ(meta.refcount.load(std::memory_order_relaxed), 1u);
    EXPECT_TRUE((meta.flags & kPageFlagAllocated) != 0);
    EXPECT_EQ(meta.compound_head, frame);
    EXPECT_EQ(allocator.PeekData(frame), nullptr);
  }
  EXPECT_EQ(allocator.Stats().allocated_frames, batch.size());
  allocator.DecRefBatch(std::span<const FrameId>(batch));
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameCacheTest, IncAndDecRefBatchMatchScalarLoops) {
  FrameAllocator allocator;
  std::array<FrameId, 16> frames;
  allocator.AllocateBatch(kPageFlagAnon, std::span<FrameId>(frames));

  // Batch IncRef == 16 scalar IncRefs.
  allocator.IncRefBatch(std::span<const FrameId>(frames));
  for (FrameId frame : frames) {
    EXPECT_EQ(allocator.GetMeta(frame).refcount.load(std::memory_order_relaxed), 2u);
  }
  // One batch DecRef drops to 1 and frees nothing...
  allocator.DecRefBatch(std::span<const FrameId>(frames));
  EXPECT_EQ(allocator.Stats().allocated_frames, frames.size());
  for (FrameId frame : frames) {
    EXPECT_EQ(allocator.GetMeta(frame).refcount.load(std::memory_order_relaxed), 1u);
  }
  // ...the second frees everything, exactly like a scalar DecRef loop would.
  uint64_t batch_free_before = ReadVm(VmCounter::k_batch_free);
  allocator.DecRefBatch(std::span<const FrameId>(frames));
  EXPECT_TRUE(allocator.AllFree());
  EXPECT_EQ(ReadVm(VmCounter::k_batch_free), batch_free_before + frames.size())
      << "zero-hitting frames of one batch must be freed via the batch path";
}

TEST(FrameCacheTest, FreeBatchReleasesSolelyOwnedFrames) {
  FrameAllocator allocator;
  std::array<FrameId, 64> frames;
  allocator.AllocateBatch(kPageFlagAnon, std::span<FrameId>(frames));
  EXPECT_EQ(allocator.Stats().allocated_frames, frames.size());
  allocator.FreeBatch(std::span<const FrameId>(frames));
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameCacheTest, IncPtShareBatchMatchesScalar) {
  FrameAllocator allocator;
  std::array<FrameId, 8> tables;
  for (FrameId& table : tables) {
    table = allocator.Allocate(kPageFlagPageTable);  // Born with pt_share_count == 1.
  }
  allocator.IncPtShareBatch(std::span<const FrameId>(tables));
  for (FrameId table : tables) {
    EXPECT_EQ(allocator.GetMeta(table).pt_share_count.load(std::memory_order_relaxed), 2u);
  }
  for (FrameId table : tables) {
    EXPECT_EQ(allocator.DecPtShare(table), 2u);
    allocator.DecRef(table);
  }
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameCacheTest, StatsSnapshotIsCoherentUnderConcurrency) {
  // Stats() must be data-race free while other threads churn (relaxed atomics; this test is
  // the TSan witness for the old plain-uint64 race).
  FrameAllocator allocator;
  std::atomic<bool> stop{false};
  std::thread churn([&allocator, &stop] {
    Rng rng(7);
    std::vector<FrameId> held;
    while (!stop.load(std::memory_order_relaxed)) {
      if (held.size() < 128 && rng.Next() % 2 == 0) {
        held.push_back(allocator.Allocate(kPageFlagAnon));
      } else if (!held.empty()) {
        allocator.DecRef(held.back());
        held.pop_back();
      }
    }
    for (FrameId frame : held) {
      allocator.DecRef(frame);
    }
  });
  for (int i = 0; i < 5000; ++i) {
    FrameAllocatorStats stats = allocator.Stats();
    EXPECT_LE(stats.allocated_frames, stats.total_frames);
  }
  stop.store(true, std::memory_order_relaxed);
  churn.join();
  EXPECT_TRUE(allocator.AllFree());
}

TEST(FrameCacheTest, RandomizedTortureAcrossThreadsEndsAllFree) {
  FrameAllocator allocator;
  constexpr int kThreads = 4;
  constexpr int kOps = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&allocator, t] {
      Rng rng(0xabcdef12u + static_cast<uint64_t>(t));
      std::vector<FrameId> held;
      std::vector<FrameId> compounds;
      for (int op = 0; op < kOps; ++op) {
        switch (rng.Next() % 5) {
          case 0:
          case 1:
            held.push_back(allocator.Allocate(kPageFlagAnon));
            break;
          case 2: {
            std::array<FrameId, 32> batch;
            allocator.AllocateBatch(kPageFlagAnon, std::span<FrameId>(batch));
            held.insert(held.end(), batch.begin(), batch.end());
            break;
          }
          case 3:
            if (!held.empty()) {
              size_t victim = rng.Next() % held.size();
              allocator.DecRef(held[victim]);
              held[victim] = held.back();
              held.pop_back();
            } else if (compounds.size() < 4) {
              compounds.push_back(allocator.AllocateCompound(kPageFlagAnon));
            }
            break;
          case 4:
            if (!compounds.empty()) {
              allocator.DecRef(compounds.back());
              compounds.pop_back();
            } else if (held.size() >= 16) {
              std::span<const FrameId> tail(held.data() + held.size() - 16, 16);
              allocator.DecRefBatch(tail);
              held.resize(held.size() - 16);
            }
            break;
        }
      }
      allocator.DecRefBatch(std::span<const FrameId>(held));
      for (FrameId head : compounds) {
        allocator.DecRef(head);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(allocator.AllFree())
      << "randomized alloc/free/batch/compound torture must end with every frame free";
}

}  // namespace
}  // namespace odf
