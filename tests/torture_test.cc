// Torture suite (ctest label: torture): tens of thousands of randomized fork / fault /
// reclaim / exit operations under probabilistic fault injection and a tight frame limit.
// The whole run is single-threaded and seeded, so a failing seed replays deterministically:
//   ODF_TORTURE_SEED=<seed> ./torture_test
// (see docs/robustness.md "Replaying a failing seed").
//
// Invariants checked continuously:
//   - zero aborts: every injected failure surfaces as a typed, recoverable error;
//   - byte-identical parent memory after every failed fork (transactional rollback);
//   - zero leaks: FrameAllocator::AllFree() once every process has exited;
//   - determinism: two runs with the same seed produce identical op and injection counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "src/fi/fault_inject.h"
#include "src/mm/fault.h"
#include "src/replay/recorder.h"
#include "src/trace/metrics.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace odf {
namespace {

using fi::FaultInjector;

#if ODF_REPLAY_COMPILED
// Every torture test runs under the black-box flight recorder (docs/replay.md): a bounded
// recording costs a few percent, and a failing run leaves behind a log plus the exact
// odf-replay command to time-travel through it — strictly more information than the seed
// alone, because the log pins the fault-injection schedule and op outcomes that led to the
// failure. Set ODF_TORTURE_RECORD=0 to opt out (e.g. when profiling the suite itself).
class TortureFlightRecorder : public ::testing::EmptyTestEventListener {
  void OnTestStart(const ::testing::TestInfo&) override {
    if (const char* env = std::getenv("ODF_TORTURE_RECORD")) {
      if (std::atoi(env) == 0) {
        return;
      }
    }
    replay::RecorderOptions options;
    options.mode = replay::RecorderMode::kBlackBox;
    options.force_tracing = true;  // Perf is irrelevant here; keep the dump annotated.
    replay::Recorder::Global().Start(options);
  }
  void OnTestEnd(const ::testing::TestInfo& info) override {
    replay::Recorder& recorder = replay::Recorder::Global();
    if (!recorder.recording()) {
      return;
    }
    if (info.result()->Failed()) {
      // DumpNow prints the log path and the replay command to stderr.
      recorder.DumpNow();
    }
    recorder.Stop();
  }
};

const bool g_torture_recorder_registered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new TortureFlightRecorder);
  return true;
}();
#endif  // ODF_REPLAY_COMPILED

constexpr uint64_t kRootRegionBytes = 2 * kPteTableSpan;  // 4 MiB, 1024 pattern pages.
constexpr uint64_t kPatternSeed = 0xabcdef;
constexpr uint64_t kFrameLimit = 4096;  // Tight enough that reclaim runs, children get hit.
constexpr size_t kMaxLiveChildren = 3;
constexpr int kOps = 12000;

// Per-run tallies compared across the two same-seed runs for the determinism gate.
struct TortureTally {
  uint64_t forks_attempted = 0;
  uint64_t forks_failed = 0;
  uint64_t child_writes = 0;
  uint64_t child_write_failures = 0;
  uint64_t root_reads = 0;
  uint64_t root_read_retries = 0;
  uint64_t huge_touches = 0;
  uint64_t poison_heals = 0;
  uint64_t oom_kills = 0;
  // (calls, injected) per site, accumulated across re-arm windows.
  std::vector<std::pair<uint64_t, uint64_t>> site_stats;

  bool operator==(const TortureTally& other) const = default;
};

class TortureDriver {
 public:
  // `frame_limit` sets the pool size; `start_kswapd` arms the background reclaim daemon
  // (which makes the run nondeterministic — only the single-threaded default
  // configuration feeds the same-seed replay gate).
  explicit TortureDriver(uint64_t seed, uint64_t frame_limit = kFrameLimit,
                        bool start_kswapd = false, bool arm_mf = false)
      : rng_(seed), arm_mf_(arm_mf) {
    // The pattern fill runs before arming: the torture loop needs a known-good baseline to
    // verify rollbacks against, so its writes must not themselves be failed.
    FaultInjector::Global().Reset(seed);
    root_ = &kernel_.CreateProcess();
    region_ = root_->Mmap(kRootRegionBytes, kProtRead | kProtWrite);
    FillPattern(*root_, region_, kRootRegionBytes, kPatternSeed);
    kernel_.SetMemoryLimitFrames(frame_limit);
    if (start_kswapd) {
      kernel_.StartKswapd();
    }
    ArmAll();
  }

  void Run(TortureTally* tally) {
    for (int op = 0; op < kOps; ++op) {
      ASSERT_EQ(root_->state(), ProcessState::kRunning)
          << "op " << op << ": the OOM killer must never pick the driving root process";
      ReapZombies();
      uint64_t dice = rng_.NextBelow(100);
      if (dice < 25) {
        ASSERT_NO_FATAL_FAILURE(DoFork(tally)) << "op " << op;
      } else if (dice < 50) {
        ASSERT_NO_FATAL_FAILURE(DoChildWrite(tally)) << "op " << op;
      } else if (dice < 62) {
        ASSERT_NO_FATAL_FAILURE(DoHugeTouch(tally)) << "op " << op;
      } else if (dice < 82) {
        ASSERT_NO_FATAL_FAILURE(DoRootRead(tally)) << "op " << op;
      } else if (dice < 94) {
        DoExitChild();
      } else {
        kernel_.ReclaimMemory(rng_.NextInRange(8, 64));
      }
    }

    // Drain: every child exits, the injector is disarmed, and the root's pattern plus the
    // allocator's ledger must be exactly as they started.
    while (!children_.empty()) {
      Process* child = children_.back().second;
      if (child->state() == ProcessState::kRunning) {
        kernel_.Exit(*child, 0);
      }
      children_.pop_back();
    }
    while (kernel_.Wait(*root_) != -1) {
    }
    AccumulateSiteStats();
    FaultInjector::Global().Reset();
    ExpectPattern(*root_, region_, kRootRegionBytes, kPatternSeed);
    kernel_.Exit(*root_, 0);
    EXPECT_TRUE(kernel_.allocator().AllFree()) << "torture run leaked frames";
    tally->oom_kills = kernel_.oom_kills();
    tally->site_stats = site_totals_;
  }

 private:
  void ArmAll() {
    FaultInjector& fi = FaultInjector::Global();
    fi.Arm(FiSite::k_page_table_alloc, FiSiteConfig{.probability = 0.03});
    fi.Arm(FiSite::k_frame_alloc, FiSiteConfig{.probability = 0.01});
    fi.Arm(FiSite::k_compound_alloc, FiSiteConfig{.probability = 0.5});
    fi.Arm(FiSite::k_swap_out, FiSiteConfig{.probability = 0.05});
    fi.Arm(FiSite::k_swap_in, FiSiteConfig{.probability = 0.02});
    // An rmap_alloc failure makes the frame sticky-unevictable for the rest of the run,
    // so keep it rare — a high rate would pin the pool and starve the pressure variant.
    fi.Arm(FiSite::k_rmap_alloc, FiSiteConfig{.probability = 0.002});
    fi.Arm(FiSite::k_reclaim_writeback, FiSiteConfig{.probability = 0.05});
    if (arm_mf_) {
      // Injected uncorrectable memory errors (docs/memory-failure.md): each hit hard-
      // offlines the touched frame mid-access and permanently quarantines it. Arm() calls
      // restart the per-site call index (and the disarmed verification windows re-arm
      // constantly), so the probability must be high enough to fire within a window; the
      // `times` budget caps the quarantine growth so a 12000-op run cannot eat the pool.
      fi.Arm(FiSite::k_mf_ecc, FiSiteConfig{.probability = 0.01, .times = 2});
    }
  }

  // Arm() restarts per-site counters, so fold the window that is about to be lost into the
  // running totals before disarming for a verification pass.
  void AccumulateSiteStats() {
    FaultInjector& fi = FaultInjector::Global();
    if (site_totals_.empty()) {
      site_totals_.resize(kFiSiteCount, {0, 0});
    }
    for (size_t i = 0; i < kFiSiteCount; ++i) {
      FiSiteStats stats = fi.SiteStats(static_cast<FiSite>(i));
      site_totals_[i].first += stats.calls;
      site_totals_[i].second += stats.injected;
    }
  }

  // Pattern verification must not itself trip injection (a failed swap-in would read as a
  // corruption), so it runs in a disarmed window.
  void VerifyRootPattern() {
    AccumulateSiteStats();
    FaultInjector& fi = FaultInjector::Global();
    for (size_t i = 0; i < kFiSiteCount; ++i) {
      fi.Disarm(static_cast<FiSite>(i));
    }
    ExpectPattern(*root_, region_, kRootRegionBytes, kPatternSeed);
    ArmAll();
  }

  void DoFork(TortureTally* tally) {
    ++tally->forks_attempted;
    ForkMode mode = static_cast<ForkMode>(rng_.NextBelow(3));
    Process* child = kernel_.TryFork(*root_, mode);
    if (child == nullptr) {
      ++tally->forks_failed;
      // The acceptance gate: parent memory byte-identical after every failed fork.
      VerifyRootPattern();
      return;
    }
    if (children_.size() >= kMaxLiveChildren) {
      // Over the live cap: the child exits immediately (a short-lived fork); the next
      // ReapZombies sweep frees it.
      kernel_.Exit(*child, 0);
      return;
    }
    // Every live child maps its private huge scratch up front (no frames until touched).
    // Besides feeding DoHugeTouch, this keeps each child's mapped footprint strictly above
    // the root's, so the OOM killer's largest-process heuristic can never select the root.
    huge_scratch_[child->pid()] =
        child->Mmap(kHugePageSize, kProtRead | kProtWrite, /*huge=*/true);
    children_.emplace_back(child->pid(), child);
  }

  Process* PickRunningChild() {
    if (children_.empty()) {
      return nullptr;
    }
    size_t index = rng_.NextBelow(children_.size());
    Process* child = children_[index].second;
    if (child->state() != ProcessState::kRunning) {
      return nullptr;  // OOM-killed; the next ReapZombies sweep collects it.
    }
    return child;
  }

  // A write inside the mapped region must either succeed or fail with a recoverable,
  // typed verdict — never SEGV, never abort.
  void DoChildWrite(TortureTally* tally) {
    Process* child = PickRunningChild();
    if (child == nullptr) {
      return;
    }
    ++tally->child_writes;
    uint64_t pages = rng_.NextInRange(1, 8);
    uint64_t page = rng_.NextBelow(kRootRegionBytes / kPageSize - pages);
    std::vector<std::byte> junk(pages * kPageSize,
                                static_cast<std::byte>(rng_.NextBelow(256)));
    if (!child->WriteMemory(region_ + page * kPageSize, junk)) {
      ++tally->child_write_failures;
      ASSERT_TRUE(IsRecoverableFault(child->last_fault_result()))
          << "in-range write failed with verdict "
          << static_cast<int>(child->last_fault_result());
    }
  }

  // Children map a private 2 MiB huge scratch region and poke it: exercises compound
  // allocation, its 4 KiB degrade paths, and huge-page teardown under pressure.
  void DoHugeTouch(TortureTally* tally) {
    Process* child = PickRunningChild();
    if (child == nullptr) {
      return;
    }
    ++tally->huge_touches;
    Vaddr scratch = huge_scratch_.at(child->pid());
    Vaddr va = scratch + rng_.NextBelow(kHugePageSize / kPageSize) * kPageSize;
    std::byte value{0x5a};
    if (!child->WriteMemory(va, std::span(&value, 1))) {
      ASSERT_TRUE(IsRecoverableFault(child->last_fault_result()));
    }
  }

  // Root reads re-fault swapped-out pattern pages; injected swap-in/alloc failures are
  // recoverable, so a bounded retry must converge once the schedule moves on. An injected
  // memory error (kHwPoison) is sticky for the VA, not transient: retrying would spin, so
  // the driver heals — discard the dead page, rewrite its pattern slice — the way a real
  // SIGBUS handler restores state from a checkpoint, then lets the read converge.
  void DoRootRead(TortureTally* tally) {
    ++tally->root_reads;
    uint64_t page = rng_.NextBelow(kRootRegionBytes / kPageSize);
    Vaddr va = region_ + page * kPageSize;
    std::byte expected =
        static_cast<std::byte>((kPatternSeed * 1099511628211ULL + va) >> 5);
    std::byte got{0};
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (root_->ReadMemory(va, std::span(&got, 1))) {
        ASSERT_EQ(got, expected) << "root pattern corrupted at page " << page;
        return;
      }
      ASSERT_TRUE(IsRecoverableFault(root_->last_fault_result()));
      if (root_->last_fault_result() == FaultResult::kHwPoison) {
        ASSERT_NO_FATAL_FAILURE(HealRootPage(va));
        ++tally->poison_heals;
        continue;
      }
      ++tally->root_read_retries;
    }
    FAIL() << "root read did not converge in 64 attempts (p=0.02 schedule)";
  }

  // Drops the poison marker at `va` and rewrites that page's slice of the pattern. Runs in
  // a disarmed window (FillPattern's write must not itself be failed — or poisoned again).
  void HealRootPage(Vaddr va) {
    AccumulateSiteStats();
    FaultInjector& fi = FaultInjector::Global();
    for (size_t i = 0; i < kFiSiteCount; ++i) {
      fi.Disarm(static_cast<FiSite>(i));
    }
    root_->MadviseDontNeed(va, kPageSize);
    FillPattern(*root_, va, kPageSize, kPatternSeed);
    ArmAll();
  }

  void DoExitChild() {
    if (children_.empty()) {
      return;
    }
    size_t index = rng_.NextBelow(children_.size());
    auto [pid, child] = children_[index];
    if (child->state() == ProcessState::kRunning) {
      kernel_.Exit(*child, 0);
    }
    children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
    huge_scratch_.erase(pid);
  }

  // Collects children the OOM killer terminated behind our back.
  void ReapZombies() {
    for (size_t i = 0; i < children_.size();) {
      if (children_[i].second->state() == ProcessState::kZombie) {
        huge_scratch_.erase(children_[i].first);
        children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    while (kernel_.Wait(*root_) != -1) {
    }
  }

  Rng rng_;
  bool arm_mf_ = false;
  Kernel kernel_;
  Process* root_ = nullptr;
  Vaddr region_ = 0;
  std::vector<std::pair<Pid, Process*>> children_;
  std::map<Pid, Vaddr> huge_scratch_;
  std::vector<std::pair<uint64_t, uint64_t>> site_totals_;
};

uint64_t TortureSeed() {
  if (const char* env = std::getenv("ODF_TORTURE_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0x70a7012eULL;
}

TEST(TortureTest, RandomizedForkFaultReclaimUnderInjection) {
#if !ODF_FAULT_INJECT_COMPILED
  GTEST_SKIP() << "fault-injection hooks compiled out (ODF_FAULT_INJECT=OFF)";
#endif
  uint64_t seed = TortureSeed();
  SCOPED_TRACE(::testing::Message() << "ODF_TORTURE_SEED=" << seed);

  TortureTally first;
  {
    TortureDriver driver(seed);
    ASSERT_NO_FATAL_FAILURE(driver.Run(&first));
  }
  EXPECT_GT(first.forks_attempted, 1000u) << "op mix drifted; forks barely exercised";
  EXPECT_GT(first.forks_failed, 0u) << "injection never failed a fork; schedule too weak";
  uint64_t injected_total = 0;
  for (const auto& [calls, injected] : first.site_stats) {
    injected_total += injected;
  }
  EXPECT_GT(injected_total, 100u) << "torture run barely exercised the injector";

  // Replay: the identical seed must reproduce the identical run — same op outcomes, same
  // per-site call/injection counts, same OOM kills. (Kernel state, the xoshiro op stream,
  // and the SplitMix64 injection schedule are all pure functions of the seed.)
  FaultInjector::Global().Reset();
  TortureTally replay;
  {
    TortureDriver driver(seed);
    ASSERT_NO_FATAL_FAILURE(driver.Run(&replay));
  }
  EXPECT_EQ(first, replay) << "same-seed torture runs diverged; determinism broken";
  FaultInjector::Global().Reset();
}

// The memory-pressure variant (docs/reclaim.md): the pool shrinks to half the default —
// tight enough that the root's pattern region alone overcommits it — and kswapd runs
// concurrently with the op mix, so LRU aging, rmap-walk eviction, direct reclaim, and the
// background daemon all fight over the same frames while faults are being injected. The
// daemon makes the schedule nondeterministic, so there is no replay gate here; the
// invariants are survival ones: the root is never OOM-picked, its pattern stays
// byte-identical, reclaim demonstrably ran, and nothing leaks.
TEST(TortureTest, MemoryPressureWithKswapdUnderInjection) {
#if !ODF_FAULT_INJECT_COMPILED
  GTEST_SKIP() << "fault-injection hooks compiled out (ODF_FAULT_INJECT=OFF)";
#endif
  uint64_t seed = TortureSeed() ^ 0x9e3779b97f4a7c15ULL;
  SCOPED_TRACE(::testing::Message() << "ODF_TORTURE_SEED=" << seed);

  uint64_t pgsteal_before = ReadVm(VmCounter::k_pgsteal);
  TortureTally tally;
  {
    TortureDriver driver(seed, kFrameLimit / 2, /*start_kswapd=*/true);
    ASSERT_NO_FATAL_FAILURE(driver.Run(&tally));
  }
  EXPECT_GT(tally.forks_attempted, 1000u);
  EXPECT_GT(ReadVm(VmCounter::k_pgsteal) - pgsteal_before, 0u)
      << "a half-sized pool must force actual evictions";
  FaultInjector::Global().Reset();
}

// The memory-failure variant (docs/memory-failure.md): the full op mix with the mf_ecc
// site armed, so random accesses consume injected uncorrectable memory errors — each one
// hard-offlines the touched frame mid-access (splitting huge mappings, quarantining the
// frame forever) while forks, COW, reclaim, and the other seven sites keep firing. The
// invariants are the robustness gates: zero aborts (every poison surfaces as a typed
// kHwPoison the driver heals), the root's pattern is byte-identical after healing, the
// quarantine never leaks back, AllFree() still holds at the end (quarantined frames leave
// the allocated ledger), and the same seed reproduces the identical run.
TEST(TortureTest, MemoryFailureInjectionUnderTorture) {
#if !ODF_FAULT_INJECT_COMPILED || !ODF_MEMORY_FAILURE_COMPILED
  GTEST_SKIP() << "fault-injection or memory-failure hooks compiled out";
#endif
  uint64_t seed = TortureSeed() ^ 0xc0ffeec0ffeeULL;
  SCOPED_TRACE(::testing::Message() << "ODF_TORTURE_SEED=" << seed);

  uint64_t offlines_before = ReadVm(VmCounter::k_mf_hard_offline);
  TortureTally first;
  {
    TortureDriver driver(seed, kFrameLimit, /*start_kswapd=*/false, /*arm_mf=*/true);
    ASSERT_NO_FATAL_FAILURE(driver.Run(&first));
  }
  EXPECT_GT(ReadVm(VmCounter::k_mf_hard_offline) - offlines_before, 0u)
      << "the mf_ecc schedule never fired; the variant exercised nothing";
  EXPECT_GT(first.forks_attempted, 1000u);

  // Same-seed determinism must survive mid-access offline: the poison schedule, the heal
  // writes, and the quarantine diversions are all pure functions of the seed.
  FaultInjector::Global().Reset();
  TortureTally replay;
  {
    TortureDriver driver(seed, kFrameLimit, /*start_kswapd=*/false, /*arm_mf=*/true);
    ASSERT_NO_FATAL_FAILURE(driver.Run(&replay));
  }
  EXPECT_EQ(first, replay) << "same-seed mf torture runs diverged; determinism broken";
  FaultInjector::Global().Reset();
}

}  // namespace
}  // namespace odf
