// Tests for PTE encoding, address geometry, the software walker, and the TLB.
#include <gtest/gtest.h>

#include "src/phys/frame_allocator.h"
#include "src/pt/geometry.h"
#include "src/pt/pte.h"
#include "src/pt/tlb.h"
#include "src/pt/walker.h"

namespace odf {
namespace {

TEST(PteTest, EncodingRoundTrips) {
  Pte entry = Pte::Make(0x12345, kPtePresent | kPteWritable | kPteUser);
  EXPECT_TRUE(entry.IsPresent());
  EXPECT_TRUE(entry.IsWritable());
  EXPECT_TRUE(entry.IsUser());
  EXPECT_FALSE(entry.IsAccessed());
  EXPECT_FALSE(entry.IsDirty());
  EXPECT_FALSE(entry.IsHuge());
  EXPECT_EQ(entry.frame(), 0x12345u);
}

TEST(PteTest, FlagManipulation) {
  Pte entry = Pte::Make(7, kPtePresent);
  entry = entry.WithFlag(kPteAccessed).WithFlag(kPteDirty);
  EXPECT_TRUE(entry.IsAccessed());
  EXPECT_TRUE(entry.IsDirty());
  entry = entry.WithoutFlag(kPteDirty);
  EXPECT_FALSE(entry.IsDirty());
  EXPECT_EQ(entry.frame(), 7u);
  entry = entry.WithFrame(42);
  EXPECT_EQ(entry.frame(), 42u);
  EXPECT_TRUE(entry.IsAccessed()) << "changing the frame must preserve flags";
}

TEST(GeometryTest, LevelShifts) {
  EXPECT_EQ(EntryShift(PtLevel::kPte), 12u);
  EXPECT_EQ(EntryShift(PtLevel::kPmd), 21u);
  EXPECT_EQ(EntryShift(PtLevel::kPud), 30u);
  EXPECT_EQ(EntryShift(PtLevel::kPgd), 39u);
  EXPECT_EQ(EntrySpan(PtLevel::kPmd), 2ULL << 20);
  EXPECT_EQ(kPteTableSpan, 2ULL << 20);
}

TEST(GeometryTest, TableIndexDecomposition) {
  // va = PGD:1, PUD:2, PMD:3, PTE:4, offset 5.
  Vaddr va = (1ULL << 39) | (2ULL << 30) | (3ULL << 21) | (4ULL << 12) | 5;
  EXPECT_EQ(TableIndex(va, PtLevel::kPgd), 1u);
  EXPECT_EQ(TableIndex(va, PtLevel::kPud), 2u);
  EXPECT_EQ(TableIndex(va, PtLevel::kPmd), 3u);
  EXPECT_EQ(TableIndex(va, PtLevel::kPte), 4u);
  EXPECT_EQ(EntryBase(va, PtLevel::kPmd), va & ~((2ULL << 20) - 1));
}

class WalkerTest : public ::testing::Test {
 protected:
  WalkerTest() : walker_(&allocator_), pgd_(AllocPageTable(allocator_)) {}

  FrameAllocator allocator_;
  Walker walker_;
  FrameId pgd_;
};

TEST_F(WalkerTest, TranslateFailsOnEmptyTables) {
  Translation t = walker_.Translate(pgd_, 0x400000, AccessType::kRead);
  EXPECT_EQ(t.status, TranslateStatus::kNotPresent);
  EXPECT_EQ(t.fault_level, PtLevel::kPgd);
}

TEST_F(WalkerTest, EnsureEntryBuildsIntermediateTables) {
  Vaddr va = 0x12345000;
  uint64_t* slot = walker_.EnsureEntry(pgd_, va, PtLevel::kPte);
  ASSERT_NE(slot, nullptr);
  EXPECT_FALSE(LoadEntry(slot).IsPresent());
  // 3 intermediate tables (PUD, PMD, PTE) plus the PGD.
  EXPECT_EQ(allocator_.Stats().page_table_frames, 4u);
  // Second call must not allocate more.
  uint64_t* again = walker_.EnsureEntry(pgd_, va, PtLevel::kPte);
  EXPECT_EQ(slot, again);
  EXPECT_EQ(allocator_.Stats().page_table_frames, 4u);
}

TEST_F(WalkerTest, TranslateReadAndWriteSucceedOnMappedPage) {
  Vaddr va = 0x200000;
  uint64_t* slot = walker_.EnsureEntry(pgd_, va, PtLevel::kPte);
  FrameId frame = allocator_.Allocate(kPageFlagAnon);
  StoreEntry(slot, Pte::Make(frame, kPtePresent | kPteWritable | kPteUser));

  Translation read = walker_.Translate(pgd_, va + 123, AccessType::kRead);
  EXPECT_EQ(read.status, TranslateStatus::kOk);
  EXPECT_EQ(read.frame, frame);
  EXPECT_FALSE(read.huge);

  Translation write = walker_.Translate(pgd_, va, AccessType::kWrite);
  EXPECT_EQ(write.status, TranslateStatus::kOk);
  EXPECT_TRUE(LoadEntry(slot).IsDirty()) << "write translation must set the dirty bit";
}

TEST_F(WalkerTest, TranslateSetsAccessedBitsAtEveryLevel) {
  Vaddr va = 0x200000;
  uint64_t* pte_slot = walker_.EnsureEntry(pgd_, va, PtLevel::kPte);
  FrameId frame = allocator_.Allocate(kPageFlagAnon);
  StoreEntry(pte_slot, Pte::Make(frame, kPtePresent | kPteUser));

  ASSERT_EQ(walker_.Translate(pgd_, va, AccessType::kRead).status, TranslateStatus::kOk);
  for (PtLevel level : {PtLevel::kPgd, PtLevel::kPud, PtLevel::kPmd, PtLevel::kPte}) {
    uint64_t* slot = walker_.FindEntry(pgd_, va, level);
    ASSERT_NE(slot, nullptr);
    EXPECT_TRUE(LoadEntry(slot).IsAccessed()) << "level " << static_cast<int>(level);
  }
}

TEST_F(WalkerTest, HierarchicalWriteProtectionAtPmdBlocksWrites) {
  Vaddr va = 0x200000;
  uint64_t* pte_slot = walker_.EnsureEntry(pgd_, va, PtLevel::kPte);
  FrameId frame = allocator_.Allocate(kPageFlagAnon);
  StoreEntry(pte_slot, Pte::Make(frame, kPtePresent | kPteWritable | kPteUser));

  // Clear the writable bit at the PMD level only — the ODF write-protection mechanism.
  uint64_t* pmd_slot = walker_.FindEntry(pgd_, va, PtLevel::kPmd);
  ASSERT_NE(pmd_slot, nullptr);
  StoreEntry(pmd_slot, LoadEntry(pmd_slot).WithoutFlag(kPteWritable));

  EXPECT_EQ(walker_.Translate(pgd_, va, AccessType::kRead).status, TranslateStatus::kOk)
      << "reads must pass through a write-protected PMD";
  Translation write = walker_.Translate(pgd_, va, AccessType::kWrite);
  EXPECT_EQ(write.status, TranslateStatus::kNotWritable);
  EXPECT_EQ(write.fault_level, PtLevel::kPmd)
      << "the fault must be reported at the PMD, where ODF detects sharing";
  EXPECT_FALSE(LoadEntry(pte_slot).IsDirty())
      << "dirty must never be set while the table is write-protected (§3.2)";
}

TEST_F(WalkerTest, HugeEntryTranslatesInteriorPages) {
  Vaddr va = 0x40000000;  // 1 GiB, 2 MiB-aligned.
  uint64_t* pmd_slot = walker_.EnsureEntry(pgd_, va, PtLevel::kPmd);
  FrameId head = allocator_.AllocateCompound(kPageFlagAnon);
  StoreEntry(pmd_slot, Pte::Make(head, kPtePresent | kPteWritable | kPteUser | kPteHuge));

  Translation t = walker_.Translate(pgd_, va + 5 * kPageSize + 7, AccessType::kRead);
  EXPECT_EQ(t.status, TranslateStatus::kOk);
  EXPECT_TRUE(t.huge);
  EXPECT_EQ(t.frame, head + 5);
}

TEST(TlbTest, HitAfterInsert) {
  Tlb tlb;
  FrameId frame = kInvalidFrame;
  EXPECT_FALSE(tlb.Lookup(0x1000, false, &frame));
  tlb.Insert(0x1000, 42, /*writable=*/false);
  EXPECT_TRUE(tlb.Lookup(0x1000, false, &frame));
  EXPECT_EQ(frame, 42u);
}

TEST(TlbTest, WriteLookupRequiresWritableEntry) {
  Tlb tlb;
  tlb.Insert(0x1000, 42, /*writable=*/false);
  FrameId frame = kInvalidFrame;
  EXPECT_FALSE(tlb.Lookup(0x1000, true, &frame));
  tlb.Insert(0x1000, 42, /*writable=*/true);
  EXPECT_TRUE(tlb.Lookup(0x1000, true, &frame));
}

TEST(TlbTest, InvalidatePageDropsOnlyThatPage) {
  Tlb tlb;
  tlb.Insert(0x1000, 1, false);
  tlb.Insert(0x2000, 2, false);
  tlb.InvalidatePage(0x1000);
  FrameId frame = kInvalidFrame;
  EXPECT_FALSE(tlb.Lookup(0x1000, false, &frame));
  EXPECT_TRUE(tlb.Lookup(0x2000, false, &frame));
}

TEST(TlbTest, FlushAllDropsEverything) {
  Tlb tlb;
  for (Vaddr va = 0; va < 64 * kPageSize; va += kPageSize) {
    tlb.Insert(va, static_cast<FrameId>(va >> kPageShift), true);
  }
  tlb.FlushAll();
  FrameId frame = kInvalidFrame;
  for (Vaddr va = 0; va < 64 * kPageSize; va += kPageSize) {
    EXPECT_FALSE(tlb.Lookup(va, false, &frame));
  }
}

TEST(TlbTest, DirectMapConflictEvicts) {
  Tlb tlb;
  Vaddr a = 0x1000;
  Vaddr b = a + Tlb::kEntries * kPageSize;  // Same slot.
  tlb.Insert(a, 1, false);
  tlb.Insert(b, 2, false);
  FrameId frame = kInvalidFrame;
  EXPECT_FALSE(tlb.Lookup(a, false, &frame));
  EXPECT_TRUE(tlb.Lookup(b, false, &frame));
}

}  // namespace
}  // namespace odf
