// AddressSpace: mmap/munmap/mremap/mprotect, VMA splitting, demand paging, SEGV detection.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace odf {
namespace {

class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpaceTest() : p_(kernel_.CreateProcess()) {}

  Kernel kernel_;
  Process& p_;
};

TEST_F(AddressSpaceTest, MmapReturnsPageAlignedDisjointRanges) {
  Vaddr a = p_.Mmap(10000, kProtRead | kProtWrite);
  Vaddr b = p_.Mmap(4096, kProtRead | kProtWrite);
  EXPECT_TRUE(IsPageAligned(a));
  EXPECT_TRUE(IsPageAligned(b));
  EXPECT_TRUE(b >= a + PageAlignUp(10000) || a >= b + kPageSize);
}

TEST_F(AddressSpaceTest, HintIsHonoredWhenFree) {
  Vaddr hint = 0x7000000000;
  Vaddr got = p_.address_space().MapAnonymous(kPageSize, kProtRead | kProtWrite, false, hint);
  EXPECT_EQ(got, hint);
}

TEST_F(AddressSpaceTest, DemandZeroReadsReturnZero) {
  Vaddr va = p_.Mmap(64 * kPageSize, kProtRead | kProtWrite);
  std::vector<std::byte> buffer(64 * kPageSize, std::byte{0xff});
  ASSERT_TRUE(p_.ReadMemory(va, buffer));
  for (std::byte b : buffer) {
    ASSERT_EQ(b, std::byte{0});
  }
}

TEST_F(AddressSpaceTest, WriteReadRoundTrip) {
  Vaddr va = p_.Mmap(1 << 20, kProtRead | kProtWrite);
  FillPattern(p_, va, 1 << 20, 42);
  ExpectPattern(p_, va, 1 << 20, 42);
}

TEST_F(AddressSpaceTest, UnalignedCrossPageAccess) {
  Vaddr va = p_.Mmap(4 * kPageSize, kProtRead | kProtWrite);
  // Write a value straddling a page boundary.
  uint64_t value = 0x1122334455667788ULL;
  p_.StoreU64(va + kPageSize - 3, value);
  EXPECT_EQ(p_.LoadU64(va + kPageSize - 3), value);
}

TEST_F(AddressSpaceTest, AccessOutsideAnyVmaFails) {
  std::byte b{0};
  EXPECT_FALSE(p_.ReadMemory(0xdead0000, std::span(&b, 1)));
  EXPECT_FALSE(p_.WriteMemory(0xdead0000, std::span(&b, 1)));
  EXPECT_EQ(p_.address_space().stats().segv_faults, 2u);
}

TEST_F(AddressSpaceTest, GuardGapBetweenMappingsFaults) {
  Vaddr a = p_.Mmap(kPageSize, kProtRead | kProtWrite);
  std::byte b{0};
  EXPECT_FALSE(p_.ReadMemory(a + kPageSize, std::span(&b, 1)))
      << "one past the mapping must fault";
}

TEST_F(AddressSpaceTest, WriteToReadOnlyVmaFails) {
  Vaddr va = p_.address_space().MapAnonymous(kPageSize, kProtRead);
  std::byte b{1};
  EXPECT_FALSE(p_.WriteMemory(va, std::span(&b, 1)));
  EXPECT_EQ(ReadByte(p_, va), std::byte{0});
}

TEST_F(AddressSpaceTest, UnmapMakesRangeInaccessible) {
  Vaddr va = p_.Mmap(8 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 8 * kPageSize, 1);
  p_.Munmap(va, 8 * kPageSize);
  std::byte b{0};
  EXPECT_FALSE(p_.ReadMemory(va, std::span(&b, 1)));
}

TEST_F(AddressSpaceTest, UnmapMiddleSplitsVma) {
  Vaddr va = p_.Mmap(10 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 10 * kPageSize, 2);
  p_.Munmap(va + 4 * kPageSize, 2 * kPageSize);
  ExpectPattern(p_, va, 4 * kPageSize, 2);
  ExpectPattern(p_, va + 6 * kPageSize, 4 * kPageSize, 2);
  std::byte b{0};
  EXPECT_FALSE(p_.ReadMemory(va + 4 * kPageSize, std::span(&b, 1)));
  EXPECT_FALSE(p_.ReadMemory(va + 5 * kPageSize, std::span(&b, 1)));
  EXPECT_EQ(p_.address_space().vmas().size(), 2u);
}

TEST_F(AddressSpaceTest, UnmapReleasesFrames) {
  Vaddr va = p_.Mmap(1 << 20, kProtRead | kProtWrite);
  FillPattern(p_, va, 1 << 20, 3);
  uint64_t allocated = kernel_.allocator().Stats().allocated_frames;
  p_.Munmap(va, 1 << 20);
  EXPECT_LT(kernel_.allocator().Stats().allocated_frames, allocated);
  kernel_.Exit(p_, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

TEST_F(AddressSpaceTest, RemapShrinkKeepsPrefix) {
  Vaddr va = p_.Mmap(8 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 8 * kPageSize, 4);
  Vaddr moved = p_.Mremap(va, 8 * kPageSize, 3 * kPageSize);
  EXPECT_EQ(moved, va);
  ExpectPattern(p_, va, 3 * kPageSize, 4);
  std::byte b{0};
  EXPECT_FALSE(p_.ReadMemory(va + 3 * kPageSize, std::span(&b, 1)));
}

TEST_F(AddressSpaceTest, RemapGrowPreservesContent) {
  Vaddr va = p_.Mmap(4 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 4 * kPageSize, 5);
  Vaddr moved = p_.Mremap(va, 4 * kPageSize, 64 * kPageSize);
  // Whether grown in place or moved, the old content must be visible at the new location.
  std::vector<std::byte> buffer(4 * kPageSize);
  ASSERT_TRUE(p_.ReadMemory(moved, buffer));
  for (uint64_t i = 0; i < buffer.size(); ++i) {
    ASSERT_EQ(buffer[i], static_cast<std::byte>((5 * 1099511628211ULL + va + i) >> 5));
  }
  // The growth region is demand-zero.
  EXPECT_EQ(ReadByte(p_, moved + 10 * kPageSize), std::byte{0});
}

TEST_F(AddressSpaceTest, RemapForcedMoveRelocatesEntriesWithoutCopyingData) {
  Vaddr va = p_.Mmap(4 * kPageSize, kProtRead | kProtWrite);
  // Block in-place growth by mapping immediately after.
  p_.address_space().MapAnonymous(kPageSize, kProtRead | kProtWrite, false,
                                  va + 4 * kPageSize + kPageSize);
  FillPattern(p_, va, 4 * kPageSize, 6);
  AddressSpace& as = p_.address_space();
  Translation t = as.walker().Translate(as.pgd(), va, AccessType::kRead);
  ASSERT_EQ(t.status, TranslateStatus::kOk);
  uint64_t materialized = kernel_.allocator().Stats().materialized_bytes;

  Vaddr moved = p_.Mremap(va, 4 * kPageSize, 1 << 20);
  Translation t2 = as.walker().Translate(as.pgd(), moved, AccessType::kRead);
  ASSERT_EQ(t2.status, TranslateStatus::kOk);
  EXPECT_EQ(t2.frame, t.frame) << "mremap must move page-table entries, not copy pages";
  EXPECT_EQ(kernel_.allocator().Stats().materialized_bytes, materialized);
  std::byte b{0};
  EXPECT_FALSE(p_.ReadMemory(va, std::span(&b, 1))) << "old range must be gone";
}

TEST_F(AddressSpaceTest, ProtectDowngradeThenUpgrade) {
  Vaddr va = p_.Mmap(4 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 4 * kPageSize, 7);
  p_.address_space().Protect(va, 4 * kPageSize, kProtRead);
  std::byte b{1};
  EXPECT_FALSE(p_.WriteMemory(va, std::span(&b, 1)));
  p_.address_space().Protect(va, 4 * kPageSize, kProtRead | kProtWrite);
  EXPECT_TRUE(p_.WriteMemory(va, std::span(&b, 1)));
  EXPECT_EQ(ReadByte(p_, va), std::byte{1});
}

TEST_F(AddressSpaceTest, ProtectPartialRangeSplitsVma) {
  Vaddr va = p_.Mmap(6 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p_, va, 6 * kPageSize, 8);
  p_.address_space().Protect(va + 2 * kPageSize, 2 * kPageSize, kProtRead);
  EXPECT_EQ(p_.address_space().vmas().size(), 3u);
  std::byte b{1};
  EXPECT_TRUE(p_.WriteMemory(va, std::span(&b, 1)));
  EXPECT_FALSE(p_.WriteMemory(va + 2 * kPageSize, std::span(&b, 1)));
  EXPECT_TRUE(p_.WriteMemory(va + 4 * kPageSize, std::span(&b, 1)));
}

TEST_F(AddressSpaceTest, PopulateRangeMapsEveryPageWithoutData) {
  Vaddr va = p_.Mmap(4 * kHugePageSize, kProtRead | kProtWrite);
  p_.address_space().PopulateRange(va, 4 * kHugePageSize);
  EXPECT_EQ(p_.address_space().CountPresentPtes(), 4 * kEntriesPerTable);
  // Only page tables are real memory — populate must not materialise data pages.
  FrameAllocatorStats stats = kernel_.allocator().Stats();
  EXPECT_EQ(stats.materialized_bytes, stats.page_table_frames * kPageSize);
  EXPECT_EQ(ReadByte(p_, va + 12345), std::byte{0});
}

TEST_F(AddressSpaceTest, MemsetMemoryWorksAcrossPages) {
  Vaddr va = p_.Mmap(3 * kPageSize, kProtRead | kProtWrite);
  ASSERT_TRUE(p_.MemsetMemory(va + 100, std::byte{0x5c}, 2 * kPageSize));
  EXPECT_EQ(ReadByte(p_, va + 100), std::byte{0x5c});
  EXPECT_EQ(ReadByte(p_, va + 100 + 2 * kPageSize - 1), std::byte{0x5c});
  EXPECT_EQ(ReadByte(p_, va + 99), std::byte{0});
  EXPECT_EQ(ReadByte(p_, va + 100 + 2 * kPageSize), std::byte{0});
}

TEST_F(AddressSpaceTest, TeardownFreesEverything) {
  for (int i = 0; i < 5; ++i) {
    Vaddr va = p_.Mmap((static_cast<uint64_t>(i) + 1) * 3 * kPageSize, kProtRead | kProtWrite);
    FillPattern(p_, va, 2 * kPageSize, static_cast<uint64_t>(i));
  }
  kernel_.Exit(p_, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

}  // namespace
}  // namespace odf
