// §3.3: unmapping and remapping regions whose PTE tables are shared via on-demand-fork.
#include <gtest/gtest.h>

#include "src/mm/range_ops.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class SharedTableUnmapTest : public ::testing::Test {
 protected:
  SharedTableUnmapTest() : parent_(kernel_.CreateProcess()) {}

  FrameId PteTableOf(Process& p, Vaddr va) {
    AddressSpace& as = p.address_space();
    uint64_t* pmd = as.walker().FindEntry(as.pgd(), va, PtLevel::kPmd);
    if (pmd == nullptr) {
      return kInvalidFrame;
    }
    Pte entry = LoadEntry(pmd);
    return entry.IsPresent() && !entry.IsHuge() ? entry.frame() : kInvalidFrame;
  }

  uint32_t ShareCount(FrameId table) {
    return kernel_.allocator().GetMeta(table).pt_share_count.load();
  }

  Kernel kernel_;
  Process& parent_;
};

TEST_F(SharedTableUnmapTest, UnmapWholeRegionDropsShareWithoutCopy) {
  Vaddr va = parent_.Mmap(2 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, 2 * kHugePageSize, 1);
  FrameId table = PteTableOf(parent_, va);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  ASSERT_EQ(ShareCount(table), 2u);

  child.Munmap(va, 2 * kHugePageSize);
  EXPECT_EQ(ShareCount(table), 1u) << "full unmap only clears the PMD reference (§3.3)";
  EXPECT_EQ(child.address_space().stats().pte_table_cow_faults, 0u);
  ExpectPattern(parent_, va, 2 * kHugePageSize, 1);  // Parent view must be intact.
}

TEST_F(SharedTableUnmapTest, PartialUnmapWithLiveNeighborCopiesTableFirst) {
  // Two VMAs inside one 2 MiB chunk: [0, 1MiB) and [1MiB+gap...]. Build them with hints so
  // they land in the same PTE-table span.
  AddressSpace& as = parent_.address_space();
  Vaddr base = 0x40000000;  // 2 MiB-aligned.
  Vaddr a = as.MapAnonymous(256 * kPageSize, kProtRead | kProtWrite, false, base);
  Vaddr b = as.MapAnonymous(4 * kPageSize, kProtRead | kProtWrite, false,
                            base + 300 * kPageSize);
  ASSERT_EQ(a, base);
  ASSERT_EQ(b, base + 300 * kPageSize);
  FillPattern(parent_, a, 256 * kPageSize, 2);
  FillPattern(parent_, b, 4 * kPageSize, 3);
  FrameId table = PteTableOf(parent_, a);
  ASSERT_EQ(table, PteTableOf(parent_, b)) << "both VMAs must share one PTE table";

  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  ASSERT_EQ(ShareCount(table), 2u);

  // Child unmaps VMA `a` only; VMA `b` still needs its entries -> the table must be COWed
  // for the child before zapping (§3.3).
  child.Munmap(a, 256 * kPageSize);
  EXPECT_EQ(child.address_space().stats().pte_table_cow_faults, 1u);
  EXPECT_EQ(ShareCount(table), 1u);
  ExpectPattern(child, b, 4 * kPageSize, 3);
  ExpectPattern(parent_, a, 256 * kPageSize, 2);
  std::byte byte_buf{0};
  EXPECT_FALSE(child.ReadMemory(a, std::span(&byte_buf, 1)));
}

TEST_F(SharedTableUnmapTest, PartialUnmapWithoutLiveNeighborJustDropsReference) {
  AddressSpace& as = parent_.address_space();
  Vaddr base = 0x40000000;
  Vaddr a = as.MapAnonymous(512 * kPageSize, kProtRead | kProtWrite, false, base);
  ASSERT_EQ(a, base);
  FillPattern(parent_, a, 512 * kPageSize, 4);
  FrameId table = PteTableOf(parent_, a);

  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  // Unmap only half the VMA — but the rest of the chunk has no other VMA in the child after
  // this unmap... it does: the un-unmapped half of `a` remains. So a copy is required.
  child.Munmap(a, 256 * kPageSize);
  EXPECT_EQ(child.address_space().stats().pte_table_cow_faults, 1u);
  ExpectPattern(child, a + 256 * kPageSize, 256 * kPageSize, 4);
  ExpectPattern(parent_, a, 512 * kPageSize, 4);

  // Now unmap the remaining half: nothing else lives in the chunk; the dedicated table is
  // simply released.
  child.Munmap(a + 256 * kPageSize, 256 * kPageSize);
  EXPECT_EQ(ShareCount(table), 1u);
  ExpectPattern(parent_, a, 512 * kPageSize, 4);
}

TEST_F(SharedTableUnmapTest, MremapMoveDedicatesSharedTables) {
  Vaddr va = parent_.Mmap(kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, kHugePageSize, 5);
  FrameId table = PteTableOf(parent_, va);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  ASSERT_EQ(ShareCount(table), 2u);

  // Force a move by growing beyond what fits in place (another mapping blocks growth).
  child.address_space().MapAnonymous(kPageSize, kProtRead | kProtWrite, false,
                                     va + kHugePageSize + kPageSize);
  Vaddr moved = child.Mremap(va, kHugePageSize, 2 * kHugePageSize);
  EXPECT_NE(moved, va);
  EXPECT_EQ(ShareCount(table), 1u) << "remap must COW the shared table first (§3.3)";
  // The moved range carries the content written at the OLD addresses.
  std::vector<std::byte> buffer(kHugePageSize);
  ASSERT_TRUE(child.ReadMemory(moved, buffer));
  for (uint64_t i = 0; i < buffer.size(); ++i) {
    ASSERT_EQ(buffer[i], static_cast<std::byte>((5 * 1099511628211ULL + va + i) >> 5));
  }
  ExpectPattern(parent_, va, kHugePageSize, 5);  // Parent unaffected by child mremap.

  // Writes through the moved mapping stay private.
  WriteByte(child, moved, std::byte{0xee});
  ExpectPattern(parent_, va, kHugePageSize, 5);
}

TEST_F(SharedTableUnmapTest, UnmapInParentLeavesChildIntact) {
  Vaddr va = parent_.Mmap(2 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, 2 * kHugePageSize, 6);
  Process& child = kernel_.Fork(parent_, ForkMode::kOnDemand);
  parent_.Munmap(va, 2 * kHugePageSize);
  ExpectPattern(child, va, 2 * kHugePageSize, 6);
  WriteByte(child, va, std::byte{1});
  EXPECT_EQ(ReadByte(child, va), std::byte{1});
}

TEST_F(SharedTableUnmapTest, ExitWithSharedTablesLeaksNothing) {
  Vaddr va = parent_.Mmap(3 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(parent_, va, 3 * kHugePageSize, 7);
  Process& c1 = kernel_.Fork(parent_, ForkMode::kOnDemand);
  Process& c2 = kernel_.Fork(c1, ForkMode::kOnDemand);
  WriteByte(c2, va, std::byte{1});
  c1.Munmap(va, kHugePageSize);
  kernel_.Exit(c2, 0);
  kernel_.Exit(c1, 0);
  kernel_.Exit(parent_, 0);
  EXPECT_TRUE(kernel_.allocator().AllFree());
}

}  // namespace
}  // namespace odf
