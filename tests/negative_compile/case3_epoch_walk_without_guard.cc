// Negative-compile case: the lock-free page-table walk outside a PtEpoch read
// guard. Expected Clang diagnostic: calling function 'TranslateLockFree' requires
// holding mutex 'odf::PtEpoch::Global()'.
#include "src/pt/walker.h"

odf::Translation WalkWithoutEpochGuard(odf::Walker& walker, odf::FrameId pgd,
                                       odf::Vaddr va) {
  // VIOLATION: no PtEpoch::ReadGuard — retired tables on the path may be freed
  // mid-walk.
  return walker.TranslateLockFree(pgd, va);
}
