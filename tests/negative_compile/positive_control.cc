// Positive control for the negative-compile harness: the same APIs as the case*.cc
// violations, used CORRECTLY. This file must compile clean under
// -Werror=thread-safety — if it does not, the harness is rejecting good code and
// every "expected failure" result is meaningless. It doubles as the vacuous-macro
// guard: src/util/thread_annotations.h #errors if a Clang without capability
// attributes would silently compile the annotations to nothing.
#include "src/mm/fault.h"
#include "src/pt/mm_locks.h"
#include "src/pt/walker.h"
#include "src/reclaim/mm_gate.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    odf::util::MutexLock guard(mu_);
    ++value_;
  }

 private:
  odf::util::Mutex mu_;
  int value_ ODF_GUARDED_BY(mu_) = 0;
};

}  // namespace

// Case 2 done right: the full fault-path stack — gate shared, covering shard,
// MmGate shared — then the handler call.
odf::FaultResult DriveFault(odf::AddressSpace& as, odf::Vaddr va) {
  odf::MmLockTable::ReadScope rs(as.locks());
  odf::MmLockTable::ShardScope shard(as.locks(), va);
  odf::reclaim::MmGate::SharedScope gate;
  return odf::HandleFault(as, va, odf::AccessType::kRead);
}

// Case 3 done right: the lock-free walk under an epoch read guard.
odf::Translation Walk(odf::Walker& walker, odf::FrameId pgd, odf::Vaddr va) {
  odf::PtEpoch::ReadGuard guard;
  return walker.TranslateLockFree(pgd, va);
}

// Cases 4/5 done right: one shard at a time; scoped acquisition pairs the release.
void OneShard(odf::MmLockTable& t, odf::Vaddr a) {
  odf::MmLockTable::ShardScope shard(t, a);
}

// Case 6 done right: exclusive hold for the exclusive-required callee.
void MutateLayout(odf::MmLockTable& t) ODF_REQUIRES(t);
void MutateUnderExclusiveHold(odf::MmLockTable& t) {
  odf::MmLockTable::WriteScope ws(t);
  MutateLayout(t);
}

void UseAll() { Counter().Bump(); }
