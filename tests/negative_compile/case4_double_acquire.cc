// Negative-compile case: two shard scopes on one table. All 64 range shards are
// modeled as ONE capability (MmLockTable::shard_cap) precisely so that nesting two —
// lockdep's same-class-nesting abort, a deadlock when the dynamic indices collide —
// is a compile error. Expected Clang diagnostic: acquiring mutex 't.shard_cap' that
// is already held.
#include "src/pt/mm_locks.h"

void TwoShardsAtOnce(odf::MmLockTable& t, odf::Vaddr a, odf::Vaddr b) {
  odf::MmLockTable::ShardScope first(t, a);
  odf::MmLockTable::ShardScope second(t, b);  // VIOLATION: shard_cap already held.
}
