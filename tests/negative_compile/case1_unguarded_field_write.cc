// Negative-compile case: writing a GUARDED_BY field without holding its mutex.
// Expected Clang diagnostic: writing variable 'value_' requires holding mutex 'mu_'
// [-Werror,-Wthread-safety-analysis]. See tests/negative_compile/run.sh.
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void BumpWithoutLock() { ++value_; }  // VIOLATION: mu_ not held.

 private:
  odf::util::Mutex mu_;
  int value_ ODF_GUARDED_BY(mu_) = 0;
};

}  // namespace

void Use() { Counter().BumpWithoutLock(); }
