// Negative-compile case: releasing a mutex this scope never acquired. Expected
// Clang diagnostic: releasing mutex 'mu' that was not held.
#include "src/util/mutex.h"

void ReleaseWithoutAcquire(odf::util::Mutex& mu) {
  mu.unlock();  // VIOLATION: nothing acquired it on this path.
}
