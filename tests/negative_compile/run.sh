#!/usr/bin/env bash
# Negative-compile harness for the Clang thread-safety gate (docs/debugging.md
# "Static lock-discipline analysis").
#
# Each tests/negative_compile/case*.cc commits one lock-discipline violation
# against the REAL repo headers — unguarded field write, fault path without its
# shard, epoch walk without a read guard, double shard acquire, release without
# acquire, shared hold where exclusive is required — and must be REJECTED by
# `clang++ -Werror=thread-safety`, with the rejection attributable to the
# thread-safety analysis (not a stray syntax error). positive_control.cc uses the
# same APIs correctly and must compile CLEAN, proving the annotations are present,
# non-vacuous, and not over-constraining.
#
# Requires clang++ (any version with -Wthread-safety). The container may only ship
# GCC — then this exits 77, which ctest maps to SKIPPED via SKIP_RETURN_CODE; the
# gate runs wherever clang is installed. Override the compiler with ODF_CLANG.
set -u -o pipefail

cd "$(dirname "$0")/../.."

CLANG="${ODF_CLANG:-clang++}"
if ! command -v "$CLANG" >/dev/null 2>&1; then
  echo "negative_compile: $CLANG not found; skipping (install clang to run this gate)"
  exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -I. -Wthread-safety -Werror=thread-safety)
FAIL=0

echo "== positive control (must compile clean) =="
if ! "$CLANG" "${FLAGS[@]}" tests/negative_compile/positive_control.cc; then
  echo "FAIL: positive_control.cc rejected — annotations over-constrain or are broken"
  FAIL=1
else
  echo "ok: positive_control.cc clean"
fi

echo "== violation cases (each must be rejected by the thread-safety analysis) =="
for case_file in tests/negative_compile/case*.cc; do
  if OUTPUT=$("$CLANG" "${FLAGS[@]}" "$case_file" 2>&1); then
    echo "FAIL: $case_file compiled but must be rejected"
    FAIL=1
  elif ! grep -q "thread-safety" <<<"$OUTPUT"; then
    echo "FAIL: $case_file rejected for the wrong reason (not thread-safety):"
    sed 's/^/    /' <<<"$OUTPUT"
    FAIL=1
  else
    echo "ok: $case_file rejected by -Werror=thread-safety"
  fi
done

if ((FAIL)); then
  echo "negative_compile: FAILED"
  exit 1
fi
echo "negative_compile: all $(ls tests/negative_compile/case*.cc | wc -l) violations rejected, control clean"
