// Negative-compile case: holding the AS gate SHARED while calling a function that
// requires it EXCLUSIVE (a range op under a fault-path hold). Expected Clang
// diagnostic: calling function 'MutateLayout' requires holding mutex 't'
// exclusively (it is held shared).
#include "src/pt/mm_locks.h"
#include "src/util/thread_annotations.h"

void MutateLayout(odf::MmLockTable& t) ODF_REQUIRES(t);

void MutateUnderSharedHold(odf::MmLockTable& t) {
  odf::MmLockTable::ReadScope rs(t);  // Shared hold only.
  MutateLayout(t);  // VIOLATION: exclusive required.
}
