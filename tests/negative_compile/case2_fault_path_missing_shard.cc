// Negative-compile case: the fault path without its shard capability. HandleFault
// requires {AS gate shared, covering shard, MmGate shared}; this driver takes the
// gate scopes but skips the ShardScope. Expected Clang diagnostic: calling function
// 'HandleFault' requires holding mutex 'as.locks().shard_cap' exclusively.
#include "src/mm/fault.h"
#include "src/pt/mm_locks.h"
#include "src/reclaim/mm_gate.h"

odf::FaultResult DriveFaultMissingShard(odf::AddressSpace& as, odf::Vaddr va) {
  odf::MmLockTable::ReadScope rs(as.locks());
  odf::reclaim::MmGate::SharedScope gate;
  // VIOLATION: no MmLockTable::ShardScope covering `va`.
  return odf::HandleFault(as, va, odf::AccessType::kRead);
}
