// The global invariant auditor, plus audit sweeps after every category of complex scenario.
#include <gtest/gtest.h>

#include "src/mm/reclaim.h"
#include "src/proc/auditor.h"
#include "tests/test_util.h"

namespace odf {
namespace {

#define EXPECT_AUDIT_OK(kernel)                                 \
  do {                                                          \
    AuditResult audit_result = AuditKernel(kernel);             \
    EXPECT_TRUE(audit_result.ok()) << audit_result.Describe();  \
  } while (0)

TEST(AuditorTest, CleanKernelPasses) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(1 << 20, kProtRead | kProtWrite);
  FillPattern(p, va, 1 << 20, 1);
  EXPECT_AUDIT_OK(kernel);
}

TEST(AuditorTest, DetectsInjectedRefcountDrift) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(64 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, 64 * kPageSize, 2);
  // Sabotage: bump one page's refcount without a referencing entry.
  AddressSpace& as = p.address_space();
  Translation t = as.walker().Translate(as.pgd(), va, AccessType::kRead);
  ASSERT_EQ(t.status, TranslateStatus::kOk);
  // odf-lint: allow(raw-refcount) — deliberate counter sabotage under test.
  kernel.allocator().GetMeta(t.frame).refcount.fetch_add(1);
  AuditResult audit = AuditKernel(kernel);
  EXPECT_FALSE(audit.ok()) << "the auditor must catch a drifted page refcount";
  // odf-lint: allow(raw-refcount) — deliberate counter sabotage under test.
  kernel.allocator().GetMeta(t.frame).refcount.fetch_sub(1);  // Undo for clean teardown.
  EXPECT_AUDIT_OK(kernel);
}

TEST(AuditorTest, DetectsInjectedShareCountDrift) {
  Kernel kernel;
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(kHugePageSize, kProtRead | kProtWrite);
  FillPattern(p, va, kHugePageSize, 3);
  kernel.Fork(p, ForkMode::kOnDemand);
  AddressSpace& as = p.address_space();
  uint64_t* pmd = as.walker().FindEntry(as.pgd(), va, PtLevel::kPmd);
  FrameId table = LoadEntry(pmd).frame();
  // odf-lint: allow(raw-refcount) — deliberate counter sabotage under test.
  kernel.allocator().GetMeta(table).pt_share_count.fetch_add(1);
  EXPECT_FALSE(AuditKernel(kernel).ok()) << "the auditor must catch share-count drift";
  // odf-lint: allow(raw-refcount) — deliberate counter sabotage under test.
  kernel.allocator().GetMeta(table).pt_share_count.fetch_sub(1);
  EXPECT_AUDIT_OK(kernel);
}

class AuditSweepTest : public ::testing::Test {
 protected:
  Kernel kernel_;
};

TEST_F(AuditSweepTest, AfterForkChainsOfAllModes) {
  Process& root = kernel_.CreateProcess();
  Vaddr va = root.Mmap(8 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(root, va, 8 * kHugePageSize, 4);
  Process& a = kernel_.Fork(root, ForkMode::kOnDemand);
  Process& b = kernel_.Fork(a, ForkMode::kOnDemandHuge);
  Process& c = kernel_.Fork(b, ForkMode::kClassic);
  WriteByte(a, va, std::byte{1});
  WriteByte(b, va + kHugePageSize, std::byte{2});
  WriteByte(c, va + 2 * kHugePageSize, std::byte{3});
  EXPECT_AUDIT_OK(kernel_);
  kernel_.Exit(b, 0);
  EXPECT_AUDIT_OK(kernel_);
}

TEST_F(AuditSweepTest, AfterUnmapRemapTraffic) {
  Process& p = kernel_.CreateProcess();
  Vaddr a = p.Mmap(3 * kHugePageSize, kProtRead | kProtWrite);
  FillPattern(p, a, 3 * kHugePageSize, 5);
  Process& child = kernel_.Fork(p, ForkMode::kOnDemand);
  child.Munmap(a + kHugePageSize, kHugePageSize);
  p.Mremap(a, 3 * kHugePageSize, kHugePageSize);
  EXPECT_AUDIT_OK(kernel_);
}

TEST_F(AuditSweepTest, AfterFileMappingsAndForks) {
  Process& p = kernel_.CreateProcess();
  auto file = kernel_.fs().Open("/f");
  std::vector<std::byte> data(16 * kPageSize, std::byte{9});
  file->Write(0, data);
  Vaddr shared = p.address_space().MapFile(file, 0, 8 * kPageSize,
                                           kProtRead | kProtWrite, true);
  Vaddr priv = p.address_space().MapFile(file, 0, 16 * kPageSize,
                                         kProtRead | kProtWrite, false);
  WriteByte(p, shared, std::byte{1});
  WriteByte(p, priv, std::byte{2});
  Process& child = kernel_.Fork(p, ForkMode::kOnDemand);
  WriteByte(child, priv + kPageSize, std::byte{3});
  EXPECT_AUDIT_OK(kernel_);
}

TEST_F(AuditSweepTest, AfterSwapTraffic) {
  Process& p = kernel_.CreateProcess();
  Vaddr va = p.Mmap(64 * kPageSize, kProtRead | kProtWrite);
  FillPattern(p, va, 64 * kPageSize, 6);
  ClockReclaimAddressSpace(p.address_space(), kernel_.swap_space(), 1000);
  ClockReclaimAddressSpace(p.address_space(), kernel_.swap_space(), 1000);
  EXPECT_AUDIT_OK(kernel_);
  Process& child = kernel_.Fork(p, ForkMode::kClassic);  // Copies swap entries.
  EXPECT_AUDIT_OK(kernel_);
  ExpectPattern(child, va, 64 * kPageSize, 6);  // Swap-ins on both sides.
  ExpectPattern(p, va, 64 * kPageSize, 6);
  EXPECT_AUDIT_OK(kernel_);
}

TEST_F(AuditSweepTest, AfterMemoryPressureWorkload) {
  kernel_.SetMemoryLimitFrames(3000);
  Process& p = kernel_.CreateProcess();
  Vaddr va = p.Mmap(16 << 20, kProtRead | kProtWrite);
  FillPattern(p, va, 16 << 20, 7);
  Process& child = kernel_.Fork(p, ForkMode::kOnDemand);
  WriteByte(child, va + 12345, std::byte{1});
  EXPECT_AUDIT_OK(kernel_);
}

TEST_F(AuditSweepTest, RandomizedScenarioAudit) {
  // A compressed version of the property test, with a full audit every 50 ops.
  Rng rng(77);
  Process& root = kernel_.CreateProcess();
  std::vector<Process*> live{&root};
  std::vector<std::pair<Vaddr, uint64_t>> regions;
  for (int r = 0; r < 2; ++r) {
    uint64_t length = rng.NextInRange(1, 3) * kHugePageSize;
    regions.emplace_back(root.Mmap(length, kProtRead | kProtWrite), length);
    FillPattern(root, regions.back().first, regions.back().second, static_cast<uint64_t>(r));
  }
  for (int op = 0; op < 200; ++op) {
    Process& p = *live[rng.NextBelow(live.size())];
    switch (rng.NextBelow(4)) {
      case 0: {
        auto& [base, length] = regions[rng.NextBelow(regions.size())];
        std::byte value{static_cast<uint8_t>(op)};
        p.WriteMemory(base + rng.NextBelow(length), std::span(&value, 1));
        break;
      }
      case 1: {
        auto& [base, length] = regions[rng.NextBelow(regions.size())];
        std::byte out;
        p.ReadMemory(base + rng.NextBelow(length), std::span(&out, 1));
        break;
      }
      case 2: {
        if (live.size() < 6) {
          static constexpr ForkMode kModes[] = {ForkMode::kClassic, ForkMode::kOnDemand,
                                                ForkMode::kOnDemandHuge};
          live.push_back(&kernel_.Fork(p, kModes[rng.NextBelow(3)]));
        }
        break;
      }
      case 3: {
        if (live.size() > 2 && &p != &root) {
          kernel_.Exit(p, 0);
          live.erase(std::find(live.begin(), live.end(), &p));
        }
        break;
      }
    }
    if (op % 50 == 49) {
      AuditResult audit = AuditKernel(kernel_);
      ASSERT_TRUE(audit.ok()) << "op " << op << ": " << audit.Describe();
    }
  }
}

}  // namespace
}  // namespace odf
