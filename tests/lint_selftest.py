#!/usr/bin/env python3
"""Self-test for scripts/odf_lint.py, run as the `lint_selftest` ctest target.

Checks, against the deliberately-dirty fixtures in tests/lint_fixtures/:
  1. every rule fires where dirty.cc / dirty.h violate it (positive coverage,
     exact file:line:rule triples, asserted from --json output);
  2. clean.cc / clean.h — the same violations with `// odf-lint: allow(...)`
     comments — produce ZERO findings (the suppression mechanism works for
     every rule);
  3. the text output format is `file:line:col: rule-id: message` (what
     compilers and editors parse);
  4. the default tree scan is clean and never descends into the fixture dir.

Exit 0 on success, 1 with a diagnostic on the first failed expectation.
"""

import json
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "scripts", "odf_lint.py")
DIRTY = ("tests/lint_fixtures/dirty.cc", "tests/lint_fixtures/dirty.h")
CLEAN = ("tests/lint_fixtures/clean.cc", "tests/lint_fixtures/clean.h")

# (file, line, rule) triples dirty.cc / dirty.h must produce. Keep in sync with
# the fixtures — they say "add new cases at the END" for this reason.
EXPECTED_DIRTY = {
    ("tests/lint_fixtures/dirty.cc", 12, "raw-refcount"),
    ("tests/lint_fixtures/dirty.cc", 15, "raw-std-mutex"),
    ("tests/lint_fixtures/dirty.cc", 16, "naked-lock"),
    ("tests/lint_fixtures/dirty.cc", 20, "naked-lock"),
    ("tests/lint_fixtures/dirty.cc", 20, "raw-std-mutex"),
    ("tests/lint_fixtures/dirty.cc", 24, "lockfree-walk-guard"),
    ("tests/lint_fixtures/dirty.cc", 30, "gen-before-free"),
    ("tests/lint_fixtures/dirty.cc", 34, "trace-outside-guard"),
    ("tests/lint_fixtures/dirty.cc", 38, "direct-writeback"),
    ("tests/lint_fixtures/dirty.cc", 42, "naked-lock"),
    ("tests/lint_fixtures/dirty.cc", 42, "table-mutex"),
    ("tests/lint_fixtures/dirty.cc", 46, "hwpoison-flag"),
    ("tests/lint_fixtures/dirty.h", 9, "missing-nodiscard"),
}

TEXT_LINE_RE = re.compile(r"^[^:]+:\d+:\d+: [a-z-]+: .+$")


def run_lint(args):
    return subprocess.run(
        [sys.executable, LINT, *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def fail(message):
    print(f"lint_selftest: FAIL: {message}", file=sys.stderr)
    return 1


def main():
    # 1. Dirty fixtures: exact positive coverage, via --json.
    proc = run_lint(["--json", *DIRTY])
    if proc.returncode != 1:
        return fail(f"dirty fixtures: want exit 1, got {proc.returncode}\n{proc.stderr}")
    findings = json.loads(proc.stdout)
    got = {(f["file"], f["line"], f["rule"]) for f in findings}
    if got != EXPECTED_DIRTY:
        missing = EXPECTED_DIRTY - got
        extra = got - EXPECTED_DIRTY
        return fail(
            f"dirty fixtures: finding set mismatch\n  missing: {sorted(missing)}\n"
            f"  extra: {sorted(extra)}"
        )
    for f in findings:
        if not (isinstance(f["col"], int) and f["col"] >= 1):
            return fail(f"dirty fixtures: bad col in {f}")
        if not f["message"]:
            return fail(f"dirty fixtures: empty message in {f}")

    # 2. Clean fixtures: every violation suppressed.
    proc = run_lint([*CLEAN])
    if proc.returncode != 0:
        return fail(f"clean fixtures: want exit 0, got {proc.returncode}\n{proc.stdout}")

    # 3. Text output format.
    proc = run_lint([*DIRTY])
    if proc.returncode != 1:
        return fail(f"dirty fixtures (text): want exit 1, got {proc.returncode}")
    lines = proc.stdout.strip().splitlines()
    body, trailer = lines[:-1], lines[-1]
    if len(body) != len(EXPECTED_DIRTY):
        return fail(f"text output: want {len(EXPECTED_DIRTY)} findings, got {len(body)}")
    for line in body:
        if not TEXT_LINE_RE.match(line):
            return fail(f"text output line not file:line:col: rule-id: message — {line!r}")
    if "finding(s)" not in trailer:
        return fail(f"text output missing summary trailer — {trailer!r}")

    # 4. Tree scan: clean, and the fixture dir is excluded from it.
    proc = run_lint(["--json"])
    if proc.returncode != 0:
        return fail(f"tree scan not clean (exit {proc.returncode}):\n{proc.stdout}")
    if "lint_fixtures" in proc.stdout:
        return fail("tree scan descended into tests/lint_fixtures/")

    print("lint_selftest: PASS "
          f"({len(EXPECTED_DIRTY)} positive findings, suppression, format, tree scan)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
