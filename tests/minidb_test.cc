#include "src/apps/minidb.h"

#include <gtest/gtest.h>

#include "src/apps/minidb_shell.h"
#include "tests/test_util.h"

namespace odf {
namespace {

class MiniDbTest : public ::testing::Test {
 protected:
  MiniDbTest()
      : p_(kernel_.CreateProcess()), db_(MiniDb::Create(kernel_, p_, 512 << 20)) {
    db_.CreateTable("t", {ColumnSpec{ColumnType::kInt64, 8},
                          ColumnSpec{ColumnType::kText, 32}});
  }

  RowValue MakeRow(int64_t key, int64_t payload, const std::string& text) {
    RowValue row;
    row.key = key;
    row.ints.push_back(payload);
    row.strings.push_back(text);
    return row;
  }

  Kernel kernel_;
  Process& p_;
  MiniDb db_;
};

TEST_F(MiniDbTest, InsertAndSelect) {
  EXPECT_TRUE(db_.Insert("t", MakeRow(1, 100, "hello")));
  EXPECT_TRUE(db_.Insert("t", MakeRow(2, 200, "world")));
  auto row = db_.SelectByKey("t", 1);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->key, 1);
  EXPECT_EQ(row->ints.at(0), 100);
  EXPECT_EQ(row->strings.at(0), "hello");
  EXPECT_FALSE(db_.SelectByKey("t", 3).has_value());
  EXPECT_EQ(db_.RowCount("t"), 2u);
}

TEST_F(MiniDbTest, DuplicateKeyRejected) {
  EXPECT_TRUE(db_.Insert("t", MakeRow(7, 1, "a")));
  EXPECT_FALSE(db_.Insert("t", MakeRow(7, 2, "b")));
  EXPECT_EQ(db_.SelectByKey("t", 7)->ints.at(0), 1);
}

TEST_F(MiniDbTest, UpdateByKey) {
  db_.Insert("t", MakeRow(5, 50, "x"));
  EXPECT_TRUE(db_.UpdateByKey("t", 5, 99));
  EXPECT_FALSE(db_.UpdateByKey("t", 6, 99));
  EXPECT_EQ(db_.SelectByKey("t", 5)->ints.at(0), 99);
  EXPECT_EQ(db_.SelectByKey("t", 5)->strings.at(0), "x");
}

TEST_F(MiniDbTest, DeleteByKey) {
  db_.Insert("t", MakeRow(5, 50, "x"));
  db_.Insert("t", MakeRow(6, 60, "y"));
  EXPECT_TRUE(db_.DeleteByKey("t", 5));
  EXPECT_FALSE(db_.DeleteByKey("t", 5));
  EXPECT_FALSE(db_.SelectByKey("t", 5).has_value());
  EXPECT_TRUE(db_.SelectByKey("t", 6).has_value());
  EXPECT_EQ(db_.RowCount("t"), 1u);
}

TEST_F(MiniDbTest, RangePredicates) {
  for (int64_t i = 0; i < 100; ++i) {
    db_.Insert("t", MakeRow(i, i % 10, "r"));
  }
  EXPECT_EQ(db_.CountWhereIntColumn("t", 0, 3, 5), 30u);
  EXPECT_EQ(db_.UpdateWhereIntColumn("t", 0, 9, 9, 1000), 10u);
  EXPECT_EQ(db_.CountWhereIntColumn("t", 0, 1000, 1000), 10u);
  EXPECT_EQ(db_.DeleteWhereIntColumn("t", 0, 0, 0), 10u);
  EXPECT_EQ(db_.RowCount("t"), 90u);
  // Deleted rows must also be gone from the index.
  EXPECT_FALSE(db_.SelectByKey("t", 0).has_value());
  EXPECT_FALSE(db_.SelectByKey("t", 10).has_value());
}

TEST_F(MiniDbTest, SegmentGrowthPastOneSegment) {
  for (int64_t i = 0; i < 1000; ++i) {  // kRowsPerSegment is 256.
    ASSERT_TRUE(db_.Insert("t", MakeRow(i, i, "seg")));
  }
  EXPECT_EQ(db_.RowCount("t"), 1000u);
  EXPECT_EQ(db_.SelectByKey("t", 999)->ints.at(0), 999);
  EXPECT_EQ(db_.CountWhereIntColumn("t", 0, 0, 999999), 1000u);
}

TEST_F(MiniDbTest, MultipleTables) {
  db_.CreateTable("u", {ColumnSpec{ColumnType::kInt64, 8}});
  EXPECT_TRUE(db_.HasTable("t"));
  EXPECT_TRUE(db_.HasTable("u"));
  EXPECT_FALSE(db_.HasTable("v"));
  db_.Insert("u", MakeRow(1, 11, ""));
  db_.Insert("t", MakeRow(1, 22, "z"));
  EXPECT_EQ(db_.SelectByKey("u", 1)->ints.at(0), 11);
  EXPECT_EQ(db_.SelectByKey("t", 1)->ints.at(0), 22);
}

TEST_F(MiniDbTest, BulkLoadFixture) {
  Rng rng(5);
  db_.BulkLoadFixture("big", 5000, 64, rng);
  EXPECT_EQ(db_.RowCount("big"), 5000u);
  EXPECT_TRUE(db_.SelectByKey("big", 4999).has_value());
  EXPECT_EQ(db_.CountWhereIntColumn("big", 0, 0, 999), 5000u);
}

TEST_F(MiniDbTest, ForkedChildSeesDbAndIsIsolated) {
  for (int64_t i = 0; i < 500; ++i) {
    db_.Insert("t", MakeRow(i, i, "row"));
  }
  Process& child = kernel_.Fork(p_, ForkMode::kOnDemand);
  MiniDb child_db = MiniDb::Attach(kernel_, child, db_.meta_base());
  EXPECT_EQ(child_db.RowCount("t"), 500u);
  EXPECT_TRUE(child_db.DeleteByKey("t", 123));
  EXPECT_TRUE(child_db.UpdateByKey("t", 200, -1));
  EXPECT_TRUE(child_db.Insert("t", MakeRow(9999, 1, "child-only")));
  // Parent unaffected.
  EXPECT_EQ(db_.RowCount("t"), 500u);
  EXPECT_TRUE(db_.SelectByKey("t", 123).has_value());
  EXPECT_EQ(db_.SelectByKey("t", 200)->ints.at(0), 200);
  EXPECT_FALSE(db_.SelectByKey("t", 9999).has_value());
}

TEST_F(MiniDbTest, ShellExecutesCommands) {
  CoverageMap coverage;
  ShellResult result = RunMiniDbShell(
      db_, "t", "INS 1 10 abc\nINS 2 20 def\nSEL 1\nUPD 2 99\nDEL 1\nRNG 0 1000\n", &coverage);
  EXPECT_EQ(result.commands_executed, 6u);
  EXPECT_EQ(result.parse_errors, 0u);
  EXPECT_EQ(db_.RowCount("t"), 1u);
  EXPECT_EQ(db_.SelectByKey("t", 2)->ints.at(0), 99);
}

TEST_F(MiniDbTest, ShellSurvivesGarbageInput) {
  CoverageMap coverage;
  ShellResult result = RunMiniDbShell(
      db_, "t", "XYZ\nINS\nSEL notanumber\nRNG 10 5\nUPD 1\n\x01\x02\x03\n", &coverage);
  EXPECT_GT(result.parse_errors, 0u);
  EXPECT_EQ(db_.RowCount("t"), 0u);
}

TEST_F(MiniDbTest, ShellCoverageDistinguishesPaths) {
  std::array<uint8_t, CoverageMap::kSize> virgin{};
  CoverageMap coverage;
  RunMiniDbShell(db_, "t", "SEL 1\n", &coverage);
  uint64_t first = coverage.MergeInto(virgin);
  EXPECT_GT(first, 0u);

  coverage.Clear();
  RunMiniDbShell(db_, "t", "SEL 1\n", &coverage);
  EXPECT_EQ(coverage.MergeInto(virgin), 0u) << "identical input must add no coverage";

  coverage.Clear();
  RunMiniDbShell(db_, "t", "INS 1 2 x\nSEL 1\n", &coverage);
  EXPECT_GT(coverage.MergeInto(virgin), 0u) << "new paths (INS + SEL-hit) must add coverage";
}

}  // namespace
}  // namespace odf
