// odf::replay — flight recorder + deterministic replay (docs/replay.md): the varint/delta
// codec, record → write → parse → replay round trips (including pinned fault injection and
// --until partial replay), divergence detection, black-box budget bounding, ring-overwrite
// accounting, the procfs knob, and the abort-hook crash dump.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/debug/verify.h"
#include "src/fi/fault_inject.h"
#include "src/proc/kernel.h"
#include "src/proc/process.h"
#include "src/proc/procfs.h"
#include "src/replay/log.h"
#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {
namespace {

TEST(ReplayCodecTest, VarintRoundTrip) {
  std::vector<uint8_t> buffer;
  const uint64_t unsigned_values[] = {0, 1, 127, 128, 300, 16383, 16384,
                                      (1ull << 32) + 5, ~0ull};
  for (uint64_t value : unsigned_values) {
    replay::PutVarint(buffer, value);
  }
  const int64_t signed_values[] = {0, -1, 1, -64, 64, -4096, INT64_MIN, INT64_MAX};
  for (int64_t value : signed_values) {
    replay::PutZigZag(buffer, value);
  }
  replay::ByteReader reader{std::span<const uint8_t>(buffer)};
  for (uint64_t value : unsigned_values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(reader.ReadVarint(&decoded));
    EXPECT_EQ(decoded, value);
  }
  for (int64_t value : signed_values) {
    int64_t decoded = 0;
    ASSERT_TRUE(reader.ReadZigZag(&decoded));
    EXPECT_EQ(decoded, value);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ReplayCodecTest, ZigZagKeepsSmallMagnitudesSmall) {
  // The point of zigzag: -1 must not cost ten bytes.
  std::vector<uint8_t> buffer;
  replay::PutZigZag(buffer, -1);
  EXPECT_EQ(buffer.size(), 1u);
  buffer.clear();
  replay::PutZigZag(buffer, 63);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(ReplayCodecTest, TruncatedVarintFailsCleanly) {
  std::vector<uint8_t> buffer;
  replay::PutVarint(buffer, ~0ull);
  buffer.pop_back();
  replay::ByteReader reader{std::span<const uint8_t>(buffer)};
  uint64_t decoded = 0;
  EXPECT_FALSE(reader.ReadVarint(&decoded));
}

#if ODF_REPLAY_COMPILED

// Every test leaves the (process-global) recorder, injector, and tracer as found.
class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetGlobals(); }
  void TearDown() override { ResetGlobals(); }

  static void ResetGlobals() {
    replay::Recorder::Global().Stop();
    fi::FaultInjector::Global().Reset();
    trace::SetEnabled(false);
    trace::Tracer::Global().Clear();
  }

  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + name;
  }

  // A mixed fork/fault/reclaim workload: COW traffic under a frame limit with a window of
  // armed fault injection, then explicit reclaim and child teardown. Deterministic given
  // the fi seed, which is exactly what the recorder captures.
  static void RunMixedWorkload(Kernel& kernel) {
    Process& parent = kernel.CreateProcess();
    constexpr uint64_t kPages = 48;
    Vaddr buf = parent.Mmap(kPages * kPageSize, kProtRead | kProtWrite);
    std::vector<std::byte> page(kPageSize);
    for (uint64_t i = 0; i < kPages; ++i) {
      for (uint64_t j = 0; j < kPageSize; ++j) {
        page[j] = static_cast<std::byte>((i * 31 + j) & 0xff);
      }
      ASSERT_TRUE(parent.WriteMemory(buf + i * kPageSize, page));
    }
    kernel.SetMemoryLimitFrames(80);
    Process* child = kernel.TryFork(parent, ForkMode::kOnDemand);
    ASSERT_NE(child, nullptr);
    for (uint64_t i = 0; i < kPages; i += 2) {
      child->MemsetMemory(buf + i * kPageSize, static_cast<std::byte>(i & 0xff), kPageSize);
    }
    FiSiteConfig config;
    config.interval = 5;
    config.times = 3;
    fi::FaultInjector::Global().Arm(FiSite::k_frame_alloc, config);
    for (uint64_t i = 1; i < kPages; i += 2) {
      parent.TouchRange(buf + i * kPageSize, kPageSize, AccessType::kWrite);
    }
    fi::FaultInjector::Global().Disarm(FiSite::k_frame_alloc);
    kernel.ReclaimMemory(8);
    kernel.Exit(*child, 0);
    kernel.Wait(parent);
  }

  // Records the mixed workload into `path` (full mode) and returns the parsed log.
  static replay::ReplayLog RecordMixedWorkload(const std::string& path) {
    replay::RecorderOptions options;
    options.mode = replay::RecorderMode::kFull;
    options.force_tracing = true;
    EXPECT_TRUE(replay::Recorder::Global().Start(options));
    {
      Kernel kernel;
      RunMixedWorkload(kernel);
      std::string error;
      EXPECT_TRUE(replay::StopAndWriteLog(kernel, path, &error)) << error;
    }
    replay::ReplayLog log;
    std::string error;
    EXPECT_TRUE(replay::ReadLogFile(path, &log, &error)) << error;
    return log;
  }
};

TEST_F(ReplayTest, RecordWriteParseRoundTrip) {
  replay::ReplayLog log = RecordMixedWorkload(TempPath("replay_roundtrip.odflog"));
  EXPECT_TRUE(log.finalized);
  EXPECT_TRUE(log.Complete());
  EXPECT_GT(log.ops.size(), 50u);
  EXPECT_EQ(log.ops_dropped, 0u);
  // Seqs are dense and 1-based after parsing.
  for (size_t i = 0; i < log.ops.size(); ++i) {
    ASSERT_EQ(log.ops[i].seq, i + 1);
  }
  // The recording forced tracing on, so the log carries trace events.
  if (ODF_TRACE_COMPILED) {
    EXPECT_FALSE(log.events.empty());
  }
  ASSERT_EQ(log.final_processes.size(), 1u);  // Parent survives; child was reaped.
  EXPECT_NE(log.final_processes[0].content_digest, 0u);
}

TEST_F(ReplayTest, ReplayReproducesFinalStateAndCounters) {
  replay::ReplayLog log = RecordMixedWorkload(TempPath("replay_determinism.odflog"));
  replay::ReplayReport report = replay::Replay(log, replay::ReplayOptions{});
  EXPECT_TRUE(report.ok()) << report.Describe();
  EXPECT_EQ(report.ops_replayed, report.ops_total);
}

TEST_F(ReplayTest, ReplayPinsFaultInjectionVerdicts) {
  replay::ReplayLog log = RecordMixedWorkload(TempPath("replay_fi.odflog"));
  if (!ODF_FAULT_INJECT_COMPILED) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  EXPECT_FALSE(log.fi_decisions.empty())
      << "the armed window must have recorded decisions";
  // With pinning the injector must reproduce the schedule even under a different live
  // seed (the replayer resets to the recorded seed and pins per armed window).
  fi::FaultInjector::Global().Reset(/*seed=*/0xdeadbeef);
  replay::ReplayReport report = replay::Replay(log, replay::ReplayOptions{});
  EXPECT_TRUE(report.ok()) << report.Describe();
}

TEST_F(ReplayTest, UntilReachesConsistentIntermediateState) {
  replay::ReplayLog log = RecordMixedWorkload(TempPath("replay_until.odflog"));
  replay::ReplayOptions options;
  options.until_seq = log.ops.size() / 2;
  replay::ReplayReport report = replay::Replay(log, options);
  // Partial replay skips the final-state comparison but still runs the verifier: the
  // intermediate kernel must satisfy every invariant.
  EXPECT_TRUE(report.ok()) << report.Describe();
  EXPECT_EQ(report.ops_replayed, options.until_seq);
}

TEST_F(ReplayTest, ReplayDetectsTamperedFinalState) {
  replay::ReplayLog log = RecordMixedWorkload(TempPath("replay_tamper_final.odflog"));
  ASSERT_FALSE(log.final_processes.empty());
  log.final_processes[0].content_digest ^= 1;
  replay::ReplayReport report = replay::Replay(log, replay::ReplayOptions{});
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const std::string& divergence : report.divergences) {
    found = found || divergence.find("content_digest") != std::string::npos;
  }
  EXPECT_TRUE(found) << report.Describe();
}

TEST_F(ReplayTest, ReplayDetectsTamperedOpOutcome) {
  replay::ReplayLog log = RecordMixedWorkload(TempPath("replay_tamper_op.odflog"));
  bool tampered = false;
  for (replay::OpRecord& op : log.ops) {
    if (op.kind == OpKind::k_write && op.result == 1) {
      op.result = 0;  // Claim the recorded write failed.
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  replay::ReplayReport report = replay::Replay(log, replay::ReplayOptions{});
  EXPECT_FALSE(report.ok());
}

TEST_F(ReplayTest, IncompleteLogIsRefused) {
  replay::ReplayLog log;
  log.ops_dropped = 7;
  replay::ReplayReport report = replay::Replay(log, replay::ReplayOptions{});
  EXPECT_FALSE(report.parsed);
  EXPECT_NE(report.error.find("not replayable"), std::string::npos) << report.error;
}

TEST_F(ReplayTest, BlackBoxBudgetBoundsRetainedBytes) {
  replay::RecorderOptions options;
  options.mode = replay::RecorderMode::kBlackBox;
  options.blackbox_budget_bytes = 128 * 1024;
  ASSERT_TRUE(replay::Recorder::Global().Start(options));
  std::string path = TempPath("replay_blackbox.odflog");
  {
    Kernel kernel;
    Process& p = kernel.CreateProcess();
    Vaddr buf = p.Mmap(kPageSize, kProtRead | kProtWrite);
    // Incompressible payloads (every byte differs) so the encoded stream must exceed the
    // budget and rotate chunks out.
    std::vector<std::byte> page(kPageSize);
    for (int i = 0; i < 600; ++i) {
      for (uint64_t j = 0; j < kPageSize; ++j) {
        page[j] = static_cast<std::byte>((static_cast<uint64_t>(i) * 131 + j * 7) & 0xff);
      }
      ASSERT_TRUE(p.WriteMemory(buf, page));
    }
    replay::RecorderStats stats = replay::Recorder::Global().CollectStats();
    EXPECT_GT(stats.ops_dropped, 0u) << "budget never exceeded: weak test workload";
    // Retained bytes stay within budget + one open chunk + trailer slack.
    EXPECT_LE(stats.bytes, options.blackbox_budget_bytes + replay::kChunkTargetBytes + 8192);
    std::string error;
    ASSERT_TRUE(replay::StopAndWriteLog(kernel, path, &error)) << error;
  }
  replay::ReplayLog log;
  std::string error;
  ASSERT_TRUE(replay::ReadLogFile(path, &log, &error)) << error;
  EXPECT_GT(log.ops_dropped, 0u);
  EXPECT_FALSE(log.Complete());
  // Wrapped black boxes are inspectable but not replayable.
  replay::ReplayReport report = replay::Replay(log, replay::ReplayOptions{});
  EXPECT_FALSE(report.parsed);
  EXPECT_NE(report.error.find("not replayable"), std::string::npos) << report.error;
}

TEST_F(ReplayTest, RingOverwriteIsAccounted) {
  if (!ODF_TRACE_COMPILED) {
    GTEST_SKIP() << "tracepoints compiled out";
  }
  uint64_t before = ReadVm(VmCounter::k_trace_ring_overwrite);
  trace::SetEnabled(true);
  for (uint64_t i = 0; i < trace::TraceRing::kCapacity + 100; ++i) {
    ODF_TRACE(fault_demand_zero, /*pid=*/1, i);
  }
  trace::SetEnabled(false);
  EXPECT_GE(ReadVm(VmCounter::k_trace_ring_overwrite) - before, 100u);
  bool found = false;
  for (const auto& ring : trace::Tracer::Global().CollectRingStats()) {
    found = found || ring.overwritten >= 100;
  }
  EXPECT_TRUE(found) << "per-ring overwrite count missing";
}

TEST_F(ReplayTest, ProcfsKnobControlsRecorder) {
  std::string error;
  EXPECT_TRUE(ConfigureReplay("start mode=blackbox budget=1048576", &error)) << error;
  EXPECT_TRUE(replay::Recorder::Global().recording());
  std::string status = FormatReplay();
  EXPECT_NE(status.find("mode blackbox"), std::string::npos) << status;
  EXPECT_NE(status.find("recording 1"), std::string::npos) << status;
  EXPECT_TRUE(ConfigureReplay("stop", &error)) << error;
  EXPECT_FALSE(replay::Recorder::Global().recording());
  EXPECT_FALSE(ConfigureReplay("mode=bogus", &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(ReplayTest, StartWhileRecordingFails) {
  ASSERT_TRUE(replay::Recorder::Global().Start());
  EXPECT_FALSE(replay::Recorder::Global().Start());
  replay::Recorder::Global().Stop();
}

using ReplayDeathTest = ReplayTest;

TEST_F(ReplayDeathTest, FatalCheckDumpsBlackBox) {
  EXPECT_DEATH(
      {
        setenv("ODF_REPLAY_DUMP_DIR", ::testing::TempDir().c_str(), 1);
        replay::RecorderOptions options;
        options.mode = replay::RecorderMode::kBlackBox;
        replay::Recorder::Global().Start(options);
        Kernel kernel;
        Process& p = kernel.CreateProcess();
        Vaddr buf = p.Mmap(kPageSize, kProtRead | kProtWrite);
        p.TouchRange(buf, kPageSize, AccessType::kWrite);
        ODF_CHECK(false) << "deliberate crash for the flight-recorder dump";
      },
      "flight recorder dumped");
}

#endif  // ODF_REPLAY_COMPILED

}  // namespace
}  // namespace odf
