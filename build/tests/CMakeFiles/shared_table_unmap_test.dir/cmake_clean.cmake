file(REMOVE_RECURSE
  "CMakeFiles/shared_table_unmap_test.dir/shared_table_unmap_test.cc.o"
  "CMakeFiles/shared_table_unmap_test.dir/shared_table_unmap_test.cc.o.d"
  "shared_table_unmap_test"
  "shared_table_unmap_test.pdb"
  "shared_table_unmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_table_unmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
