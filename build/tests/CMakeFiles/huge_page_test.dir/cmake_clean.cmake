file(REMOVE_RECURSE
  "CMakeFiles/huge_page_test.dir/huge_page_test.cc.o"
  "CMakeFiles/huge_page_test.dir/huge_page_test.cc.o.d"
  "huge_page_test"
  "huge_page_test.pdb"
  "huge_page_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huge_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
