# Empty compiler generated dependencies file for property_mixed_test.
# This may be replaced when dependencies are built.
