file(REMOVE_RECURSE
  "CMakeFiles/property_mixed_test.dir/property_mixed_test.cc.o"
  "CMakeFiles/property_mixed_test.dir/property_mixed_test.cc.o.d"
  "property_mixed_test"
  "property_mixed_test.pdb"
  "property_mixed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_mixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
