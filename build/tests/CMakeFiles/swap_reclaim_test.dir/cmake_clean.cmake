file(REMOVE_RECURSE
  "CMakeFiles/swap_reclaim_test.dir/swap_reclaim_test.cc.o"
  "CMakeFiles/swap_reclaim_test.dir/swap_reclaim_test.cc.o.d"
  "swap_reclaim_test"
  "swap_reclaim_test.pdb"
  "swap_reclaim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swap_reclaim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
