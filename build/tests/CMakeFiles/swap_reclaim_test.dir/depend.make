# Empty dependencies file for swap_reclaim_test.
# This may be replaced when dependencies are built.
