# Empty dependencies file for pt_test.
# This may be replaced when dependencies are built.
