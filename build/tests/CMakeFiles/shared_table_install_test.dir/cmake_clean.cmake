file(REMOVE_RECURSE
  "CMakeFiles/shared_table_install_test.dir/shared_table_install_test.cc.o"
  "CMakeFiles/shared_table_install_test.dir/shared_table_install_test.cc.o.d"
  "shared_table_install_test"
  "shared_table_install_test.pdb"
  "shared_table_install_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_table_install_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
