# Empty compiler generated dependencies file for shared_table_install_test.
# This may be replaced when dependencies are built.
