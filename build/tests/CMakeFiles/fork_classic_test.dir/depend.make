# Empty dependencies file for fork_classic_test.
# This may be replaced when dependencies are built.
