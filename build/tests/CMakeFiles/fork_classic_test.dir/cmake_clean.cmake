file(REMOVE_RECURSE
  "CMakeFiles/fork_classic_test.dir/fork_classic_test.cc.o"
  "CMakeFiles/fork_classic_test.dir/fork_classic_test.cc.o.d"
  "fork_classic_test"
  "fork_classic_test.pdb"
  "fork_classic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fork_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
