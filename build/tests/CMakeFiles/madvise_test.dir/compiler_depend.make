# Empty compiler generated dependencies file for madvise_test.
# This may be replaced when dependencies are built.
