# Empty dependencies file for fork_odf_huge_test.
# This may be replaced when dependencies are built.
