# Empty dependencies file for file_mapping_test.
# This may be replaced when dependencies are built.
