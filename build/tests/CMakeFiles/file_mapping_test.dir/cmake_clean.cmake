file(REMOVE_RECURSE
  "CMakeFiles/file_mapping_test.dir/file_mapping_test.cc.o"
  "CMakeFiles/file_mapping_test.dir/file_mapping_test.cc.o.d"
  "file_mapping_test"
  "file_mapping_test.pdb"
  "file_mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
