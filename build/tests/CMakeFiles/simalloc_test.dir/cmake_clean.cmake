file(REMOVE_RECURSE
  "CMakeFiles/simalloc_test.dir/simalloc_test.cc.o"
  "CMakeFiles/simalloc_test.dir/simalloc_test.cc.o.d"
  "simalloc_test"
  "simalloc_test.pdb"
  "simalloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simalloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
