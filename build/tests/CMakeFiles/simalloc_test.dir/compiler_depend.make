# Empty compiler generated dependencies file for simalloc_test.
# This may be replaced when dependencies are built.
