# Empty dependencies file for fork_odf_test.
# This may be replaced when dependencies are built.
