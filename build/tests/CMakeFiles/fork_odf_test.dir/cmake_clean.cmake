file(REMOVE_RECURSE
  "CMakeFiles/fork_odf_test.dir/fork_odf_test.cc.o"
  "CMakeFiles/fork_odf_test.dir/fork_odf_test.cc.o.d"
  "fork_odf_test"
  "fork_odf_test.pdb"
  "fork_odf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fork_odf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
