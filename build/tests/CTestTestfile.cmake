# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/frame_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/pt_test[1]_include.cmake")
include("/root/repo/build/tests/address_space_test[1]_include.cmake")
include("/root/repo/build/tests/fork_classic_test[1]_include.cmake")
include("/root/repo/build/tests/fork_odf_test[1]_include.cmake")
include("/root/repo/build/tests/fork_odf_huge_test[1]_include.cmake")
include("/root/repo/build/tests/shared_table_unmap_test[1]_include.cmake")
include("/root/repo/build/tests/file_mapping_test[1]_include.cmake")
include("/root/repo/build/tests/huge_page_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/simalloc_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/minidb_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/swap_reclaim_test[1]_include.cmake")
include("/root/repo/build/tests/procfs_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
include("/root/repo/build/tests/property_mixed_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/shared_table_install_test[1]_include.cmake")
include("/root/repo/build/tests/auditor_test[1]_include.cmake")
include("/root/repo/build/tests/madvise_test[1]_include.cmake")
include("/root/repo/build/tests/contract_death_test[1]_include.cmake")
