# Empty dependencies file for odfsh.
# This may be replaced when dependencies are built.
