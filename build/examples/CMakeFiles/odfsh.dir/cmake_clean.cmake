file(REMOVE_RECURSE
  "CMakeFiles/odfsh.dir/odfsh.cpp.o"
  "CMakeFiles/odfsh.dir/odfsh.cpp.o.d"
  "odfsh"
  "odfsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odfsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
