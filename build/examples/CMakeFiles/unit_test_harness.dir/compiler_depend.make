# Empty compiler generated dependencies file for unit_test_harness.
# This may be replaced when dependencies are built.
