file(REMOVE_RECURSE
  "CMakeFiles/unit_test_harness.dir/unit_test_harness.cpp.o"
  "CMakeFiles/unit_test_harness.dir/unit_test_harness.cpp.o.d"
  "unit_test_harness"
  "unit_test_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_test_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
