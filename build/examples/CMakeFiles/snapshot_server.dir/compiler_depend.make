# Empty compiler generated dependencies file for snapshot_server.
# This may be replaced when dependencies are built.
