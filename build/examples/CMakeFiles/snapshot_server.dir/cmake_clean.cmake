file(REMOVE_RECURSE
  "CMakeFiles/snapshot_server.dir/snapshot_server.cpp.o"
  "CMakeFiles/snapshot_server.dir/snapshot_server.cpp.o.d"
  "snapshot_server"
  "snapshot_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
