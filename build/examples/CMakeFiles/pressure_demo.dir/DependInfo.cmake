
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pressure_demo.cpp" "examples/CMakeFiles/pressure_demo.dir/pressure_demo.cpp.o" "gcc" "examples/CMakeFiles/pressure_demo.dir/pressure_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/odf_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/odf_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/odf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/odf_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/odf_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/odf_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/odf_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
