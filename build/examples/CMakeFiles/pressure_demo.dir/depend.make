# Empty dependencies file for pressure_demo.
# This may be replaced when dependencies are built.
