file(REMOVE_RECURSE
  "CMakeFiles/pressure_demo.dir/pressure_demo.cpp.o"
  "CMakeFiles/pressure_demo.dir/pressure_demo.cpp.o.d"
  "pressure_demo"
  "pressure_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pressure_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
