file(REMOVE_RECURSE
  "CMakeFiles/fuzzing_campaign.dir/fuzzing_campaign.cpp.o"
  "CMakeFiles/fuzzing_campaign.dir/fuzzing_campaign.cpp.o.d"
  "fuzzing_campaign"
  "fuzzing_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzing_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
