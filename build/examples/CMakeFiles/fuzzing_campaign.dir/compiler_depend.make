# Empty compiler generated dependencies file for fuzzing_campaign.
# This may be replaced when dependencies are built.
