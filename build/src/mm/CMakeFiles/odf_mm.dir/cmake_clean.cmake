file(REMOVE_RECURSE
  "CMakeFiles/odf_mm.dir/address_space.cc.o"
  "CMakeFiles/odf_mm.dir/address_space.cc.o.d"
  "CMakeFiles/odf_mm.dir/fault.cc.o"
  "CMakeFiles/odf_mm.dir/fault.cc.o.d"
  "CMakeFiles/odf_mm.dir/range_ops.cc.o"
  "CMakeFiles/odf_mm.dir/range_ops.cc.o.d"
  "CMakeFiles/odf_mm.dir/reclaim.cc.o"
  "CMakeFiles/odf_mm.dir/reclaim.cc.o.d"
  "CMakeFiles/odf_mm.dir/swap.cc.o"
  "CMakeFiles/odf_mm.dir/swap.cc.o.d"
  "libodf_mm.a"
  "libodf_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odf_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
