file(REMOVE_RECURSE
  "libodf_mm.a"
)
