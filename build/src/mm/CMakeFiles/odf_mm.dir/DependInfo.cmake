
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mm/address_space.cc" "src/mm/CMakeFiles/odf_mm.dir/address_space.cc.o" "gcc" "src/mm/CMakeFiles/odf_mm.dir/address_space.cc.o.d"
  "/root/repo/src/mm/fault.cc" "src/mm/CMakeFiles/odf_mm.dir/fault.cc.o" "gcc" "src/mm/CMakeFiles/odf_mm.dir/fault.cc.o.d"
  "/root/repo/src/mm/range_ops.cc" "src/mm/CMakeFiles/odf_mm.dir/range_ops.cc.o" "gcc" "src/mm/CMakeFiles/odf_mm.dir/range_ops.cc.o.d"
  "/root/repo/src/mm/reclaim.cc" "src/mm/CMakeFiles/odf_mm.dir/reclaim.cc.o" "gcc" "src/mm/CMakeFiles/odf_mm.dir/reclaim.cc.o.d"
  "/root/repo/src/mm/swap.cc" "src/mm/CMakeFiles/odf_mm.dir/swap.cc.o" "gcc" "src/mm/CMakeFiles/odf_mm.dir/swap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pt/CMakeFiles/odf_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/odf_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/odf_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
