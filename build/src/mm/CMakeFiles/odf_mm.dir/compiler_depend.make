# Empty compiler generated dependencies file for odf_mm.
# This may be replaced when dependencies are built.
