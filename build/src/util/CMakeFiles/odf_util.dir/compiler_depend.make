# Empty compiler generated dependencies file for odf_util.
# This may be replaced when dependencies are built.
