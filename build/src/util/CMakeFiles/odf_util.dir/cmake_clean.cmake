file(REMOVE_RECURSE
  "CMakeFiles/odf_util.dir/histogram.cc.o"
  "CMakeFiles/odf_util.dir/histogram.cc.o.d"
  "CMakeFiles/odf_util.dir/latency_recorder.cc.o"
  "CMakeFiles/odf_util.dir/latency_recorder.cc.o.d"
  "CMakeFiles/odf_util.dir/log.cc.o"
  "CMakeFiles/odf_util.dir/log.cc.o.d"
  "CMakeFiles/odf_util.dir/stats.cc.o"
  "CMakeFiles/odf_util.dir/stats.cc.o.d"
  "CMakeFiles/odf_util.dir/table_printer.cc.o"
  "CMakeFiles/odf_util.dir/table_printer.cc.o.d"
  "libodf_util.a"
  "libodf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
