
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fork.cc" "src/core/CMakeFiles/odf_core.dir/fork.cc.o" "gcc" "src/core/CMakeFiles/odf_core.dir/fork.cc.o.d"
  "/root/repo/src/core/fork_classic.cc" "src/core/CMakeFiles/odf_core.dir/fork_classic.cc.o" "gcc" "src/core/CMakeFiles/odf_core.dir/fork_classic.cc.o.d"
  "/root/repo/src/core/fork_odf.cc" "src/core/CMakeFiles/odf_core.dir/fork_odf.cc.o" "gcc" "src/core/CMakeFiles/odf_core.dir/fork_odf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mm/CMakeFiles/odf_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/odf_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/odf_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/odf_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
