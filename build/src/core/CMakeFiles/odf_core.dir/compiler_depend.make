# Empty compiler generated dependencies file for odf_core.
# This may be replaced when dependencies are built.
