file(REMOVE_RECURSE
  "CMakeFiles/odf_core.dir/fork.cc.o"
  "CMakeFiles/odf_core.dir/fork.cc.o.d"
  "CMakeFiles/odf_core.dir/fork_classic.cc.o"
  "CMakeFiles/odf_core.dir/fork_classic.cc.o.d"
  "CMakeFiles/odf_core.dir/fork_odf.cc.o"
  "CMakeFiles/odf_core.dir/fork_odf.cc.o.d"
  "libodf_core.a"
  "libodf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
