# Empty compiler generated dependencies file for odf_proc.
# This may be replaced when dependencies are built.
