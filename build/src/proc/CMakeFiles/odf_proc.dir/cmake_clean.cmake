file(REMOVE_RECURSE
  "CMakeFiles/odf_proc.dir/auditor.cc.o"
  "CMakeFiles/odf_proc.dir/auditor.cc.o.d"
  "CMakeFiles/odf_proc.dir/kernel.cc.o"
  "CMakeFiles/odf_proc.dir/kernel.cc.o.d"
  "CMakeFiles/odf_proc.dir/process.cc.o"
  "CMakeFiles/odf_proc.dir/process.cc.o.d"
  "CMakeFiles/odf_proc.dir/procfs.cc.o"
  "CMakeFiles/odf_proc.dir/procfs.cc.o.d"
  "libodf_proc.a"
  "libodf_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odf_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
