file(REMOVE_RECURSE
  "libodf_proc.a"
)
