file(REMOVE_RECURSE
  "libodf_phys.a"
)
