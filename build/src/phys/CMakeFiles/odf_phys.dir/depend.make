# Empty dependencies file for odf_phys.
# This may be replaced when dependencies are built.
