file(REMOVE_RECURSE
  "CMakeFiles/odf_phys.dir/frame_allocator.cc.o"
  "CMakeFiles/odf_phys.dir/frame_allocator.cc.o.d"
  "libodf_phys.a"
  "libodf_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odf_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
