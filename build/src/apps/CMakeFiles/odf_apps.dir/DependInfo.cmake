
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fuzzer.cc" "src/apps/CMakeFiles/odf_apps.dir/fuzzer.cc.o" "gcc" "src/apps/CMakeFiles/odf_apps.dir/fuzzer.cc.o.d"
  "/root/repo/src/apps/httpd.cc" "src/apps/CMakeFiles/odf_apps.dir/httpd.cc.o" "gcc" "src/apps/CMakeFiles/odf_apps.dir/httpd.cc.o.d"
  "/root/repo/src/apps/kvstore.cc" "src/apps/CMakeFiles/odf_apps.dir/kvstore.cc.o" "gcc" "src/apps/CMakeFiles/odf_apps.dir/kvstore.cc.o.d"
  "/root/repo/src/apps/lambda.cc" "src/apps/CMakeFiles/odf_apps.dir/lambda.cc.o" "gcc" "src/apps/CMakeFiles/odf_apps.dir/lambda.cc.o.d"
  "/root/repo/src/apps/minidb.cc" "src/apps/CMakeFiles/odf_apps.dir/minidb.cc.o" "gcc" "src/apps/CMakeFiles/odf_apps.dir/minidb.cc.o.d"
  "/root/repo/src/apps/minidb_shell.cc" "src/apps/CMakeFiles/odf_apps.dir/minidb_shell.cc.o" "gcc" "src/apps/CMakeFiles/odf_apps.dir/minidb_shell.cc.o.d"
  "/root/repo/src/apps/simalloc.cc" "src/apps/CMakeFiles/odf_apps.dir/simalloc.cc.o" "gcc" "src/apps/CMakeFiles/odf_apps.dir/simalloc.cc.o.d"
  "/root/repo/src/apps/vmclone.cc" "src/apps/CMakeFiles/odf_apps.dir/vmclone.cc.o" "gcc" "src/apps/CMakeFiles/odf_apps.dir/vmclone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proc/CMakeFiles/odf_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/odf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/odf_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/odf_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/odf_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/odf_phys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
