file(REMOVE_RECURSE
  "libodf_apps.a"
)
