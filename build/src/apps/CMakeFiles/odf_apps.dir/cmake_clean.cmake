file(REMOVE_RECURSE
  "CMakeFiles/odf_apps.dir/fuzzer.cc.o"
  "CMakeFiles/odf_apps.dir/fuzzer.cc.o.d"
  "CMakeFiles/odf_apps.dir/httpd.cc.o"
  "CMakeFiles/odf_apps.dir/httpd.cc.o.d"
  "CMakeFiles/odf_apps.dir/kvstore.cc.o"
  "CMakeFiles/odf_apps.dir/kvstore.cc.o.d"
  "CMakeFiles/odf_apps.dir/lambda.cc.o"
  "CMakeFiles/odf_apps.dir/lambda.cc.o.d"
  "CMakeFiles/odf_apps.dir/minidb.cc.o"
  "CMakeFiles/odf_apps.dir/minidb.cc.o.d"
  "CMakeFiles/odf_apps.dir/minidb_shell.cc.o"
  "CMakeFiles/odf_apps.dir/minidb_shell.cc.o.d"
  "CMakeFiles/odf_apps.dir/simalloc.cc.o"
  "CMakeFiles/odf_apps.dir/simalloc.cc.o.d"
  "CMakeFiles/odf_apps.dir/vmclone.cc.o"
  "CMakeFiles/odf_apps.dir/vmclone.cc.o.d"
  "libodf_apps.a"
  "libodf_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odf_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
