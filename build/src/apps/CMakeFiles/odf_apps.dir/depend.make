# Empty dependencies file for odf_apps.
# This may be replaced when dependencies are built.
