# Empty compiler generated dependencies file for odf_fs.
# This may be replaced when dependencies are built.
