file(REMOVE_RECURSE
  "CMakeFiles/odf_fs.dir/mem_fs.cc.o"
  "CMakeFiles/odf_fs.dir/mem_fs.cc.o.d"
  "libodf_fs.a"
  "libodf_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odf_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
