file(REMOVE_RECURSE
  "libodf_fs.a"
)
