file(REMOVE_RECURSE
  "libodf_pt.a"
)
