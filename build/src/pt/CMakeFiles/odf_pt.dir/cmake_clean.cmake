file(REMOVE_RECURSE
  "CMakeFiles/odf_pt.dir/walker.cc.o"
  "CMakeFiles/odf_pt.dir/walker.cc.o.d"
  "libodf_pt.a"
  "libodf_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odf_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
