# Empty dependencies file for odf_pt.
# This may be replaced when dependencies are built.
