# Empty compiler generated dependencies file for fig08_overall_cost.
# This may be replaced when dependencies are built.
