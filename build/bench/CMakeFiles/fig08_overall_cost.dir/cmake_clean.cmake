file(REMOVE_RECURSE
  "CMakeFiles/fig08_overall_cost.dir/fig08_overall_cost.cc.o"
  "CMakeFiles/fig08_overall_cost.dir/fig08_overall_cost.cc.o.d"
  "fig08_overall_cost"
  "fig08_overall_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_overall_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
