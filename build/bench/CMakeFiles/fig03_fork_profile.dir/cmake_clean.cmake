file(REMOVE_RECURSE
  "CMakeFiles/fig03_fork_profile.dir/fig03_fork_profile.cc.o"
  "CMakeFiles/fig03_fork_profile.dir/fig03_fork_profile.cc.o.d"
  "fig03_fork_profile"
  "fig03_fork_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fork_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
