# Empty compiler generated dependencies file for abl02_refcount_strategy.
# This may be replaced when dependencies are built.
