file(REMOVE_RECURSE
  "CMakeFiles/abl02_refcount_strategy.dir/abl02_refcount_strategy.cc.o"
  "CMakeFiles/abl02_refcount_strategy.dir/abl02_refcount_strategy.cc.o.d"
  "abl02_refcount_strategy"
  "abl02_refcount_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_refcount_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
