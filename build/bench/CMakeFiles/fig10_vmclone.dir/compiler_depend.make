# Empty compiler generated dependencies file for fig10_vmclone.
# This may be replaced when dependencies are built.
