file(REMOVE_RECURSE
  "CMakeFiles/fig10_vmclone.dir/fig10_vmclone.cc.o"
  "CMakeFiles/fig10_vmclone.dir/fig10_vmclone.cc.o.d"
  "fig10_vmclone"
  "fig10_vmclone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vmclone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
