# Empty dependencies file for tab01_fault_cost.
# This may be replaced when dependencies are built.
