file(REMOVE_RECURSE
  "CMakeFiles/tab01_fault_cost.dir/tab01_fault_cost.cc.o"
  "CMakeFiles/tab01_fault_cost.dir/tab01_fault_cost.cc.o.d"
  "tab01_fault_cost"
  "tab01_fault_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_fault_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
