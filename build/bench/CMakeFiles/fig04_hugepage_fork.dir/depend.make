# Empty dependencies file for fig04_hugepage_fork.
# This may be replaced when dependencies are built.
