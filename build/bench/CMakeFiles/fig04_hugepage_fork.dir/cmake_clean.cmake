file(REMOVE_RECURSE
  "CMakeFiles/fig04_hugepage_fork.dir/fig04_hugepage_fork.cc.o"
  "CMakeFiles/fig04_hugepage_fork.dir/fig04_hugepage_fork.cc.o.d"
  "fig04_hugepage_fork"
  "fig04_hugepage_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_hugepage_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
