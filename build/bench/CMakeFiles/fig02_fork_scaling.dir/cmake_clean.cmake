file(REMOVE_RECURSE
  "CMakeFiles/fig02_fork_scaling.dir/fig02_fork_scaling.cc.o"
  "CMakeFiles/fig02_fork_scaling.dir/fig02_fork_scaling.cc.o.d"
  "fig02_fork_scaling"
  "fig02_fork_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_fork_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
