# Empty compiler generated dependencies file for fig02_fork_scaling.
# This may be replaced when dependencies are built.
