file(REMOVE_RECURSE
  "CMakeFiles/abl01_share_depth.dir/abl01_share_depth.cc.o"
  "CMakeFiles/abl01_share_depth.dir/abl01_share_depth.cc.o.d"
  "abl01_share_depth"
  "abl01_share_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_share_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
