# Empty dependencies file for abl01_share_depth.
# This may be replaced when dependencies are built.
