file(REMOVE_RECURSE
  "CMakeFiles/exp12_lambda_startup.dir/exp12_lambda_startup.cc.o"
  "CMakeFiles/exp12_lambda_startup.dir/exp12_lambda_startup.cc.o.d"
  "exp12_lambda_startup"
  "exp12_lambda_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_lambda_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
