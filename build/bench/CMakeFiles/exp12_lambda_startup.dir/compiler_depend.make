# Empty compiler generated dependencies file for exp12_lambda_startup.
# This may be replaced when dependencies are built.
