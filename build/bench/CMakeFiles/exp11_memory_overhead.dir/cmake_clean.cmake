file(REMOVE_RECURSE
  "CMakeFiles/exp11_memory_overhead.dir/exp11_memory_overhead.cc.o"
  "CMakeFiles/exp11_memory_overhead.dir/exp11_memory_overhead.cc.o.d"
  "exp11_memory_overhead"
  "exp11_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
