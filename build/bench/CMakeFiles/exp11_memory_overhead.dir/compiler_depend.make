# Empty compiler generated dependencies file for exp11_memory_overhead.
# This may be replaced when dependencies are built.
