file(REMOVE_RECURSE
  "CMakeFiles/tab06_07_apache.dir/tab06_07_apache.cc.o"
  "CMakeFiles/tab06_07_apache.dir/tab06_07_apache.cc.o.d"
  "tab06_07_apache"
  "tab06_07_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_07_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
