# Empty dependencies file for tab06_07_apache.
# This may be replaced when dependencies are built.
