file(REMOVE_RECURSE
  "CMakeFiles/fig09_fuzz_throughput.dir/fig09_fuzz_throughput.cc.o"
  "CMakeFiles/fig09_fuzz_throughput.dir/fig09_fuzz_throughput.cc.o.d"
  "fig09_fuzz_throughput"
  "fig09_fuzz_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fuzz_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
