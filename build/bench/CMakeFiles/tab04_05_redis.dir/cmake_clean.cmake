file(REMOVE_RECURSE
  "CMakeFiles/tab04_05_redis.dir/tab04_05_redis.cc.o"
  "CMakeFiles/tab04_05_redis.dir/tab04_05_redis.cc.o.d"
  "tab04_05_redis"
  "tab04_05_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_05_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
