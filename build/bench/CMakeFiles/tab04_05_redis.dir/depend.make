# Empty dependencies file for tab04_05_redis.
# This may be replaced when dependencies are built.
