# Empty compiler generated dependencies file for tab02_unittest_phases.
# This may be replaced when dependencies are built.
