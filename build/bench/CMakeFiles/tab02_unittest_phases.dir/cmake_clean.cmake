file(REMOVE_RECURSE
  "CMakeFiles/tab02_unittest_phases.dir/tab02_unittest_phases.cc.o"
  "CMakeFiles/tab02_unittest_phases.dir/tab02_unittest_phases.cc.o.d"
  "tab02_unittest_phases"
  "tab02_unittest_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_unittest_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
