file(REMOVE_RECURSE
  "CMakeFiles/tab03_unittest_fork.dir/tab03_unittest_fork.cc.o"
  "CMakeFiles/tab03_unittest_fork.dir/tab03_unittest_fork.cc.o.d"
  "tab03_unittest_fork"
  "tab03_unittest_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_unittest_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
