# Empty compiler generated dependencies file for tab03_unittest_fork.
# This may be replaced when dependencies are built.
