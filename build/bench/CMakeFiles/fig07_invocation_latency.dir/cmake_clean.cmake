file(REMOVE_RECURSE
  "CMakeFiles/fig07_invocation_latency.dir/fig07_invocation_latency.cc.o"
  "CMakeFiles/fig07_invocation_latency.dir/fig07_invocation_latency.cc.o.d"
  "fig07_invocation_latency"
  "fig07_invocation_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_invocation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
