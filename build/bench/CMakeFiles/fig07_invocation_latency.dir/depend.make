# Empty dependencies file for fig07_invocation_latency.
# This may be replaced when dependencies are built.
