file(REMOVE_RECURSE
  "CMakeFiles/abl03_huge_odf.dir/abl03_huge_odf.cc.o"
  "CMakeFiles/abl03_huge_odf.dir/abl03_huge_odf.cc.o.d"
  "abl03_huge_odf"
  "abl03_huge_odf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_huge_odf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
