# Empty dependencies file for abl03_huge_odf.
# This may be replaced when dependencies are built.
