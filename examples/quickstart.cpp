// Quickstart: create a process with a large mapping, fork it both ways, and watch
// copy-on-write (of data pages AND page tables) do its job.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/proc/kernel.h"
#include "src/util/stopwatch.h"

int main() {
  odf::Kernel kernel;

  // 1) A process with 1 GB of populated anonymous memory.
  odf::Process& parent = kernel.CreateProcess();
  const uint64_t kSize = 1ULL << 30;
  odf::Vaddr buffer = parent.Mmap(kSize, odf::kProtRead | odf::kProtWrite);
  parent.address_space().PopulateRange(buffer, kSize);
  parent.StoreU64(buffer, 0xdeadbeef);
  std::printf("parent pid %d: mapped %llu MB at 0x%llx\n", parent.pid(),
              (unsigned long long)(kSize >> 20), (unsigned long long)buffer);

  // 2) Fork it the traditional way and with on-demand-fork; compare invocation latency.
  odf::Stopwatch sw;
  odf::Process& classic_child = kernel.Fork(parent, odf::ForkMode::kClassic);
  double classic_ms = sw.ElapsedMillis();

  sw.Restart();
  odf::Process& odf_child = kernel.Fork(parent, odf::ForkMode::kOnDemand);
  double odf_ms = sw.ElapsedMillis();

  std::printf("fork():           %8.3f ms\n", classic_ms);
  std::printf("on_demand_fork(): %8.3f ms   (%.0fx faster)\n", odf_ms, classic_ms / odf_ms);

  // 3) Copy-on-write semantics are identical: children see the parent's data...
  std::printf("children read parent's word: 0x%llx / 0x%llx\n",
              (unsigned long long)classic_child.LoadU64(buffer),
              (unsigned long long)odf_child.LoadU64(buffer));

  // ...and writes are private. The ODF child's first write in this 2 MiB region also copies
  // the shared page table, visible in the fault statistics.
  odf_child.StoreU64(buffer, 1111);
  classic_child.StoreU64(buffer, 2222);
  std::printf("after child writes: parent=0x%llx odf_child=%llu classic_child=%llu\n",
              (unsigned long long)parent.LoadU64(buffer),
              (unsigned long long)odf_child.LoadU64(buffer),
              (unsigned long long)classic_child.LoadU64(buffer));
  std::printf("odf child PTE-table COW faults: %llu (one per written 2 MiB region)\n",
              (unsigned long long)odf_child.address_space().stats().pte_table_cow_faults);

  // 4) Clean up.
  kernel.Exit(odf_child, 0);
  kernel.Exit(classic_child, 0);
  kernel.Wait(parent);
  kernel.Wait(parent);
  kernel.Exit(parent, 0);
  std::printf("all frames released: %s\n", kernel.allocator().AllFree() ? "yes" : "NO");
  return 0;
}
