// Example: the §4 "Robustness" machinery end to end — cap simulated RAM, watch the clock
// reclaimer push cold pages to swap while a working set stays resident, then drive the
// machine into an OOM kill, with procfs-style reports along the way.
//
//   ./build/examples/pressure_demo
#include <cstdio>

#include "src/mm/reclaim.h"
#include "src/proc/auditor.h"
#include "src/proc/procfs.h"

int main() {
  odf::Kernel kernel;
  const uint64_t kRamFrames = 4096;  // 16 MiB of simulated RAM.
  kernel.SetMemoryLimitFrames(kRamFrames);
  std::printf("machine booted with %llu MB of simulated RAM\n",
              (unsigned long long)(kRamFrames * odf::kPageSize >> 20));

  // A process that wants more anonymous memory than the machine has.
  odf::Process& worker = kernel.CreateProcess();
  const uint64_t kWorkload = 24ULL << 20;  // 24 MiB of data through 16 MiB of RAM.
  odf::Vaddr buffer = worker.Mmap(kWorkload, odf::kProtRead | odf::kProtWrite);
  std::printf("\nworker writes %llu MB...\n", (unsigned long long)(kWorkload >> 20));
  for (odf::Vaddr va = buffer; va < buffer + kWorkload; va += odf::kPageSize) {
    worker.StoreU64(va, va);  // Each write may trigger reclaim of colder pages.
  }
  odf::ProcessMemoryReport report = odf::BuildMemoryReport(worker);
  std::printf("after the fill:  %s\n", odf::FormatStatusLine(report).c_str());
  std::printf("reclaim activity: %llu pages swapped out so far\n",
              (unsigned long long)worker.address_space().stats().pages_swapped_out);

  // Re-touch a hot working set; everything must read back correctly via swap-ins.
  std::printf("\nverifying all %llu MB (transparent swap-ins)...\n",
              (unsigned long long)(kWorkload >> 20));
  uint64_t errors = 0;
  for (odf::Vaddr va = buffer; va < buffer + kWorkload; va += odf::kPageSize) {
    if (worker.LoadU64(va) != va) {
      ++errors;
    }
  }
  report = odf::BuildMemoryReport(worker);
  std::printf("verified with %llu errors; %llu swap-in faults\n",
              (unsigned long long)errors,
              (unsigned long long)worker.address_space().stats().swap_in_faults);
  std::printf("after verify:    %s\n", odf::FormatStatusLine(report).c_str());

  // Invariants still hold under pressure.
  odf::AuditResult audit = odf::AuditKernel(kernel);
  std::printf("\nauditor: %s\n", audit.Describe().c_str());

  // Now the OOM killer. Huge pages are unswappable, so two huge-page hogs plus the worker
  // cannot all fit: the kernel first drains the worker to swap, then starts sacrificing the
  // largest processes (the currently-allocating process is immune, as a SIGKILLed caller
  // cannot be simulated).
  std::printf("\nspawning huge-page hogs until the OOM killer must fire...\n");
  odf::Process& hog_a = kernel.CreateProcess();
  odf::Vaddr a_mem = hog_a.Mmap(8ULL << 20, odf::kProtRead | odf::kProtWrite, /*huge=*/true);
  for (uint64_t offset = 0; offset < (8ULL << 20); offset += odf::kHugePageSize) {
    std::byte one{1};
    hog_a.WriteMemory(a_mem + offset, std::span(&one, 1));
  }
  std::printf("hog A resident: 8 MB of huge pages (unswappable)\n");

  odf::Process& hog_b = kernel.CreateProcess();
  odf::Vaddr b_mem = hog_b.Mmap(12ULL << 20, odf::kProtRead | odf::kProtWrite, /*huge=*/true);
  for (uint64_t offset = 0; offset < (12ULL << 20); offset += odf::kHugePageSize) {
    std::byte one{1};
    hog_b.WriteMemory(b_mem + offset, std::span(&one, 1));
  }
  std::printf("hog B resident: 12 MB of huge pages\n");

  auto state_name = [](const odf::Process& process) {
    return process.state() == odf::ProcessState::kRunning ? "running" : "killed";
  };
  std::printf("\nOOM kills: %llu — worker(24MB mapped): %s, hog A(8MB): %s, hog B(12MB): %s\n",
              (unsigned long long)kernel.oom_kills(), state_name(worker), state_name(hog_a),
              state_name(hog_b));
  std::printf("\n(victim order follows mapped size, largest first, sparing the allocating\n"
              "process — the paper's §4 robustness story: faulting processes sleep while\n"
              "the kernel frees pages, and the OOM killer is the last resort)\n");
  return 0;
}
