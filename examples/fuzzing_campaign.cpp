// Example: an AFL-style fork-server fuzzing campaign against the in-sim database (§5.3.1).
// The target is initialized once with a large dataset; every input runs in a forked child.
//
//   ./build/examples/fuzzing_campaign [rows] [seconds] [classic|odf]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/apps/fuzzer.h"

int main(int argc, char** argv) {
  uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  double seconds = argc > 2 ? std::atof(argv[2]) : 5.0;
  odf::ForkMode mode = odf::ForkMode::kOnDemand;
  if (argc > 3 && std::strcmp(argv[3], "classic") == 0) {
    mode = odf::ForkMode::kClassic;
  }

  odf::Kernel kernel;
  odf::Process& parent = kernel.CreateProcess();

  std::printf("initializing target: loading %llu rows...\n", (unsigned long long)rows);
  odf::MiniDb db = odf::MiniDb::Create(kernel, parent, rows * 256 + (256ULL << 20));
  odf::Rng rng(1);
  db.BulkLoadFixture("t", rows, 64, rng);
  std::printf("target ready (%llu MB heap). fuzzing with %s for %.0f s...\n",
              (unsigned long long)(db.heap().Stats().brk >> 20), odf::ForkModeName(mode),
              seconds);

  odf::FuzzerConfig config;
  config.fork_mode = mode;
  odf::ForkServerFuzzer fuzzer(kernel, parent,
                               odf::MakeMiniDbShellTarget(kernel, "t", db.meta_base()),
                               config, odf::MiniDbSeedCorpus());
  fuzzer.RunFor(seconds);

  const odf::FuzzerStats& stats = fuzzer.stats();
  std::printf("\nexecutions:        %llu (%.1f execs/s)\n",
              (unsigned long long)stats.executions, stats.ExecsPerSecond());
  std::printf("covered edges:     %llu\n", (unsigned long long)stats.covered_edges);
  std::printf("corpus size:       %zu (from %zu seeds)\n", fuzzer.corpus_size(),
              odf::MiniDbSeedCorpus().size());
  std::printf("parse errors seen: %llu (robustness: no crashes)\n",
              (unsigned long long)stats.parse_errors);
  std::printf("parent DB intact:  %llu rows\n", (unsigned long long)db.RowCount("t"));
  return 0;
}
