// Example: a fork-based unit-test harness (§5.3.2). The database is initialized once; every
// test then runs in a forked child, so tests always start from a clean, identical state and
// cannot corrupt each other — and with on-demand-fork the fork cost is microseconds even
// against a large database.
//
//   ./build/examples/unit_test_harness [rows]
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "src/apps/minidb.h"
#include "src/util/stopwatch.h"

namespace {

struct TestCase {
  std::string name;
  std::function<bool(odf::MiniDb&)> body;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500000;

  odf::Kernel kernel;
  odf::Process& parent = kernel.CreateProcess();
  parent.set_fork_mode(odf::ForkMode::kOnDemand);  // The procfs-style opt-in.

  odf::Stopwatch init_timer;
  odf::MiniDb db = odf::MiniDb::Create(kernel, parent, rows * 256 + (256ULL << 20));
  odf::Rng rng(1);
  db.BulkLoadFixture("t", rows, 64, rng);
  std::printf("initialized %llu-row database once in %.2f s\n", (unsigned long long)rows,
              init_timer.ElapsedSeconds());

  std::vector<TestCase> tests = {
      {"select_filters_rows",
       [](odf::MiniDb& view) {
         auto row = view.SelectByKey("t", 12345);
         return row.has_value() && row->ints.at(0) >= 0 && row->ints.at(0) < 1000;
       }},
      {"delete_by_condition",
       [](odf::MiniDb& view) {
         if (!view.DeleteByKey("t", 777)) {
           return false;
         }
         return !view.SelectByKey("t", 777).has_value();
       }},
      {"update_by_condition",
       [](odf::MiniDb& view) {
         if (!view.UpdateByKey("t", 4242, -99)) {
           return false;
         }
         return view.SelectByKey("t", 4242)->ints.at(0) == -99;
       }},
      {"insert_does_not_clash",
       [rows](odf::MiniDb& view) {
         odf::RowValue row;
         row.key = static_cast<int64_t>(rows) + 1;
         row.ints.push_back(1);
         row.strings.push_back("fresh");
         return view.Insert("t", row) && view.RowCount("t") == rows + 1;
       }},
      {"deleting_everything_is_isolated",
       [](odf::MiniDb& view) {
         // Even a destructive test cannot hurt the other tests: it runs on a COW clone.
         for (int64_t key = 0; key < 1000; ++key) {
           view.DeleteByKey("t", key);
         }
         return view.SelectByKey("t", 500) == std::nullopt;
       }},
  };

  int failures = 0;
  for (const TestCase& test : tests) {
    odf::Stopwatch fork_timer;
    odf::Process& child = kernel.Fork(parent);  // Uses the configured on-demand-fork.
    double fork_us = fork_timer.ElapsedMicros();

    odf::MiniDb view = odf::MiniDb::Attach(kernel, child, db.meta_base());
    odf::Stopwatch test_timer;
    bool ok = test.body(view);
    double test_us = test_timer.ElapsedMicros();
    kernel.Exit(child, ok ? 0 : 1);
    kernel.Wait(parent);

    std::printf("%-32s %s  (fork %7.1f us, test %9.1f us)\n", test.name.c_str(),
                ok ? "PASS" : "FAIL", fork_us, test_us);
    failures += ok ? 0 : 1;
  }

  std::printf("\n%zu tests, %d failures; parent still has %llu rows (isolation held)\n",
              tests.size(), failures, (unsigned long long)db.RowCount("t"));
  return failures == 0 ? 0 : 1;
}
