// odfsh — an interactive shell over the simulated kernel. Drive processes, memory, both fork
// flavours and the procfs views by hand; read commands from stdin (or pipe a script).
//
//   $ ./build/examples/odfsh
//   odfsh> create
//   pid 1
//   odfsh> mmap 1 1073741824
//   0x10000000 (1024 MB)
//   odfsh> populate 1 0x10000000 1073741824
//   odfsh> fork 1 odf
//   pid 2 (on-demand-fork, 0.012 ms)
//   odfsh> status 2
//   pid 2: VmSize 1048576 kB, VmRSS 1048576 kB, Pss 524288 kB, ...
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "src/proc/kernel.h"
#include "src/proc/procfs.h"
#include "src/util/stopwatch.h"

namespace {

odf::Process* RequireProcess(odf::Kernel& kernel, odf::Pid pid) {
  odf::Process* process = kernel.FindProcess(pid);
  if (process == nullptr) {
    std::printf("no such pid %d\n", pid);
    return nullptr;
  }
  if (process->state() != odf::ProcessState::kRunning) {
    std::printf("pid %d is a zombie\n", pid);
    return nullptr;
  }
  return process;
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  create                                new process -> pid\n"
      "  fork <pid> [classic|odf|odfhuge]      fork a process (default: its configured mode)\n"
      "  mode <pid> <classic|odf|odfhuge>      set the per-process fork mode (procfs knob)\n"
      "  exit <pid>                            terminate a process\n"
      "  wait <pid>                            reap one zombie child of <pid>\n"
      "  mmap <pid> <bytes> [huge]             map anonymous memory -> address\n"
      "  munmap <pid> <hex-addr> <bytes>       unmap a range\n"
      "  populate <pid> <hex-addr> <bytes>     pre-fault a range\n"
      "  write <pid> <hex-addr> <text>         write a string into memory\n"
      "  read <pid> <hex-addr> <bytes>         hex-dump memory (max 64 bytes)\n"
      "  fill <pid> <hex-addr> <bytes> <val>   memset a range\n"
      "  smaps <pid>                           /proc/<pid>/smaps analog\n"
      "  status <pid>                          one-line memory summary\n"
      "  ps                                    list processes\n"
      "  stats                                 allocator / swap / fork counters\n"
      "  memlimit <frames>                     cap simulated RAM (0 = unlimited)\n"
      "  help | quit\n");
}

bool ParseMode(const std::string& word, odf::ForkMode* mode) {
  if (word == "classic") {
    *mode = odf::ForkMode::kClassic;
  } else if (word == "odf") {
    *mode = odf::ForkMode::kOnDemand;
  } else if (word == "odfhuge") {
    *mode = odf::ForkMode::kOnDemandHuge;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main() {
  odf::Kernel kernel;
  std::string line;
  bool interactive = true;
  std::printf("odfsh — type 'help' for commands\n");
  while (true) {
    if (interactive) {
      std::printf("odfsh> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) {
      break;
    }
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }

    if (cmd == "quit" || cmd == "q") {
      break;
    } else if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "create") {
      odf::Process& process = kernel.CreateProcess();
      std::printf("pid %d\n", process.pid());
    } else if (cmd == "fork") {
      odf::Pid pid = -1;
      std::string mode_word;
      in >> pid >> mode_word;
      odf::Process* parent = RequireProcess(kernel, pid);
      if (parent == nullptr) {
        continue;
      }
      odf::ForkMode mode = parent->fork_mode();
      if (!mode_word.empty() && !ParseMode(mode_word, &mode)) {
        std::printf("unknown mode '%s'\n", mode_word.c_str());
        continue;
      }
      odf::Stopwatch sw;
      odf::Process& child = kernel.Fork(*parent, mode);
      std::printf("pid %d (%s, %.3f ms)\n", child.pid(), odf::ForkModeName(mode),
                  sw.ElapsedMillis());
    } else if (cmd == "mode") {
      odf::Pid pid = -1;
      std::string mode_word;
      in >> pid >> mode_word;
      odf::Process* process = RequireProcess(kernel, pid);
      odf::ForkMode mode;
      if (process != nullptr && ParseMode(mode_word, &mode)) {
        process->set_fork_mode(mode);
        std::printf("pid %d now forks with %s\n", pid, odf::ForkModeName(mode));
      }
    } else if (cmd == "exit") {
      odf::Pid pid = -1;
      in >> pid;
      odf::Process* process = RequireProcess(kernel, pid);
      if (process != nullptr) {
        kernel.Exit(*process, 0);
        std::printf("pid %d exited\n", pid);
      }
    } else if (cmd == "wait") {
      odf::Pid pid = -1;
      in >> pid;
      odf::Process* process = RequireProcess(kernel, pid);
      if (process != nullptr) {
        odf::Pid reaped = kernel.Wait(*process);
        std::printf(reaped >= 0 ? "reaped pid %d\n" : "no zombie children (%d)\n", reaped);
      }
    } else if (cmd == "mmap") {
      odf::Pid pid = -1;
      uint64_t bytes = 0;
      std::string huge_word;
      in >> pid >> bytes >> huge_word;
      odf::Process* process = RequireProcess(kernel, pid);
      if (process != nullptr && bytes > 0) {
        odf::Vaddr va = process->Mmap(bytes, odf::kProtRead | odf::kProtWrite,
                                      huge_word == "huge");
        std::printf("0x%llx (%llu MB)\n", (unsigned long long)va,
                    (unsigned long long)(bytes >> 20));
      }
    } else if (cmd == "munmap" || cmd == "populate") {
      odf::Pid pid = -1;
      std::string addr_word;
      uint64_t bytes = 0;
      in >> pid >> addr_word >> bytes;
      odf::Process* process = RequireProcess(kernel, pid);
      if (process == nullptr) {
        continue;
      }
      odf::Vaddr va = std::strtoull(addr_word.c_str(), nullptr, 16);
      if (cmd == "munmap") {
        process->Munmap(va, bytes);
        std::printf("unmapped\n");
      } else {
        process->address_space().PopulateRange(va, bytes);
        std::printf("populated %llu pages\n", (unsigned long long)(bytes / odf::kPageSize));
      }
    } else if (cmd == "write") {
      odf::Pid pid = -1;
      std::string addr_word;
      in >> pid >> addr_word;
      std::string text;
      std::getline(in, text);
      if (!text.empty() && text.front() == ' ') {
        text.erase(0, 1);
      }
      odf::Process* process = RequireProcess(kernel, pid);
      if (process != nullptr) {
        odf::Vaddr va = std::strtoull(addr_word.c_str(), nullptr, 16);
        bool ok = process->WriteMemory(
            va, std::as_bytes(std::span(text.data(), text.size() + 1)));
        std::printf(ok ? "wrote %zu bytes\n" : "SEGV\n", text.size() + 1);
      }
    } else if (cmd == "read") {
      odf::Pid pid = -1;
      std::string addr_word;
      uint64_t bytes = 0;
      in >> pid >> addr_word >> bytes;
      odf::Process* process = RequireProcess(kernel, pid);
      if (process != nullptr) {
        bytes = std::min<uint64_t>(bytes, 64);
        odf::Vaddr va = std::strtoull(addr_word.c_str(), nullptr, 16);
        std::vector<std::byte> buffer(bytes);
        if (!process->ReadMemory(va, buffer)) {
          std::printf("SEGV\n");
        } else {
          for (uint64_t i = 0; i < bytes; ++i) {
            std::printf("%02x%s", static_cast<unsigned>(buffer[i]),
                        (i + 1) % 16 == 0 ? "\n" : " ");
          }
          if (bytes % 16 != 0) {
            std::printf("\n");
          }
        }
      }
    } else if (cmd == "fill") {
      odf::Pid pid = -1;
      std::string addr_word;
      uint64_t bytes = 0;
      unsigned value = 0;
      in >> pid >> addr_word >> bytes >> value;
      odf::Process* process = RequireProcess(kernel, pid);
      if (process != nullptr) {
        odf::Vaddr va = std::strtoull(addr_word.c_str(), nullptr, 16);
        bool ok = process->MemsetMemory(va, static_cast<std::byte>(value), bytes);
        std::printf(ok ? "filled\n" : "SEGV\n");
      }
    } else if (cmd == "smaps" || cmd == "status") {
      odf::Pid pid = -1;
      in >> pid;
      odf::Process* process = RequireProcess(kernel, pid);
      if (process != nullptr) {
        odf::ProcessMemoryReport report = odf::BuildMemoryReport(*process);
        std::printf("%s\n", cmd == "smaps" ? odf::FormatSmaps(report).c_str()
                                           : odf::FormatStatusLine(report).c_str());
      }
    } else if (cmd == "ps") {
      std::printf("%zu processes (%zu running)\n", kernel.ProcessCount(),
                  kernel.RunningProcessCount());
    } else if (cmd == "stats") {
      odf::FrameAllocatorStats frames = kernel.allocator().Stats();
      odf::SwapStats swap = kernel.swap_space().Stats();
      const odf::ForkCounters& forks = kernel.fork_counters();
      std::printf("frames: %llu allocated (%llu tables), %llu MB materialised\n",
                  (unsigned long long)frames.allocated_frames,
                  (unsigned long long)frames.page_table_frames,
                  (unsigned long long)(frames.materialized_bytes >> 20));
      std::printf("swap:   %llu slots in use, %llu writes, %llu reads\n",
                  (unsigned long long)swap.slots_in_use, (unsigned long long)swap.writes,
                  (unsigned long long)swap.reads);
      std::printf("forks:  %llu classic (%llu PTEs copied), %llu on-demand (%llu+%llu tables"
                  " shared), %llu OOM kills\n",
                  (unsigned long long)forks.classic_forks,
                  (unsigned long long)forks.pte_entries_copied,
                  (unsigned long long)forks.on_demand_forks,
                  (unsigned long long)forks.pte_tables_shared,
                  (unsigned long long)forks.pmd_tables_shared,
                  (unsigned long long)kernel.oom_kills());
    } else if (cmd == "memlimit") {
      uint64_t frames = 0;
      in >> frames;
      kernel.SetMemoryLimitFrames(frames);
      std::printf("simulated RAM capped at %llu frames (%llu MB)\n",
                  (unsigned long long)frames, (unsigned long long)(frames * 4 / 1024));
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
