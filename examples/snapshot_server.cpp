// Example: a Redis-style in-memory store that snapshots itself with fork while serving
// traffic — the paper's §5.3.3 scenario as a library user would write it.
//
//   ./build/examples/snapshot_server [keys] [seconds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/apps/kvstore.h"
#include "src/util/latency_recorder.h"
#include "src/util/stopwatch.h"

int main(int argc, char** argv) {
  uint64_t keys = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  double seconds = argc > 2 ? std::atof(argv[2]) : 5.0;

  odf::Kernel kernel;
  odf::Process& server = kernel.CreateProcess();
  // Opt the server into on-demand-fork via the per-process config (the procfs knob):
  // the application code below never mentions the fork mechanism again.
  server.set_fork_mode(odf::ForkMode::kOnDemand);

  odf::KvStore store = odf::KvStore::Create(kernel, server, keys * 1200 + (256ULL << 20));
  odf::Rng rng(1);
  std::printf("loading %llu keys...\n", (unsigned long long)keys);
  store.FillSequential(keys, 1024, rng);
  std::printf("dataset: %llu keys, %llu MB in-heap\n", (unsigned long long)store.Count(),
              (unsigned long long)(store.Stats().bytes_in_heap >> 20));

  odf::LatencyRecorder latency;
  odf::RunningStats fork_block_ms;
  uint64_t writes_since_snapshot = 0;
  uint64_t snapshots = 0;
  std::string value(1024, 'v');

  odf::Stopwatch run;
  uint64_t ops = 0;
  while (run.ElapsedSeconds() < seconds) {
    odf::Stopwatch op;
    std::string key = "key:" + std::to_string(rng.NextBelow(keys));
    if (rng.NextBool()) {
      value[0] = static_cast<char>(rng.Next());
      store.Set(key, value);
      ++writes_since_snapshot;
    } else {
      store.Get(key);
    }
    latency.Record(op.ElapsedMicros());
    ++ops;

    if (writes_since_snapshot >= 10000) {  // Redis default save threshold.
      writes_since_snapshot = 0;
      odf::Stopwatch fork_timer;
      double blocked = store.SnapshotWithFork("/dump.rdb", server.fork_mode());
      fork_block_ms.Add(blocked / 1000.0);
      ++snapshots;
      (void)fork_timer;
    }
  }

  std::printf("\n%llu ops in %.1f s (%.0f ops/s), %llu snapshots\n",
              (unsigned long long)ops, run.ElapsedSeconds(),
              static_cast<double>(ops) / run.ElapsedSeconds(),
              (unsigned long long)snapshots);
  std::printf("request latency: p50=%.1fus p99=%.1fus p99.99=%.1fus max=%.1fus\n",
              latency.PercentileValue(50), latency.PercentileValue(99),
              latency.PercentileValue(99.99), latency.Summary().max);
  if (snapshots > 0) {
    std::printf("fork blocking per snapshot: mean %.3f ms (stddev %.3f)\n",
                fork_block_ms.mean(), fork_block_ms.stddev());
  }
  auto dump = kernel.fs().Lookup("/dump.rdb");
  if (dump != nullptr) {
    std::printf("last snapshot: %llu MB on \"disk\"\n",
                (unsigned long long)(dump->size() >> 20));
  }
  return 0;
}
