// Observability tour: trace an on-demand fork of a 1 GiB process, then dump the ftrace-style
// event log and the /proc/vmstat-style counter snapshot. See docs/observability.md.
//
// Build & run:
//   cmake -B build && cmake --build build && ./build/examples/trace_demo
#include <cstdio>

#include "src/proc/kernel.h"
#include "src/proc/procfs.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

int main() {
  odf::Kernel kernel;

  // 1 GiB of populated anonymous memory: 512 last-level PTE tables.
  odf::Process& parent = kernel.CreateProcess();
  const uint64_t kSize = 1ULL << 30;
  odf::Vaddr buffer = parent.Mmap(kSize, odf::kProtRead | odf::kProtWrite);
  parent.address_space().PopulateRange(buffer, kSize);

  // Trace the fork and the first child write (the deferred COW).
  odf::trace::SetEnabled(true);
  odf::Process& child = kernel.Fork(parent, odf::ForkMode::kOnDemand);
  child.StoreU64(buffer, 42);
  odf::trace::SetEnabled(false);

  // The event log. 512 pte_table_shared events between fork_begin and fork_end, then the
  // child's write: fault_cow_pte_table (table dedication) + fault_cow_page (data copy).
  std::string dump = odf::trace::Tracer::Global().FormatDump();
  std::printf("%s", dump.c_str());

  std::printf("\n--- /proc/vmstat ---\n%s", odf::FormatVmstat(kernel).c_str());

  kernel.Exit(child, 0);
  kernel.Wait(parent);
  kernel.Exit(parent, 0);
  return 0;
}
