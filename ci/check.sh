#!/usr/bin/env bash
# ci/check.sh — the repo's full verification gate. Builds and tests every
# configuration that must stay green, then runs the static checks. Any failure
# exits nonzero; run this before merging.
#
#   ./ci/check.sh            # everything
#   ./ci/check.sh default    # one preset only (any configure-preset name)
#   ODF_CHECK_JOBS=4 ./ci/check.sh
#
# Presets covered (see CMakePresets.json):
#   default       RelWithDebInfo, full ctest suite (the tier-1 gate)
#   asan-ubsan    Debug + ASan/UBSan, full suite
#   tsan          ThreadSanitizer, concurrency-labeled suites
#   fault-inject  RelWithDebInfo + fault injection, full suite (includes torture)
#   debug-vm      invariant checkers armed: VM_BUG_ON, poisoning, lockdep, auto-verify
# Static checks:
#   scripts/odf_lint.py      repo-specific rules (see its docstring)
#   clang-tidy               over src/ when the binary exists (skipped otherwise —
#                            the container image may not ship it)

set -u -o pipefail

cd "$(dirname "$0")/.."

JOBS="${ODF_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}"
ONLY="${1:-}"
FAILURES=()

note() { printf '\n==== %s ====\n' "$*"; }

run_preset() {
  local preset="$1"
  if [[ -n "$ONLY" && "$ONLY" != "$preset" ]]; then
    return 0
  fi
  note "preset $preset: configure"
  if ! cmake --preset "$preset" >/dev/null; then
    FAILURES+=("$preset: configure"); return 1
  fi
  note "preset $preset: build"
  if ! cmake --build --preset "$preset" -j "$JOBS"; then
    FAILURES+=("$preset: build"); return 1
  fi
  note "preset $preset: test"
  if ! ctest --preset "$preset"; then
    FAILURES+=("$preset: test"); return 1
  fi
}

run_preset default

# The reclaim slice again, by itself: `ctest -L reclaim` must stay a usable
# developer entry point (docs/reclaim.md), so CI exercises the label filter too.
if [[ -z "$ONLY" || "$ONLY" == "default" ]]; then
  note "reclaim label (default preset)"
  if ! ctest --test-dir build -L reclaim --output-on-failure; then
    FAILURES+=("reclaim label")
  fi
fi

# Flight recorder + deterministic replay (docs/replay.md): the labeled suite, then the
# end-to-end determinism gate — record a mixed fork/fault/reclaim workload, replay it
# against a fresh kernel, and fail on any divergence in op outcomes, final memory digests,
# refcounts, or vmstat counters.
if [[ -z "$ONLY" || "$ONLY" == "default" ]]; then
  note "replay label (default preset)"
  if ! ctest --test-dir build -L replay --output-on-failure; then
    FAILURES+=("replay label")
  fi
  note "replay determinism gate (odf-replay selftest)"
  if ! ./build/src/replay/odf-replay selftest build/odf-replay-selftest.odflog; then
    FAILURES+=("replay selftest")
  fi
fi

# Lock-sharding smoke (docs/performance.md "Lock sharding & TLB generations"): the fig09b
# bench in fast mode drives K faulting threads in parallel over disjoint ranges of ONE
# shared address space — a multi-threaded end-to-end pass through the sharded AS locks,
# epoch-guarded walks, and TLB generations that the unit suites exercise piecewise. Any
# refcount/ordering bug on those paths trips an ODF_CHECK/AllFree abort here.
if [[ -z "$ONLY" || "$ONLY" == "default" ]]; then
  note "fig09b multi-thread smoke (default preset, ODF_BENCH_FAST=1)"
  if ! ODF_BENCH_FAST=1 ODF_BENCH_JSON=0 ./build/bench/fig09b_concurrent_faults; then
    FAILURES+=("fig09b smoke")
  fi
fi

# Memory failure (docs/memory-failure.md): the labeled suite by itself — hard/soft
# offline, containment through shared ODF tables, quarantine permanence, the poisoned-PTE
# fault contract — must stay a usable developer entry point like the other labels.
if [[ -z "$ONLY" || "$ONLY" == "default" ]]; then
  note "hwpoison label (default preset)"
  if ! ctest --test-dir build -L hwpoison --output-on-failure; then
    FAILURES+=("hwpoison label")
  fi
fi

# The recorder must stay fully compileable-out: -DODF_REPLAY=OFF folds every OpScope to
# nothing, and the tree (library, benches, tests) still builds. Build-only — the runtime
# suites run with the recorder compiled in above.
if [[ -z "$ONLY" || "$ONLY" == "replay-off" ]]; then
  note "replay-off: configure + build (-DODF_REPLAY=OFF)"
  if ! cmake -B build-replay-off -DCMAKE_BUILD_TYPE=RelWithDebInfo -DODF_REPLAY=OFF >/dev/null; then
    FAILURES+=("replay-off: configure")
  elif ! cmake --build build-replay-off -j "$JOBS"; then
    FAILURES+=("replay-off: build")
  fi
fi

# Memory failure must stay compileable-out the same way: -DODF_MEMORY_FAILURE=OFF makes
# the offline entry points return kNotSupported and drops the ECC hook, and the tree
# still builds. Build-only — the runtime suites run with the subsystem compiled in above.
if [[ -z "$ONLY" || "$ONLY" == "mf-off" ]]; then
  note "mf-off: configure + build (-DODF_MEMORY_FAILURE=OFF)"
  if ! cmake -B build-mf-off -DCMAKE_BUILD_TYPE=RelWithDebInfo -DODF_MEMORY_FAILURE=OFF >/dev/null; then
    FAILURES+=("mf-off: configure")
  elif ! cmake --build build-mf-off -j "$JOBS"; then
    FAILURES+=("mf-off: build")
  fi
fi

# Static lock-discipline verification (docs/debugging.md): when a clang++ is on PATH,
# build the default configuration with the thread-safety analysis promoted to errors —
# every GUARDED_BY/REQUIRES/scoped-capability contract in the tree is checked at compile
# time — then run the negative-compile harness, which proves the gate actually rejects
# the six violation classes (and accepts the positive control). Both self-skip on
# GCC-only containers; the annotations compile to nothing there.
if [[ -z "$ONLY" || "$ONLY" == "thread-safety" ]]; then
  if command -v clang++ >/dev/null 2>&1; then
    note "thread-safety: clang build with -Werror=thread-safety"
    if ! cmake -B build-clang-tsa -DCMAKE_BUILD_TYPE=RelWithDebInfo \
         -DCMAKE_CXX_COMPILER=clang++ -DODF_THREAD_SAFETY_ANALYSIS=ON >/dev/null; then
      FAILURES+=("thread-safety: configure")
    elif ! cmake --build build-clang-tsa -j "$JOBS"; then
      FAILURES+=("thread-safety: build")
    fi
  else
    echo "clang++ not installed; skipping -Werror=thread-safety build (GCC ignores the annotations)"
  fi
  note "thread-safety: negative-compile harness"
  bash tests/negative_compile/run.sh
  NEG_STATUS=$?
  if [[ $NEG_STATUS -ne 0 && $NEG_STATUS -ne 77 ]]; then
    FAILURES+=("thread-safety: negative-compile harness")
  fi
fi

run_preset asan-ubsan
# The tsan preset IS the concurrency-under-TSan gate: its ctest preset filters to the
# `concurrency` label (frame_cache_test, concurrency_test — the disjoint-fault/overlapping-
# fork/kswapd stress and the concurrent-replay determinism test ride on that label).
run_preset tsan
run_preset fault-inject
run_preset debug-vm

if [[ -z "$ONLY" || "$ONLY" == "lint" ]]; then
  note "odf_lint"
  if ! python3 scripts/odf_lint.py; then
    FAILURES+=("odf_lint")
  fi

  note "clang-tidy"
  if command -v clang-tidy >/dev/null 2>&1; then
    # compile_commands.json comes from the default preset, which configures with
    # CMAKE_EXPORT_COMPILE_COMMANDS=ON — no separate reconfigure. Generate it first
    # if this invocation runs the lint slice alone.
    if [[ ! -f build/compile_commands.json ]] && ! cmake --preset default >/dev/null; then
      FAILURES+=("clang-tidy: configure")
    else
      mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
      if ! clang-tidy -p build --quiet "${TIDY_SOURCES[@]}"; then
        FAILURES+=("clang-tidy")
      fi
    fi
  else
    echo "clang-tidy not installed; skipping (install it to enable this gate)"
  fi
fi

if ((${#FAILURES[@]})); then
  note "FAILED"
  printf '  %s\n' "${FAILURES[@]}"
  exit 1
fi
note "all checks passed"
