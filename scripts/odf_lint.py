#!/usr/bin/env python3
"""odf_lint: repo-specific static checks for the odf simulated kernel.

These rules complement the Clang thread-safety analysis (-Werror=thread-safety,
see docs/debugging.md "Static lock-discipline analysis"): the capability
annotations in src/util/thread_annotations.h prove hold-contracts the compiler
can see; the rules below encode the protocols it cannot — cross-function
ordering, epoch-guarded walks, and which directory owns which primitive.

Rules (each suppressible per line with `// odf-lint: allow(<rule>)` on the
offending line or the line above it — always with a reason):

  raw-refcount
      PageMeta::refcount / PageMeta::pt_share_count may only be *mutated* inside
      src/phys/ (the FrameAllocator IncRef/DecRef/AddRefs/IncPtShare/DecPtShare
      family and their batch variants). Everywhere else a raw fetch_add/store on
      those counters bypasses the debug-vm underflow/saturation/freed-frame
      checks and the lockless-correctness story documented on the allocator API.

  naked-lock
      In the mm-critical directories (src/phys, src/pt, src/mm, src/core,
      src/proc, src/fs) plain std::lock_guard / unique_lock / scoped_lock /
      mutex.lock() are forbidden: those locks form the deadlock-relevant graph,
      so acquisitions must go through odf::debug::MutexGuard, which feeds the
      lockdep cycle detector in debug-vm builds (and compiles to exactly a
      std::lock_guard otherwise). Infrastructure below or beside the mm layer
      (src/util, src/trace, src/fi, src/debug itself) is exempt.

  raw-std-mutex
      Outside src/util/, lock primitives must be the annotated wrappers
      (odf::util::Mutex, SharedMutex, CondVar, MutexLock, ...): a raw
      std::mutex / std::shared_mutex / std::condition_variable or a std::
      lock adapter is invisible to the Clang thread-safety analysis, so
      every GUARDED_BY/REQUIRES contract downstream of it silently stops
      being checked. src/util/ itself is exempt — that is where the wrappers
      bottom out on the std primitives.

  lockfree-walk-guard
      A call to Walker::TranslateLockFree must sit inside a PtEpoch::ReadGuard
      scope (the guard must appear within the preceding lines of the call).
      The lock-free walk dereferences page-table frames that a concurrent
      unmap may retire; only the epoch guard keeps retired tables backed until
      the walk is out (src/pt/mm_locks.h). The compiler enforces this too
      (ODF_REQUIRES_SHARED(PtEpoch::Global())) when building with Clang; this
      rule keeps the contract checked under GCC-only containers.

  gen-before-free
      In src/mm/ and src/reclaim/, dropping frame references after rewriting
      page-table entries (allocator.DecRef / DecRefBatch following a
      StoreEntry in the same function) requires a generation bump — a TLB
      Invalidate*/FlushAll or an MmLockTable Bump* — between the rewrite and
      the drop. "Gen before free" is the one load-bearing invariant of the
      lock-free read protocol (src/pt/mm_locks.h): a reader that pinned the
      old frame must fail its generation recheck before the frame can be
      freed and recycled. Paths exempt by construction (never-published
      frames, exclusive-gate eviction with a deferred flush) carry an allow
      with the argument.

  trace-outside-guard
      trace::Emit may only be called from the ODF_TRACE macro (src/trace). A
      direct call elsewhere records unconditionally, survives -DODF_TRACE=OFF
      builds, and breaks the zero-cost compile-out guarantee. (trace::Enabled
      is fine to call directly: it is constexpr false when compiled out.)

  missing-nodiscard
      A header-declared function whose unqualified name starts with `Try` and
      which returns non-void is a fallible API by repo convention (it reports
      failure through its return value — see docs/robustness.md). The
      declaration must carry [[nodiscard]] so ignoring the failure is a compile
      warning, not a silent leak.

  direct-writeback
      SwapSpace::TryWriteOut may only be called from src/reclaim/ and
      src/mm/swap.cc. Everywhere else, pushing a page to swap must go through
      the reclaim shrinker: a direct write-out bypasses the rmap broadcast
      (other mappings keep referencing the freed frame), the LRU bookkeeping,
      and the workingset shadow recording (docs/reclaim.md).

  table-mutex
      Kernel::table_mutex_ may only be named inside src/proc/kernel.cc (and its
      declaration in src/proc/kernel.h). After the lock-sharding refactor it
      protects exactly the pid -> Process map; any other file reaching for it is
      re-growing the global MM lock the sharded MmLockTable/MmGate design
      removed (docs/performance.md "Lock sharding & TLB generations").

  hwpoison-flag
      The poison/quarantine state machine (docs/memory-failure.md) has exactly
      two mutation surfaces: FrameAllocator::MarkHwPoison may be called from
      src/phys/ and the src/mf/ offline paths, and QuarantineLocked plus raw
      writes of kPageFlagHwPoison into PageMeta::flags belong to src/phys/
      alone. Anywhere else, setting the flag by hand skips the counter
      bookkeeping, the free-list diversion, and the allocated-vs-free
      quarantine timing the verifier's bijection checks depend on.

Output: one line per finding, `file:line:col: rule-id: message` (the format
compilers and editors parse), or a JSON array with --json. Fixture files under
tests/lint_fixtures/ are skipped by the default tree scan (they exist to be
dirty — tests/lint_selftest.py lints them explicitly).

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned at all (relative to the repo root).
SCAN_DIRS = ("src", "tests", "bench", "examples")

# Deliberately-dirty inputs: lint fixtures (tests/lint_selftest.py lints them
# explicitly) and the thread-safety negative-compile cases. Never part of the scan.
FIXTURE_DIR_NAME = "lint_fixtures"
EXCLUDED_DIR_NAMES = ("lint_fixtures", "negative_compile")

# naked-lock applies only where the mm lock graph lives.
LOCK_CHECKED_DIRS = (
    "src/phys",
    "src/pt",
    "src/mm",
    "src/core",
    "src/proc",
    "src/fs",
    "src/reclaim",
)

# gen-before-free applies where entry-rewrite-then-free sequences live.
GEN_CHECKED_DIRS = ("src/mm", "src/reclaim")

# direct-writeback: the only places allowed to push pages to the swap device.
WRITEBACK_ALLOWED = ("src/reclaim/", "src/mm/swap.cc")

ALLOW_RE = re.compile(r"//\s*odf-lint:\s*allow\(([a-z-]+)\)")

RAW_REFCOUNT_RE = re.compile(
    r"\.(?:refcount|pt_share_count)\s*\.\s*"
    r"(?:fetch_add|fetch_sub|store|exchange|compare_exchange\w*)\s*\("
)

NAKED_LOCK_RE = re.compile(
    r"std::(?:lock_guard|unique_lock|scoped_lock)\b|\.\s*(?:lock|unlock)\s*\(\s*\)"
)

# raw-std-mutex: the un-annotated primitives and their adapters.
RAW_STD_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_timed_mutex|condition_variable(?:_any)?|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock)\b"
)

# lockfree-walk-guard: a call site (never the qualified definition, which has no
# object expression). The guard must appear within this many preceding lines.
LOCKFREE_CALL_RE = re.compile(r"(?:\.|->)\s*TranslateLockFree\s*\(")
LOCKFREE_GUARD_RE = re.compile(r"\bPtEpoch::ReadGuard\b")
LOCKFREE_LOOKBACK = 30

# gen-before-free: a frame-reference drop through the allocator...
GEN_FREE_RE = re.compile(r"\ballocator\s*(?:\.|->)\s*(?:DecRef|DecRefBatch)\s*\(")
# ... preceded in the same function by an entry rewrite ...
GEN_STORE_RE = re.compile(r"\bStoreEntry\s*\(")
# ... with no generation bump in between.
GEN_BUMP_RE = re.compile(
    r"\b(?:InvalidatePage|InvalidateRange|FlushAll|BumpShard|BumpRange|BumpAll)\s*\("
)
GEN_LOOKBACK = 60

TRACE_CALL_RE = re.compile(r"\btrace::Emit\s*\(")

WRITEBACK_RE = re.compile(r"(?:\.|->)TryWriteOut\s*\(")

# table-mutex: the process-table lock stays narrow; only kernel.cc may take it.
TABLE_MUTEX_RE = re.compile(r"\btable_mutex_\b")
TABLE_MUTEX_ALLOWED = ("src/proc/kernel.cc", "src/proc/kernel.h")

# hwpoison-flag: MarkHwPoison is the src/mf-facing accessor; QuarantineLocked and raw
# flag writes are allocator-internal.
HWPOISON_MARK_RE = re.compile(r"\bMarkHwPoison\s*\(")
HWPOISON_INTERNAL_RE = re.compile(
    r"\bQuarantineLocked\s*\(|\bflags\b[^=<>!()]*=[^=].*kPageFlagHwPoison"
)

# A Try* declaration line in a header: a return type token sequence followed by an
# UNqualified TryXxx( — qualified names (Foo::TryXxx) are definitions, and `.Try`/`->Try`
# are calls; neither takes the attribute.
TRY_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+)*"
    r"(?P<ret>[A-Za-z_][A-Za-z0-9_:<>,\s*&]*?)\s+"
    r"(?P<name>Try[A-Z][A-Za-z0-9]*)\s*\("
)

# Function-boundary heuristic for backward scans: a closing brace or a definition
# opener at column zero ends the walk.
FUNC_BOUNDARY_RE = re.compile(r"^[}»]|^[A-Za-z_].*\)\s*(?:const\s*)?\{?\s*$")


def strip_strings_and_line_comment(line):
    """Crude but sufficient: drop string literals, then anything after //."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def allowed(rule, lines, index):
    """True when line `index` (0-based) or the one above carries an allow for `rule`."""
    for i in (index, index - 1):
        if i < 0:
            continue
        match = ALLOW_RE.search(lines[i])
        if match and match.group(1) == rule:
            return True
    return False


def column_of(regex, raw, code):
    """1-based column of the first match, preferring the raw line (exact editor
    position) and falling back to the comment-stripped one."""
    match = regex.search(raw)
    if match is None:
        match = regex.search(code)
    return (match.start() + 1) if match else 1


def lint_file(rel_path, findings):
    path = os.path.join(REPO_ROOT, rel_path)
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    in_lock_dir = any(
        rel_path.startswith(d + os.sep) or rel_path.startswith(d + "/")
        for d in LOCK_CHECKED_DIRS
    )
    in_gen_dir = any(
        rel_path.startswith(d + os.sep) or rel_path.startswith(d + "/")
        for d in GEN_CHECKED_DIRS
    )
    in_phys = rel_path.startswith("src/phys/")
    in_mf = rel_path.startswith("src/mf/")
    in_trace = rel_path.startswith("src/trace/")
    in_debug = rel_path.startswith("src/debug/")
    in_util = rel_path.startswith("src/util/")
    is_fixture = FIXTURE_DIR_NAME in rel_path.split(os.sep) or (
        FIXTURE_DIR_NAME in rel_path.split("/")
    )
    writeback_ok = any(
        rel_path.startswith(d) if d.endswith("/") else rel_path == d
        for d in WRITEBACK_ALLOWED
    )
    is_header = rel_path.endswith(".h")

    # Fixtures opt into every directory-scoped rule so one file can exercise each.
    if is_fixture:
        in_lock_dir = in_gen_dir = True
        in_phys = in_mf = in_trace = in_debug = in_util = False
        writeback_ok = False

    # Pre-strip every line once: the backward-scanning rules need the stripped view
    # of earlier lines too (a "StoreEntry" in a comment must not count).
    stripped = []
    in_block_comment = False
    for raw in lines:
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                stripped.append("")
                continue
            line = line[end + 2:]
            in_block_comment = False
        if "/*" in line and "*/" not in line[line.find("/*"):]:
            line = line[: line.find("/*")]
            in_block_comment = True
        stripped.append(strip_strings_and_line_comment(line))

    for index, raw in enumerate(lines):
        code = stripped[index]
        if not code.strip():
            continue

        def report(rule, message, col):
            if not allowed(rule, lines, index):
                findings.append((rel_path, index + 1, col, rule, message))

        if not in_phys and RAW_REFCOUNT_RE.search(code):
            report(
                "raw-refcount",
                "raw refcount/pt_share_count mutation outside src/phys/ — use the "
                "FrameAllocator IncRef/DecRef/AddRefs/IncPtShare/DecPtShare APIs",
                column_of(RAW_REFCOUNT_RE, raw, code),
            )

        if in_lock_dir and NAKED_LOCK_RE.search(code):
            report(
                "naked-lock",
                "naked mutex primitive in an mm-critical directory — use "
                "odf::debug::MutexGuard so lockdep sees the acquisition",
                column_of(NAKED_LOCK_RE, raw, code),
            )

        if not in_util and RAW_STD_MUTEX_RE.search(code):
            report(
                "raw-std-mutex",
                "raw std lock primitive outside src/util/ — use odf::util::Mutex / "
                "SharedMutex / CondVar / MutexLock so the Clang thread-safety "
                "analysis sees the capability",
                column_of(RAW_STD_MUTEX_RE, raw, code),
            )

        if LOCKFREE_CALL_RE.search(code):
            lo = max(0, index - LOCKFREE_LOOKBACK)
            guarded = any(
                LOCKFREE_GUARD_RE.search(stripped[i]) for i in range(lo, index)
            )
            if not guarded:
                report(
                    "lockfree-walk-guard",
                    "TranslateLockFree call without a PtEpoch::ReadGuard in the "
                    "preceding lines — the lock-free walk may dereference retired "
                    "page-table frames (src/pt/mm_locks.h)",
                    column_of(LOCKFREE_CALL_RE, raw, code),
                )

        if in_gen_dir and not is_header and GEN_FREE_RE.search(code):
            rewrote = False
            bumped_since_rewrite = False
            lo = max(0, index - GEN_LOOKBACK)
            for i in range(index - 1, lo - 1, -1):
                prev = stripped[i]
                if FUNC_BOUNDARY_RE.match(prev):
                    break
                if GEN_STORE_RE.search(prev):
                    rewrote = True
                    break  # Closest rewrite found; bumps scanned on the way here.
                if GEN_BUMP_RE.search(prev):
                    bumped_since_rewrite = True
            if rewrote and not bumped_since_rewrite:
                report(
                    "gen-before-free",
                    "frame references dropped after a StoreEntry with no generation "
                    "bump in between — bump the covered shard (TLB Invalidate*/"
                    "FlushAll) before the free so lock-free readers fail their "
                    "recheck (gen-before-free, src/pt/mm_locks.h)",
                    column_of(GEN_FREE_RE, raw, code),
                )

        if not in_trace and TRACE_CALL_RE.search(code):
            report(
                "trace-outside-guard",
                "direct trace::Emit call outside src/trace — use the "
                "ODF_TRACE macro (compile-guarded and Enabled()-gated)",
                column_of(TRACE_CALL_RE, raw, code),
            )

        if rel_path not in TABLE_MUTEX_ALLOWED and TABLE_MUTEX_RE.search(code):
            report(
                "table-mutex",
                "Kernel::table_mutex_ referenced outside src/proc/kernel.cc — the "
                "process-table lock protects only the pid map; MM state is guarded "
                "by the per-AS MmLockTable and reclaim::MmGate",
                column_of(TABLE_MUTEX_RE, raw, code),
            )

        if not writeback_ok and WRITEBACK_RE.search(code):
            report(
                "direct-writeback",
                "direct SwapSpace::TryWriteOut call outside src/reclaim/ — evict "
                "through the shrinker so rmap, LRU, and workingset state stay "
                "consistent",
                column_of(WRITEBACK_RE, raw, code),
            )

        if not (in_phys or in_mf) and HWPOISON_MARK_RE.search(code):
            report(
                "hwpoison-flag",
                "MarkHwPoison call outside src/phys/ and src/mf/ — poisoning a "
                "frame without the offline protocol leaves mappings pointing at "
                "a quarantine-bound frame",
                column_of(HWPOISON_MARK_RE, raw, code),
            )
        if not in_phys and HWPOISON_INTERNAL_RE.search(code):
            report(
                "hwpoison-flag",
                "quarantine/poison-flag mutation outside src/phys/ — go through "
                "FrameAllocator::MarkHwPoison so the counters, free-list "
                "diversion, and verifier bijection stay consistent",
                column_of(HWPOISON_INTERNAL_RE, raw, code),
            )

        if is_header and not in_debug:
            decl = TRY_DECL_RE.match(code)
            specifiers = ("void", "return", "explicit", "static", "inline",
                          "virtual", "constexpr")
            if decl and decl.group("ret").split()[-1] not in specifiers:
                has_attr = "[[nodiscard]]" in raw or (
                    index > 0 and "[[nodiscard]]" in lines[index - 1]
                )
                if not has_attr:
                    report(
                        "missing-nodiscard",
                        f"fallible API {decl.group('name')}() returns a value but is "
                        "not [[nodiscard]]",
                        decl.start("name") + 1,
                    )


def collect_files():
    for top in SCAN_DIRS:
        base = os.path.join(REPO_ROOT, top)
        if not os.path.isdir(base):
            continue
        for root, dirs, names in os.walk(base):
            dirs[:] = [d for d in dirs if d not in EXCLUDED_DIR_NAMES]
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    yield os.path.relpath(os.path.join(root, name), REPO_ROOT)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="specific files (default: whole tree)")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array of "
        "{file, line, col, rule, message} objects",
    )
    args = parser.parse_args()

    files = args.files or sorted(collect_files())
    findings = []
    for rel_path in files:
        if not os.path.isfile(os.path.join(REPO_ROOT, rel_path)):
            print(f"odf_lint: no such file: {rel_path}", file=sys.stderr)
            return 2
        lint_file(rel_path, findings)

    if args.json:
        print(
            json.dumps(
                [
                    {
                        "file": rel_path,
                        "line": line,
                        "col": col,
                        "rule": rule,
                        "message": message,
                    }
                    for rel_path, line, col, rule, message in findings
                ],
                indent=2,
            )
        )
        return 1 if findings else 0

    for rel_path, line, col, rule, message in findings:
        print(f"{rel_path}:{line}:{col}: {rule}: {message}")
    if findings:
        print(f"odf_lint: {len(findings)} finding(s) in {len(files)} file(s)")
        return 1
    print(f"odf_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
