#!/usr/bin/env python3
"""odf_lint: repo-specific static checks for the odf simulated kernel.

Rules (each suppressible per line with `// odf-lint: allow(<rule>)` on the
offending line or the line above it — always with a reason):

  raw-refcount
      PageMeta::refcount / PageMeta::pt_share_count may only be *mutated* inside
      src/phys/ (the FrameAllocator IncRef/DecRef/AddRefs/IncPtShare/DecPtShare
      family and their batch variants). Everywhere else a raw fetch_add/store on
      those counters bypasses the debug-vm underflow/saturation/freed-frame
      checks and the lockless-correctness story documented on the allocator API.

  naked-lock
      In the mm-critical directories (src/phys, src/pt, src/mm, src/core,
      src/proc, src/fs) plain std::lock_guard / unique_lock / scoped_lock /
      mutex.lock() are forbidden: those locks form the deadlock-relevant graph,
      so acquisitions must go through odf::debug::MutexGuard, which feeds the
      lockdep cycle detector in debug-vm builds (and compiles to exactly a
      std::lock_guard otherwise). Infrastructure below or beside the mm layer
      (src/util, src/trace, src/fi, src/debug itself) is exempt.

  trace-outside-guard
      trace::Emit may only be called from the ODF_TRACE macro (src/trace). A
      direct call elsewhere records unconditionally, survives -DODF_TRACE=OFF
      builds, and breaks the zero-cost compile-out guarantee. (trace::Enabled
      is fine to call directly: it is constexpr false when compiled out.)

  missing-nodiscard
      A header-declared function whose unqualified name starts with `Try` and
      which returns non-void is a fallible API by repo convention (it reports
      failure through its return value — see docs/robustness.md). The
      declaration must carry [[nodiscard]] so ignoring the failure is a compile
      warning, not a silent leak.

  direct-writeback
      SwapSpace::TryWriteOut may only be called from src/reclaim/ and
      src/mm/swap.cc. Everywhere else, pushing a page to swap must go through
      the reclaim shrinker: a direct write-out bypasses the rmap broadcast
      (other mappings keep referencing the freed frame), the LRU bookkeeping,
      and the workingset shadow recording (docs/reclaim.md).

  table-mutex
      Kernel::table_mutex_ may only be named inside src/proc/kernel.cc (and its
      declaration in src/proc/kernel.h). After the lock-sharding refactor it
      protects exactly the pid -> Process map; any other file reaching for it is
      re-growing the global MM lock the sharded MmLockTable/MmGate design
      removed (docs/performance.md "Lock sharding & TLB generations").

  hwpoison-flag
      The poison/quarantine state machine (docs/memory-failure.md) has exactly
      two mutation surfaces: FrameAllocator::MarkHwPoison may be called from
      src/phys/ and the src/mf/ offline paths, and QuarantineLocked plus raw
      writes of kPageFlagHwPoison into PageMeta::flags belong to src/phys/
      alone. Anywhere else, setting the flag by hand skips the counter
      bookkeeping, the free-list diversion, and the allocated-vs-free
      quarantine timing the verifier's bijection checks depend on.

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned at all (relative to the repo root).
SCAN_DIRS = ("src", "tests", "bench", "examples")

# naked-lock applies only where the mm lock graph lives.
LOCK_CHECKED_DIRS = (
    "src/phys",
    "src/pt",
    "src/mm",
    "src/core",
    "src/proc",
    "src/fs",
    "src/reclaim",
)

# direct-writeback: the only places allowed to push pages to the swap device.
WRITEBACK_ALLOWED = ("src/reclaim/", "src/mm/swap.cc")

ALLOW_RE = re.compile(r"//\s*odf-lint:\s*allow\(([a-z-]+)\)")

RAW_REFCOUNT_RE = re.compile(
    r"\.(?:refcount|pt_share_count)\s*\.\s*"
    r"(?:fetch_add|fetch_sub|store|exchange|compare_exchange\w*)\s*\("
)

NAKED_LOCK_RE = re.compile(
    r"std::(?:lock_guard|unique_lock|scoped_lock)\b|\.\s*(?:lock|unlock)\s*\(\s*\)"
)

TRACE_CALL_RE = re.compile(r"\btrace::Emit\s*\(")

WRITEBACK_RE = re.compile(r"(?:\.|->)TryWriteOut\s*\(")

# table-mutex: the process-table lock stays narrow; only kernel.cc may take it.
TABLE_MUTEX_RE = re.compile(r"\btable_mutex_\b")
TABLE_MUTEX_ALLOWED = ("src/proc/kernel.cc", "src/proc/kernel.h")

# hwpoison-flag: MarkHwPoison is the src/mf-facing accessor; QuarantineLocked and raw
# flag writes are allocator-internal.
HWPOISON_MARK_RE = re.compile(r"\bMarkHwPoison\s*\(")
HWPOISON_INTERNAL_RE = re.compile(
    r"\bQuarantineLocked\s*\(|\bflags\b[^=<>!()]*=[^=].*kPageFlagHwPoison"
)

# A Try* declaration line in a header: a return type token sequence followed by an
# UNqualified TryXxx( — qualified names (Foo::TryXxx) are definitions, and `.Try`/`->Try`
# are calls; neither takes the attribute.
TRY_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+)*"
    r"(?P<ret>[A-Za-z_][A-Za-z0-9_:<>,\s*&]*?)\s+"
    r"(?P<name>Try[A-Z][A-Za-z0-9]*)\s*\("
)


def strip_strings_and_line_comment(line):
    """Crude but sufficient: drop string literals, then anything after //."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def allowed(rule, lines, index):
    """True when line `index` (0-based) or the one above carries an allow for `rule`."""
    for i in (index, index - 1):
        if i < 0:
            continue
        match = ALLOW_RE.search(lines[i])
        if match and match.group(1) == rule:
            return True
    return False


def lint_file(rel_path, findings):
    path = os.path.join(REPO_ROOT, rel_path)
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    in_lock_dir = any(
        rel_path.startswith(d + os.sep) or rel_path.startswith(d + "/")
        for d in LOCK_CHECKED_DIRS
    )
    in_phys = rel_path.startswith("src/phys/")
    in_mf = rel_path.startswith("src/mf/")
    in_trace = rel_path.startswith("src/trace/")
    in_debug = rel_path.startswith("src/debug/")
    writeback_ok = any(
        rel_path.startswith(d) if d.endswith("/") else rel_path == d
        for d in WRITEBACK_ALLOWED
    )
    is_header = rel_path.endswith(".h")

    in_block_comment = False
    for index, raw in enumerate(lines):
        line = raw
        # Track /* ... */ blocks so commented-out code does not trip the rules.
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        if "/*" in line and "*/" not in line[line.find("/*"):]:
            line = line[: line.find("/*")]
            in_block_comment = True
        code = strip_strings_and_line_comment(line)
        if not code.strip():
            continue

        def report(rule, message):
            if not allowed(rule, lines, index):
                findings.append((rel_path, index + 1, rule, message))

        if not in_phys and RAW_REFCOUNT_RE.search(code):
            report(
                "raw-refcount",
                "raw refcount/pt_share_count mutation outside src/phys/ — use the "
                "FrameAllocator IncRef/DecRef/AddRefs/IncPtShare/DecPtShare APIs",
            )

        if in_lock_dir and NAKED_LOCK_RE.search(code):
            report(
                "naked-lock",
                "naked mutex primitive in an mm-critical directory — use "
                "odf::debug::MutexGuard so lockdep sees the acquisition",
            )

        if not in_trace and TRACE_CALL_RE.search(code):
            report(
                "trace-outside-guard",
                "direct trace::Emit call outside src/trace — use the "
                "ODF_TRACE macro (compile-guarded and Enabled()-gated)",
            )

        if rel_path not in TABLE_MUTEX_ALLOWED and TABLE_MUTEX_RE.search(code):
            report(
                "table-mutex",
                "Kernel::table_mutex_ referenced outside src/proc/kernel.cc — the "
                "process-table lock protects only the pid map; MM state is guarded "
                "by the per-AS MmLockTable and reclaim::MmGate",
            )

        if not writeback_ok and WRITEBACK_RE.search(code):
            report(
                "direct-writeback",
                "direct SwapSpace::TryWriteOut call outside src/reclaim/ — evict "
                "through the shrinker so rmap, LRU, and workingset state stay "
                "consistent",
            )

        if not (in_phys or in_mf) and HWPOISON_MARK_RE.search(code):
            report(
                "hwpoison-flag",
                "MarkHwPoison call outside src/phys/ and src/mf/ — poisoning a "
                "frame without the offline protocol leaves mappings pointing at "
                "a quarantine-bound frame",
            )
        if not in_phys and HWPOISON_INTERNAL_RE.search(code):
            report(
                "hwpoison-flag",
                "quarantine/poison-flag mutation outside src/phys/ — go through "
                "FrameAllocator::MarkHwPoison so the counters, free-list "
                "diversion, and verifier bijection stay consistent",
            )

        if is_header and not in_debug:
            decl = TRY_DECL_RE.match(code)
            if decl and decl.group("ret").split()[-1] not in ("void", "return"):
                has_attr = "[[nodiscard]]" in raw or (
                    index > 0 and "[[nodiscard]]" in lines[index - 1]
                )
                if not has_attr:
                    report(
                        "missing-nodiscard",
                        f"fallible API {decl.group('name')}() returns a value but is "
                        "not [[nodiscard]]",
                    )


def collect_files():
    for top in SCAN_DIRS:
        base = os.path.join(REPO_ROOT, top)
        if not os.path.isdir(base):
            continue
        for root, _dirs, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    yield os.path.relpath(os.path.join(root, name), REPO_ROOT)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="specific files (default: whole tree)")
    args = parser.parse_args()

    files = args.files or sorted(collect_files())
    findings = []
    for rel_path in files:
        if not os.path.isfile(os.path.join(REPO_ROOT, rel_path)):
            print(f"odf_lint: no such file: {rel_path}", file=sys.stderr)
            return 2
        lint_file(rel_path, findings)

    for rel_path, line, rule, message in findings:
        print(f"{rel_path}:{line}: [{rule}] {message}")
    if findings:
        print(f"odf_lint: {len(findings)} finding(s) in {len(files)} file(s)")
        return 1
    print(f"odf_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
