#include "src/replay/log.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace odf {

const char* OpKindName(OpKind kind) {
  static constexpr const char* kNames[] = {
#define ODF_REPLAY_OP_NAME(name) #name,
      ODF_REPLAY_OP_LIST(ODF_REPLAY_OP_NAME)
#undef ODF_REPLAY_OP_NAME
  };
  size_t index = static_cast<size_t>(kind);
  return index < kOpKindCount ? kNames[index] : "?";
}

namespace replay {

void PutVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

bool ByteReader::ReadVarint(uint64_t* out) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= bytes_.size()) {
      return false;
    }
    uint8_t byte = bytes_[pos_++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
  }
  return false;  // Over-long encoding.
}

bool ByteReader::ReadByte(uint8_t* out) {
  if (pos_ >= bytes_.size()) {
    return false;
  }
  *out = bytes_[pos_++];
  return true;
}

bool ByteReader::ReadBytes(std::span<std::byte> out) {
  if (remaining() < out.size()) {
    return false;
  }
  std::memcpy(out.data(), bytes_.data() + pos_, out.size());
  pos_ += out.size();
  return true;
}

bool ReplayLog::Complete() const {
  if (ops_dropped != 0 || fi_dropped != 0) {
    return false;
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].seq != i + 1) {
      return false;
    }
  }
  return true;
}

// --- Encoders -------------------------------------------------------------------------

void EncodeOpRaw(std::vector<uint8_t>& out, DeltaState& state, uint64_t seq, OpKind kind,
                 int32_t pid, uint64_t ts_ns, const uint64_t* args, uint32_t argc,
                 uint64_t status, uint64_t result, const std::byte* payload,
                 uint64_t payload_length) {
  out.push_back(static_cast<uint8_t>(RecordTag::kOp));
  PutVarint(out, seq - state.last_seq);
  state.last_seq = seq;
  PutVarint(out, static_cast<uint64_t>(kind));
  PutZigZag(out, static_cast<int64_t>(pid) - state.last_pid);
  state.last_pid = pid;
  PutZigZag(out, static_cast<int64_t>(ts_ns) - static_cast<int64_t>(state.last_ts));
  state.last_ts = ts_ns;
  PutVarint(out, argc);
  for (uint32_t i = 0; i < argc; ++i) {
    PutVarint(out, args[i]);
  }
  PutVarint(out, status);
  PutVarint(out, result);
  if (payload_length == 0) {
    out.push_back(static_cast<uint8_t>(PayloadKind::kNone));
    return;
  }
  bool uniform = true;
  for (uint64_t i = 1; i < payload_length; ++i) {
    if (payload[i] != payload[0]) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    out.push_back(static_cast<uint8_t>(PayloadKind::kFill));
    PutVarint(out, payload_length);
    out.push_back(static_cast<uint8_t>(payload[0]));
  } else {
    out.push_back(static_cast<uint8_t>(PayloadKind::kRaw));
    PutVarint(out, payload_length);
    const auto* data = reinterpret_cast<const uint8_t*>(payload);
    out.insert(out.end(), data, data + payload_length);
  }
}

void EncodeOp(std::vector<uint8_t>& out, DeltaState& state, const OpRecord& op) {
  EncodeOpRaw(out, state, op.seq, op.kind, op.pid, op.ts_ns, op.args.data(),
              static_cast<uint32_t>(op.args.size()), op.status, op.result, op.payload.data(),
              op.payload.size());
}

void EncodeFiDecision(std::vector<uint8_t>& out, const FiDecisionRecord& record) {
  out.push_back(static_cast<uint8_t>(RecordTag::kFi));
  PutVarint(out, record.site);
  PutVarint(out, record.call);
  out.push_back(record.verdict ? 1 : 0);
}

void EncodeEvent(std::vector<uint8_t>& out, DeltaState& state, const LogTraceEvent& event) {
  out.push_back(static_cast<uint8_t>(RecordTag::kEvent));
  PutVarint(out, event.id);
  PutZigZag(out, static_cast<int64_t>(event.pid) - state.last_pid);
  state.last_pid = event.pid;
  PutZigZag(out, static_cast<int64_t>(event.ts_ns) - static_cast<int64_t>(state.last_ts));
  state.last_ts = event.ts_ns;
  const uint64_t args[3] = {event.a0, event.a1, event.a2};
  for (int i = 0; i < 3; ++i) {
    PutZigZag(out, static_cast<int64_t>(args[i]) - static_cast<int64_t>(state.last_a[i]));
    state.last_a[i] = args[i];
  }
}

void EncodeRingStat(std::vector<uint8_t>& out, const RingStatRecord& record) {
  out.push_back(static_cast<uint8_t>(RecordTag::kRingStat));
  PutVarint(out, record.tid);
  PutVarint(out, record.appended);
  PutVarint(out, record.overwritten);
}

void EncodeFinalProcess(std::vector<uint8_t>& out, const FinalProcessRecord& record) {
  out.push_back(static_cast<uint8_t>(RecordTag::kFinalProcess));
  PutVarint(out, static_cast<uint64_t>(record.pid));
  PutVarint(out, record.vma_count);
  PutVarint(out, record.present_pages);
  PutVarint(out, record.swap_pages);
  PutVarint(out, record.content_digest);
  PutVarint(out, record.ref_digest);
}

void EncodeFinalAlloc(std::vector<uint8_t>& out, const FinalAllocRecord& record) {
  out.push_back(static_cast<uint8_t>(RecordTag::kFinalAlloc));
  PutVarint(out, record.allocated_frames);
  PutVarint(out, record.page_table_frames);
  PutVarint(out, record.swap_slots_in_use);
}

void EncodeFinalVm(std::vector<uint8_t>& out, const FinalVmRecord& record) {
  out.push_back(static_cast<uint8_t>(RecordTag::kFinalVm));
  PutVarint(out, record.counter);
  PutVarint(out, record.delta);
}

void EncodeFinalFi(std::vector<uint8_t>& out, const FinalFiRecord& record) {
  out.push_back(static_cast<uint8_t>(RecordTag::kFinalFi));
  PutVarint(out, record.site);
  PutVarint(out, record.calls);
  PutVarint(out, record.injected);
}

void EncodeMeta(std::vector<uint8_t>& out, MetaKey key, uint64_t value) {
  out.push_back(static_cast<uint8_t>(RecordTag::kMeta));
  PutVarint(out, static_cast<uint64_t>(key));
  PutVarint(out, value);
}

// --- Decoder --------------------------------------------------------------------------

namespace {

bool DecodeOneOp(ByteReader& reader, DeltaState& state, uint64_t tid, OpRecord* op,
                 std::string* error) {
  uint64_t seq_delta = 0, kind = 0, argc = 0;
  int64_t pid_delta = 0, ts_delta = 0;
  if (!reader.ReadVarint(&seq_delta) || !reader.ReadVarint(&kind) ||
      !reader.ReadZigZag(&pid_delta) || !reader.ReadZigZag(&ts_delta) ||
      !reader.ReadVarint(&argc)) {
    *error = "truncated op record";
    return false;
  }
  if (kind >= kOpKindCount) {
    *error = "op record with unknown kind " + std::to_string(kind);
    return false;
  }
  if (argc > 16) {
    *error = "op record with implausible arg count";
    return false;
  }
  op->seq = state.last_seq + seq_delta;
  state.last_seq = op->seq;
  op->kind = static_cast<OpKind>(kind);
  op->pid = static_cast<int32_t>(state.last_pid + pid_delta);
  state.last_pid = op->pid;
  op->ts_ns = static_cast<uint64_t>(static_cast<int64_t>(state.last_ts) + ts_delta);
  state.last_ts = op->ts_ns;
  op->tid = static_cast<uint32_t>(tid);
  op->args.resize(argc);
  for (uint64_t& arg : op->args) {
    if (!reader.ReadVarint(&arg)) {
      *error = "truncated op args";
      return false;
    }
  }
  uint8_t payload_kind = 0;
  if (!reader.ReadVarint(&op->status) || !reader.ReadVarint(&op->result) ||
      !reader.ReadByte(&payload_kind)) {
    *error = "truncated op outcome";
    return false;
  }
  switch (static_cast<PayloadKind>(payload_kind)) {
    case PayloadKind::kNone:
      break;
    case PayloadKind::kFill: {
      uint64_t length = 0;
      uint8_t value = 0;
      if (!reader.ReadVarint(&length) || !reader.ReadByte(&value)) {
        *error = "truncated fill payload";
        return false;
      }
      op->payload.assign(length, static_cast<std::byte>(value));
      break;
    }
    case PayloadKind::kRaw: {
      uint64_t length = 0;
      if (!reader.ReadVarint(&length) || length > reader.remaining()) {
        *error = "truncated raw payload";
        return false;
      }
      op->payload.resize(length);
      if (!reader.ReadBytes(op->payload)) {
        *error = "truncated raw payload";
        return false;
      }
      break;
    }
    default:
      *error = "unknown payload kind";
      return false;
  }
  return true;
}

}  // namespace

bool DecodeChunk(std::span<const uint8_t> body, uint64_t tid, ReplayLog* log,
                 std::string* error) {
  ByteReader reader(body);
  DeltaState state;
  while (!reader.AtEnd()) {
    uint8_t tag = 0;
    if (!reader.ReadByte(&tag)) {
      *error = "truncated record tag";
      return false;
    }
    switch (static_cast<RecordTag>(tag)) {
      case RecordTag::kOp: {
        OpRecord op;
        if (!DecodeOneOp(reader, state, tid, &op, error)) {
          return false;
        }
        log->ops.push_back(std::move(op));
        break;
      }
      case RecordTag::kFi: {
        FiDecisionRecord record;
        uint64_t site = 0;
        uint8_t verdict = 0;
        if (!reader.ReadVarint(&site) || !reader.ReadVarint(&record.call) ||
            !reader.ReadByte(&verdict)) {
          *error = "truncated fi record";
          return false;
        }
        record.site = static_cast<uint32_t>(site);
        record.verdict = verdict != 0;
        log->fi_decisions.push_back(record);
        break;
      }
      case RecordTag::kEvent: {
        LogTraceEvent event;
        uint64_t id = 0;
        int64_t pid_delta = 0, ts_delta = 0;
        if (!reader.ReadVarint(&id) || !reader.ReadZigZag(&pid_delta) ||
            !reader.ReadZigZag(&ts_delta)) {
          *error = "truncated event record";
          return false;
        }
        event.id = static_cast<uint16_t>(id);
        event.tid = static_cast<uint32_t>(tid);
        event.pid = static_cast<int32_t>(state.last_pid + pid_delta);
        state.last_pid = event.pid;
        event.ts_ns = static_cast<uint64_t>(static_cast<int64_t>(state.last_ts) + ts_delta);
        state.last_ts = event.ts_ns;
        uint64_t* args[3] = {&event.a0, &event.a1, &event.a2};
        for (int i = 0; i < 3; ++i) {
          int64_t delta = 0;
          if (!reader.ReadZigZag(&delta)) {
            *error = "truncated event args";
            return false;
          }
          *args[i] = static_cast<uint64_t>(static_cast<int64_t>(state.last_a[i]) + delta);
          state.last_a[i] = *args[i];
        }
        log->events.push_back(event);
        break;
      }
      case RecordTag::kRingStat: {
        RingStatRecord record;
        uint64_t ring_tid = 0;
        if (!reader.ReadVarint(&ring_tid) || !reader.ReadVarint(&record.appended) ||
            !reader.ReadVarint(&record.overwritten)) {
          *error = "truncated ring-stat record";
          return false;
        }
        record.tid = static_cast<uint32_t>(ring_tid);
        log->ring_stats.push_back(record);
        break;
      }
      case RecordTag::kFinalProcess: {
        FinalProcessRecord record;
        uint64_t pid = 0;
        if (!reader.ReadVarint(&pid) || !reader.ReadVarint(&record.vma_count) ||
            !reader.ReadVarint(&record.present_pages) ||
            !reader.ReadVarint(&record.swap_pages) ||
            !reader.ReadVarint(&record.content_digest) ||
            !reader.ReadVarint(&record.ref_digest)) {
          *error = "truncated final-process record";
          return false;
        }
        record.pid = static_cast<int32_t>(pid);
        log->final_processes.push_back(record);
        break;
      }
      case RecordTag::kFinalAlloc: {
        FinalAllocRecord record;
        if (!reader.ReadVarint(&record.allocated_frames) ||
            !reader.ReadVarint(&record.page_table_frames) ||
            !reader.ReadVarint(&record.swap_slots_in_use)) {
          *error = "truncated final-alloc record";
          return false;
        }
        log->final_alloc = record;
        break;
      }
      case RecordTag::kFinalVm: {
        FinalVmRecord record;
        uint64_t counter = 0;
        if (!reader.ReadVarint(&counter) || !reader.ReadVarint(&record.delta)) {
          *error = "truncated final-vm record";
          return false;
        }
        record.counter = static_cast<uint32_t>(counter);
        log->final_vm.push_back(record);
        break;
      }
      case RecordTag::kFinalFi: {
        FinalFiRecord record;
        uint64_t site = 0;
        if (!reader.ReadVarint(&site) || !reader.ReadVarint(&record.calls) ||
            !reader.ReadVarint(&record.injected)) {
          *error = "truncated final-fi record";
          return false;
        }
        record.site = static_cast<uint32_t>(site);
        log->final_fi.push_back(record);
        break;
      }
      case RecordTag::kMeta: {
        uint64_t key = 0, value = 0;
        if (!reader.ReadVarint(&key) || !reader.ReadVarint(&value)) {
          *error = "truncated meta record";
          return false;
        }
        switch (static_cast<MetaKey>(key)) {
          case MetaKey::kFiSeed:
            log->fi_seed = value;
            break;
          case MetaKey::kMode:
            log->mode = static_cast<uint32_t>(value);
            break;
          case MetaKey::kFinalized:
            log->finalized = value != 0;
            break;
          case MetaKey::kOpsDropped:
            log->ops_dropped += value;
            break;
          case MetaKey::kEventsDropped:
            log->events_dropped += value;
            break;
          case MetaKey::kFiDropped:
            log->fi_dropped += value;
            break;
          case MetaKey::kFaultInjectCompiled:
            log->fault_inject_compiled = value != 0;
            break;
          case MetaKey::kTraceCompiled:
            log->trace_compiled = value != 0;
            break;
          default:
            break;  // Unknown meta keys are forward-compatible noise.
        }
        break;
      }
      default:
        *error = "unknown record tag " + std::to_string(tag);
        return false;
    }
  }
  return true;
}

// --- File I/O -------------------------------------------------------------------------

bool WriteLogFile(const std::string& path, const std::string& header_json,
                  const std::vector<const LogChunk*>& chunks, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = message + ": " + path;
    }
    return false;
  };
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return fail("cannot open log for writing");
  }
  bool ok = std::fwrite(kLogMagic, 1, 8, file) == 8;
  uint32_t header_length = static_cast<uint32_t>(header_json.size());
  uint8_t length_bytes[4] = {
      static_cast<uint8_t>(header_length),
      static_cast<uint8_t>(header_length >> 8),
      static_cast<uint8_t>(header_length >> 16),
      static_cast<uint8_t>(header_length >> 24),
  };
  ok = ok && std::fwrite(length_bytes, 1, 4, file) == 4;
  ok = ok && std::fwrite(header_json.data(), 1, header_json.size(), file) == header_json.size();
  for (const LogChunk* chunk : chunks) {
    if (!ok) {
      break;
    }
    std::vector<uint8_t> framing;
    framing.push_back(chunk->kind);
    PutVarint(framing, chunk->tid);
    PutVarint(framing, chunk->bytes.size());
    ok = std::fwrite(framing.data(), 1, framing.size(), file) == framing.size() &&
         std::fwrite(chunk->bytes.data(), 1, chunk->bytes.size(), file) == chunk->bytes.size();
  }
  if (std::fclose(file) != 0) {
    ok = false;
  }
  if (!ok) {
    return fail("short write");
  }
  return true;
}

bool ReadLogFile(const std::string& path, ReplayLog* out, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = message + ": " + path;
    }
    return false;
  };
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return fail("cannot open log");
  }
  std::vector<uint8_t> bytes;
  {
    uint8_t buffer[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      bytes.insert(bytes.end(), buffer, buffer + n);
    }
    std::fclose(file);
  }
  if (bytes.size() < 12 || std::memcmp(bytes.data(), kLogMagic, 8) != 0) {
    return fail("not an odf replay log (bad magic)");
  }
  uint32_t header_length = static_cast<uint32_t>(bytes[8]) |
                           static_cast<uint32_t>(bytes[9]) << 8 |
                           static_cast<uint32_t>(bytes[10]) << 16 |
                           static_cast<uint32_t>(bytes[11]) << 24;
  size_t pos = 12;
  if (bytes.size() - pos < header_length) {
    return fail("truncated header");
  }
  *out = ReplayLog{};
  out->header_json.assign(reinterpret_cast<const char*>(bytes.data() + pos), header_length);
  pos += header_length;
  while (pos < bytes.size()) {
    ByteReader framing(std::span<const uint8_t>(bytes).subspan(pos));
    uint8_t kind = 0;
    uint64_t tid = 0, length = 0;
    if (!framing.ReadByte(&kind) || !framing.ReadVarint(&tid) ||
        !framing.ReadVarint(&length)) {
      return fail("truncated chunk framing");
    }
    size_t body_offset = pos + (bytes.size() - pos - framing.remaining());
    if (length > bytes.size() - body_offset) {
      return fail("truncated chunk body");
    }
    std::string chunk_error;
    if (!DecodeChunk(std::span<const uint8_t>(bytes).subspan(body_offset, length), tid, out,
                     &chunk_error)) {
      return fail(chunk_error);
    }
    pos = body_offset + length;
  }
  std::stable_sort(out->ops.begin(), out->ops.end(),
                   [](const OpRecord& a, const OpRecord& b) { return a.seq < b.seq; });
  std::stable_sort(out->events.begin(), out->events.end(),
                   [](const LogTraceEvent& a, const LogTraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return true;
}

}  // namespace replay
}  // namespace odf
