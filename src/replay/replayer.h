// odf::replay replay engine — time-travel debugging for the simulated kernel.
//
// Replay(log) re-executes a recorded operation schedule (log.h) against a FRESH Kernel:
// every depth-0 op is dispatched through the same public Kernel/Process API that recorded
// it, fault-injection verdicts are pinned to the recorded decisions (fi::PinForReplay), and
// every recorded outcome — returned pids and addresses, fault verdicts, read-data digests —
// is cross-checked as the schedule advances. A finalized log additionally carries the
// recording's final state (per-process memory digests, allocator aggregates, vmstat
// deltas), which Replay verifies after the last op: byte-identical page contents, identical
// refcounts, identical counter deltas.
//
// Determinism contract (docs/replay.md): the kernel is deterministic for single-driver
// schedules — same ops, same fi verdicts => same state. Recordings taken with kswapd
// running or with multiple concurrently-mutating driver threads are replayed in seq
// (completion) order, which may legitimately diverge; divergences are reported, not fatal.
#ifndef ODF_SRC_REPLAY_REPLAYER_H_
#define ODF_SRC_REPLAY_REPLAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/replay/log.h"

namespace odf {

class Kernel;
class Process;

namespace replay {

struct ReplayOptions {
  uint64_t until_seq = 0;  // Stop after this seq (0 = run the whole schedule). Partial
                           // replays skip the final-state check but still verify per-op
                           // outcomes, leaving the kernel at a consistent intermediate
                           // state for inspection.
  bool check_final = true;  // Verify the final-state trailer (finalized full replays only).
  bool pin_fi = true;       // Pin fault-injection verdicts to the recorded decisions.
  bool run_verifier = true;  // debug::VerifyKernel after the last replayed op.
};

struct ReplayReport {
  bool parsed = false;       // Log was loadable and complete (replay precondition).
  uint64_t ops_total = 0;    // Ops in the log.
  uint64_t ops_replayed = 0;
  uint64_t last_seq = 0;     // Seq of the last op actually executed.
  std::vector<std::string> divergences;  // "seq N <op>: expected X, got Y" lines.
  std::string error;                     // Setup / parse / fatal-divergence failure.

  bool ok() const { return parsed && error.empty() && divergences.empty(); }
  std::string Describe() const;
};

// Re-executes `log` against a fresh internal Kernel. See the file comment.
ReplayReport Replay(const ReplayLog& log, const ReplayOptions& options = {});

// ReadLogFile + Replay.
ReplayReport ReplayFile(const std::string& path, const ReplayOptions& options = {});

// --- Final-state capture (shared by the recorder trailer and the replay check) ---------

// Digests one process's logical memory image: per-page FNV-1a content digest (absent and
// swapped pages fold in as their logical bytes — zeros when never written) plus a reference
// digest over page refcounts, PTE/PMD-table share counts, and swap-slot refcounts. The
// kernel must be quiescent.
FinalProcessRecord CaptureProcessFinal(Process& process);

// Allocator + swap aggregates for the trailer.
FinalAllocRecord CaptureAllocFinal(Kernel& kernel);

// Captures the trailer (every running process + allocator aggregates) into the global
// recorder. Call after the workload settles, before Recorder::Stop. Lives here rather than
// in the recorder because the digests need the proc layer.
void FinalizeRecording(Kernel& kernel);

// Convenience: FinalizeRecording + Stop + WriteLog on the global recorder.
[[nodiscard]] bool StopAndWriteLog(Kernel& kernel, const std::string& path,
                                   std::string* error);

// True when the vmstat counter is deterministic under the replay contract and is compared
// by the final-state check. Excluded: per-CPU cache traffic (pcp_*, batch_free,
// frames_allocated/freed include refill batching), kswapd scheduling, and the recorder's
// own counters (recording bumps them; replaying does not).
bool CounterReplayComparable(uint32_t counter);

}  // namespace replay
}  // namespace odf

#endif  // ODF_SRC_REPLAY_REPLAYER_H_
