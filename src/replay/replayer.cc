#include "src/replay/replayer.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>
#include <vector>

#include "src/debug/verify.h"
#include "src/fi/fault_inject.h"
#include "src/mm/address_space.h"
#include "src/mm/swap.h"
#include "src/phys/frame_allocator.h"
#include "src/phys/page_meta.h"
#include "src/proc/kernel.h"
#include "src/proc/process.h"
#include "src/pt/geometry.h"
#include "src/pt/pte.h"
#include "src/replay/recorder.h"
#include "src/trace/metrics.h"
#include "src/util/log.h"

namespace odf {
namespace replay {

namespace {

// Digest of a logically-zero page (absent / never-materialized / zero-backed swap slot).
uint64_t ZeroPageDigest() {
  static const uint64_t digest = [] {
    std::vector<std::byte> zeros(kPageSize);
    return Fnv1aBytes(zeros.data(), zeros.size());
  }();
  return digest;
}

// Folds one VMA's pages into the process digests, in VA order. Pages fold as their
// per-page FNV digest (so absent pages cost one u64 fold, not a 4 KiB hash); the chain is
// order-sensitive, which pins the layout as well as the bytes.
void DigestVma(AddressSpace& as, const VmArea& vma, FinalProcessRecord* rec,
               uint64_t* content, uint64_t* refs) {
  FrameAllocator& alloc = as.allocator();
  SwapSpace* swap = as.swap_space();
  for (Vaddr chunk = EntryBase(vma.start, PtLevel::kPmd); chunk < vma.end;
       chunk += kPteTableSpan) {
    Vaddr lo = std::max(chunk, vma.start);
    Vaddr hi = std::min(chunk + kPteTableSpan, vma.end);
    uint64_t* pmd_slot = as.walker().FindEntry(as.pgd(), chunk, PtLevel::kPmd);
    Pte pmd = pmd_slot != nullptr ? LoadEntry(pmd_slot) : Pte();

    if (pmd.IsPresent() && pmd.IsHuge()) {
      FrameId head = pmd.frame();
      const std::byte* data = alloc.PeekData(head);
      for (Vaddr va = lo; va < hi; va += kPageSize) {
        uint64_t page = data != nullptr ? Fnv1aBytes(data + (va - chunk), kPageSize)
                                        : ZeroPageDigest();
        *content = Fnv1aU64(page, *content);
        ++rec->present_pages;
      }
      *refs = Fnv1aU64(alloc.GetMeta(head).refcount.load(std::memory_order_acquire), *refs);
      continue;
    }

    uint64_t* entries =
        pmd.IsPresent() && !pmd.IsHuge() ? alloc.TableEntries(pmd.frame()) : nullptr;
    if (entries != nullptr) {
      *refs = Fnv1aU64(
          alloc.GetMeta(pmd.frame()).pt_share_count.load(std::memory_order_acquire), *refs);
    }
    for (Vaddr va = lo; va < hi; va += kPageSize) {
      Pte pte = entries != nullptr
                    ? LoadEntry(&entries[(va >> kPteFrameShift) & (kEntriesPerTable - 1)])
                    : Pte();
      uint64_t page = ZeroPageDigest();
      if (pte.IsPresent()) {
        FrameId frame = pte.frame();
        const PageMeta& meta = alloc.GetMeta(frame);
        FrameId head = ResolveCompoundHead(meta, frame);
        const std::byte* data = alloc.PeekData(head);
        if (data != nullptr) {
          page = Fnv1aBytes(data + static_cast<uint64_t>(frame - head) * kPageSize,
                            kPageSize);
        }
        *refs = Fnv1aU64(alloc.GetMeta(head).refcount.load(std::memory_order_acquire), *refs);
        ++rec->present_pages;
      } else if (pte.IsSwap() && swap != nullptr) {
        const std::byte* data = swap->PeekSlot(pte.swap_slot());
        if (data != nullptr) {
          page = Fnv1aBytes(data, kPageSize);
        }
        *refs = Fnv1aU64(swap->RefCount(pte.swap_slot()), *refs);
        ++rec->swap_pages;
      }
      *content = Fnv1aU64(page, *content);
    }
  }
}

}  // namespace

FinalProcessRecord CaptureProcessFinal(Process& process) {
  FinalProcessRecord rec;
  rec.pid = process.pid();
  AddressSpace& as = process.address_space();
  rec.vma_count = as.vmas().size();
  uint64_t content = kFnvOffset;
  uint64_t refs = kFnvOffset;
  for (const auto& [start, vma] : as.vmas()) {
    DigestVma(as, vma, &rec, &content, &refs);
  }
  rec.content_digest = content;
  rec.ref_digest = refs;
  return rec;
}

FinalAllocRecord CaptureAllocFinal(Kernel& kernel) {
  FinalAllocRecord rec;
  FrameAllocatorStats stats = kernel.allocator().Stats();
  rec.allocated_frames = stats.allocated_frames;
  rec.page_table_frames = stats.page_table_frames;
  rec.swap_slots_in_use = kernel.swap_space().Stats().slots_in_use;
  return rec;
}

void FinalizeRecording(Kernel& kernel) {
  std::vector<FinalProcessRecord> processes;
  for (const auto& process : kernel.RunningProcesses()) {
    processes.push_back(CaptureProcessFinal(*process));
  }
  Recorder::Global().CaptureFinalState(processes, CaptureAllocFinal(kernel));
}

bool StopAndWriteLog(Kernel& kernel, const std::string& path, std::string* error) {
  Recorder& recorder = Recorder::Global();
  if (recorder.recording()) {
    FinalizeRecording(kernel);
  }
  recorder.Stop();
  return recorder.WriteLog(path, error);
}

bool CounterReplayComparable(uint32_t counter) {
  switch (static_cast<VmCounter>(counter)) {
    // Per-CPU cache traffic depends on which threads touched the allocator before the
    // recording started; frames_allocated/freed include refill/drain batching.
    case VmCounter::k_pcp_hit:
    case VmCounter::k_pcp_miss:
    case VmCounter::k_pcp_refill:
    case VmCounter::k_pcp_drain:
    case VmCounter::k_batch_free:
    case VmCounter::k_frames_allocated:
    case VmCounter::k_frames_freed:
    // Background-daemon scheduling.
    case VmCounter::k_kswapd_wake:
    // Lock contention is timing, not semantics: whether a shared-gate acquisition had to
    // wait depends on the physical interleaving, which replay does not reproduce.
    case VmCounter::k_lock_contended:
    // The recorder's own accounting: bumped while recording, quiet while replaying.
    case VmCounter::k_trace_ring_overwrite:
    case VmCounter::k_replay_ops_recorded:
    case VmCounter::k_replay_events_recorded:
    case VmCounter::k_replay_events_dropped:
    case VmCounter::k_replay_record_bytes:
      return false;
    default:
      return true;
  }
}

std::string ReplayReport::Describe() const {
  std::ostringstream out;
  out << "replayed " << ops_replayed << "/" << ops_total << " ops";
  if (last_seq != 0) {
    out << " (through seq " << last_seq << ")";
  }
  if (ok()) {
    out << ": OK\n";
    return out.str();
  }
  out << ": FAILED\n";
  if (!error.empty()) {
    out << "  error: " << error << "\n";
  }
  for (const std::string& divergence : divergences) {
    out << "  divergence: " << divergence << "\n";
  }
  return out.str();
}

namespace {

constexpr size_t kMaxReportedDivergences = 32;

struct ReplayState {
  ReplayReport* report;
  std::map<int32_t, Process*> procs;
  uint64_t suppressed_divergences = 0;

  void Diverge(const OpRecord& op, const std::string& what) {
    if (report->divergences.size() < kMaxReportedDivergences) {
      report->divergences.push_back("seq " + std::to_string(op.seq) + " " +
                                    OpKindName(op.kind) + ": " + what);
    } else {
      ++suppressed_divergences;
    }
  }

  void ExpectU64(const OpRecord& op, const char* field, uint64_t recorded, uint64_t got) {
    if (recorded != got) {
      Diverge(op, std::string(field) + " recorded " + std::to_string(recorded) + ", got " +
                      std::to_string(got));
    }
  }
};

// Per-site queues of pinned verdict windows. Per-site call indices restart at every arming,
// so the recorded decisions segment into windows at call == 1 boundaries (file order
// preserves each site's recording order); the replay loop pins window N when the Nth fi_arm
// op for that site replays.
struct FiWindowQueues {
  std::array<std::deque<std::vector<bool>>, kFiSiteCount> by_site;
};

FiWindowQueues BuildFiWindows(const ReplayLog& log) {
  FiWindowQueues queues;
  std::array<std::vector<bool>*, kFiSiteCount> open{};
  for (const FiDecisionRecord& decision : log.fi_decisions) {
    if (decision.site >= kFiSiteCount) {
      continue;
    }
    if (decision.call == 1 || open[decision.site] == nullptr) {
      queues.by_site[decision.site].emplace_back();
      open[decision.site] = &queues.by_site[decision.site].back();
    }
    std::vector<bool>& window = *open[decision.site];
    if (window.size() < decision.call) {
      window.resize(decision.call, false);
    }
    window[decision.call - 1] = decision.verdict;
  }
  return queues;
}

// Resets the injector to the recorded seed and builds the verdict windows. Sites armed
// before Recorder::Start have no fi_arm op in the log — their first window is pinned up
// front (best effort: decisions before Start are unknown and default to no-inject; the
// determinism contract in docs/replay.md says to arm after Start).
void PinFromLog(const ReplayLog& log, FiWindowQueues* queues) {
  fi::FaultInjector& injector = fi::FaultInjector::Global();
  injector.Reset(log.fi_seed);
  *queues = BuildFiWindows(log);
  std::array<bool, kFiSiteCount> has_arm_op{};
  for (const OpRecord& op : log.ops) {
    if (op.kind == OpKind::k_fi_arm && op.Arg(0) < kFiSiteCount) {
      has_arm_op[op.Arg(0)] = true;
    }
  }
  for (size_t site = 0; site < kFiSiteCount; ++site) {
    if (!has_arm_op[site] && !queues->by_site[site].empty()) {
      injector.PinForReplay(static_cast<FiSite>(site),
                            std::move(queues->by_site[site].front()));
      queues->by_site[site].pop_front();
    }
  }
}

}  // namespace

ReplayReport Replay(const ReplayLog& log, const ReplayOptions& options) {
  ReplayReport report;
  report.ops_total = log.ops.size();
  if (!log.Complete()) {
    report.error =
        "log is not replayable: the op stream has gaps (ops_dropped=" +
        std::to_string(log.ops_dropped) + ", fi_dropped=" + std::to_string(log.fi_dropped) +
        "); black-box logs that wrapped are inspectable but not replayable";
    return report;
  }
  report.parsed = true;

  std::array<uint64_t, kVmCounterCount> baseline{};
  for (size_t i = 0; i < kVmCounterCount; ++i) {
    baseline[i] = g_vm_counters[i].load(std::memory_order_relaxed);
  }
  FiWindowQueues fi_windows;
  if (options.pin_fi) {
    PinFromLog(log, &fi_windows);
  }

  Kernel kernel;
  ReplayState state{&report, {}, 0};
  bool fatal = false;

  for (const OpRecord& op : log.ops) {
    if (options.until_seq != 0 && op.seq > options.until_seq) {
      break;
    }
    Process* p = nullptr;
    if (op.pid != 0) {
      auto it = state.procs.find(op.pid);
      if (it == state.procs.end()) {
        report.error = "seq " + std::to_string(op.seq) + " " + OpKindName(op.kind) +
                       ": process " + std::to_string(op.pid) +
                       " unknown — the schedule diverged fatally";
        fatal = true;
        break;
      }
      p = it->second;
    }

    switch (op.kind) {
      case OpKind::k_create_process: {
        Process& created = kernel.CreateProcess();
        state.ExpectU64(op, "pid", op.result, static_cast<uint64_t>(created.pid()));
        Pid key = op.result != 0 ? static_cast<Pid>(op.result) : created.pid();
        state.procs[key] = &created;
        break;
      }
      case OpKind::k_fork: {
        Process& child = kernel.Fork(*p, static_cast<ForkMode>(op.Arg(0)));
        state.ExpectU64(op, "child pid", op.result, static_cast<uint64_t>(child.pid()));
        Pid key = op.result != 0 ? static_cast<Pid>(op.result) : child.pid();
        state.procs[key] = &child;
        break;
      }
      case OpKind::k_try_fork: {
        Process* child = kernel.TryFork(*p, static_cast<ForkMode>(op.Arg(0)));
        uint64_t got = child != nullptr ? static_cast<uint64_t>(child->pid()) : 0;
        state.ExpectU64(op, "child pid", op.result, got);
        if (child != nullptr) {
          Pid key = op.result != 0 ? static_cast<Pid>(op.result) : child->pid();
          state.procs[key] = child;
        }
        break;
      }
      case OpKind::k_exit:
        kernel.Exit(*p, static_cast<int>(static_cast<int64_t>(op.Arg(0))));
        break;
      case OpKind::k_wait: {
        Pid reaped = kernel.Wait(*p);
        state.ExpectU64(op, "reaped pid + 1", op.result,
                        static_cast<uint64_t>(static_cast<int64_t>(reaped) + 1));
        if (reaped >= 0) {
          state.procs.erase(reaped);
        }
        break;
      }
      case OpKind::k_set_default_fork_mode:
        kernel.set_default_fork_mode(static_cast<ForkMode>(op.Arg(0)));
        break;
      case OpKind::k_set_fork_mode:
        p->set_fork_mode(static_cast<ForkMode>(op.Arg(0)));
        break;
      case OpKind::k_set_memory_limit:
        kernel.SetMemoryLimitFrames(op.Arg(0));
        break;
      case OpKind::k_reclaim:
        state.ExpectU64(op, "frames freed", op.result, kernel.ReclaimMemory(op.Arg(0)));
        break;
      case OpKind::k_start_kswapd:
        kernel.StartKswapd();
        break;
      case OpKind::k_stop_kswapd:
        kernel.StopKswapd();
        break;
      case OpKind::k_mmap: {
        Vaddr va = p->Mmap(op.Arg(0), static_cast<uint32_t>(op.Arg(1)), op.Arg(2) != 0);
        state.ExpectU64(op, "va", op.result, va);
        break;
      }
      case OpKind::k_munmap:
        p->Munmap(op.Arg(0), op.Arg(1));
        break;
      case OpKind::k_mremap: {
        Vaddr va = p->Mremap(op.Arg(0), op.Arg(1), op.Arg(2));
        state.ExpectU64(op, "va", op.result, va);
        break;
      }
      case OpKind::k_madvise_dontneed:
        p->MadviseDontNeed(op.Arg(0), op.Arg(1));
        break;
      case OpKind::k_populate:
        p->address_space().PopulateRange(op.Arg(0), op.Arg(1));
        break;
      case OpKind::k_write: {
        bool ok = p->WriteMemory(op.Arg(0), std::span(op.payload));
        state.ExpectU64(op, "ok", op.result, ok ? 1 : 0);
        state.ExpectU64(op, "fault status", op.status,
                        static_cast<uint64_t>(p->last_fault_result()));
        break;
      }
      case OpKind::k_read: {
        std::vector<std::byte> buffer(op.Arg(1));
        bool ok = p->ReadMemory(op.Arg(0), std::span(buffer));
        state.ExpectU64(op, "fault status", op.status,
                        static_cast<uint64_t>(p->last_fault_result()));
        state.ExpectU64(op, "read digest", op.result,
                        ok ? Fnv1aBytes(buffer.data(), buffer.size()) : 0);
        break;
      }
      case OpKind::k_memset: {
        bool ok =
            p->MemsetMemory(op.Arg(0), static_cast<std::byte>(op.Arg(1)), op.Arg(2));
        state.ExpectU64(op, "ok", op.result, ok ? 1 : 0);
        state.ExpectU64(op, "fault status", op.status,
                        static_cast<uint64_t>(p->last_fault_result()));
        break;
      }
      case OpKind::k_touch: {
        bool ok = p->TouchRange(op.Arg(0), op.Arg(1), static_cast<AccessType>(op.Arg(2)));
        state.ExpectU64(op, "ok", op.result, ok ? 1 : 0);
        state.ExpectU64(op, "fault status", op.status,
                        static_cast<uint64_t>(p->last_fault_result()));
        break;
      }
      case OpKind::k_fi_arm: {
        auto site_index = static_cast<size_t>(op.Arg(0));
        if (site_index >= kFiSiteCount) {
          state.Diverge(op, "unknown fi site " + std::to_string(site_index));
          break;
        }
        FiSite site = static_cast<FiSite>(site_index);
        if (options.pin_fi) {
          // Pin the next recorded window; a site armed but never consulted pins an empty
          // schedule, so any replay-side call shows up as PinnedOverflow.
          std::deque<std::vector<bool>>& queue = fi_windows.by_site[site_index];
          std::vector<bool> verdicts;
          if (!queue.empty()) {
            verdicts = std::move(queue.front());
            queue.pop_front();
          }
          fi::FaultInjector::Global().PinForReplay(site, std::move(verdicts));
        } else {
          FiSiteConfig config;
          uint64_t probability_bits = op.Arg(1);
          std::memcpy(&config.probability, &probability_bits, sizeof(config.probability));
          config.nth = op.Arg(2);
          config.interval = op.Arg(3);
          config.times = static_cast<int64_t>(op.Arg(4));
          fi::FaultInjector::Global().Arm(site, config);
        }
        break;
      }
      case OpKind::k_fi_disarm:
        if (op.Arg(0) < kFiSiteCount) {
          fi::FaultInjector::Global().Disarm(static_cast<FiSite>(op.Arg(0)));
        }
        break;
      case OpKind::k_fi_reset:
        fi::FaultInjector::Global().Reset(op.Arg(0));
        break;
      case OpKind::k_mf_hard_offline:
        state.ExpectU64(op, "mf result", op.result,
                        static_cast<uint64_t>(
                            kernel.MemoryFailure(static_cast<FrameId>(op.Arg(0)))));
        break;
      case OpKind::k_mf_soft_offline:
        state.ExpectU64(op, "mf result", op.result,
                        static_cast<uint64_t>(
                            kernel.SoftOfflinePage(static_cast<FrameId>(op.Arg(0)))));
        break;
      case OpKind::kCount:
        state.Diverge(op, "unknown op kind");
        break;
    }

    ++report.ops_replayed;
    report.last_seq = op.seq;
  }

  kernel.StopKswapd();  // Replayed schedules must not leave the daemon running.
  bool full_replay = !fatal && options.until_seq == 0 && report.ops_replayed == report.ops_total;
  // Per-site call/injection counts (last armed window, both sides): overflow catches extra
  // replay-side decisions, this catches a replay that consumed too few.
  if (options.check_final && full_replay && log.finalized) {
    for (const FinalFiRecord& recorded : log.final_fi) {
      if (recorded.site >= kFiSiteCount) {
        continue;
      }
      FiSiteStats got = fi::FaultInjector::Global().SiteStats(static_cast<FiSite>(recorded.site));
      if (got.calls != recorded.calls || got.injected != recorded.injected) {
        report.divergences.push_back(
            std::string("fault injection: site ") +
            FiSiteName(static_cast<FiSite>(recorded.site)) + " recorded " +
            std::to_string(recorded.calls) + " calls / " + std::to_string(recorded.injected) +
            " injected, got " + std::to_string(got.calls) + " / " +
            std::to_string(got.injected));
      }
    }
  }
  if (options.pin_fi) {
    if (fi::FaultInjector::Global().PinnedOverflow() != 0 && !fatal) {
      report.divergences.push_back(
          "fault injection: replay demanded " +
          std::to_string(fi::FaultInjector::Global().PinnedOverflow()) +
          " decision(s) past the recorded schedule");
    }
    fi::FaultInjector::Global().UnpinAll();
  }

  if (options.run_verifier && !fatal) {
    debug::VerifyResult verify = debug::VerifyKernel(kernel);
    for (const std::string& violation : verify.violations) {
      report.divergences.push_back("verifier: " + violation);
    }
  }

  if (options.check_final && full_replay && log.finalized) {
    for (const FinalProcessRecord& recorded : log.final_processes) {
      auto it = state.procs.find(recorded.pid);
      if (it == state.procs.end() || it->second->state() != ProcessState::kRunning) {
        report.divergences.push_back("final state: process " + std::to_string(recorded.pid) +
                                     " not running after replay");
        continue;
      }
      FinalProcessRecord got = CaptureProcessFinal(*it->second);
      auto check = [&](const char* field, uint64_t want, uint64_t have) {
        if (want != have) {
          report.divergences.push_back("final state: pid " + std::to_string(recorded.pid) +
                                       " " + field + " recorded " + std::to_string(want) +
                                       ", got " + std::to_string(have));
        }
      };
      check("vma_count", recorded.vma_count, got.vma_count);
      check("present_pages", recorded.present_pages, got.present_pages);
      check("swap_pages", recorded.swap_pages, got.swap_pages);
      check("content_digest", recorded.content_digest, got.content_digest);
      check("ref_digest", recorded.ref_digest, got.ref_digest);
    }
    if (kernel.RunningProcessCount() != log.final_processes.size()) {
      report.divergences.push_back(
          "final state: " + std::to_string(kernel.RunningProcessCount()) +
          " running processes after replay, recorded " +
          std::to_string(log.final_processes.size()));
    }
    if (log.final_alloc.has_value()) {
      FinalAllocRecord got = CaptureAllocFinal(kernel);
      auto check = [&](const char* field, uint64_t want, uint64_t have) {
        if (want != have) {
          report.divergences.push_back(std::string("final state: ") + field + " recorded " +
                                       std::to_string(want) + ", got " +
                                       std::to_string(have));
        }
      };
      check("allocated_frames", log.final_alloc->allocated_frames, got.allocated_frames);
      check("page_table_frames", log.final_alloc->page_table_frames, got.page_table_frames);
      check("swap_slots_in_use", log.final_alloc->swap_slots_in_use, got.swap_slots_in_use);
    }
    std::array<uint64_t, kVmCounterCount> recorded_deltas{};
    for (const FinalVmRecord& vm : log.final_vm) {
      if (vm.counter < kVmCounterCount) {
        recorded_deltas[vm.counter] = vm.delta;
      }
    }
    for (uint32_t i = 0; i < kVmCounterCount; ++i) {
      if (!CounterReplayComparable(i)) {
        continue;
      }
      uint64_t got = g_vm_counters[i].load(std::memory_order_relaxed) - baseline[i];
      if (got != recorded_deltas[i]) {
        report.divergences.push_back(
            std::string("final state: vmstat ") +
            VmCounterName(static_cast<VmCounter>(i)) + " delta recorded " +
            std::to_string(recorded_deltas[i]) + ", got " + std::to_string(got));
      }
    }
  }

  if (state.suppressed_divergences != 0) {
    report.divergences.push_back("... " + std::to_string(state.suppressed_divergences) +
                                 " further divergence(s) suppressed");
  }
  return report;
}

ReplayReport ReplayFile(const std::string& path, const ReplayOptions& options) {
  ReplayLog log;
  ReplayReport report;
  if (!ReadLogFile(path, &log, &report.error)) {
    return report;
  }
  return Replay(log, options);
}

}  // namespace replay
}  // namespace odf
