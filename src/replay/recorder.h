// odf::replay flight recorder — records the kernel's operation schedule (plus fi verdicts
// and trace events) into the log format of log.h, cheaply enough to stay on under
// benchmarks. See docs/replay.md.
//
// Recording granularity is the public Kernel/Process op surface: each entry point opens an
// OpScope, which assigns the op its global sequence number and captures args + outcome.
// Nested ops (TouchRange's internal WriteMemory, Fork's internal TryFork, the OOM killer's
// Exit inside ReclaimMemory) are suppressed by a per-thread depth counter — only depth-0
// ops are schedule entries, so replaying them re-executes the nested work naturally.
//
// Cost model (mirrors ODF_TRACE / ODF_FAULT_INJECT):
//   - compiled out (-DODF_REPLAY=OFF => ODF_REPLAY_COMPILED=0): OpScope folds to nothing;
//     argument expressions are still evaluated (they are existing locals at every site).
//   - not recording (the default): one relaxed atomic load and a predicted branch per op.
//   - recording: one TLS lookup, one global seq fetch_add, and a varint encode (~tens of
//     ns) per depth-0 op; the per-op latency histogram `replay_append` samples every 64th.
//
// Modes:
//   - kFull: every chunk is retained until Stop/WriteLog (unbounded memory; tests, CI).
//   - kBlackBox: rotated chunks are dropped oldest-first once the byte budget is exceeded
//     (bounded memory; long runs). On ODF_CHECK / ODF_VM_BUG_ON / verifier failure the
//     abort hook dumps whatever is retained — the crash flight recorder.
#ifndef ODF_SRC_REPLAY_RECORDER_H_
#define ODF_SRC_REPLAY_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/fi/fault_inject.h"
#include "src/replay/log.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

// Set by the build (src/replay/CMakeLists.txt); default to compiled-in for out-of-build users.
#ifndef ODF_REPLAY_COMPILED
#define ODF_REPLAY_COMPILED 1
#endif

namespace odf {
namespace replay {

enum class RecorderMode : uint32_t {
  kOff = 0,
  kBlackBox = 1,
  kFull = 2,
};

const char* RecorderModeName(RecorderMode mode);

// Global runtime switch. Inline so the OpScope fast path is a single relaxed load.
inline std::atomic<bool> g_recording{false};

#if ODF_REPLAY_COMPILED
inline bool RecordingActive() { return g_recording.load(std::memory_order_relaxed); }
#else
constexpr bool RecordingActive() { return false; }
#endif

namespace detail {

// Flush path called from OpScope's destructor (recorder.cc). Assigns the global sequence
// number and appends the encoded op + any trace events the thread's ring gained since the
// last drain.
void RecordOp(OpKind kind, int32_t pid, const uint64_t* args, uint32_t argc, uint64_t status,
              uint64_t result, const std::byte* payload, uint64_t payload_length);

// Per-thread op nesting depth; only depth-0 scopes record.
inline thread_local uint32_t t_op_depth = 0;

}  // namespace detail

// RAII capture of one kernel operation. Constructed at every recordable entry point;
// sites fill in args and outcome before the scope closes:
//
//   replay::OpScope op(OpKind::k_mmap, pid());
//   ...
//   op.Arg(length).Arg(prot);
//   op.Result(va);
//
// All methods are no-ops unless a recording is active and this is a depth-0 op.
class OpScope {
 public:
#if ODF_REPLAY_COMPILED
  OpScope(OpKind kind, int32_t pid) {
    if (!RecordingActive()) {
      return;
    }
    entered_ = true;
    active_ = detail::t_op_depth++ == 0;
    kind_ = kind;
    pid_ = pid;
  }
  ~OpScope() {
    if (!entered_) {
      return;
    }
    --detail::t_op_depth;
    if (active_) {
      detail::RecordOp(kind_, pid_, args_, argc_, status_, result_, payload_, payload_length_);
    }
  }
  OpScope& Arg(uint64_t value) {
    if (active_ && argc_ < kMaxArgs) {
      args_[argc_++] = value;
    }
    return *this;
  }
  OpScope& Status(uint64_t value) {
    if (active_) {
      status_ = value;
    }
    return *this;
  }
  OpScope& Result(uint64_t value) {
    if (active_) {
      result_ = value;
    }
    return *this;
  }
  // Attaches write data. The span must stay valid until the scope closes (it is the
  // caller's own argument); the encoder run-length-compresses uniform fills.
  OpScope& Payload(std::span<const std::byte> data) {
    if (active_) {
      payload_ = data.data();
      payload_length_ = data.size();
    }
    return *this;
  }
  // Un-records an op whose site decided it is not a schedule entry after all (e.g. a
  // PopulateRange on a process-less address space). Depth bookkeeping is unaffected.
  void Cancel() { active_ = false; }
  // True when this scope will record: sites use it to gate outcome computation that is
  // itself costly (e.g. hashing a read buffer).
  bool active() const { return active_; }
#else
  OpScope(OpKind, int32_t) {}
  OpScope& Arg(uint64_t) { return *this; }
  OpScope& Status(uint64_t) { return *this; }
  OpScope& Result(uint64_t) { return *this; }
  OpScope& Payload(std::span<const std::byte>) { return *this; }
  void Cancel() {}
  bool active() const { return false; }
#endif

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
#if ODF_REPLAY_COMPILED
  static constexpr uint32_t kMaxArgs = 6;
  bool entered_ = false;
  bool active_ = false;
  OpKind kind_ = OpKind::kCount;
  int32_t pid_ = 0;
  uint32_t argc_ = 0;
  uint64_t args_[kMaxArgs] = {};
  uint64_t status_ = 0;
  uint64_t result_ = 0;
  const std::byte* payload_ = nullptr;
  uint64_t payload_length_ = 0;
#endif
};

struct RecorderOptions {
  RecorderMode mode = RecorderMode::kFull;
  // Black-box retention budget for rotated chunks (kBlackBox only).
  uint64_t blackbox_budget_bytes = 8 * 1024 * 1024;
  // Directory for abort-hook dumps; overridden by env ODF_REPLAY_DUMP_DIR; default ".".
  std::string dump_dir;
  // Force tracing on for the duration (restored at Stop). Off by default: the op + fi
  // schedule alone replays deterministically and keeps the recorder within the <3% bench
  // budget; the per-event tracepoint stream is debugging context, bought at tracepoint
  // cost (procfs: `trace=1`).
  bool force_tracing = false;
};

struct RecorderStats {
  RecorderMode mode = RecorderMode::kOff;
  bool recording = false;
  uint64_t ops = 0;
  uint64_t events = 0;
  uint64_t fi_decisions = 0;
  uint64_t bytes = 0;  // Encoded bytes currently retained.
  uint64_t ops_dropped = 0;
  uint64_t events_dropped = 0;
  uint64_t fi_dropped = 0;
  uint64_t threads = 0;
};

class Recorder {
 public:
  // The process-wide recorder (the schedule is kernel-global, like vmstat).
  static Recorder& Global();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Begins a recording. Discards any previous one. Fails (returns false) when already
  // recording. Must be called while kernel threads are quiescent (the Tracer::Clear
  // contract); installs the fi decision hook and the abort dump hook.
  bool Start(const RecorderOptions& options = {});

  // Ends the recording: drains every trace ring, uninstalls hooks, and retains the encoded
  // data for WriteLog. Quiescence contract as Start. No-op when not recording.
  void Stop();

  bool recording() const { return g_recording.load(std::memory_order_relaxed); }
  RecorderMode mode() const;

  // Serializes the last recording (running or stopped; a running one is snapshotted as-is
  // without Stop's final ring drain). Returns false (and fills *error) on I/O failure or
  // when nothing was ever recorded.
  [[nodiscard]] bool WriteLog(const std::string& path, std::string* error);

  // Appends the final-state trailer records captured by replay::FinalizeRecording
  // (replayer.h owns the digest logic; it needs the proc layer). Also snapshots the vmstat
  // counter deltas since Start and the fi per-site stats, and marks the log finalized.
  void CaptureFinalState(const std::vector<FinalProcessRecord>& processes,
                         const FinalAllocRecord& alloc);

  // The abort-hook entry: dumps the current recording (black box) to the dump directory,
  // printing the path and a replay command to stderr. Safe to call at any time; returns the
  // written path, or empty when idle or the dump failed.
  std::string DumpNow();

  RecorderStats CollectStats() const;

  // procfs text: mode, retained bytes, per-thread stream accounting (FormatReplay).
  std::string FormatStatus() const;

  // procfs knob (ConfigureReplay): whitespace-separated commands —
  //   "start mode=full|blackbox [budget=BYTES] [dir=PATH]"
  //   "stop"   "dump=PATH"
  // Returns false (and fills *error) on malformed input.
  bool Configure(std::string_view spec, std::string* error = nullptr);

 private:
  friend void detail::RecordOp(OpKind, int32_t, const uint64_t*, uint32_t, uint64_t, uint64_t,
                               const std::byte*, uint64_t);

  // One rotated (closed) chunk, ordered globally by rotation index for black-box dropping.
  struct RetainedChunk {
    uint64_t rotation_index = 0;
    uint64_t ops = 0;
    uint64_t events = 0;
    uint64_t fi = 0;
    LogChunk chunk;
  };

  // Per-thread stream state. Owned by the recorder; the owning thread writes the open
  // chunk without locking (single producer, like TraceRing).
  struct ThreadStream {
    uint32_t tid = 0;
    trace::TraceRing* ring = nullptr;  // The owning thread's trace ring.
    uint64_t ring_cursor = 0;          // TotalAppended up to which events were drained.
    DeltaState state;
    std::vector<uint8_t> open;  // Encoded records of the chunk being built.
    uint64_t open_ops = 0, open_events = 0, open_fi = 0;
    uint64_t ops = 0, events = 0, fi = 0;  // Totals including rotated/dropped chunks.
    uint64_t events_lost = 0;              // Ring wraparound between drains.
    uint64_t op_sample_countdown = 0;      // Histogram sampling.
  };

  Recorder() = default;

  ThreadStream& StreamForThisThread();
  void DrainRing(ThreadStream& stream, uint64_t up_to);
  void RotateChunkLocked(ThreadStream& stream) ODF_REQUIRES(mutex_);
  void MaybeRotate(ThreadStream& stream);
  std::string BuildHeaderJson() const ODF_REQUIRES(mutex_);
  [[nodiscard]] bool WriteLogLocked(const std::string& path, std::string* error)
      ODF_REQUIRES(mutex_);
  static void FiDecisionHook(FiSite site, uint64_t call, bool verdict);
  static void FiConfigHook(FiSite site, const FiSiteConfig* config);
  static void AbortDumpHook();

  mutable util::Mutex mutex_;
  RecorderOptions options_ ODF_GUARDED_BY(mutex_);
  std::atomic<uint64_t> generation_{0};  // Bumped by Start; invalidates TLS stream caches.
  bool ever_started_ ODF_GUARDED_BY(mutex_) = false;
  std::atomic<uint64_t> next_seq_{0};
  std::vector<std::unique_ptr<ThreadStream>> streams_ ODF_GUARDED_BY(mutex_);
  std::deque<RetainedChunk> retained_ ODF_GUARDED_BY(mutex_);  // Rotation order == drop order.
  uint64_t next_rotation_index_ ODF_GUARDED_BY(mutex_) = 0;
  uint64_t retained_bytes_ ODF_GUARDED_BY(mutex_) = 0;
  uint64_t ops_dropped_ ODF_GUARDED_BY(mutex_) = 0;
  uint64_t events_dropped_ ODF_GUARDED_BY(mutex_) = 0;
  uint64_t fi_dropped_ ODF_GUARDED_BY(mutex_) = 0;
  std::vector<uint8_t> trailer_ ODF_GUARDED_BY(mutex_);  // Final-state + meta records.
  bool finalized_ ODF_GUARDED_BY(mutex_) = false;
  uint64_t fi_seed_ ODF_GUARDED_BY(mutex_) = 0;
  bool trace_was_enabled_ ODF_GUARDED_BY(mutex_) = false;  // Tracer state to restore at Stop.
  std::array<uint64_t, kVmCounterCount> vm_baseline_ ODF_GUARDED_BY(mutex_){};
  std::map<const trace::TraceRing*, uint64_t> ring_baseline_
      ODF_GUARDED_BY(mutex_);  // Heads at Start.
  LatencyHistogram* append_histogram_ = nullptr;
};

}  // namespace replay
}  // namespace odf

#endif  // ODF_SRC_REPLAY_RECORDER_H_
