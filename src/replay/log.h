// odf::replay log format — the on-disk flight-recorder log (docs/replay.md).
//
// A log is a schedule: the sequence of kernel *operations* (the public Kernel/Process API
// calls that mutate state), the fault-injection verdicts taken inside them, and the trace
// events they emitted, plus a trailer describing the final kernel state (per-process memory
// digests, allocator aggregates, vmstat counter deltas, per-site fi stats). The replay
// engine (replayer.h) re-executes the operation stream against a fresh Kernel, pins the fi
// verdicts, and cross-checks every recorded outcome.
//
// File layout:
//
//   magic  "ODFRLOG1"                    (8 bytes)
//   u32    header_length                 (little-endian)
//   bytes  header JSON                   (trace::JsonWriter output; informational — the
//                                         catalogs let external tooling decode ids by name)
//   chunk* until EOF
//
// Each chunk is  [u8 kind][varint tid][varint byte_length][records...]  where kind 0 is a
// per-thread stream chunk and kind 1 the trailer. Records are varint-encoded with zigzag
// deltas for timestamps, pids, and event addresses; delta state resets at every chunk
// boundary, so dropping whole chunks (the black-box ring) never corrupts later ones.
//
// Record tags (first byte of every record):
//   1 kOp            one kernel operation: seq, kind, pid, args, payload, outcome
//   2 kFi            one fault-injection decision: site, per-site call index, verdict
//   3 kEvent         one trace event drained from the per-thread ring
//   4 kRingStat      per-ring accounting: tid, appended, overwritten
//   5 kFinalProcess  trailer: per-process memory digest + page counts
//   6 kFinalAlloc    trailer: allocator aggregates
//   7 kFinalVm       trailer: vmstat counter delta over the recording window
//   8 kFinalFi       trailer: per-site fi calls/injected totals
//   9 kMeta          key/value pairs (seed, mode, drop counts, finalized flag)
#ifndef ODF_SRC_REPLAY_LOG_H_
#define ODF_SRC_REPLAY_LOG_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace odf {

// The operation catalog: every recordable public Kernel/Process entry point, plus the
// fault-injection schedule changes (fi_arm/fi_disarm/fi_reset — per-site call indices
// restart at arming, so replay must re-arm at the same schedule points). Arg layouts are
// documented per kind in docs/replay.md; `pid` is the acting process (0 for kernel-wide
// ops such as reclaim or create_process).
#define ODF_REPLAY_OP_LIST(X) \
  X(create_process)           \
  X(fork)                     \
  X(try_fork)                 \
  X(exit)                     \
  X(wait)                     \
  X(set_default_fork_mode)    \
  X(set_fork_mode)            \
  X(set_memory_limit)         \
  X(reclaim)                  \
  X(start_kswapd)             \
  X(stop_kswapd)              \
  X(mmap)                     \
  X(munmap)                   \
  X(mremap)                   \
  X(madvise_dontneed)         \
  X(populate)                 \
  X(write)                    \
  X(read)                     \
  X(memset)                   \
  X(touch)                    \
  X(fi_arm)                   \
  X(fi_disarm)                \
  X(fi_reset)                 \
  X(mf_hard_offline)          \
  X(mf_soft_offline)

enum class OpKind : uint16_t {
#define ODF_REPLAY_OP_ENUM(name) k_##name,
  ODF_REPLAY_OP_LIST(ODF_REPLAY_OP_ENUM)
#undef ODF_REPLAY_OP_ENUM
      kCount,
};

constexpr size_t kOpKindCount = static_cast<size_t>(OpKind::kCount);

// Stable lowercase name, e.g. "try_fork"; "?" for out-of-range values.
const char* OpKindName(OpKind kind);

namespace replay {

inline constexpr char kLogMagic[9] = "ODFRLOG1";  // 8 significant bytes + NUL.
inline constexpr uint32_t kLogVersion = 1;

// Maximum bytes of encoded records per chunk before the recorder rotates to a new one.
// Chunks are also the delta-reset granularity and the black-box drop granularity.
inline constexpr size_t kChunkTargetBytes = 64 * 1024;

// Sentinel tid carried by the trailer chunk.
inline constexpr uint64_t kTrailerTid = 0xffff;

enum class RecordTag : uint8_t {
  kOp = 1,
  kFi = 2,
  kEvent = 3,
  kRingStat = 4,
  kFinalProcess = 5,
  kFinalAlloc = 6,
  kFinalVm = 7,
  kFinalFi = 8,
  kMeta = 9,
};

enum class MetaKey : uint8_t {
  kFiSeed = 1,
  kMode = 2,             // RecorderMode as integer.
  kFinalized = 3,        // 1 when a final-state trailer was captured before Stop.
  kOpsDropped = 4,       // Ops lost to the black-box byte budget.
  kEventsDropped = 5,    // Trace events lost (ring wraparound between drains + budget).
  kFiDropped = 6,        // Fi decisions lost to the black-box byte budget.
  kFaultInjectCompiled = 7,
  kTraceCompiled = 8,
};

// Payload encodings for kOp (write/memset data).
enum class PayloadKind : uint8_t {
  kNone = 0,
  kFill = 1,  // length + one repeated byte value.
  kRaw = 2,   // length + raw bytes.
};

// --- Decoded record model -------------------------------------------------------------

struct OpRecord {
  uint64_t seq = 0;   // Global mutation order (1-based, dense when no ops were dropped).
  uint32_t tid = 0;   // Recording thread (trace-ring tid space).
  OpKind kind = OpKind::kCount;
  int32_t pid = 0;    // Acting process; 0 for kernel-wide ops.
  uint64_t ts_ns = 0;
  std::vector<uint64_t> args;
  uint64_t status = 0;  // Op-specific: FaultResult for memory ops, 0 otherwise.
  uint64_t result = 0;  // Op-specific: pid / va / bool / digest. See docs/replay.md.
  std::vector<std::byte> payload;  // Write data (decoded from fill/raw encoding).

  uint64_t Arg(size_t index) const { return index < args.size() ? args[index] : 0; }
};

struct FiDecisionRecord {
  uint32_t site = 0;
  uint64_t call = 0;  // 1-based per-site call index.
  bool verdict = false;
};

struct LogTraceEvent {
  uint16_t id = 0;
  uint32_t tid = 0;
  int32_t pid = 0;
  uint64_t ts_ns = 0;
  uint64_t a0 = 0, a1 = 0, a2 = 0;
};

struct RingStatRecord {
  uint32_t tid = 0;
  uint64_t appended = 0;
  uint64_t overwritten = 0;
};

struct FinalProcessRecord {
  int32_t pid = 0;
  uint64_t vma_count = 0;
  uint64_t present_pages = 0;
  uint64_t swap_pages = 0;
  uint64_t content_digest = 0;  // FNV-1a over per-page logical contents (replayer.h).
  uint64_t ref_digest = 0;      // FNV-1a over per-page refcounts + table share counts.
};

struct FinalAllocRecord {
  uint64_t allocated_frames = 0;
  uint64_t page_table_frames = 0;
  uint64_t swap_slots_in_use = 0;
};

struct FinalVmRecord {
  uint32_t counter = 0;  // VmCounter index.
  uint64_t delta = 0;    // Increase over the recording window.
};

struct FinalFiRecord {
  uint32_t site = 0;
  uint64_t calls = 0;
  uint64_t injected = 0;
};

// A fully parsed log.
struct ReplayLog {
  std::string header_json;
  uint64_t fi_seed = 0;
  uint32_t mode = 0;
  bool finalized = false;
  bool fault_inject_compiled = false;
  bool trace_compiled = false;
  uint64_t ops_dropped = 0;
  uint64_t events_dropped = 0;
  uint64_t fi_dropped = 0;

  std::vector<OpRecord> ops;  // Sorted by seq after parsing.
  std::vector<FiDecisionRecord> fi_decisions;
  std::vector<LogTraceEvent> events;  // Sorted by ts_ns.
  std::vector<RingStatRecord> ring_stats;
  std::vector<FinalProcessRecord> final_processes;
  std::optional<FinalAllocRecord> final_alloc;
  std::vector<FinalVmRecord> final_vm;
  std::vector<FinalFiRecord> final_fi;

  // True when the op stream is gapless from seq 1 (nothing dropped): the precondition for
  // replay. Black-box logs that wrapped are inspectable but not replayable.
  bool Complete() const;
};

// --- Digests --------------------------------------------------------------------------

// FNV-1a (64-bit): content digests for read outcomes and trailer state. Chainable — pass
// the previous hash to fold multiple regions into one digest.
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t Fnv1aBytes(const std::byte* data, size_t length, uint64_t hash = kFnvOffset) {
  for (size_t i = 0; i < length; ++i) {
    hash = (hash ^ static_cast<uint64_t>(static_cast<uint8_t>(data[i]))) * kFnvPrime;
  }
  return hash;
}

inline uint64_t Fnv1aU64(uint64_t value, uint64_t hash) {
  for (int i = 0; i < 8; ++i) {
    hash = (hash ^ (value & 0xff)) * kFnvPrime;
    value >>= 8;
  }
  return hash;
}

// --- Varint codec ---------------------------------------------------------------------

void PutVarint(std::vector<uint8_t>& out, uint64_t value);

inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
}
inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

inline void PutZigZag(std::vector<uint8_t>& out, int64_t value) {
  PutVarint(out, ZigZagEncode(value));
}

// Bounds-checked sequential reader over an encoded byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ReadVarint(uint64_t* out);
  [[nodiscard]] bool ReadZigZag(int64_t* out) {
    uint64_t raw = 0;
    if (!ReadVarint(&raw)) {
      return false;
    }
    *out = ZigZagDecode(raw);
    return true;
  }
  [[nodiscard]] bool ReadByte(uint8_t* out);
  [[nodiscard]] bool ReadBytes(std::span<std::byte> out);

  bool AtEnd() const { return pos_ >= bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

// --- Chunk encoding -------------------------------------------------------------------

// Per-chunk delta state (reset at every chunk boundary on both sides).
struct DeltaState {
  uint64_t last_seq = 0;
  uint64_t last_ts = 0;
  int64_t last_pid = 0;
  uint64_t last_a[3] = {0, 0, 0};
};

// Appends one encoded record to `out`, updating `state`. Encoders used by the recorder.
void EncodeOp(std::vector<uint8_t>& out, DeltaState& state, const OpRecord& op);

// Allocation-free op encoder for the recording hot path (fields instead of an OpRecord).
void EncodeOpRaw(std::vector<uint8_t>& out, DeltaState& state, uint64_t seq, OpKind kind,
                 int32_t pid, uint64_t ts_ns, const uint64_t* args, uint32_t argc,
                 uint64_t status, uint64_t result, const std::byte* payload,
                 uint64_t payload_length);
void EncodeFiDecision(std::vector<uint8_t>& out, const FiDecisionRecord& record);
void EncodeEvent(std::vector<uint8_t>& out, DeltaState& state, const LogTraceEvent& event);
void EncodeRingStat(std::vector<uint8_t>& out, const RingStatRecord& record);
void EncodeFinalProcess(std::vector<uint8_t>& out, const FinalProcessRecord& record);
void EncodeFinalAlloc(std::vector<uint8_t>& out, const FinalAllocRecord& record);
void EncodeFinalVm(std::vector<uint8_t>& out, const FinalVmRecord& record);
void EncodeFinalFi(std::vector<uint8_t>& out, const FinalFiRecord& record);
void EncodeMeta(std::vector<uint8_t>& out, MetaKey key, uint64_t value);

// Decodes every record in one chunk body into `log`. `tid` is the chunk's thread id.
// Returns false (and fills *error) on malformed input.
[[nodiscard]] bool DecodeChunk(std::span<const uint8_t> body, uint64_t tid, ReplayLog* log,
                               std::string* error);

// --- File I/O -------------------------------------------------------------------------

// A chunk ready to be written: encoded records plus framing metadata.
struct LogChunk {
  uint8_t kind = 0;  // 0 stream, 1 trailer.
  uint64_t tid = 0;
  std::vector<uint8_t> bytes;
};

// Serializes header + chunks to `path`. Returns false (and fills *error) on I/O failure.
[[nodiscard]] bool WriteLogFile(const std::string& path, const std::string& header_json,
                                const std::vector<const LogChunk*>& chunks,
                                std::string* error);

// Parses a log file written by WriteLogFile. Ops are sorted by seq, events by timestamp.
[[nodiscard]] bool ReadLogFile(const std::string& path, ReplayLog* out, std::string* error);

}  // namespace replay
}  // namespace odf

#endif  // ODF_SRC_REPLAY_LOG_H_
