#include "src/replay/recorder.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "src/trace/json.h"
#include "src/util/log.h"

namespace odf {
namespace replay {

namespace {

// Per-thread cached stream pointer; `generation` detects streams invalidated by Start.
struct StreamCache {
  void* stream = nullptr;
  uint64_t generation = 0;
};
thread_local StreamCache t_stream_cache;

// Histogram sampling period for the op append path (power of two, amortizes clock reads).
constexpr uint64_t kOpSamplePeriod = 64;

}  // namespace

const char* RecorderModeName(RecorderMode mode) {
  switch (mode) {
    case RecorderMode::kOff:
      return "off";
    case RecorderMode::kBlackBox:
      return "blackbox";
    case RecorderMode::kFull:
      return "full";
  }
  return "?";
}

Recorder& Recorder::Global() {
  static Recorder* recorder = new Recorder();  // Leaked: hooks may fire during static dtors.
  return *recorder;
}

Recorder::ThreadStream& Recorder::StreamForThisThread() {
  uint64_t generation = generation_.load(std::memory_order_acquire);
  if (t_stream_cache.stream != nullptr && t_stream_cache.generation == generation) {
    return *static_cast<ThreadStream*>(t_stream_cache.stream);
  }
  // Slow path: first op on this thread in this recording.
  trace::TraceRing& ring = trace::Tracer::Global().RingForThisThread();
  util::MutexLock guard(mutex_);
  auto stream = std::make_unique<ThreadStream>();
  stream->tid = ring.tid();
  stream->ring = &ring;
  auto baseline = ring_baseline_.find(&ring);
  stream->ring_cursor = baseline != ring_baseline_.end() ? baseline->second : 0;
  stream->open.reserve(kChunkTargetBytes + 4096);
  streams_.push_back(std::move(stream));
  t_stream_cache.stream = streams_.back().get();
  t_stream_cache.generation = generation;
  return *streams_.back();
}

void Recorder::DrainRing(ThreadStream& stream, uint64_t up_to) {
  if (stream.ring == nullptr || up_to <= stream.ring_cursor) {
    return;
  }
  uint64_t resident_start =
      up_to > trace::TraceRing::kCapacity ? up_to - trace::TraceRing::kCapacity : 0;
  if (resident_start > stream.ring_cursor) {
    uint64_t lost = resident_start - stream.ring_cursor;
    stream.events_lost += lost;
    CountVm(VmCounter::k_replay_events_dropped, lost);
    stream.ring_cursor = resident_start;
  }
  std::vector<TraceEvent> events = stream.ring->SnapshotSince(stream.ring_cursor);
  for (const TraceEvent& event : events) {
    LogTraceEvent record;
    record.id = static_cast<uint16_t>(event.id);
    record.tid = event.tid;
    record.pid = event.pid;
    record.ts_ns = event.ts_ns;
    record.a0 = event.a0;
    record.a1 = event.a1;
    record.a2 = event.a2;
    EncodeEvent(stream.open, stream.state, record);
  }
  stream.open_events += events.size();
  stream.events += events.size();
  stream.ring_cursor = up_to;
}

void Recorder::RotateChunkLocked(ThreadStream& stream) {
  if (stream.open.empty()) {
    return;
  }
  RetainedChunk retained;
  retained.rotation_index = next_rotation_index_++;
  retained.ops = stream.open_ops;
  retained.events = stream.open_events;
  retained.fi = stream.open_fi;
  retained.chunk.kind = 0;
  retained.chunk.tid = stream.tid;
  retained.chunk.bytes = std::move(stream.open);
  retained_bytes_ += retained.chunk.bytes.size();
  CountVm(VmCounter::k_replay_record_bytes, retained.chunk.bytes.size());
  CountVm(VmCounter::k_replay_ops_recorded, retained.ops);
  CountVm(VmCounter::k_replay_events_recorded, retained.events);
  retained_.push_back(std::move(retained));
  stream.open = {};
  stream.open.reserve(kChunkTargetBytes + 4096);
  stream.open_ops = stream.open_events = stream.open_fi = 0;
  stream.state = DeltaState{};
  if (options_.mode == RecorderMode::kBlackBox) {
    while (retained_bytes_ > options_.blackbox_budget_bytes && retained_.size() > 1) {
      const RetainedChunk& oldest = retained_.front();
      ops_dropped_ += oldest.ops;
      events_dropped_ += oldest.events;
      fi_dropped_ += oldest.fi;
      CountVm(VmCounter::k_replay_events_dropped, oldest.events);
      retained_bytes_ -= oldest.chunk.bytes.size();
      retained_.pop_front();
    }
  }
}

void Recorder::MaybeRotate(ThreadStream& stream) {
  if (stream.open.size() >= kChunkTargetBytes) {
    util::MutexLock guard(mutex_);
    RotateChunkLocked(stream);
  }
}

namespace detail {

void RecordOp(OpKind kind, int32_t pid, const uint64_t* args, uint32_t argc, uint64_t status,
              uint64_t result, const std::byte* payload, uint64_t payload_length) {
  Recorder& recorder = Recorder::Global();
  if (!recorder.recording()) {
    return;  // Raced a Stop; drop silently.
  }
  Recorder::ThreadStream& stream = recorder.StreamForThisThread();
  bool sampled = stream.op_sample_countdown-- == 0;
  uint64_t t0 = 0;
  if (sampled) {
    stream.op_sample_countdown = kOpSamplePeriod - 1;
    t0 = trace::NowNanos();
  }
  uint64_t seq = recorder.next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Non-sampled ops reuse the last timestamp (a 1-byte zero delta): op order is carried by
  // seq, and skipping the clock read keeps the append path cheap.
  uint64_t ts = sampled ? t0 : stream.state.last_ts;
  EncodeOpRaw(stream.open, stream.state, seq, kind, pid, ts, args, argc, status, result,
              payload, payload_length);
  ++stream.open_ops;
  ++stream.ops;
  recorder.DrainRing(stream, stream.ring->TotalAppended());
  if (sampled && recorder.append_histogram_ != nullptr) {
    recorder.append_histogram_->RecordNanos(trace::NowNanos() - t0);
  }
  recorder.MaybeRotate(stream);
}

}  // namespace detail

void Recorder::FiDecisionHook(FiSite site, uint64_t call, bool verdict) {
  Recorder& recorder = Global();
  if (!recorder.recording()) {
    return;
  }
  ThreadStream& stream = recorder.StreamForThisThread();
  FiDecisionRecord record;
  record.site = static_cast<uint32_t>(site);
  record.call = call;
  record.verdict = verdict;
  EncodeFiDecision(stream.open, record);
  ++stream.open_fi;
  ++stream.fi;
}

// Arm/Disarm/Reset become schedule ops: per-site call indices restart at every arming, so
// replay must re-arm (or re-pin) at exactly the recorded points to keep the recorded
// decision indices aligned. Config changes made inside a kernel op (depth > 0) replay as
// part of that op and are not separate schedule entries.
void Recorder::FiConfigHook(FiSite site, const FiSiteConfig* config) {
  Recorder& recorder = Global();
  if (!recorder.recording() || detail::t_op_depth != 0) {
    return;
  }
  uint64_t args[5];
  uint32_t argc = 0;
  OpKind kind;
  if (site == FiSite::kCount) {
    kind = OpKind::k_fi_reset;
    args[argc++] = fi::FaultInjector::Global().seed();  // Hook fires outside the fi lock.
  } else if (config == nullptr) {
    kind = OpKind::k_fi_disarm;
    args[argc++] = static_cast<uint64_t>(site);
  } else {
    kind = OpKind::k_fi_arm;
    args[argc++] = static_cast<uint64_t>(site);
    uint64_t probability_bits = 0;
    static_assert(sizeof(probability_bits) == sizeof(config->probability));
    std::memcpy(&probability_bits, &config->probability, sizeof(probability_bits));
    args[argc++] = probability_bits;
    args[argc++] = config->nth;
    args[argc++] = config->interval;
    args[argc++] = static_cast<uint64_t>(config->times);
  }
  detail::RecordOp(kind, /*pid=*/0, args, argc, /*status=*/0, /*result=*/0,
                   /*payload=*/nullptr, /*payload_length=*/0);
}

void Recorder::AbortDumpHook() { Global().DumpNow(); }

bool Recorder::Start(const RecorderOptions& options) {
  if (recording()) {
    return false;
  }
  util::MutexLock guard(mutex_);
  options_ = options;
  if (const char* dir = std::getenv("ODF_REPLAY_DUMP_DIR"); dir != nullptr && dir[0] != '\0') {
    options_.dump_dir = dir;
  }
  if (options_.dump_dir.empty()) {
    options_.dump_dir = ".";
  }
  streams_.clear();
  retained_.clear();
  trailer_.clear();
  finalized_ = false;
  next_seq_.store(0, std::memory_order_relaxed);
  next_rotation_index_ = 0;
  retained_bytes_ = 0;
  ops_dropped_ = events_dropped_ = fi_dropped_ = 0;
  fi_seed_ = fi::FaultInjector::Global().seed();
  for (size_t i = 0; i < kVmCounterCount; ++i) {
    vm_baseline_[i] = ReadVm(static_cast<VmCounter>(i));
  }
  ring_baseline_.clear();
  for (const trace::TraceRing* ring : trace::Tracer::Global().Rings()) {
    ring_baseline_[ring] = ring->TotalAppended();
  }
  append_histogram_ = &MetricsRegistry::Global().RegisterHistogram("replay_append");
  ever_started_ = true;
  generation_.fetch_add(1, std::memory_order_acq_rel);
  // Trace capture is runtime-gated and per-event tracepoints are the expensive part of a
  // recording (the op stream alone is ~free and fully replayable). The default leaves the
  // tracer as found — a black box a bench can fly with; force_tracing buys the annotated
  // event stream at tracepoint cost (see bench/fig_replay_overhead.cc for both prices).
  trace_was_enabled_ = trace::Enabled();
  if (options_.force_tracing) {
    trace::SetEnabled(true);
  }
  fi::SetDecisionHook(&Recorder::FiDecisionHook);
  fi::SetConfigHook(&Recorder::FiConfigHook);
  SetAbortHook(&Recorder::AbortDumpHook);
  g_recording.store(true, std::memory_order_release);
  return true;
}

void Recorder::Stop() {
  if (!recording()) {
    return;
  }
  g_recording.store(false, std::memory_order_release);
  fi::SetDecisionHook(nullptr);
  fi::SetConfigHook(nullptr);
  SetAbortHook(nullptr);
  util::MutexLock guard(mutex_);
  if (options_.force_tracing) {
    trace::SetEnabled(trace_was_enabled_);
  }
  // Final drain: each op thread's ring, then rings owned by threads that never ran an op
  // (kswapd and friends) via synthetic event-only streams.
  for (auto& stream : streams_) {
    DrainRing(*stream, stream->ring->TotalAppended());
  }
  for (const trace::TraceRing* ring : trace::Tracer::Global().Rings()) {
    bool owned = false;
    for (const auto& stream : streams_) {
      owned = owned || stream->ring == ring;
    }
    if (owned) {
      continue;
    }
    auto stream = std::make_unique<ThreadStream>();
    stream->tid = ring->tid();
    // Rings are only appended by their owners; draining a foreign ring is safe because Stop
    // requires emitting threads to be quiescent.
    stream->ring = const_cast<trace::TraceRing*>(ring);
    auto baseline = ring_baseline_.find(ring);
    stream->ring_cursor = baseline != ring_baseline_.end() ? baseline->second : 0;
    DrainRing(*stream, ring->TotalAppended());
    if (!stream->open.empty()) {
      streams_.push_back(std::move(stream));
    }
  }
  for (auto& stream : streams_) {
    RotateChunkLocked(*stream);
  }
}

void Recorder::CaptureFinalState(const std::vector<FinalProcessRecord>& processes,
                                 const FinalAllocRecord& alloc) {
  util::MutexLock guard(mutex_);
  trailer_.clear();
  for (const FinalProcessRecord& process : processes) {
    EncodeFinalProcess(trailer_, process);
  }
  EncodeFinalAlloc(trailer_, alloc);
  for (size_t i = 0; i < kVmCounterCount; ++i) {
    uint64_t delta = ReadVm(static_cast<VmCounter>(i)) - vm_baseline_[i];
    if (delta != 0) {
      EncodeFinalVm(trailer_, {static_cast<uint32_t>(i), delta});
    }
  }
  for (size_t i = 0; i < kFiSiteCount; ++i) {
    FiSiteStats stats = fi::FaultInjector::Global().SiteStats(static_cast<FiSite>(i));
    if (stats.calls != 0) {
      EncodeFinalFi(trailer_, {static_cast<uint32_t>(i), stats.calls, stats.injected});
    }
  }
  finalized_ = true;
}

std::string Recorder::BuildHeaderJson() const {
  std::ostringstream out;
  JsonWriter json(out, /*indent_width=*/0);
  json.BeginObject();
  json.Key("format").Value("odf-replay-log");
  json.Key("version").Value(static_cast<uint64_t>(kLogVersion));
  json.Key("mode").Value(RecorderModeName(options_.mode));
  json.Key("fi_seed").Value(fi_seed_);
  json.Key("finalized").Value(finalized_);
  uint64_t ops = 0;
  for (const auto& stream : streams_) {
    ops += stream->ops;
  }
  json.Key("ops").Value(ops);
  json.Key("threads").Value(static_cast<uint64_t>(streams_.size()));
  json.Key("op_kinds").BeginArray();
  for (size_t i = 0; i < kOpKindCount; ++i) {
    json.Value(OpKindName(static_cast<OpKind>(i)));
  }
  json.EndArray();
  json.Key("trace_events").BeginArray();
  for (size_t i = 0; i < kTraceEventCount; ++i) {
    json.Value(TraceEventName(static_cast<TraceEventId>(i)));
  }
  json.EndArray();
  json.Key("fi_sites").BeginArray();
  for (size_t i = 0; i < kFiSiteCount; ++i) {
    json.Value(FiSiteName(static_cast<FiSite>(i)));
  }
  json.EndArray();
  json.Key("vm_counters").BeginArray();
  for (size_t i = 0; i < kVmCounterCount; ++i) {
    json.Value(VmCounterName(static_cast<VmCounter>(i)));
  }
  json.EndArray();
  json.EndObject();
  return out.str();
}

bool Recorder::WriteLogLocked(const std::string& path, std::string* error) {
  if (!ever_started_) {
    if (error != nullptr) {
      *error = "nothing recorded (Recorder::Start was never called)";
    }
    return false;
  }
  // Trailer chunk: final-state records + ring accounting + meta.
  std::vector<uint8_t> trailer_bytes = trailer_;
  for (const trace::Tracer::RingStats& ring : trace::Tracer::Global().CollectRingStats()) {
    EncodeRingStat(trailer_bytes, {ring.tid, ring.appended, ring.overwritten});
  }
  uint64_t events_lost = 0;
  for (const auto& stream : streams_) {
    events_lost += stream->events_lost;
  }
  EncodeMeta(trailer_bytes, MetaKey::kFiSeed, fi_seed_);
  EncodeMeta(trailer_bytes, MetaKey::kMode, static_cast<uint64_t>(options_.mode));
  EncodeMeta(trailer_bytes, MetaKey::kFinalized, finalized_ ? 1 : 0);
  EncodeMeta(trailer_bytes, MetaKey::kOpsDropped, ops_dropped_);
  EncodeMeta(trailer_bytes, MetaKey::kEventsDropped, events_dropped_ + events_lost);
  EncodeMeta(trailer_bytes, MetaKey::kFiDropped, fi_dropped_);
  EncodeMeta(trailer_bytes, MetaKey::kFaultInjectCompiled, ODF_FAULT_INJECT_COMPILED);
  EncodeMeta(trailer_bytes, MetaKey::kTraceCompiled, ODF_TRACE_COMPILED);
  LogChunk trailer_chunk;
  trailer_chunk.kind = 1;
  trailer_chunk.tid = kTrailerTid;
  trailer_chunk.bytes = std::move(trailer_bytes);

  std::vector<LogChunk> open_chunks;  // Snapshot of still-open chunks (running recording).
  std::vector<const LogChunk*> chunks;
  for (const RetainedChunk& retained : retained_) {
    chunks.push_back(&retained.chunk);
  }
  for (const auto& stream : streams_) {
    if (!stream->open.empty()) {
      LogChunk chunk;
      chunk.kind = 0;
      chunk.tid = stream->tid;
      chunk.bytes = stream->open;
      open_chunks.push_back(std::move(chunk));
    }
  }
  for (const LogChunk& chunk : open_chunks) {
    chunks.push_back(&chunk);
  }
  chunks.push_back(&trailer_chunk);
  return WriteLogFile(path, BuildHeaderJson(), chunks, error);
}

bool Recorder::WriteLog(const std::string& path, std::string* error) {
  util::MutexLock guard(mutex_);
  return WriteLogLocked(path, error);
}

std::string Recorder::DumpNow() {
  util::TryMutexLock lock(mutex_);
  if (!lock.ok()) {
    std::fprintf(stderr, "[odf replay] recorder busy; black-box dump skipped\n");
    return "";
  }
  if (!ever_started_) {
    return "";
  }
  std::string path = options_.dump_dir + "/odf-replay-blackbox.odflog";
  std::string error;
  if (!WriteLogLocked(path, &error)) {
    std::fprintf(stderr, "[odf replay] black-box dump failed: %s\n", error.c_str());
    return "";
  }
  uint64_t ops = 0;
  for (const auto& stream : streams_) {
    ops += stream->ops;
  }
  std::fprintf(stderr,
               "[odf replay] flight recorder dumped %llu ops to %s\n"
               "[odf replay] inspect: odf-replay dump %s\n"
               "[odf replay] replay:  odf-replay replay %s\n",
               static_cast<unsigned long long>(ops), path.c_str(), path.c_str(), path.c_str());
  std::fflush(stderr);
  return path;
}

RecorderMode Recorder::mode() const {
  util::MutexLock guard(mutex_);
  return options_.mode;
}

RecorderStats Recorder::CollectStats() const {
  util::MutexLock guard(mutex_);
  RecorderStats stats;
  stats.mode = options_.mode;
  stats.recording = g_recording.load(std::memory_order_relaxed);
  stats.ops_dropped = ops_dropped_;
  stats.fi_dropped = fi_dropped_;
  stats.events_dropped = events_dropped_;
  stats.threads = streams_.size();
  stats.bytes = retained_bytes_ + trailer_.size();
  for (const auto& stream : streams_) {
    stats.ops += stream->ops;
    stats.events += stream->events;
    stats.fi_decisions += stream->fi;
    stats.events_dropped += stream->events_lost;
    stats.bytes += stream->open.size();
  }
  return stats;
}

std::string Recorder::FormatStatus() const {
  RecorderStats stats = CollectStats();
  std::ostringstream out;
  out << "replay " << (ODF_REPLAY_COMPILED ? "compiled-in" : "compiled-out") << " mode "
      << RecorderModeName(stats.mode) << " recording " << (stats.recording ? 1 : 0) << "\n";
  out << "ops " << stats.ops << " events " << stats.events << " fi_decisions "
      << stats.fi_decisions << " bytes " << stats.bytes << "\n";
  out << "ops_dropped " << stats.ops_dropped << " events_dropped " << stats.events_dropped
      << " fi_dropped " << stats.fi_dropped << " threads " << stats.threads << "\n";
  return out.str();
}

bool Recorder::Configure(std::string_view spec, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  RecorderOptions options;
  bool want_start = false;
  size_t pos = 0;
  while (pos < spec.size()) {
    while (pos < spec.size() && (spec[pos] == ' ' || spec[pos] == '\t' || spec[pos] == '\n')) {
      ++pos;
    }
    if (pos >= spec.size()) {
      break;
    }
    size_t end = pos;
    while (end < spec.size() && spec[end] != ' ' && spec[end] != '\t' && spec[end] != '\n') {
      ++end;
    }
    std::string_view token = spec.substr(pos, end - pos);
    pos = end;
    if (token == "start") {
      want_start = true;
      continue;
    }
    if (token == "stop") {
      Stop();
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return fail("malformed token (want key=value): '" + std::string(token) + "'");
    }
    std::string_view key = token.substr(0, eq);
    std::string value(token.substr(eq + 1));
    if (key == "mode") {
      if (value == "full") {
        options.mode = RecorderMode::kFull;
      } else if (value == "blackbox") {
        options.mode = RecorderMode::kBlackBox;
      } else {
        return fail("unknown mode: '" + value + "'");
      }
    } else if (key == "budget") {
      char* parse_end = nullptr;
      options.blackbox_budget_bytes = std::strtoull(value.c_str(), &parse_end, 10);
      if (parse_end != value.c_str() + value.size() || value.empty()) {
        return fail("bad budget: '" + value + "'");
      }
    } else if (key == "trace") {
      if (value != "0" && value != "1") {
        return fail("bad trace flag (want 0 or 1): '" + value + "'");
      }
      options.force_tracing = value == "1";
    } else if (key == "dir") {
      options.dump_dir = value;
    } else if (key == "dump") {
      util::MutexLock guard(mutex_);
      std::string write_error;
      if (!WriteLogLocked(value, &write_error)) {
        return fail(write_error);
      }
    } else {
      return fail("unknown key: '" + std::string(key) + "'");
    }
  }
  if (want_start && !Start(options)) {
    return fail("already recording");
  }
  return true;
}

}  // namespace replay
}  // namespace odf
