// odf-replay: flight-recorder log inspector + replay driver (docs/replay.md).
//
//   odf-replay inspect <log>                       summary: meta, counts, final state
//   odf-replay dump <log> [filters]                ftrace-style record listing
//   odf-replay replay <log> [--until SEQ] [...]    re-execute and cross-check
//   odf-replay selftest [path]                     record+replay a mixed workload (CI gate)
//
// Dump filters: --pid N, --op NAME, --event NAME, --va LO:HI (hex ok), --events-only,
// --ops-only. Replay flags: --until SEQ, --no-pin, --no-final, --no-verifier.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/debug/verify.h"
#include "src/fi/fault_inject.h"
#include "src/proc/kernel.h"
#include "src/proc/process.h"
#include "src/replay/log.h"
#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "src/trace/trace.h"

namespace {

using namespace odf;  // NOLINT: single-file CLI tool.

int Usage() {
  std::fprintf(stderr,
               "usage: odf-replay <command> [args]\n"
               "  inspect <log>                      log summary\n"
               "  dump <log> [--pid N] [--op NAME] [--event NAME] [--va LO:HI]\n"
               "             [--ops-only] [--events-only]\n"
               "  replay <log> [--until SEQ] [--no-pin] [--no-final] [--no-verifier]\n"
               "  selftest [path]                    record + replay a mixed workload\n");
  return 2;
}

bool LoadLog(const char* path, replay::ReplayLog* log) {
  std::string error;
  if (!replay::ReadLogFile(path, log, &error)) {
    std::fprintf(stderr, "odf-replay: %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

int Inspect(const replay::ReplayLog& log) {
  std::printf("mode            %s\n",
              replay::RecorderModeName(static_cast<replay::RecorderMode>(log.mode)));
  std::printf("fi_seed         %" PRIu64 "\n", log.fi_seed);
  std::printf("finalized       %s\n", log.finalized ? "yes" : "no");
  std::printf("replayable      %s\n", log.Complete() ? "yes" : "no");
  std::printf("ops             %zu (dropped %" PRIu64 ")\n", log.ops.size(), log.ops_dropped);
  std::printf("fi_decisions    %zu (dropped %" PRIu64 ")\n", log.fi_decisions.size(),
              log.fi_dropped);
  std::printf("trace_events    %zu (dropped %" PRIu64 ")\n", log.events.size(),
              log.events_dropped);
  for (const replay::RingStatRecord& ring : log.ring_stats) {
    std::printf("ring tid=%u      appended %" PRIu64 " overwritten %" PRIu64 "\n", ring.tid,
                ring.appended, ring.overwritten);
  }
  for (const replay::FinalProcessRecord& p : log.final_processes) {
    std::printf("final pid=%d     vmas %" PRIu64 " present %" PRIu64 " swap %" PRIu64
                " content %016" PRIx64 " refs %016" PRIx64 "\n",
                p.pid, p.vma_count, p.present_pages, p.swap_pages, p.content_digest,
                p.ref_digest);
  }
  if (log.final_alloc.has_value()) {
    std::printf("final alloc     frames %" PRIu64 " tables %" PRIu64 " swap_slots %" PRIu64
                "\n",
                log.final_alloc->allocated_frames, log.final_alloc->page_table_frames,
                log.final_alloc->swap_slots_in_use);
  }
  return 0;
}

struct DumpFilter {
  int64_t pid = -1;           // -1 = any.
  std::string op;             // Empty = any.
  std::string event;          // Empty = any.
  uint64_t va_lo = 0, va_hi = ~uint64_t{0};
  bool ops = true;
  bool events = true;
};

// The recorded ops carry a VA in arg 0 for every memory op; mapping ops cover
// [result/arg0, +length). Match generously: any arg or the result inside the window.
bool OpInVaRange(const replay::OpRecord& op, uint64_t lo, uint64_t hi) {
  if (lo == 0 && hi == ~uint64_t{0}) {
    return true;
  }
  for (uint64_t a : op.args) {
    if (a >= lo && a < hi) {
      return true;
    }
  }
  return op.result >= lo && op.result < hi;
}

int Dump(const replay::ReplayLog& log, const DumpFilter& filter) {
  if (filter.ops) {
    for (const replay::OpRecord& op : log.ops) {
      if (filter.pid >= 0 && op.pid != filter.pid) {
        continue;
      }
      if (!filter.op.empty() && filter.op != OpKindName(op.kind)) {
        continue;
      }
      if (!OpInVaRange(op, filter.va_lo, filter.va_hi)) {
        continue;
      }
      std::printf("[%6" PRIu64 "] %8" PRIu64 ".%06" PRIu64 " tid=%-2u pid=%-3d %s(", op.seq,
                  op.ts_ns / 1000000000, (op.ts_ns % 1000000000) / 1000, op.tid, op.pid,
                  OpKindName(op.kind));
      for (size_t i = 0; i < op.args.size(); ++i) {
        std::printf("%s0x%" PRIx64, i == 0 ? "" : ", ", op.args[i]);
      }
      std::printf(") -> 0x%" PRIx64, op.result);
      if (op.status != 0) {
        std::printf(" status=%" PRIu64, op.status);
      }
      if (!op.payload.empty()) {
        std::printf(" payload=%zuB", op.payload.size());
      }
      std::printf("\n");
    }
  }
  if (filter.events) {
    for (const replay::LogTraceEvent& event : log.events) {
      if (filter.pid >= 0 && event.pid != filter.pid) {
        continue;
      }
      const char* name = TraceEventName(static_cast<TraceEventId>(event.id));
      if (!filter.event.empty() && filter.event != name) {
        continue;
      }
      bool in_range = (filter.va_lo == 0 && filter.va_hi == ~uint64_t{0}) ||
                      (event.a0 >= filter.va_lo && event.a0 < filter.va_hi);
      if (!in_range) {
        continue;
      }
      std::printf("  event  %8" PRIu64 ".%06" PRIu64 " tid=%-2u pid=%-3d %s 0x%" PRIx64
                  " 0x%" PRIx64 " 0x%" PRIx64 "\n",
                  event.ts_ns / 1000000000, (event.ts_ns % 1000000000) / 1000, event.tid,
                  event.pid, name, event.a0, event.a1, event.a2);
    }
  }
  return 0;
}

bool ParseVaRange(const char* spec, uint64_t* lo, uint64_t* hi) {
  const char* colon = std::strchr(spec, ':');
  if (colon == nullptr) {
    return false;
  }
  char* end = nullptr;
  *lo = std::strtoull(spec, &end, 0);
  if (end != colon) {
    return false;
  }
  *hi = std::strtoull(colon + 1, &end, 0);
  return *end == '\0' && *hi > *lo;
}

int RunReplay(const char* path, const replay::ReplayOptions& options) {
  replay::ReplayReport report = replay::ReplayFile(path, options);
  std::printf("%s", report.Describe().c_str());
  return report.ok() ? 0 : 1;
}

// Records a mixed fork/fault/reclaim workload (with fault injection armed), writes the log,
// replays it, and fails on any divergence. The ci/check.sh determinism gate.
int Selftest(const std::string& path) {
  fi::FaultInjector::Global().Reset();
  replay::RecorderOptions options;
  options.mode = replay::RecorderMode::kFull;
  options.force_tracing = true;  // The selftest log doubles as a CLI demo; keep it annotated.
  if (!replay::Recorder::Global().Start(options)) {
    std::fprintf(stderr, "odf-replay: selftest: recorder already running\n");
    return 1;
  }

  {
    Kernel kernel;
    Process& parent = kernel.CreateProcess();
    constexpr uint64_t kPages = 96;
    Vaddr buf = parent.Mmap(kPages * kPageSize, kProtRead | kProtWrite);
    std::vector<std::byte> page(kPageSize);
    for (uint64_t i = 0; i < kPages; ++i) {
      for (uint64_t j = 0; j < kPageSize; ++j) {
        page[j] = static_cast<std::byte>((i * 13 + j) & 0xff);
      }
      parent.WriteMemory(buf + i * kPageSize, page);
    }

    // Memory pressure: cap RAM so the child's COW copies push cold pages to swap.
    kernel.SetMemoryLimitFrames(160);

    Process* child = kernel.TryFork(parent, ForkMode::kOnDemand);
    if (child != nullptr) {
      for (uint64_t i = 0; i < kPages; i += 2) {
        child->MemsetMemory(buf + i * kPageSize, static_cast<std::byte>(i & 0xff),
                            kPageSize);
      }
    }

    // Deterministic fault injection: every 7th frame allocation fails (at most 5 times);
    // the recorded verdicts are pinned on replay.
    FiSiteConfig config;
    config.interval = 7;
    config.times = 5;
    fi::FaultInjector::Global().Arm(FiSite::k_frame_alloc, config);
    for (uint64_t i = 1; i < kPages; i += 2) {
      parent.TouchRange(buf + i * kPageSize, kPageSize, AccessType::kWrite);
    }
    fi::FaultInjector::Global().Disarm(FiSite::k_frame_alloc);

    kernel.ReclaimMemory(16);
    if (child != nullptr) {
      kernel.Exit(*child, 0);
      kernel.Wait(parent);
    }

    // A workload that breaks kernel invariants on its own would misattribute the failure
    // to replay; verify the recording-side kernel before comparing against it.
    debug::VerifyResult verify = debug::VerifyKernel(kernel);
    for (const std::string& violation : verify.violations) {
      std::fprintf(stderr, "odf-replay: selftest: recorded kernel: %s\n", violation.c_str());
    }
    if (!verify.violations.empty()) {
      return 1;
    }

    std::string error;
    if (!replay::StopAndWriteLog(kernel, path, &error)) {
      std::fprintf(stderr, "odf-replay: selftest: write failed: %s\n", error.c_str());
      return 1;
    }
  }

  std::printf("recorded %s\n", path.c_str());
  int rc = RunReplay(path.c_str(), replay::ReplayOptions{});
  if (rc == 0) {
    std::printf("selftest OK\n");
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];

  if (command == "selftest") {
    return Selftest(argc >= 3 ? argv[2] : "odf-replay-selftest.odflog");
  }
  if (argc < 3) {
    return Usage();
  }
  const char* path = argv[2];

  if (command == "inspect") {
    replay::ReplayLog log;
    return LoadLog(path, &log) ? Inspect(log) : 1;
  }
  if (command == "dump") {
    replay::ReplayLog log;
    if (!LoadLog(path, &log)) {
      return 1;
    }
    DumpFilter filter;
    for (int i = 3; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--pid" && i + 1 < argc) {
        filter.pid = std::atoll(argv[++i]);
      } else if (arg == "--op" && i + 1 < argc) {
        filter.op = argv[++i];
      } else if (arg == "--event" && i + 1 < argc) {
        filter.event = argv[++i];
      } else if (arg == "--va" && i + 1 < argc) {
        if (!ParseVaRange(argv[++i], &filter.va_lo, &filter.va_hi)) {
          std::fprintf(stderr, "odf-replay: bad --va range (want LO:HI)\n");
          return 2;
        }
      } else if (arg == "--ops-only") {
        filter.events = false;
      } else if (arg == "--events-only") {
        filter.ops = false;
      } else {
        return Usage();
      }
    }
    return Dump(log, filter);
  }
  if (command == "replay") {
    replay::ReplayOptions options;
    for (int i = 3; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--until" && i + 1 < argc) {
        options.until_seq = std::strtoull(argv[++i], nullptr, 0);
      } else if (arg == "--no-pin") {
        options.pin_fi = false;
      } else if (arg == "--no-final") {
        options.check_final = false;
      } else if (arg == "--no-verifier") {
        options.run_verifier = false;
      } else {
        return Usage();
      }
    }
    return RunReplay(path, options);
  }
  return Usage();
}
