// MutationScope: the quiescence protocol between kernel mutators and the full-system
// verifier (src/debug/verify.h).
//
// The verifier reads every process's paging structures non-atomically, so it may only run
// when no other thread is mid-mutation. The protocol is a single global shared_mutex:
// every mutating entry point (fork, exit, zap, fault, file write, ...) wraps itself in a
// MutationScope, which holds the lock SHARED for the outermost scope on each thread;
// AutoVerifyKernel try-locks it EXCLUSIVE and silently skips when the try fails. The
// verifier therefore never blocks a mutator and never observes torn state.
//
// This lives in odf_debug_core (not odf_debug) so layers below the process tree — phys,
// pt, mm, fs — can mark their mutations without linking against the Kernel-aware
// verifier. With -DODF_DEBUG_VM=OFF the scope is an empty object and compiles to nothing.
#ifndef ODF_SRC_DEBUG_MUTATION_H_
#define ODF_SRC_DEBUG_MUTATION_H_

#include "src/debug/debug.h"

namespace odf {
namespace debug {

#if ODF_DEBUG_VM_COMPILED

// RAII marker wrapped around every kernel mutation. Holds the global verify lock shared
// (outermost scope only) and tracks per-thread nesting depth.
class MutationScope {
 public:
  MutationScope();
  MutationScope(const MutationScope&) = delete;
  MutationScope& operator=(const MutationScope&) = delete;
  ~MutationScope();

  // Nesting depth of mutation scopes on the calling thread (0 = not mutating).
  static int Depth();
};

namespace internal {

// Verifier side of the protocol: exclusive try-lock on the quiescence lock. Returns false
// when any thread holds a MutationScope. Used by AutoVerifyKernel; tests stay on the
// public VerifyKernel API.
bool TryLockQuiescent();
void UnlockQuiescent();

}  // namespace internal

#else  // ODF_DEBUG_VM_COMPILED

class MutationScope {
 public:
  // User-provided (still empty, still zero-cost) so scope objects are non-trivial and
  // -Wunused-variable stays quiet at the instrumentation sites.
  MutationScope() {}
  ~MutationScope() {}
  MutationScope(const MutationScope&) = delete;
  MutationScope& operator=(const MutationScope&) = delete;
  static int Depth() { return 0; }
};

#endif  // ODF_DEBUG_VM_COMPILED

}  // namespace debug
}  // namespace odf

#endif  // ODF_SRC_DEBUG_MUTATION_H_
