#include "src/debug/lockdep.h"

#if ODF_DEBUG_VM_COMPILED

#include <sstream>
#include <string>

#include "src/util/log.h"

namespace odf {
namespace debug {

namespace {

constexpr int kMaxClasses = 64;
constexpr int kMaxHeld = 16;

struct HeldLock {
  int class_id = -1;
  const char* class_name = nullptr;
  const char* file = nullptr;
  uint32_t line = 0;
};

struct HeldStack {
  HeldLock locks[kMaxHeld];
  int depth = 0;
};

HeldStack& ThreadHeld() {
  thread_local HeldStack stack;
  return stack;
}

// The global class dependency graph. Guarded by its own (deliberately lockdep-exempt)
// mutex; it is a leaf lock touched only on the slow path of a first-seen dependency.
class LockdepGraph {
 public:
  static LockdepGraph& Global() {
    // Leaked on purpose: instrumented locks may be taken during static destruction.
    static LockdepGraph* graph = new LockdepGraph;
    return *graph;
  }

  int ClassId(LockClass& cls) {
    int id = cls.assigned_id();
    if (id >= 0) {
      return id;
    }
    util::MutexLock guard(mutex_);
    id = cls.assigned_id();
    if (id >= 0) {
      return id;
    }
    ODF_CHECK(class_count_ < kMaxClasses) << "lockdep: too many lock classes";
    id = class_count_++;
    names_[id] = cls.name();
    cls.assign_id(id);
    return id;
  }

  // Records the dependency held -> acquired, aborting with both acquisition contexts and
  // the existing dependency chain when the new edge would close a cycle.
  void AddDependency(const HeldLock& held, int acquired_id, const char* acquired_name,
                     const char* file, uint32_t line) {
    util::MutexLock guard(mutex_);
    if (edge_[held.class_id][acquired_id]) {
      return;  // Known-good ordering; nothing to do.
    }
    // A path acquired -> ... -> held means the reverse ordering is already on record:
    // adding held -> acquired would create a cycle, i.e. an ABBA deadlock candidate.
    int path[kMaxClasses] = {};
    int path_length = FindPath(acquired_id, held.class_id, path, 0);
    if (path_length > 0) {
      std::ostringstream out;
      out << "lock-order inversion: acquiring \"" << acquired_name << "\" at " << file << ":"
          << line << " while holding \"" << held.class_name << "\" (acquired at " << held.file
          << ":" << held.line << "), but the reverse ordering is already established:\n";
      for (int i = 0; i + 1 <= path_length; ++i) {
        int from = path[i];
        int to = i + 1 == path_length ? held.class_id : path[i + 1];
        out << "  \"" << names_[from] << "\" -> \"" << names_[to] << "\" recorded at "
            << contexts_[from][to] << "\n";
      }
      ODF_CHECK(false) << out.str();
    }
    edge_[held.class_id][acquired_id] = true;
    std::ostringstream ctx;
    ctx << file << ":" << line << " (holding \"" << held.class_name << "\" from " << held.file
        << ":" << held.line << ")";
    contexts_[held.class_id][acquired_id] = ctx.str();
    ++edge_count_;
  }

  void CountAcquisition() { acquisitions_.fetch_add(1, std::memory_order_relaxed); }

  LockdepStats Stats() {
    LockdepStats stats;
    util::MutexLock guard(mutex_);
    stats.classes = static_cast<uint64_t>(class_count_);
    stats.edges = edge_count_;
    stats.acquisitions = acquisitions_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  // DFS from `from` looking for `to`; fills `path` with the node chain (excluding `to`)
  // and returns its length, or 0 when unreachable. Called under mutex_.
  int FindPath(int from, int to, int (&path)[kMaxClasses], int depth)
      ODF_REQUIRES(mutex_) {
    if (depth >= kMaxClasses) {
      return 0;
    }
    path[depth] = from;
    if (edge_[from][to]) {
      return depth + 1;
    }
    for (int next = 0; next < class_count_; ++next) {
      if (edge_[from][next] && !OnPath(path, depth, next)) {
        int length = FindPath(next, to, path, depth + 1);
        if (length > 0) {
          return length;
        }
      }
    }
    return 0;
  }

  static bool OnPath(const int (&path)[kMaxClasses], int depth, int node) {
    for (int i = 0; i <= depth; ++i) {
      if (path[i] == node) {
        return true;
      }
    }
    return false;
  }

  util::Mutex mutex_;
  int class_count_ ODF_GUARDED_BY(mutex_) = 0;
  uint64_t edge_count_ ODF_GUARDED_BY(mutex_) = 0;
  std::atomic<uint64_t> acquisitions_{0};
  const char* names_[kMaxClasses] ODF_GUARDED_BY(mutex_) = {};
  bool edge_[kMaxClasses][kMaxClasses] ODF_GUARDED_BY(mutex_) = {};
  std::string contexts_[kMaxClasses][kMaxClasses] ODF_GUARDED_BY(mutex_);
};

}  // namespace

void LockAcquired(LockClass& cls, const char* file, uint32_t line) {
  LockdepGraph& graph = LockdepGraph::Global();
  int id = graph.ClassId(cls);
  graph.CountAcquisition();
  HeldStack& held = ThreadHeld();
  ODF_CHECK(held.depth < kMaxHeld) << "lockdep: held-lock stack overflow";
  for (int i = 0; i < held.depth; ++i) {
    ODF_CHECK(held.locks[i].class_id != id)
        << "lockdep: recursive acquisition of lock class \"" << cls.name() << "\" at " << file
        << ":" << line << " (first acquired at " << held.locks[i].file << ":"
        << held.locks[i].line << ") — no code path legitimately nests this class";
    graph.AddDependency(held.locks[i], id, cls.name(), file, line);
  }
  held.locks[held.depth++] = HeldLock{id, cls.name(), file, line};
}

void LockReleased(LockClass& cls) {
  HeldStack& held = ThreadHeld();
  int id = cls.assigned_id();
  // Releases are usually LIFO but guards may unwind out of order; remove wherever it is.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.locks[i].class_id == id) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.locks[j] = held.locks[j + 1];
      }
      --held.depth;
      return;
    }
  }
  ODF_CHECK(false) << "lockdep: release of lock class not held by this thread";
}

LockdepStats GetLockdepStats() { return LockdepGraph::Global().Stats(); }

}  // namespace debug
}  // namespace odf

#else  // ODF_DEBUG_VM_COMPILED

namespace odf {
namespace debug {

LockdepStats GetLockdepStats() { return {}; }

}  // namespace debug
}  // namespace odf

#endif  // ODF_DEBUG_VM_COMPILED
