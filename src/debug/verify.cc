#include "src/debug/verify.h"

#include <atomic>
#include <sstream>

#include "src/proc/auditor.h"
#include "src/proc/kernel.h"
#include "src/reclaim/mm_gate.h"
#include "src/reclaim/rmap.h"
#include "src/util/log.h"

namespace odf {
namespace debug {

namespace {

// Auto-verify knobs and statistics. Defined in all builds so SetAutoVerify and friends
// keep working (as no-ops) in release binaries; only the hook itself compiles out.
std::atomic<bool> g_auto_verify{true};
std::atomic<uint64_t> g_interval{1};
std::atomic<uint64_t> g_eligible{0};
std::atomic<uint64_t> g_runs{0};
std::atomic<uint64_t> g_skipped_reentrant{0};
std::atomic<uint64_t> g_skipped_concurrent{0};
std::atomic<uint64_t> g_skipped_disabled{0};

void SweepFrameArray(Kernel& kernel, const AuditResult& audit, VerifyResult& result) {
  FrameAllocator& allocator = kernel.allocator();
  uint64_t total = allocator.Stats().total_frames;
  auto violation = [&result](FrameId frame, const PageMeta& meta, const std::string& what) {
    result.violations.push_back(what + ": " + internal::DescribePage(meta, frame));
  };
  uint64_t poisoned_seen = 0;
  for (uint64_t i = 0; i < total; ++i) {
    FrameId frame = static_cast<FrameId>(i);
    const PageMeta& meta = allocator.GetMeta(frame);
    uint32_t refcount = meta.refcount.load(std::memory_order_relaxed);
    uint32_t pt_share = meta.pt_share_count.load(std::memory_order_relaxed);
    ++result.frames_swept;
    if (meta.IsHwPoisoned()) {
      // Quarantine bijection (docs/memory-failure.md): a poisoned frame is unmapped (the
      // offline rewrote every location; the auditor separately rejects present leaves that
      // reference it), off the LRU (never swap out dead bytes), and — once its last owner
      // dropped it — parked in quarantine, never re-allocatable. Allocated+poisoned is
      // legal only as the tail of a still-live split compound or a frame awaiting its
      // final DecRef; those still must have no mappings.
      ++poisoned_seen;
      if (kernel.rmap().LocationCount(frame) != 0) {
        violation(frame, meta, "hwpoisoned frame still has rmap locations");
      }
      if (kernel.lru().Contains(frame)) {
        violation(frame, meta, "hwpoisoned frame on the LRU");
      }
      if (meta.IsPageTable()) {
        violation(frame, meta, "hwpoisoned page-table frame (offline must refuse these)");
      }
    }
    if ((meta.flags & kPageFlagAllocated) == 0) {
      // Free (or per-thread-cached) frame: must be completely inert. Stale IncRef/DecRef
      // or flag writes against a freed frame show up right here. The ONE flag allowed to
      // survive a free is the sticky hwpoison bit (the frame is in — or headed for — the
      // quarantine parking lot).
      if (refcount != 0) {
        violation(frame, meta, "free frame has nonzero refcount");
      }
      if (pt_share != 0) {
        violation(frame, meta, "free frame has nonzero pt_share_count");
      }
      if ((meta.flags & ~kPageFlagHwPoison) != 0) {
        violation(frame, meta, "free frame has stale flags");
      }
      if (Compiled() && meta.reserved != 0 && meta.reserved != kPoisonFreed) {
        violation(frame, meta, "free frame canary clobbered");
      }
      continue;
    }
    if (meta.IsCompoundTail()) {
      FrameId head = meta.compound_head;
      if (head == kInvalidFrame || head >= total || head == frame) {
        violation(frame, meta, "compound tail with invalid head");
        continue;
      }
      const PageMeta& head_meta = allocator.GetMeta(head);
      if ((head_meta.flags & kPageFlagAllocated) == 0 || !head_meta.IsCompoundHead()) {
        violation(frame, meta, "compound tail points at a non-head frame");
      }
      if (refcount != 0) {
        violation(frame, meta, "compound tail carries its own refcount");
      }
      if (pt_share != 0) {
        violation(frame, meta, "compound tail carries a pt_share_count");
      }
      continue;  // Reachability is the head's property; tails ride along.
    }
    if (audit.reachable_frames.count(frame) == 0) {
      violation(frame, meta, "leaked frame (allocated but unreachable from any process "
                             "or the page cache)");
    }
    if (meta.IsCompoundHead()) {
      if (meta.order != kHugePageOrder) {
        violation(frame, meta, "compound head with wrong order");
      }
      if (meta.compound_head != frame) {
        violation(frame, meta, "compound head not its own head");
      }
    } else if (meta.order != 0) {
      violation(frame, meta, "order-0 frame with nonzero order");
    }
    if (meta.IsPageTable()) {
      if (meta.IsCompound()) {
        violation(frame, meta, "page-table frame marked compound");
      }
      if (pt_share == 0) {
        violation(frame, meta, "allocated page table with zero pt_share_count");
      }
      if (refcount != 1) {
        violation(frame, meta, "page-table frame refcount is not 1");
      }
      if (meta.data.load(std::memory_order_acquire) == nullptr) {
        violation(frame, meta, "page-table frame without entry storage");
      }
    } else {
      if (refcount == 0) {
        violation(frame, meta, "allocated data frame with zero refcount");
      }
      if (pt_share != 0) {
        violation(frame, meta, "data frame carries a pt_share_count");
      }
    }
  }
  // Flag population must match the counters the offline paths maintain (and quarantine can
  // hold at most the frames that were poisoned).
  FrameAllocatorStats stats = allocator.Stats();
  if (stats.hwpoisoned_frames != poisoned_seen) {
    result.violations.push_back(
        "hwpoisoned_frames counter " + std::to_string(stats.hwpoisoned_frames) +
        " != " + std::to_string(poisoned_seen) + " frames carrying the flag");
  }
  if (stats.quarantined_frames > stats.hwpoisoned_frames) {
    result.violations.push_back(
        "quarantine holds " + std::to_string(stats.quarantined_frames) +
        " frames but only " + std::to_string(stats.hwpoisoned_frames) + " are poisoned");
  }
}

// Cross-checks the rmap registry against the auditor's page-table walk: every present
// leaf slot must be registered with exactly the frame id and granularity stored in it,
// and the registry must hold nothing else (an exact bijection — docs/reclaim.md "Rmap
// invariants"). A missing location means reclaim cannot find a mapping (data corruption
// on eviction); a stale one means reclaim would rewrite a slot it no longer owns.
void CheckRmap(Kernel& kernel, const AuditResult& audit, VerifyResult& result) {
  reclaim::RmapRegistry& rmap = kernel.rmap();
  for (const auto& [slot, mapping] : audit.leaf_slots) {
    if (!rmap.Contains(mapping.first, slot, mapping.second)) {
      result.violations.push_back(
          "present leaf entry for frame " + std::to_string(mapping.first) +
          (mapping.second ? " (huge)" : "") + " has no rmap location");
    }
  }
  uint64_t locations = rmap.TotalLocations();
  if (locations != audit.leaf_slots.size()) {
    result.violations.push_back(
        "rmap holds " + std::to_string(locations) + " locations but the walk found " +
        std::to_string(audit.leaf_slots.size()) +
        " present leaf entries (stale or duplicate rmap state)");
  }
}

}  // namespace

std::string VerifyResult::Describe() const {
  std::ostringstream out;
  out << "verified " << processes_audited << " processes, " << tables_checked << " tables, "
      << leaf_entries_checked << " leaf entries, " << frames_swept << " frames: ";
  if (violations.empty()) {
    out << "OK";
  } else {
    out << violations.size() << " violations\n";
    for (const std::string& violation : violations) {
      out << "  - " << violation << "\n";
    }
  }
  return out.str();
}

VerifyResult VerifyKernel(Kernel& kernel) {
  // Freeze the VM: the walk reads paging structures non-atomically and the rmap
  // comparison needs slots that are not being rewritten. The exclusive gate holds off
  // every mutator AND the shrinker (reentrant if this thread already holds it).
  reclaim::MmGate::ExclusiveScope gate;
  AuditResult audit = AuditKernel(kernel);
  VerifyResult result;
  result.violations = audit.violations;
  result.processes_audited = audit.processes_audited;
  result.tables_checked = audit.tables_checked;
  result.leaf_entries_checked = audit.leaf_entries_checked;
  CheckRmap(kernel, audit, result);
  SweepFrameArray(kernel, audit, result);
  return result;
}

VerifyStats GetVerifyStats() {
  VerifyStats stats;
  stats.runs = g_runs.load(std::memory_order_relaxed);
  stats.skipped_reentrant = g_skipped_reentrant.load(std::memory_order_relaxed);
  stats.skipped_concurrent = g_skipped_concurrent.load(std::memory_order_relaxed);
  stats.skipped_disabled = g_skipped_disabled.load(std::memory_order_relaxed);
  return stats;
}

void SetAutoVerify(bool enabled) { g_auto_verify.store(enabled, std::memory_order_relaxed); }

void SetAutoVerifyInterval(uint64_t interval) {
  g_interval.store(interval == 0 ? 1 : interval, std::memory_order_relaxed);
}

#if ODF_DEBUG_VM_COMPILED

void AutoVerifyKernel(Kernel& kernel, const char* what) {
  if (MutationScope::Depth() > 0) {
    // Hook fired from inside another mutation on this thread (an OOM kill's Exit during a
    // fork's allocation): the outer operation is mid-flight, so the structures are torn.
    g_skipped_reentrant.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!g_auto_verify.load(std::memory_order_relaxed)) {
    g_skipped_disabled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t sequence = g_eligible.fetch_add(1, std::memory_order_relaxed);
  uint64_t interval = g_interval.load(std::memory_order_relaxed);
  if (interval > 1 && sequence % interval != 0) {
    g_skipped_disabled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!internal::TryLockQuiescent()) {
    // Another thread is mid-mutation; the walk would read torn state. Skip — a later
    // quiescent hook (or the test's own VerifyKernel call) covers it.
    g_skipped_concurrent.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  VerifyResult result = VerifyKernel(kernel);
  internal::UnlockQuiescent();
  g_runs.fetch_add(1, std::memory_order_relaxed);
  ODF_CHECK(result.ok()) << "post-" << what
                         << " kernel verification failed: " << result.Describe();
}

#endif  // ODF_DEBUG_VM_COMPILED

}  // namespace debug
}  // namespace odf
