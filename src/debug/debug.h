// odf::debug — CONFIG_DEBUG_VM-style invariant checking for the simulated mm.
//
// The paper's mechanism lives in the code the kernel itself trusts least: fork, COW fault
// handling, and page-table refcounting. Linux guards that code with CONFIG_DEBUG_VM
// (VM_BUG_ON_PAGE), page poisoning, and refcount saturation checks; this header is the
// simulator's analog. Three macro families:
//
//   ODF_VM_BUG_ON(cond) << "context";
//       Aborts when `cond` is TRUE (kernel BUG_ON polarity). Streams extra context like
//       ODF_CHECK.
//
//   ODF_VM_BUG_ON_PAGE(cond, meta, frame) << "context";
//       Like ODF_VM_BUG_ON but appends a dump_page()-style rendering of the frame's
//       PageMeta (flags/refcount/pt_share/order/compound_head) to the abort message.
//
//   ODF_VM_POISON(...) / poison constants below:
//       Freed frames carry a canary in PageMeta::reserved and their data buffers are
//       filled with kPoisonByte before release; allocation re-checks the canary and the
//       zeroed counters, catching stale IncRef/DecRef/flag writes on freed frames at the
//       next allocation (use-after-free of the *data* bytes is delegated to ASan — the
//       buffers are really freed, so any touch through a stale pointer is a heap UAF).
//
// Cost model (mirrors ODF_TRACE): with -DODF_DEBUG_VM=OFF (the default) every macro
// expands to a constant-folded no-op — condition expressions are parsed but never
// evaluated — so release builds are byte-for-byte free of checker overhead. With the
// `debug-vm` preset (-DODF_DEBUG_VM=ON) every check runs and counts itself; see
// docs/debugging.md.
#ifndef ODF_SRC_DEBUG_DEBUG_H_
#define ODF_SRC_DEBUG_DEBUG_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/phys/page_meta.h"
#include "src/util/log.h"

// Set by the build (src/debug/CMakeLists.txt); default to compiled-out for out-of-build
// users — debug checking is opt-in, unlike tracing.
#ifndef ODF_DEBUG_VM_COMPILED
#define ODF_DEBUG_VM_COMPILED 0
#endif

namespace odf {
namespace debug {

// Returns true when the invariant checkers are compiled into this binary.
constexpr bool Compiled() { return ODF_DEBUG_VM_COMPILED != 0; }

// --- Poison values (PAGE_POISON analogs) ---

// Written into every byte of a frame's data buffer just before it is released. Any stale
// pointer that reads the buffer between the memset and the heap free observes this
// pattern instead of plausible page contents.
inline constexpr uint8_t kPoisonByte = 0xaa;

// PageMeta::reserved canaries. A frame's `reserved` field is 0 only before its first
// allocation; afterwards it alternates between the two canaries. Poison-check-on-alloc
// verifies the freed canary (or 0) plus zeroed refcount/pt_share/flags, so any mutation
// of a freed frame's metadata aborts at the next allocation with a full page dump.
inline constexpr uint16_t kPoisonFreed = 0xdead;
inline constexpr uint16_t kPoisonAllocated = 0xa11c;

// Refcount saturation threshold (the refcount_t analog): an increment that reaches this
// value aborts — a counter this large is a runaway IncRef loop, and letting it wrap to
// zero would free a frame that still has billions of apparent owners.
inline constexpr uint32_t kRefcountSaturated = 0x7fffffffu;

// --- Check statistics (exported through procfs FormatDebugVm) ---

struct CheckStats {
  uint64_t vm_checks = 0;       // ODF_VM_BUG_ON conditions evaluated.
  uint64_t poison_checks = 0;   // Poison-check-on-alloc sweeps performed.
  uint64_t poison_writes = 0;   // Poison-on-free buffer fills performed.
};

CheckStats GetCheckStats();

namespace internal {

#if ODF_DEBUG_VM_COMPILED
extern std::atomic<uint64_t> g_vm_checks;
extern std::atomic<uint64_t> g_poison_checks;
extern std::atomic<uint64_t> g_poison_writes;

inline bool CountCheck() {
  g_vm_checks.fetch_add(1, std::memory_order_relaxed);
  return true;
}
#endif

// dump_page() analog: renders a PageMeta for abort messages.
std::string DescribePage(const PageMeta& meta, FrameId frame);

}  // namespace internal
}  // namespace debug
}  // namespace odf

// The checks fire when the condition is TRUE (BUG_ON polarity), unlike ODF_CHECK which
// fires when its condition is false. Both are statement-safe single void expressions.
#if ODF_DEBUG_VM_COMPILED

#define ODF_VM_BUG_ON(condition)                                                     \
  (::odf::debug::internal::CountCheck() && !(condition))                             \
      ? (void)0                                                                      \
      : ::odf::internal::CheckVoidify() &                                            \
            ::odf::internal::CheckFailer(__FILE__, __LINE__, "VM_BUG_ON(" #condition ")")

#define ODF_VM_BUG_ON_PAGE(condition, meta, frame)                                   \
  (::odf::debug::internal::CountCheck() && !(condition))                             \
      ? (void)0                                                                      \
      : ::odf::internal::CheckVoidify() &                                            \
            ::odf::internal::CheckFailer(__FILE__, __LINE__,                         \
                                         "VM_BUG_ON_PAGE(" #condition ")")           \
                << ::odf::debug::internal::DescribePage((meta), (frame)) << " "

#else  // ODF_DEBUG_VM_COMPILED

// Compiled out: the conditions stay parsed and type-checked but are never evaluated
// (the `true ||` short-circuit folds away, the ODF_DCHECK pattern).
#define ODF_VM_BUG_ON(condition) ODF_CHECK(true || (condition))
#define ODF_VM_BUG_ON_PAGE(condition, meta, frame) \
  ODF_CHECK(true || ((void)(meta), (void)(frame), (condition)))

#endif  // ODF_DEBUG_VM_COMPILED

#endif  // ODF_SRC_DEBUG_DEBUG_H_
