#include "src/debug/mutation.h"

#if ODF_DEBUG_VM_COMPILED

#include <shared_mutex>

namespace odf {
namespace debug {

namespace {

thread_local int g_mutation_depth = 0;

// Mutators hold this shared; the verifier try-locks it exclusive. Leaked so mutation
// scopes entered during static destruction stay valid. Deliberately a raw shared_mutex,
// below the thread-safety analysis: the TLS depth counter makes acquisition conditional
// per thread (an outer MutationScope owns the shared hold), which the analysis cannot
// model without opt-outs on every scope — the runtime MutationScope::Depth checks and
// the verifier's try-lock handshake carry this contract instead.
std::shared_mutex& QuiescenceLock() {  // odf-lint: allow(raw-std-mutex) — see above.
  static std::shared_mutex* lock = new std::shared_mutex;  // odf-lint: allow(raw-std-mutex)
  return *lock;
}

}  // namespace

MutationScope::MutationScope() {
  if (g_mutation_depth++ == 0) {
    QuiescenceLock().lock_shared();
  }
}

MutationScope::~MutationScope() {
  if (--g_mutation_depth == 0) {
    QuiescenceLock().unlock_shared();
  }
}

int MutationScope::Depth() { return g_mutation_depth; }

namespace internal {

bool TryLockQuiescent() { return QuiescenceLock().try_lock(); }

void UnlockQuiescent() { QuiescenceLock().unlock(); }

}  // namespace internal

}  // namespace debug
}  // namespace odf

#endif  // ODF_DEBUG_VM_COMPILED
