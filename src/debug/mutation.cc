#include "src/debug/mutation.h"

#if ODF_DEBUG_VM_COMPILED

#include <shared_mutex>

namespace odf {
namespace debug {

namespace {

thread_local int g_mutation_depth = 0;

// Mutators hold this shared; the verifier try-locks it exclusive. Leaked so mutation
// scopes entered during static destruction stay valid.
std::shared_mutex& QuiescenceLock() {
  static std::shared_mutex* lock = new std::shared_mutex;
  return *lock;
}

}  // namespace

MutationScope::MutationScope() {
  if (g_mutation_depth++ == 0) {
    QuiescenceLock().lock_shared();
  }
}

MutationScope::~MutationScope() {
  if (--g_mutation_depth == 0) {
    QuiescenceLock().unlock_shared();
  }
}

int MutationScope::Depth() { return g_mutation_depth; }

namespace internal {

bool TryLockQuiescent() { return QuiescenceLock().try_lock(); }

void UnlockQuiescent() { QuiescenceLock().unlock(); }

}  // namespace internal

}  // namespace debug
}  // namespace odf

#endif  // ODF_DEBUG_VM_COMPILED
