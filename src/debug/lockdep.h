// Lockdep-lite: a runtime lock-order validator modeled on the kernel's lockdep.
//
// Locks are grouped into *classes* (all 64 materialize stripes are one class, exactly like
// lockdep keying all instances of a lock type to one class). Each acquisition is recorded
// on a per-thread held-lock stack; every (held -> acquired) pair becomes an edge in a
// global class dependency graph. The first acquisition that would close a cycle aborts,
// printing the acquisition context (file:line) of both ends of the inversion plus the
// recorded context of every edge on the existing dependency path — one clean report on
// the first violation instead of a once-a-week deadlock.
//
// Instrumented sites use debug::MutexGuard in place of std::lock_guard:
//
//   namespace { odf::debug::LockClass g_pool_lock("FrameAllocator::mutex_"); }
//   ...
//   odf::debug::MutexGuard guard(mutex_, g_pool_lock);
//
// Same-class nesting (acquiring a second lock of a class already held) also aborts: no
// code path in this codebase legitimately nests two stripe locks, so any such nesting is
// an ABBA deadlock waiting for the right pair of frame ids.
//
// Cost model: with -DODF_DEBUG_VM=OFF, LockClass is an empty constexpr tag and MutexGuard
// compiles to exactly a std::lock_guard — zero overhead, byte-identical locking. With the
// debug-vm preset each acquisition costs a held-stack push and, on first occurrence of a
// (held, acquired) pair, one graph update under an internal mutex.
#ifndef ODF_SRC_DEBUG_LOCKDEP_H_
#define ODF_SRC_DEBUG_LOCKDEP_H_

#include "src/debug/debug.h"  // Defines the ODF_DEBUG_VM_COMPILED default; keep first.

#include <cstdint>
#if ODF_DEBUG_VM_COMPILED
#include <atomic>
#include <source_location>
#endif

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace odf {
namespace debug {

struct LockdepStats {
  uint64_t classes = 0;       // Lock classes seen at least once.
  uint64_t edges = 0;         // Distinct (held -> acquired) dependencies recorded.
  uint64_t acquisitions = 0;  // Total instrumented acquisitions.
};

LockdepStats GetLockdepStats();

#if ODF_DEBUG_VM_COMPILED

class LockClass {
 public:
  explicit constexpr LockClass(const char* name) : name_(name) {}
  LockClass(const LockClass&) = delete;
  LockClass& operator=(const LockClass&) = delete;

  const char* name() const { return name_; }

  // Validator-assigned class id; -1 until the first acquisition. Internal to lockdep.
  int assigned_id() const { return id_.load(std::memory_order_acquire); }
  void assign_id(int id) { id_.store(id, std::memory_order_release); }

 private:
  const char* name_;
  std::atomic<int> id_{-1};
};

// Raw validator entry points (MutexGuard wraps them; the lockdep death test drives them
// directly so it can force an inversion without actually deadlocking two mutexes).
// LockAcquired aborts on a cycle or same-class nesting; call it BEFORE blocking on the
// underlying mutex so a would-deadlock acquisition reports instead of hanging.
void LockAcquired(LockClass& cls, const char* file, uint32_t line);
void LockReleased(LockClass& cls);

class ODF_SCOPED_CAPABILITY MutexGuard {
 public:
  MutexGuard(util::Mutex& mutex, LockClass& cls,
             const std::source_location& loc = std::source_location::current())
      ODF_ACQUIRE(mutex)
      : mutex_(mutex), cls_(cls) {
    LockAcquired(cls_, loc.file_name(), loc.line());
    mutex_.lock();
  }

  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

  ~MutexGuard() ODF_RELEASE() {
    mutex_.unlock();
    LockReleased(cls_);
  }

 private:
  util::Mutex& mutex_;
  LockClass& cls_;
};

#else  // ODF_DEBUG_VM_COMPILED

// Compiled out: an empty tag type and a plain lock_guard. Call sites are unchanged.
class LockClass {
 public:
  explicit constexpr LockClass(const char* /*name*/) {}
  LockClass(const LockClass&) = delete;
  LockClass& operator=(const LockClass&) = delete;
};

inline void LockAcquired(LockClass& /*cls*/, const char* /*file*/, uint32_t /*line*/) {}
inline void LockReleased(LockClass& /*cls*/) {}

class ODF_SCOPED_CAPABILITY MutexGuard {
 public:
  MutexGuard(util::Mutex& mutex, LockClass& /*cls*/) ODF_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

  ~MutexGuard() ODF_RELEASE() { mutex_.unlock(); }

 private:
  util::Mutex& mutex_;
};

#endif  // ODF_DEBUG_VM_COMPILED

}  // namespace debug
}  // namespace odf

#endif  // ODF_SRC_DEBUG_LOCKDEP_H_
