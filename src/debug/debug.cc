#include "src/debug/debug.h"

#include <sstream>

namespace odf {
namespace debug {

namespace internal {

#if ODF_DEBUG_VM_COMPILED
std::atomic<uint64_t> g_vm_checks{0};
std::atomic<uint64_t> g_poison_checks{0};
std::atomic<uint64_t> g_poison_writes{0};
#endif

std::string DescribePage(const PageMeta& meta, FrameId frame) {
  std::ostringstream out;
  out << "page[frame=" << frame << " refcount=" << meta.refcount.load(std::memory_order_relaxed)
      << " pt_share=" << meta.pt_share_count.load(std::memory_order_relaxed) << " flags=0x"
      << std::hex << static_cast<unsigned>(meta.flags) << " reserved=0x"
      << static_cast<unsigned>(meta.reserved) << std::dec
      << " order=" << static_cast<unsigned>(meta.order);
  if (meta.compound_head == kInvalidFrame) {
    out << " head=invalid";
  } else {
    out << " head=" << meta.compound_head;
  }
  out << (meta.data.load(std::memory_order_relaxed) != nullptr ? " data" : " nodata") << "]";
  return out.str();
}

}  // namespace internal

CheckStats GetCheckStats() {
  CheckStats stats;
#if ODF_DEBUG_VM_COMPILED
  stats.vm_checks = internal::g_vm_checks.load(std::memory_order_relaxed);
  stats.poison_checks = internal::g_poison_checks.load(std::memory_order_relaxed);
  stats.poison_writes = internal::g_poison_writes.load(std::memory_order_relaxed);
#endif
  return stats;
}

}  // namespace debug
}  // namespace odf
