// Full-system invariant verifier: the CONFIG_DEBUG_VM counterpart to the per-operation
// ODF_VM_BUG_ON checks. VerifyKernel walks every running process's page tables (via the
// auditor) and then sweeps the ENTIRE PageMeta array, cross-checking the two views:
//
//   * every reference-count invariant the auditor knows (sum of mappings == refcount,
//     pt_share_count matches the sharing topology, swap-slot refcounts);
//   * no leaked frames: a frame flagged allocated must be reachable from some process's
//     paging structures or the page cache;
//   * free frames are inert: refcount == 0, pt_share_count == 0, no flags, and (in
//     debug-vm builds) an intact kPoisonFreed canary;
//   * compound topology: tails point at a live compound head, heads carry the right order.
//
// VerifyKernel itself is ALWAYS compiled — tests and tools may call it in any build. What
// the debug-vm preset adds is the automatic hook: AutoVerifyKernel runs the verifier after
// every top-level fork / exit / zap and compiles to nothing with -DODF_DEBUG_VM=OFF.
//
// Concurrency: the verifier reads all paging structures non-atomically, so it only runs
// when it can prove quiescence. Every kernel mutation executes inside a MutationScope,
// which holds a global shared_mutex in shared mode; AutoVerifyKernel try-locks it
// exclusively and silently skips (counted in VerifyStats) when any other thread is
// mid-mutation. Nested mutations (an OOM kill firing inside a fork's allocation) are
// skipped via a thread-local depth so the verifier never sees half-built state.
#ifndef ODF_SRC_DEBUG_VERIFY_H_
#define ODF_SRC_DEBUG_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/debug/debug.h"
#include "src/debug/mutation.h"

namespace odf {

class Kernel;

namespace debug {

struct VerifyResult {
  std::vector<std::string> violations;
  uint64_t processes_audited = 0;
  uint64_t tables_checked = 0;
  uint64_t leaf_entries_checked = 0;
  uint64_t frames_swept = 0;

  bool ok() const { return violations.empty(); }
  std::string Describe() const;
};

// Runs the full audit + sweep. The kernel must be quiescent (no concurrent mutation);
// callers inside the kernel use AutoVerifyKernel, which proves quiescence first.
VerifyResult VerifyKernel(Kernel& kernel);

struct VerifyStats {
  uint64_t runs = 0;                // Full verifications completed.
  uint64_t skipped_reentrant = 0;   // Hook fired inside another mutation on this thread.
  uint64_t skipped_concurrent = 0;  // Another thread was mid-mutation.
  uint64_t skipped_disabled = 0;    // SetAutoVerify(false) or interval gating.
};

VerifyStats GetVerifyStats();

// Enables/disables the automatic post-mutation hook (default: enabled in debug-vm
// builds). Tests that deliberately corrupt state flip this off while seeding.
void SetAutoVerify(bool enabled);

// Run the automatic verifier only on every Nth eligible hook firing (default 1 = every
// mutation). Full verification is O(mapped memory); torture workloads dial this up.
void SetAutoVerifyInterval(uint64_t interval);

// MutationScope (the mutator half of the quiescence protocol) lives in
// src/debug/mutation.h so layers below the process tree can use it; this header
// re-exports it for verifier callers.

#if ODF_DEBUG_VM_COMPILED

// Post-mutation hook: verifies the whole kernel and aborts (with the full violation list)
// on the first inconsistency. Skips itself when nested, raced, disabled, or off-interval.
void AutoVerifyKernel(Kernel& kernel, const char* what);

#else  // ODF_DEBUG_VM_COMPILED

inline void AutoVerifyKernel(Kernel& /*kernel*/, const char* /*what*/) {}

#endif  // ODF_DEBUG_VM_COMPILED

}  // namespace debug
}  // namespace odf

#endif  // ODF_SRC_DEBUG_VERIFY_H_
