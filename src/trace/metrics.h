// odf::trace metrics — the /proc/vmstat analog: a fixed catalog of kernel-wide monotonic
// counters bumped from the hot paths (one relaxed atomic add, always on), plus a
// MetricsRegistry where subsystems register named counters and latency histograms
// dynamically. Exporters render the combined view as vmstat text or JSON.
//
// Built-in counters use a fixed enum + inline atomic array (the kernel's vm_event_state
// pattern) so bumping one compiles to a single locked add with no lookup; dynamic
// registration is for colder, subsystem-specific series (fork latency histograms, app
// metrics) where a map lookup at registration time is fine.
#ifndef ODF_SRC_TRACE_METRICS_H_
#define ODF_SRC_TRACE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/histogram.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace odf {

// The vmstat counter catalog (names mirror /proc/vmstat where an analog exists).
#define ODF_VM_COUNTER_LIST(X)   \
  X(pgfault_demand_zero)         \
  X(pgfault_file)                \
  X(pgfault_cow_page)            \
  X(pgfault_cow_huge)            \
  X(pgfault_cow_reuse)           \
  X(pgfault_segv)                \
  X(pgfault_swap_in)             \
  X(pte_table_cow)               \
  X(pte_table_fixup)             \
  X(pmd_table_cow)               \
  X(pmd_table_fixup)             \
  X(pte_tables_shared)           \
  X(pmd_tables_shared)           \
  X(fork_classic)                \
  X(fork_on_demand)              \
  X(fork_pte_entries_copied)     \
  X(fork_huge_entries_copied)    \
  X(frames_allocated)            \
  X(frames_freed)                \
  X(pgswapout)                   \
  X(swap_writes)                 \
  X(swap_reads)                  \
  X(reclaim_runs)                \
  X(tlb_flushes)                 \
  X(tlb_shootdowns)              \
  X(proc_created)                \
  X(proc_exited)                 \
  X(oom_kills)                   \
  X(fi_injected)                 \
  X(fork_rollback)               \
  X(fork_degrade_classic)        \
  X(pgfault_oom)                 \
  X(pgfault_retry_exhausted)     \
  X(swap_io_errors)              \
  X(pcp_hit)                     \
  X(pcp_miss)                    \
  X(pcp_refill)                  \
  X(pcp_drain)                   \
  X(batch_free)                  \
  X(pgscan)                      \
  X(pgsteal)                     \
  X(pgrefault)                   \
  X(pgactivate)                  \
  X(pgdeactivate)                \
  X(kswapd_wake)                 \
  X(direct_reclaim)              \
  X(trace_ring_overwrite)        \
  X(replay_ops_recorded)         \
  X(replay_events_recorded)      \
  X(replay_events_dropped)       \
  X(replay_record_bytes)         \
  X(mf_hard_offline)             \
  X(mf_soft_offline)             \
  X(mf_offline_failed)           \
  X(mf_migrated_pages)           \
  X(mf_sigbus)                   \
  X(mf_huge_splits)              \
  X(lock_contended)

enum class VmCounter : uint32_t {
#define ODF_VM_ENUM_MEMBER(name) k_##name,
  ODF_VM_COUNTER_LIST(ODF_VM_ENUM_MEMBER)
#undef ODF_VM_ENUM_MEMBER
      kCount,
};

constexpr size_t kVmCounterCount = static_cast<size_t>(VmCounter::kCount);

// Stable lowercase name, e.g. "pgfault_cow_page".
const char* VmCounterName(VmCounter counter);

// Process-global built-in counter storage (zero-initialized, constant-initialized).
inline std::array<std::atomic<uint64_t>, kVmCounterCount> g_vm_counters{};

inline void CountVm(VmCounter counter, uint64_t n = 1) {
  g_vm_counters[static_cast<size_t>(counter)].fetch_add(n, std::memory_order_relaxed);
}

inline uint64_t ReadVm(VmCounter counter) {
  return g_vm_counters[static_cast<size_t>(counter)].load(std::memory_order_relaxed);
}

// A dynamically registered monotonic counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Registry of named counters and histograms. Registration returns a stable reference (the
// object lives for the registry's lifetime; ResetForTest zeroes values but never removes
// registrations, so cached references at instrumentation sites stay valid).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every kernel subsystem reports into (vmstat is machine-global).
  static MetricsRegistry& Global();

  // Returns the existing counter/histogram under `name`, registering it first if needed.
  Counter& RegisterCounter(const std::string& name);
  LatencyHistogram& RegisterHistogram(const std::string& name);

  // All counters — built-in vmstat counters first (catalog order), then registered ones in
  // name order — as (name, value) pairs.
  std::vector<std::pair<std::string, uint64_t>> SnapshotCounters() const;

  // Value of one counter by name (built-in or registered); 0 when unknown.
  uint64_t CounterValue(std::string_view name) const;

  // Registered histograms as (name, histogram*) pairs in name order.
  std::vector<std::pair<std::string, const LatencyHistogram*>> Histograms() const;

  // `/proc/vmstat`-style text: one "name value" line per counter, histograms appended as
  // "name_p50_us" / "name_p99_us" / "name_count" summary lines.
  std::string FormatVmstat() const;

  // Zeroes built-in and registered counters and resets histograms (registrations survive).
  // Like Tracer::Clear, only meaningful while the hot paths are quiescent.
  void ResetForTest();

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ ODF_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_ ODF_GUARDED_BY(mutex_);
};

}  // namespace odf

#endif  // ODF_SRC_TRACE_METRICS_H_
