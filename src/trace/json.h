// Minimal streaming JSON writer — the machine-readable exporter backing BENCH_*.json files
// and metrics snapshots. Emits pretty-printed, strictly valid JSON (escaped strings, no
// trailing commas, NaN/Inf mapped to null); comma and indent bookkeeping is handled by a
// small nesting stack so callers just mirror the document structure.
//
//   JsonWriter w(out);
//   w.BeginObject();
//   w.Key("bench").Value("fig02");
//   w.Key("rows").BeginArray();
//   w.BeginArray().Value(0.5).Value(4.27).EndArray();
//   w.EndArray();
//   w.EndObject();
#ifndef ODF_SRC_TRACE_JSON_H_
#define ODF_SRC_TRACE_JSON_H_

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace odf {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent_width = 2)
      : out_(out), indent_width_(indent_width) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Must precede every value inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) { return Value(std::string_view(value)); }
  JsonWriter& Value(double value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(unsigned value) { return Value(static_cast<uint64_t>(value)); }
  JsonWriter& Value(bool value);
  JsonWriter& Null();

 private:
  struct Frame {
    bool is_object = false;
    size_t entries = 0;
  };

  // Writes separators/indentation before a value or key, and flags the slot as consumed.
  void BeforeValue();
  void Indent();
  void WriteEscaped(std::string_view text);

  std::ostream& out_;
  int indent_width_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;  // Inside an object, a Key() was just written.
};

}  // namespace odf

#endif  // ODF_SRC_TRACE_JSON_H_
