#include "src/trace/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace odf {

const char* TraceEventName(TraceEventId id) {
  static constexpr const char* kNames[] = {
#define ODF_TRACE_NAME_MEMBER(name) #name,
      ODF_TRACEPOINT_LIST(ODF_TRACE_NAME_MEMBER)
#undef ODF_TRACE_NAME_MEMBER
  };
  size_t index = static_cast<size_t>(id);
  return index < kTraceEventCount ? kNames[index] : "?";
}

namespace trace {

namespace {

// Each thread caches its ring; the Tracer owns the storage (see header lifetime note).
thread_local TraceRing* t_ring = nullptr;

// Honors `ODF_TRACE=1` in the environment so benchmarks can be traced without code changes.
[[maybe_unused]] const bool g_env_enabled = [] {
  const char* v = std::getenv("ODF_TRACE");
  bool on = v != nullptr && std::atoi(v) != 0;
  if (on) {
    g_trace_enabled.store(true, std::memory_order_relaxed);
  }
  return on;
}();

}  // namespace

void SetEnabled(bool enabled) { g_trace_enabled.store(enabled, std::memory_order_relaxed); }

uint64_t NowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch).count());
}

void Emit(TraceEventId id, int32_t pid, uint64_t a0, uint64_t a1, uint64_t a2) {
  TraceRing& ring = Tracer::Global().RingForThisThread();
  TraceEvent event;
  event.ts_ns = NowNanos();
  event.a0 = a0;
  event.a1 = a1;
  event.a2 = a2;
  event.pid = pid;
  event.id = id;
  event.tid = ring.tid();
  ring.Append(event);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t start = head > kCapacity ? head - kCapacity : 0;
  std::vector<TraceEvent> events;
  events.reserve(static_cast<size_t>(head - start));
  for (uint64_t i = start; i < head; ++i) {
    events.push_back(slots_[i & (kCapacity - 1)]);
  }
  return events;
}

std::vector<TraceEvent> TraceRing::SnapshotSince(uint64_t from) const {
  uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t start = head > kCapacity ? head - kCapacity : 0;
  start = std::max(start, from);
  std::vector<TraceEvent> events;
  if (start >= head) {
    return events;
  }
  events.reserve(static_cast<size_t>(head - start));
  for (uint64_t i = start; i < head; ++i) {
    events.push_back(slots_[i & (kCapacity - 1)]);
  }
  return events;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // Leaked: emitting threads may outlive static dtors.
  return *tracer;
}

TraceRing& Tracer::RingForThisThread() {
  if (t_ring == nullptr) {
    util::MutexLock guard(mutex_);
    rings_.push_back(std::make_unique<TraceRing>(static_cast<uint16_t>(rings_.size())));
    t_ring = rings_.back().get();
  }
  return *t_ring;
}

std::vector<std::vector<TraceEvent>> Tracer::CollectPerThread() const {
  util::MutexLock guard(mutex_);
  std::vector<std::vector<TraceEvent>> per_thread;
  per_thread.reserve(rings_.size());
  for (const auto& ring : rings_) {
    per_thread.push_back(ring->Snapshot());
  }
  return per_thread;
}

std::vector<TraceEvent> Tracer::CollectAll() const {
  std::vector<TraceEvent> all;
  for (auto& events : CollectPerThread()) {
    all.insert(all.end(), events.begin(), events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return all;
}

std::vector<const TraceRing*> Tracer::Rings() const {
  util::MutexLock guard(mutex_);
  std::vector<const TraceRing*> rings;
  rings.reserve(rings_.size());
  for (const auto& ring : rings_) {
    rings.push_back(ring.get());
  }
  return rings;
}

std::vector<Tracer::RingStats> Tracer::CollectRingStats() const {
  util::MutexLock guard(mutex_);
  std::vector<RingStats> stats;
  stats.reserve(rings_.size());
  for (const auto& ring : rings_) {
    stats.push_back({ring->tid(), ring->TotalAppended(), ring->OverwrittenCount()});
  }
  return stats;
}

void Tracer::Clear() {
  util::MutexLock guard(mutex_);
  for (auto& ring : rings_) {
    ring->Reset();
  }
}

size_t Tracer::ThreadCount() const {
  util::MutexLock guard(mutex_);
  return rings_.size();
}

std::string Tracer::FormatDump() const {
  // Mirrors the ftrace text layout:   <task>-<tid> [...] <ts>: <event>: args
  std::ostringstream out;
  std::vector<TraceEvent> events = CollectAll();
  out << "# tracer: odf\n";
  out << "# entries: " << events.size() << "\n";
  out << "#     TID      TIMESTAMP   EVENT\n";
  for (const TraceEvent& event : events) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%12.6f", static_cast<double>(event.ts_ns) / 1e9);
    out << "  tid-" << event.tid << " " << ts << ": " << TraceEventName(event.id)
        << ": pid=" << event.pid << " a0=" << event.a0 << " a1=" << event.a1
        << " a2=" << event.a2 << "\n";
  }
  return out.str();
}

}  // namespace trace
}  // namespace odf
