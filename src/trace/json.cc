#include "src/trace/json.h"

#include <cmath>
#include <cstdio>

namespace odf {

void JsonWriter::Indent() {
  if (indent_width_ == 0) {
    return;  // Compact mode: no newlines at all.
  }
  out_ << "\n";
  for (size_t i = 0; i < stack_.size() * static_cast<size_t>(indent_width_); ++i) {
    out_ << ' ';
  }
}

void JsonWriter::BeforeValue() {
  if (key_pending_) {
    key_pending_ = false;  // Value follows its key on the same line.
    return;
  }
  if (stack_.empty()) {
    return;  // Top-level value.
  }
  Frame& frame = stack_.back();
  if (frame.entries > 0) {
    out_ << ",";
  }
  ++frame.entries;
  Indent();
}

void JsonWriter::WriteEscaped(std::string_view text) {
  out_ << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\t':
        out_ << "\\t";
        break;
      case '\r':
        out_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out_ << buffer;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  stack_.push_back(Frame{/*is_object=*/true, 0});
  out_ << "{";
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  bool empty = stack_.back().entries == 0;
  stack_.pop_back();
  if (!empty) {
    Indent();
  }
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  stack_.push_back(Frame{/*is_object=*/false, 0});
  out_ << "[";
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  bool empty = stack_.back().entries == 0;
  stack_.pop_back();
  if (!empty) {
    Indent();
  }
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  BeforeValue();
  WriteEscaped(key);
  out_ << (indent_width_ == 0 ? ":" : ": ");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  WriteEscaped(value);
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  if (!std::isfinite(value)) {
    return Null();
  }
  BeforeValue();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  out_ << buffer;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
  return *this;
}

}  // namespace odf
