// odf::trace — kernel-wide event tracing, modeled on Linux static tracepoints + ftrace.
//
// Instrumentation sites declare events with the ODF_TRACE macro:
//
//   ODF_TRACE(fault_cow_page, pid, va, ns);   // event name, pid, up to three uint64 args
//
// Events are fixed-size binary records appended to a lock-free per-thread ring buffer (the
// per-cpu ftrace buffer analog): the owning thread is the only writer, so recording is one
// timestamp read, one 40-byte store, and one release-store of the head cursor — cheap enough
// to leave enabled under benchmarks. Exporters (FormatDump, the procfs vmstat snapshot, the
// bench JSON writer) merge the per-thread rings read-only.
//
// Cost model:
//   - compiled out  (-DODF_TRACE=OFF => ODF_TRACE_COMPILED=0): the macro expands to (void)0;
//     argument expressions are never evaluated.
//   - runtime off   (the default): one relaxed atomic load and a predicted branch.
//   - runtime on    (trace::SetEnabled(true) or env ODF_TRACE=1): ~a clock read per event.
//
// Ring lifetime: each thread's ring is registered with the global Tracer on first emit and
// owned by it forever (events from exited threads remain readable, like a per-cpu buffer
// after cpu-offline). Clear() resets cursors in place and must only be called while emitting
// threads are quiescent — the same contract as echoing into ftrace's `trace` file.
#ifndef ODF_SRC_TRACE_TRACE_H_
#define ODF_SRC_TRACE_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/metrics.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

// Set by the build (src/trace/CMakeLists.txt); default to compiled-in for out-of-build users.
#ifndef ODF_TRACE_COMPILED
#define ODF_TRACE_COMPILED 1
#endif

namespace odf {

// The static tracepoint catalog. Arg conventions are documented per event in
// docs/observability.md; pid is the acting process (0 when no process context exists).
#define ODF_TRACEPOINT_LIST(X)  \
  X(fork_begin)                 \
  X(fork_end)                   \
  X(pte_table_shared)           \
  X(pmd_table_shared)           \
  X(fault_demand_zero)          \
  X(fault_file)                 \
  X(fault_cow_page)             \
  X(fault_cow_huge)             \
  X(fault_cow_reuse)            \
  X(fault_cow_pte_table)        \
  X(fault_cow_pmd_table)        \
  X(fault_pte_table_fixup)      \
  X(fault_pmd_table_fixup)      \
  X(fault_swap_in)              \
  X(fault_segv)                 \
  X(page_swap_out)              \
  X(reclaim_begin)              \
  X(reclaim_end)                \
  X(tlb_flush)                  \
  X(proc_create)                \
  X(proc_exit)                  \
  X(proc_reap)                  \
  X(oom_kill)                   \
  X(fi_inject)                  \
  X(fork_rollback)              \
  X(fork_degrade_classic)       \
  X(fault_oom)                  \
  X(swap_io_error)              \
  X(pcp_hit)                    \
  X(pcp_miss)                   \
  X(pcp_refill)                 \
  X(pcp_drain)                  \
  X(batch_free)                 \
  X(kswapd_wake)                \
  X(kswapd_sleep)               \
  X(rmap_unmap)                 \
  X(workingset_refault)         \
  X(mf_hard_offline)            \
  X(mf_soft_offline)            \
  X(mf_sigbus)                  \
  X(lock_contended)             \
  X(lock_wait)

enum class TraceEventId : uint16_t {
#define ODF_TRACE_ENUM_MEMBER(name) k_##name,
  ODF_TRACEPOINT_LIST(ODF_TRACE_ENUM_MEMBER)
#undef ODF_TRACE_ENUM_MEMBER
      kCount,
};

constexpr size_t kTraceEventCount = static_cast<size_t>(TraceEventId::kCount);

// Stable lowercase name, e.g. "fault_cow_page"; "?" for out-of-range ids.
const char* TraceEventName(TraceEventId id);

// One fixed-size binary record (40 bytes). Interpretation of a0..a2 is per-event.
struct TraceEvent {
  uint64_t ts_ns = 0;  // Nanoseconds since the tracer epoch (first use in this process).
  uint64_t a0 = 0;
  uint64_t a1 = 0;
  uint64_t a2 = 0;
  int32_t pid = 0;
  TraceEventId id = TraceEventId::kCount;
  uint16_t tid = 0;  // Tracer-assigned thread index (registration order).
};

namespace trace {

// Single-producer ring: only the owning thread appends; readers snapshot concurrently and
// may observe a partially overwritten oldest slot while the writer is active (benign for a
// monitoring buffer; exporters are normally run quiescently).
class TraceRing {
 public:
  static constexpr size_t kCapacity = 8192;  // Power of two; 320 KiB per thread.

  explicit TraceRing(uint16_t tid) : tid_(tid) {}

  void Append(const TraceEvent& event) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    if (head >= kCapacity) {
      // The slot being reused still holds an unconsumed event: the ring has wrapped.
      CountVm(VmCounter::k_trace_ring_overwrite);
    }
    slots_[head & (kCapacity - 1)] = event;
    head_.store(head + 1, std::memory_order_release);
  }

  // Events still resident (the most recent <= kCapacity), oldest first.
  std::vector<TraceEvent> Snapshot() const;

  // Resident events with append index >= `from` (oldest first). Events older than the
  // resident window are gone; callers detect the gap via TotalAppended() - kCapacity.
  std::vector<TraceEvent> SnapshotSince(uint64_t from) const;

  // Total events ever appended, including overwritten ones.
  uint64_t TotalAppended() const { return head_.load(std::memory_order_acquire); }

  // Events lost to wraparound since the last Reset (head beyond the resident window).
  uint64_t OverwrittenCount() const {
    uint64_t head = head_.load(std::memory_order_acquire);
    return head > kCapacity ? head - kCapacity : 0;
  }

  uint16_t tid() const { return tid_; }

  // Owner-quiescent reset (see Tracer::Clear contract).
  void Reset() { head_.store(0, std::memory_order_release); }

 private:
  std::atomic<uint64_t> head_{0};
  uint16_t tid_;
  std::array<TraceEvent, kCapacity> slots_{};
};

// Global runtime switch. Inline so the ODF_TRACE fast path is a single relaxed load.
inline std::atomic<bool> g_trace_enabled{false};

// With tracing compiled out, Enabled() folds to false so instrumentation-adjacent code
// (`const bool tracing = trace::Enabled();` timestamp prologues) vanishes too — direct
// callers get the same zero-cost guarantee as the ODF_TRACE macro itself.
#if ODF_TRACE_COMPILED
inline bool Enabled() { return g_trace_enabled.load(std::memory_order_relaxed); }
#else
constexpr bool Enabled() { return false; }
#endif
void SetEnabled(bool enabled);

// Nanoseconds since the process-wide tracer epoch (steady clock).
uint64_t NowNanos();

// Records one event into the calling thread's ring (registering the thread on first use).
// Callers normally go through ODF_TRACE, which checks Enabled() first; calling Emit directly
// records unconditionally.
void Emit(TraceEventId id, int32_t pid = 0, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0);

class Tracer {
 public:
  static Tracer& Global();

  // The calling thread's ring (created and registered on first call from that thread).
  TraceRing& RingForThisThread();

  // All resident events from every thread, merged and sorted by timestamp (stable: per-thread
  // order is preserved among equal timestamps).
  std::vector<TraceEvent> CollectAll() const;

  // Per-thread snapshots, one vector per registered ring, in registration (tid) order.
  std::vector<std::vector<TraceEvent>> CollectPerThread() const;

  // Stable pointers to every registered ring, in registration (tid) order. Rings are never
  // freed, so the pointers stay valid; reading them follows the usual snapshot contract.
  std::vector<const TraceRing*> Rings() const;

  // Per-ring (tid, appended, overwritten) accounting rows, in registration order.
  struct RingStats {
    uint16_t tid = 0;
    uint64_t appended = 0;
    uint64_t overwritten = 0;
  };
  std::vector<RingStats> CollectRingStats() const;

  // Drops buffered events by resetting every ring cursor. Rings themselves are never freed
  // (threads hold cached pointers). Only safe while no thread is concurrently emitting.
  void Clear();

  // ftrace-style human-readable dump of CollectAll() — see docs/observability.md.
  std::string FormatDump() const;

  size_t ThreadCount() const;

 private:
  Tracer() = default;

  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_ ODF_GUARDED_BY(mutex_);
};

}  // namespace trace
}  // namespace odf

#if ODF_TRACE_COMPILED
// Arguments are evaluated only when tracing is runtime-enabled, so sites may pass mildly
// expensive expressions (e.g. MappedBytes()) without taxing the disabled path.
#define ODF_TRACE(name, ...)                                                        \
  do {                                                                              \
    if (::odf::trace::Enabled()) {                                                  \
      ::odf::trace::Emit(::odf::TraceEventId::k_##name __VA_OPT__(, ) __VA_ARGS__); \
    }                                                                               \
  } while (0)
#else
#define ODF_TRACE(name, ...) ((void)0)
#endif

#endif  // ODF_SRC_TRACE_TRACE_H_
