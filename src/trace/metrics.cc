#include "src/trace/metrics.h"

#include <sstream>

namespace odf {

const char* VmCounterName(VmCounter counter) {
  static constexpr const char* kNames[] = {
#define ODF_VM_NAME_MEMBER(name) #name,
      ODF_VM_COUNTER_LIST(ODF_VM_NAME_MEMBER)
#undef ODF_VM_NAME_MEMBER
  };
  size_t index = static_cast<size_t>(counter);
  return index < kVmCounterCount ? kNames[index] : "?";
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Leaked; see Tracer::Global.
  return *registry;
}

Counter& MetricsRegistry::RegisterCounter(const std::string& name) {
  util::MutexLock guard(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

LatencyHistogram& MetricsRegistry::RegisterHistogram(const std::string& name) {
  util::MutexLock guard(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyHistogram>();
  }
  return *slot;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::SnapshotCounters() const {
  std::vector<std::pair<std::string, uint64_t>> snapshot;
  for (size_t i = 0; i < kVmCounterCount; ++i) {
    VmCounter counter = static_cast<VmCounter>(i);
    snapshot.emplace_back(VmCounterName(counter), ReadVm(counter));
  }
  util::MutexLock guard(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.emplace_back(name, counter->Value());
  }
  return snapshot;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  for (size_t i = 0; i < kVmCounterCount; ++i) {
    VmCounter counter = static_cast<VmCounter>(i);
    if (name == VmCounterName(counter)) {
      return ReadVm(counter);
    }
  }
  util::MutexLock guard(mutex_);
  auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second->Value();
}

std::vector<std::pair<std::string, const LatencyHistogram*>> MetricsRegistry::Histograms()
    const {
  util::MutexLock guard(mutex_);
  std::vector<std::pair<std::string, const LatencyHistogram*>> result;
  result.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    result.emplace_back(name, histogram.get());
  }
  return result;
}

std::string MetricsRegistry::FormatVmstat() const {
  std::ostringstream out;
  for (const auto& [name, value] : SnapshotCounters()) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, histogram] : Histograms()) {
    out << name << "_count " << histogram->TotalCount() << "\n";
    if (histogram->TotalCount() > 0) {
      out << name << "_p50_us " << histogram->PercentileMicros(50.0) << "\n";
      out << name << "_p99_us " << histogram->PercentileMicros(99.0) << "\n";
    }
  }
  return out.str();
}

void MetricsRegistry::ResetForTest() {
  for (auto& counter : g_vm_counters) {
    counter.store(0, std::memory_order_relaxed);
  }
  util::MutexLock guard(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace odf
