#include "src/fi/fault_inject.h"

#include <charconv>
#include <sstream>

#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {

const char* FiSiteName(FiSite site) {
  switch (site) {
#define ODF_FI_NAME_CASE(name) \
  case FiSite::k_##name:       \
    return #name;
    ODF_FI_SITE_LIST(ODF_FI_NAME_CASE)
#undef ODF_FI_NAME_CASE
    case FiSite::kCount:
      break;
  }
  return "?";
}

bool ParseFiSite(std::string_view name, FiSite* out) {
  for (size_t i = 0; i < kFiSiteCount; ++i) {
    FiSite site = static_cast<FiSite>(i);
    if (name == FiSiteName(site)) {
      *out = site;
      return true;
    }
  }
  return false;
}

namespace fi {

namespace {

// SplitMix64 finalizer: the per-call Bernoulli draw hashes (seed, site, call index) so a
// site's schedule is independent of how other sites' calls interleave (replay stability).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double HashToUnitDouble(uint64_t seed, FiSite site, uint64_t call) {
  uint64_t h = Mix64(seed ^ Mix64((static_cast<uint64_t>(site) << 56) ^ call));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::atomic<DecisionHook> g_decision_hook{nullptr};
std::atomic<ConfigHook> g_config_hook{nullptr};

void FireConfigHook(FiSite site, const FiSiteConfig* config) {
  if (ConfigHook hook = g_config_hook.load(std::memory_order_acquire)) {
    hook(site, config);
  }
}

}  // namespace

void SetDecisionHook(DecisionHook hook) {
  g_decision_hook.store(hook, std::memory_order_release);
}

void SetConfigHook(ConfigHook hook) {
  g_config_hook.store(hook, std::memory_order_release);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::RefreshArmedFlagLocked() {
  bool any = false;
  for (const Site& site : sites_) {
    any = any || site.armed;
  }
  g_fi_armed.store(any, std::memory_order_relaxed);
}

void FaultInjector::Arm(FiSite site, const FiSiteConfig& config) {
  {
    util::MutexLock guard(mutex_);
    Site& s = sites_[static_cast<size_t>(site)];
    s.config = config;
    s.armed = true;
    s.pinned = false;
    s.pinned_verdicts.clear();
    s.calls = 0;
    s.injected = 0;
    RefreshArmedFlagLocked();
  }
  FireConfigHook(site, &config);
}

void FaultInjector::Disarm(FiSite site) {
  {
    util::MutexLock guard(mutex_);
    sites_[static_cast<size_t>(site)].armed = false;
    RefreshArmedFlagLocked();
  }
  FireConfigHook(site, nullptr);
}

void FaultInjector::Reset(uint64_t seed) {
  {
    util::MutexLock guard(mutex_);
    for (Site& site : sites_) {
      site = Site{};
    }
    seed_ = seed;
    pinned_overflow_ = 0;
    RefreshArmedFlagLocked();
  }
  FireConfigHook(FiSite::kCount, nullptr);
}

void FaultInjector::SetSeed(uint64_t seed) {
  util::MutexLock guard(mutex_);
  seed_ = seed;
}

uint64_t FaultInjector::seed() const {
  util::MutexLock guard(mutex_);
  return seed_;
}

bool FaultInjector::ShouldFail(FiSite site) {
  uint64_t call = 0;
  bool verdict = false;
  {
    util::MutexLock guard(mutex_);
    Site& s = sites_[static_cast<size_t>(site)];
    if (!s.armed) {
      return false;
    }
    call = ++s.calls;
    if (s.pinned) {
      // Replay mode: the verdict comes from the recorded schedule, not the config.
      if (call <= s.pinned_verdicts.size()) {
        verdict = s.pinned_verdicts[call - 1];
      } else {
        ++pinned_overflow_;
      }
    } else {
      const FiSiteConfig& c = s.config;
      bool fail = (c.nth != 0 && call == c.nth);
      if (!fail && c.interval != 0 && call % c.interval == 0) {
        fail = true;
      }
      if (!fail && c.probability > 0.0 &&
          HashToUnitDouble(seed_, site, call) < c.probability) {
        fail = true;
      }
      verdict = fail && !(c.times >= 0 && s.injected >= static_cast<uint64_t>(c.times));
    }
    if (verdict) {
      ++s.injected;
    }
  }
  // Hook and trace fire outside the lock; the hook sees every armed call, injected or not,
  // so a recorded schedule pins the full verdict sequence.
  if (DecisionHook hook = g_decision_hook.load(std::memory_order_acquire)) {
    hook(site, call, verdict);
  }
  if (verdict) {
    CountVm(VmCounter::k_fi_injected);
    ODF_TRACE(fi_inject, /*pid=*/0, static_cast<uint64_t>(site), call);
  }
  return verdict;
}

void FaultInjector::PinForReplay(FiSite site, std::vector<bool> verdicts) {
  util::MutexLock guard(mutex_);
  Site& s = sites_[static_cast<size_t>(site)];
  s.config = FiSiteConfig{};
  s.armed = true;
  s.pinned = true;
  s.calls = 0;
  s.injected = 0;
  s.pinned_verdicts = std::move(verdicts);
  RefreshArmedFlagLocked();
}

void FaultInjector::UnpinAll() {
  util::MutexLock guard(mutex_);
  for (Site& site : sites_) {
    if (site.pinned) {
      site = Site{};
    }
  }
  pinned_overflow_ = 0;
  RefreshArmedFlagLocked();
}

uint64_t FaultInjector::PinnedOverflow() const {
  util::MutexLock guard(mutex_);
  return pinned_overflow_;
}

bool FaultInjector::IsArmed(FiSite site) const {
  util::MutexLock guard(mutex_);
  return sites_[static_cast<size_t>(site)].armed;
}

FiSiteConfig FaultInjector::SiteConfig(FiSite site) const {
  util::MutexLock guard(mutex_);
  return sites_[static_cast<size_t>(site)].config;
}

FiSiteStats FaultInjector::SiteStats(FiSite site) const {
  util::MutexLock guard(mutex_);
  const Site& s = sites_[static_cast<size_t>(site)];
  return FiSiteStats{s.calls, s.injected};
}

uint64_t FaultInjector::TotalInjected() const {
  util::MutexLock guard(mutex_);
  uint64_t total = 0;
  for (const Site& site : sites_) {
    total += site.injected;
  }
  return total;
}

std::string FaultInjector::FormatStatus() const {
  util::MutexLock guard(mutex_);
  std::ostringstream out;
  out << "fault_inject " << (ODF_FAULT_INJECT_COMPILED ? "compiled-in" : "compiled-out")
      << " seed " << seed_ << "\n";
  for (size_t i = 0; i < kFiSiteCount; ++i) {
    const Site& s = sites_[i];
    out << FiSiteName(static_cast<FiSite>(i)) << " ";
    if (!s.armed) {
      out << "off";
    } else if (s.pinned) {
      out << "pinned schedule_len " << s.pinned_verdicts.size();
    } else {
      out << "probability " << s.config.probability << " nth " << s.config.nth << " interval "
          << s.config.interval << " times " << s.config.times;
    }
    out << " calls " << s.calls << " injected " << s.injected << "\n";
  }
  return out.str();
}

namespace {

bool ParseUint(std::string_view text, uint64_t* out) {
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseDouble(std::string_view text, double* out) {
  // std::from_chars<double> is not universally available; strtod on a bounded copy is.
  std::string copy(text);
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

}  // namespace

bool FaultInjector::Configure(std::string_view spec, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };

  FiSite current = FiSite::kCount;
  bool have_site = false;
  // Pending config for the named site, applied when the site changes or at end-of-spec, so
  // one site's keys can arrive in any order.
  FiSiteConfig pending;
  bool pending_arm = false;

  auto flush = [&]() {
    if (have_site && pending_arm) {
      Arm(current, pending);
    }
    pending = FiSiteConfig{};
    pending_arm = false;
  };

  size_t pos = 0;
  while (pos < spec.size()) {
    while (pos < spec.size() && (spec[pos] == ' ' || spec[pos] == '\t' || spec[pos] == '\n')) {
      ++pos;
    }
    if (pos >= spec.size()) {
      break;
    }
    size_t end = pos;
    while (end < spec.size() && spec[end] != ' ' && spec[end] != '\t' && spec[end] != '\n') {
      ++end;
    }
    std::string_view token = spec.substr(pos, end - pos);
    pos = end;

    if (token == "reset") {
      flush();
      Reset();
      have_site = false;
      continue;
    }
    if (token == "off") {
      if (!have_site) {
        return fail("'off' before any site= token");
      }
      pending = FiSiteConfig{};
      pending_arm = false;
      Disarm(current);
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return fail("malformed token (want key=value): '" + std::string(token) + "'");
    }
    std::string_view key = token.substr(0, eq);
    std::string_view value = token.substr(eq + 1);
    if (key == "seed") {
      uint64_t seed = 0;
      if (!ParseUint(value, &seed)) {
        return fail("bad seed: '" + std::string(value) + "'");
      }
      SetSeed(seed);
      continue;
    }
    if (key == "site") {
      flush();
      if (!ParseFiSite(value, &current)) {
        return fail("unknown site: '" + std::string(value) + "'");
      }
      have_site = true;
      continue;
    }
    if (!have_site) {
      return fail("'" + std::string(key) + "=' before any site= token");
    }
    if (key == "probability" || key == "p") {
      if (!ParseDouble(value, &pending.probability)) {
        return fail("bad probability: '" + std::string(value) + "'");
      }
    } else if (key == "nth") {
      if (!ParseUint(value, &pending.nth)) {
        return fail("bad nth: '" + std::string(value) + "'");
      }
    } else if (key == "interval") {
      if (!ParseUint(value, &pending.interval)) {
        return fail("bad interval: '" + std::string(value) + "'");
      }
    } else if (key == "times") {
      uint64_t times = 0;
      if (!ParseUint(value, &times)) {
        return fail("bad times: '" + std::string(value) + "'");
      }
      pending.times = static_cast<int64_t>(times);
    } else {
      return fail("unknown key: '" + std::string(key) + "'");
    }
    pending_arm = true;
  }
  flush();
  return true;
}

}  // namespace fi
}  // namespace odf
