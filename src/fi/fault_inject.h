// odf::fi — deterministic fault injection, modeled on the kernel's failslab /
// fail_page_alloc debugfs machinery.
//
// Recoverable allocation and I/O sites (frame alloc, compound alloc, page-table alloc,
// swap-out, swap-in) consult ShouldInject(site) on their fallible ("Try") paths and turn an
// injected failure into the same typed error a genuine ENOMEM/EIO would produce. NOFAIL
// paths (the GFP_NOFAIL analogs: plain Allocate/AllocateCompound/AllocPageTable and
// teardown/rollback code) never consult the injector, so an armed injector can fail any
// recoverable operation but can never abort the kernel — that is what makes torture runs
// (tests/torture_test.cc) possible.
//
// Determinism: every injection decision is a pure function of (seed, site, per-site call
// index). Probability mode hashes those three through SplitMix64 instead of drawing from a
// shared RNG stream, so the schedule at one site does not depend on how calls at other
// sites interleave — replaying a failing seed with the same workload reproduces the exact
// same failure schedule (see docs/robustness.md "Replaying a failing seed").
//
// Cost model (mirrors ODF_TRACE):
//   - compiled out (-DODF_FAULT_INJECT=OFF => ODF_FAULT_INJECT_COMPILED=0): ShouldInject is
//     a constant false; the injector object still compiles but is inert.
//   - disarmed (the default): one relaxed atomic load and a predicted branch per Try call.
//   - armed: a mutex-serialized decision per call at the armed sites (testing-only cost).
#ifndef ODF_SRC_FI_FAULT_INJECT_H_
#define ODF_SRC_FI_FAULT_INJECT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

// Set by the build (src/fi/CMakeLists.txt); default to compiled-in for out-of-build users.
#ifndef ODF_FAULT_INJECT_COMPILED
#define ODF_FAULT_INJECT_COMPILED 1
#endif

namespace odf {

// The injection-site catalog. Each site is one class of recoverable failure; the Try entry
// point that consults it is listed in docs/robustness.md.
#define ODF_FI_SITE_LIST(X) \
  X(frame_alloc)            \
  X(compound_alloc)         \
  X(page_table_alloc)       \
  X(swap_out)               \
  X(swap_in)                \
  X(rmap_alloc)             \
  X(reclaim_writeback)      \
  X(mf_ecc)

enum class FiSite : uint32_t {
#define ODF_FI_ENUM_MEMBER(name) k_##name,
  ODF_FI_SITE_LIST(ODF_FI_ENUM_MEMBER)
#undef ODF_FI_ENUM_MEMBER
      kCount,
};

constexpr size_t kFiSiteCount = static_cast<size_t>(FiSite::kCount);

// Stable lowercase name, e.g. "compound_alloc"; "?" for out-of-range values.
const char* FiSiteName(FiSite site);

// Parses a site name as printed by FiSiteName. Returns false on unknown names.
bool ParseFiSite(std::string_view name, FiSite* out);

// Per-site schedule. Modes compose: a call fails when ANY armed mode selects it, subject to
// the `times` budget. All-zero config (the default) never fails a call but still counts it.
struct FiSiteConfig {
  double probability = 0.0;  // Bernoulli per call, derived from (seed, site, call index).
  uint64_t nth = 0;          // If nonzero: fail exactly the nth call (1-based), once.
  uint64_t interval = 0;     // If nonzero: fail every interval-th call (call % interval == 0).
  int64_t times = -1;        // Max injections at this site; -1 = unlimited.
};

struct FiSiteStats {
  uint64_t calls = 0;     // Try-path decisions taken at this site while armed.
  uint64_t injected = 0;  // Calls the injector failed.
};

namespace fi {

// True when at least one site is armed. Inline so the disarmed fast path in ShouldInject is
// a single relaxed load (the static_key analog).
inline std::atomic<bool> g_fi_armed{false};

// Observer invoked (outside the injector lock) for every armed-site decision, with the
// 1-based per-site call index and the final verdict. The replay flight recorder installs one
// to log the schedule; replay then pins it back via PinForReplay. The hook must not call
// back into the injector.
using DecisionHook = void (*)(FiSite site, uint64_t call, bool verdict);
void SetDecisionHook(DecisionHook hook);

// Observer invoked (outside the injector lock) when the injection schedule itself changes:
// Arm fires (site, &config), Disarm fires (site, nullptr), and Reset fires
// (FiSite::kCount, nullptr). The flight recorder logs these as schedule ops so replay can
// reproduce per-site call indices, which restart at every arming. Same no-reentry rule as
// DecisionHook.
using ConfigHook = void (*)(FiSite site, const FiSiteConfig* config);
void SetConfigHook(ConfigHook hook);

class FaultInjector {
 public:
  static constexpr uint64_t kDefaultSeed = 0x0df0df0dULL;

  // The process-wide injector (failslab is machine-global; so is this).
  static FaultInjector& Global();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms `site` with `config`. Counters for the site restart at zero, so `nth` is relative
  // to the moment of arming.
  void Arm(FiSite site, const FiSiteConfig& config);
  void Disarm(FiSite site);

  // Disarms every site, zeroes all stats, and reseeds. The canonical way for a test to
  // leave the (global) injector the way it found it.
  void Reset(uint64_t seed = kDefaultSeed);

  void SetSeed(uint64_t seed);
  uint64_t seed() const;

  // The armed-path decision: counts the call and returns true when the schedule fails it.
  // Callers go through ShouldInject, which checks the armed flag first.
  bool ShouldFail(FiSite site);

  bool IsArmed(FiSite site) const;
  FiSiteConfig SiteConfig(FiSite site) const;
  FiSiteStats SiteStats(FiSite site) const;

  // Total injections across all sites since the last Reset.
  uint64_t TotalInjected() const;

  // debugfs-style status text: seed plus one line per site (armed sites show their config).
  std::string FormatStatus() const;

  // The procfs knob: applies a whitespace-separated key=value spec, e.g.
  //   "seed=42 site=frame_alloc probability=0.01 times=5"
  //   "site=compound_alloc nth=3"
  //   "site=swap_out interval=7"
  //   "site=swap_in off"
  // `seed=` applies globally; every other key configures the most recently named site. The
  // bare token `off` disarms the named site; `reset` resets everything. Returns false (and
  // fills *error) on malformed input, leaving prior state untouched on parse errors that
  // precede any applied token.
  bool Configure(std::string_view spec, std::string* error = nullptr);

  // Replay mode: arms `site` with a fixed verdict schedule indexed by per-site call number
  // (verdicts[i] is the verdict of call i+1), overriding probability/nth/interval. Calls past
  // the end of the schedule return false and bump PinnedOverflow() — the replay engine treats
  // a nonzero overflow as divergence. Counters restart at zero, as with Arm.
  void PinForReplay(FiSite site, std::vector<bool> verdicts);

  // Disarms every pinned site and zeroes the overflow count; sites armed via Arm survive.
  void UnpinAll();

  // Decisions demanded past the end of a pinned schedule since the last UnpinAll/Reset.
  uint64_t PinnedOverflow() const;

 private:
  FaultInjector() = default;

  struct Site {
    FiSiteConfig config;
    bool armed = false;
    bool pinned = false;
    uint64_t calls = 0;
    uint64_t injected = 0;
    std::vector<bool> pinned_verdicts;
  };

  void RefreshArmedFlagLocked() ODF_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  uint64_t seed_ ODF_GUARDED_BY(mutex_) = kDefaultSeed;
  uint64_t pinned_overflow_ ODF_GUARDED_BY(mutex_) = 0;
  std::array<Site, kFiSiteCount> sites_ ODF_GUARDED_BY(mutex_);
};

// Hot-path check used by the Try entry points. Compiled out => constant false; disarmed =>
// one relaxed load; armed => full (serialized) schedule decision.
inline bool ShouldInject(FiSite site) {
#if ODF_FAULT_INJECT_COMPILED
  if (!g_fi_armed.load(std::memory_order_relaxed)) {
    return false;
  }
  return FaultInjector::Global().ShouldFail(site);
#else
  (void)site;
  return false;
#endif
}

// RAII arming for tests: arms on construction, disarms (and forgets the site's counters on
// the next Arm) on destruction.
class ScopedInjection {
 public:
  ScopedInjection(FiSite site, const FiSiteConfig& config) : site_(site) {
    FaultInjector::Global().Arm(site_, config);
  }
  ScopedInjection(const ScopedInjection&) = delete;
  ScopedInjection& operator=(const ScopedInjection&) = delete;
  ~ScopedInjection() { FaultInjector::Global().Disarm(site_); }

 private:
  FiSite site_;
};

}  // namespace fi
}  // namespace odf

#endif  // ODF_SRC_FI_FAULT_INJECT_H_
