// MmGate — the kernel-wide mutator/evictor gate (docs/reclaim.md "Locking").
//
// Reclaim rewrites leaf PTEs behind the backs of every process — including PTEs in tables
// shared across address spaces by on-demand-fork — and then frees the frames those entries
// referenced. The split-lock protocol (range_ops.h) orders *structural* mutation of one
// table, but a frame's mappings span many tables, and a mutator mid-fault carries PTE
// values in locals between translate and the data copy. The gate makes eviction sound the
// same way try_to_unmap relies on the rmap locks plus TLB shootdown IPIs: mutators hold
// the gate SHARED for the duration of one memory operation, the evictor takes it
// EXCLUSIVE, so an eviction batch observes quiescent page tables and can flush TLBs
// before any mutator runs again.
//
// Rules (lock order: debug::MutationScope -> per-AS gate -> shard mutex -> MmGate ->
// Kernel::table_mutex_ -> the rest; see the table in docs/debugging.md):
//   - Mutator paths (AccessMemory's fault paths, the mmap family, fork, exit) take
//     SharedScope — INSIDE any per-AS gate or shard lock they hold, never outside.
//     Shared holds are reentrant per thread and no-ops while the thread holds the gate
//     exclusively (the OOM killer calls Kernel::Exit from inside an eviction).
//   - Eviction (kswapd balance rounds, direct reclaim, VerifyKernel) takes
//     ExclusiveScope. ExclusiveScope UPGRADES: it releases the calling thread's shared
//     holds first and restores them afterwards, so a mutator blocked at the allocation
//     quota can run direct reclaim without deadlocking against its own shared hold.
//   - No other lock may be held at a quota-wait allocation point (TryWaitForQuota): a
//     mutator blocked there has dropped the gate, and any lock it still held could be
//     needed by the eviction that must run to unblock it. DedicatePteTable /
//     DedicatePmdTable (range_ops.cc) and MemFile::GetPage (mem_fs.cc) pre-allocate
//     outside their locks for exactly this reason.
#ifndef ODF_SRC_RECLAIM_MM_GATE_H_
#define ODF_SRC_RECLAIM_MM_GATE_H_

#include "src/util/bravo_gate.h"
#include "src/util/thread_annotations.h"

namespace odf {
namespace reclaim {

// Capability "mm_gate", always named MmGate::Global() in attribute expressions:
// SharedScope/ExclusiveScope carry the acquire/release contracts, and evictor-only
// machinery (rmap::Snapshot, LRU eviction walks) declares ODF_REQUIRES(Global()) so a
// call without an exclusive scope in sight is a compile error. The reentrant/upgrade
// protocol lives in TLS + the unannotated BravoGate underneath, and is cross-function
// (the nested scope is opened in a callee), so the intraprocedural analysis never sees
// a same-function double acquire and no opt-outs are needed.
class ODF_CAPABILITY("mm_gate") MmGate {
 public:
  static MmGate& Global();

  MmGate(const MmGate&) = delete;
  MmGate& operator=(const MmGate&) = delete;

  // True while the calling thread holds the gate exclusively.
  static bool ThreadHoldsExclusive();
  // Number of SharedScopes open on the calling thread (0 = outside any memory operation).
  static int ThreadSharedDepth();

  // Mutator side: shared hold for the duration of one memory operation. Reentrant per
  // thread; a no-op while the calling thread holds the gate exclusively.
  class ODF_SCOPED_CAPABILITY SharedScope {
   public:
    SharedScope() ODF_ACQUIRE_SHARED(Global());
    ~SharedScope() ODF_RELEASE_GENERIC();
    SharedScope(const SharedScope&) = delete;
    SharedScope& operator=(const SharedScope&) = delete;
  };

  // Evictor side: exclusive hold with upgrade semantics. If the calling thread holds
  // shared (a mutator entering direct reclaim from the allocation quota wait), the shared
  // holds are released before blocking for exclusive and re-taken on scope exit — the
  // caller must re-validate any state derived under the dropped shared hold. Reentrant.
  class ODF_SCOPED_CAPABILITY ExclusiveScope {
   public:
    ExclusiveScope() ODF_ACQUIRE(Global());
    ~ExclusiveScope() ODF_RELEASE();
    ExclusiveScope(const ExclusiveScope&) = delete;
    ExclusiveScope& operator=(const ExclusiveScope&) = delete;

   private:
    int restored_shared_ = 0;
  };

 private:
  MmGate() = default;

  // BRAVO distributed reader/writer gate (util/bravo_gate.h): the shared side is taken on
  // EVERY memory access by every faulting thread, so the reader fast path must not bounce
  // a shared cache line — a plain shared_mutex reader count caps multi-thread fault
  // scaling long before the shard locks do.
  util::BravoGate gate_;
  static thread_local int tls_shared_depth_;
  static thread_local int tls_exclusive_depth_;
  static thread_local util::BravoGate::ReadToken tls_token_;
};

}  // namespace reclaim
}  // namespace odf

#endif  // ODF_SRC_RECLAIM_MM_GATE_H_
