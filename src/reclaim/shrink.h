// The shrinker: try_to_unmap-style eviction of inactive anonymous pages, plus the
// active-list aging scan that feeds it. This is the policy core shared by kswapd and
// direct reclaim (Kernel::ReclaimMemory).
//
// CALLERS MUST HOLD THE MmGate EXCLUSIVELY (mm_gate.h): the shrinker rewrites leaf
// entries in tables shared across address spaces and frees the frames they referenced;
// the gate guarantees no mutator is mid-operation and that TLBs are flushed before any
// mutator resumes.
#ifndef ODF_SRC_RECLAIM_SHRINK_H_
#define ODF_SRC_RECLAIM_SHRINK_H_

#include <cstdint>
#include <functional>

#include "src/mm/swap.h"
#include "src/phys/frame_allocator.h"
#include "src/reclaim/lru.h"
#include "src/reclaim/rmap.h"

namespace odf {
namespace reclaim {

// Everything a reclaim pass needs, bundled so shrink/kswapd stay below the process layer.
// flush_tlbs must invalidate every process's TLB (coarse, generation-bump flush); the
// kernel supplies it because only the process table knows who has a TLB.
struct ShrinkContext {
  FrameAllocator* allocator = nullptr;
  SwapSpace* swap = nullptr;
  RmapRegistry* rmap = nullptr;
  PageLru* lru = nullptr;
  std::function<void()> flush_tlbs;
};

// Ages the active tail: frames referenced since their last scan rotate back to the active
// head (accessed bits harvested), cold frames demote to the inactive head (pgdeactivate).
// Returns the number demoted; sets *tlb_dirty when any accessed bit was cleared.
// *scanned_out (optional) reports how many frames were examined: a pass that rotates a
// fully-referenced list demotes nothing yet still makes progress (the cleared bits make
// the next pass demote), and ReclaimPages must not read that as a stall.
uint64_t AgeActiveList(ShrinkContext& ctx, uint64_t scan, bool* tlb_dirty,
                       uint64_t* scanned_out = nullptr);

// Scans up to `scan` frames off the inactive tail and evicts up to `want` of them:
// referenced frames get their second chance (re-activated, pgactivate), evictable frames
// have every rmap location rewritten to a swap entry (or cleared, for never-materialised
// zero pages), their swap slot referenced once per mapping, and their frame references
// dropped (pgsteal). Returns frames freed; *scanned_out (optional) reports how many
// frames were looked at, so callers can tell a stalled list from a referenced one.
uint64_t ShrinkInactiveList(ShrinkContext& ctx, uint64_t want, uint64_t scan,
                            bool* tlb_dirty, uint64_t* scanned_out = nullptr);

// The full reclaim round used by kswapd and direct reclaim: alternates aging and
// shrinking until `want` frames are freed or no progress is possible, then flushes TLBs
// once if anything changed. Returns frames freed.
uint64_t ReclaimPages(ShrinkContext& ctx, uint64_t want);

}  // namespace reclaim
}  // namespace odf

#endif  // ODF_SRC_RECLAIM_SHRINK_H_
