#include "src/reclaim/shrink.h"

#include <algorithm>
#include <vector>

#include "src/debug/debug.h"
#include "src/fi/fault_inject.h"
#include "src/pt/pte.h"
#include "src/reclaim/mm_gate.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace odf {
namespace reclaim {

namespace {

constexpr size_t kScanBatch = 64;

// An inactive-tail candidate the shrinker cannot or should not evict right now goes back
// to the ACTIVE head: putting it back inactive would make the very next TakeInactive spin
// on it, and a frame that dodged eviction has earned another aging round anyway.
void Rotate(ShrinkContext& ctx, FrameId frame) { ctx.lru->PutBack(frame, /*active=*/true); }

}  // namespace

uint64_t AgeActiveList(ShrinkContext& ctx, uint64_t scan, bool* tlb_dirty,
                       uint64_t* scanned_out) {
  std::vector<FrameId> batch;
  std::vector<RmapLocation> locations;
  ctx.lru->TakeActive(scan, &batch);
  if (scanned_out != nullptr) {
    *scanned_out = batch.size();
  }
  uint64_t demoted = 0;
  for (FrameId frame : batch) {
    locations.clear();
    ctx.rmap->Snapshot(frame, &locations);
    if (locations.empty()) {
      continue;  // Last mapping went away while the frame was detached.
    }
    bool referenced = false;
    for (const RmapLocation& location : locations) {
      if (TestAndClearAccessed(location.slot)) {
        referenced = true;
        *tlb_dirty = true;
      }
    }
    if (referenced) {
      ctx.lru->PutBack(frame, /*active=*/true);
    } else {
      ctx.lru->PutBack(frame, /*active=*/false);
      ++demoted;
      CountVm(VmCounter::k_pgdeactivate);
    }
  }
  return demoted;
}

uint64_t ShrinkInactiveList(ShrinkContext& ctx, uint64_t want, uint64_t scan,
                            bool* tlb_dirty, uint64_t* scanned_out) {
  ODF_DCHECK(MmGate::ThreadHoldsExclusive()) << "shrink without the MmGate held exclusive";
  FrameAllocator& allocator = *ctx.allocator;
  std::vector<FrameId> batch;
  std::vector<RmapLocation> locations;
  uint64_t freed = 0;
  uint64_t scanned = 0;
  while (freed < want && scanned < scan) {
    batch.clear();
    size_t take = static_cast<size_t>(std::min<uint64_t>(scan - scanned, kScanBatch));
    if (ctx.lru->TakeInactive(take, &batch) == 0) {
      break;
    }
    size_t processed = 0;
    for (FrameId frame : batch) {
      if (freed >= want) {
        break;  // Unprocessed frames are reattached below; Take detached them.
      }
      ++processed;
      ++scanned;
      CountVm(VmCounter::k_pgscan);
      locations.clear();
      ctx.rmap->Snapshot(frame, &locations);
      if (locations.empty()) {
        continue;  // Unmapped while detached; the frame is no longer ours to manage.
      }
      PageMeta& meta = allocator.GetMeta(frame);
      // LRU admission (LruEligible) only lets order-0 anon frames in; re-check
      // defensively, since eviction of anything else would corrupt accounting.
      if (meta.IsCompound() || meta.IsPageTable() || (meta.flags & kPageFlagAnon) == 0) {
        ODF_DCHECK(false) << "non-anon frame " << frame << " on the LRU";
        Rotate(ctx, frame);
        continue;
      }
      if (ctx.rmap->IsUnstable(frame)) {
        Rotate(ctx, frame);  // Injected rmap_alloc failure: reverse map not trustworthy.
        continue;
      }
      if (meta.IsHwPoisoned()) {
        // Defensive: memory failure erases its frame from the LRU under the exclusive
        // gate, so a poisoned frame here means a racing offline detached it between our
        // Take and this check. Never swap out dead bytes; drop it from the scan (the
        // offline path owns its lifecycle now).
        continue;
      }
      // Evictable only when every reference is a mapping we are about to clear. A shared
      // PTE table holds ONE reference on behalf of all sharers (§3.6), so this holds for
      // frames reached through shared tables too. Extra references mean someone else
      // (a mid-rollback fork, a test) pins the frame — not ours to take.
      if (meta.refcount.load(std::memory_order_relaxed) != locations.size()) {
        Rotate(ctx, frame);
        continue;
      }
      // Second chance: referenced since it was deactivated.
      bool referenced = false;
      for (const RmapLocation& location : locations) {
        if (TestAndClearAccessed(location.slot)) {
          referenced = true;
          *tlb_dirty = true;
        }
      }
      if (referenced) {
        Rotate(ctx, frame);
        CountVm(VmCounter::k_pgactivate);
        continue;
      }
      // Writeback failure injection (reclaim_writeback): the page stays resident.
      if (fi::ShouldInject(FiSite::k_reclaim_writeback)) {
        Rotate(ctx, frame);
        continue;
      }
      std::byte* data = allocator.PeekData(frame);
      if (data != nullptr) {
        SwapSlot slot = ctx.swap->TryWriteOut(data);
        if (slot == kInvalidSwapSlot) {
          Rotate(ctx, frame);  // Swap full or IO error: keep the page resident.
          continue;
        }
        // Broadcast the swap entry into every mapping. The slot carries one reference per
        // mapping (TryWriteOut returned it with one), exactly mirroring the frame
        // references being dropped below — sharers that later diverge (DedicatePteTable)
        // IncRef the slot per copied swap PTE, and each swap-in fault DecRefs it.
        for (size_t i = 1; i < locations.size(); ++i) {
          ctx.swap->IncRef(slot);
        }
        for (const RmapLocation& location : locations) {
          StoreEntry(location.slot, Pte::MakeSwap(slot));
        }
        ctx.lru->RecordEviction(slot);
        CountVm(VmCounter::k_pgswapout);
        ODF_TRACE(page_swap_out, 0, frame);
      } else {
        // Never materialised: the content is logical zero, so dropping the mappings
        // loses nothing — the next fault demand-zeroes the page again. No swap slot.
        for (const RmapLocation& location : locations) {
          StoreEntry(location.slot, Pte());
        }
      }
      ODF_TRACE(rmap_unmap, 0, frame, locations.size());
      ctx.rmap->RemoveAll(frame);
      // One reference per cleared mapping; the last one frees the frame (the
      // refcount == locations.size() test above guarantees it).
      for (size_t i = 0; i < locations.size(); ++i) {
        // The evictor holds the MmGate exclusively, so every allocating path (fault,
        // fork: gate-shared) is blocked and the freed frame cannot be recycled before
        // ReclaimPages' deferred FlushAll bumps the generations — before the gate drops.
        // odf-lint: allow(gen-before-free)
        allocator.DecRef(frame);
      }
      ++freed;
      *tlb_dirty = true;
      CountVm(VmCounter::k_pgsteal);
    }
    // An early stop (want satisfied) leaves the batch tail detached from the LRU; those
    // frames were never looked at, so they go back where they came from.
    for (size_t i = processed; i < batch.size(); ++i) {
      ctx.lru->PutBack(batch[i], /*active=*/false);
    }
  }
  if (scanned_out != nullptr) {
    *scanned_out = scanned;
  }
  return freed;
}

uint64_t ReclaimPages(ShrinkContext& ctx, uint64_t want) {
  ODF_DCHECK(MmGate::ThreadHoldsExclusive()) << "reclaim without the MmGate held exclusive";
  bool tlb_dirty = false;
  uint64_t freed = 0;
  // Alternate aging and shrinking. The first passes over freshly-faulted pages mostly
  // harvest accessed bits (everything looks referenced and gets its second chance); the
  // demotions those passes produce are what the later passes evict. Scan pressure
  // escalates each round (the priority analog of Linux's shrink loop) so a working set
  // that is entirely referenced still converges: once a round covers the whole inactive
  // list, every accessed bit is clear and the next aging pass demotes the cold tail.
  for (int round = 0; round < 16 && freed < want; ++round) {
    uint64_t need = want - freed;
    uint64_t scan = std::max<uint64_t>(need * 2, kScanBatch) << std::min(round, 10);
    uint64_t demoted = 0;
    uint64_t aged = 0;
    if (ctx.lru->InactiveSize() < scan) {
      demoted = AgeActiveList(ctx, scan, &tlb_dirty, &aged);
    }
    uint64_t scanned = 0;
    uint64_t got = ShrinkInactiveList(ctx, need, scan, &tlb_dirty, &scanned);
    freed += got;
    if (got == 0 && demoted == 0 && scanned == 0 && aged == 0) {
      break;  // Total stall: both lists are empty or drained. Caller falls back (OOM).
    }
  }
  if (tlb_dirty && ctx.flush_tlbs) {
    // One coarse flush per reclaim round, BEFORE any mutator can run again (the caller
    // still holds the gate): stale translations to freed frames or cleared accessed bits
    // must not survive into the next memory operation.
    ctx.flush_tlbs();
  }
  return freed;
}

}  // namespace reclaim
}  // namespace odf
