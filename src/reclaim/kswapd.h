// Kswapd — the background reclaim daemon (one per Kernel, like one kswapd per node).
//
// The FrameAllocator's pressure callback (SetPressureCallback) calls Wake() whenever an
// allocation finds free frames below the LOW watermark; the daemon then runs balance
// rounds — each one taking the MmGate exclusively and calling ReclaimPages — until free
// frames recover to the HIGH watermark, and goes back to sleep. Mutators never wait for
// kswapd: a quota-blocked allocation falls into direct reclaim (Kernel::ReclaimMemory)
// regardless, exactly like the kernel's direct-reclaim-vs-kswapd split. Wake() is cheap
// and callable from any allocation context (an atomic flag plus a condvar notify).
//
// Lifecycle: not started automatically — Kernel::StartKswapd() arms it (tests that want
// deterministic, synchronous reclaim simply never start it); Stop()/the destructor join
// the thread. docs/reclaim.md covers watermark tuning.
#ifndef ODF_SRC_RECLAIM_KSWAPD_H_
#define ODF_SRC_RECLAIM_KSWAPD_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/reclaim/shrink.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace odf {
namespace reclaim {

class Kswapd {
 public:
  struct Stats {
    std::atomic<uint64_t> wakeups{0};
    std::atomic<uint64_t> balance_rounds{0};
    std::atomic<uint64_t> pages_freed{0};
  };

  explicit Kswapd(ShrinkContext ctx);
  ~Kswapd();

  Kswapd(const Kswapd&) = delete;
  Kswapd& operator=(const Kswapd&) = delete;

  void Start();
  void Stop();
  bool Running() const { return running_.load(std::memory_order_relaxed); }

  // Wakes the daemon (idempotent while a wake is already pending). Safe from any thread,
  // including inside an allocation's quota path — no locks beyond the daemon's own.
  void Wake();

  const Stats& stats() const { return stats_; }

 private:
  void Loop();
  void Balance();

  ShrinkContext ctx_;
  std::thread thread_;
  util::Mutex mu_;
  util::CondVar cv_;
  bool stop_ ODF_GUARDED_BY(mu_) = false;
  bool pending_ ODF_GUARDED_BY(mu_) = false;
  std::atomic<bool> running_{false};
  Stats stats_;
};

}  // namespace reclaim
}  // namespace odf

#endif  // ODF_SRC_RECLAIM_KSWAPD_H_
