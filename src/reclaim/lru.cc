#include "src/reclaim/lru.h"

#include <algorithm>

#include "src/debug/debug.h"
#include "src/debug/lockdep.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace odf {
namespace reclaim {

namespace {

// Shadow entries for slots that never refault (the page was unmapped instead) would
// otherwise accumulate forever; past this many the table is dropped wholesale. Losing old
// shadows only costs refault *detection*, never correctness.
constexpr size_t kMaxShadows = 1u << 18;

debug::LockClass g_lru_lock_class("PageLru::mu_");

}  // namespace

PageLru::PageLru() = default;
PageLru::~PageLru() = default;

void PageLru::InsertLocked(FrameId frame, bool active) {
  auto [it, inserted] = index_.try_emplace(frame);
  if (!inserted) {
    return;
  }
  std::list<FrameId>& list = active ? active_ : inactive_;
  list.push_front(frame);
  it->second.active = active;
  it->second.where = list.begin();
}

void PageLru::EraseLocked(FrameId frame) {
  auto it = index_.find(frame);
  if (it == index_.end()) {
    return;
  }
  (it->second.active ? active_ : inactive_).erase(it->second.where);
  index_.erase(it);
}

void PageLru::Insert(FrameId frame, bool active) {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  InsertLocked(frame, active);
}

void PageLru::Erase(FrameId frame) {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  EraseLocked(frame);
}

void PageLru::Activate(FrameId frame) {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  auto it = index_.find(frame);
  if (it == index_.end()) {
    return;
  }
  (it->second.active ? active_ : inactive_).erase(it->second.where);
  active_.push_front(frame);
  it->second.active = true;
  it->second.where = active_.begin();
}

size_t PageLru::TakeInactive(size_t max, std::vector<FrameId>* out) {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  size_t taken = 0;
  while (taken < max && !inactive_.empty()) {
    FrameId frame = inactive_.back();
    inactive_.pop_back();
    index_.erase(frame);
    out->push_back(frame);
    ++taken;
  }
  return taken;
}

size_t PageLru::TakeActive(size_t max, std::vector<FrameId>* out) {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  size_t taken = 0;
  while (taken < max && !active_.empty()) {
    FrameId frame = active_.back();
    active_.pop_back();
    index_.erase(frame);
    out->push_back(frame);
    ++taken;
  }
  return taken;
}

void PageLru::PutBack(FrameId frame, bool active) {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  InsertLocked(frame, active);
}

size_t PageLru::ActiveSize() const {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  return active_.size();
}

size_t PageLru::InactiveSize() const {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  return inactive_.size();
}

size_t PageLru::Size() const {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  return index_.size();
}

bool PageLru::Contains(FrameId frame) const {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  return index_.find(frame) != index_.end();
}

void PageLru::RecordEviction(uint64_t slot) {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  if (shadows_.size() >= kMaxShadows) {
    shadows_.clear();
  }
  shadows_[slot] = ++eviction_epoch_;
}

bool PageLru::NoteRefault(uint64_t slot) {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  auto it = shadows_.find(slot);
  if (it == shadows_.end()) {
    return false;
  }
  uint64_t distance = eviction_epoch_ - it->second;
  shadows_.erase(it);
  // The workingset test: fewer evictions since this page left than the LRU can hold means
  // the page would still have been resident with a perfect-LRU — it was evicted out of its
  // workingset. The floor keeps detection alive when the lists are nearly empty.
  uint64_t horizon = std::max<uint64_t>(index_.size(), 64);
  if (distance > horizon) {
    return false;
  }
  CountVm(VmCounter::k_pgrefault);
  ODF_TRACE(workingset_refault, 0, slot, distance);
  return true;
}

uint64_t PageLru::ShadowCount() const {
  debug::MutexGuard guard(mu_, g_lru_lock_class);
  return shadows_.size();
}

}  // namespace reclaim
}  // namespace odf
