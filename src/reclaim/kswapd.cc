#include "src/reclaim/kswapd.h"

#include "src/debug/debug.h"
#include "src/debug/mutation.h"
#include "src/reclaim/mm_gate.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace odf {
namespace reclaim {

Kswapd::Kswapd(ShrinkContext ctx) : ctx_(std::move(ctx)) {}

Kswapd::~Kswapd() { Stop(); }

void Kswapd::Start() {
  if (running_.load(std::memory_order_relaxed)) {
    return;
  }
  {
    util::MutexLock lock(mu_);
    stop_ = false;
    pending_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
}

void Kswapd::Stop() {
  if (!running_.load(std::memory_order_relaxed)) {
    return;
  }
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) {
    thread_.join();
  }
  running_.store(false, std::memory_order_relaxed);
}

void Kswapd::Wake() {
  {
    util::MutexLock lock(mu_);
    if (pending_ || stop_) {
      return;  // A wake is already queued (or we are shutting down): nothing to signal.
    }
    pending_ = true;
  }
  cv_.NotifyOne();
}

void Kswapd::Loop() {
  for (;;) {
    {
      // Explicit predicate loop: the analysis verifies `stop_`/`pending_` against mu_
      // here, which a predicate lambda passed into wait() would hide from it.
      util::MutexLock lock(mu_);
      while (!stop_ && !pending_) {
        cv_.Wait(mu_);
      }
      if (stop_) {
        return;
      }
      pending_ = false;
    }
    stats_.wakeups.fetch_add(1, std::memory_order_relaxed);
    CountVm(VmCounter::k_kswapd_wake);
    ODF_TRACE(kswapd_wake, 0);
    Balance();
    ODF_TRACE(kswapd_sleep, 0);
  }
}

void Kswapd::Balance() {
  FrameAllocator& allocator = *ctx_.allocator;
  // Balance until free frames recover to HIGH. One gate acquisition per round keeps
  // exclusive holds short: mutators (and the auto-verifier) interleave between rounds.
  for (int round = 0; round < 256; ++round) {
    uint64_t limit = allocator.frame_limit();
    if (limit == 0) {
      return;
    }
    FrameAllocator::Watermarks wm = allocator.watermarks();
    uint64_t free = allocator.FreeFrames();
    if (free >= wm.high) {
      return;
    }
    uint64_t freed;
    {
      debug::MutationScope mutation_scope;
      MmGate::ExclusiveScope gate;
      freed = ReclaimPages(ctx_, wm.high - free);
    }
    stats_.balance_rounds.fetch_add(1, std::memory_order_relaxed);
    stats_.pages_freed.fetch_add(freed, std::memory_order_relaxed);
    if (freed == 0) {
      return;  // Nothing reclaimable: sleep; direct reclaim / the OOM killer take over.
    }
  }
}

}  // namespace reclaim
}  // namespace odf
