#include "src/reclaim/mm_gate.h"

#include "src/debug/debug.h"
#include "src/pt/mm_locks.h"

namespace odf {
namespace reclaim {

thread_local int MmGate::tls_shared_depth_ = 0;
thread_local int MmGate::tls_exclusive_depth_ = 0;
thread_local util::BravoGate::ReadToken MmGate::tls_token_;

MmGate& MmGate::Global() {
  static MmGate gate;
  return gate;
}

bool MmGate::ThreadHoldsExclusive() { return tls_exclusive_depth_ > 0; }

int MmGate::ThreadSharedDepth() { return tls_shared_depth_; }

MmGate::SharedScope::SharedScope() {
  if (tls_exclusive_depth_ > 0) {
    // The evictor re-entering a mutator path (OOM kill -> Exit): exclusive subsumes
    // shared. Counted as a shared hold so the destructor stays symmetric, but the
    // gate itself is untouched — acquiring shared here would self-deadlock.
    ++tls_shared_depth_;
    return;
  }
  if (tls_shared_depth_++ == 0) {
    tls_token_ = Global().gate_.LockShared();
    if (tls_token_.wait_ns != 0) {
      NoteMmLockWait(/*kind=*/0, tls_token_.wait_ns);
    }
  }
}

MmGate::SharedScope::~SharedScope() {
  ODF_DCHECK(tls_shared_depth_ > 0) << "unbalanced MmGate::SharedScope";
  if (--tls_shared_depth_ == 0 && tls_exclusive_depth_ == 0) {
    Global().gate_.UnlockShared(tls_token_);
  }
}

MmGate::ExclusiveScope::ExclusiveScope() {
  if (tls_exclusive_depth_++ > 0) {
    return;  // Reentrant: already exclusive.
  }
  // Upgrade: drop this thread's shared holds so the exclusive acquisition cannot deadlock
  // against itself. Other threads' shared holds still gate us, which is the point.
  restored_shared_ = tls_shared_depth_;
  if (restored_shared_ > 0) {
    tls_shared_depth_ = 0;
    Global().gate_.UnlockShared(tls_token_);
  }
  uint64_t wait_ns = Global().gate_.LockExclusive();
  if (wait_ns > 1000) {
    NoteMmLockWait(/*kind=*/1, wait_ns);
  }
}

MmGate::ExclusiveScope::~ExclusiveScope() {
  ODF_DCHECK(tls_exclusive_depth_ > 0) << "unbalanced MmGate::ExclusiveScope";
  if (--tls_exclusive_depth_ > 0) {
    return;
  }
  Global().gate_.UnlockExclusive();
  if (restored_shared_ > 0) {
    // Restore the caller's shared holds after the upgrade.
    tls_token_ = Global().gate_.LockShared();
    tls_shared_depth_ = restored_shared_;
  }
}

}  // namespace reclaim
}  // namespace odf
