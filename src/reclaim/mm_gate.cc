#include "src/reclaim/mm_gate.h"

#include "src/debug/debug.h"

namespace odf {
namespace reclaim {

thread_local int MmGate::tls_shared_depth_ = 0;
thread_local int MmGate::tls_exclusive_depth_ = 0;

MmGate& MmGate::Global() {
  static MmGate gate;
  return gate;
}

bool MmGate::ThreadHoldsExclusive() { return tls_exclusive_depth_ > 0; }

int MmGate::ThreadSharedDepth() { return tls_shared_depth_; }

MmGate::SharedScope::SharedScope() {
  if (tls_exclusive_depth_ > 0) {
    // The evictor re-entering a mutator path (OOM kill -> Exit): exclusive subsumes
    // shared. Counted as a shared hold so the destructor stays symmetric, but the
    // shared_mutex itself is untouched — lock_shared here would self-deadlock.
    ++tls_shared_depth_;
    return;
  }
  if (tls_shared_depth_++ == 0) {
    // odf-lint: allow(naked-lock) — shared_mutex; lockdep's MutexGuard wraps std::mutex only.
    Global().mu_.lock_shared();
  }
}

MmGate::SharedScope::~SharedScope() {
  ODF_DCHECK(tls_shared_depth_ > 0) << "unbalanced MmGate::SharedScope";
  if (--tls_shared_depth_ == 0 && tls_exclusive_depth_ == 0) {
    Global().mu_.unlock_shared();
  }
}

MmGate::ExclusiveScope::ExclusiveScope() {
  if (tls_exclusive_depth_++ > 0) {
    return;  // Reentrant: already exclusive.
  }
  // Upgrade: drop this thread's shared holds so the exclusive acquisition cannot deadlock
  // against itself. Other threads' shared holds still gate us, which is the point.
  restored_shared_ = tls_shared_depth_;
  if (restored_shared_ > 0) {
    tls_shared_depth_ = 0;
    Global().mu_.unlock_shared();
  }
  // odf-lint: allow(naked-lock) — shared_mutex; lockdep's MutexGuard wraps std::mutex only.
  Global().mu_.lock();
}

MmGate::ExclusiveScope::~ExclusiveScope() {
  ODF_DCHECK(tls_exclusive_depth_ > 0) << "unbalanced MmGate::ExclusiveScope";
  if (--tls_exclusive_depth_ > 0) {
    return;
  }
  // odf-lint: allow(naked-lock) — shared_mutex release; MutexGuard wraps std::mutex only.
  Global().mu_.unlock();
  if (restored_shared_ > 0) {
    // odf-lint: allow(naked-lock) — restoring the caller's shared holds after the upgrade.
    Global().mu_.lock_shared();
    tls_shared_depth_ = restored_shared_;
  }
}

}  // namespace reclaim
}  // namespace odf
