// RmapRegistry — per-frame reverse mappings (the anon_vma / rmap walk analog).
//
// Every PRESENT leaf entry — a PTE, or a huge PMD entry — is registered here when it is
// installed and unregistered when it is cleared, by the fault handler, the COW break
// paths, the range operations, and classic fork's entry copies. Reclaim uses the registry
// to find and rewrite every mapping of a frame (try_to_unmap) and the verifier
// cross-checks it against a full page-table walk (docs/reclaim.md "Rmap invariants").
//
// Granularity under on-demand-fork (the whole point): a slot in a SHARED PTE table is ONE
// location here even though it maps the frame into every sharing process. The fan-out is
// carried by the table's pt_share_count, mirroring how a shared table holds page
// references on behalf of all sharers (paper §3.6). A consequence the shrinker relies on:
// for an anonymous frame, refcount == location count exactly when every reference is a
// mapping — the evictability test needs no process walk.
//
// Frames are keyed by the id EXACTLY as stored in the entry: tail frames of a split huge
// page register under their own ids (head+i), huge PMD leaves under the head with
// huge=true. Slot pointers stay valid while the table frame lives; Drop*TableReference
// removes locations before freeing a table.
#ifndef ODF_SRC_RECLAIM_RMAP_H_
#define ODF_SRC_RECLAIM_RMAP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/phys/frame_allocator.h"
#include "src/reclaim/mm_gate.h"
#include "src/util/thread_annotations.h"

namespace odf {
namespace reclaim {

class PageLru;

// One reverse mapping: the leaf slot holding a present entry that references the frame.
struct RmapLocation {
  uint64_t* slot = nullptr;
  bool huge = false;
};

class RmapRegistry {
 public:
  explicit RmapRegistry(FrameAllocator* allocator);
  ~RmapRegistry();

  RmapRegistry(const RmapRegistry&) = delete;
  RmapRegistry& operator=(const RmapRegistry&) = delete;

  // LRU driven from Add/Remove: a frame enters the inactive list with its first location
  // and leaves with its last (anonymous order-0 frames only).
  void AttachLru(PageLru* lru);
  PageLru* lru() const { return lru_; }
  FrameAllocator& allocator() const { return *allocator_; }

  // Registers one mapping of `frame` (the id exactly as stored in the entry). Consults
  // fault-injection site rmap_alloc: an injected failure marks the frame rmap-unstable —
  // sticky, and the shrinker refuses to evict it (the accounting stays exact; only
  // reclaimability is lost, which is what a failed rmap allocation costs the kernel too).
  void Add(FrameId frame, uint64_t* slot, bool huge = false);

  // Unregisters one mapping. The (frame, slot) pair must have been Added.
  void Remove(FrameId frame, uint64_t* slot, bool huge = false);

  // Unregisters every mapping of `frame` (eviction: the caller already rewrote the slots).
  void RemoveAll(FrameId frame);

  // Repoints one mapping (mremap's entry move).
  void Move(FrameId frame, uint64_t* from, uint64_t* to);

  size_t LocationCount(FrameId frame) const;
  bool Contains(FrameId frame, const uint64_t* slot, bool huge) const;
  bool IsUnstable(FrameId frame) const;

  // Copies `frame`'s locations into `out` (appended). A snapshot is only actionable while
  // the caller holds the MmGate exclusively — otherwise slots may be rewritten under it.
  void Snapshot(FrameId frame, std::vector<RmapLocation>* out) const
      ODF_REQUIRES(MmGate::Global());

  // Totals across all shards (verify / meminfo).
  uint64_t TotalLocations() const;
  uint64_t MappedFrames() const;

  // Calls fn(frame, slot, huge) for every location. Callers must hold the MmGate
  // exclusively (the verifier does); shard locks are taken one at a time.
  template <typename Fn>
  void ForEachLocation(Fn&& fn) const ODF_REQUIRES(MmGate::Global()) {
    for (size_t i = 0; i < kShards; ++i) {
      ForEachLocationInShard(i, [&](FrameId frame, const uint64_t* slot, bool huge) {
        fn(frame, slot, huge);
      });
    }
  }

 private:
  struct FrameEntry {
    // Mappings of one frame. Almost always a handful (sharers that COW-broke); linear
    // scans beat any indexed structure at this size.
    std::vector<RmapLocation> locations;
    bool unstable = false;
  };

  struct Shard;

  static constexpr size_t kShards = 64;

  Shard& ShardFor(FrameId frame) const;
  void ForEachLocationInShard(
      size_t shard_index,
      const std::function<void(FrameId, const uint64_t*, bool)>& fn) const;
  bool LruEligible(FrameId frame, bool huge) const;

  FrameAllocator* allocator_;
  PageLru* lru_ = nullptr;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace reclaim
}  // namespace odf

#endif  // ODF_SRC_RECLAIM_RMAP_H_
