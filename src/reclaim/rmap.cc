#include "src/reclaim/rmap.h"

#include <algorithm>

#include "src/debug/debug.h"
#include "src/debug/lockdep.h"
#include "src/fi/fault_inject.h"
#include "src/reclaim/lru.h"

namespace odf {
namespace reclaim {

namespace {

// All shards share one class, like lockdep keying lock instances by type. Shard locks are
// taken before the LRU lock (Add/Remove drive list membership while holding the shard).
debug::LockClass g_rmap_shard_lock_class("RmapRegistry::Shard::mu");

}  // namespace

struct RmapRegistry::Shard {
  mutable util::Mutex mu;
  std::unordered_map<FrameId, FrameEntry> frames ODF_GUARDED_BY(mu);
};

RmapRegistry::RmapRegistry(FrameAllocator* allocator)
    : allocator_(allocator), shards_(new Shard[kShards]) {}

RmapRegistry::~RmapRegistry() = default;

void RmapRegistry::AttachLru(PageLru* lru) { lru_ = lru; }

RmapRegistry::Shard& RmapRegistry::ShardFor(FrameId frame) const {
  return shards_[frame % kShards];
}

bool RmapRegistry::LruEligible(FrameId frame, bool huge) const {
  if (huge) {
    return false;  // Huge mappings are evicted only after a split (not implemented).
  }
  const PageMeta& meta = allocator_->GetMeta(frame);
  // Only order-0 private anonymous frames age on the LRU: file pages belong to the page
  // cache (refcount includes a cache reference, so the evictability test never passes for
  // them anyway) and compound frames cannot be freed one PTE at a time.
  return (meta.flags & kPageFlagAnon) != 0 && !meta.IsCompound() && !meta.IsPageTable();
}

void RmapRegistry::Add(FrameId frame, uint64_t* slot, bool huge) {
  // The allocation-failure analog: rmap metadata could not be allocated, so this frame's
  // reverse map is incomplete — mark it unreclaimable. Consulted outside the shard lock
  // (the injector takes its own).
  bool unstable = fi::ShouldInject(FiSite::k_rmap_alloc);
  Shard& shard = ShardFor(frame);
  debug::MutexGuard guard(shard.mu, g_rmap_shard_lock_class);
  FrameEntry& entry = shard.frames[frame];
  ODF_DCHECK(std::none_of(entry.locations.begin(), entry.locations.end(),
                          [&](const RmapLocation& l) { return l.slot == slot; }))
      << "duplicate rmap location for frame " << frame;
  entry.locations.push_back(RmapLocation{slot, huge});
  if (unstable) {
    entry.unstable = true;
  }
  if (entry.locations.size() == 1 && lru_ != nullptr && LruEligible(frame, huge)) {
    lru_->Insert(frame, /*active=*/false);
  }
}

void RmapRegistry::Remove(FrameId frame, uint64_t* slot, bool huge) {
  (void)huge;
  Shard& shard = ShardFor(frame);
  debug::MutexGuard guard(shard.mu, g_rmap_shard_lock_class);
  auto it = shard.frames.find(frame);
  ODF_DCHECK(it != shard.frames.end()) << "rmap remove of untracked frame " << frame;
  if (it == shard.frames.end()) {
    return;
  }
  std::vector<RmapLocation>& locations = it->second.locations;
  auto loc = std::find_if(locations.begin(), locations.end(),
                          [&](const RmapLocation& l) { return l.slot == slot; });
  ODF_DCHECK(loc != locations.end())
      << "rmap remove of unregistered slot for frame " << frame;
  if (loc == locations.end()) {
    return;
  }
  *loc = locations.back();
  locations.pop_back();
  if (locations.empty()) {
    shard.frames.erase(it);
    if (lru_ != nullptr) {
      lru_->Erase(frame);
    }
  }
}

void RmapRegistry::RemoveAll(FrameId frame) {
  Shard& shard = ShardFor(frame);
  debug::MutexGuard guard(shard.mu, g_rmap_shard_lock_class);
  if (shard.frames.erase(frame) > 0 && lru_ != nullptr) {
    lru_->Erase(frame);
  }
}

void RmapRegistry::Move(FrameId frame, uint64_t* from, uint64_t* to) {
  Shard& shard = ShardFor(frame);
  debug::MutexGuard guard(shard.mu, g_rmap_shard_lock_class);
  auto it = shard.frames.find(frame);
  ODF_DCHECK(it != shard.frames.end()) << "rmap move of untracked frame " << frame;
  if (it == shard.frames.end()) {
    return;
  }
  for (RmapLocation& location : it->second.locations) {
    if (location.slot == from) {
      location.slot = to;
      return;
    }
  }
  ODF_DCHECK(false) << "rmap move of unregistered slot for frame " << frame;
}

size_t RmapRegistry::LocationCount(FrameId frame) const {
  Shard& shard = ShardFor(frame);
  debug::MutexGuard guard(shard.mu, g_rmap_shard_lock_class);
  auto it = shard.frames.find(frame);
  return it == shard.frames.end() ? 0 : it->second.locations.size();
}

bool RmapRegistry::Contains(FrameId frame, const uint64_t* slot, bool huge) const {
  Shard& shard = ShardFor(frame);
  debug::MutexGuard guard(shard.mu, g_rmap_shard_lock_class);
  auto it = shard.frames.find(frame);
  if (it == shard.frames.end()) {
    return false;
  }
  return std::any_of(it->second.locations.begin(), it->second.locations.end(),
                     [&](const RmapLocation& l) { return l.slot == slot && l.huge == huge; });
}

bool RmapRegistry::IsUnstable(FrameId frame) const {
  Shard& shard = ShardFor(frame);
  debug::MutexGuard guard(shard.mu, g_rmap_shard_lock_class);
  auto it = shard.frames.find(frame);
  return it != shard.frames.end() && it->second.unstable;
}

void RmapRegistry::Snapshot(FrameId frame, std::vector<RmapLocation>* out) const {
  Shard& shard = ShardFor(frame);
  debug::MutexGuard guard(shard.mu, g_rmap_shard_lock_class);
  auto it = shard.frames.find(frame);
  if (it == shard.frames.end()) {
    return;
  }
  out->insert(out->end(), it->second.locations.begin(), it->second.locations.end());
}

uint64_t RmapRegistry::TotalLocations() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kShards; ++i) {
    debug::MutexGuard guard(shards_[i].mu, g_rmap_shard_lock_class);
    for (const auto& [frame, entry] : shards_[i].frames) {
      total += entry.locations.size();
    }
  }
  return total;
}

uint64_t RmapRegistry::MappedFrames() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kShards; ++i) {
    debug::MutexGuard guard(shards_[i].mu, g_rmap_shard_lock_class);
    total += shards_[i].frames.size();
  }
  return total;
}

void RmapRegistry::ForEachLocationInShard(
    size_t shard_index,
    const std::function<void(FrameId, const uint64_t*, bool)>& fn) const {
  Shard& shard = shards_[shard_index];
  debug::MutexGuard guard(shard.mu, g_rmap_shard_lock_class);
  for (const auto& [frame, entry] : shard.frames) {
    for (const RmapLocation& location : entry.locations) {
      fn(frame, location.slot, location.huge);
    }
  }
}

}  // namespace reclaim
}  // namespace odf
