// PageLru — active/inactive page aging lists plus workingset (refault) shadows.
//
// The LRU tracks order-0 anonymous frames that are candidates for eviction. Frames enter
// the INACTIVE list when their first reverse mapping is registered (RmapRegistry::Add) and
// leave when the last mapping is removed. The shrinker (shrink.h) pops candidates from the
// inactive tail, gives referenced pages a second chance by re-activating them, and ages
// the active tail back to inactive when the inactive list runs short — the kswapd
// active/inactive balancing loop in miniature.
//
// Workingset detection mirrors the kernel's shadow entries: every eviction stamps the swap
// slot with the current eviction epoch. When the slot refaults, the distance (evictions
// since) is compared to the LRU size; a "recent" refault means the page was evicted while
// still in its workingset, so it re-enters the ACTIVE list and pgrefault is counted.
//
// Thread-safety: all operations take the internal mutex (a leaf lock; RmapRegistry shard
// locks may be held while calling in — see docs/debugging.md). List order is only
// meaningful to the shrinker, which runs under the MmGate exclusively.
#ifndef ODF_SRC_RECLAIM_LRU_H_
#define ODF_SRC_RECLAIM_LRU_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/phys/page_meta.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace odf {
namespace reclaim {

class PageLru {
 public:
  PageLru();
  ~PageLru();

  PageLru(const PageLru&) = delete;
  PageLru& operator=(const PageLru&) = delete;

  // Inserts at the head of the chosen list. No-op when already tracked.
  void Insert(FrameId frame, bool active);

  // Drops the frame from whichever list holds it. No-op when absent.
  void Erase(FrameId frame);

  // Moves the frame to the active head (referenced / refaulted). No-op when absent.
  void Activate(FrameId frame);

  // Pops up to `max` frames off the inactive tail (coldest first) into `out`.
  // The frames are detached; callers re-insert survivors with PutBack.
  size_t TakeInactive(size_t max, std::vector<FrameId>* out);

  // Pops up to `max` frames off the active tail (aging scan).
  size_t TakeActive(size_t max, std::vector<FrameId>* out);

  // Re-inserts a detached frame at the head of the chosen list.
  void PutBack(FrameId frame, bool active);

  size_t ActiveSize() const;
  size_t InactiveSize() const;
  size_t Size() const;

  // True while the frame sits on either list. Used by the verifier's quarantine bijection
  // (a hwpoisoned frame must never be LRU-resident) and by tests.
  bool Contains(FrameId frame) const;

  // --- Workingset shadows ---

  // Stamps `slot` with the current eviction epoch (called once per evicted page).
  void RecordEviction(uint64_t slot);

  // Consumes the shadow for `slot` on swap-in. Returns true when the refault distance is
  // within the current LRU size — the page was evicted out of its workingset and should
  // re-enter the active list. Counts pgrefault and emits workingset_refault itself.
  bool NoteRefault(uint64_t slot);

  uint64_t ShadowCount() const;

 private:
  struct Node {
    bool active = false;
    std::list<FrameId>::iterator where;
  };

  void EraseLocked(FrameId frame) ODF_REQUIRES(mu_);
  void InsertLocked(FrameId frame, bool active) ODF_REQUIRES(mu_);

  mutable util::Mutex mu_;
  // Head = most recently activated.
  std::list<FrameId> active_ ODF_GUARDED_BY(mu_);
  // Head = most recently deactivated; tail = eviction next.
  std::list<FrameId> inactive_ ODF_GUARDED_BY(mu_);
  std::unordered_map<FrameId, Node> index_ ODF_GUARDED_BY(mu_);
  // swap slot -> eviction epoch
  std::unordered_map<uint64_t, uint64_t> shadows_ ODF_GUARDED_BY(mu_);
  uint64_t eviction_epoch_ ODF_GUARDED_BY(mu_) = 0;
};

}  // namespace reclaim
}  // namespace odf

#endif  // ODF_SRC_RECLAIM_LRU_H_
