// Kernel facade: owns the physical frame pool, the filesystem, and the process table, and
// dispatches fork / exit / wait. This is the library's main entry point.
//
// Typical use:
//   odf::Kernel kernel;
//   odf::Process& init = kernel.CreateProcess();
//   odf::Vaddr buf = init.Mmap(1 << 30, odf::kProtRead | odf::kProtWrite);
//   ... fill memory ...
//   odf::Process& child = kernel.Fork(init, odf::ForkMode::kOnDemand);
//   ... child and parent copy-on-write as they go ...
//   kernel.Exit(child, 0); kernel.Wait(init);
#ifndef ODF_SRC_PROC_KERNEL_H_
#define ODF_SRC_PROC_KERNEL_H_

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "src/core/fork.h"
#include "src/fs/mem_fs.h"
#include "src/mf/memory_failure.h"
#include "src/mm/swap.h"
#include "src/phys/frame_allocator.h"
#include "src/proc/process.h"
#include "src/reclaim/kswapd.h"
#include "src/reclaim/lru.h"
#include "src/reclaim/rmap.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace odf {

class Kernel {
 public:
  Kernel();
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Creates a fresh process with an empty address space (execve-from-nothing analog).
  Process& CreateProcess();

  // Forks `parent` with an explicit mechanism. Thread-safe with respect to other processes;
  // the caller must not mutate `parent` concurrently (one driver thread per process).
  // Aborts on mid-fork ENOMEM (the NOFAIL contract); use TryFork for recoverable failure.
  Process& Fork(Process& parent, ForkMode mode, ForkProfile* profile = nullptr);

  // Forks using the parent's configured fork mode (the procfs knob, §4 "Flexibility").
  Process& Fork(Process& parent) { return Fork(parent, parent.fork_mode()); }

  // Transactional fork: like Fork, but a mid-copy allocation failure (ENOMEM after reclaim,
  // or injected via src/fi) rolls the child back completely — every page reference,
  // shared-table install, and table frame the half-built child held is released — and
  // returns nullptr. The parent is untouched (its write-protected entries are benign; the
  // fault path restores them lazily) and no process-table entry is created. ENOMEM-safe in
  // the sense of docs/robustness.md: fork either fully succeeds or has no effect.
  [[nodiscard]] Process* TryFork(Process& parent, ForkMode mode,
                                 ForkProfile* profile = nullptr);

  // Terminates the process: tears down its address space immediately (dropping page and
  // shared-table references) and leaves a zombie for the parent to reap. Takes the
  // victim's address-space gate exclusively, so it serializes against that process's
  // in-flight faults and mapping calls from other threads.
  void Exit(Process& process, int code = 0);

  // Reaps one zombie child of `parent`; returns its pid or -1 when there is none. (The
  // simulator has no blocking: workloads drive children to completion before waiting.)
  Pid Wait(Process& parent);

  Process* FindProcess(Pid pid);

  // Global default fork mode applied to newly created processes. Out-of-line: it is a
  // recordable schedule entry (replay::OpScope).
  void set_default_fork_mode(ForkMode mode);
  ForkMode default_fork_mode() const { return default_fork_mode_; }

  FrameAllocator& allocator() { return allocator_; }
  MemFilesystem& fs() { return fs_; }
  SwapSpace& swap_space() { return swap_; }
  ForkCounters& fork_counters() { return fork_counters_; }

  // --- Memory pressure (paper §4 "Robustness") ---

  // Caps simulated RAM at `frames` 4 KiB frames and arms the reclaimer: allocations beyond
  // the limit trigger clock reclaim (swap-out of cold pages) and, as a last resort, the OOM
  // killer. 0 removes the limit.
  void SetMemoryLimitFrames(uint64_t frames);

  // Direct reclaim: shrinks the LRU lists via reverse-map unmapping (src/reclaim); falls
  // back to killing the largest process when nothing is reclaimable. Returns frames freed
  // (0 => hard OOM). Runs as the allocator's reclaim callback from any allocating thread.
  uint64_t ReclaimMemory(uint64_t want);

  // Starts/stops the background reclaim daemon (docs/reclaim.md). Not started by
  // SetMemoryLimitFrames: tests that want deterministic synchronous reclaim leave it off.
  void StartKswapd();
  void StopKswapd();

  reclaim::RmapRegistry& rmap() { return rmap_; }
  reclaim::PageLru& lru() { return lru_; }
  reclaim::Kswapd* kswapd() { return kswapd_.get(); }

  // --- Memory failure (src/mf, docs/memory-failure.md) ---

  // Hard offline: an uncorrectable memory error was reported on `frame` (the
  // memory_failure() / MCE path). Every mapping is replaced with a poison marker — ONE
  // rewrite per shared-table slot — clean page-cache contents are relocated, and the frame
  // is quarantined forever. Recorded as a replay op; runs under the exclusive MmGate.
  // Returns kNotSupported when built with -DODF_MEMORY_FAILURE=OFF.
  mf::MfResult MemoryFailure(FrameId frame);

  // Soft offline: predictively migrate `frame`'s contents to a fresh frame (zero data
  // loss) and quarantine the failing one. Transactional — kFailedBusy leaves nothing
  // mutated. Recorded as a replay op; runs under the exclusive MmGate.
  mf::MfResult SoftOfflinePage(FrameId frame);

  uint64_t oom_kills() const { return oom_kills_.load(std::memory_order_relaxed); }

  // RAII marker: the process currently executing a memory operation on this thread. The
  // OOM killer never selects it (a real kernel SIGKILLs the victim; this simulator's
  // "victim" would otherwise keep running into its own torn-down address space).
  class ActiveProcessScope {
   public:
    explicit ActiveProcessScope(Process* process) : previous_(active_process_) {
      active_process_ = process;
    }
    ActiveProcessScope(const ActiveProcessScope&) = delete;
    ActiveProcessScope& operator=(const ActiveProcessScope&) = delete;
    ~ActiveProcessScope() { active_process_ = previous_; }

   private:
    Process* previous_;
  };

  size_t ProcessCount() const;
  size_t RunningProcessCount() const;

  // Snapshot of the currently running processes, taken under the process-table lock and
  // returned by shared_ptr so every entry stays alive (and safely inspectable) even if a
  // concurrent Wait() reaps it or a fork inserts siblings while the caller iterates.
  // Safe to call from any thread at any time.
  std::vector<std::shared_ptr<Process>> RunningProcesses();

 private:
  static thread_local Process* active_process_;

  // Shared Exit body. A normal exit (`oom` false) takes the victim's address-space gate
  // exclusively — the caller may race the victim's own driver thread. The OOM killer
  // passes `oom` true and SKIPS the gate: its victim is by construction not mid-operation
  // (ActiveProcessScope excludes the allocating process), and the killer may already sit
  // inside another process's fault path, where acquiring a second AS gate would invert
  // the documented lock order.
  void ExitInternal(Process& process, int code, bool oom);

  // Builds the ShrinkContext handed to kswapd and direct reclaim (flush-all-TLBs closure).
  reclaim::ShrinkContext MakeShrinkContext();

  // Builds the context handed to the src/mf offline paths (adds the address-space list
  // the huge-split pass walks).
  mf::MfContext MakeMfContext();

  FrameAllocator allocator_;
  SwapSpace swap_;
  MemFilesystem fs_;
  // Reclaim state is declared before processes_ so it outlives process teardown (address
  // spaces unregister their rmap entries as they die).
  reclaim::RmapRegistry rmap_;
  reclaim::PageLru lru_;
  std::unique_ptr<reclaim::Kswapd> kswapd_;
  // Atomic: the OOM killer can run from any thread's allocation (reclaim callback) while
  // another thread reads the count.
  std::atomic<uint64_t> oom_kills_{0};
  // Protects ONLY the pid -> Process map (and next_pid_). Address-space state is guarded
  // by each AS's own MmLockTable; nothing memory-management-sized ever runs under this.
  mutable util::Mutex table_mutex_;
  // shared_ptr so RunningProcesses() snapshots keep their entries alive against Wait().
  std::map<Pid, std::shared_ptr<Process>> processes_ ODF_GUARDED_BY(table_mutex_);
  Pid next_pid_ ODF_GUARDED_BY(table_mutex_) = 1;
  ForkMode default_fork_mode_ = ForkMode::kClassic;
  ForkCounters fork_counters_;
};

}  // namespace odf

#endif  // ODF_SRC_PROC_KERNEL_H_
