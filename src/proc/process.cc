#include "src/proc/process.h"

#include "src/proc/kernel.h"

#include <algorithm>
#include <cstring>

#include "src/debug/verify.h"
#include "src/fi/fault_inject.h"
#include "src/pt/mm_locks.h"
#include "src/reclaim/mm_gate.h"
#include "src/replay/recorder.h"
#include "src/util/log.h"

namespace odf {

Process::Process(Kernel* kernel, Pid pid, Pid parent, std::unique_ptr<AddressSpace> as)
    : kernel_(kernel), pid_(pid), parent_pid_(parent), as_(std::move(as)) {
  as_->set_owner_pid(pid);
}

bool Process::AccessMemory(Vaddr va, std::byte* buffer, uint64_t length, AccessType access,
                           bool set_memory, std::byte memset_value) {
  ODF_CHECK(state_ == ProcessState::kRunning) << "memory access on exited process " << pid_;
  debug::MutationScope mutation;  // Faults allocate frames and rewrite page tables.
  Kernel::ActiveProcessScope immune(this);  // OOM mid-access must pick another victim.
  AddressSpace& as = *as_;
  FrameAllocator& allocator = as.allocator();
  MmLockTable& locks = as.locks();
  const uint64_t as_id = locks.as_id();
  const bool want_write = access == AccessType::kWrite;
  uint64_t done = 0;
  while (done < length) {
    Vaddr current = va + done;
    uint64_t in_page = current & (kPageSize - 1);
    uint64_t chunk = std::min<uint64_t>(length - done, kPageSize - in_page);
    const uint64_t vpn = current >> kPageShift;

    // Copies one page-chunk to/from `frame`. Always runs with the frame kept alive (a
    // refcount pin on the fast paths, the shard+gate locks on the slow path) and the
    // MmGate held shared (excludes the evictor mid-copy).
    auto copy_chunk = [&](FrameId frame) {
      if (want_write) {
        std::byte* dest = allocator.MaterializeData(frame) + in_page;
        if (set_memory) {
          std::memset(dest, static_cast<int>(memset_value), chunk);
        } else {
          std::memcpy(dest, buffer + done, chunk);
        }
      } else if (buffer != nullptr) {
        const std::byte* src = allocator.PeekData(frame);
        if (src == nullptr) {
          std::memset(buffer + done, 0, chunk);
        } else {
          std::memcpy(buffer + done, src + in_page, chunk);
        }
      }
    };

#if ODF_MEMORY_FAILURE_COMPILED
    // The injected machine check (fi site mf_ecc): the "hardware" reports an uncorrectable
    // ECC error on the very frame this access resolved to. Consulted exactly once per
    // resolved page on EVERY path (fast, lock-free, slow), so the recorded decision stream
    // is identical no matter which path a replay happens to take. MemoryFailure upgrades
    // any shared gate hold to exclusive for the containment work (mm_gate.h), and the
    // access that consumed the poison is the one that fails — BUS_MCEERR_AR delivery.
    auto ecc_trips = [&](FrameId frame) {
      if (!fi::ShouldInject(FiSite::k_mf_ecc)) {
        return false;
      }
      kernel_->MemoryFailure(frame);
      last_fault_result_ = FaultResult::kHwPoison;
      return true;
    };
#else
    auto ecc_trips = [&](FrameId) { return false; };
#endif

    bool page_done = false;

    // L0 — per-thread translation cache (mm_locks.h). Entirely lock-free: tag probe, pin
    // the cached frame's refcount, recheck the covering shard generation. Writes hit only
    // entries that a WRITE inserted (dirty bit already set at insert time).
    TransCacheEntry& cached = TranslationCache::SlotFor(as_id, vpn);
    if (cached.as_id == as_id && cached.vpn == vpn && (!want_write || cached.write_ok) &&
        cached.gen == locks.ShardGen(current)) {
      reclaim::MmGate::SharedScope gate;
      if (allocator.TryGetRef(cached.pin)) {
        // Pin-then-recheck: the pin is speculative (the frame may have been freed and
        // reused since the probe), and the generation recheck is what rejects that — any
        // mutator that unmapped this page bumped the shard BEFORE dropping the frame.
        if (cached.gen == locks.ShardGen(current)) {
          FrameId frame = cached.frame;
          FrameId pin = cached.pin;
          as.tlb().RecordHit();
          if (ecc_trips(frame)) {
            allocator.DecRef(pin);
            return false;
          }
          copy_chunk(frame);
          allocator.DecRef(pin);
          page_done = true;
        } else {
          allocator.DecRef(cached.pin);
        }
      }
    }
    if (page_done) {
      done += chunk;
      continue;
    }

    // L1 — lock-free read-side walk (reads only; writes need A/D maintenance and COW
    // checks). Generation first, then the walk under a PtEpoch guard (retired tables on
    // the path are still backed memory), then pin + generation recheck outside the guard.
    if (!want_write) {
      uint64_t g0 = locks.ShardGen(current);
      Translation t;
      bool walked = false;
      {
        PtEpoch::ReadGuard guard;
        if (guard.ok()) {
          t = as.walker().TranslateLockFree(as.pgd(), current);
          walked = true;
        }
      }
      if (walked && t.status == TranslateStatus::kOk) {
        // Pin target: the PMD-entry head for huge mappings (its tails carry no refcount);
        // the leaf frame itself for 4 KiB. A split-compound tail mapped as a 4 KiB PTE
        // has refcount 0 — the pin fails and the slow path (which may resolve the head
        // under locks) serves it instead.
        FrameId pin =
            t.huge ? t.frame - static_cast<FrameId>((current >> kPageShift) &
                                                    ((1ULL << kHugePageOrder) - 1))
                   : t.frame;
        reclaim::MmGate::SharedScope gate;
        if (allocator.TryGetRef(pin)) {
          if (locks.ShardGen(current) == g0) {
            as.tlb().RecordHit();
            if (ecc_trips(t.frame)) {
              allocator.DecRef(pin);
              return false;
            }
            copy_chunk(t.frame);
            allocator.DecRef(pin);
            cached = TransCacheEntry{as_id, vpn, g0, t.frame, pin, /*write_ok=*/false};
            page_done = true;
          } else {
            allocator.DecRef(pin);
          }
        }
      }
    }
    if (page_done) {
      done += chunk;
      continue;
    }

    // L2 — locked slow path: AS gate shared (excludes layout mutators and fork), exactly
    // one 2 MiB-shard mutex (serializes faults on this range only — disjoint-range faults
    // proceed in parallel), MmGate shared (excludes the evictor). Lock order per
    // docs/debugging.md: AS gate -> shard -> MmGate.
    {
      MmLockTable::ReadScope rs(locks);
      MmLockTable::ShardScope shard(locks, current);
      reclaim::MmGate::SharedScope gate;
      FrameId frame = kInvalidFrame;
      if (!as.tlb().Lookup(current, want_write, &frame)) {
        Translation t = as.walker().Translate(as.pgd(), current, access);
        if (t.status == TranslateStatus::kOk) {
          frame = t.frame;
          as.tlb().Insert(current, frame, want_write);
        } else {
          FaultResult result = HandleFault(as, current, access, &frame);
          if (result != FaultResult::kHandled) {
            last_fault_result_ = result;
            return false;
          }
        }
      }
      if (ecc_trips(frame)) {
        return false;
      }
      copy_chunk(frame);
      // Refill the per-thread cache. The generation is read AFTER the fault resolved:
      // under the shard mutex no other thread can bump this shard (range ops hold the AS
      // gate exclusively, the evictor holds the MmGate exclusively), so the value is
      // stable and covers every invalidation the fault itself performed.
      FrameId pin = ResolveCompoundHead(allocator.GetMeta(frame), frame);
      cached = TransCacheEntry{as_id,         vpn, locks.ShardGen(current),
                               frame,         pin, want_write};
    }
    done += chunk;
  }
  last_fault_result_ = FaultResult::kHandled;
  return true;
}

bool Process::WriteMemory(Vaddr va, std::span<const std::byte> data) {
  replay::OpScope op(OpKind::k_write, pid_);
  op.Arg(va).Arg(data.size()).Payload(data);
  // The buffer is only read on the write path; the const_cast never results in mutation.
  bool ok = AccessMemory(va, const_cast<std::byte*>(data.data()), data.size(),
                         AccessType::kWrite, /*set_memory=*/false, std::byte{0});
  op.Status(static_cast<uint64_t>(last_fault_result())).Result(ok ? 1 : 0);
  return ok;
}

bool Process::ReadMemory(Vaddr va, std::span<std::byte> out) {
  replay::OpScope op(OpKind::k_read, pid_);
  op.Arg(va).Arg(out.size());
  bool ok = AccessMemory(va, out.data(), out.size(), AccessType::kRead, /*set_memory=*/false,
                         std::byte{0});
  op.Status(static_cast<uint64_t>(last_fault_result()));
  if (op.active()) {
    // The recorded outcome of a read is a digest of the bytes it returned: replay verifies
    // the replayed kernel serves the same data, not just the same verdict.
    op.Result(ok ? replay::Fnv1aBytes(out.data(), out.size()) : 0);
  }
  return ok;
}

bool Process::MemsetMemory(Vaddr va, std::byte value, uint64_t length) {
  replay::OpScope op(OpKind::k_memset, pid_);
  op.Arg(va).Arg(static_cast<uint64_t>(value)).Arg(length);
  bool ok = AccessMemory(va, nullptr, length, AccessType::kWrite, /*set_memory=*/true, value);
  op.Status(static_cast<uint64_t>(last_fault_result())).Result(ok ? 1 : 0);
  return ok;
}

void Process::set_fork_mode(ForkMode mode) {
  replay::OpScope op(OpKind::k_set_fork_mode, pid_);
  op.Arg(static_cast<uint64_t>(mode));
  fork_mode_ = mode;
}

uint64_t Process::LoadU64(Vaddr va) {
  uint64_t value = 0;
  ODF_CHECK(ReadMemory(va, std::as_writable_bytes(std::span(&value, 1))))
      << "SEGV reading u64 at " << va;
  return value;
}

void Process::StoreU64(Vaddr va, uint64_t value) {
  ODF_CHECK(WriteMemory(va, std::as_bytes(std::span(&value, 1))))
      << "SEGV writing u64 at " << va;
}

uint32_t Process::LoadU32(Vaddr va) {
  uint32_t value = 0;
  ODF_CHECK(ReadMemory(va, std::as_writable_bytes(std::span(&value, 1))))
      << "SEGV reading u32 at " << va;
  return value;
}

void Process::StoreU32(Vaddr va, uint32_t value) {
  ODF_CHECK(WriteMemory(va, std::as_bytes(std::span(&value, 1))))
      << "SEGV writing u32 at " << va;
}

std::string Process::ReadString(Vaddr va, uint64_t max_length) {
  std::string out;
  out.reserve(max_length);
  for (uint64_t i = 0; i < max_length; ++i) {
    char c = 0;
    if (!ReadMemory(va + i, std::as_writable_bytes(std::span(&c, 1)))) {
      break;
    }
    if (c == '\0') {
      break;
    }
    out.push_back(c);
  }
  return out;
}

Vaddr Process::Mmap(uint64_t length, uint32_t prot, bool huge) {
  replay::OpScope op(OpKind::k_mmap, pid_);
  op.Arg(length).Arg(prot).Arg(huge ? 1 : 0);
  // Gating (AS-gate exclusive + MmGate shared) lives inside AddressSpace now.
  debug::MutationScope mutation;
  Vaddr va = as_->MapAnonymous(length, prot, huge);
  op.Result(va);
  return va;
}

void Process::Munmap(Vaddr start, uint64_t length) {
  replay::OpScope op(OpKind::k_munmap, pid_);
  op.Arg(start).Arg(length);
  {
    debug::MutationScope mutation;
    as_->Unmap(start, length);
  }
  // Zap is where stale-PTE and table-refcount bugs surface; verify the whole kernel after
  // every top-level unmap in debug-vm builds.
  debug::AutoVerifyKernel(*kernel_, "zap");
}

Vaddr Process::Mremap(Vaddr old_start, uint64_t old_length, uint64_t new_length) {
  replay::OpScope op(OpKind::k_mremap, pid_);
  op.Arg(old_start).Arg(old_length).Arg(new_length);
  debug::MutationScope mutation;
  Vaddr va = as_->Remap(old_start, old_length, new_length);
  op.Result(va);
  return va;
}

void Process::MadviseDontNeed(Vaddr start, uint64_t length) {
  replay::OpScope op(OpKind::k_madvise_dontneed, pid_);
  op.Arg(start).Arg(length);
  debug::MutationScope mutation;
  as_->AdviseDontNeed(start, length);
}

bool Process::TouchRange(Vaddr va, uint64_t length, AccessType access) {
  replay::OpScope op(OpKind::k_touch, pid_);
  op.Arg(va).Arg(length).Arg(static_cast<uint64_t>(access));
  for (Vaddr current = PageAlignDown(va); current < va + length; current += kPageSize) {
    std::byte scratch{1};
    bool ok = access == AccessType::kWrite
                  ? WriteMemory(current, std::span(&scratch, 1))
                  : ReadMemory(current, std::span(&scratch, 1));
    if (!ok) {
      op.Status(static_cast<uint64_t>(last_fault_result()));
      return false;
    }
  }
  op.Result(1);
  return true;
}

}  // namespace odf
