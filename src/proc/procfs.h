// procfs-style memory introspection: /proc/<pid>/smaps and /proc/<pid>/status analogs.
//
// Besides being a debugging aid, this module makes the paper's *efficiency* claim
// measurable: on-demand-fork defers page-table construction, so a freshly forked child's
// page-table footprint is tiny, and pages reached through shared tables are accounted
// proportionally (PSS) across both the page refcount and the table share count.
#ifndef ODF_SRC_PROC_PROCFS_H_
#define ODF_SRC_PROC_PROCFS_H_

#include <string>
#include <vector>

#include "src/proc/process.h"

namespace odf {

class Kernel;

struct VmaReport {
  Vaddr start = 0;
  Vaddr end = 0;
  uint32_t prot = 0;
  VmaKind kind = VmaKind::kAnonPrivate;
  bool huge = false;
  uint64_t present_pages = 0;   // Resident 4 KiB pages (huge mappings count 512 each).
  uint64_t swapped_pages = 0;   // Pages currently on the swap device.
  uint64_t private_pages = 0;   // Present pages mapped only by this process.
  uint64_t shared_pages = 0;    // Present pages visible to other processes too.
  double pss_pages = 0;         // Proportional set size, in pages.
};

struct ProcessMemoryReport {
  Pid pid = 0;
  uint64_t vss_bytes = 0;   // Mapped virtual memory.
  uint64_t rss_bytes = 0;   // Resident (present) memory.
  uint64_t pss_bytes = 0;   // Proportional share of resident memory.
  uint64_t swap_bytes = 0;
  uint64_t upper_tables = 0;          // PGD/PUD/PMD tables owned by this process.
  uint64_t dedicated_pte_tables = 0;  // Last-level tables only this process references.
  uint64_t shared_pte_tables = 0;     // Last-level tables shared via on-demand-fork.
  uint64_t shared_pmd_tables = 0;     // PMD tables shared via kOnDemandHuge (§4 extension).
  uint64_t page_table_bytes = 0;      // Dedicated tables + proportional share of shared.
  std::vector<VmaReport> vmas;
};

// Walks the process's paging structure and VMAs to build the report. The process must not
// be mutated concurrently (same rule as every other per-process operation).
ProcessMemoryReport BuildMemoryReport(Process& process);

// Renders the report in a /proc/<pid>/smaps-like plain-text format.
std::string FormatSmaps(const ProcessMemoryReport& report);

// One-line /proc/<pid>/status-like summary (VmSize/VmRSS/Pss/VmSwap/page tables).
std::string FormatStatusLine(const ProcessMemoryReport& report);

// /proc/vmstat analog: "name value" per line. Combines the global odf::trace vmstat event
// counters (fault kinds, table COWs, fork work, swap traffic, TLB flushes, ...) with the
// kernel's live gauges (frame pool, swap device, process table). See docs/observability.md
// for the counter catalog.
std::string FormatVmstat(Kernel& kernel);

// /proc/meminfo analog: pool totals, LRU list sizes, page-table footprint, swap usage,
// and the reclaim watermarks (docs/reclaim.md). Values in kB like the real file.
std::string FormatMeminfo(Kernel& kernel);

// /sys/kernel/debug/failslab analog (docs/robustness.md): read the current fault-injection
// configuration — seed, per-site arming, call/injection counts.
std::string FormatFaultInject();

// Write side of the knob: applies a whitespace-separated spec like
// "seed=42 site=frame_alloc nth=3" or "site=swap_in probability=0.01 times=5" or "reset".
// Returns true on success; on parse error returns false and fills *error.
bool ConfigureFaultInject(const std::string& spec, std::string* error);

// /sys/kernel/debug/replay analog (docs/replay.md): the flight recorder's status — mode,
// retained bytes, per-thread stream accounting, drop counts.
std::string FormatReplay();

// Write side of the recorder knob: whitespace-separated commands like
// "start mode=blackbox budget=4194304" or "stop" or "dump=/tmp/crash.odflog".
// Returns true on success; on parse error returns false and fills *error.
bool ConfigureReplay(const std::string& spec, std::string* error);

// /sys/kernel/debug/debug_vm analog (docs/debugging.md): whether the odf::debug invariant
// checkers are compiled in, plus check/poison/lockdep/verifier counters. All lines render
// in every build; the counters just stay zero with -DODF_DEBUG_VM=OFF.
std::string FormatDebugVm();

// /proc/../memory-failure analog (docs/memory-failure.md): whether src/mf is compiled in,
// the offline/migration/SIGBUS event counters, and the allocator's poison/quarantine
// gauges. All lines render in every build; with -DODF_MEMORY_FAILURE=OFF the counters
// simply stay zero.
std::string FormatMemoryFailure(Kernel& kernel);

}  // namespace odf

#endif  // ODF_SRC_PROC_PROCFS_H_
