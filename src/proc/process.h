// Process: a simulated task with its own address space and a memory-access API that drives
// the software MMU (TLB -> walker -> fault handler), which is how application workloads
// exercise the fault paths the paper modifies.
#ifndef ODF_SRC_PROC_PROCESS_H_
#define ODF_SRC_PROC_PROCESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/fork.h"
#include "src/mm/address_space.h"
#include "src/mm/fault.h"

namespace odf {

using Pid = int32_t;

enum class ProcessState {
  kRunning,
  kZombie,  // Exited; address space released; waiting to be reaped.
};

class Kernel;

class Process {
 public:
  Process(Kernel* kernel, Pid pid, Pid parent, std::unique_ptr<AddressSpace> as);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Pid pid() const { return pid_; }
  Pid parent_pid() const { return parent_pid_; }
  ProcessState state() const { return state_; }
  int exit_code() const { return exit_code_; }
  AddressSpace& address_space() { return *as_; }
  Kernel& kernel() { return *kernel_; }

  // Per-process fork-mode configuration — the procfs knob from §4 ("Flexibility"): lets an
  // unmodified application be switched to on-demand-fork without code changes.
  ForkMode fork_mode() const { return fork_mode_; }
  // Out-of-line: it is a recordable schedule entry (replay::OpScope).
  void set_fork_mode(ForkMode mode);

  // --- Memory access through the software MMU. Returns false when the access cannot be
  // completed; last_fault_result() distinguishes SEGV (illegal access) from the recoverable
  // verdicts (kOom / kSwapIoError / kRetryExhausted — retry after freeing memory or
  // disarming injection; see docs/robustness.md). ---
  bool WriteMemory(Vaddr va, std::span<const std::byte> data);
  bool ReadMemory(Vaddr va, std::span<std::byte> out);
  bool MemsetMemory(Vaddr va, std::byte value, uint64_t length);

  // Typed helpers (fatal on SEGV: used by workloads whose accesses must be legal).
  uint64_t LoadU64(Vaddr va);
  void StoreU64(Vaddr va, uint64_t value);
  uint32_t LoadU32(Vaddr va);
  void StoreU32(Vaddr va, uint32_t value);
  std::string ReadString(Vaddr va, uint64_t max_length);

  // Touches one byte per page in [va, va+length) with the given access, without transferring
  // data. Benchmarks use it to reproduce paper access patterns cheaply.
  bool TouchRange(Vaddr va, uint64_t length, AccessType access);

  // Mapping syscalls forwarded to the address space. Out-of-line (process.cc) because the
  // mutating ones run inside a debug::MutationScope, and Munmap — the zap path — triggers
  // the post-zap kernel verifier in debug-vm builds.
  Vaddr Mmap(uint64_t length, uint32_t prot, bool huge = false);
  void Munmap(Vaddr start, uint64_t length);
  Vaddr Mremap(Vaddr old_start, uint64_t old_length, uint64_t new_length);
  void MadviseDontNeed(Vaddr start, uint64_t length);
  std::vector<uint8_t> Mincore(Vaddr start, uint64_t length) {
    std::vector<uint8_t> out;
    as_->Mincore(start, length, &out);
    return out;
  }

  // Why the most recent failed memory access failed (kHandled when nothing failed yet, or
  // after any successful access). The errno analog for the bool memory API above. Atomic
  // only so monitoring threads reading it against a driver thread's store are well-defined;
  // the value is still meaningful only to the (single) driver thread.
  FaultResult last_fault_result() const {
    return last_fault_result_.load(std::memory_order_relaxed);
  }

 private:
  friend class Kernel;

  // Core of the memory API: per-page translate (TLB fast path) + fault + copy.
  bool AccessMemory(Vaddr va, std::byte* buffer, uint64_t length, AccessType access,
                    bool set_memory, std::byte memset_value);

  Kernel* kernel_;
  Pid pid_;
  Pid parent_pid_;
  ProcessState state_ = ProcessState::kRunning;
  int exit_code_ = 0;
  ForkMode fork_mode_ = ForkMode::kClassic;
  std::atomic<FaultResult> last_fault_result_{FaultResult::kHandled};
  std::unique_ptr<AddressSpace> as_;
  std::vector<Pid> children_;
};

}  // namespace odf

#endif  // ODF_SRC_PROC_PROCESS_H_
