#include "src/proc/procfs.h"

#include <algorithm>
#include <cinttypes>
#include <sstream>

#include "src/debug/debug.h"
#include "src/debug/lockdep.h"
#include "src/debug/verify.h"
#include "src/fi/fault_inject.h"
#include "src/mm/range_ops.h"
#include "src/proc/kernel.h"
#include "src/replay/recorder.h"
#include "src/trace/metrics.h"
#include "src/util/log.h"

namespace odf {

namespace {

const char* KindName(VmaKind kind) {
  switch (kind) {
    case VmaKind::kAnonPrivate:
      return "anon";
    case VmaKind::kFilePrivate:
      return "file-private";
    case VmaKind::kFileShared:
      return "file-shared";
  }
  return "?";
}

}  // namespace

ProcessMemoryReport BuildMemoryReport(Process& process) {
  AddressSpace& as = process.address_space();
  FrameAllocator& allocator = as.allocator();
  Walker& walker = as.walker();

  ProcessMemoryReport report;
  report.pid = process.pid();
  report.vss_bytes = as.MappedBytes();

  // Count page tables by walking the skeleton once (each table counted exactly once, even
  // when several VMAs map through it). Shared tables contribute a proportional share of
  // their 4 KiB to this process's footprint.
  uint64_t* pgd_entries = allocator.TableEntries(as.pgd());
  report.upper_tables = 1;  // The PGD itself.
  report.page_table_bytes = kPageSize;
  for (uint64_t g = 0; g < kEntriesPerTable; ++g) {
    Pte pud_link = LoadEntry(&pgd_entries[g]);
    if (!pud_link.IsPresent()) {
      continue;
    }
    ++report.upper_tables;  // PUD table.
    report.page_table_bytes += kPageSize;
    uint64_t* pud_entries = allocator.TableEntries(pud_link.frame());
    for (uint64_t u = 0; u < kEntriesPerTable; ++u) {
      Pte pmd_link = LoadEntry(&pud_entries[u]);
      if (!pmd_link.IsPresent()) {
        continue;
      }
      uint32_t pmd_share =
          allocator.GetMeta(pmd_link.frame()).pt_share_count.load(std::memory_order_acquire);
      if (pmd_share > 1) {
        ++report.shared_pmd_tables;
        report.page_table_bytes += kPageSize / pmd_share;
      } else {
        ++report.upper_tables;  // Dedicated PMD table.
        report.page_table_bytes += kPageSize;
      }
      uint64_t* pmd_entries = allocator.TableEntries(pmd_link.frame());
      for (uint64_t m = 0; m < kEntriesPerTable; ++m) {
        Pte pte_link = LoadEntry(&pmd_entries[m]);
        if (!pte_link.IsPresent() || pte_link.IsHuge()) {
          continue;
        }
        uint32_t pte_share = allocator.GetMeta(pte_link.frame())
                                 .pt_share_count.load(std::memory_order_acquire);
        uint64_t sharers = static_cast<uint64_t>(pte_share) * pmd_share;
        if (sharers > 1) {
          ++report.shared_pte_tables;
          report.page_table_bytes += kPageSize / sharers;
        } else {
          ++report.dedicated_pte_tables;
          report.page_table_bytes += kPageSize;
        }
      }
    }
  }

  for (const auto& [start, vma] : as.vmas()) {
    VmaReport entry;
    entry.start = vma.start;
    entry.end = vma.end;
    entry.prot = vma.prot;
    entry.kind = vma.kind;
    entry.huge = vma.huge;

    for (Vaddr chunk = EntryBase(vma.start, PtLevel::kPmd); chunk < vma.end;
         chunk += kPteTableSpan) {
      // Determine the effective table-sharing factor on the path (PMD table share for the
      // §4 extension times PTE table share for base ODF).
      uint64_t* pud_slot = walker.FindEntry(as.pgd(), chunk, PtLevel::kPud);
      if (pud_slot == nullptr) {
        continue;
      }
      Pte pud = LoadEntry(pud_slot);
      if (!pud.IsPresent()) {
        continue;
      }
      uint64_t path_share =
          allocator.GetMeta(pud.frame()).pt_share_count.load(std::memory_order_acquire);
      uint64_t* pmd_slot = walker.FindEntry(as.pgd(), chunk, PtLevel::kPmd);
      if (pmd_slot == nullptr) {
        continue;
      }
      Pte pmd = LoadEntry(pmd_slot);
      if (!pmd.IsPresent()) {
        continue;
      }

      if (pmd.IsHuge()) {
        uint32_t refs = allocator.GetMeta(pmd.frame()).refcount.load();
        uint64_t pages = 1ULL << kHugePageOrder;
        entry.present_pages += pages;
        uint64_t sharers = refs * path_share;
        if (sharers > 1) {
          entry.shared_pages += pages;
        } else {
          entry.private_pages += pages;
        }
        entry.pss_pages += static_cast<double>(pages) / static_cast<double>(sharers);
        continue;
      }

      FrameId table = pmd.frame();
      uint32_t table_share =
          allocator.GetMeta(table).pt_share_count.load(std::memory_order_acquire);
      uint64_t* entries = allocator.TableEntries(table);
      Vaddr lo = std::max(chunk, vma.start);
      Vaddr hi = std::min(chunk + kPteTableSpan, vma.end);
      for (Vaddr va = lo; va < hi; va += kPageSize) {
        Pte pte = LoadEntry(&entries[TableIndex(va, PtLevel::kPte)]);
        if (pte.IsSwap()) {
          ++entry.swapped_pages;
          continue;
        }
        if (!pte.IsPresent()) {
          continue;
        }
        ++entry.present_pages;
        FrameId frame = pte.frame();
        PageMeta& meta = allocator.GetMeta(frame);
        uint32_t refs =
            allocator.GetMeta(ResolveCompoundHead(meta, frame)).refcount.load();
        uint64_t sharers = static_cast<uint64_t>(refs) * table_share * path_share;
        if (vma.kind == VmaKind::kFileShared || sharers > 1) {
          ++entry.shared_pages;
        } else {
          ++entry.private_pages;
        }
        entry.pss_pages += 1.0 / static_cast<double>(sharers);
      }
    }

    report.rss_bytes += entry.present_pages * kPageSize;
    report.swap_bytes += entry.swapped_pages * kPageSize;
    report.pss_bytes += static_cast<uint64_t>(entry.pss_pages * static_cast<double>(kPageSize));
    report.vmas.push_back(std::move(entry));
  }
  return report;
}

std::string FormatSmaps(const ProcessMemoryReport& report) {
  std::ostringstream out;
  for (const VmaReport& vma : report.vmas) {
    char prot[4] = {'-', '-', '-', '\0'};
    if ((vma.prot & kProtRead) != 0) {
      prot[0] = 'r';
    }
    if ((vma.prot & kProtWrite) != 0) {
      prot[1] = 'w';
    }
    out << std::hex << vma.start << "-" << vma.end << std::dec << " " << prot << " "
        << KindName(vma.kind) << (vma.huge ? " (huge)" : "") << "\n";
    out << "  Size:     " << (vma.end - vma.start) / 1024 << " kB\n";
    out << "  Rss:      " << vma.present_pages * kPageSize / 1024 << " kB\n";
    out << "  Pss:      " << static_cast<uint64_t>(vma.pss_pages * 4.0) << " kB\n";
    out << "  Shared:   " << vma.shared_pages * kPageSize / 1024 << " kB\n";
    out << "  Private:  " << vma.private_pages * kPageSize / 1024 << " kB\n";
    out << "  Swap:     " << vma.swapped_pages * kPageSize / 1024 << " kB\n";
  }
  return out.str();
}

std::string FormatStatusLine(const ProcessMemoryReport& report) {
  std::ostringstream out;
  out << "pid " << report.pid << ": VmSize " << report.vss_bytes / 1024 << " kB, VmRSS "
      << report.rss_bytes / 1024 << " kB, Pss " << report.pss_bytes / 1024 << " kB, VmSwap "
      << report.swap_bytes / 1024 << " kB, PT " << report.page_table_bytes / 1024
      << " kB (ded " << report.dedicated_pte_tables << " / shr " << report.shared_pte_tables
      << " PTE tables, " << report.shared_pmd_tables << " shr PMD)";
  return out.str();
}

std::string FormatVmstat(Kernel& kernel) {
  std::ostringstream out;
  // Event counters first (monotonic, vmstat proper), ...
  out << MetricsRegistry::Global().FormatVmstat();
  // ... then the live gauges a real vmstat derives from zone/swap state.
  FrameAllocatorStats frames = kernel.allocator().Stats();
  out << "nr_total_frames " << frames.total_frames << "\n";
  out << "nr_allocated_frames " << frames.allocated_frames << "\n";
  out << "nr_page_table_frames " << frames.page_table_frames << "\n";
  out << "nr_materialized_bytes " << frames.materialized_bytes << "\n";
  out << "nr_pcp_cached_frames " << kernel.allocator().CachedFrames() << "\n";
  SwapStats swap = kernel.swap_space().Stats();
  out << "nr_swap_slots_total " << swap.total_slots << "\n";
  out << "nr_swap_slots_in_use " << swap.slots_in_use << "\n";
  out << "nr_processes " << kernel.ProcessCount() << "\n";
  out << "nr_processes_running " << kernel.RunningProcessCount() << "\n";
  out << "nr_oom_kills " << kernel.oom_kills() << "\n";
  // Reclaim gauges (docs/reclaim.md): LRU list sizes, rmap totals, kswapd state.
  out << "nr_free_frames " << kernel.allocator().FreeFrames() << "\n";
  out << "nr_active_anon " << kernel.lru().ActiveSize() << "\n";
  out << "nr_inactive_anon " << kernel.lru().InactiveSize() << "\n";
  out << "nr_workingset_shadows " << kernel.lru().ShadowCount() << "\n";
  out << "nr_rmap_frames " << kernel.rmap().MappedFrames() << "\n";
  out << "nr_rmap_locations " << kernel.rmap().TotalLocations() << "\n";
  out << "kswapd_running " << (kernel.kswapd() != nullptr && kernel.kswapd()->Running() ? 1 : 0)
      << "\n";
  return out.str();
}

std::string FormatMeminfo(Kernel& kernel) {
  FrameAllocator& allocator = kernel.allocator();
  FrameAllocatorStats frames = allocator.Stats();
  FrameAllocator::Watermarks wm = allocator.watermarks();
  uint64_t limit = allocator.frame_limit();
  uint64_t free = allocator.FreeFrames();
  SwapStats swap = kernel.swap_space().Stats();
  auto kib = [](uint64_t pages) { return pages * (kPageSize / 1024); };

  std::ostringstream out;
  // An unlimited pool reports the backing total (like a machine with all RAM free).
  uint64_t total = limit == 0 ? frames.total_frames : limit;
  out << "MemTotal:       " << kib(total) << " kB\n";
  out << "MemFree:        " << kib(free == UINT64_MAX ? total - frames.allocated_frames : free)
      << " kB\n";
  out << "Active(anon):   " << kib(kernel.lru().ActiveSize()) << " kB\n";
  out << "Inactive(anon): " << kib(kernel.lru().InactiveSize()) << " kB\n";
  out << "PageTables:     " << kib(frames.page_table_frames) << " kB\n";
  out << "HardwareCorrupted: " << kib(frames.hwpoisoned_frames) << " kB\n";
  out << "SwapTotal:      " << kib(swap.total_slots) << " kB\n";
  out << "SwapFree:       " << kib(swap.total_slots - swap.slots_in_use) << " kB\n";
  out << "WatermarkMin:   " << kib(wm.min) << " kB\n";
  out << "WatermarkLow:   " << kib(wm.low) << " kB\n";
  out << "WatermarkHigh:  " << kib(wm.high) << " kB\n";
  return out.str();
}

std::string FormatFaultInject() { return fi::FaultInjector::Global().FormatStatus(); }

bool ConfigureFaultInject(const std::string& spec, std::string* error) {
  return fi::FaultInjector::Global().Configure(spec, error);
}

std::string FormatReplay() { return replay::Recorder::Global().FormatStatus(); }

bool ConfigureReplay(const std::string& spec, std::string* error) {
  return replay::Recorder::Global().Configure(spec, error);
}

std::string FormatMemoryFailure(Kernel& kernel) {
  std::ostringstream out;
  out << "memory_failure_compiled " << (ODF_MEMORY_FAILURE_COMPILED ? 1 : 0) << "\n";
  out << "mf_hard_offline " << ReadVm(VmCounter::k_mf_hard_offline) << "\n";
  out << "mf_soft_offline " << ReadVm(VmCounter::k_mf_soft_offline) << "\n";
  out << "mf_offline_failed " << ReadVm(VmCounter::k_mf_offline_failed) << "\n";
  out << "mf_migrated_pages " << ReadVm(VmCounter::k_mf_migrated_pages) << "\n";
  out << "mf_sigbus " << ReadVm(VmCounter::k_mf_sigbus) << "\n";
  out << "mf_huge_splits " << ReadVm(VmCounter::k_mf_huge_splits) << "\n";
  FrameAllocatorStats frames = kernel.allocator().Stats();
  out << "nr_hwpoisoned_frames " << frames.hwpoisoned_frames << "\n";
  out << "nr_quarantined_frames " << frames.quarantined_frames << "\n";
  return out.str();
}

std::string FormatDebugVm() {
  std::ostringstream out;
  out << "debug_vm_compiled " << (debug::Compiled() ? 1 : 0) << "\n";
  debug::CheckStats checks = debug::GetCheckStats();
  out << "vm_checks " << checks.vm_checks << "\n";
  out << "poison_checks " << checks.poison_checks << "\n";
  out << "poison_writes " << checks.poison_writes << "\n";
  debug::LockdepStats lockdep = debug::GetLockdepStats();
  out << "lockdep_classes " << lockdep.classes << "\n";
  out << "lockdep_edges " << lockdep.edges << "\n";
  out << "lockdep_acquisitions " << lockdep.acquisitions << "\n";
  debug::VerifyStats verify = debug::GetVerifyStats();
  out << "verify_runs " << verify.runs << "\n";
  out << "verify_skipped_reentrant " << verify.skipped_reentrant << "\n";
  out << "verify_skipped_concurrent " << verify.skipped_concurrent << "\n";
  out << "verify_skipped_disabled " << verify.skipped_disabled << "\n";
  return out.str();
}

}  // namespace odf
