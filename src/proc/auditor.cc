#include "src/proc/auditor.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/mm/range_ops.h"
#include "src/util/log.h"

namespace odf {

namespace {

struct AuditState {
  FrameAllocator* allocator;
  AuditResult* result;

  // Expected reference counts reconstructed from the paging structures.
  std::unordered_map<FrameId, uint64_t> pmd_table_refs;  // PUD entries -> PMD table.
  std::unordered_map<FrameId, uint64_t> pte_table_refs;  // PMD entries -> PTE table.
  std::unordered_map<FrameId, uint64_t> page_refs;       // Leaf entries + cache -> frame.
  std::unordered_map<SwapSlot, uint64_t> swap_refs;      // Swap PTEs -> slot.

  std::set<FrameId> distinct_pmd_tables;
  std::set<FrameId> distinct_pte_tables;

  void Violation(const std::string& message) { result->violations.push_back(message); }
};

void CheckTableFrame(AuditState& state, FrameId frame, const char* what) {
  const PageMeta& meta = state.allocator->GetMeta(frame);
  if ((meta.flags & kPageFlagAllocated) == 0) {
    state.Violation(std::string(what) + " frame " + std::to_string(frame) + " is freed");
  }
  if (!meta.IsPageTable()) {
    state.Violation(std::string(what) + " frame " + std::to_string(frame) +
                    " is not flagged as a page table");
  }
}

// Phase 1: walk one address space's upper levels, recording references and collecting the
// distinct PMD tables (leaf tables are scanned once per distinct table in phase 2).
void WalkAddressSpace(AuditState& state, AddressSpace& as) {
  FrameAllocator& allocator = *state.allocator;
  state.result->reachable_frames.insert(as.pgd());
  uint64_t* pgd_entries = allocator.TableEntries(as.pgd());
  for (uint64_t g = 0; g < kEntriesPerTable; ++g) {
    Pte pud_link = LoadEntry(&pgd_entries[g]);
    if (!pud_link.IsPresent()) {
      continue;
    }
    CheckTableFrame(state, pud_link.frame(), "PUD-table");
    state.result->reachable_frames.insert(pud_link.frame());
    uint64_t* pud_entries = allocator.TableEntries(pud_link.frame());
    for (uint64_t u = 0; u < kEntriesPerTable; ++u) {
      Pte pmd_link = LoadEntry(&pud_entries[u]);
      if (!pmd_link.IsPresent()) {
        continue;
      }
      CheckTableFrame(state, pmd_link.frame(), "PMD-table");
      state.result->reachable_frames.insert(pmd_link.frame());
      ++state.pmd_table_refs[pmd_link.frame()];
      state.distinct_pmd_tables.insert(pmd_link.frame());
      ++state.result->tables_checked;
    }
  }
}

// Phase 2: each distinct PMD table contributes one reference per entry (huge page or PTE
// table) — regardless of how many address spaces share the PMD table itself (§3.6).
void WalkPmdTables(AuditState& state) {
  FrameAllocator& allocator = *state.allocator;
  for (FrameId pmd_table : state.distinct_pmd_tables) {
    uint64_t* entries = allocator.TableEntries(pmd_table);
    for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
      Pte entry = LoadEntry(&entries[i]);
      if (!entry.IsPresent()) {
        continue;
      }
      if (entry.IsHuge()) {
        // Memory-failure containment (docs/memory-failure.md): a poisoned subpage must
        // have had every huge mapping of its compound split away — a surviving 2 MiB
        // translation would hand out the dead bytes without faulting.
        for (uint64_t sub = 0; sub < kEntriesPerTable; ++sub) {
          FrameId tail = entry.frame() + static_cast<FrameId>(sub);
          if (allocator.GetMeta(tail).IsHwPoisoned()) {
            state.Violation("huge leaf entry maps compound " +
                            std::to_string(entry.frame()) +
                            " containing hwpoisoned subpage " + std::to_string(tail));
          }
        }
        state.result->reachable_frames.insert(entry.frame());
        ++state.page_refs[entry.frame()];
        ++state.result->leaf_entries_checked;
        state.result->leaf_slots.emplace(&entries[i],
                                         std::make_pair(entry.frame(), true));
        continue;
      }
      CheckTableFrame(state, entry.frame(), "PTE-table");
      state.result->reachable_frames.insert(entry.frame());
      ++state.pte_table_refs[entry.frame()];
      state.distinct_pte_tables.insert(entry.frame());
      ++state.result->tables_checked;
    }
  }
}

// Phase 3: each distinct PTE table contributes one reference per mapped page / swap slot.
void WalkPteTables(AuditState& state) {
  FrameAllocator& allocator = *state.allocator;
  for (FrameId pte_table : state.distinct_pte_tables) {
    uint64_t* entries = allocator.TableEntries(pte_table);
    for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
      Pte entry = LoadEntry(&entries[i]);
      if (entry.IsSwap()) {
        ++state.swap_refs[entry.swap_slot()];
        ++state.result->leaf_entries_checked;
        continue;
      }
      if (!entry.IsPresent()) {
        continue;
      }
      FrameId frame = entry.frame();
      const PageMeta& meta = allocator.GetMeta(frame);
      if ((meta.flags & kPageFlagAllocated) == 0) {
        state.Violation("leaf entry references freed frame " + std::to_string(frame));
      }
      if (meta.IsPageTable()) {
        state.Violation("leaf entry references a page-table frame " + std::to_string(frame));
      }
      if (meta.IsHwPoisoned()) {
        // Containment: offline replaced every mapping with a non-present marker; a PRESENT
        // entry still translating to the dead frame means a mapping was missed.
        state.Violation("present leaf entry references hwpoisoned frame " +
                        std::to_string(frame));
      }
      state.result->reachable_frames.insert(ResolveCompoundHead(meta, frame));
      ++state.page_refs[ResolveCompoundHead(meta, frame)];
      ++state.result->leaf_entries_checked;
      state.result->leaf_slots.emplace(&entries[i], std::make_pair(frame, false));
    }
  }
}

}  // namespace

std::string AuditResult::Describe() const {
  std::ostringstream out;
  out << "audited " << processes_audited << " processes, " << tables_checked << " tables, "
      << leaf_entries_checked << " leaf entries: ";
  if (violations.empty()) {
    out << "OK";
  } else {
    out << violations.size() << " violations\n";
    for (const std::string& violation : violations) {
      out << "  - " << violation << "\n";
    }
  }
  return out.str();
}

AuditResult AuditKernel(Kernel& kernel) {
  AuditResult result;
  AuditState state;
  state.allocator = &kernel.allocator();
  state.result = &result;

  // shared_ptr snapshot: a concurrent Wait() reaping a zombie cannot free an address
  // space out from under the walk.
  std::vector<std::shared_ptr<Process>> processes = kernel.RunningProcesses();
  for (const auto& process : processes) {
    WalkAddressSpace(state, process->address_space());
    ++result.processes_audited;
  }
  WalkPmdTables(state);
  WalkPteTables(state);

  // Page-cache references: one per cached page, per file. Files are found through the
  // filesystem AND through live VMAs (an unlinked file stays alive while mapped).
  std::unordered_set<MemFile*> files;
  std::vector<std::shared_ptr<MemFile>> file_handles;
  kernel.fs().ForEachFile([&](const std::shared_ptr<MemFile>& file) {
    if (files.insert(file.get()).second) {
      file_handles.push_back(file);
    }
  });
  for (const auto& process : processes) {
    for (const auto& [start, vma] : process->address_space().vmas()) {
      if (vma.file != nullptr && files.insert(vma.file.get()).second) {
        file_handles.push_back(vma.file);
      }
    }
  }
  for (const auto& file : file_handles) {
    file->ForEachCachedPage([&](uint64_t index, FrameId frame) {
      (void)index;
      result.reachable_frames.insert(frame);
      ++state.page_refs[frame];
    });
  }

  // Compare expected vs actual counters.
  for (const auto& [table, expected] : state.pmd_table_refs) {
    uint64_t actual = kernel.allocator().GetMeta(table).pt_share_count.load();
    if (actual != expected) {
      state.Violation("PMD table " + std::to_string(table) + " share count " +
                      std::to_string(actual) + " != referenced " + std::to_string(expected));
    }
  }
  for (const auto& [table, expected] : state.pte_table_refs) {
    uint64_t actual = kernel.allocator().GetMeta(table).pt_share_count.load();
    if (actual != expected) {
      state.Violation("PTE table " + std::to_string(table) + " share count " +
                      std::to_string(actual) + " != referenced " + std::to_string(expected));
    }
  }
  for (const auto& [frame, expected] : state.page_refs) {
    uint64_t actual = kernel.allocator().GetMeta(frame).refcount.load();
    if (actual != expected) {
      state.Violation("frame " + std::to_string(frame) + " refcount " +
                      std::to_string(actual) + " != referenced " + std::to_string(expected));
    }
  }
  for (const auto& [slot, expected] : state.swap_refs) {
    uint64_t actual = kernel.swap_space().RefCount(slot);
    if (actual != expected) {
      state.Violation("swap slot " + std::to_string(slot) + " refcount " +
                      std::to_string(actual) + " != referenced " + std::to_string(expected));
    }
  }
  return result;
}

}  // namespace odf
