// Global paging-structure auditor: walks EVERY process's page tables and cross-checks the
// reference-counting invariants the on-demand-fork design rests on (DESIGN.md §invariants):
//
//   1. A PTE table's pt_share_count equals the number of PMD entries (across all address
//      spaces, through shared PMD tables counted once per sharer) that reference it.
//   2. A data frame's refcount equals the number of leaf entries in DEDICATED ownership
//      chains that map it, plus its page-cache references (shared tables hold one reference
//      on behalf of all their sharers — §3.6).
//   3. A swap slot's refcount equals the number of swap PTEs referencing it.
//   4. Table frames are flagged as tables; mapped frames are allocated; no entry references
//      a freed frame.
//
// Tests run the auditor after complex scenarios; it turns subtle accounting drift into
// immediate failures instead of leaks found at teardown.
#ifndef ODF_SRC_PROC_AUDITOR_H_
#define ODF_SRC_PROC_AUDITOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/proc/kernel.h"

namespace odf {

struct AuditResult {
  std::vector<std::string> violations;
  uint64_t processes_audited = 0;
  uint64_t tables_checked = 0;
  uint64_t leaf_entries_checked = 0;

  // Every frame the walk found a live reference to: PGD/PUD/PMD/PTE table frames, mapped
  // data frames (compound heads; tails are implied by the head's order), and page-cache
  // frames. odf::debug::VerifyKernel diffs this against the allocator's full PageMeta
  // array — an allocated frame absent from this set is a leak.
  std::unordered_set<FrameId> reachable_frames;

  // Every PRESENT leaf slot the walk found — a PTE, or a huge PMD entry — mapped to the
  // frame id exactly as stored in it and whether it is huge. Shared tables contribute each
  // slot ONCE (the walk visits distinct tables), which is precisely the granularity the
  // rmap registry records; VerifyKernel cross-checks the two for an exact bijection.
  std::unordered_map<const uint64_t*, std::pair<FrameId, bool>> leaf_slots;

  bool ok() const { return violations.empty(); }
  std::string Describe() const;
};

// Audits every running process in `kernel`. The kernel must be quiescent (no concurrent
// mutation) — the auditor reads all paging structures non-atomically.
AuditResult AuditKernel(Kernel& kernel);

}  // namespace odf

#endif  // ODF_SRC_PROC_AUDITOR_H_
