#include "src/proc/kernel.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "src/debug/lockdep.h"
#include "src/debug/verify.h"
#include "src/reclaim/mm_gate.h"
#include "src/reclaim/shrink.h"
#include "src/replay/recorder.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {

namespace {

// Process-table lock class. Recorded order: Kernel::table_mutex_ -> pool/registry locks
// (process teardown under the table lock frees frames into the allocator).
debug::LockClass g_table_lock_class("Kernel::table_mutex_");

}  // namespace

thread_local Process* Kernel::active_process_ = nullptr;

Kernel::Kernel() : fs_(&allocator_), rmap_(&allocator_) {
  rmap_.AttachLru(&lru_);
  allocator_.SetReclaimCallback([this](uint64_t want) { return ReclaimMemory(want); });
}

void Kernel::SetMemoryLimitFrames(uint64_t frames) {
  replay::OpScope op(OpKind::k_set_memory_limit, 0);
  op.Arg(frames);
  allocator_.SetFrameLimit(frames);
}

void Kernel::set_default_fork_mode(ForkMode mode) {
  replay::OpScope op(OpKind::k_set_default_fork_mode, 0);
  op.Arg(static_cast<uint64_t>(mode));
  default_fork_mode_ = mode;
}

reclaim::ShrinkContext Kernel::MakeShrinkContext() {
  reclaim::ShrinkContext ctx;
  ctx.allocator = &allocator_;
  ctx.swap = &swap_;
  ctx.rmap = &rmap_;
  ctx.lru = &lru_;
  // Coarse shootdown: the shrinker rewrote leaf entries (possibly in tables shared across
  // processes), so every TLB is stale. Runs while the caller still holds the MmGate
  // exclusively, before any mutator resumes.
  ctx.flush_tlbs = [this] {
    debug::MutexGuard guard(table_mutex_, g_table_lock_class);
    for (auto& [pid, process] : processes_) {
      process->address_space().tlb().FlushAll();
    }
  };
  return ctx;
}

mf::MfContext Kernel::MakeMfContext() {
  mf::MfContext ctx;
  ctx.allocator = &allocator_;
  ctx.swap = &swap_;
  ctx.fs = &fs_;
  ctx.rmap = &rmap_;
  ctx.lru = &lru_;
  ctx.flush_tlbs = [this] {
    debug::MutexGuard guard(table_mutex_, g_table_lock_class);
    for (auto& [pid, process] : processes_) {
      process->address_space().tlb().FlushAll();
    }
  };
  ctx.spaces = [this] {
    debug::MutexGuard guard(table_mutex_, g_table_lock_class);
    std::vector<AddressSpace*> spaces;
    for (auto& [pid, process] : processes_) {
      if (process->state() == ProcessState::kRunning) {
        spaces.push_back(&process->address_space());
      }
    }
    return spaces;
  };
  return ctx;
}

mf::MfResult Kernel::MemoryFailure(FrameId frame) {
#if !ODF_MEMORY_FAILURE_COMPILED
  (void)frame;
  return mf::MfResult::kNotSupported;
#else
  replay::OpScope op(OpKind::k_mf_hard_offline, 0);
  op.Arg(frame);
  mf::MfResult result;
  {
    debug::MutationScope mutation;
    // Offline rewrites mappings in tables shared across processes and flushes TLBs — the
    // evictor side of the gate, exactly like reclaim (upgrades any shared hold this
    // thread carries, e.g. when the ECC hook fires mid-AccessMemory).
    reclaim::MmGate::ExclusiveScope gate;
    mf::MfContext ctx = MakeMfContext();
    result = mf::HardOffline(ctx, frame);
  }
  debug::AutoVerifyKernel(*this, "memory-failure");
  op.Result(static_cast<uint64_t>(result));
  return result;
#endif
}

mf::MfResult Kernel::SoftOfflinePage(FrameId frame) {
#if !ODF_MEMORY_FAILURE_COMPILED
  (void)frame;
  return mf::MfResult::kNotSupported;
#else
  replay::OpScope op(OpKind::k_mf_soft_offline, 0);
  op.Arg(frame);
  mf::MfResult result;
  {
    debug::MutationScope mutation;
    reclaim::MmGate::ExclusiveScope gate;
    mf::MfContext ctx = MakeMfContext();
    result = mf::SoftOffline(ctx, frame);
  }
  debug::AutoVerifyKernel(*this, "soft-offline");
  op.Result(static_cast<uint64_t>(result));
  return result;
#endif
}

void Kernel::StartKswapd() {
  replay::OpScope op(OpKind::k_start_kswapd, 0);
  if (kswapd_ != nullptr) {
    return;
  }
  kswapd_ = std::make_unique<reclaim::Kswapd>(MakeShrinkContext());
  kswapd_->Start();
  reclaim::Kswapd* daemon = kswapd_.get();
  allocator_.SetPressureCallback([daemon] { daemon->Wake(); });
}

void Kernel::StopKswapd() {
  replay::OpScope op(OpKind::k_stop_kswapd, 0);
  if (kswapd_ == nullptr) {
    return;
  }
  allocator_.SetPressureCallback(nullptr);
  kswapd_->Stop();
  kswapd_.reset();
}

uint64_t Kernel::ReclaimMemory(uint64_t want) {
  // Recorded only when called directly (depth 0); reclaim triggered from inside another
  // op's allocation is nested and re-executes naturally on replay.
  replay::OpScope op(OpKind::k_reclaim, 0);
  op.Arg(want);
  // Reclaim mutates page tables and frees frames; it usually runs nested inside the
  // allocation that triggered it (whose own MutationScope is already open), but the scope
  // is reentrant so standing alone is fine too.
  debug::MutationScope mutation;
  CountVm(VmCounter::k_reclaim_runs);
  CountVm(VmCounter::k_direct_reclaim);
  ODF_TRACE(reclaim_begin, /*pid=*/0, want);
  uint64_t freed = 0;
  {
    // Upgrade to the exclusive gate: this thread is typically a mutator mid-operation
    // (its shared hold is released for the duration and restored on exit; see mm_gate.h).
    reclaim::MmGate::ExclusiveScope gate;
    reclaim::ShrinkContext ctx = MakeShrinkContext();
    freed = reclaim::ReclaimPages(ctx, want);
  }
  if (freed > 0) {
    ODF_TRACE(reclaim_end, /*pid=*/0, want, freed);
    op.Result(freed);
    return freed;
  }
  // The OOM killer is a last resort for genuine exhaustion only. A direct ReclaimMemory
  // call (or an allocation retried under fault injection) can arrive here with nothing on
  // the LRU but plenty of free frames — that is not an OOM.
  uint64_t free_frames = allocator_.FreeFrames();
  if (free_frames >= want) {
    ODF_TRACE(reclaim_end, /*pid=*/0, want, /*freed=*/0);
    return 0;
  }
  // Nothing reclaimable: OOM-kill the largest running process (by mapped bytes), like the
  // kernel's last resort. Its teardown releases frames. Runs OUTSIDE the exclusive gate:
  // Exit re-enters the mutator path (shared gate) and must not self-deadlock. The
  // shared_ptr snapshot keeps every candidate alive while we weigh them against a
  // concurrent Wait() reaping zombies.
  std::vector<std::shared_ptr<Process>> candidates = RunningProcesses();
  std::shared_ptr<Process> victim;
  uint64_t victim_bytes = 0;
  for (const std::shared_ptr<Process>& process : candidates) {
    if (process.get() == active_process_) {
      continue;  // Never kill the process whose allocation we are servicing.
    }
    uint64_t bytes = process->address_space().MappedBytes();
    if (process->state() == ProcessState::kRunning && bytes > victim_bytes) {
      victim = process;
      victim_bytes = bytes;
    }
  }
  if (victim == nullptr) {
    ODF_TRACE(reclaim_end, /*pid=*/0, want, /*freed=*/0);
    return 0;
  }
  ODF_LOG(kWarn) << "OOM killer: killing pid " << victim->pid() << " (" << victim_bytes
                 << " mapped bytes)";
  uint64_t before = allocator_.Stats().allocated_frames;
  ODF_TRACE(oom_kill, victim->pid(), victim_bytes);
  ExitInternal(*victim, -9, /*oom=*/true);
  oom_kills_.fetch_add(1, std::memory_order_relaxed);
  CountVm(VmCounter::k_oom_kills);
  uint64_t after = allocator_.Stats().allocated_frames;
  uint64_t reclaimed = before > after ? before - after : 0;
  ODF_TRACE(reclaim_end, /*pid=*/0, want, reclaimed);
  op.Result(reclaimed);
  return reclaimed;
}

Kernel::~Kernel() {
  // The daemon holds a ShrinkContext referencing this kernel; stop it before teardown.
  StopKswapd();
  debug::MutationScope mutation;
  reclaim::MmGate::SharedScope gate;
  // Tear down in pid order; address spaces release their frames as they go.
  debug::MutexGuard guard(table_mutex_, g_table_lock_class);
  processes_.clear();
}

Process& Kernel::CreateProcess() {
  replay::OpScope op(OpKind::k_create_process, 0);
  debug::MutationScope mutation;
  reclaim::MmGate::SharedScope gate;  // Mutator: excludes the shrinker (mm_gate.h).
  auto as = std::make_unique<AddressSpace>(&allocator_, &swap_, &rmap_);
  debug::MutexGuard guard(table_mutex_, g_table_lock_class);
  Pid pid = next_pid_++;
  auto process = std::make_shared<Process>(this, pid, /*parent=*/0, std::move(as));
  process->fork_mode_ = default_fork_mode_;
  Process& ref = *process;
  processes_.emplace(pid, std::move(process));
  CountVm(VmCounter::k_proc_created);
  ODF_TRACE(proc_create, pid, /*parent=*/0);
  op.Result(static_cast<uint64_t>(pid));
  return ref;
}

Process& Kernel::Fork(Process& parent, ForkMode mode, ForkProfile* profile) {
  replay::OpScope op(OpKind::k_fork, parent.pid());
  op.Arg(static_cast<uint64_t>(mode));
  Process* child = TryFork(parent, mode, profile);
  if (child != nullptr) {
    op.Result(static_cast<uint64_t>(child->pid()));
  }
  ODF_CHECK(child != nullptr) << "fork of pid " << parent.pid()
                              << " failed: out of simulated memory (NOFAIL Fork; use "
                                 "TryFork for recoverable ENOMEM)";
  return *child;
}

Process* Kernel::TryFork(Process& parent, ForkMode mode, ForkProfile* profile) {
  replay::OpScope op(OpKind::k_try_fork, parent.pid());
  op.Arg(static_cast<uint64_t>(mode));
  // The fork body runs inside a MutationScope (closed before the post-fork verifier hook
  // below); the lambda keeps the early rollback return inside the scope.
  Process* forked = [&]() -> Process* {
    debug::MutationScope mutation;
    ODF_CHECK(parent.state() == ProcessState::kRunning);
    ActiveProcessScope immune(&parent);  // The parent must survive its own fork's allocations.
    // The child AS is constructed BEFORE any lock: its PGD allocation may quota-wait, and
    // no lock may be held across a quota wait (mm_gate.h rules).
    auto child_as = std::make_unique<AddressSpace>(&allocator_, &swap_, &rmap_);
    // Copy under the parent's AS gate held exclusively: fork is a whole-AS structural
    // operation (write-protects entries, bumps share counts) and must not interleave with
    // the parent's faults from other threads. MmGate shared nests inside per the lock
    // order. Quota waits inside the copy are still sound — reclaim never takes an AS gate
    // (the OOM killer's ExitInternal skips the victim's).
    MmLockTable::WriteScope ws(parent.address_space().locks());
    reclaim::MmGate::SharedScope gate;  // Mutator: excludes the shrinker (mm_gate.h).
    if (!CopyAddressSpace(parent.address_space(), *child_as, mode, profile, &fork_counters_)) {
      // Transactional rollback: the half-built child holds real references (page refcounts,
      // table share counts, swap-slot refs), all reachable through its own page tables.
      // TearDown clears the VMA list first, so shared tables are dropped whole — never
      // dedicated — making the unwind allocation-free (rollback cannot itself fail).
      child_as->TearDown();
      CountVm(VmCounter::k_fork_rollback);
      ODF_TRACE(fork_rollback, parent.pid(), static_cast<uint64_t>(mode));
      return nullptr;
    }

    debug::MutexGuard guard(table_mutex_, g_table_lock_class);
    Pid pid = next_pid_++;
    auto child = std::make_shared<Process>(this, pid, parent.pid(), std::move(child_as));
    child->fork_mode_ = parent.fork_mode();
    parent.children_.push_back(pid);
    Process& ref = *child;
    processes_.emplace(pid, std::move(child));
    CountVm(VmCounter::k_proc_created);
    ODF_TRACE(proc_create, pid, static_cast<uint64_t>(parent.pid()));
    return &ref;
  }();
  // Rollbacks are verified too: a failed fork must leave the kernel exactly as it was.
  debug::AutoVerifyKernel(*this, "fork");
  op.Result(forked != nullptr ? static_cast<uint64_t>(forked->pid()) : 0);
  return forked;
}

void Kernel::Exit(Process& process, int code) { ExitInternal(process, code, /*oom=*/false); }

void Kernel::ExitInternal(Process& process, int code, bool oom) {
  replay::OpScope op(OpKind::k_exit, process.pid());
  op.Arg(static_cast<uint64_t>(static_cast<int64_t>(code)));
  {
    debug::MutationScope mutation;
    // Victim's AS gate, exclusive: a normal Exit may race the victim's own driver thread
    // mid-fault. The OOM killer skips it — its victim is never mid-operation
    // (ActiveProcessScope), and the killer may already hold ANOTHER process's gate from
    // the fault path that triggered reclaim; a second gate here would invert lock order.
    std::optional<MmLockTable::WriteScope> ws;
    if (!oom) {
      ws.emplace(process.as_->locks());
    }
    ODF_CHECK(process.state() == ProcessState::kRunning)
        << "double exit of pid " << process.pid();
    process.exit_code_ = code;
    process.as_->TearDown();  // Takes the MmGate shared internally.
    process.state_ = ProcessState::kZombie;
    CountVm(VmCounter::k_proc_exited);
    ODF_TRACE(proc_exit, process.pid(), static_cast<uint64_t>(code));
    // Reparent any children to init (pid 0 == no reaper; they self-reap on Wait misses).
  }
  // Skipped automatically when this Exit is an OOM kill nested inside another mutation.
  debug::AutoVerifyKernel(*this, "exit");
}

Pid Kernel::Wait(Process& parent) {
  replay::OpScope op(OpKind::k_wait, parent.pid());
  debug::MutationScope mutation;  // Reaping destroys the zombie's remaining state.
  debug::MutexGuard guard(table_mutex_, g_table_lock_class);
  for (auto it = parent.children_.begin(); it != parent.children_.end(); ++it) {
    auto found = processes_.find(*it);
    if (found != processes_.end() && found->second->state() == ProcessState::kZombie) {
      Pid pid = *it;
      processes_.erase(found);
      parent.children_.erase(it);
      ODF_TRACE(proc_reap, pid, static_cast<uint64_t>(parent.pid()));
      op.Result(static_cast<uint64_t>(pid) + 1);  // Reaped pid + 1; 0 == none.
      return pid;
    }
  }
  return -1;
}

Process* Kernel::FindProcess(Pid pid) {
  debug::MutexGuard guard(table_mutex_, g_table_lock_class);
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

std::vector<std::shared_ptr<Process>> Kernel::RunningProcesses() {
  debug::MutexGuard guard(table_mutex_, g_table_lock_class);
  std::vector<std::shared_ptr<Process>> result;
  for (auto& [pid, process] : processes_) {
    if (process->state() == ProcessState::kRunning) {
      result.push_back(process);
    }
  }
  return result;
}

size_t Kernel::ProcessCount() const {
  debug::MutexGuard guard(table_mutex_, g_table_lock_class);
  return processes_.size();
}

size_t Kernel::RunningProcessCount() const {
  debug::MutexGuard guard(table_mutex_, g_table_lock_class);
  return static_cast<size_t>(
      std::count_if(processes_.begin(), processes_.end(), [](const auto& entry) {
        return entry.second->state() == ProcessState::kRunning;
      }));
}

}  // namespace odf
