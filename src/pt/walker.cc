#include "src/pt/walker.h"

#include "src/debug/debug.h"
#include "src/util/log.h"

namespace odf {

// A fresh table starts dedicated — exactly one address space references it — which is
// InitAllocatedFrame's initial state for page-table frames, so no counter write is
// needed here (and raw pt_share stores outside src/phys/ are a lint violation).
FrameId AllocPageTable(FrameAllocator& allocator) {
  return allocator.Allocate(kPageFlagPageTable);
}

FrameId TryAllocPageTable(FrameAllocator& allocator) {
  return allocator.TryAllocate(kPageFlagPageTable);
}

Translation Walker::Translate(FrameId pgd, Vaddr va, AccessType access) {
  Translation result;
  FrameId table = pgd;
  for (int l = 0; l < kPtLevels; ++l) {
    PtLevel level = static_cast<PtLevel>(l);
    uint64_t* entries = allocator_->TableEntries(table);
    uint64_t* slot = &entries[TableIndex(va, level)];
    Pte entry = LoadEntry(slot);
    result.fault_level = level;
    if (!entry.IsPresent()) {
      result.status = TranslateStatus::kNotPresent;
      return result;
    }
    if (access == AccessType::kWrite && !entry.IsWritable()) {
      // Hierarchical attribute: a cleared writable bit anywhere on the path blocks writes.
      result.status = TranslateStatus::kNotWritable;
      return result;
    }
    // Hardware sets the accessed bit on every level it traverses. fetch_or (not a blind
    // store of the snapshot) so a concurrent COW install or protection change in a sharing
    // thread is never reverted — the bit set is monotonic.
    if (!entry.IsAccessed()) {
      entry = SetEntryFlags(slot, kPteAccessed);
    }
    if (level == PtLevel::kPmd && entry.IsHuge()) {
      if (access == AccessType::kWrite) {
        SetEntryFlags(slot, kPteDirty);
      }
      FrameId head = entry.frame();
      // Leaf invariants (huge/4k consistency): a huge PMD entry must reference a live
      // compound head — anything else means a split or free raced past the entry.
      ODF_VM_BUG_ON_PAGE((allocator_->GetMeta(head).flags & kPageFlagAllocated) == 0,
                         allocator_->GetMeta(head), head)
          << "huge PMD entry references a freed frame";
      ODF_VM_BUG_ON_PAGE(!allocator_->GetMeta(head).IsCompoundHead(),
                         allocator_->GetMeta(head), head)
          << "huge PMD entry references a non-compound-head frame";
      uint64_t offset = (va >> kPageShift) & ((1ULL << kHugePageOrder) - 1);
      result.status = TranslateStatus::kOk;
      result.frame = head + static_cast<FrameId>(offset);
      result.pte_table = kInvalidFrame;
      result.huge = true;
      result.slot = slot;
      return result;
    }
    if (level == PtLevel::kPte) {
      if (access == AccessType::kWrite) {
        SetEntryFlags(slot, kPteDirty);
      }
      FrameId frame = entry.frame();
      // Leaf invariants: a present PTE must reference an allocated, referenced data frame
      // (a shared PTE table's single reference counts — §3.6), never a table frame.
      ODF_VM_BUG_ON_PAGE((allocator_->GetMeta(frame).flags & kPageFlagAllocated) == 0,
                         allocator_->GetMeta(frame), frame)
          << "present PTE references a freed frame";
      ODF_VM_BUG_ON_PAGE(allocator_->GetMeta(frame).IsPageTable(),
                         allocator_->GetMeta(frame), frame)
          << "present PTE references a page-table frame";
      ODF_VM_BUG_ON_PAGE(
          allocator_->GetMeta(ResolveCompoundHead(allocator_->GetMeta(frame), frame))
                  .refcount.load(std::memory_order_relaxed) == 0,
          allocator_->GetMeta(frame), frame)
          << "present PTE references a zero-refcount frame";
      result.status = TranslateStatus::kOk;
      result.frame = frame;
      result.pte_table = table;
      result.slot = slot;
      return result;
    }
    result.pte_table = table;  // Will hold the PTE table once we reach the last level.
    table = entry.frame();
  }
  ODF_CHECK(false) << "unreachable walk state";
  return result;
}

Translation Walker::TranslateLockFree(FrameId pgd, Vaddr va) {
  Translation result;
  FrameId table = pgd;
  for (int l = 0; l < kPtLevels; ++l) {
    PtLevel level = static_cast<PtLevel>(l);
    uint64_t* entries = allocator_->TableEntries(table);
    uint64_t* slot = &entries[TableIndex(va, level)];
    Pte entry = LoadEntry(slot);
    result.fault_level = level;
    if (!entry.IsPresent()) {
      result.status = TranslateStatus::kNotPresent;
      return result;
    }
    // Leaf accessed bit: required for the clock/second-chance protocol (a page served by
    // this walk was referenced and must survive the next reclaim pass). CAS, never
    // fetch_or — this walk races PTE rewrites by design, and a blind OR on an entry that
    // was concurrently turned into a swap entry would corrupt the swap-slot payload. A
    // lost CAS just means someone rewrote the entry; the caller's pin + shard-generation
    // recheck rejects the stale translation anyway. No dirty stores (read-only walk) and
    // no ODF_VM_BUG_ON leaf checks (the races those catch are benign here).
    if (level == PtLevel::kPmd && entry.IsHuge()) {
      if (!entry.IsAccessed()) {
        Pte expected = entry;  // CasEntry updates `expected` on failure; keep the snapshot.
        CasEntry(slot, expected, entry.WithFlag(kPteAccessed));
      }
      uint64_t offset = (va >> kPageShift) & ((1ULL << kHugePageOrder) - 1);
      result.status = TranslateStatus::kOk;
      result.frame = entry.frame() + static_cast<FrameId>(offset);
      result.pte_table = kInvalidFrame;
      result.huge = true;
      result.slot = slot;
      return result;
    }
    if (level == PtLevel::kPte) {
      if (!entry.IsAccessed()) {
        Pte expected = entry;
        CasEntry(slot, expected, entry.WithFlag(kPteAccessed));
      }
      result.status = TranslateStatus::kOk;
      result.frame = entry.frame();
      result.pte_table = table;
      result.slot = slot;
      return result;
    }
    result.pte_table = table;
    table = entry.frame();
  }
  ODF_CHECK(false) << "unreachable walk state";
  return result;
}

uint64_t* Walker::FindEntry(FrameId pgd, Vaddr va, PtLevel level) {
  FrameId table = pgd;
  for (int l = 0; l < kPtLevels; ++l) {
    PtLevel current = static_cast<PtLevel>(l);
    uint64_t* entries = allocator_->TableEntries(table);
    uint64_t* slot = &entries[TableIndex(va, current)];
    if (current == level) {
      return slot;
    }
    Pte entry = LoadEntry(slot);
    if (!entry.IsPresent() || entry.IsHuge()) {
      return nullptr;
    }
    table = entry.frame();
  }
  return nullptr;
}

uint64_t* Walker::EnsureEntry(FrameId pgd, Vaddr va, PtLevel level) {
  FrameId table = pgd;
  for (int l = 0; l < kPtLevels; ++l) {
    PtLevel current = static_cast<PtLevel>(l);
    uint64_t* entries = allocator_->TableEntries(table);
    uint64_t* slot = &entries[TableIndex(va, current)];
    if (current == level) {
      return slot;
    }
    Pte entry = LoadEntry(slot);
    if (!entry.IsPresent()) {
      FrameId child = AllocPageTable(*allocator_);
      // Upper-level links are born writable; permission is enforced at the leaf (or revoked
      // at the PMD by on-demand-fork's write-protection). CAS, not a blind store: two
      // faulting threads in different 2 MiB shards of one address space share the upper
      // slots, and the loser of the install race must free its speculative table.
      Pte desired = Pte::Make(child, kPtePresent | kPteWritable | kPteUser);
      if (CasEntry(slot, entry, desired)) {
        entry = desired;
      } else {
        allocator_->DecRef(child);
      }
    }
    ODF_CHECK(!entry.IsHuge()) << "EnsureEntry descending through a huge mapping";
    table = entry.frame();
  }
  return nullptr;
}

uint64_t* Walker::TryEnsureEntry(FrameId pgd, Vaddr va, PtLevel level) {
  FrameId table = pgd;
  for (int l = 0; l < kPtLevels; ++l) {
    PtLevel current = static_cast<PtLevel>(l);
    uint64_t* entries = allocator_->TableEntries(table);
    uint64_t* slot = &entries[TableIndex(va, current)];
    if (current == level) {
      return slot;
    }
    Pte entry = LoadEntry(slot);
    if (!entry.IsPresent()) {
      FrameId child = TryAllocPageTable(*allocator_);
      if (child == kInvalidFrame) {
        return nullptr;
      }
      Pte desired = Pte::Make(child, kPtePresent | kPteWritable | kPteUser);
      if (CasEntry(slot, entry, desired)) {
        entry = desired;
      } else {
        allocator_->DecRef(child);
      }
    }
    ODF_CHECK(!entry.IsHuge()) << "TryEnsureEntry descending through a huge mapping";
    table = entry.frame();
  }
  return nullptr;
}

FrameId Walker::FindTable(FrameId pgd, Vaddr va, PtLevel level, uint64_t** out_pmd_entry) {
  ODF_DCHECK(level != PtLevel::kPgd);
  PtLevel parent = static_cast<PtLevel>(static_cast<int>(level) - 1);
  uint64_t* slot = FindEntry(pgd, va, parent);
  if (slot == nullptr) {
    return kInvalidFrame;
  }
  Pte entry = LoadEntry(slot);
  if (!entry.IsPresent() || entry.IsHuge()) {
    return kInvalidFrame;
  }
  if (out_pmd_entry != nullptr) {
    *out_pmd_entry = slot;
  }
  return entry.frame();
}

}  // namespace odf
