#include "src/pt/walker.h"

#include "src/debug/debug.h"
#include "src/util/log.h"

namespace odf {

// A fresh table starts dedicated — exactly one address space references it — which is
// InitAllocatedFrame's initial state for page-table frames, so no counter write is
// needed here (and raw pt_share stores outside src/phys/ are a lint violation).
FrameId AllocPageTable(FrameAllocator& allocator) {
  return allocator.Allocate(kPageFlagPageTable);
}

FrameId TryAllocPageTable(FrameAllocator& allocator) {
  return allocator.TryAllocate(kPageFlagPageTable);
}

Translation Walker::Translate(FrameId pgd, Vaddr va, AccessType access) {
  Translation result;
  FrameId table = pgd;
  for (int l = 0; l < kPtLevels; ++l) {
    PtLevel level = static_cast<PtLevel>(l);
    uint64_t* entries = allocator_->TableEntries(table);
    uint64_t* slot = &entries[TableIndex(va, level)];
    Pte entry = LoadEntry(slot);
    result.fault_level = level;
    if (!entry.IsPresent()) {
      result.status = TranslateStatus::kNotPresent;
      return result;
    }
    if (access == AccessType::kWrite && !entry.IsWritable()) {
      // Hierarchical attribute: a cleared writable bit anywhere on the path blocks writes.
      result.status = TranslateStatus::kNotWritable;
      return result;
    }
    // Hardware sets the accessed bit on every level it traverses.
    if (!entry.IsAccessed()) {
      StoreEntry(slot, entry.WithFlag(kPteAccessed));
      entry = LoadEntry(slot);
    }
    if (level == PtLevel::kPmd && entry.IsHuge()) {
      if (access == AccessType::kWrite) {
        StoreEntry(slot, LoadEntry(slot).WithFlag(kPteDirty));
      }
      FrameId head = entry.frame();
      // Leaf invariants (huge/4k consistency): a huge PMD entry must reference a live
      // compound head — anything else means a split or free raced past the entry.
      ODF_VM_BUG_ON_PAGE((allocator_->GetMeta(head).flags & kPageFlagAllocated) == 0,
                         allocator_->GetMeta(head), head)
          << "huge PMD entry references a freed frame";
      ODF_VM_BUG_ON_PAGE(!allocator_->GetMeta(head).IsCompoundHead(),
                         allocator_->GetMeta(head), head)
          << "huge PMD entry references a non-compound-head frame";
      uint64_t offset = (va >> kPageShift) & ((1ULL << kHugePageOrder) - 1);
      result.status = TranslateStatus::kOk;
      result.frame = head + static_cast<FrameId>(offset);
      result.pte_table = kInvalidFrame;
      result.huge = true;
      return result;
    }
    if (level == PtLevel::kPte) {
      if (access == AccessType::kWrite) {
        StoreEntry(slot, LoadEntry(slot).WithFlag(kPteDirty));
      }
      FrameId frame = entry.frame();
      // Leaf invariants: a present PTE must reference an allocated, referenced data frame
      // (a shared PTE table's single reference counts — §3.6), never a table frame.
      ODF_VM_BUG_ON_PAGE((allocator_->GetMeta(frame).flags & kPageFlagAllocated) == 0,
                         allocator_->GetMeta(frame), frame)
          << "present PTE references a freed frame";
      ODF_VM_BUG_ON_PAGE(allocator_->GetMeta(frame).IsPageTable(),
                         allocator_->GetMeta(frame), frame)
          << "present PTE references a page-table frame";
      ODF_VM_BUG_ON_PAGE(
          allocator_->GetMeta(ResolveCompoundHead(allocator_->GetMeta(frame), frame))
                  .refcount.load(std::memory_order_relaxed) == 0,
          allocator_->GetMeta(frame), frame)
          << "present PTE references a zero-refcount frame";
      result.status = TranslateStatus::kOk;
      result.frame = frame;
      result.pte_table = table;
      return result;
    }
    result.pte_table = table;  // Will hold the PTE table once we reach the last level.
    table = entry.frame();
  }
  ODF_CHECK(false) << "unreachable walk state";
  return result;
}

uint64_t* Walker::FindEntry(FrameId pgd, Vaddr va, PtLevel level) {
  FrameId table = pgd;
  for (int l = 0; l < kPtLevels; ++l) {
    PtLevel current = static_cast<PtLevel>(l);
    uint64_t* entries = allocator_->TableEntries(table);
    uint64_t* slot = &entries[TableIndex(va, current)];
    if (current == level) {
      return slot;
    }
    Pte entry = LoadEntry(slot);
    if (!entry.IsPresent() || entry.IsHuge()) {
      return nullptr;
    }
    table = entry.frame();
  }
  return nullptr;
}

uint64_t* Walker::EnsureEntry(FrameId pgd, Vaddr va, PtLevel level) {
  FrameId table = pgd;
  for (int l = 0; l < kPtLevels; ++l) {
    PtLevel current = static_cast<PtLevel>(l);
    uint64_t* entries = allocator_->TableEntries(table);
    uint64_t* slot = &entries[TableIndex(va, current)];
    if (current == level) {
      return slot;
    }
    Pte entry = LoadEntry(slot);
    if (!entry.IsPresent()) {
      FrameId child = AllocPageTable(*allocator_);
      // Upper-level links are born writable; permission is enforced at the leaf (or revoked
      // at the PMD by on-demand-fork's write-protection).
      entry = Pte::Make(child, kPtePresent | kPteWritable | kPteUser);
      StoreEntry(slot, entry);
    }
    ODF_CHECK(!entry.IsHuge()) << "EnsureEntry descending through a huge mapping";
    table = entry.frame();
  }
  return nullptr;
}

uint64_t* Walker::TryEnsureEntry(FrameId pgd, Vaddr va, PtLevel level) {
  FrameId table = pgd;
  for (int l = 0; l < kPtLevels; ++l) {
    PtLevel current = static_cast<PtLevel>(l);
    uint64_t* entries = allocator_->TableEntries(table);
    uint64_t* slot = &entries[TableIndex(va, current)];
    if (current == level) {
      return slot;
    }
    Pte entry = LoadEntry(slot);
    if (!entry.IsPresent()) {
      FrameId child = TryAllocPageTable(*allocator_);
      if (child == kInvalidFrame) {
        return nullptr;
      }
      entry = Pte::Make(child, kPtePresent | kPteWritable | kPteUser);
      StoreEntry(slot, entry);
    }
    ODF_CHECK(!entry.IsHuge()) << "TryEnsureEntry descending through a huge mapping";
    table = entry.frame();
  }
  return nullptr;
}

FrameId Walker::FindTable(FrameId pgd, Vaddr va, PtLevel level, uint64_t** out_pmd_entry) {
  ODF_DCHECK(level != PtLevel::kPgd);
  PtLevel parent = static_cast<PtLevel>(static_cast<int>(level) - 1);
  uint64_t* slot = FindEntry(pgd, va, parent);
  if (slot == nullptr) {
    return kInvalidFrame;
  }
  Pte entry = LoadEntry(slot);
  if (!entry.IsPresent() || entry.IsHuge()) {
    return kInvalidFrame;
  }
  if (out_pmd_entry != nullptr) {
    *out_pmd_entry = slot;
  }
  return entry.frame();
}

}  // namespace odf
