// Software TLB: a small direct-mapped translation cache per address space.
//
// The simulator needs a TLB for two reasons. First, realism: fork and the PTE-table COW path
// must invalidate stale translations exactly where the kernel would flush the hardware TLB,
// and tests assert those flushes happen (a missing flush shows up as a stale-write bug).
// Second, throughput: application workloads stream through the software MMU, and the TLB
// keeps their common case at hash-lookup cost like real hardware would.
#ifndef ODF_SRC_PT_TLB_H_
#define ODF_SRC_PT_TLB_H_

#include <array>
#include <cstdint>

#include "src/pt/geometry.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace odf {

struct TlbEntry {
  uint64_t vpn = 0;          // Virtual page number (va >> kPageShift).
  uint64_t generation = 0;   // Must match the TLB's generation to be valid.
  FrameId frame = kInvalidFrame;
  bool writable = false;
  bool valid = false;
};

struct TlbStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t flushes = 0;
  uint64_t single_invalidations = 0;
};

class Tlb {
 public:
  static constexpr size_t kEntries = 1024;  // Power of two.

  // Looks up `va`; returns true and fills outputs on a hit that satisfies `want_write`.
  bool Lookup(Vaddr va, bool want_write, FrameId* frame_out) {
    const TlbEntry& entry = slots_[Index(va)];
    uint64_t vpn = va >> kPageShift;
    if (entry.valid && entry.generation == generation_ && entry.vpn == vpn &&
        (!want_write || entry.writable)) {
      ++stats_.hits;
      *frame_out = entry.frame;
      return true;
    }
    ++stats_.misses;
    return false;
  }

  void Insert(Vaddr va, FrameId frame, bool writable) {
    TlbEntry& entry = slots_[Index(va)];
    entry.vpn = va >> kPageShift;
    entry.generation = generation_;
    entry.frame = frame;
    entry.writable = writable;
    entry.valid = true;
  }

  // Invalidates the translation for one page (invlpg analog).
  void InvalidatePage(Vaddr va) {
    TlbEntry& entry = slots_[Index(va)];
    if (entry.valid && entry.vpn == (va >> kPageShift)) {
      entry.valid = false;
    }
    ++stats_.single_invalidations;
    CountVm(VmCounter::k_tlb_shootdowns);
  }

  // Invalidates a virtual range, page by page (bounded: falls back to a full flush when the
  // range is large, as kernels do).
  void InvalidateRange(Vaddr start, Vaddr end) {
    if ((end - start) / kPageSize > kEntries) {
      FlushAll();
      return;
    }
    for (Vaddr va = PageAlignDown(start); va < end; va += kPageSize) {
      InvalidatePage(va);
    }
  }

  // Full flush (CR3 reload analog) — O(1) via generation bump.
  void FlushAll() {
    ++generation_;
    ++stats_.flushes;
    CountVm(VmCounter::k_tlb_flushes);
    ODF_TRACE(tlb_flush, /*pid=*/0, generation_);
  }

  const TlbStats& stats() const { return stats_; }

 private:
  static size_t Index(Vaddr va) { return (va >> kPageShift) & (kEntries - 1); }

  std::array<TlbEntry, kEntries> slots_{};
  uint64_t generation_ = 1;
  TlbStats stats_;
};

}  // namespace odf

#endif  // ODF_SRC_PT_TLB_H_
