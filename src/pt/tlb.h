// Software TLB: a small direct-mapped translation cache per address space.
//
// The simulator needs a TLB for two reasons. First, realism: fork and the PTE-table COW path
// must invalidate stale translations exactly where the kernel would flush the hardware TLB,
// and tests assert those flushes happen (a missing flush shows up as a stale-write bug).
// Second, throughput: application workloads stream through the software MMU, and the TLB
// keeps their common case at hash-lookup cost like real hardware would.
//
// Concurrency: with sharded MM locking, faulting threads in disjoint 2 MiB shards hit this
// structure at once, and a direct-mapped slot can be shared by pages from different shards.
// Each slot is therefore a tiny seqlock — writers CAS the sequence odd, store the fields,
// publish even; readers snapshot and retry-free reject torn slots as misses. Stats are
// relaxed atomics.
//
// The TLB is also where the *batched TLB-shootdown generations* land: every invalidation
// API, besides dropping the software-TLB slots, bumps the covering MmLockTable shard
// generation(s) — one bump per shard per range op, not one per PTE. Those generations are
// what invalidate the per-thread TranslationCache and gate the lock-free read protocol, so
// every mutator must call InvalidatePage/InvalidateRange/FlushAll AFTER rewriting entries
// and BEFORE dropping the frame references they held (gen-before-free; see mm_locks.h).
#ifndef ODF_SRC_PT_TLB_H_
#define ODF_SRC_PT_TLB_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "src/pt/geometry.h"
#include "src/pt/mm_locks.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/relaxed_counter.h"

namespace odf {

struct TlbStats {
  util::RelaxedCounter hits;
  util::RelaxedCounter misses;
  util::RelaxedCounter flushes;
  util::RelaxedCounter single_invalidations;
};

class Tlb {
 public:
  static constexpr size_t kEntries = 1024;  // Power of two.

  // `locks` receives the shard-generation bumps for every invalidation; it outlives the
  // Tlb (both are AddressSpace members, locks declared first). nullptr detaches the TLB
  // from the generation plane — for standalone unit tests only.
  explicit Tlb(MmLockTable* locks = nullptr) : locks_(locks) {}

  // Looks up `va`; returns true and fills outputs on a hit that satisfies `want_write`.
  bool Lookup(Vaddr va, bool want_write, FrameId* frame_out) {
    Slot& slot = slots_[Index(va)];
    uint64_t vpn = va >> kPageShift;
    uint32_t seq_before = slot.seq.load(std::memory_order_acquire);
    if ((seq_before & 1) == 0) {
      uint64_t entry_vpn = slot.vpn.load(std::memory_order_relaxed);
      uint64_t entry_generation = slot.generation.load(std::memory_order_relaxed);
      FrameId entry_frame = slot.frame.load(std::memory_order_relaxed);
      uint32_t entry_flags = slot.flags.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) == seq_before &&
          (entry_flags & kSlotValid) != 0 &&
          entry_generation == generation_.load(std::memory_order_relaxed) &&
          entry_vpn == vpn && (!want_write || (entry_flags & kSlotWritable) != 0)) {
        ++stats_.hits;
        *frame_out = entry_frame;
        return true;
      }
    }
    ++stats_.misses;
    return false;
  }

  void Insert(Vaddr va, FrameId frame, bool writable) {
    Slot& slot = slots_[Index(va)];
    uint32_t seq = slot.seq.load(std::memory_order_relaxed);
    if ((seq & 1) != 0 ||
        !slot.seq.compare_exchange_strong(seq, seq + 1, std::memory_order_acquire)) {
      return;  // Another thread owns the slot right now; dropping an insert is benign.
    }
    slot.vpn.store(va >> kPageShift, std::memory_order_relaxed);
    slot.generation.store(generation_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    slot.frame.store(frame, std::memory_order_relaxed);
    slot.flags.store(kSlotValid | (writable ? kSlotWritable : 0u), std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);
  }

  // Fast-path hit accounting for the per-thread TranslationCache / lock-free walk (which
  // bypass Lookup but are logically translation-cache hits).
  void RecordHit() { ++stats_.hits; }

  // Invalidates the translation for one page (invlpg analog) and bumps the covering shard
  // generation. Call AFTER rewriting the entry, BEFORE dropping its frame reference.
  void InvalidatePage(Vaddr va) {
    Slot& slot = slots_[Index(va)];
    uint32_t seq = slot.seq.load(std::memory_order_relaxed);
    if ((seq & 1) == 0 &&
        slot.seq.compare_exchange_strong(seq, seq + 1, std::memory_order_acquire)) {
      if (slot.vpn.load(std::memory_order_relaxed) == (va >> kPageShift)) {
        slot.flags.store(0, std::memory_order_relaxed);
      }
      slot.seq.store(seq + 2, std::memory_order_release);
    }
    ++stats_.single_invalidations;
    CountVm(VmCounter::k_tlb_shootdowns);
    if (locks_ != nullptr) {
      locks_->BumpShard(va);
    }
  }

  // Invalidates a virtual range. Software-TLB slots are dropped page by page (bounded:
  // large ranges fall back to a full flush, as kernels do); the shard generations are
  // bumped ONCE per covered shard regardless of the page count — the batched shootdown.
  void InvalidateRange(Vaddr start, Vaddr end) {
    if ((end - start) / kPageSize > kEntries) {
      FlushAll();
      return;
    }
    for (Vaddr va = PageAlignDown(start); va < end; va += kPageSize) {
      InvalidatePageLocal(va);
    }
    if (locks_ != nullptr) {
      locks_->BumpRange(start, end);
    }
  }

  // Full flush (CR3 reload analog) — O(1) via generation bump; invalidates every shard.
  void FlushAll() {
    [[maybe_unused]] uint64_t generation =
        generation_.fetch_add(1, std::memory_order_relaxed) + 1;
    ++stats_.flushes;
    CountVm(VmCounter::k_tlb_flushes);
    ODF_TRACE(tlb_flush, /*pid=*/0, generation);
    if (locks_ != nullptr) {
      locks_->BumpAll();
    }
  }

  // By reference — callers hold it across operations and watch the counters move (the
  // fields are individually atomic, so concurrent bumps are well-defined).
  const TlbStats& stats() const { return stats_; }

 private:
  enum SlotFlag : uint32_t {
    kSlotValid = 1u << 0,
    kSlotWritable = 1u << 1,
  };

  struct Slot {
    std::atomic<uint32_t> seq{0};
    std::atomic<uint32_t> flags{0};
    std::atomic<uint64_t> vpn{0};
    std::atomic<uint64_t> generation{0};
    std::atomic<FrameId> frame{kInvalidFrame};
  };

  static size_t Index(Vaddr va) { return (va >> kPageShift) & (kEntries - 1); }

  // Slot drop without the shard-generation bump (InvalidateRange batches those).
  void InvalidatePageLocal(Vaddr va) {
    Slot& slot = slots_[Index(va)];
    uint32_t seq = slot.seq.load(std::memory_order_relaxed);
    if ((seq & 1) == 0 &&
        slot.seq.compare_exchange_strong(seq, seq + 1, std::memory_order_acquire)) {
      if (slot.vpn.load(std::memory_order_relaxed) == (va >> kPageShift)) {
        slot.flags.store(0, std::memory_order_relaxed);
      }
      slot.seq.store(seq + 2, std::memory_order_release);
    }
    ++stats_.single_invalidations;
    CountVm(VmCounter::k_tlb_shootdowns);
  }

  std::array<Slot, kEntries> slots_{};
  std::atomic<uint64_t> generation_{1};
  TlbStats stats_;
  MmLockTable* locks_;
};

}  // namespace odf

#endif  // ODF_SRC_PT_TLB_H_
