// Page-table entry encoding, bit-compatible in spirit with x86-64 (present / writable / user /
// accessed / dirty / PS bits, frame number in the address bits). Entries are plain uint64_t in
// the table frames; this header provides a typed value wrapper.
#ifndef ODF_SRC_PT_PTE_H_
#define ODF_SRC_PT_PTE_H_

#include <atomic>
#include <cstdint>

#include "src/phys/page_meta.h"

namespace odf {

// Entry bit layout (matching x86-64 semantics where it matters to the design):
//   bit 0  present
//   bit 1  writable      — the hierarchical attribute ODF clears at the PMD level (§3.2)
//   bit 2  user
//   bit 5  accessed      — set by the "CPU" (walker) on translation
//   bit 6  dirty         — set by the walker on write translation
//   bit 7  huge (PS)     — on PMD entries: entry maps a 2 MiB compound page directly
//   bits 12..43 frame id (we use dense FrameIds rather than physical addresses)
enum PteBit : uint64_t {
  kPtePresent = 1ULL << 0,
  kPteWritable = 1ULL << 1,
  kPteUser = 1ULL << 2,
  kPteAccessed = 1ULL << 5,
  kPteDirty = 1ULL << 6,
  kPteHuge = 1ULL << 7,
  // Software bit (ignored by the "hardware" walker because present=0): the entry is a swap
  // entry; the frame field holds the swap-slot id instead of a frame id.
  kPteSwap = 1ULL << 9,
  // Software bit (present=0): hwpoison marker, the is_hwpoison_entry() swap-entry analog.
  // The frame field keeps the poisoned frame id for diagnostics, but the marker carries NO
  // reference on it — the quarantine pin is the allocator's (src/mf, docs/memory-failure.md).
  // Any access faults with FaultResult::kHwPoison (the SIGBUS analog).
  kPteHwPoison = 1ULL << 10,
};

inline constexpr uint64_t kPteFrameShift = 12;
inline constexpr uint64_t kPteFlagsMask = (1ULL << kPteFrameShift) - 1;

class Pte {
 public:
  constexpr Pte() = default;
  constexpr explicit Pte(uint64_t raw) : raw_(raw) {}

  static constexpr Pte Make(FrameId frame, uint64_t flags) {
    return Pte((static_cast<uint64_t>(frame) << kPteFrameShift) | (flags & kPteFlagsMask));
  }

  constexpr uint64_t raw() const { return raw_; }
  constexpr bool IsPresent() const { return (raw_ & kPtePresent) != 0; }
  constexpr bool IsWritable() const { return (raw_ & kPteWritable) != 0; }
  constexpr bool IsUser() const { return (raw_ & kPteUser) != 0; }
  constexpr bool IsAccessed() const { return (raw_ & kPteAccessed) != 0; }
  constexpr bool IsDirty() const { return (raw_ & kPteDirty) != 0; }
  constexpr bool IsHuge() const { return (raw_ & kPteHuge) != 0; }
  constexpr bool IsSwap() const { return !IsPresent() && (raw_ & kPteSwap) != 0; }
  constexpr bool IsHwPoison() const { return !IsPresent() && (raw_ & kPteHwPoison) != 0; }
  constexpr bool IsNone() const { return raw_ == 0; }

  // For swap entries, the frame field carries the swap-slot id.
  constexpr uint64_t swap_slot() const { return raw_ >> kPteFrameShift; }
  static constexpr Pte MakeSwap(uint64_t slot) {
    return Pte((slot << kPteFrameShift) | kPteSwap);
  }

  // Poison marker: non-present, refcount-free tombstone remembering which frame died here.
  static constexpr Pte MakeHwPoison(FrameId frame) {
    return Pte((static_cast<uint64_t>(frame) << kPteFrameShift) | kPteHwPoison);
  }

  constexpr FrameId frame() const { return static_cast<FrameId>(raw_ >> kPteFrameShift); }
  constexpr uint64_t flags() const { return raw_ & kPteFlagsMask; }

  constexpr Pte WithFlag(uint64_t flag) const { return Pte(raw_ | flag); }
  constexpr Pte WithoutFlag(uint64_t flag) const { return Pte(raw_ & ~flag); }
  constexpr Pte WithFrame(FrameId frame) const {
    return Pte((raw_ & kPteFlagsMask) | (static_cast<uint64_t>(frame) << kPteFrameShift));
  }

  constexpr bool operator==(const Pte&) const = default;

 private:
  uint64_t raw_ = 0;
};

// Entry words live in table frames and can be read by one sharing process while another
// modifies them under the table's split lock (exactly the situation hardware handles with
// cache coherence). atomic_ref makes this well-defined C++ at zero cost on x86.
//
// Ordering: stores are release and loads are acquire so that a lock-free reader (the
// epoch-guarded walk in Process::AccessMemory) that observes a present entry also observes
// the initialized contents of the table or data frame it points to. On x86 both compile to
// the same plain MOVs the previous relaxed pair did.
inline Pte LoadEntry(const uint64_t* slot) {
  return Pte(std::atomic_ref<const uint64_t>(*slot).load(std::memory_order_acquire));
}

inline void StoreEntry(uint64_t* slot, Pte value) {
  std::atomic_ref<uint64_t>(*slot).store(value.raw(), std::memory_order_release);
}

// Compare-and-swap publication for racy install points (intermediate-table links, where two
// faulting threads in disjoint shards of the same address space may race to populate one
// shared PGD/PUD slot). On success `expected` is untouched; on failure it receives the
// entry the slot actually holds.
inline bool CasEntry(uint64_t* slot, Pte& expected, Pte desired) {
  uint64_t raw = expected.raw();
  bool won = std::atomic_ref<uint64_t>(*slot).compare_exchange_strong(
      raw, desired.raw(), std::memory_order_acq_rel, std::memory_order_acquire);
  if (!won) {
    expected = Pte(raw);
  }
  return won;
}

// Monotonic flag set (accessed/dirty harvesting by the walker). A blind store of a stale
// snapshot could revert a concurrent COW install; fetch_or only ever adds the bit.
inline Pte SetEntryFlags(uint64_t* slot, uint64_t flags) {
  uint64_t previous =
      std::atomic_ref<uint64_t>(*slot).fetch_or(flags, std::memory_order_acq_rel);
  return Pte(previous | flags);
}

// Accessed-bit harvest for page aging (the test-and-clear of PTE.A that second-chance /
// LRU scanning is built on). Atomic against the walker re-setting the bit concurrently;
// returns true when the bit was set. Clearing A on a present entry is NOT a structural
// mutation — sharers at worst take a spurious TLB-miss re-walk.
inline bool TestAndClearAccessed(uint64_t* slot) {
  uint64_t previous = std::atomic_ref<uint64_t>(*slot).fetch_and(
      ~static_cast<uint64_t>(kPteAccessed), std::memory_order_relaxed);
  return (previous & kPteAccessed) != 0;
}

}  // namespace odf

#endif  // ODF_SRC_PT_PTE_H_
