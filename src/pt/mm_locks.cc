#include "src/pt/mm_locks.h"

#include <algorithm>
#include <thread>

#include "src/debug/debug.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace odf {

namespace {

debug::LockClass g_as_shard_lock_class("mm::AsShard");
debug::LockClass g_pt_epoch_retire_lock_class("mm::PtEpochRetire");

LatencyHistogram& MmLockWaitHistogram() {
  static LatencyHistogram& histogram =
      MetricsRegistry::Global().RegisterHistogram("mm_lock_wait");
  return histogram;
}

// TLS write-reentrancy frames for MmLockTable::WriteScope: AddressSpace ops nest
// (Remap -> Unmap) on the same gate, and BravoGate's exclusive side is not reentrant.
struct WriteHold {
  const MmLockTable* table = nullptr;
  int depth = 0;
};
constexpr int kMaxWriteHolds = 8;
thread_local WriteHold t_write_holds[kMaxWriteHolds];

}  // namespace

debug::LockClass& AsShardLockClass() { return g_as_shard_lock_class; }

void NoteMmLockWait([[maybe_unused]] uint64_t kind, uint64_t wait_ns) {
  // `kind` is traced only — ODF_TRACE compiles out in no-trace builds.
  CountVm(VmCounter::k_lock_contended);
  ODF_TRACE(lock_contended, /*pid=*/0, kind, wait_ns);
  ODF_TRACE(lock_wait, /*pid=*/0, kind, wait_ns);
  MmLockWaitHistogram().RecordNanos(wait_ns);
}

MmLockTable::MmLockTable() {
  static std::atomic<uint64_t> next_as_id{1};
  as_id_ = next_as_id.fetch_add(1, std::memory_order_relaxed);
  // Eager registration: the mm_lock_wait histogram must appear in FormatVmstat and the
  // BENCH_*.json sidecars even for runs that never contend (count 0 is the data point).
  MmLockWaitHistogram();
}

void MmLockTable::BumpRange(Vaddr start, Vaddr end) {
  if (end <= start) {
    return;
  }
  uint64_t first = start >> (kPageShift + kHugePageOrder);
  uint64_t last = (end - 1) >> (kPageShift + kHugePageOrder);
  if (last - first >= static_cast<uint64_t>(kShards) - 1) {
    BumpAll();
    return;
  }
  for (uint64_t chunk = first; chunk <= last; ++chunk) {
    shards_[chunk & (kShards - 1)].gen.fetch_add(1, std::memory_order_seq_cst);
  }
}

void MmLockTable::BumpAll() {
  for (Shard& shard : shards_) {
    shard.gen.fetch_add(1, std::memory_order_seq_cst);
  }
}

MmLockTable::WriteScope::WriteScope(MmLockTable& table) : table_(table) {
  WriteHold* free_hold = nullptr;
  for (WriteHold& hold : t_write_holds) {
    if (hold.table == &table) {
      ++hold.depth;
      return;  // Reentrant nesting; the outer scope owns the gate.
    }
    if (hold.table == nullptr && free_hold == nullptr) {
      free_hold = &hold;
    }
  }
  ODF_CHECK(free_hold != nullptr) << "AS write-gate TLS hold stack exhausted";
  uint64_t wait_ns = table.gate_.LockExclusive();
  free_hold->table = &table;
  free_hold->depth = 1;
  owner_ = true;
  if (wait_ns > 1000) {
    NoteMmLockWait(/*kind=*/3, wait_ns);
  }
}

MmLockTable::WriteScope::~WriteScope() {
  for (WriteHold& hold : t_write_holds) {
    if (hold.table == &table_) {
      if (--hold.depth == 0) {
        hold.table = nullptr;
        ODF_DCHECK(owner_);
        table_.gate_.UnlockExclusive();
      }
      return;
    }
  }
  ODF_CHECK(false) << "AS write-gate release without a matching TLS hold";
}

PtEpoch& PtEpoch::Global() {
  static PtEpoch epoch;
  return epoch;
}

std::atomic<uint64_t>* PtEpoch::ClaimThreadSlot() {
  struct ThreadSlot {
    std::atomic<uint64_t>* epoch = nullptr;
    std::atomic<bool>* claimed = nullptr;
    ~ThreadSlot() {
      if (claimed != nullptr) {
        epoch->store(0, std::memory_order_release);
        claimed->store(false, std::memory_order_release);
      }
    }
  };
  thread_local ThreadSlot t_slot = [this] {
    ThreadSlot slot;
    for (ReaderSlot& candidate : slots_) {
      bool expected = false;
      if (candidate.claimed.compare_exchange_strong(expected, true,
                                                    std::memory_order_acq_rel)) {
        slot.epoch = &candidate.epoch;
        slot.claimed = &candidate.claimed;
        break;
      }
    }
    return slot;  // epoch == nullptr when all slots are taken: caller uses the slow path.
  }();
  return t_slot.epoch;
}

PtEpoch::ReadGuard::ReadGuard() : slot_(Global().ClaimThreadSlot()) {
  if (slot_ == nullptr) {
    return;
  }
  // Publish the entry epoch, then revalidate: if the global epoch advanced between the
  // load and the publication, a concurrent Drain may already have scanned this slot as
  // idle, so re-publish at the newer epoch (at which point any table retired under the
  // older epoch is guaranteed unreachable from a fresh walk).
  PtEpoch& global = Global();
  uint64_t entered = global.epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot_->store(entered, std::memory_order_seq_cst);
    uint64_t now = global.epoch_.load(std::memory_order_seq_cst);
    if (now == entered) {
      break;
    }
    entered = now;
  }
}

PtEpoch::ReadGuard::~ReadGuard() {
  if (slot_ != nullptr) {
    slot_->store(0, std::memory_order_release);
  }
}

void PtEpoch::Retire(FrameAllocator* allocator, FrameId table) {
  uint64_t tag;
  {
    debug::MutexGuard guard(retire_mu_, g_pt_epoch_retire_lock_class);
    tag = epoch_.load(std::memory_order_relaxed);
    retired_.push_back({allocator, table, tag});
  }
  // Bump AFTER linking the entry: readers that entered at `tag` or earlier hold the grace
  // period open; readers entering at tag+1 can no longer reach the (already unlinked) table.
  epoch_.fetch_add(1, std::memory_order_seq_cst);
}

void PtEpoch::Drain() {
  {
    debug::MutexGuard guard(retire_mu_, g_pt_epoch_retire_lock_class);
    if (retired_.empty()) {
      return;
    }
  }
  for (;;) {
    uint64_t min_active = UINT64_MAX;
    for (ReaderSlot& slot : slots_) {
      uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e != 0) {
        min_active = std::min(min_active, e);
      }
    }
    std::vector<RetiredTable> free_now;
    {
      debug::MutexGuard guard(retire_mu_, g_pt_epoch_retire_lock_class);
      auto keep = retired_.begin();
      for (auto it = retired_.begin(); it != retired_.end(); ++it) {
        if (it->tag < min_active) {
          free_now.push_back(*it);
        } else {
          *keep++ = *it;
        }
      }
      retired_.erase(keep, retired_.end());
    }
    for (const RetiredTable& entry : free_now) {
      entry.allocator->DecRef(entry.table);
    }
    {
      debug::MutexGuard guard(retire_mu_, g_pt_epoch_retire_lock_class);
      if (retired_.empty()) {
        return;
      }
    }
    // A reader that entered before the oldest retire is still inside its (lock-free,
    // bounded) section; epoch sections never block, so this terminates.
    std::this_thread::yield();
  }
}

}  // namespace odf
