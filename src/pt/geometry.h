// Virtual-address geometry for the 4-level, 48-bit paging structure (Linux's default on
// x86-64: PGD -> PUD -> PMD -> PTE table, 512 entries each).
#ifndef ODF_SRC_PT_GEOMETRY_H_
#define ODF_SRC_PT_GEOMETRY_H_

#include <cstdint>

#include "src/phys/page_meta.h"

namespace odf {

using Vaddr = uint64_t;

inline constexpr uint64_t kTableEntryBits = 9;
inline constexpr uint64_t kEntriesPerTable = 1ULL << kTableEntryBits;  // 512

// Paging levels, ordered from the root. kPte is the last level — the one ODF shares.
enum class PtLevel : int {
  kPgd = 0,
  kPud = 1,
  kPmd = 2,
  kPte = 3,
};
inline constexpr int kPtLevels = 4;

// Shift of the address range covered by ONE ENTRY at each level.
//   PGD entry: 512 GiB, PUD entry: 1 GiB, PMD entry: 2 MiB, PTE entry: 4 KiB.
constexpr uint64_t EntryShift(PtLevel level) {
  return kPageShift + kTableEntryBits * static_cast<uint64_t>(kPtLevels - 1 -
                                                              static_cast<int>(level));
}

constexpr uint64_t EntrySpan(PtLevel level) { return 1ULL << EntryShift(level); }

// Index of `va` into the table at `level`.
constexpr uint64_t TableIndex(Vaddr va, PtLevel level) {
  return (va >> EntryShift(level)) & (kEntriesPerTable - 1);
}

// Start of the region covered by the entry containing `va` at `level`.
constexpr Vaddr EntryBase(Vaddr va, PtLevel level) { return va & ~(EntrySpan(level) - 1); }

constexpr PtLevel NextLevel(PtLevel level) { return static_cast<PtLevel>(static_cast<int>(level) + 1); }

// Highest user virtual address + 1 (47-bit user half, like x86-64 Linux).
inline constexpr Vaddr kUserAddressSpaceEnd = 1ULL << 47;

constexpr Vaddr PageAlignDown(Vaddr va) { return va & ~(kPageSize - 1); }
constexpr Vaddr PageAlignUp(Vaddr va) { return (va + kPageSize - 1) & ~(kPageSize - 1); }
constexpr bool IsPageAligned(Vaddr va) { return (va & (kPageSize - 1)) == 0; }
constexpr bool IsHugeAligned(Vaddr va) { return (va & (kHugePageSize - 1)) == 0; }

// The 2 MiB region covered by one PTE table (the unit of on-demand copying, paper §3.1).
inline constexpr uint64_t kPteTableSpan = EntrySpan(PtLevel::kPmd);

}  // namespace odf

#endif  // ODF_SRC_PT_GEOMETRY_H_
