// Sharded address-space locking, page-table QSBR, and the per-thread translation cache.
//
// This is the lock plane behind the "shatter the global MM locks" refactor (ROADMAP item 1):
//
//   MmLockTable   one per AddressSpace — a BRAVO reader/writer gate for whole-AS operations
//                 (range ops, fork, teardown take it exclusive; fault slow paths take it
//                 shared) plus 64 range shards, each a 2 MiB-granular mutex and a shard
//                 *generation* counter. Faults in disjoint shards never contend; a range
//                 op bumps each covered shard generation ONCE (the batched TLB-shootdown
//                 generation) instead of flushing per PTE.
//
//   PtEpoch       a quiescent-state epoch (QSBR) for page-table frames. Lock-free readers
//                 enter a read section around a table walk; mutators that free a PUBLISHED
//                 table Retire() it instead of DecRef'ing directly, and Drain() at the end
//                 of the range op waits for the grace period and performs the deferred
//                 frees. Unpublished spares (Dedicate* losers) still DecRef directly.
//
//   TranslationCache  a per-thread map of (as id, vpn) -> frame, validated by the covering
//                 shard generation. The hit path is entirely lock-free: probe, pin the
//                 frame's refcount, recheck the generation, copy.
//
// Lock order (documented in docs/debugging.md): MutationScope -> AS gate -> shard mutex
// (fault path only, exactly one) -> reclaim::MmGate shared -> split locks / rmap /
// allocator / LRU. The generation protocol's one load-bearing invariant: a mutator bumps
// the covered shard generation AFTER rewriting entries and BEFORE dropping the frame
// references those entries held ("gen before free"), so a reader whose pin precedes its
// successful generation recheck can never hold a stale frame.
#ifndef ODF_SRC_PT_MM_LOCKS_H_
#define ODF_SRC_PT_MM_LOCKS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/debug/lockdep.h"
#include "src/phys/frame_allocator.h"
#include "src/pt/geometry.h"
#include "src/util/bravo_gate.h"

namespace odf {

// Lockdep class shared by all 64 shard mutexes of every address space. Exposed so the
// lockdep death test can drive a shard-vs-shard inversion without building two real ASes.
debug::LockClass& AsShardLockClass();

// Records a blocked MM-lock acquisition in the contention observability surface:
// the `lock_contended` vmstat counter, the `lock_contended`/`lock_wait` tracepoints, and
// the `mm_lock_wait` latency histogram (all of which land in FormatVmstat and the
// BENCH_*.json sidecars). `kind` is a small site discriminator carried in the trace args:
// 0 = MmGate reader, 1 = MmGate writer, 2 = AS-gate reader, 3 = AS-gate writer.
void NoteMmLockWait(uint64_t kind, uint64_t wait_ns);

class MmLockTable {
 public:
  static constexpr int kShards = 64;

  MmLockTable();
  MmLockTable(const MmLockTable&) = delete;
  MmLockTable& operator=(const MmLockTable&) = delete;

  // Monotonic, never-reused id for this address space; keys the per-thread translation
  // cache so entries from a destroyed AS can never validate.
  uint64_t as_id() const { return as_id_; }

  static int ShardOf(Vaddr va) {
    return static_cast<int>((va >> (kPageShift + kHugePageOrder)) & (kShards - 1));
  }

  uint64_t ShardGen(Vaddr va) const {
    return shards_[ShardOf(va)].gen.load(std::memory_order_seq_cst);
  }

  // Mutator-side generation bumps (the batched shootdown). Callers must respect
  // gen-before-free: entries already rewritten, frame references not yet dropped.
  void BumpShard(Vaddr va) {
    shards_[ShardOf(va)].gen.fetch_add(1, std::memory_order_seq_cst);
  }
  // One bump per covered shard, however many pages the range spans.
  void BumpRange(Vaddr start, Vaddr end);
  void BumpAll();

  // Whole-AS reader (fault slow path). Fast-path cost: one padded fetch_add + one load.
  class ReadScope {
   public:
    explicit ReadScope(MmLockTable& table) : table_(table), token_(table.gate_.LockShared()) {
      if (token_.wait_ns != 0) {
        NoteMmLockWait(/*kind=*/2, token_.wait_ns);
      }
    }
    ReadScope(const ReadScope&) = delete;
    ReadScope& operator=(const ReadScope&) = delete;
    ~ReadScope() { table_.gate_.UnlockShared(token_); }

   private:
    MmLockTable& table_;
    util::BravoGate::ReadToken token_;
  };

  // Whole-AS writer (range ops, fork source, mapping changes). Reentrant on the same
  // thread for the same table (Remap -> Unmap), tracked in a small TLS frame stack.
  class WriteScope {
   public:
    explicit WriteScope(MmLockTable& table);
    WriteScope(const WriteScope&) = delete;
    WriteScope& operator=(const WriteScope&) = delete;
    ~WriteScope();

   private:
    MmLockTable& table_;
    bool owner_ = false;  // False when this scope is a reentrant nesting.
  };

  // One shard's mutex, lockdep-tracked. The fault slow path holds exactly one.
  class ShardScope {
   public:
    ShardScope(MmLockTable& table, Vaddr va)
        : guard_(table.shards_[ShardOf(va)].mu, AsShardLockClass()) {}
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    debug::MutexGuard guard_;
  };

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::atomic<uint64_t> gen{1};
  };

  util::BravoGate gate_;
  uint64_t as_id_;
  Shard shards_[kShards];
};

// Quiescent-state epoch reclamation for published page-table frames. Global: shared ODF
// tables are reachable from several address spaces, and one retire list is simplest.
class PtEpoch {
 public:
  static PtEpoch& Global();

  // A lock-free read section. The section must stay lock-free (walk + refcount pin only,
  // no blocking) so Drain()'s grace wait terminates. `ok()` is false when the thread-slot
  // table is exhausted (hundreds of concurrent reader threads) — callers then skip the
  // lock-free path and fault through the locked slow path instead.
  class ReadGuard {
   public:
    ReadGuard();
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard();

    bool ok() const { return slot_ != nullptr; }

   private:
    std::atomic<uint64_t>* slot_;
  };

  // Defers `allocator->DecRef(table)` until every reader that might have entered before
  // now has exited. Only for tables that were PUBLISHED (linked into a live tree).
  void Retire(FrameAllocator* allocator, FrameId table);

  // Waits out the grace period and performs all deferred frees. Called at the end of every
  // operation that retired tables, while the caller still excludes new structural mutators;
  // afterwards FrameAllocator::AllFree()-style accounting is exact again. Must not be
  // called from inside a ReadGuard.
  void Drain();

 private:
  static constexpr int kMaxReaderSlots = 256;

  struct RetiredTable {
    FrameAllocator* allocator;
    FrameId table;
    uint64_t tag;
  };

  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> epoch{0};  // 0 = idle.
    std::atomic<bool> claimed{false};
  };

  friend class ReadGuard;
  std::atomic<uint64_t>* ClaimThreadSlot();

  std::atomic<uint64_t> epoch_{1};
  ReaderSlot slots_[kMaxReaderSlots];
  std::mutex retire_mu_;
  std::vector<RetiredTable> retired_;
};

// Per-thread translation cache: the L0 in front of the per-AS software TLB. Entries are
// validated by (as id, vpn, shard generation); a hit costs a probe, a refcount pin, and a
// generation recheck — no locks, no shared cache lines.
struct TransCacheEntry {
  uint64_t as_id = 0;  // 0 = empty slot.
  uint64_t vpn = 0;
  uint64_t gen = 0;            // Covering shard generation when inserted.
  FrameId frame = kInvalidFrame;  // Leaf data frame (tail-resolved for huge mappings).
  FrameId pin = kInvalidFrame;    // Frame carrying the refcount (compound head).
  bool write_ok = false;  // True only when inserted by a WRITE access (dirty bit already set).
};

class TranslationCache {
 public:
  static constexpr size_t kEntries = 256;

  // Returns this thread's slot for (as_id, vpn); the caller checks the tags.
  static TransCacheEntry& SlotFor(uint64_t as_id, uint64_t vpn) {
    thread_local TransCacheEntry entries[kEntries];
    size_t index = (vpn ^ (as_id * 0x9E3779B97F4A7C15ull)) & (kEntries - 1);
    return entries[index];
  }
};

}  // namespace odf

#endif  // ODF_SRC_PT_MM_LOCKS_H_
