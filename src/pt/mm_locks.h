// Sharded address-space locking, page-table QSBR, and the per-thread translation cache.
//
// This is the lock plane behind the "shatter the global MM locks" refactor (ROADMAP item 1):
//
//   MmLockTable   one per AddressSpace — a BRAVO reader/writer gate for whole-AS operations
//                 (range ops, fork, teardown take it exclusive; fault slow paths take it
//                 shared) plus 64 range shards, each a 2 MiB-granular mutex and a shard
//                 *generation* counter. Faults in disjoint shards never contend; a range
//                 op bumps each covered shard generation ONCE (the batched TLB-shootdown
//                 generation) instead of flushing per PTE.
//
//   PtEpoch       a quiescent-state epoch (QSBR) for page-table frames. Lock-free readers
//                 enter a read section around a table walk; mutators that free a PUBLISHED
//                 table Retire() it instead of DecRef'ing directly, and Drain() at the end
//                 of the range op waits for the grace period and performs the deferred
//                 frees. Unpublished spares (Dedicate* losers) still DecRef directly.
//
//   TranslationCache  a per-thread map of (as id, vpn) -> frame, validated by the covering
//                 shard generation. The hit path is entirely lock-free: probe, pin the
//                 frame's refcount, recheck the generation, copy.
//
// Lock order (documented in docs/debugging.md): MutationScope -> AS gate -> shard mutex
// (fault path only, exactly one) -> reclaim::MmGate shared -> split locks / rmap /
// allocator / LRU. The generation protocol's one load-bearing invariant: a mutator bumps
// the covered shard generation AFTER rewriting entries and BEFORE dropping the frame
// references those entries held ("gen before free"), so a reader whose pin precedes its
// successful generation recheck can never hold a stale frame.
#ifndef ODF_SRC_PT_MM_LOCKS_H_
#define ODF_SRC_PT_MM_LOCKS_H_

#include <atomic>
#include <cstdint>
#include <source_location>
#include <vector>

#include "src/debug/lockdep.h"
#include "src/phys/frame_allocator.h"
#include "src/pt/geometry.h"
#include "src/util/bravo_gate.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace odf {

// Lockdep class shared by all 64 shard mutexes of every address space. Exposed so the
// lockdep death test can drive a shard-vs-shard inversion without building two real ASes.
debug::LockClass& AsShardLockClass();

// Records a blocked MM-lock acquisition in the contention observability surface:
// the `lock_contended` vmstat counter, the `lock_contended`/`lock_wait` tracepoints, and
// the `mm_lock_wait` latency histogram (all of which land in FormatVmstat and the
// BENCH_*.json sidecars). `kind` is a small site discriminator carried in the trace args:
// 0 = MmGate reader, 1 = MmGate writer, 2 = AS-gate reader, 3 = AS-gate writer.
void NoteMmLockWait(uint64_t kind, uint64_t wait_ns);

// The whole-AS gate is itself a capability ("as_gate"): ReadScope/WriteScope below carry
// the acquire/release contracts, and mutation entry points declare ODF_REQUIRES(table) /
// ODF_REQUIRES_SHARED(table) so that calling them without the right scope in sight is a
// compile error under -Wthread-safety.
class ODF_CAPABILITY("as_gate") MmLockTable {
 public:
  static constexpr int kShards = 64;

  // The static stand-in for the 64 shard mutexes. The analysis cannot model a
  // dynamically-indexed lock array, so all shards of a table are ONE fictional
  // capability: ShardScope acquires `shard_cap`, and functions that assume "the covering
  // shard is held" declare ODF_REQUIRES(table.shard_cap). The fiction is *stricter* than
  // the runtime in exactly one way — holding two shards at once becomes a compile-time
  // double-acquire — which matches the discipline (and lockdep's same-class-nesting
  // abort): the fault path holds exactly one shard, ever.
  class ODF_CAPABILITY("shard") ShardCapability {};

  MmLockTable();
  MmLockTable(const MmLockTable&) = delete;
  MmLockTable& operator=(const MmLockTable&) = delete;

  // Monotonic, never-reused id for this address space; keys the per-thread translation
  // cache so entries from a destroyed AS can never validate.
  uint64_t as_id() const { return as_id_; }

  static int ShardOf(Vaddr va) {
    return static_cast<int>((va >> (kPageShift + kHugePageOrder)) & (kShards - 1));
  }

  uint64_t ShardGen(Vaddr va) const {
    return shards_[ShardOf(va)].gen.load(std::memory_order_seq_cst);
  }

  // Mutator-side generation bumps (the batched shootdown). Callers must respect
  // gen-before-free: entries already rewritten, frame references not yet dropped.
  void BumpShard(Vaddr va) {
    shards_[ShardOf(va)].gen.fetch_add(1, std::memory_order_seq_cst);
  }
  // One bump per covered shard, however many pages the range spans.
  void BumpRange(Vaddr start, Vaddr end);
  void BumpAll();

  // Whole-AS reader (fault slow path). Fast-path cost: one padded fetch_add + one load.
  // The BravoGate token protocol underneath is below the analysis (like std::atomic);
  // this scope carries the shared-capability contract for it.
  class ODF_SCOPED_CAPABILITY ReadScope {
   public:
    explicit ReadScope(MmLockTable& table) ODF_ACQUIRE_SHARED(table)
        : table_(table), token_(table.gate_.LockShared()) {
      if (token_.wait_ns != 0) {
        NoteMmLockWait(/*kind=*/2, token_.wait_ns);
      }
    }
    ReadScope(const ReadScope&) = delete;
    ReadScope& operator=(const ReadScope&) = delete;
    ~ReadScope() ODF_RELEASE_GENERIC() { table_.gate_.UnlockShared(token_); }

   private:
    MmLockTable& table_;
    util::BravoGate::ReadToken token_;
  };

  // Whole-AS writer (range ops, fork source, mapping changes). Reentrant on the same
  // thread for the same table (Remap -> Unmap), tracked in a small TLS frame stack; the
  // reentrancy is cross-function (Remap holds, calls Unmap which opens its own scope),
  // which the intraprocedural analysis never sees, so no opt-out is needed here.
  class ODF_SCOPED_CAPABILITY WriteScope {
   public:
    explicit WriteScope(MmLockTable& table) ODF_ACQUIRE(table);
    WriteScope(const WriteScope&) = delete;
    WriteScope& operator=(const WriteScope&) = delete;
    ~WriteScope() ODF_RELEASE();

   private:
    MmLockTable& table_;
    bool owner_ = false;  // False when this scope is a reentrant nesting.
  };

  // One shard's mutex, lockdep-tracked. The fault slow path holds exactly one. Runtime
  // locks shards_[ShardOf(va)].mu; the analysis is told about the `shard_cap` fiction
  // instead (see ShardCapability), so the ctor/dtor bodies are necessarily opted out —
  // allowlist entries 1+2 of ≤5 (docs/debugging.md).
  class ODF_SCOPED_CAPABILITY ShardScope {
   public:
    ShardScope(MmLockTable& table, Vaddr va,
               const std::source_location& loc = std::source_location::current())
        ODF_ACQUIRE(table.shard_cap) ODF_NO_THREAD_SAFETY_ANALYSIS
        : mu_(table.shards_[ShardOf(va)].mu) {
      debug::LockAcquired(AsShardLockClass(), loc.file_name(), loc.line());
      mu_.lock();  // odf-lint: allow(naked-lock) — this IS the scoped guard.
    }
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;
    ~ShardScope() ODF_RELEASE() ODF_NO_THREAD_SAFETY_ANALYSIS {
      mu_.unlock();  // odf-lint: allow(naked-lock) — this IS the scoped guard.
      debug::LockReleased(AsShardLockClass());
    }

   private:
    util::Mutex& mu_;
  };

  // All 64 shard mutexes as one static capability — see ShardCapability.
  ShardCapability shard_cap;

 private:
  struct alignas(64) Shard {
    util::Mutex mu;
    std::atomic<uint64_t> gen{1};
  };

  util::BravoGate gate_;
  uint64_t as_id_;
  Shard shards_[kShards];
};

// Quiescent-state epoch reclamation for published page-table frames. Global: shared ODF
// tables are reachable from several address spaces, and one retire list is simplest.
//
// The epoch is a capability ("epoch", always via PtEpoch::Global() in attribute
// expressions): ReadGuard acquires it shared, Walker::TranslateLockFree requires it
// shared, and Drain() excludes it — "lock-free walk outside a read section" and "drain
// from inside a read section" are both compile errors under -Wthread-safety.
class ODF_CAPABILITY("epoch") PtEpoch {
 public:
  static PtEpoch& Global();

  // A lock-free read section. The section must stay lock-free (walk + refcount pin only,
  // no blocking) so Drain()'s grace wait terminates. `ok()` is false when the thread-slot
  // table is exhausted (hundreds of concurrent reader threads) — callers then skip the
  // lock-free path and fault through the locked slow path instead. (The analysis treats
  // the section as entered either way — slot exhaustion only *widens* the guard, it never
  // lets a walk escape it; the odf_lint lockfree-walk-guard rule covers the scoping.)
  class ODF_SCOPED_CAPABILITY ReadGuard {
   public:
    ReadGuard() ODF_ACQUIRE_SHARED(Global());
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() ODF_RELEASE_GENERIC();

    bool ok() const { return slot_ != nullptr; }

   private:
    std::atomic<uint64_t>* slot_;
  };

  // Defers `allocator->DecRef(table)` until every reader that might have entered before
  // now has exited. Only for tables that were PUBLISHED (linked into a live tree).
  void Retire(FrameAllocator* allocator, FrameId table);

  // Waits out the grace period and performs all deferred frees. Called at the end of every
  // operation that retired tables, while the caller still excludes new structural mutators;
  // afterwards FrameAllocator::AllFree()-style accounting is exact again. Must not be
  // called from inside a ReadGuard (statically enforced: excludes the epoch capability).
  void Drain() ODF_EXCLUDES(Global());

 private:
  static constexpr int kMaxReaderSlots = 256;

  struct RetiredTable {
    FrameAllocator* allocator;
    FrameId table;
    uint64_t tag;
  };

  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> epoch{0};  // 0 = idle.
    std::atomic<bool> claimed{false};
  };

  friend class ReadGuard;
  std::atomic<uint64_t>* ClaimThreadSlot();

  std::atomic<uint64_t> epoch_{1};
  ReaderSlot slots_[kMaxReaderSlots];
  util::Mutex retire_mu_;
  std::vector<RetiredTable> retired_ ODF_GUARDED_BY(retire_mu_);
};

// Per-thread translation cache: the L0 in front of the per-AS software TLB. Entries are
// validated by (as id, vpn, shard generation); a hit costs a probe, a refcount pin, and a
// generation recheck — no locks, no shared cache lines.
struct TransCacheEntry {
  uint64_t as_id = 0;  // 0 = empty slot.
  uint64_t vpn = 0;
  uint64_t gen = 0;            // Covering shard generation when inserted.
  FrameId frame = kInvalidFrame;  // Leaf data frame (tail-resolved for huge mappings).
  FrameId pin = kInvalidFrame;    // Frame carrying the refcount (compound head).
  bool write_ok = false;  // True only when inserted by a WRITE access (dirty bit already set).
};

class TranslationCache {
 public:
  static constexpr size_t kEntries = 256;

  // Returns this thread's slot for (as_id, vpn); the caller checks the tags.
  static TransCacheEntry& SlotFor(uint64_t as_id, uint64_t vpn) {
    thread_local TransCacheEntry entries[kEntries];
    size_t index = (vpn ^ (as_id * 0x9E3779B97F4A7C15ull)) & (kEntries - 1);
    return entries[index];
  }
};

}  // namespace odf

#endif  // ODF_SRC_PT_MM_LOCKS_H_
