// Software MMU: page-table walking for the simulated machine.
//
// The walker plays the role of the hardware page walk. It honours hierarchical attributes —
// a cleared writable bit at any upper level write-protects the whole subtree, which is the
// mechanism on-demand-fork uses to protect a shared PTE table's 2 MiB region by flipping a
// single PMD entry (paper §3.2). It also sets accessed/dirty bits the way a CPU would.
#ifndef ODF_SRC_PT_WALKER_H_
#define ODF_SRC_PT_WALKER_H_

#include "src/phys/frame_allocator.h"
#include "src/pt/geometry.h"
#include "src/pt/mm_locks.h"
#include "src/pt/pte.h"
#include "src/util/thread_annotations.h"

namespace odf {

enum class AccessType { kRead, kWrite };

enum class TranslateStatus {
  kOk,           // Translation complete; `frame` is valid.
  kNotPresent,   // Missing entry at `fault_level` (no table, or PTE not present).
  kNotWritable,  // Write access hit a non-writable entry at `fault_level`.
};

struct Translation {
  TranslateStatus status = TranslateStatus::kNotPresent;
  PtLevel fault_level = PtLevel::kPgd;  // Level at which the walk stopped (on failure).
  FrameId frame = kInvalidFrame;        // Final 4 KiB frame (tail-resolved for huge maps).
  FrameId pte_table = kInvalidFrame;    // Frame of the last-level table (invalid when huge).
  bool huge = false;                    // Mapped by a 2 MiB PMD entry.
  uint64_t* slot = nullptr;             // Leaf slot the walk resolved (PTE or huge PMD).
};

class Walker {
 public:
  explicit Walker(FrameAllocator* allocator) : allocator_(allocator) {}

  // Full translation with hardware side effects (accessed/dirty bits), as the CPU would do.
  // Does NOT handle faults; callers route failures to the mm fault handler.
  Translation Translate(FrameId pgd, Vaddr va, AccessType access);

  // Side-effect-free read translation for the epoch-guarded lock-free fast path: no
  // accessed/dirty stores, no debug-vm leaf invariants (both would misfire on the benign
  // races the caller's pin-and-generation-recheck protocol is designed to reject). The
  // caller must hold a PtEpoch read guard so retired tables on the walked path are still
  // backed by live memory, and must validate the result against the covering shard
  // generation before trusting the returned frame.
  Translation TranslateLockFree(FrameId pgd, Vaddr va)
      ODF_REQUIRES_SHARED(PtEpoch::Global());

  // Returns a pointer to the entry for `va` at `level`, or nullptr if an intermediate table
  // is missing. No side effects.
  uint64_t* FindEntry(FrameId pgd, Vaddr va, PtLevel level);

  // Like FindEntry but allocates missing intermediate tables (present+writable+user links).
  // Never allocates the final data mapping, only tables above `level` plus the table that
  // contains the returned entry. Table allocation is NOFAIL (aborts on hard OOM).
  uint64_t* EnsureEntry(FrameId pgd, Vaddr va, PtLevel level);

  // Fallible EnsureEntry (fault/fork paths): returns nullptr when a missing intermediate
  // table cannot be allocated (genuine ENOMEM after reclaim, or injected page_table_alloc
  // failure). Tables allocated before the failing one stay installed; they are empty and
  // harmless, and teardown reaps them.
  [[nodiscard]] uint64_t* TryEnsureEntry(FrameId pgd, Vaddr va, PtLevel level);

  // Returns the frame of the table containing `va`'s entry at `level` (e.g. the PTE-table
  // frame for level kPte), or kInvalidFrame if missing. When `out_pmd_entry` is non-null and
  // level == kPte, it receives a pointer to the PMD entry referencing that table.
  FrameId FindTable(FrameId pgd, Vaddr va, PtLevel level, uint64_t** out_pmd_entry = nullptr);

  FrameAllocator& allocator() { return *allocator_; }

 private:
  FrameAllocator* allocator_;
};

// Allocates an empty page-table frame (zeroed, refcount 1, pt_share_count 1). NOFAIL.
FrameId AllocPageTable(FrameAllocator& allocator);

// Fallible AllocPageTable: kInvalidFrame on ENOMEM or injected page_table_alloc failure.
[[nodiscard]] FrameId TryAllocPageTable(FrameAllocator& allocator);

}  // namespace odf

#endif  // ODF_SRC_PT_WALKER_H_
