// Memory-failure handling (the mm/memory-failure.c analog): what the kernel does when the
// hardware reports an uncorrectable ECC error in a physical frame (docs/memory-failure.md).
//
// Two entry points, both driven through the Kernel facade under the exclusive MmGate:
//
//   HardOffline — the machine-check path (MCE/BUS_MCEERR_AR). The frame's bytes are gone.
//     Every mapping found through the reverse map is replaced with a non-present poison
//     marker (Pte::MakeHwPoison), so only processes that later TOUCH the dead address see
//     FaultResult::kHwPoison — everyone else keeps running. A slot inside a shared
//     on-demand-fork PTE table is rewritten ONCE for all sharers (§3.6 granularity); a
//     huge mapping is split first so exactly one 4 KiB subpage is lost. Clean page-cache
//     frames lose nothing: the contents are relocated to a fresh frame (the "re-read from
//     disk" analog) and mappers refault.
//
//   SoftOffline — predictive offline (corrected-error storms). The frame still holds good
//     data, so it is MIGRATED: a target frame is allocated, the bytes copied, and every
//     rmap location atomically repointed — zero data loss, transactional (an allocation
//     failure or injected fi verdict leaves nothing mutated, mirroring TryFork).
//
// Either way the frame ends kPageFlagHwPoison'd and, once its last reference drops, parked
// on the allocator's quarantine list forever: never re-allocated, never cached, never
// LRU-resident (VerifyKernel cross-checks the bijection).
#ifndef ODF_SRC_MF_MEMORY_FAILURE_H_
#define ODF_SRC_MF_MEMORY_FAILURE_H_

#include <functional>
#include <vector>

#include "src/fs/mem_fs.h"
#include "src/mm/address_space.h"
#include "src/reclaim/lru.h"
#include "src/reclaim/rmap.h"

// Set by the build (src/mf/CMakeLists.txt); default to compiled-in for out-of-build users.
#ifndef ODF_MEMORY_FAILURE_COMPILED
#define ODF_MEMORY_FAILURE_COMPILED 1
#endif

namespace odf {
namespace mf {

enum class MfResult : uint32_t {
  kRecovered = 0,        // Hard offline: every mapping rewritten, containment complete.
  kDelayed = 1,          // Poisoned while unmapped/free: quarantined at (or before) its
                         // final free; nothing referenced the bytes.
  kAlreadyPoisoned = 2,  // Duplicate report for a frame already marked.
  kMigrated = 3,         // Soft offline: contents moved intact, source quarantined.
  kFailedBusy = 4,       // Allocation failed or the frame is pinned/unstable; NOTHING was
                         // mutated — the caller may retry.
  kFailedKernelPage = 5,  // Page-table frame: page-granularity offline cannot contain it.
  kNotSupported = 6,      // Built with -DODF_MEMORY_FAILURE=OFF.
};

const char* MfResultName(MfResult result);

// Everything offline needs from the kernel, mirroring reclaim::ShrinkContext.
struct MfContext {
  FrameAllocator* allocator = nullptr;
  SwapSpace* swap = nullptr;
  MemFilesystem* fs = nullptr;
  reclaim::RmapRegistry* rmap = nullptr;
  reclaim::PageLru* lru = nullptr;
  // Coarse shootdown after mappings were rewritten (possibly in shared tables).
  std::function<void()> flush_tlbs;
  // All live address spaces — the huge-split pass must walk PMD entries, which the
  // reverse map alone cannot attribute to an owning space.
  std::function<std::vector<AddressSpace*>()> spaces;
};

// Both require the caller to hold the MmGate EXCLUSIVELY (no mutator may observe a
// half-offlined frame) and record/count their own events. See the header comment and
// docs/memory-failure.md for the exact protocols.
MfResult HardOffline(MfContext& ctx, FrameId frame);
MfResult SoftOffline(MfContext& ctx, FrameId frame);

}  // namespace mf
}  // namespace odf

#endif  // ODF_SRC_MF_MEMORY_FAILURE_H_
