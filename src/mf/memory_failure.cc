#include "src/mf/memory_failure.h"

#include <cstring>

#include "src/debug/debug.h"
#include "src/mm/fault.h"
#include "src/mm/range_ops.h"
#include "src/reclaim/mm_gate.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {
namespace mf {

const char* MfResultName(MfResult result) {
  switch (result) {
    case MfResult::kRecovered:
      return "recovered";
    case MfResult::kDelayed:
      return "delayed";
    case MfResult::kAlreadyPoisoned:
      return "already-poisoned";
    case MfResult::kMigrated:
      return "migrated";
    case MfResult::kFailedBusy:
      return "failed-busy";
    case MfResult::kFailedKernelPage:
      return "failed-kernel-page";
    case MfResult::kNotSupported:
      return "not-supported";
  }
  return "?";
}

#if ODF_MEMORY_FAILURE_COMPILED

namespace {

// Splits every huge (PMD-leaf) mapping of compound `head`, in every address space, so the
// dead 4 KiB subpage can be offlined alone — the rest of the 2 MiB page survives. Huge
// locations are registered in the rmap under the head, but a slot pointer alone cannot be
// attributed to an owning space (the split needs the space's walker and TLB), hence the
// full-space PMD scan; offline events are rare enough that the walk cost is irrelevant.
// Returns false when a split's table allocation fails; splits already performed are
// benign (a split mapping is valid state, faulting continues page by page).
bool SplitAllHugeMappings(MfContext& ctx, FrameId head) {
  if (!ctx.spaces) {
    return true;  // Standalone use without a process layer: nothing maps huge.
  }
  for (AddressSpace* as : ctx.spaces()) {
    for (const auto& [start, vma] : as->vmas()) {
      for (Vaddr chunk = EntryBase(vma.start, PtLevel::kPmd); chunk < vma.end;
           chunk += kPteTableSpan) {
        uint64_t* pmd_slot = as->walker().FindEntry(as->pgd(), chunk, PtLevel::kPmd);
        if (pmd_slot == nullptr) {
          continue;
        }
        Pte entry = LoadEntry(pmd_slot);
        if (!entry.IsPresent() || !entry.IsHuge() || entry.frame() != head) {
          continue;
        }
        // The PMD table holding this entry may be shared (kOnDemandHuge, §4): dedicate it
        // first so the split mutates only this space's view.
        if (!EnsureExclusivePmdPath(*as, chunk, AllocPolicy::kTry)) {
          return false;
        }
        pmd_slot = as->walker().FindEntry(as->pgd(), chunk, PtLevel::kPmd);
        if (pmd_slot == nullptr) {
          continue;
        }
        entry = LoadEntry(pmd_slot);
        if (!entry.IsPresent() || !entry.IsHuge() || entry.frame() != head) {
          continue;  // Dedication already rewrote it (cannot happen today; defensive).
        }
        if (!SplitHugeMapping(*as, chunk, pmd_slot)) {
          return false;
        }
        CountVm(VmCounter::k_mf_huge_splits);
      }
    }
  }
  return true;
}

// Moves the page-cache reference(s) for `frame` over to `replacement` across every file.
// Returns the number of cache slots repointed; reference ownership per ReplaceFrame's
// contract (the caller ends up owning old's cache refs, the cache owns new's).
size_t RelocateFileCache(MfContext& ctx, FrameId frame, FrameId replacement) {
  size_t relocated = 0;
  if (ctx.fs != nullptr) {
    ctx.fs->ForEachFile([&](const std::shared_ptr<MemFile>& file) {
      relocated += file->ReplaceFrame(frame, replacement);
    });
  }
  return relocated;
}

size_t CountFileCacheRefs(MfContext& ctx, FrameId frame) {
  size_t refs = 0;
  if (ctx.fs != nullptr) {
    ctx.fs->ForEachFile([&](const std::shared_ptr<MemFile>& file) {
      file->ForEachCachedPage([&](uint64_t, FrameId cached) {
        if (cached == frame) {
          ++refs;
        }
      });
    });
  }
  return refs;
}

}  // namespace

MfResult HardOffline(MfContext& ctx, FrameId frame) {
  ODF_DCHECK(reclaim::MmGate::ThreadHoldsExclusive())
      << "memory failure without the MmGate held exclusive";
  FrameAllocator& allocator = *ctx.allocator;
  if (frame >= allocator.Stats().total_frames) {
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedBusy;  // No such frame (the -ENXIO analog).
  }
  PageMeta& meta = allocator.GetMeta(frame);
  if (meta.IsHwPoisoned()) {
    return MfResult::kAlreadyPoisoned;
  }
  if (meta.IsPageTable()) {
    // A dead page-table frame takes all translations below it with it; page-granularity
    // offline cannot contain that (the kernel panics on Reserved/slab pages for the same
    // reason). Refuse and leave containment to the operator.
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedKernelPage;
  }
  if ((meta.flags & kPageFlagAllocated) == 0) {
    // Free frame: retire it before anyone can allocate it (the take_page_off_buddy path).
    allocator.MarkHwPoison(frame);
    CountVm(VmCounter::k_mf_hard_offline);
    ODF_TRACE(mf_hard_offline, 0, frame, 0);
    return MfResult::kDelayed;
  }
  // Refs on a compound subpage live on the head; the marker and quarantine target the
  // subpage itself.
  FrameId holder = meta.compound_head;
  if (meta.IsCompound() && !SplitAllHugeMappings(ctx, holder)) {
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedBusy;
  }
  if (ctx.rmap != nullptr && ctx.rmap->IsUnstable(frame)) {
    // An injected rmap_alloc failure means the reverse map may be missing a mapping;
    // poisoning anyway would leave a live translation to the dead frame. Refuse.
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedBusy;
  }
  std::vector<reclaim::RmapLocation> locations;
  if (ctx.rmap != nullptr) {
    ctx.rmap->Snapshot(frame, &locations);
  }
  bool is_file = (meta.flags & kPageFlagFile) != 0;
  // For a page-cache frame the contents are clean (the cache IS the backing store here, so
  // the relocation below plays the part of re-reading from disk): allocate the target
  // BEFORE mutating anything, so an allocation failure aborts with no trace.
  FrameId replacement = kInvalidFrame;
  if (is_file) {
    replacement = allocator.TryAllocate(kPageFlagFile | kPageFlagZeroFill);
    if (replacement == kInvalidFrame) {
      CountVm(VmCounter::k_mf_offline_failed);
      return MfResult::kFailedBusy;
    }
  }
  // Pin the holder so the per-location DecRefs below can never free it mid-operation, then
  // set the sticky poison flag — from here on the allocator will quarantine, not recycle.
  allocator.IncRef(holder);
  allocator.MarkHwPoison(frame);
  size_t relocated = 0;
  if (is_file) {
    const std::byte* src = allocator.PeekData(frame);
    if (src != nullptr) {
      std::memcpy(allocator.MaterializeData(replacement, /*zero=*/false), src, kPageSize);
    }
    relocated = RelocateFileCache(ctx, frame, replacement);
    if (relocated == 0) {
      // File-flagged but not cached anywhere (e.g. truncated while still mapped): there is
      // no backing copy to refault from, so the mappings get poison markers like anon.
      allocator.DecRef(replacement);
    } else {
      // The cache's reference moved: replacement's allocation ref became the cache's;
      // the old frame's cache ref is now ours to drop (the pin keeps it alive).
      for (size_t i = 0; i < relocated; ++i) {
        allocator.DecRef(frame);
      }
    }
  }
  // Broadcast the verdict into every mapping — ONE store per slot, which for a slot inside
  // a shared on-demand-fork PTE table retires the mapping for every sharer at once (§3.6).
  // Anon (and uncached-file) mappings get the sticky poison marker: the data is gone, and
  // only a process that touches the VA sees kHwPoison. Relocated file mappings are simply
  // cleared: the next touch refaults from the moved page cache, losing nothing.
  bool anon_style = !is_file || relocated == 0;
  for (const reclaim::RmapLocation& location : locations) {
    ODF_DCHECK(!location.huge) << "huge mapping survived the split pass";
    StoreEntry(location.slot, anon_style ? Pte::MakeHwPoison(frame) : Pte());
  }
  if (!locations.empty() && ctx.rmap != nullptr) {
    ctx.rmap->RemoveAll(frame);  // Also erases the frame from the LRU.
    for (size_t i = 0; i < locations.size(); ++i) {
      allocator.DecRef(holder);  // One reference per cleared mapping.
    }
  }
  if (ctx.flush_tlbs) {
    ctx.flush_tlbs();  // One coarse shootdown, while we still hold the gate.
  }
  allocator.DecRef(holder);  // Drop the pin; the last owner's free quarantines the frame.
  CountVm(VmCounter::k_mf_hard_offline);
  ODF_TRACE(mf_hard_offline, 0, frame, locations.size());
  return (locations.empty() && relocated == 0) ? MfResult::kDelayed : MfResult::kRecovered;
}

MfResult SoftOffline(MfContext& ctx, FrameId frame) {
  ODF_DCHECK(reclaim::MmGate::ThreadHoldsExclusive())
      << "soft offline without the MmGate held exclusive";
  FrameAllocator& allocator = *ctx.allocator;
  if (frame >= allocator.Stats().total_frames) {
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedBusy;
  }
  PageMeta& meta = allocator.GetMeta(frame);
  if (meta.IsHwPoisoned()) {
    return MfResult::kAlreadyPoisoned;
  }
  if (meta.IsPageTable()) {
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedKernelPage;
  }
  if ((meta.flags & kPageFlagAllocated) == 0) {
    allocator.MarkHwPoison(frame);
    CountVm(VmCounter::k_mf_soft_offline);
    ODF_TRACE(mf_soft_offline, 0, frame, 0);
    return MfResult::kDelayed;
  }
  FrameId holder = meta.compound_head;
  if (meta.IsCompound() && !SplitAllHugeMappings(ctx, holder)) {
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedBusy;
  }
  if (ctx.rmap != nullptr && ctx.rmap->IsUnstable(frame)) {
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedBusy;
  }
  std::vector<reclaim::RmapLocation> locations;
  if (ctx.rmap != nullptr) {
    ctx.rmap->Snapshot(frame, &locations);
  }
  size_t cache_refs = CountFileCacheRefs(ctx, frame);
  if (locations.empty() && cache_refs == 0) {
    // Nothing maps or caches it; whoever holds it frees it into quarantine eventually.
    allocator.MarkHwPoison(frame);
    CountVm(VmCounter::k_mf_soft_offline);
    ODF_TRACE(mf_soft_offline, 0, frame, 0);
    return MfResult::kDelayed;
  }
  // Migration eligibility: every reference must be a mapping or cache slot we are about to
  // repoint — extra references mean someone (a mid-rollback fork, a pinning test) holds
  // the frame and migration would yank it out from under them. A split-huge tail's
  // references aggregate on the compound head where per-subpage attribution is impossible;
  // the head pin below keeps those safe instead.
  if (holder == frame &&
      meta.refcount.load(std::memory_order_relaxed) != locations.size() + cache_refs) {
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedBusy;
  }
  // The ONLY allocation of the migration, taken before any mutation: a failure — genuine
  // ENOMEM or an injected frame_alloc verdict (src/fi) — aborts the whole operation with
  // nothing to roll back, the same all-or-nothing discipline as TryFork.
  uint8_t kind = static_cast<uint8_t>(meta.flags &
                                      (kPageFlagAnon | kPageFlagFile | kPageFlagZeroFill));
  FrameId replacement = allocator.TryAllocate(kind);
  if (replacement == kInvalidFrame) {
    CountVm(VmCounter::k_mf_offline_failed);
    return MfResult::kFailedBusy;
  }
  allocator.IncRef(holder);  // Pin across the per-location DecRefs.
  const std::byte* src = allocator.PeekData(frame);
  if (src != nullptr) {
    std::memcpy(allocator.MaterializeData(replacement, /*zero=*/false), src, kPageSize);
  }
  // Atomically repoint every mapping: ONE update per slot, so a slot inside a shared
  // on-demand-fork PTE table migrates the page for every sharer at once (§3.6). Flags
  // (writable / accessed / dirty) ride along unchanged.
  for (const reclaim::RmapLocation& location : locations) {
    ODF_DCHECK(!location.huge) << "huge mapping survived the split pass";
    Pte entry = LoadEntry(location.slot);
    ODF_DCHECK(entry.IsPresent() && entry.frame() == frame);
    allocator.IncRef(replacement);
    if (ctx.rmap != nullptr) {
      ctx.rmap->Remove(frame, location.slot);
    }
    StoreEntry(location.slot, entry.WithFrame(replacement));
    if (ctx.rmap != nullptr) {
      ctx.rmap->Add(replacement, location.slot);
    }
    allocator.DecRef(holder);
  }
  if (cache_refs > 0) {
    size_t relocated = RelocateFileCache(ctx, frame, replacement);
    ODF_DCHECK(relocated == cache_refs);
    // ReplaceFrame swapped reference ownership: give the cache refs on the replacement
    // (beyond the allocation ref it already absorbed conceptually) and drop the old ones.
    for (size_t i = 0; i < relocated; ++i) {
      allocator.IncRef(replacement);
      allocator.DecRef(frame);
    }
  }
  if (ctx.flush_tlbs) {
    ctx.flush_tlbs();
  }
  allocator.MarkHwPoison(frame);   // Sticky; the frees below divert to quarantine.
  allocator.DecRef(replacement);   // Drop the allocation ref; mappings + cache own it now.
  allocator.DecRef(holder);        // Drop the pin; the source retires.
  CountVm(VmCounter::k_mf_soft_offline);
  CountVm(VmCounter::k_mf_migrated_pages);
  ODF_TRACE(mf_soft_offline, 0, frame, locations.size());
  return MfResult::kMigrated;
}

#else  // !ODF_MEMORY_FAILURE_COMPILED

MfResult HardOffline(MfContext&, FrameId) { return MfResult::kNotSupported; }
MfResult SoftOffline(MfContext&, FrameId) { return MfResult::kNotSupported; }

#endif  // ODF_MEMORY_FAILURE_COMPILED

}  // namespace mf
}  // namespace odf
