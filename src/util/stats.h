// Descriptive statistics over samples: mean, stddev, min/max, percentiles.
#ifndef ODF_SRC_UTIL_STATS_H_
#define ODF_SRC_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace odf {

// Summary of a sample set. All values are in the unit of the input samples.
struct StatsSummary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
};

// Computes count/mean/stddev/min/max over `samples`. Returns a zeroed summary when empty.
StatsSummary Summarize(std::span<const double> samples);

// Returns the p-th percentile (0 <= p <= 100) using linear interpolation between closest
// ranks. `samples` does not need to be sorted. Returns 0 when empty.
double Percentile(std::span<const double> samples, double p);

// Computes several percentiles in one sort pass. Returns results in the order of `ps`.
std::vector<double> Percentiles(std::span<const double> samples, std::span<const double> ps);

// Incremental mean/variance accumulator (Welford). Suitable for long-running measurement
// where storing every sample is undesirable.
class RunningStats {
 public:
  void Add(double sample);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // Sample variance (n-1); 0 when count < 2.
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace odf

#endif  // ODF_SRC_UTIL_STATS_H_
