#include "src/util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/util/mutex.h"

namespace odf {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
util::Mutex g_log_mutex;
std::atomic<AbortHook> g_abort_hook{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  util::MutexLock guard(g_log_mutex);
  std::fprintf(stderr, "[odf %s %s:%d] %s\n", LevelName(level), file, line, message.c_str());
}

void SetAbortHook(AbortHook hook) { g_abort_hook.store(hook, std::memory_order_release); }

void FatalCheckFailure(const char* file, int line, const char* condition,
                       const std::string& message) {
  {
    util::MutexLock guard(g_log_mutex);
    std::fprintf(stderr, "[odf FATAL %s:%d] check failed: %s%s%s\n", file, line, condition,
                 message.empty() ? "" : " — ", message.c_str());
    std::fflush(stderr);
  }
  // Fire the abort hook exactly once; a failure inside the hook recursing into another
  // ODF_CHECK must fall straight through to abort instead of looping.
  if (AbortHook hook = g_abort_hook.exchange(nullptr, std::memory_order_acq_rel)) {
    hook();
  }
  std::abort();
}

}  // namespace odf
