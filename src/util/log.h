// Minimal logging and fatal-check facility for the odfork library.
//
// The library is a simulator: internal invariant violations are programming errors, not
// recoverable conditions, so ODF_CHECK aborts with a message (mirroring kernel BUG_ON).
#ifndef ODF_SRC_UTIL_LOG_H_
#define ODF_SRC_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace odf {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

// Sets the minimum level that is actually emitted. Default: kWarn (quiet for benchmarks).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits a single log line to stderr. Thread-safe.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Aborts the process after printing the failed condition. Never returns.
[[noreturn]] void FatalCheckFailure(const char* file, int line, const char* condition,
                                    const std::string& message);

// Hook invoked (at most once, after the failure message is printed) before the abort in
// FatalCheckFailure. Lets subsystems flush crash state — e.g. the replay flight recorder
// dumps its black-box log so the aborting schedule can be replayed. The hook must be
// async-signal-unsafe-tolerant in the sense that it runs on the failing thread with
// arbitrary locks possibly held, so it must not touch kernel state; pure buffered I/O only.
using AbortHook = void (*)();
void SetAbortHook(AbortHook hook);

namespace internal {

// Stream-collecting helper so call sites can write ODF_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class CheckFailer;

// Swallows the CheckFailer stream so a passing ODF_CHECK is a void expression; `&` binds
// looser than `<<`, so the message chain completes before the conversion applies.
struct CheckVoidify {
  void operator&(const CheckFailer&) const {}
};

class CheckFailer {
 public:
  CheckFailer(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}
  CheckFailer(const CheckFailer&) = delete;
  CheckFailer& operator=(const CheckFailer&) = delete;
  [[noreturn]] ~CheckFailer() { FatalCheckFailure(file_, line_, condition_, stream_.str()); }

  template <typename T>
  CheckFailer& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace internal

#define ODF_LOG(level) ::odf::internal::LogLine(::odf::LogLevel::level, __FILE__, __LINE__)

// Statement-safe (glog-style ternary + voidify): the whole check is a single void
// expression, so `if (x) ODF_CHECK(y); else ...` binds the else to the outer if — the bare
// `if (!(condition)) CheckFailer(...)` form this replaces silently captured it instead.
#define ODF_CHECK(condition)                 \
  (condition) ? (void)0                      \
              : ::odf::internal::CheckVoidify() & \
                    ::odf::internal::CheckFailer(__FILE__, __LINE__, #condition)

#ifdef NDEBUG
#define ODF_DCHECK(condition) ODF_CHECK(true || (condition))
#else
#define ODF_DCHECK(condition) ODF_CHECK(condition)
#endif

}  // namespace odf

#endif  // ODF_SRC_UTIL_LOG_H_
