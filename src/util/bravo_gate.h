// BRAVO-style distributed reader-writer gate (Dice & Kogan, USENIX ATC'19).
//
// Readers on the fast path touch only a per-thread-hashed, cache-line-padded
// counter slot plus one load of the writer-pending word, so concurrent readers
// on different cores never bounce a shared cache line the way a
// std::shared_mutex reader count does. Writers flip the pending word (which
// diverts new readers to the underlying shared_mutex), take the mutex, then
// wait for in-flight fast readers to drain from the slots.
//
// This is deliberately a bare synchronization primitive with no repo
// dependencies: it lives in src/util (below the mm lock graph) and the mm-layer
// wrappers (reclaim::MmGate, mm::MmLockTable) layer lockdep registration and
// contention metrics on top of the wait times it reports.
#ifndef ODF_SRC_UTIL_BRAVO_GATE_H_
#define ODF_SRC_UTIL_BRAVO_GATE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <shared_mutex>
#include <thread>

#include "src/util/thread_annotations.h"

namespace odf::util {

// A capability to the thread-safety analysis, but its token-passing methods are
// deliberately NOT annotated: the analysis cannot follow a ReadToken from LockShared to
// UnlockShared (it tracks lexical scopes, not values), so BravoGate sits below the
// analysis like std::atomic does. The annotated contract lives entirely in the scoped
// wrappers that own the tokens — reclaim::MmGate::{Shared,Exclusive}Scope and
// MmLockTable::{Read,Write}Scope declare ACQUIRE/RELEASE on the wrapper capability —
// which also keeps the conditional fallback protocol here free of opt-outs.
class ODF_CAPABILITY("bravo_gate") BravoGate {
 public:
  static constexpr int kSlots = 64;

  BravoGate() = default;
  BravoGate(const BravoGate&) = delete;
  BravoGate& operator=(const BravoGate&) = delete;

  struct ReadToken {
    int slot = -1;         // >= 0: fast-path slot index; -1: shared_mutex fallback.
    uint64_t wait_ns = 0;  // Time spent blocked (always 0 on the fast path).
  };

  // Shared acquisition. Fast path: one fetch_add on a private slot plus a load
  // of writers_pending_ (the seq_cst pair forms the store-buffering / Dekker
  // handshake with LockExclusive). If a writer is pending, the increment is
  // undone and the reader falls back to the shared_mutex, reporting its wait.
  ReadToken LockShared() {
    ReadToken token;
    int slot = SlotIndex();
    slots_[slot].count.fetch_add(1, std::memory_order_seq_cst);
    if (writers_pending_.load(std::memory_order_seq_cst) == 0) {
      token.slot = slot;
      return token;
    }
    slots_[slot].count.fetch_sub(1, std::memory_order_seq_cst);
    auto start = std::chrono::steady_clock::now();
    mu_.lock_shared();
    token.wait_ns = ElapsedNs(start);
    return token;
  }

  void UnlockShared(const ReadToken& token) {
    if (token.slot >= 0) {
      slots_[token.slot].count.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      mu_.unlock_shared();
    }
  }

  // Exclusive acquisition: publish the pending writer (diverting new readers to
  // the mutex), take the mutex (excludes fallback readers and other writers),
  // then spin until every fast-path reader slot drains. Returns nanoseconds
  // spent blocked, for the caller's contention metrics.
  uint64_t LockExclusive() {
    auto start = std::chrono::steady_clock::now();
    writers_pending_.fetch_add(1, std::memory_order_seq_cst);
    mu_.lock();
    for (int i = 0; i < kSlots; ++i) {
      while (slots_[i].count.load(std::memory_order_seq_cst) != 0) {
        std::this_thread::yield();
      }
    }
    return ElapsedNs(start);
  }

  void UnlockExclusive() {
    mu_.unlock();
    writers_pending_.fetch_sub(1, std::memory_order_seq_cst);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> count{0};
  };

  // Threads hash to a fixed slot for their lifetime; collisions only cost some
  // sharing on that one line, never correctness.
  static int SlotIndex() {
    static std::atomic<uint32_t> next{0};
    thread_local const int slot =
        static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) *
                         2654435761u >> 26) & (kSlots - 1);
    return slot;
  }

  static uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - start)
                                     .count());
  }

  std::atomic<int> writers_pending_{0};
  std::shared_mutex mu_;
  Slot slots_[kSlots];
};

}  // namespace odf::util

#endif  // ODF_SRC_UTIL_BRAVO_GATE_H_
