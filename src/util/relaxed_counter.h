// A copyable, implicitly-convertible relaxed atomic counter.
//
// Statistics structs (MmStats, TlbStats) were plain uint64_t fields while one
// thread drove each address space; with sharded MM locking, disjoint-range
// faults bump the same counters concurrently. RelaxedCounter keeps the call
// sites (`++stats.x`, `stats.x += n`, `uint64_t v = stats.x`) source-compatible
// while making the increments well-defined. Relaxed ordering is correct here:
// the counters carry no synchronization, only tallies.
#ifndef ODF_SRC_UTIL_RELAXED_COUNTER_H_
#define ODF_SRC_UTIL_RELAXED_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace odf::util {

class RelaxedCounter {
 public:
  constexpr RelaxedCounter() = default;
  constexpr RelaxedCounter(uint64_t value) : value_(value) {}  // NOLINT(google-explicit-constructor)

  RelaxedCounter(const RelaxedCounter& other) : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const { return load(); }  // NOLINT(google-explicit-constructor)
  uint64_t load() const { return value_.load(std::memory_order_relaxed); }

  uint64_t operator++() { return value_.fetch_add(1, std::memory_order_relaxed) + 1; }
  uint64_t operator++(int) { return value_.fetch_add(1, std::memory_order_relaxed); }
  RelaxedCounter& operator+=(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator-=(uint64_t delta) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace odf::util

#endif  // ODF_SRC_UTIL_RELAXED_COUNTER_H_
