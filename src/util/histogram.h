// Log-scaled latency histogram. Cheaper than storing every sample for long benchmark runs;
// used by application workloads that record millions of request latencies.
#ifndef ODF_SRC_UTIL_HISTOGRAM_H_
#define ODF_SRC_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace odf {

// Buckets latencies (in nanoseconds) on a log2 scale with 8 linear sub-buckets per octave,
// covering 1 ns .. ~1100 s. Thread-safe recording via relaxed atomics.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBuckets = 8;
  static constexpr size_t kOctaves = 40;
  static constexpr size_t kBucketCount = kOctaves * kSubBuckets;

  void RecordNanos(uint64_t nanos);
  void RecordMicros(double micros) {
    RecordNanos(micros <= 0 ? 0 : static_cast<uint64_t>(micros * 1e3));
  }

  uint64_t TotalCount() const;

  // Percentile (0..100) estimated from bucket boundaries, returned in microseconds.
  double PercentileMicros(double p) const;

  double MeanMicros() const;

  // Multi-line human-readable dump of non-empty buckets.
  std::string Dump() const;

  void Reset();

 private:
  static size_t BucketIndex(uint64_t nanos);
  static uint64_t BucketLowerBoundNanos(size_t index);

  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> sum_nanos_{0};
};

}  // namespace odf

#endif  // ODF_SRC_UTIL_HISTOGRAM_H_
