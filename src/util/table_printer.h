// Aligned plain-text table output. Benchmark binaries use this to print rows shaped like the
// paper's tables and figure series (one row per x-axis point / percentile / phase).
#ifndef ODF_SRC_UTIL_TABLE_PRINTER_H_
#define ODF_SRC_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace odf {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends one row; the number of cells must match the header count.
  void AddRow(std::vector<std::string> cells);

  // Renders the collected table with column alignment.
  std::string Render() const;

  // Renders the same data as RFC-4180-style CSV (quoting cells that need it), for piping
  // benchmark series into plotting tools.
  std::string RenderCsv() const;

  // Renders to stdout.
  void Print(FILE* out = stdout) const;

  // Formatting helpers for cells.
  static std::string FormatDouble(double value, int precision = 3);
  static std::string FormatPercent(double fraction, int precision = 2);

  // Raw access for structured exporters (the bench JSON writer re-emits the table).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace odf

#endif  // ODF_SRC_UTIL_TABLE_PRINTER_H_
