// Records individual operation latencies and reports percentile summaries, mirroring how the
// paper reports Redis request-response latency (Table 4) and Apache latency (Tables 6/7).
#ifndef ODF_SRC_UTIL_LATENCY_RECORDER_H_
#define ODF_SRC_UTIL_LATENCY_RECORDER_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/stats.h"
#include "src/util/thread_annotations.h"

namespace odf {

class LatencyRecorder {
 public:
  LatencyRecorder() = default;
  explicit LatencyRecorder(size_t reserve) { samples_.reserve(reserve); }

  // Thread-safe append of one latency sample (any consistent unit; callers use microseconds).
  void Record(double value) {
    util::MutexLock guard(mutex_);
    samples_.push_back(value);
  }

  void Clear() {
    util::MutexLock guard(mutex_);
    samples_.clear();
  }

  size_t count() const {
    util::MutexLock guard(mutex_);
    return samples_.size();
  }

  // Snapshot of all samples recorded so far.
  std::vector<double> Samples() const {
    util::MutexLock guard(mutex_);
    return samples_;
  }

  StatsSummary Summary() const;

  // Percentile over recorded samples; p in [0, 100].
  double PercentileValue(double p) const;

  // The percentile ladder the paper reports for Redis: 50, 90, 95, 99, 99.9, 99.99.
  static std::span<const double> PaperPercentiles();

 private:
  mutable util::Mutex mutex_;
  std::vector<double> samples_ ODF_GUARDED_BY(mutex_);
};

}  // namespace odf

#endif  // ODF_SRC_UTIL_LATENCY_RECORDER_H_
