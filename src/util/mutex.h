// Annotated lock primitives — the capability-carrying replacements for std::mutex /
// std::shared_mutex everywhere in src/ (enforced by scripts/odf_lint.py rule
// raw-std-mutex; docs/debugging.md "Static lock-discipline analysis").
//
// These are zero-cost veneers: each wraps exactly the std primitive it replaces and adds
// the Clang thread-safety attributes from src/util/thread_annotations.h, so that a field
// declared ODF_GUARDED_BY(mutex_) is statically checked against every access. Under GCC
// (the container default) the attributes vanish and the types are byte-identical to the
// std ones.
//
// Deadlock-*order* checking stays with lockdep (src/debug/lockdep.h): mm-critical
// acquisitions still go through debug::MutexGuard (which now takes a util::Mutex and is
// itself a scoped capability). The scoped lockers here are for infrastructure below the
// mm lock graph (trace, fi, replay, util) where lockdep registration is deliberately not
// wanted.
#ifndef ODF_SRC_UTIL_MUTEX_H_
#define ODF_SRC_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/util/thread_annotations.h"

namespace odf::util {

// Exclusive mutex capability. std-compatible lowercase members keep it BasicLockable
// (std::condition_variable_any, std::lock_guard in generic code) — but annotated call
// sites should use MutexLock / debug::MutexGuard so the analysis sees the RAII extent.
class ODF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ODF_ACQUIRE() { mu_.lock(); }  // odf-lint: allow(naked-lock) — primitive.
  void unlock() ODF_RELEASE() { mu_.unlock(); }  // odf-lint: allow(naked-lock) — primitive.
  bool try_lock() ODF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Declares to the analysis that this thread holds the mutex — for protocols whose
  // ownership is proven at runtime (e.g. a reentrant outer scope).
  void AssertHeld() const ODF_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

// Reader/writer mutex capability (the annotated std::shared_mutex).
class ODF_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ODF_ACQUIRE() { mu_.lock(); }  // odf-lint: allow(naked-lock) — primitive.
  void unlock() ODF_RELEASE() { mu_.unlock(); }  // odf-lint: allow(naked-lock) — primitive.
  bool try_lock() ODF_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() ODF_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() ODF_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() ODF_TRY_ACQUIRE_SHARED(true) { return mu_.try_lock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive hold — the std::lock_guard replacement the analysis understands.
class ODF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ODF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() ODF_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

// RAII try-lock: holds the mutex only when `ok()` (checked by the analysis through the
// constructor's try-acquire contract and the boolean conversion). Stores a pointer, not
// a reference + flag: the analysis special-cases null checks on the capability pointer,
// so `if (lock.ok())` correctly narrows to the held state.
class ODF_SCOPED_CAPABILITY TryMutexLock {
 public:
  explicit TryMutexLock(Mutex& mu) ODF_TRY_ACQUIRE(true, mu)
      : mu_(mu.try_lock() ? &mu : nullptr) {}
  TryMutexLock(const TryMutexLock&) = delete;
  TryMutexLock& operator=(const TryMutexLock&) = delete;
  ~TryMutexLock() ODF_RELEASE() {
    if (mu_ != nullptr) {
      mu_->unlock();
    }
  }

  bool ok() const { return mu_ != nullptr; }
  explicit operator bool() const { return mu_ != nullptr; }

 private:
  Mutex* mu_;
};

// RAII exclusive / shared holds on a SharedMutex.
class ODF_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ODF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() ODF_RELEASE() { mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

class ODF_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ODF_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() ODF_RELEASE_GENERIC() { mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

// Condition variable over util::Mutex. Wait declares the held mutex, so guarded state
// read in the caller's `while (!cond) cv.Wait(mu);` loop checks statically (predicate
// lambdas are deliberately not offered: the analysis does not carry lock state into
// lambda bodies, so the loop form is the one it can verify). The unlock/relock inside
// the standard library is invisible to the analysis (system headers are exempt), which
// matches the semantics: the capability is held whenever caller code runs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks until notified, and reacquires `mu`. Spurious
  // wakeups possible — always call in a predicate loop.
  void Wait(Mutex& mu) ODF_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace odf::util

#endif  // ODF_SRC_UTIL_MUTEX_H_
