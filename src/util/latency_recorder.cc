#include "src/util/latency_recorder.h"

namespace odf {

StatsSummary LatencyRecorder::Summary() const {
  std::vector<double> snapshot = Samples();
  return Summarize(snapshot);
}

double LatencyRecorder::PercentileValue(double p) const {
  std::vector<double> snapshot = Samples();
  return Percentile(snapshot, p);
}

std::span<const double> LatencyRecorder::PaperPercentiles() {
  static const double kLadder[] = {50.0, 90.0, 95.0, 99.0, 99.9, 99.99};
  return kLadder;
}

}  // namespace odf
