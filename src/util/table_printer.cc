#include "src/util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/log.h"

namespace odf {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  ODF_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << "| " << cells[c];
      out << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TablePrinter::RenderCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') {
        quoted += '"';
      }
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : ",") << escape(cells[c]);
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

void TablePrinter::Print(FILE* out) const {
  std::string rendered = Render();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
  std::fflush(out);
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::FormatPercent(double fraction, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision, fraction * 100.0);
  return buffer;
}

}  // namespace odf
