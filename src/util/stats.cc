#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace odf {

StatsSummary Summarize(std::span<const double> samples) {
  StatsSummary s;
  if (samples.empty()) {
    return s;
  }
  RunningStats acc;
  for (double v : samples) {
    acc.Add(v);
  }
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  return s;
}

double Percentile(std::span<const double> samples, double p) {
  double out = 0.0;
  const double ps[] = {p};
  auto r = Percentiles(samples, ps);
  if (!r.empty()) {
    out = r[0];
  }
  return out;
}

std::vector<double> Percentiles(std::span<const double> samples, std::span<const double> ps) {
  std::vector<double> result(ps.size(), 0.0);
  if (samples.empty()) {
    return result;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < ps.size(); ++i) {
    double p = std::clamp(ps[i], 0.0, 100.0);
    // Linear interpolation between closest ranks.
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    result[i] = sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }
  return result;
}

void RunningStats::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace odf
