// Deterministic, fast pseudo-random number generator (xoshiro256**). Benchmarks and property
// tests need reproducible streams that are cheap enough not to perturb timing.
#ifndef ODF_SRC_UTIL_RNG_H_
#define ODF_SRC_UTIL_RNG_H_

#include <cstdint>

namespace odf {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial with probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace odf

#endif  // ODF_SRC_UTIL_RNG_H_
