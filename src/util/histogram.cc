#include "src/util/histogram.h"

#include <bit>
#include <sstream>

namespace odf {

size_t LatencyHistogram::BucketIndex(uint64_t nanos) {
  if (nanos < kSubBuckets) {
    return static_cast<size_t>(nanos);
  }
  // Octave = position of the highest set bit; sub-bucket = next 3 bits below it.
  int msb = 63 - std::countl_zero(nanos);
  int octave = msb - 2;  // Values [8,16) land in octave 1 (after the linear region's octave 0).
  uint64_t sub = (nanos >> (msb - 3)) & (kSubBuckets - 1);
  size_t index = static_cast<size_t>(octave) * kSubBuckets + static_cast<size_t>(sub);
  if (index >= kBucketCount) {
    index = kBucketCount - 1;
  }
  return index;
}

uint64_t LatencyHistogram::BucketLowerBoundNanos(size_t index) {
  size_t octave = index / kSubBuckets;
  size_t sub = index % kSubBuckets;
  if (octave == 0) {
    return sub;
  }
  int msb = static_cast<int>(octave) + 2;
  uint64_t base = 1ULL << msb;
  return base + (static_cast<uint64_t>(sub) << (msb - 3)) - base / 2 * 0;
}

void LatencyHistogram::RecordNanos(uint64_t nanos) {
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::PercentileMicros(double p) const {
  uint64_t total = TotalCount();
  if (total == 0) {
    return 0.0;
  }
  double target = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(BucketLowerBoundNanos(i)) / 1e3;
    }
  }
  return static_cast<double>(BucketLowerBoundNanos(kBucketCount - 1)) / 1e3;
}

double LatencyHistogram::MeanMicros() const {
  uint64_t total = TotalCount();
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) /
         static_cast<double>(total) / 1e3;
}

std::string LatencyHistogram::Dump() const {
  std::ostringstream out;
  for (size_t i = 0; i < kBucketCount; ++i) {
    uint64_t count = buckets_[i].load(std::memory_order_relaxed);
    if (count != 0) {
      out << ">=" << BucketLowerBoundNanos(i) << "ns: " << count << "\n";
    }
  }
  return out.str();
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace odf
