// Clang thread-safety capability annotations (docs/debugging.md "Static
// lock-discipline analysis").
//
// The PR 8 locking discipline — "fault slow path holds the AS gate shared plus exactly
// one shard", "TranslateLockFree only inside a PtEpoch read section", "shrinker/verifier/
// offline hold the MmGate exclusive" — is enforced at runtime by lockdep and TSan, both
// of which need the buggy interleaving to actually execute. These macros express the same
// contracts as Clang *capability* attributes so that under `clang++ -Wthread-safety`
// (the `thread-safety` preset / ci gate, -Werror) a violation is a compile error on every
// build, not a 2 a.m. sanitizer report.
//
// Usage surface (see src/util/mutex.h for the annotated primitives):
//
//   class ODF_CAPABILITY("mutex") Mutex { ... };          a lockable capability type
//   class ODF_SCOPED_CAPABILITY MutexLock { ... };        RAII acquire/release
//   int count_ ODF_GUARDED_BY(mutex_);                    field needs mutex_ held
//   void Compact() ODF_REQUIRES(mutex_);                  caller must hold exclusively
//   uint64_t Gen() const ODF_REQUIRES_SHARED(gate_);      caller must hold at least shared
//   void Drain() ODF_EXCLUDES(epoch_);                    caller must NOT hold
//
// On a non-Clang compiler (the container default is GCC) every macro expands to nothing:
// the annotations are zero-cost documentation and the build is byte-identical. Under
// Clang they expand to the attributes the -Wthread-safety analysis consumes; a Clang too
// old to know the capability attribute is a hard configure error (below) so the CI gate
// can never silently run with the macros compiled out.
#ifndef ODF_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define ODF_SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(ODF_NO_THREAD_SAFETY_ANNOTATIONS)

#if !defined(__has_attribute) || !__has_attribute(capability) || \
    !__has_attribute(acquire_capability)
// The ci/check.sh thread-safety gate requires the annotations to be REAL under Clang:
// a Clang that would expand them to nothing must fail at configure time, not pass the
// gate vacuously. Define ODF_NO_THREAD_SAFETY_ANNOTATIONS to build anyway (unverified).
#error "This Clang lacks thread-safety capability attributes; the -Wthread-safety gate would be vacuous. Define ODF_NO_THREAD_SAFETY_ANNOTATIONS to opt out."
#endif

#define ODF_THREAD_ANNOTATION(x) __attribute__((x))

#else  // non-Clang (GCC) or explicit opt-out: annotations compile to nothing.

#define ODF_THREAD_ANNOTATION(x)

#endif

// --- Type annotations -------------------------------------------------------

// Marks a class as a capability (lockable resource). The string names the kind in
// diagnostics ("mutex", "shared_mutex", "epoch", ...).
#define ODF_CAPABILITY(x) ODF_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a capability.
#define ODF_SCOPED_CAPABILITY ODF_THREAD_ANNOTATION(scoped_lockable)

// --- Data annotations -------------------------------------------------------

// The field may only be read with the capability held (shared suffices) and only be
// written with it held exclusively.
#define ODF_GUARDED_BY(x) ODF_THREAD_ANNOTATION(guarded_by(x))

// Like ODF_GUARDED_BY but for the pointee of a pointer/smart-pointer field.
#define ODF_PT_GUARDED_BY(x) ODF_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-order edges, checkable statically: this capability must be acquired after/before
// the listed ones.
#define ODF_ACQUIRED_AFTER(...) ODF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define ODF_ACQUIRED_BEFORE(...) ODF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

// --- Function annotations ---------------------------------------------------

// Caller must hold the capability exclusively / at least shared on entry; the function
// neither acquires nor releases it.
#define ODF_REQUIRES(...) ODF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ODF_REQUIRES_SHARED(...) \
  ODF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability (caller must not hold it) / releases it (caller
// must hold it). The _SHARED variants are the reader side; ODF_RELEASE_GENERIC releases
// either mode (scoped-guard destructors).
#define ODF_ACQUIRE(...) ODF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ODF_ACQUIRE_SHARED(...) ODF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ODF_RELEASE(...) ODF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ODF_RELEASE_SHARED(...) ODF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define ODF_RELEASE_GENERIC(...) ODF_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// Conditional acquisition: the capability is held only when the function returned
// `success` (first argument).
#define ODF_TRY_ACQUIRE(...) ODF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ODF_TRY_ACQUIRE_SHARED(...) \
  ODF_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (non-reentrancy / deadlock-avoidance contract,
// e.g. PtEpoch::Drain must not run inside a read section).
#define ODF_EXCLUDES(...) ODF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Declares (without checking) that the capability is held — for runtime-verified facts
// the analysis cannot see, e.g. "the reentrant WriteScope above me owns the gate".
#define ODF_ASSERT_CAPABILITY(x) ODF_THREAD_ANNOTATION(assert_capability(x))
#define ODF_ASSERT_SHARED_CAPABILITY(x) \
  ODF_THREAD_ANNOTATION(assert_shared_capability(x))

// The function returns a reference to the named capability (lets attribute expressions
// name locks through accessors).
#define ODF_RETURN_CAPABILITY(x) ODF_THREAD_ANNOTATION(lock_returned(x))

// Opt-out for one function. Every use outside src/util/mutex.h must carry a justifying
// comment and appear in the allowlist in docs/debugging.md (≤ 5 entries, audited by the
// thread-safety CI gate).
#define ODF_NO_THREAD_SAFETY_ANALYSIS ODF_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // ODF_SRC_UTIL_THREAD_ANNOTATIONS_H_
