#include "src/apps/minidb.h"

#include <cstring>

#include "src/util/log.h"

namespace odf {

namespace {

constexpr uint64_t kDbMagic = 0x6d'69'6e'69'64'62'00'01ULL;  // "minidb".

// DB meta block.
constexpr Vaddr kOffMagic = 0;
constexpr Vaddr kOffTableHead = 8;
constexpr Vaddr kOffHeapBase = 16;
constexpr uint64_t kDbMetaSize = 24;

// Table block: header, then col_count column descriptors of {u32 type, u32 size}.
constexpr Vaddr kTblNext = 0;
constexpr Vaddr kTblName = 8;  // 24 bytes, NUL-padded.
constexpr uint64_t kTblNameSize = 24;
constexpr Vaddr kTblColCount = 32;
constexpr Vaddr kTblRowSize = 40;
constexpr Vaddr kTblRowCount = 48;
constexpr Vaddr kTblSegHead = 56;
constexpr Vaddr kTblSegTail = 64;
constexpr Vaddr kTblIndexBuckets = 72;
constexpr Vaddr kTblIndexBucketCount = 80;
constexpr Vaddr kTblSchema = 88;

constexpr uint64_t kRowsPerSegment = 256;
constexpr uint64_t kIndexBucketCount = 1 << 16;

// Segment: {u64 next, u64 used, rows...}. A row slot: {u64 live_flag, column bytes...}.
constexpr Vaddr kSegNext = 0;
constexpr Vaddr kSegUsed = 8;
constexpr Vaddr kSegRows = 16;
constexpr uint64_t kRowHeader = 8;

// Index entry: {u64 next, i64 key, u64 row_va}.
constexpr Vaddr kIdxNext = 0;
constexpr Vaddr kIdxKey = 8;
constexpr Vaddr kIdxRow = 16;
constexpr uint64_t kIdxEntrySize = 24;

uint64_t HashInt(int64_t key) {
  uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  return h ^ (h >> 32);
}

}  // namespace

MiniDb MiniDb::Create(Kernel& kernel, Process& process, uint64_t heap_capacity) {
  SimHeap heap = SimHeap::Create(process, heap_capacity);
  Vaddr meta = heap.Alloc(kDbMetaSize);
  process.StoreU64(meta + kOffMagic, kDbMagic);
  process.StoreU64(meta + kOffTableHead, 0);
  process.StoreU64(meta + kOffHeapBase, heap.base());
  return MiniDb(&kernel, heap, meta);
}

MiniDb MiniDb::Attach(Kernel& kernel, Process& process, Vaddr meta_base) {
  ODF_CHECK(process.LoadU64(meta_base + kOffMagic) == kDbMagic) << "no minidb at " << meta_base;
  Vaddr heap_base = process.LoadU64(meta_base + kOffHeapBase);
  return MiniDb(&kernel, SimHeap::Attach(process, heap_base), meta_base);
}

Vaddr MiniDb::FindTable(const std::string& name) {
  Process& p = process();
  char buffer[kTblNameSize];
  Vaddr table = p.LoadU64(meta_base_ + kOffTableHead);
  while (table != 0) {
    ODF_CHECK(p.ReadMemory(table + kTblName, std::as_writable_bytes(std::span(buffer))));
    if (name.compare(0, kTblNameSize, buffer, strnlen(buffer, kTblNameSize)) == 0) {
      return table;
    }
    table = p.LoadU64(table + kTblNext);
  }
  return 0;
}

std::vector<ColumnSpec> MiniDb::ReadSchema(Vaddr table) {
  Process& p = process();
  uint64_t col_count = p.LoadU64(table + kTblColCount);
  std::vector<ColumnSpec> schema(col_count);
  for (uint64_t i = 0; i < col_count; ++i) {
    uint32_t type = p.LoadU32(table + kTblSchema + i * 8);
    uint32_t size = p.LoadU32(table + kTblSchema + i * 8 + 4);
    schema[i] = ColumnSpec{static_cast<ColumnType>(type), size};
  }
  return schema;
}

uint64_t MiniDb::RowSize(const std::vector<ColumnSpec>& schema) {
  uint64_t size = 0;
  for (const ColumnSpec& col : schema) {
    size += col.size;
  }
  return size;
}

void MiniDb::CreateTable(const std::string& name, const std::vector<ColumnSpec>& columns) {
  ODF_CHECK(FindTable(name) == 0) << "table exists: " << name;
  ODF_CHECK(name.size() < kTblNameSize);
  Process& p = process();

  // Full schema = implicit int64 key column + the user columns.
  std::vector<ColumnSpec> schema;
  schema.push_back(ColumnSpec{ColumnType::kInt64, 8});
  schema.insert(schema.end(), columns.begin(), columns.end());

  Vaddr table = heap_.Alloc(kTblSchema + schema.size() * 8);
  char name_buffer[kTblNameSize] = {};
  std::memcpy(name_buffer, name.data(), name.size());
  ODF_CHECK(p.WriteMemory(table + kTblName, std::as_bytes(std::span(name_buffer))));
  p.StoreU64(table + kTblColCount, schema.size());
  p.StoreU64(table + kTblRowSize, RowSize(schema));
  p.StoreU64(table + kTblRowCount, 0);
  p.StoreU64(table + kTblSegHead, 0);
  p.StoreU64(table + kTblSegTail, 0);
  Vaddr buckets = heap_.Alloc(kIndexBucketCount * 8);
  ODF_CHECK(p.MemsetMemory(buckets, std::byte{0}, kIndexBucketCount * 8));
  p.StoreU64(table + kTblIndexBuckets, buckets);
  p.StoreU64(table + kTblIndexBucketCount, kIndexBucketCount);
  for (uint64_t i = 0; i < schema.size(); ++i) {
    p.StoreU32(table + kTblSchema + i * 8, static_cast<uint32_t>(schema[i].type));
    p.StoreU32(table + kTblSchema + i * 8 + 4, schema[i].size);
  }
  // Link into the table list.
  p.StoreU64(table + kTblNext, p.LoadU64(meta_base_ + kOffTableHead));
  p.StoreU64(meta_base_ + kOffTableHead, table);
}

bool MiniDb::HasTable(const std::string& name) { return FindTable(name) != 0; }

Vaddr MiniDb::IndexLookup(Vaddr table, int64_t key, Vaddr* prev_link_out) {
  Process& p = process();
  Vaddr buckets = p.LoadU64(table + kTblIndexBuckets);
  uint64_t bucket_count = p.LoadU64(table + kTblIndexBucketCount);
  Vaddr prev_link = buckets + (HashInt(key) % bucket_count) * 8;
  Vaddr entry = p.LoadU64(prev_link);
  while (entry != 0) {
    if (static_cast<int64_t>(p.LoadU64(entry + kIdxKey)) == key) {
      if (prev_link_out != nullptr) {
        *prev_link_out = prev_link;
      }
      return entry;
    }
    prev_link = entry + kIdxNext;
    entry = p.LoadU64(prev_link);
  }
  return 0;
}

void MiniDb::IndexInsert(Vaddr table, int64_t key, Vaddr row) {
  Process& p = process();
  Vaddr buckets = p.LoadU64(table + kTblIndexBuckets);
  uint64_t bucket_count = p.LoadU64(table + kTblIndexBucketCount);
  Vaddr slot = buckets + (HashInt(key) % bucket_count) * 8;
  Vaddr entry = heap_.Alloc(kIdxEntrySize);
  p.StoreU64(entry + kIdxNext, p.LoadU64(slot));
  p.StoreU64(entry + kIdxKey, static_cast<uint64_t>(key));
  p.StoreU64(entry + kIdxRow, row);
  p.StoreU64(slot, entry);
}

bool MiniDb::IndexRemove(Vaddr table, int64_t key) {
  Process& p = process();
  Vaddr prev_link = 0;
  Vaddr entry = IndexLookup(table, key, &prev_link);
  if (entry == 0) {
    return false;
  }
  p.StoreU64(prev_link, p.LoadU64(entry + kIdxNext));
  heap_.Free(entry);
  return true;
}

Vaddr MiniDb::AppendRowSlot(Vaddr table) {
  Process& p = process();
  uint64_t row_size = p.LoadU64(table + kTblRowSize);
  uint64_t slot_size = kRowHeader + row_size;
  Vaddr tail = p.LoadU64(table + kTblSegTail);
  if (tail != 0) {
    uint64_t used = p.LoadU64(tail + kSegUsed);
    if (used < kRowsPerSegment) {
      p.StoreU64(tail + kSegUsed, used + 1);
      return tail + kSegRows + used * slot_size;
    }
  }
  Vaddr segment = heap_.Alloc(kSegRows + kRowsPerSegment * slot_size);
  p.StoreU64(segment + kSegNext, 0);
  p.StoreU64(segment + kSegUsed, 1);
  if (tail != 0) {
    p.StoreU64(tail + kSegNext, segment);
  } else {
    p.StoreU64(table + kTblSegHead, segment);
  }
  p.StoreU64(table + kTblSegTail, segment);
  return segment + kSegRows;
}

bool MiniDb::Insert(const std::string& table_name, const RowValue& row) {
  Vaddr table = FindTable(table_name);
  ODF_CHECK(table != 0) << "no such table: " << table_name;
  if (IndexLookup(table, row.key, nullptr) != 0) {
    return false;  // Duplicate primary key.
  }
  Process& p = process();
  std::vector<ColumnSpec> schema = ReadSchema(table);

  Vaddr slot = AppendRowSlot(table);
  p.StoreU64(slot, 1);  // Live.
  Vaddr cursor = slot + kRowHeader;
  size_t int_index = 0;
  size_t string_index = 0;
  for (size_t c = 0; c < schema.size(); ++c) {
    const ColumnSpec& col = schema[c];
    if (col.type == ColumnType::kInt64) {
      int64_t value = c == 0 ? row.key
                             : (int_index < row.ints.size() ? row.ints[int_index] : 0);
      if (c != 0) {
        ++int_index;
      }
      p.StoreU64(cursor, static_cast<uint64_t>(value));
    } else {
      std::string value =
          string_index < row.strings.size() ? row.strings[string_index] : std::string();
      ++string_index;
      value.resize(col.size, '\0');
      ODF_CHECK(p.WriteMemory(cursor, std::as_bytes(std::span(value.data(), value.size()))));
    }
    cursor += col.size;
  }
  IndexInsert(table, row.key, slot);
  p.StoreU64(table + kTblRowCount, p.LoadU64(table + kTblRowCount) + 1);
  return true;
}

RowValue MiniDb::ReadRow(Vaddr row, const std::vector<ColumnSpec>& schema) {
  Process& p = process();
  RowValue value;
  Vaddr cursor = row + kRowHeader;
  for (size_t c = 0; c < schema.size(); ++c) {
    const ColumnSpec& col = schema[c];
    if (col.type == ColumnType::kInt64) {
      int64_t v = static_cast<int64_t>(p.LoadU64(cursor));
      if (c == 0) {
        value.key = v;
      } else {
        value.ints.push_back(v);
      }
    } else {
      std::string text(col.size, '\0');
      ODF_CHECK(p.ReadMemory(cursor, std::as_writable_bytes(std::span(text.data(), text.size()))));
      text.resize(strnlen(text.c_str(), text.size()));
      value.strings.push_back(std::move(text));
    }
    cursor += col.size;
  }
  return value;
}

std::optional<RowValue> MiniDb::SelectByKey(const std::string& table_name, int64_t key) {
  Vaddr table = FindTable(table_name);
  ODF_CHECK(table != 0) << "no such table: " << table_name;
  Vaddr entry = IndexLookup(table, key, nullptr);
  if (entry == 0) {
    return std::nullopt;
  }
  Vaddr row = process().LoadU64(entry + kIdxRow);
  return ReadRow(row, ReadSchema(table));
}

bool MiniDb::UpdateByKey(const std::string& table_name, int64_t key, int64_t new_value) {
  Vaddr table = FindTable(table_name);
  ODF_CHECK(table != 0) << "no such table: " << table_name;
  Vaddr entry = IndexLookup(table, key, nullptr);
  if (entry == 0) {
    return false;
  }
  Process& p = process();
  Vaddr row = p.LoadU64(entry + kIdxRow);
  std::vector<ColumnSpec> schema = ReadSchema(table);
  // Find the first int column after the key.
  Vaddr cursor = row + kRowHeader + schema[0].size;
  for (size_t c = 1; c < schema.size(); ++c) {
    if (schema[c].type == ColumnType::kInt64) {
      p.StoreU64(cursor, static_cast<uint64_t>(new_value));
      return true;
    }
    cursor += schema[c].size;
  }
  return false;
}

bool MiniDb::DeleteByKey(const std::string& table_name, int64_t key) {
  Vaddr table = FindTable(table_name);
  ODF_CHECK(table != 0) << "no such table: " << table_name;
  Process& p = process();
  Vaddr entry = IndexLookup(table, key, nullptr);
  if (entry == 0) {
    return false;
  }
  Vaddr row = p.LoadU64(entry + kIdxRow);
  p.StoreU64(row, 0);  // Dead.
  IndexRemove(table, key);
  p.StoreU64(table + kTblRowCount, p.LoadU64(table + kTblRowCount) - 1);
  return true;
}

template <typename Fn>
uint64_t MiniDb::ForEachLiveRow(Vaddr table, Fn&& fn) {
  Process& p = process();
  uint64_t row_size = p.LoadU64(table + kTblRowSize);
  uint64_t slot_size = kRowHeader + row_size;
  uint64_t matched = 0;
  Vaddr segment = p.LoadU64(table + kTblSegHead);
  while (segment != 0) {
    uint64_t used = p.LoadU64(segment + kSegUsed);
    for (uint64_t i = 0; i < used; ++i) {
      Vaddr row = segment + kSegRows + i * slot_size;
      if (p.LoadU64(row) != 0 && fn(row)) {
        ++matched;
      }
    }
    segment = p.LoadU64(segment + kSegNext);
  }
  return matched;
}

namespace {

// Byte offset (past the row header) of the int_column_index-th kInt64 column after the key.
uint64_t IntColumnOffset(const std::vector<ColumnSpec>& schema, uint64_t int_column_index) {
  uint64_t offset = schema[0].size;
  uint64_t seen = 0;
  for (size_t c = 1; c < schema.size(); ++c) {
    if (schema[c].type == ColumnType::kInt64) {
      if (seen == int_column_index) {
        return offset;
      }
      ++seen;
    }
    offset += schema[c].size;
  }
  ODF_CHECK(false) << "no int column with index " << int_column_index;
  return 0;
}

}  // namespace

uint64_t MiniDb::CountWhereIntColumn(const std::string& table_name, uint64_t int_column_index,
                                     int64_t min_inclusive, int64_t max_inclusive) {
  Vaddr table = FindTable(table_name);
  ODF_CHECK(table != 0);
  std::vector<ColumnSpec> schema = ReadSchema(table);
  uint64_t offset = kRowHeader + IntColumnOffset(schema, int_column_index);
  Process& p = process();
  return ForEachLiveRow(table, [&](Vaddr row) {
    int64_t v = static_cast<int64_t>(p.LoadU64(row + offset));
    return v >= min_inclusive && v <= max_inclusive;
  });
}

uint64_t MiniDb::DeleteWhereIntColumn(const std::string& table_name, uint64_t int_column_index,
                                      int64_t min_inclusive, int64_t max_inclusive) {
  Vaddr table = FindTable(table_name);
  ODF_CHECK(table != 0);
  std::vector<ColumnSpec> schema = ReadSchema(table);
  uint64_t offset = kRowHeader + IntColumnOffset(schema, int_column_index);
  Process& p = process();
  uint64_t deleted = ForEachLiveRow(table, [&](Vaddr row) {
    int64_t v = static_cast<int64_t>(p.LoadU64(row + offset));
    if (v < min_inclusive || v > max_inclusive) {
      return false;
    }
    int64_t key = static_cast<int64_t>(p.LoadU64(row + kRowHeader));
    p.StoreU64(row, 0);
    IndexRemove(table, key);
    return true;
  });
  p.StoreU64(table + kTblRowCount, p.LoadU64(table + kTblRowCount) - deleted);
  return deleted;
}

uint64_t MiniDb::UpdateWhereIntColumn(const std::string& table_name, uint64_t int_column_index,
                                      int64_t min_inclusive, int64_t max_inclusive,
                                      int64_t new_value) {
  Vaddr table = FindTable(table_name);
  ODF_CHECK(table != 0);
  std::vector<ColumnSpec> schema = ReadSchema(table);
  uint64_t offset = kRowHeader + IntColumnOffset(schema, int_column_index);
  Process& p = process();
  return ForEachLiveRow(table, [&](Vaddr row) {
    int64_t v = static_cast<int64_t>(p.LoadU64(row + offset));
    if (v < min_inclusive || v > max_inclusive) {
      return false;
    }
    p.StoreU64(row + offset, static_cast<uint64_t>(new_value));
    return true;
  });
}

uint64_t MiniDb::RowCount(const std::string& table_name) {
  Vaddr table = FindTable(table_name);
  ODF_CHECK(table != 0);
  return process().LoadU64(table + kTblRowCount);
}

void MiniDb::BulkLoadFixture(const std::string& table, uint64_t rows, uint32_t text_width,
                             Rng& rng) {
  if (!HasTable(table)) {
    CreateTable(table, {ColumnSpec{ColumnType::kInt64, 8},
                        ColumnSpec{ColumnType::kText, text_width}});
  }
  std::string text(text_width, 'x');
  for (uint64_t i = 0; i < rows; ++i) {
    RowValue row;
    row.key = static_cast<int64_t>(i);
    row.ints.push_back(static_cast<int64_t>(rng.NextBelow(1000)));
    text[0] = static_cast<char>('a' + (i % 26));
    row.strings.push_back(text);
    ODF_CHECK(Insert(table, row)) << "bulk load duplicate at " << i;
  }
}

}  // namespace odf
