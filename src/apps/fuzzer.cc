#include "src/apps/fuzzer.h"

#include "src/util/log.h"
#include "src/util/stopwatch.h"

namespace odf {

ForkServerFuzzer::ForkServerFuzzer(Kernel& kernel, Process& parent, FuzzTarget target,
                                   FuzzerConfig config, std::vector<std::string> seed_corpus)
    : kernel_(kernel),
      parent_(parent),
      target_(std::move(target)),
      config_(config),
      corpus_(std::move(seed_corpus)),
      rng_(config.seed) {
  ODF_CHECK(!corpus_.empty()) << "fuzzer needs at least one seed input";
}

std::string ForkServerFuzzer::MutateInput() {
  std::string input = corpus_[rng_.NextBelow(corpus_.size())];
  // AFL-ish havoc: a few stacked mutations.
  uint64_t mutations = 1 + rng_.NextBelow(4);
  for (uint64_t m = 0; m < mutations; ++m) {
    switch (rng_.NextBelow(4)) {
      case 0: {  // Byte flip.
        if (!input.empty()) {
          input[rng_.NextBelow(input.size())] ^= static_cast<char>(1 << rng_.NextBelow(8));
        }
        break;
      }
      case 1: {  // Insert a random digit/char (keeps many inputs parseable).
        const char alphabet[] = "0123456789 \nISUDELNRPGC-";
        size_t pos = input.empty() ? 0 : rng_.NextBelow(input.size());
        input.insert(pos, 1, alphabet[rng_.NextBelow(sizeof(alphabet) - 1)]);
        break;
      }
      case 2: {  // Delete a span.
        if (input.size() > 2) {
          size_t pos = rng_.NextBelow(input.size() - 1);
          input.erase(pos, 1 + rng_.NextBelow(std::min<size_t>(8, input.size() - pos)));
        }
        break;
      }
      case 3: {  // Splice with another corpus entry.
        const std::string& other = corpus_[rng_.NextBelow(corpus_.size())];
        if (!other.empty()) {
          input.append("\n").append(other.substr(rng_.NextBelow(other.size())));
        }
        break;
      }
    }
  }
  if (input.size() > config_.max_input_bytes) {
    input.resize(config_.max_input_bytes);
  }
  return input;
}

uint64_t ForkServerFuzzer::ExecuteInput(const std::string& input) {
  // The fork-server step: duplicate the initialized target for this one input.
  Process& child = kernel_.Fork(parent_, config_.fork_mode);
  coverage_.Clear();
  ShellResult result = target_(child, input, &coverage_);
  stats_.parse_errors += result.parse_errors;
  kernel_.Exit(child, 0);
  kernel_.Wait(parent_);
  ++stats_.executions;
  uint64_t new_edges = coverage_.MergeInto(virgin_);
  stats_.covered_edges += new_edges;
  return new_edges;
}

void ForkServerFuzzer::DeterministicStage(const std::string& input) {
  // Bounded walking bit flips (AFL's bitflip 1/1) followed by dictionary overwrites, each
  // variant executed once; anything that finds new edges joins the corpus.
  size_t budget = config_.deterministic_budget;
  for (size_t bit = 0; bit < input.size() * 8 && budget > 0; bit += 7, --budget) {
    std::string variant = input;
    variant[bit / 8] ^= static_cast<char>(1 << (bit % 8));
    if (ExecuteInput(variant) > 0) {
      ++stats_.new_coverage_inputs;
      if (corpus_.size() < config_.corpus_limit) {
        corpus_.push_back(std::move(variant));
      }
    }
  }
  for (const std::string& token : config_.dictionary) {
    if (budget == 0 || token.size() >= input.size()) {
      break;
    }
    --budget;
    std::string variant = input;
    variant.replace(rng_.NextBelow(variant.size() - token.size()), token.size(), token);
    if (ExecuteInput(variant) > 0) {
      ++stats_.new_coverage_inputs;
      if (corpus_.size() < config_.corpus_limit) {
        corpus_.push_back(std::move(variant));
      }
    }
  }
}

bool ForkServerFuzzer::RunOne() {
  std::string input = MutateInput();
  uint64_t new_edges = ExecuteInput(input);
  if (new_edges > 0) {
    ++stats_.new_coverage_inputs;
    if (corpus_.size() < config_.corpus_limit) {
      corpus_.push_back(input);
    }
    if (config_.deterministic_stage) {
      DeterministicStage(input);
    }
    return true;
  }
  return false;
}

void ForkServerFuzzer::RunFor(double seconds) {
  Stopwatch timer;
  while (timer.ElapsedSeconds() < seconds) {
    RunOne();
  }
  stats_.elapsed_seconds += timer.ElapsedSeconds();
}

FuzzTarget MakeMiniDbShellTarget(Kernel& kernel, std::string table, Vaddr db_meta_base) {
  return [&kernel, table = std::move(table), db_meta_base](
             Process& child, std::string_view input, CoverageMap* coverage) {
    MiniDb view = MiniDb::Attach(kernel, child, db_meta_base);
    return RunMiniDbShell(view, table, input, coverage);
  };
}

std::vector<std::string> MiniDbSeedCorpus() {
  return {
      "SEL 5\n",
      "INS 900001 42 hello\nSEL 900001\n",
      "UPD 7 99\nSEL 7\n",
      "DEL 11\nSEL 11\n",
      "RNG 10 20\n",
      "UPR 1 5 77\nRNG 77 77\n",
      "DLR 990 995\n",
      "INS 900002 1 a\nINS 900003 2 b\nDEL 900002\nRNG 1 2\n",
  };
}

}  // namespace odf
