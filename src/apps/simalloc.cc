#include "src/apps/simalloc.h"

#include <bit>

#include "src/util/log.h"

namespace odf {

namespace {

constexpr uint64_t kMagic = 0x0d'f0'9e'a9'51'6d'a1'10ULL;
constexpr uint64_t kBins = 32;
constexpr uint64_t kAlign = 16;
constexpr uint64_t kMinPayload = 16;
constexpr uint64_t kSplitSlack = 64;  // Split only when the tail is worth keeping.

// In-sim header layout (offsets from heap base).
constexpr Vaddr kOffMagic = 0;
constexpr Vaddr kOffCapacity = 8;
constexpr Vaddr kOffBrk = 16;
constexpr Vaddr kOffAllocated = 24;
constexpr Vaddr kOffAllocations = 32;
constexpr Vaddr kOffFrees = 40;
constexpr Vaddr kOffFreeHeads = 48;
constexpr Vaddr kHeaderSize = kOffFreeHeads + kBins * 8;  // 304; data starts at 512.
constexpr Vaddr kDataStart = 512;

// Block layout: [u64 size_and_flags][payload...]; free blocks store the next-free va in the
// first payload word. size is the payload size; bit 0 flags "in use".
constexpr uint64_t kBlockHeader = 8;
constexpr uint64_t kInUseFlag = 1;

uint64_t RoundUp(uint64_t value, uint64_t align) { return (value + align - 1) & ~(align - 1); }

// Bin that holds blocks of `size`: floor(log2(size)).
uint64_t BinOf(uint64_t size) {
  return static_cast<uint64_t>(63 - std::countl_zero(size)) % kBins;
}

// Smallest bin whose every block is guaranteed >= size: ceil(log2(size)).
uint64_t CeilBinOf(uint64_t size) {
  uint64_t bin = BinOf(size);
  return (size & (size - 1)) == 0 ? bin : bin + 1;
}

}  // namespace

SimHeap SimHeap::Create(Process& process, uint64_t capacity) {
  ODF_CHECK(capacity >= kDataStart + 4096) << "heap capacity too small";
  Vaddr base = process.Mmap(capacity, kProtRead | kProtWrite);
  SimHeap heap(&process, base);
  process.StoreU64(base + kOffMagic, kMagic);
  process.StoreU64(base + kOffCapacity, capacity);
  process.StoreU64(base + kOffBrk, kDataStart);
  process.StoreU64(base + kOffAllocated, 0);
  process.StoreU64(base + kOffAllocations, 0);
  process.StoreU64(base + kOffFrees, 0);
  for (uint64_t bin = 0; bin < kBins; ++bin) {
    process.StoreU64(base + kOffFreeHeads + bin * 8, 0);
  }
  return heap;
}

SimHeap SimHeap::Attach(Process& process, Vaddr base) {
  SimHeap heap(&process, base);
  ODF_CHECK(process.LoadU64(base + kOffMagic) == kMagic) << "no heap at " << base;
  return heap;
}

Vaddr SimHeap::Alloc(uint64_t size) {
  Process& p = *process_;
  size = RoundUp(size < kMinPayload ? kMinPayload : size, kAlign);

  // 1) Search the free lists, first-fit in the ceil bin, then any larger bin's head.
  for (uint64_t bin = CeilBinOf(size); bin < kBins; ++bin) {
    Vaddr head_slot = base_ + kOffFreeHeads + bin * 8;
    Vaddr prev_slot = head_slot;
    Vaddr block = p.LoadU64(head_slot);
    int scanned = 0;
    while (block != 0 && scanned < 16) {  // Bounded chain scan in the exact-fit bin.
      uint64_t block_size = p.LoadU64(block) & ~kInUseFlag;
      if (block_size >= size) {
        Vaddr next = p.LoadU64(block + kBlockHeader);
        p.StoreU64(prev_slot, next);  // Unlink.
        // Split if the remainder is useful.
        if (block_size >= size + kBlockHeader + kSplitSlack) {
          Vaddr tail = block + kBlockHeader + size;
          uint64_t tail_size = block_size - size - kBlockHeader;
          p.StoreU64(tail, tail_size);
          Vaddr tail_bin_slot = base_ + kOffFreeHeads + BinOf(tail_size) * 8;
          p.StoreU64(tail + kBlockHeader, p.LoadU64(tail_bin_slot));
          p.StoreU64(tail_bin_slot, tail);
          block_size = size;
        }
        p.StoreU64(block, block_size | kInUseFlag);
        p.StoreU64(base_ + kOffAllocated, p.LoadU64(base_ + kOffAllocated) + block_size);
        p.StoreU64(base_ + kOffAllocations, p.LoadU64(base_ + kOffAllocations) + 1);
        return block + kBlockHeader;
      }
      prev_slot = block + kBlockHeader;
      block = p.LoadU64(prev_slot);
      ++scanned;
    }
  }

  // 2) Carve fresh space.
  uint64_t brk = p.LoadU64(base_ + kOffBrk);
  uint64_t capacity = p.LoadU64(base_ + kOffCapacity);
  uint64_t needed = kBlockHeader + size;
  ODF_CHECK(brk + needed <= capacity) << "SimHeap exhausted: brk=" << brk << " need=" << needed
                                      << " capacity=" << capacity;
  Vaddr block = base_ + brk;
  p.StoreU64(base_ + kOffBrk, brk + needed);
  p.StoreU64(block, size | kInUseFlag);
  p.StoreU64(base_ + kOffAllocated, p.LoadU64(base_ + kOffAllocated) + size);
  p.StoreU64(base_ + kOffAllocations, p.LoadU64(base_ + kOffAllocations) + 1);
  return block + kBlockHeader;
}

void SimHeap::Free(Vaddr payload) {
  Process& p = *process_;
  Vaddr block = payload - kBlockHeader;
  uint64_t size_flags = p.LoadU64(block);
  ODF_CHECK((size_flags & kInUseFlag) != 0) << "double free at " << payload;
  uint64_t size = size_flags & ~kInUseFlag;
  p.StoreU64(block, size);
  Vaddr bin_slot = base_ + kOffFreeHeads + BinOf(size) * 8;
  p.StoreU64(block + kBlockHeader, p.LoadU64(bin_slot));
  p.StoreU64(bin_slot, block);
  p.StoreU64(base_ + kOffAllocated, p.LoadU64(base_ + kOffAllocated) - size);
  p.StoreU64(base_ + kOffFrees, p.LoadU64(base_ + kOffFrees) + 1);
}

SimHeapStats SimHeap::Stats() {
  Process& p = *process_;
  SimHeapStats stats;
  stats.capacity = p.LoadU64(base_ + kOffCapacity);
  stats.brk = p.LoadU64(base_ + kOffBrk);
  stats.allocated_bytes = p.LoadU64(base_ + kOffAllocated);
  stats.allocations = p.LoadU64(base_ + kOffAllocations);
  stats.frees = p.LoadU64(base_ + kOffFrees);
  return stats;
}

bool SimHeap::CheckConsistency() {
  Process& p = *process_;
  if (p.LoadU64(base_ + kOffMagic) != kMagic) {
    return false;
  }
  uint64_t brk = p.LoadU64(base_ + kOffBrk);
  uint64_t capacity = p.LoadU64(base_ + kOffCapacity);
  if (brk > capacity) {
    return false;
  }
  for (uint64_t bin = 0; bin < kBins; ++bin) {
    Vaddr block = p.LoadU64(base_ + kOffFreeHeads + bin * 8);
    int hops = 0;
    while (block != 0) {
      if (block < base_ + kDataStart || block >= base_ + brk || ++hops > 1000000) {
        return false;
      }
      uint64_t size_flags = p.LoadU64(block);
      if ((size_flags & kInUseFlag) != 0) {
        return false;  // Free-list entry marked in-use.
      }
      block = p.LoadU64(block + kBlockHeader);
    }
  }
  return true;
}

}  // namespace odf
