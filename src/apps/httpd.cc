#include "src/apps/httpd.h"

#include <vector>

#include "src/util/log.h"
#include "src/util/stopwatch.h"

namespace odf {

PreforkServer PreforkServer::Start(Kernel& kernel, const HttpdConfig& config) {
  Process& control = kernel.CreateProcess();
  PreforkServer server(&kernel, &control);
  server.config_ = config;

  // The control process's mapped memory: configuration area + in-memory document cache.
  uint64_t doc_bytes = config.document_count * config.document_bytes;
  ODF_CHECK(config.mapped_bytes > doc_bytes + (1 << 20));
  Vaddr config_area = control.Mmap(config.mapped_bytes - doc_bytes, kProtRead | kProtWrite);
  control.address_space().PopulateRange(config_area, config.mapped_bytes - doc_bytes);
  server.documents_base_ = control.Mmap(doc_bytes, kProtRead | kProtWrite);
  std::vector<std::byte> document(config.document_bytes);
  for (uint64_t d = 0; d < config.document_count; ++d) {
    for (uint64_t i = 0; i < document.size(); ++i) {
      document[i] = static_cast<std::byte>(d * 131 + i);
    }
    ODF_CHECK(control.WriteMemory(server.documents_base_ + d * config.document_bytes,
                                  document));
  }
  server.scratch_base_ = control.Mmap(64 * kPageSize, kProtRead | kProtWrite);

  // Pre-fork the worker pool (the MPM prefork model).
  Stopwatch startup;
  for (int w = 0; w < config.worker_count; ++w) {
    server.workers_.push_back(&kernel.Fork(control, config.fork_mode));
  }
  server.startup_fork_micros_ = startup.ElapsedMicros();
  return server;
}

uint64_t PreforkServer::HandleRequest(uint64_t document_id, LatencyRecorder* latency) {
  ODF_CHECK(!shut_down_ && !workers_.empty());
  Stopwatch timer;
  Process& worker = *workers_[next_worker_];
  next_worker_ = (next_worker_ + 1) % workers_.size();

  document_id %= config_.document_count;
  Vaddr doc = documents_base_ + document_id * config_.document_bytes;

  // "Parse" + serve: read the document through the worker's view, build a response in the
  // worker's scratch memory (first writes COW those pages), checksum it.
  std::vector<std::byte> buffer(config_.document_bytes);
  ODF_CHECK(worker.ReadMemory(doc, buffer));
  uint64_t checksum = 1469598103934665603ULL;
  for (std::byte b : buffer) {
    checksum = (checksum ^ static_cast<uint8_t>(b)) * 1099511628211ULL;
  }
  worker.StoreU64(scratch_base_ + (document_id % 64) * kPageSize, checksum);

  if (latency != nullptr) {
    latency->Record(timer.ElapsedMicros());
  }
  return checksum;
}

void PreforkServer::Shutdown() {
  if (shut_down_) {
    return;
  }
  for (Process* worker : workers_) {
    kernel_->Exit(*worker, 0);
    kernel_->Wait(*control_);
  }
  workers_.clear();
  kernel_->Exit(*control_, 0);
  shut_down_ = true;
}

}  // namespace odf
