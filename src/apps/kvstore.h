// KvStore: a Redis-like in-memory key-value store whose entire dataset (hash table, chains,
// keys and values) lives in simulated process memory.
//
// Reproduces the paper's Redis snapshot scenario (§5.3.3): the serving process periodically
// forks so a child can serialize a consistent snapshot to the in-memory filesystem while the
// parent keeps answering requests. The fork mechanism (classic vs on-demand) is the variable
// under test; the snapshot blocking time and the request tail latency are the metrics.
#ifndef ODF_SRC_APPS_KVSTORE_H_
#define ODF_SRC_APPS_KVSTORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/apps/simalloc.h"
#include "src/proc/kernel.h"
#include "src/util/rng.h"

namespace odf {

struct KvStoreStats {
  uint64_t key_count = 0;
  uint64_t bucket_count = 0;
  uint64_t bytes_in_heap = 0;
};

class KvStore {
 public:
  // Creates an empty store inside `process`, with a heap of `heap_capacity` bytes.
  static KvStore Create(Kernel& kernel, Process& process, uint64_t heap_capacity,
                        uint64_t bucket_count = 1 << 20);

  // Re-binds the store in a forked child (same base address, identical state).
  static KvStore Attach(Kernel& kernel, Process& process, Vaddr meta_base);

  void Set(std::string_view key, std::string_view value);
  std::optional<std::string> Get(std::string_view key);
  bool Delete(std::string_view key);
  uint64_t Count();

  // Bulk-loads `n` keys ("key:<i>" -> random bytes of value_size) — the production-condition
  // dataset of §5.3.3 (996 MB before snapshotting experiments).
  void FillSequential(uint64_t n, uint64_t value_size, Rng& rng);

  // Serializes every entry to `path` in the in-memory filesystem, reading through THIS
  // process's view — run it in a forked child for a consistent snapshot. Returns bytes
  // written.
  uint64_t SaveSnapshot(const std::string& path);

  // Forks the owning process with `mode`, has the child write the snapshot and exit, and
  // reaps it. Returns the time spent *blocked in fork* (the paper's latest_fork_usec metric)
  // in microseconds.
  double SnapshotWithFork(const std::string& path, ForkMode mode);

  KvStoreStats Stats();
  Vaddr meta_base() const { return meta_base_; }
  Process& process() { return heap_.process(); }

 private:
  KvStore(Kernel* kernel, SimHeap heap, Vaddr meta_base)
      : kernel_(kernel), heap_(heap), meta_base_(meta_base) {}

  Vaddr FindEntry(std::string_view key, Vaddr* prev_link_out);
  Vaddr BucketSlot(std::string_view key);

  Kernel* kernel_;
  SimHeap heap_;
  Vaddr meta_base_;
};

}  // namespace odf

#endif  // ODF_SRC_APPS_KVSTORE_H_
