#include "src/apps/lambda.h"

#include "src/util/log.h"
#include "src/util/stopwatch.h"

namespace odf {

namespace {

// State-table layout: [u64 entry_count][u64 entries...] at a heap block.
constexpr Vaddr kOffCount = 0;
constexpr Vaddr kOffEntries = 8;

}  // namespace

Vaddr LambdaPlatform::InitializeTemplate(Process& process, const LambdaConfig& config) {
  // The language runtime: a populated image (interpreter text, libraries, GC heap...).
  Vaddr image = process.Mmap(config.runtime_image_bytes, kProtRead | kProtWrite);
  process.address_space().PopulateRange(image, config.runtime_image_bytes);

  // Function state: a precomputed lookup table the handler consults (read-mostly).
  SimHeap heap = SimHeap::Create(process, config.state_table_entries * 8 + (64ULL << 20));
  Vaddr state = heap.Alloc(kOffEntries + config.state_table_entries * 8);
  process.StoreU64(state + kOffCount, config.state_table_entries);
  for (uint64_t i = 0; i < config.state_table_entries; ++i) {
    // "Expensive" precomputation, the thing cold starts must redo.
    uint64_t value = i * 0x9e3779b97f4a7c15ULL;
    value ^= value >> 29;
    process.StoreU64(state + kOffEntries + i * 8, value);
  }
  return state;
}

LambdaPlatform LambdaPlatform::Deploy(Kernel& kernel, const LambdaConfig& config) {
  LambdaPlatform platform(&kernel, config);
  Stopwatch deploy_timer;
  Process& process = kernel.CreateProcess();
  process.set_fork_mode(config.fork_mode);
  platform.template_process_ = &process;
  platform.state_base_ = InitializeTemplate(process, config);
  platform.deploy_seconds_ = deploy_timer.ElapsedSeconds();
  return platform;
}

uint64_t LambdaPlatform::RunHandler(Process& process, Vaddr state_base,
                                    std::span<const uint8_t> payload) {
  // The handler: hash the payload against `handler_touches` scattered state entries and
  // write a small response buffer (the writes exercise COW in warm clones).
  uint64_t count = process.LoadU64(state_base + kOffCount);
  uint64_t hash = 1469598103934665603ULL;
  for (uint8_t byte : payload) {
    hash = (hash ^ byte) * 1099511628211ULL;
  }
  uint64_t accumulator = 0;
  for (uint64_t t = 0; t < config_.handler_touches; ++t) {
    uint64_t index = (hash + t * 0x9e3779b97f4a7c15ULL) % count;
    accumulator ^= process.LoadU64(state_base + kOffEntries + index * 8);
  }
  // Response buffer: a fresh mapping in the clone (cheap) written with the result.
  Vaddr response = process.Mmap(kPageSize, kProtRead | kProtWrite);
  process.StoreU64(response, accumulator);
  return accumulator;
}

LambdaInvocation LambdaPlatform::Invoke(std::span<const uint8_t> payload) {
  LambdaInvocation result;
  Stopwatch startup_timer;
  Process& clone = kernel_->Fork(*template_process_, config_.fork_mode);
  result.startup_us = startup_timer.ElapsedMicros();

  Stopwatch run_timer;
  result.result = RunHandler(clone, state_base_, payload);
  result.run_us = run_timer.ElapsedMicros();

  kernel_->Exit(clone, 0);
  kernel_->Wait(*template_process_);
  return result;
}

LambdaInvocation LambdaPlatform::InvokeCold(std::span<const uint8_t> payload) {
  LambdaInvocation result;
  Stopwatch startup_timer;
  Process& fresh = kernel_->CreateProcess();
  Vaddr state = InitializeTemplate(fresh, config_);
  result.startup_us = startup_timer.ElapsedMicros();

  Stopwatch run_timer;
  result.result = RunHandler(fresh, state, payload);
  result.run_us = run_timer.ElapsedMicros();
  kernel_->Exit(fresh, 0);
  return result;
}

}  // namespace odf
