// ForkServerFuzzer: an AFL-style coverage-guided fuzzer built on the simulated kernel's fork.
//
// Reproduces the paper's §5.3.1 setup: the target (the MiniDb shell over a large pre-loaded
// database) is initialized ONCE in a parent process; for every input the fuzzer forks the
// parent, runs the input in the child against the child's COW view, collects edge coverage,
// and reaps the child. Fork cost directly gates executions/second — the Fig. 9 metric.
#ifndef ODF_SRC_APPS_FUZZER_H_
#define ODF_SRC_APPS_FUZZER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/apps/minidb_shell.h"
#include "src/proc/kernel.h"
#include "src/util/rng.h"

namespace odf {

struct FuzzerConfig {
  ForkMode fork_mode = ForkMode::kClassic;
  uint64_t seed = 1;
  size_t max_input_bytes = 512;
  size_t corpus_limit = 512;
  // AFL-style deterministic stage: when an input earns a corpus slot, run a bounded pass of
  // walking bit flips and dictionary substitutions over it before returning to havoc.
  bool deterministic_stage = true;
  size_t deterministic_budget = 64;  // Max deterministic executions per new corpus entry.
  // Dictionary tokens spliced in by the mutator (AFL's -x): command keywords by default.
  std::vector<std::string> dictionary = {"INS", "SEL", "UPD", "DEL", "RNG",
                                         "UPR", "DLR", " ", "\n", "-1", "0"};
};

struct FuzzerStats {
  uint64_t executions = 0;
  uint64_t new_coverage_inputs = 0;
  uint64_t covered_edges = 0;
  uint64_t parse_errors = 0;
  double elapsed_seconds = 0;
  double ExecsPerSecond() const {
    return elapsed_seconds > 0 ? static_cast<double>(executions) / elapsed_seconds : 0;
  }
};

// The target callback: runs one input inside the forked child process and reports coverage.
// (The analog of the instrumented target binary; `child` is the forked process.)
using FuzzTarget = std::function<ShellResult(Process& child, std::string_view input,
                                             CoverageMap* coverage)>;

class ForkServerFuzzer {
 public:
  // `parent` must already be initialized (target state loaded). Seeds form the initial
  // corpus.
  ForkServerFuzzer(Kernel& kernel, Process& parent, FuzzTarget target, FuzzerConfig config,
                   std::vector<std::string> seed_corpus);

  // Runs one fuzz iteration: pick + mutate an input, fork, execute, merge coverage, reap.
  // When an input earns a corpus slot and the deterministic stage is enabled, a bounded
  // pass of bit flips and dictionary insertions runs on it immediately (like AFL's
  // deterministic stages on fresh queue entries). Returns true on new coverage.
  bool RunOne();

  // Runs iterations until `seconds` of wall-clock time elapse; updates stats continuously.
  void RunFor(double seconds);

  const FuzzerStats& stats() const { return stats_; }
  size_t corpus_size() const { return corpus_.size(); }

 private:
  std::string MutateInput();
  // Executes one concrete input (fork/run/merge/reap); returns new-edge count.
  uint64_t ExecuteInput(const std::string& input);
  void DeterministicStage(const std::string& input);

  Kernel& kernel_;
  Process& parent_;
  FuzzTarget target_;
  FuzzerConfig config_;
  std::vector<std::string> corpus_;
  std::array<uint8_t, CoverageMap::kSize> virgin_{};
  CoverageMap coverage_;
  Rng rng_;
  FuzzerStats stats_;
};

// Convenience: builds the MiniDb-shell target bound to `table` and `db_meta_base`.
FuzzTarget MakeMiniDbShellTarget(Kernel& kernel, std::string table, Vaddr db_meta_base);

// The standard seed corpus for the MiniDb shell (valid commands the mutator can splice).
std::vector<std::string> MiniDbSeedCorpus();

}  // namespace odf

#endif  // ODF_SRC_APPS_FUZZER_H_
