// PreforkServer: an Apache-prefork-style server (§5.3.5) — the paper's "no benefit" case.
//
// A control process with a small footprint (≈7 MB mapped, like Apache before forking) spawns
// worker processes via fork at startup; requests are then handled by long-lived workers, so
// fork cost is off the request path and on-demand-fork is expected to make no measurable
// difference. Reproducing a negative result keeps the harness honest.
#ifndef ODF_SRC_APPS_HTTPD_H_
#define ODF_SRC_APPS_HTTPD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/proc/kernel.h"
#include "src/util/latency_recorder.h"
#include "src/util/rng.h"

namespace odf {

struct HttpdConfig {
  uint64_t mapped_bytes = 7ULL << 20;  // Apache maps ~7 MB of virtual memory before forking.
  uint64_t document_count = 64;
  uint64_t document_bytes = 16 << 10;
  int worker_count = 8;
  ForkMode fork_mode = ForkMode::kClassic;
};

class PreforkServer {
 public:
  // Builds the control process (config + document cache in memory) and pre-forks workers.
  static PreforkServer Start(Kernel& kernel, const HttpdConfig& config);

  // Handles one request on the next worker (round-robin): parse a request line, read the
  // document from the worker's COW view, write a response scratch buffer. Returns the
  // response checksum (so the work is not optimized away).
  uint64_t HandleRequest(uint64_t document_id, LatencyRecorder* latency = nullptr);

  // Time from Start() until all workers were forked (startup latency, fork-dependent).
  double startup_fork_micros() const { return startup_fork_micros_; }

  int worker_count() const { return static_cast<int>(workers_.size()); }

  // Stops all workers and the control process.
  void Shutdown();

 private:
  PreforkServer(Kernel* kernel, Process* control) : kernel_(kernel), control_(control) {}

  Kernel* kernel_;
  Process* control_;
  std::vector<Process*> workers_;
  HttpdConfig config_;
  Vaddr documents_base_ = 0;
  Vaddr scratch_base_ = 0;
  size_t next_worker_ = 0;
  double startup_fork_micros_ = 0;
  bool shut_down_ = false;
};

}  // namespace odf

#endif  // ODF_SRC_APPS_HTTPD_H_
