#include "src/apps/kvstore.h"

#include <cstring>
#include <vector>

#include "src/util/log.h"
#include "src/util/stopwatch.h"

namespace odf {

namespace {

constexpr uint64_t kMetaMagic = 0x6b'76'73'74'6f'72'65'00ULL;  // "kvstore".

// Meta block layout (in-sim).
constexpr Vaddr kOffMagic = 0;
constexpr Vaddr kOffBucketCount = 8;
constexpr Vaddr kOffKeyCount = 16;
constexpr Vaddr kOffBuckets = 24;
constexpr Vaddr kOffHeapBase = 32;
constexpr uint64_t kMetaSize = 40;

// Entry layout: [u64 next][u32 key_len][u32 val_len][key bytes][value bytes].
constexpr Vaddr kEntryNext = 0;
constexpr Vaddr kEntryKeyLen = 8;
constexpr Vaddr kEntryValLen = 12;
constexpr Vaddr kEntryKey = 16;

uint64_t HashKey(std::string_view key) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a.
  for (char c : key) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

KvStore KvStore::Create(Kernel& kernel, Process& process, uint64_t heap_capacity,
                        uint64_t bucket_count) {
  SimHeap heap = SimHeap::Create(process, heap_capacity);
  Vaddr meta = heap.Alloc(kMetaSize);
  Vaddr buckets = heap.Alloc(bucket_count * 8);
  ODF_CHECK(process.MemsetMemory(buckets, std::byte{0}, bucket_count * 8));
  process.StoreU64(meta + kOffMagic, kMetaMagic);
  process.StoreU64(meta + kOffBucketCount, bucket_count);
  process.StoreU64(meta + kOffKeyCount, 0);
  process.StoreU64(meta + kOffBuckets, buckets);
  process.StoreU64(meta + kOffHeapBase, heap.base());
  return KvStore(&kernel, heap, meta);
}

KvStore KvStore::Attach(Kernel& kernel, Process& process, Vaddr meta_base) {
  ODF_CHECK(process.LoadU64(meta_base + kOffMagic) == kMetaMagic)
      << "no kvstore at " << meta_base;
  Vaddr heap_base = process.LoadU64(meta_base + kOffHeapBase);
  return KvStore(&kernel, SimHeap::Attach(process, heap_base), meta_base);
}

Vaddr KvStore::BucketSlot(std::string_view key) {
  Process& p = process();
  uint64_t bucket_count = p.LoadU64(meta_base_ + kOffBucketCount);
  Vaddr buckets = p.LoadU64(meta_base_ + kOffBuckets);
  return buckets + (HashKey(key) % bucket_count) * 8;
}

Vaddr KvStore::FindEntry(std::string_view key, Vaddr* prev_link_out) {
  Process& p = process();
  Vaddr prev_link = BucketSlot(key);
  Vaddr entry = p.LoadU64(prev_link);
  std::vector<std::byte> key_buffer;
  while (entry != 0) {
    uint32_t key_len = p.LoadU32(entry + kEntryKeyLen);
    if (key_len == key.size()) {
      key_buffer.resize(key_len);
      ODF_CHECK(p.ReadMemory(entry + kEntryKey, key_buffer));
      if (std::memcmp(key_buffer.data(), key.data(), key_len) == 0) {
        if (prev_link_out != nullptr) {
          *prev_link_out = prev_link;
        }
        return entry;
      }
    }
    prev_link = entry + kEntryNext;
    entry = p.LoadU64(prev_link);
  }
  if (prev_link_out != nullptr) {
    *prev_link_out = 0;
  }
  return 0;
}

void KvStore::Set(std::string_view key, std::string_view value) {
  Process& p = process();
  Vaddr prev_link = 0;
  Vaddr existing = FindEntry(key, &prev_link);
  if (existing != 0) {
    uint32_t val_len = p.LoadU32(existing + kEntryValLen);
    if (val_len == value.size()) {  // Overwrite in place (the common Redis update).
      ODF_CHECK(p.WriteMemory(existing + kEntryKey + key.size(),
                              std::as_bytes(std::span(value.data(), value.size()))));
      return;
    }
    // Size changed: unlink and free, then insert fresh.
    p.StoreU64(prev_link, p.LoadU64(existing + kEntryNext));
    heap_.Free(existing);
    p.StoreU64(meta_base_ + kOffKeyCount, p.LoadU64(meta_base_ + kOffKeyCount) - 1);
  }
  Vaddr entry = heap_.Alloc(kEntryKey + key.size() + value.size());
  Vaddr bucket = BucketSlot(key);
  p.StoreU64(entry + kEntryNext, p.LoadU64(bucket));
  p.StoreU32(entry + kEntryKeyLen, static_cast<uint32_t>(key.size()));
  p.StoreU32(entry + kEntryValLen, static_cast<uint32_t>(value.size()));
  ODF_CHECK(p.WriteMemory(entry + kEntryKey, std::as_bytes(std::span(key.data(), key.size()))));
  ODF_CHECK(p.WriteMemory(entry + kEntryKey + key.size(),
                          std::as_bytes(std::span(value.data(), value.size()))));
  p.StoreU64(bucket, entry);
  p.StoreU64(meta_base_ + kOffKeyCount, p.LoadU64(meta_base_ + kOffKeyCount) + 1);
}

std::optional<std::string> KvStore::Get(std::string_view key) {
  Process& p = process();
  Vaddr entry = FindEntry(key, nullptr);
  if (entry == 0) {
    return std::nullopt;
  }
  uint32_t val_len = p.LoadU32(entry + kEntryValLen);
  std::string value(val_len, '\0');
  ODF_CHECK(p.ReadMemory(entry + kEntryKey + key.size(),
                         std::as_writable_bytes(std::span(value.data(), value.size()))));
  return value;
}

bool KvStore::Delete(std::string_view key) {
  Process& p = process();
  Vaddr prev_link = 0;
  Vaddr entry = FindEntry(key, &prev_link);
  if (entry == 0) {
    return false;
  }
  p.StoreU64(prev_link, p.LoadU64(entry + kEntryNext));
  heap_.Free(entry);
  p.StoreU64(meta_base_ + kOffKeyCount, p.LoadU64(meta_base_ + kOffKeyCount) - 1);
  return true;
}

uint64_t KvStore::Count() { return process().LoadU64(meta_base_ + kOffKeyCount); }

void KvStore::FillSequential(uint64_t n, uint64_t value_size, Rng& rng) {
  std::string value(value_size, '\0');
  for (uint64_t i = 0; i < n; ++i) {
    // Vary the value content cheaply; full-random bytes are unnecessary for memory shape.
    for (size_t j = 0; j < value.size(); j += 64) {
      value[j] = static_cast<char>(rng.Next());
    }
    Set("key:" + std::to_string(i), value);
  }
}

uint64_t KvStore::SaveSnapshot(const std::string& path) {
  Process& p = process();
  auto file = kernel_->fs().Open(path);
  file->Truncate(0);
  uint64_t offset = 0;
  uint64_t bucket_count = p.LoadU64(meta_base_ + kOffBucketCount);
  Vaddr buckets = p.LoadU64(meta_base_ + kOffBuckets);
  std::vector<std::byte> buffer;
  for (uint64_t b = 0; b < bucket_count; ++b) {
    Vaddr entry = p.LoadU64(buckets + b * 8);
    while (entry != 0) {
      uint32_t key_len = p.LoadU32(entry + kEntryKeyLen);
      uint32_t val_len = p.LoadU32(entry + kEntryValLen);
      buffer.resize(8 + key_len + val_len);
      std::memcpy(buffer.data(), &key_len, 4);
      std::memcpy(buffer.data() + 4, &val_len, 4);
      ODF_CHECK(p.ReadMemory(entry + kEntryKey,
                             std::span(buffer.data() + 8, key_len + val_len)));
      file->Write(offset, buffer);
      offset += buffer.size();
      entry = p.LoadU64(entry + kEntryNext);
    }
  }
  return offset;
}

double KvStore::SnapshotWithFork(const std::string& path, ForkMode mode) {
  Process& parent = process();
  Stopwatch fork_timer;
  Process& child = kernel_->Fork(parent, mode);
  double blocked_micros = fork_timer.ElapsedMicros();

  KvStore child_view = Attach(*kernel_, child, meta_base_);
  child_view.SaveSnapshot(path);
  kernel_->Exit(child, 0);
  kernel_->Wait(parent);
  return blocked_micros;
}

KvStoreStats KvStore::Stats() {
  KvStoreStats stats;
  stats.key_count = Count();
  stats.bucket_count = process().LoadU64(meta_base_ + kOffBucketCount);
  stats.bytes_in_heap = heap_.Stats().allocated_bytes;
  return stats;
}

}  // namespace odf
