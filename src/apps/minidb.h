// MiniDb: a small relational database (fixed-width rows, hash primary index, segment row
// storage) living entirely in simulated process memory.
//
// Stands in for SQLite in two of the paper's experiments:
//  - §5.3.1 fuzzing: the command interpreter (minidb_shell.h) is the fuzz target, run against
//    a database pre-loaded with a large dataset, forked per input.
//  - §5.3.2 unit testing: tests run in forked children from a post-initialization snapshot
//    (SELECT / DELETE / UPDATE with predicates), so initialization is paid once.
#ifndef ODF_SRC_APPS_MINIDB_H_
#define ODF_SRC_APPS_MINIDB_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/simalloc.h"
#include "src/proc/kernel.h"
#include "src/util/rng.h"

namespace odf {

enum class ColumnType : uint32_t {
  kInt64 = 1,
  kText = 2,  // Fixed-width, NUL-padded.
};

struct ColumnSpec {
  ColumnType type = ColumnType::kInt64;
  uint32_t size = 8;  // Bytes; 8 for kInt64, the field width for kText.
};

// A row value in host space, for inserts and query results.
struct RowValue {
  int64_t key = 0;                   // Column 0: the primary key.
  std::vector<int64_t> ints;         // Values for kInt64 columns after the key, in order.
  std::vector<std::string> strings;  // Values for kText columns, in order.
};

class MiniDb {
 public:
  static MiniDb Create(Kernel& kernel, Process& process, uint64_t heap_capacity);
  static MiniDb Attach(Kernel& kernel, Process& process, Vaddr meta_base);

  // Creates a table whose column 0 is an implicit int64 primary key; `columns` describes the
  // remaining columns. Fatal if the table exists.
  void CreateTable(const std::string& name, const std::vector<ColumnSpec>& columns);
  bool HasTable(const std::string& name);

  // Inserts a row; returns false if the key already exists.
  bool Insert(const std::string& table, const RowValue& row);

  // Point lookup through the hash index — touches O(1) pages, like the paper's unit tests.
  std::optional<RowValue> SelectByKey(const std::string& table, int64_t key);

  // Updates the first kInt64 column (after the key) of the matching row.
  bool UpdateByKey(const std::string& table, int64_t key, int64_t new_value);

  bool DeleteByKey(const std::string& table, int64_t key);

  // Full-scan aggregates, for tests that exercise predicate evaluation.
  uint64_t CountWhereIntColumn(const std::string& table, uint64_t int_column_index,
                               int64_t min_inclusive, int64_t max_inclusive);
  uint64_t DeleteWhereIntColumn(const std::string& table, uint64_t int_column_index,
                                int64_t min_inclusive, int64_t max_inclusive);
  uint64_t UpdateWhereIntColumn(const std::string& table, uint64_t int_column_index,
                                int64_t min_inclusive, int64_t max_inclusive,
                                int64_t new_value);

  uint64_t RowCount(const std::string& table);

  // Bulk-loads `rows` rows of shape (key=i, int payload, text payload) — the "large initial
  // database" of §5.3.1/§5.3.2. Creates the table if needed.
  void BulkLoadFixture(const std::string& table, uint64_t rows, uint32_t text_width, Rng& rng);

  Vaddr meta_base() const { return meta_base_; }
  Process& process() { return heap_.process(); }
  SimHeap& heap() { return heap_; }

 private:
  MiniDb(Kernel* kernel, SimHeap heap, Vaddr meta_base)
      : kernel_(kernel), heap_(heap), meta_base_(meta_base) {}

  Vaddr FindTable(const std::string& name);
  std::vector<ColumnSpec> ReadSchema(Vaddr table);
  uint64_t RowSize(const std::vector<ColumnSpec>& schema);
  Vaddr IndexLookup(Vaddr table, int64_t key, Vaddr* prev_link_out);
  void IndexInsert(Vaddr table, int64_t key, Vaddr row);
  bool IndexRemove(Vaddr table, int64_t key);
  Vaddr AppendRowSlot(Vaddr table);
  RowValue ReadRow(Vaddr row, const std::vector<ColumnSpec>& schema);

  template <typename Fn>
  uint64_t ForEachLiveRow(Vaddr table, Fn&& fn);  // fn(Vaddr row) -> bool "count it".

  Kernel* kernel_;
  SimHeap heap_;
  Vaddr meta_base_;
};

}  // namespace odf

#endif  // ODF_SRC_APPS_MINIDB_H_
