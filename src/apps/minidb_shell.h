// A tiny command interpreter over MiniDb — the fuzz target for the §5.3.1 experiment (the
// analog of SQLite's fuzzershell). It parses untrusted byte input into database commands and
// executes them, reporting edge coverage to the fuzzer through explicit instrumentation
// points (the analog of AFL's compile-time instrumentation).
//
// Command language (newline-separated):
//   INS <key> <int> <text>   insert a row
//   SEL <key>                point select
//   UPD <key> <int>          update by key
//   DEL <key>                delete by key
//   RNG <lo> <hi>            count rows with payload in [lo, hi]
//   UPR <lo> <hi> <v>        range update
//   DLR <lo> <hi>            range delete
#ifndef ODF_SRC_APPS_MINIDB_SHELL_H_
#define ODF_SRC_APPS_MINIDB_SHELL_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/apps/minidb.h"

namespace odf {

// Edge-coverage bitmap, AFL-style (64 KiB of hit counters shared between fuzzer and target —
// the analog of AFL's SHM segment).
class CoverageMap {
 public:
  static constexpr size_t kSize = 1 << 16;

  void Hit(uint32_t location) {
    uint32_t edge = (location ^ (previous_ >> 1)) % kSize;
    ++map_[edge];
    previous_ = location;
  }

  void ResetRun() { previous_ = 0; }
  void Clear() { map_.fill(0); }

  // Merges this run's map into `virgin`; returns the number of newly covered edges.
  uint64_t MergeInto(std::array<uint8_t, kSize>& virgin) const {
    uint64_t new_edges = 0;
    for (size_t i = 0; i < kSize; ++i) {
      if (map_[i] != 0 && virgin[i] == 0) {
        virgin[i] = 1;
        ++new_edges;
      }
    }
    return new_edges;
  }

  const std::array<uint8_t, kSize>& raw() const { return map_; }

 private:
  std::array<uint8_t, kSize> map_{};
  uint32_t previous_ = 0;
};

struct ShellResult {
  uint64_t commands_executed = 0;
  uint64_t parse_errors = 0;
  uint64_t rows_touched = 0;
};

// Executes `input` against `db` (typically a forked child's view), reporting coverage.
ShellResult RunMiniDbShell(MiniDb& db, const std::string& table, std::string_view input,
                           CoverageMap* coverage);

}  // namespace odf

#endif  // ODF_SRC_APPS_MINIDB_SHELL_H_
