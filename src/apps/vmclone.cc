#include "src/apps/vmclone.h"

#include <map>
#include <string>

#include "src/util/log.h"

namespace odf {

namespace {

constexpr uint64_t kRegCount = 16;
constexpr Vaddr kPcOffset = kRegCount * 8;

// Extra op used by the guest kernel; kept out of the public enum surface until needed.
constexpr uint8_t kOpSub = 14;  // r1 -= r2

// Tiny two-pass assembler: instructions reference labels, resolved to instruction indices.
class GuestAssembler {
 public:
  void Label(const std::string& name) { labels_[name] = code_.size(); }

  void Emit(GuestOp op, uint8_t r1 = 0, uint8_t r2 = 0, uint32_t imm = 0) {
    code_.push_back(EncodeInstr(op, r1, r2, imm));
  }

  void EmitSub(uint8_t r1, uint8_t r2) {
    code_.push_back(EncodeInstr(static_cast<GuestOp>(kOpSub), r1, r2, 0));
  }

  // Emits a jump to a label (patched in Finalize).
  void EmitJump(GuestOp op, uint8_t r1, const std::string& label) {
    fixups_.emplace_back(code_.size(), label);
    Emit(op, r1, 0, 0);
  }

  std::vector<uint64_t> Finalize() {
    for (const auto& [index, label] : fixups_) {
      auto it = labels_.find(label);
      ODF_CHECK(it != labels_.end()) << "undefined guest label " << label;
      code_[index] |= static_cast<uint64_t>(it->second) << 32;  // imm field.
    }
    return code_;
  }

 private:
  std::vector<uint64_t> code_;
  std::map<std::string, size_t> labels_;
  std::vector<std::pair<size_t, std::string>> fixups_;
};

// The guest kernel: a syscall-dispatch loop. Each input byte selects an operation (read /
// write / read-modify-write) on a pseudo-random 8-byte-aligned location in the guest image,
// like a kernel executing a stream of fuzzed syscalls against its own data structures.
//
// Register allocation:
//   r0 input_base  r1 input_len  r2 cursor    r3 current byte
//   r4 image_base  r5 image_span r6 address   r7 running hash
//   r8/r11/r12 scratch           r9 = 8       r10 = 3
std::vector<uint64_t> BuildGuestKernel() {
  GuestAssembler as;
  as.Label("loop");
  as.Emit(GuestOp::kMov, 8, 1);        // r8 = len
  as.EmitSub(8, 2);                    // r8 -= cursor
  as.EmitJump(GuestOp::kJz, 8, "end");
  as.Emit(GuestOp::kMov, 6, 0);        // r6 = input_base
  as.Emit(GuestOp::kAddi, 6, 0, 8);    // skip the u64 length header
  as.Emit(GuestOp::kAdd, 6, 2);        // + cursor
  as.Emit(GuestOp::kLdb, 3, 6);        // r3 = input[cursor]
  // Address generation: r8 = ((b * golden + cursor * 0x10001) % span) & ~7.
  as.Emit(GuestOp::kMov, 8, 3);
  as.Emit(GuestOp::kMovi, 11, 0, 0x9e3779b9u);
  as.Emit(GuestOp::kMul, 8, 11);
  as.Emit(GuestOp::kMov, 12, 2);
  as.Emit(GuestOp::kMovi, 11, 0, 0x10001u);
  as.Emit(GuestOp::kMul, 12, 11);
  as.Emit(GuestOp::kAdd, 8, 12);
  as.Emit(GuestOp::kMod, 8, 5);        // % image_span
  as.Emit(GuestOp::kMov, 11, 8);
  as.Emit(GuestOp::kMod, 11, 9);       // r11 = r8 % 8
  as.EmitSub(8, 11);                   // align down to 8
  as.Emit(GuestOp::kMov, 6, 4);
  as.Emit(GuestOp::kAdd, 6, 8);        // r6 = image_base + offset
  // Dispatch on b % 3.
  as.Emit(GuestOp::kMov, 11, 3);
  as.Emit(GuestOp::kMod, 11, 10);
  as.EmitJump(GuestOp::kJz, 11, "read");
  as.Emit(GuestOp::kMovi, 12, 0, 1);
  as.EmitSub(11, 12);
  as.EmitJump(GuestOp::kJz, 11, "write");
  // Read-modify-write "syscall".
  as.Emit(GuestOp::kLoad, 8, 6);
  as.Emit(GuestOp::kXor, 8, 7);
  as.Emit(GuestOp::kStore, 6, 8);
  as.EmitJump(GuestOp::kJmp, 0, "next");
  as.Label("read");
  as.Emit(GuestOp::kLoad, 8, 6);
  as.Emit(GuestOp::kAdd, 7, 8);
  as.EmitJump(GuestOp::kJmp, 0, "next");
  as.Label("write");
  as.Emit(GuestOp::kStore, 6, 7);
  as.Label("next");
  as.Emit(GuestOp::kMovi, 12, 0, 1);
  as.Emit(GuestOp::kAdd, 2, 12);       // ++cursor
  as.EmitJump(GuestOp::kJmp, 0, "loop");
  as.Label("end");
  as.Emit(GuestOp::kHalt);
  return as.Finalize();
}

}  // namespace

uint64_t EncodeInstr(GuestOp op, uint8_t r1, uint8_t r2, uint32_t imm) {
  return static_cast<uint64_t>(op) | (static_cast<uint64_t>(r1) << 8) |
         (static_cast<uint64_t>(r2) << 16) | (static_cast<uint64_t>(imm) << 32);
}

GuestExit RunGuest(Process& process, Vaddr cpu_base, Vaddr code_base, uint64_t max_steps) {
  GuestExit exit_state;
  uint64_t regs[kRegCount];
  for (uint64_t r = 0; r < kRegCount; ++r) {
    regs[r] = process.LoadU64(cpu_base + r * 8);
  }
  uint64_t pc = process.LoadU64(cpu_base + kPcOffset);

  auto sync_cpu = [&] {
    for (uint64_t r = 0; r < kRegCount; ++r) {
      process.StoreU64(cpu_base + r * 8, regs[r]);
    }
    process.StoreU64(cpu_base + kPcOffset, pc);
  };

  for (uint64_t step = 0; step < max_steps; ++step) {
    uint64_t word = 0;
    if (!process.ReadMemory(code_base + pc * 8,
                            std::as_writable_bytes(std::span(&word, 1)))) {
      exit_state.reason = GuestExit::Reason::kBadAccess;
      exit_state.steps = step;
      sync_cpu();
      return exit_state;
    }
    auto op = static_cast<uint8_t>(word & 0xff);
    auto r1 = static_cast<uint8_t>((word >> 8) & 0x0f);
    auto r2 = static_cast<uint8_t>((word >> 16) & 0x0f);
    auto imm = static_cast<uint32_t>(word >> 32);
    ++pc;

    bool ok = true;
    switch (static_cast<GuestOp>(op)) {
      case GuestOp::kHalt:
        exit_state.reason = GuestExit::Reason::kHalt;
        exit_state.steps = step + 1;
        sync_cpu();
        return exit_state;
      case GuestOp::kMovi:
        regs[r1] = imm;
        break;
      case GuestOp::kMov:
        regs[r1] = regs[r2];
        break;
      case GuestOp::kLoad: {
        uint64_t value = 0;
        ok = process.ReadMemory(regs[r2], std::as_writable_bytes(std::span(&value, 1)));
        regs[r1] = value;
        break;
      }
      case GuestOp::kStore:
        ok = process.WriteMemory(regs[r1], std::as_bytes(std::span(&regs[r2], 1)));
        break;
      case GuestOp::kLdb: {
        uint8_t value = 0;
        ok = process.ReadMemory(regs[r2], std::as_writable_bytes(std::span(&value, 1)));
        regs[r1] = value;
        break;
      }
      case GuestOp::kAdd:
        regs[r1] += regs[r2];
        break;
      case GuestOp::kAddi:
        regs[r1] += imm;
        break;
      case GuestOp::kXor:
        regs[r1] ^= regs[r2];
        break;
      case GuestOp::kMul:
        regs[r1] *= regs[r2];
        break;
      case GuestOp::kMod:
        regs[r1] = regs[r2] == 0 ? 0 : regs[r1] % regs[r2];
        break;
      case GuestOp::kJz:
        if (regs[r1] == 0) {
          pc = imm;
        }
        break;
      case GuestOp::kJnz:
        if (regs[r1] != 0) {
          pc = imm;
        }
        break;
      case GuestOp::kJmp:
        pc = imm;
        break;
      default:
        if (op == kOpSub) {
          regs[r1] -= regs[r2];
          break;
        }
        exit_state.reason = GuestExit::Reason::kBadInstruction;
        exit_state.steps = step + 1;
        sync_cpu();
        return exit_state;
    }
    if (!ok) {
      exit_state.reason = GuestExit::Reason::kBadAccess;
      exit_state.steps = step + 1;
      sync_cpu();
      return exit_state;
    }
  }
  exit_state.reason = GuestExit::Reason::kStepLimit;
  exit_state.steps = max_steps;
  sync_cpu();
  return exit_state;
}

VirtualMachine VirtualMachine::Boot(Kernel& kernel, const VmConfig& config) {
  Process& process = kernel.CreateProcess();
  VirtualMachine vm(&kernel, &process, config);

  // Guest "physical" memory image.
  vm.image_base_ = process.Mmap(config.image_bytes, kProtRead | kProtWrite);
  uint64_t populate_bytes = config.image_bytes * config.populate_fraction_percent / 100;
  // Fill the image like a booted OS: mapped everywhere, data materialised where "booted".
  process.address_space().PopulateRange(vm.image_base_, config.image_bytes);
  for (Vaddr va = vm.image_base_; va < vm.image_base_ + populate_bytes; va += kPageSize) {
    process.StoreU64(va, 0x05'1a'7e'05ULL ^ va);  // One word per page: "OS state".
  }

  // Guest kernel code.
  std::vector<uint64_t> code = BuildGuestKernel();
  vm.code_base_ = process.Mmap(code.size() * 8, kProtRead | kProtWrite);
  ODF_CHECK(process.WriteMemory(vm.code_base_, std::as_bytes(std::span(code))));

  // CPU state + syscall input buffer.
  vm.cpu_base_ = process.Mmap(kPageSize, kProtRead | kProtWrite);
  vm.input_base_ = process.Mmap(64 * kPageSize, kProtRead | kProtWrite);
  process.StoreU64(vm.cpu_base_ + 0 * 8, vm.input_base_);       // r0 input_base.
  process.StoreU64(vm.cpu_base_ + 4 * 8, vm.image_base_);       // r4 image_base.
  process.StoreU64(vm.cpu_base_ + 5 * 8, config.image_bytes);   // r5 image_span.
  process.StoreU64(vm.cpu_base_ + 9 * 8, 8);                    // r9 = 8.
  process.StoreU64(vm.cpu_base_ + 10 * 8, 3);                   // r10 = 3.
  return vm;
}

GuestExit VirtualMachine::RunInputInClone(std::span<const uint8_t> input) {
  Process& clone = kernel_->Fork(*process_, config_.fork_mode);

  // Inject the input and reset the clone's CPU for the run.
  clone.StoreU64(input_base_, input.size());
  if (!input.empty()) {
    ODF_CHECK(clone.WriteMemory(input_base_ + 8, std::as_bytes(std::span(input))));
  }
  clone.StoreU64(cpu_base_ + 1 * 8, input.size());  // r1 = len.
  clone.StoreU64(cpu_base_ + 2 * 8, 0);             // r2 = cursor.
  clone.StoreU64(cpu_base_ + kPcOffset, 0);         // pc = 0.

  GuestExit exit_state = RunGuest(clone, cpu_base_, code_base_, config_.max_steps_per_input);
  kernel_->Exit(clone, 0);
  kernel_->Wait(*process_);
  return exit_state;
}

}  // namespace odf
