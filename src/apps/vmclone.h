// VM cloning (TriforceAFL analog, §5.3.4): a "virtual machine" is a simulated process whose
// address space holds a guest memory image, a bytecode guest kernel, and the guest CPU state.
// Cloning the VM for each fuzz input is one fork of that process; the guest kernel then runs
// inside the clone, interpreting the input as a stream of pseudo-syscalls that scatter
// reads/writes across the guest image (which is what a kernel under syscall fuzzing does).
//
// All guest state — memory, program, registers — lives in simulated memory, so a clone is a
// bit-exact, COW-isolated copy of the VM, exactly like QEMU under TriforceAFL's fork.
#ifndef ODF_SRC_APPS_VMCLONE_H_
#define ODF_SRC_APPS_VMCLONE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/proc/kernel.h"
#include "src/util/rng.h"

namespace odf {

// Guest ISA: one 64-bit word per instruction, [op:8][r1:8][r2:8][unused:8][imm:32].
// 16 general registers; PC is register 15 by convention but kept separately in CPU state.
enum class GuestOp : uint8_t {
  kHalt = 0,
  kMovi = 1,   // r1 = imm
  kMov = 2,    // r1 = r2
  kLoad = 3,   // r1 = mem64[r2]
  kStore = 4,  // mem64[r1] = r2
  kLdb = 5,    // r1 = mem8[r2]
  kAdd = 6,    // r1 += r2
  kAddi = 7,   // r1 += imm
  kXor = 8,    // r1 ^= r2
  kMul = 9,    // r1 *= r2
  kMod = 10,   // r1 %= r2 (r2 != 0, else r1 = 0)
  kJz = 11,    // if (r1 == 0) pc = imm
  kJnz = 12,   // if (r1 != 0) pc = imm
  kJmp = 13,   // pc = imm
};

uint64_t EncodeInstr(GuestOp op, uint8_t r1, uint8_t r2, uint32_t imm);

struct GuestExit {
  enum class Reason { kHalt, kStepLimit, kBadInstruction, kBadAccess };
  Reason reason = Reason::kHalt;
  uint64_t steps = 0;
};

// Runs the guest CPU inside `process` until HALT, a fault, or `max_steps`.
// `cpu_base` holds 16 registers then the PC (all u64); `code_base` is the program.
GuestExit RunGuest(Process& process, Vaddr cpu_base, Vaddr code_base, uint64_t max_steps);

struct VmConfig {
  uint64_t image_bytes = 188ULL << 20;  // The paper's observed QEMU footprint (188 MB).
  uint64_t populate_fraction_percent = 100;
  uint64_t max_steps_per_input = 20000;
  ForkMode fork_mode = ForkMode::kClassic;
};

// A booted VM, ready to be cloned per input.
class VirtualMachine {
 public:
  // "Boots" the VM: creates the process, maps and fills the guest image, installs the guest
  // kernel (the syscall-fuzzing dispatch loop) and CPU state.
  static VirtualMachine Boot(Kernel& kernel, const VmConfig& config);

  // Clones the VM (one fork), injects `input` into the clone's syscall buffer, runs the
  // guest kernel in the clone, tears the clone down. Returns the guest exit state.
  GuestExit RunInputInClone(std::span<const uint8_t> input);

  Process& process() { return *process_; }
  const VmConfig& config() const { return config_; }

 private:
  VirtualMachine(Kernel* kernel, Process* process, VmConfig config)
      : kernel_(kernel), process_(process), config_(config) {}

  Kernel* kernel_;
  Process* process_;
  VmConfig config_;
  Vaddr image_base_ = 0;
  Vaddr code_base_ = 0;
  Vaddr cpu_base_ = 0;
  Vaddr input_base_ = 0;  // {u64 len, bytes...}
};

}  // namespace odf

#endif  // ODF_SRC_APPS_VMCLONE_H_
