// LambdaPlatform: a serverless function platform built on fork (paper §2.4.3).
//
// The paper's third motivating use case: serverless frameworks cache an initialized runtime
// ("warm template") and clone it per invocation to avoid cold starts. Here the template is a
// process holding the language runtime image plus the function's initialized state (a large
// read-mostly lookup table in simulated memory); each invocation forks the template, runs
// the handler against the clone's COW view, and exits. The fork mechanism decides the
// startup portion of the invocation latency — the quantity SAND/Catalyzer-style systems
// fight for.
#ifndef ODF_SRC_APPS_LAMBDA_H_
#define ODF_SRC_APPS_LAMBDA_H_

#include <cstdint>
#include <span>

#include "src/apps/simalloc.h"
#include "src/proc/kernel.h"
#include "src/util/rng.h"

namespace odf {

struct LambdaConfig {
  ForkMode fork_mode = ForkMode::kOnDemand;
  uint64_t runtime_image_bytes = 128ULL << 20;  // Interpreter + libraries, populated.
  uint64_t state_table_entries = 1 << 20;       // Function state: precomputed lookup table.
  uint64_t handler_touches = 256;               // Working-set entries per invocation.
};

struct LambdaInvocation {
  double startup_us = 0;  // Time to stand up the execution environment (the fork).
  double run_us = 0;      // Handler execution time.
  uint64_t result = 0;    // Handler output (checksum), for validation.
};

class LambdaPlatform {
 public:
  // "Deploys" the function: boots the runtime image and initializes the function state
  // once. This is the cold-start cost that warm invocations amortize away.
  static LambdaPlatform Deploy(Kernel& kernel, const LambdaConfig& config);

  // Warm invocation: fork the template, run the handler in the clone, tear it down.
  LambdaInvocation Invoke(std::span<const uint8_t> payload);

  // Cold invocation baseline: build a fresh template from scratch and run the handler in
  // it directly (what a platform without template caching pays every time).
  LambdaInvocation InvokeCold(std::span<const uint8_t> payload);

  double deploy_seconds() const { return deploy_seconds_; }
  Process& template_process() { return *template_process_; }

 private:
  LambdaPlatform(Kernel* kernel, LambdaConfig config) : kernel_(kernel), config_(config) {}

  // Builds runtime image + state in `process`; returns the state table's base address.
  static Vaddr InitializeTemplate(Process& process, const LambdaConfig& config);
  uint64_t RunHandler(Process& process, Vaddr state_base, std::span<const uint8_t> payload);

  Kernel* kernel_;
  LambdaConfig config_;
  Process* template_process_ = nullptr;
  Vaddr state_base_ = 0;
  double deploy_seconds_ = 0;
};

}  // namespace odf

#endif  // ODF_SRC_APPS_LAMBDA_H_
