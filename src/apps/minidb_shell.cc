#include "src/apps/minidb_shell.h"

#include <charconv>

namespace odf {

namespace {

// Instrumentation point ids (arbitrary distinct constants, like compile-time edge ids).
enum CovId : uint32_t {
  kCovStart = 11,
  kCovLine = 101,
  kCovIns = 211,
  kCovInsDup = 223,
  kCovSel = 307,
  kCovSelHit = 311,
  kCovSelMiss = 331,
  kCovUpd = 401,
  kCovUpdHit = 409,
  kCovDel = 503,
  kCovDelHit = 509,
  kCovRng = 601,
  kCovRngEmpty = 607,
  kCovRngSome = 613,
  kCovUpr = 701,
  kCovDlr = 809,
  kCovBadCmd = 907,
  kCovBadArgs = 911,
};

struct Cursor {
  std::string_view text;

  std::string_view NextToken() {
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
      text.remove_prefix(1);
    }
    size_t end = 0;
    while (end < text.size() && text[end] != ' ' && text[end] != '\t') {
      ++end;
    }
    std::string_view token = text.substr(0, end);
    text.remove_prefix(end);
    return token;
  }

  bool NextInt(int64_t* out) {
    std::string_view token = NextToken();
    if (token.empty()) {
      return false;
    }
    auto [ptr, ec] = std::from_chars(token.begin(), token.end(), *out);
    return ec == std::errc() && ptr == token.end();
  }
};

// Range commands touch at most this many keys per invocation (indexed access).
constexpr int64_t kMaxRangeSpan = 256;

void Cov(CoverageMap* coverage, uint32_t id) {
  if (coverage != nullptr) {
    coverage->Hit(id);
  }
}

}  // namespace

ShellResult RunMiniDbShell(MiniDb& db, const std::string& table, std::string_view input,
                           CoverageMap* coverage) {
  ShellResult result;
  if (coverage != nullptr) {
    coverage->ResetRun();
  }
  Cov(coverage, kCovStart);

  while (!input.empty()) {
    size_t newline = input.find('\n');
    std::string_view line = input.substr(0, newline);
    input = newline == std::string_view::npos ? std::string_view() : input.substr(newline + 1);
    if (line.empty()) {
      continue;
    }
    Cov(coverage, kCovLine);
    Cursor cursor{line};
    std::string_view cmd = cursor.NextToken();

    if (cmd == "INS") {
      Cov(coverage, kCovIns);
      int64_t key = 0;
      int64_t payload = 0;
      if (!cursor.NextInt(&key) || !cursor.NextInt(&payload)) {
        Cov(coverage, kCovBadArgs);
        ++result.parse_errors;
        continue;
      }
      RowValue row;
      row.key = key;
      row.ints.push_back(payload);
      std::string_view text = cursor.NextToken();
      row.strings.emplace_back(text.substr(0, 64));
      if (db.Insert(table, row)) {
        ++result.rows_touched;
      } else {
        Cov(coverage, kCovInsDup);
      }
      ++result.commands_executed;
    } else if (cmd == "SEL") {
      Cov(coverage, kCovSel);
      int64_t key = 0;
      if (!cursor.NextInt(&key)) {
        Cov(coverage, kCovBadArgs);
        ++result.parse_errors;
        continue;
      }
      auto row = db.SelectByKey(table, key);
      Cov(coverage, row.has_value() ? kCovSelHit : kCovSelMiss);
      result.rows_touched += row.has_value() ? 1u : 0u;
      ++result.commands_executed;
    } else if (cmd == "UPD") {
      Cov(coverage, kCovUpd);
      int64_t key = 0;
      int64_t value = 0;
      if (!cursor.NextInt(&key) || !cursor.NextInt(&value)) {
        Cov(coverage, kCovBadArgs);
        ++result.parse_errors;
        continue;
      }
      if (db.UpdateByKey(table, key, value)) {
        Cov(coverage, kCovUpdHit);
        ++result.rows_touched;
      }
      ++result.commands_executed;
    } else if (cmd == "DEL") {
      Cov(coverage, kCovDel);
      int64_t key = 0;
      if (!cursor.NextInt(&key)) {
        Cov(coverage, kCovBadArgs);
        ++result.parse_errors;
        continue;
      }
      if (db.DeleteByKey(table, key)) {
        Cov(coverage, kCovDelHit);
        ++result.rows_touched;
      }
      ++result.commands_executed;
    } else if (cmd == "RNG") {
      Cov(coverage, kCovRng);
      int64_t lo = 0;
      int64_t hi = 0;
      if (!cursor.NextInt(&lo) || !cursor.NextInt(&hi) || lo > hi) {
        Cov(coverage, kCovBadArgs);
        ++result.parse_errors;
        continue;
      }
      // Indexed range query: resolved through the primary-key index with a bounded span,
      // like SQLite answering a predicate via an index (keeps executions short-lived).
      uint64_t count = 0;
      for (int64_t key = lo; key <= hi && key - lo < kMaxRangeSpan; ++key) {
        if (db.SelectByKey(table, key).has_value()) {
          ++count;
        }
      }
      Cov(coverage, count == 0 ? kCovRngEmpty : kCovRngSome);
      result.rows_touched += count;
      ++result.commands_executed;
    } else if (cmd == "UPR") {
      Cov(coverage, kCovUpr);
      int64_t lo = 0;
      int64_t hi = 0;
      int64_t value = 0;
      if (!cursor.NextInt(&lo) || !cursor.NextInt(&hi) || !cursor.NextInt(&value) || lo > hi) {
        Cov(coverage, kCovBadArgs);
        ++result.parse_errors;
        continue;
      }
      for (int64_t key = lo; key <= hi && key - lo < kMaxRangeSpan; ++key) {
        if (db.UpdateByKey(table, key, value)) {
          ++result.rows_touched;
        }
      }
      ++result.commands_executed;
    } else if (cmd == "DLR") {
      Cov(coverage, kCovDlr);
      int64_t lo = 0;
      int64_t hi = 0;
      if (!cursor.NextInt(&lo) || !cursor.NextInt(&hi) || lo > hi) {
        Cov(coverage, kCovBadArgs);
        ++result.parse_errors;
        continue;
      }
      for (int64_t key = lo; key <= hi && key - lo < kMaxRangeSpan; ++key) {
        if (db.DeleteByKey(table, key)) {
          ++result.rows_touched;
        }
      }
      ++result.commands_executed;
    } else {
      Cov(coverage, kCovBadCmd);
      ++result.parse_errors;
    }
  }
  return result;
}

}  // namespace odf
