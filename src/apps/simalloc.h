// SimHeap: a heap allocator whose metadata AND payload live entirely inside a simulated
// process's address space.
//
// Why: the evaluation workloads (Redis-like store, SQLite-like DB, guest VM images) must keep
// their data in simulated memory so that fork really shares/copies it through the page
// tables under test. Because all allocator state is in-sim (a header block at the region
// base, free-list links in block headers), a forked child sees a bit-identical heap: binding
// a SimHeap view to the child process at the same base address "re-opens" the heap, exactly
// like a real fork child reusing libc's heap.
#ifndef ODF_SRC_APPS_SIMALLOC_H_
#define ODF_SRC_APPS_SIMALLOC_H_

#include <cstdint>

#include "src/proc/process.h"

namespace odf {

struct SimHeapStats {
  uint64_t capacity = 0;
  uint64_t brk = 0;              // High-water mark of carved memory.
  uint64_t allocated_bytes = 0;  // Live payload bytes.
  uint64_t allocations = 0;
  uint64_t frees = 0;
};

class SimHeap {
 public:
  // Creates a new heap: maps `capacity` bytes in `process` and writes the header.
  static SimHeap Create(Process& process, uint64_t capacity);

  // Binds a view onto an existing heap (e.g. in a forked child) at the same base address.
  static SimHeap Attach(Process& process, Vaddr base);

  // Allocates `size` bytes; returns the payload address. Fatal on exhaustion (workloads size
  // their heaps up front, like the paper's pre-populated experiments).
  Vaddr Alloc(uint64_t size);

  // Frees a block previously returned by Alloc.
  void Free(Vaddr payload);

  Vaddr base() const { return base_; }
  Process& process() { return *process_; }

  SimHeapStats Stats();

  // Validates internal invariants (header magic, free-list sanity). Test aid.
  bool CheckConsistency();

 private:
  SimHeap(Process* process, Vaddr base) : process_(process), base_(base) {}

  Process* process_;
  Vaddr base_;
};

}  // namespace odf

#endif  // ODF_SRC_APPS_SIMALLOC_H_
