// On-demand-fork (§3.1): copy the top three page-table levels and *share* every last-level
// (PTE) table between parent and child. Sharing is one reference-count increment and one
// write-protected PMD entry per 2 MiB of mapped memory — three orders of magnitude less work
// than classic fork's per-4 KiB-page refcounting.
//
// Two submodes:
//  - kOnDemand:     huge (PMD-level) mappings are copied eagerly exactly like classic fork,
//                   matching the paper's 4 KiB-only implementation (§4).
//  - kOnDemandHuge: the generalization the paper sketches in §4 "Huge Page Support" — PMD
//                   tables (which describe 2 MiB pages directly in their entries) are shared
//                   too, write-protected at the PUD level. Tables then copy-on-write lazily
//                   at two levels: first the PMD table on the first write below a PUD entry,
//                   then the PTE table (or the 2 MiB page) on the first write below it.
#include <array>
#include <span>

#include "src/core/fork_internal.h"
#include "src/mm/fault.h"
#include "src/mm/range_ops.h"
#include "src/reclaim/rmap.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"

namespace odf {

namespace {

struct ShareState {
  FrameAllocator* allocator;
  ForkCounters* counters;
  reclaim::RmapRegistry* rmap = nullptr;
  int32_t pid = 0;
  bool share_pmd_tables = false;
  uint64_t pte_tables_shared = 0;
  uint64_t pmd_tables_shared = 0;
};

// Shares one PMD table between the parent's and child's PUD entries (write-protecting
// both). This is the §4 huge-page extension's normal path, and doubles as the
// zero-allocation degrade when a child PMD table cannot be allocated under kOnDemand.
void SharePmdEntry(ShareState& state, uint64_t* src_slot, uint64_t* dst_slot, Pte entry) {
  FrameAllocator& allocator = *state.allocator;
  FrameId table = entry.frame();
  allocator.IncPtShare(table);
  Pte shared_entry = entry.WithoutFlag(kPteWritable);
  StoreEntry(src_slot, shared_entry);
  StoreEntry(dst_slot, shared_entry);
  ++state.pmd_tables_shared;
  ODF_TRACE(pmd_table_shared, state.pid, table);
}

// Shares every PTE table referenced by one PMD table (§3.5): one address-space reference and
// one write-protected entry pair per present table, with all pt_share_count increments taken
// in a single IncPtShareBatch call. Two passes — collect, batch-increment, then publish — so
// every reference exists before the corresponding child entry becomes visible, and the whole
// 1 GiB span costs one refcount call site instead of 512 (docs/performance.md).
void ShareAllPteTables(ShareState& state, uint64_t* src, uint64_t* dst) {
  FrameAllocator& allocator = *state.allocator;
  std::array<uint64_t, kEntriesPerTable> indices;
  std::array<FrameId, kEntriesPerTable> tables;
  size_t shared = 0;
  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    Pte entry = LoadEntry(&src[i]);
    if (!entry.IsPresent()) {
      continue;
    }
    if (entry.IsHuge()) {
      CopyHugeEntry(allocator, state.rmap, &src[i], &dst[i], state.counters);
      continue;
    }
    indices[shared] = i;
    tables[shared] = entry.frame();
    ++shared;
  }
  allocator.IncPtShareBatch(std::span<const FrameId>(tables.data(), shared));
  for (size_t k = 0; k < shared; ++k) {
    uint64_t i = indices[k];
    // The hierarchical write permission is revoked in BOTH the parent's and the child's PMD
    // entry so every write into this 2 MiB region faults (§3.2).
    Pte shared_entry = LoadEntry(&src[i]).WithoutFlag(kPteWritable);
    StoreEntry(&src[i], shared_entry);
    StoreEntry(&dst[i], shared_entry);
    ODF_TRACE(pte_table_shared, state.pid, tables[k]);
  }
  state.pte_tables_shared += shared;
}

bool ShareLevel(ShareState& state, FrameId parent_table, FrameId child_table, PtLevel level) {
  FrameAllocator& allocator = *state.allocator;
  uint64_t* src = allocator.TableEntries(parent_table);
  uint64_t* dst = allocator.TableEntries(child_table);

  if (level == PtLevel::kPmd) {
    ShareAllPteTables(state, src, dst);
    return true;
  }

  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    Pte entry = LoadEntry(&src[i]);
    if (!entry.IsPresent()) {
      continue;
    }

    if (level == PtLevel::kPud && state.share_pmd_tables) {
      // §4 extension: share the whole PMD table (1 GiB span). Both PUD entries lose write
      // permission; the hierarchical attribute blocks writes to everything below.
      SharePmdEntry(state, &src[i], &dst[i], entry);
      continue;
    }

    // Upper levels: the child gets its own table, recursively filled.
    FrameId child_sub = TryAllocPageTable(allocator);
    if (child_sub == kInvalidFrame) {
      if (level == PtLevel::kPud) {
        // Degrade: share the parent's whole PMD table write-protected at the PUD instead
        // of building a private child copy — the kOnDemandHuge mechanism reused as a
        // zero-allocation fallback. The chunk still COWs lazily, just one level higher.
        SharePmdEntry(state, &src[i], &dst[i], entry);
        CountVm(VmCounter::k_fork_degrade_classic);
        ODF_TRACE(fork_degrade_classic, state.pid, i * EntrySpan(PtLevel::kPud),
                  static_cast<uint64_t>(DegradeFlavor::kOdfSharePmd));
        continue;
      }
      // A PUD table cannot be shared (no refcounted drop path above the PMD level): the
      // fork fails and the caller rolls back the partially built child.
      return false;
    }
    StoreEntry(&dst[i], Pte::Make(child_sub, kPtePresent | kPteWritable | kPteUser |
                                                 (entry.flags() & kPteAccessed)));
    if (!ShareLevel(state, entry.frame(), child_sub, NextLevel(level))) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool OnDemandSharePageTables(AddressSpace& parent, AddressSpace& child, ForkProfile* profile,
                             ForkCounters* counters, bool share_pmd_tables) {
  Stopwatch sw;
  ShareState state{&parent.allocator(), counters};
  state.rmap = child.rmap();
  state.pid = parent.owner_pid();
  state.share_pmd_tables = share_pmd_tables;
  bool ok = ShareLevel(state, parent.pgd(), child.pgd(), PtLevel::kPgd);
  if (counters != nullptr) {
    counters->pte_tables_shared += state.pte_tables_shared;
    counters->pmd_tables_shared += state.pmd_tables_shared;
  }
  CountVm(VmCounter::k_pte_tables_shared, state.pte_tables_shared);
  CountVm(VmCounter::k_pmd_tables_shared, state.pmd_tables_shared);
  if (profile != nullptr) {
    profile->upper_level_ns += sw.ElapsedNanos();
    profile->pte_tables_visited += state.pte_tables_shared;
  }
  return ok;
}

}  // namespace odf
