#include "src/core/fork.h"

#include "src/core/fork_internal.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"

namespace odf {

namespace {

// Fork latency, one histogram per engine ("fork" / "on-demand-fork" / ...-huge).
LatencyHistogram& ForkHistogram(ForkMode mode) {
  static LatencyHistogram& classic =
      MetricsRegistry::Global().RegisterHistogram("fork_classic_ns");
  static LatencyHistogram& odf =
      MetricsRegistry::Global().RegisterHistogram("fork_on_demand_ns");
  return mode == ForkMode::kClassic ? classic : odf;
}

}  // namespace

const char* ForkModeName(ForkMode mode) {
  switch (mode) {
    case ForkMode::kClassic:
      return "fork";
    case ForkMode::kOnDemand:
      return "on-demand-fork";
    case ForkMode::kOnDemandHuge:
      return "on-demand-fork-huge";
  }
  return "?";
}

void CopyVmaList(const AddressSpace& parent, AddressSpace& child) {
  for (const auto& [start, vma] : parent.vmas()) {
    child.AdoptVmaForFork(vma);
  }
}

bool CopyAddressSpace(AddressSpace& parent, AddressSpace& child, ForkMode mode,
                      ForkProfile* profile, ForkCounters* counters) {
  ODF_CHECK(child.vmas().empty()) << "fork target must be a fresh address space";
  const bool tracing = trace::Enabled();
  ODF_TRACE(fork_begin, parent.owner_pid(), static_cast<uint64_t>(mode),
            parent.MappedBytes());
  Stopwatch total;
  CopyVmaList(parent, child);
  bool ok = false;
  switch (mode) {
    case ForkMode::kClassic:
      ok = ClassicCopyPageTables(parent, child, profile, counters);
      if (counters != nullptr) {
        ++counters->classic_forks;
      }
      CountVm(VmCounter::k_fork_classic);
      break;
    case ForkMode::kOnDemand:
      ok = OnDemandSharePageTables(parent, child, profile, counters,
                                   /*share_pmd_tables=*/false);
      if (counters != nullptr) {
        ++counters->on_demand_forks;
      }
      CountVm(VmCounter::k_fork_on_demand);
      break;
    case ForkMode::kOnDemandHuge:
      ok = OnDemandSharePageTables(parent, child, profile, counters,
                                   /*share_pmd_tables=*/true);
      if (counters != nullptr) {
        ++counters->on_demand_forks;
      }
      CountVm(VmCounter::k_fork_on_demand);
      break;
  }
  // The parent's cached translations may have lost write permission (PTE-level for classic,
  // PMD-level for on-demand); flush, as the kernel flushes the hardware TLB on fork. On a
  // failed copy the parent may already be partially write-protected, so flush then too.
  parent.tlb().FlushAll();
  uint64_t elapsed = total.ElapsedNanos();
  if (profile != nullptr) {
    profile->total_ns += elapsed;
  }
  if (tracing) {
    ODF_TRACE(fork_end, parent.owner_pid(), static_cast<uint64_t>(mode), elapsed);
    ForkHistogram(mode).RecordNanos(elapsed);
  }
  return ok;
}

}  // namespace odf
