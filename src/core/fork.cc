#include "src/core/fork.h"

#include "src/core/fork_internal.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"

namespace odf {

const char* ForkModeName(ForkMode mode) {
  switch (mode) {
    case ForkMode::kClassic:
      return "fork";
    case ForkMode::kOnDemand:
      return "on-demand-fork";
    case ForkMode::kOnDemandHuge:
      return "on-demand-fork-huge";
  }
  return "?";
}

void CopyVmaList(const AddressSpace& parent, AddressSpace& child) {
  for (const auto& [start, vma] : parent.vmas()) {
    child.AdoptVmaForFork(vma);
  }
}

void CopyAddressSpace(AddressSpace& parent, AddressSpace& child, ForkMode mode,
                      ForkProfile* profile, ForkCounters* counters) {
  ODF_CHECK(child.vmas().empty()) << "fork target must be a fresh address space";
  Stopwatch total;
  CopyVmaList(parent, child);
  switch (mode) {
    case ForkMode::kClassic:
      ClassicCopyPageTables(parent, child, profile, counters);
      if (counters != nullptr) {
        ++counters->classic_forks;
      }
      break;
    case ForkMode::kOnDemand:
      OnDemandSharePageTables(parent, child, profile, counters, /*share_pmd_tables=*/false);
      if (counters != nullptr) {
        ++counters->on_demand_forks;
      }
      break;
    case ForkMode::kOnDemandHuge:
      OnDemandSharePageTables(parent, child, profile, counters, /*share_pmd_tables=*/true);
      if (counters != nullptr) {
        ++counters->on_demand_forks;
      }
      break;
  }
  // The parent's cached translations may have lost write permission (PTE-level for classic,
  // PMD-level for on-demand); flush, as the kernel flushes the hardware TLB on fork.
  parent.tlb().FlushAll();
  if (profile != nullptr) {
    profile->total_ns += total.ElapsedNanos();
  }
}

}  // namespace odf
