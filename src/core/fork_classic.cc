// Classic fork: the Linux copy_page_range analog. For every present last-level entry the
// kernel resolves the page's metadata (the compound_head() hotspot of Fig. 3), atomically
// increments the page reference count (the page_ref_inc() hotspot), write-protects private
// mappings in both parent and child, and writes the child entry.
#include <array>
#include <set>

#include "src/core/fork_internal.h"
#include "src/mm/fault.h"
#include "src/mm/range_ops.h"
#include "src/reclaim/rmap.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"

namespace odf {

namespace {

// Copies the present entries of one parent PTE table slice [lo, hi) into the child's table.
// Two passes: resolve metadata and collect compound heads (the compound_head() hotspot of
// Fig. 3), batch-increment every refcount in one IncRefBatch call, then write the entries.
// References are taken before any child entry becomes visible, so the table never points at
// an under-referenced frame.
void CopyPteSliceFused(FrameAllocator& allocator, SwapSpace* swap,
                       reclaim::RmapRegistry* rmap, uint64_t* src, uint64_t* dst, Vaddr lo,
                       Vaddr hi, bool wrprotect, ForkCounters* counters) {
  std::array<uint64_t, kEntriesPerTable> indices;
  std::array<FrameId, kEntriesPerTable> heads;
  size_t present = 0;
  uint64_t copied = 0;
  for (Vaddr va = lo; va < hi; va += kPageSize) {
    uint64_t index = TableIndex(va, PtLevel::kPte);
    Pte entry = LoadEntry(&src[index]);
    if (entry.IsSwap()) {
      // Swapped page: both processes reference the immutable slot (swap_map semantics).
      ODF_CHECK(swap != nullptr);
      swap->IncRef(entry.swap_slot());
      StoreEntry(&dst[index], entry);
      ++copied;
      continue;
    }
    if (entry.IsHwPoison()) {
      // Fork propagates the poison marker, not the (dead) page: the child's VA is as lost
      // as the parent's, and markers are refcount-free so there is nothing to IncRef.
      StoreEntry(&dst[index], entry);
      continue;
    }
    if (!entry.IsPresent()) {
      continue;
    }
    FrameId frame = entry.frame();
    PageMeta& meta = allocator.GetMeta(frame);        // struct page lookup.
    heads[present] = ResolveCompoundHead(meta, frame);  // compound_head().
    indices[present] = index;
    ++present;
  }
  // page_ref_inc for the whole table at one call site (docs/performance.md).
  allocator.IncRefBatch(std::span<const FrameId>(heads.data(), present));
  for (size_t i = 0; i < present; ++i) {
    uint64_t index = indices[i];
    Pte entry = LoadEntry(&src[index]);
    if (wrprotect && entry.IsWritable()) {
      Pte protected_entry = entry.WithoutFlag(kPteWritable);
      StoreEntry(&src[index], protected_entry);
      entry = protected_entry;
    }
    StoreEntry(&dst[index], entry);
    if (rmap != nullptr) {
      rmap->Add(entry.frame(), &dst[index]);
    }
  }
  copied += present;
  if (counters != nullptr) {
    counters->pte_entries_copied += copied;
  }
  CountVm(VmCounter::k_fork_pte_entries_copied, copied);  // Batched: one add per table.
}

// Instrumented variant: performs the same work in three batched passes so the time spent in
// metadata resolution, refcounting, and entry writing can be attributed separately (the
// Fig. 3 breakdown).
void CopyPteSliceProfiled(FrameAllocator& allocator, SwapSpace* swap,
                          reclaim::RmapRegistry* rmap, uint64_t* src, uint64_t* dst,
                          Vaddr lo, Vaddr hi, bool wrprotect, ForkProfile* profile,
                          ForkCounters* counters) {
  std::array<uint64_t, kEntriesPerTable> indices;
  std::array<FrameId, kEntriesPerTable> heads;
  size_t present = 0;

  Stopwatch sw;
  for (Vaddr va = lo; va < hi; va += kPageSize) {
    uint64_t index = TableIndex(va, PtLevel::kPte);
    Pte entry = LoadEntry(&src[index]);
    if (entry.IsSwap()) {
      ODF_CHECK(swap != nullptr);
      swap->IncRef(entry.swap_slot());
      StoreEntry(&dst[index], entry);
      continue;
    }
    if (entry.IsHwPoison()) {
      StoreEntry(&dst[index], entry);  // Marker copies verbatim; no reference taken.
      continue;
    }
    if (!entry.IsPresent()) {
      continue;
    }
    FrameId frame = entry.frame();
    PageMeta& meta = allocator.GetMeta(frame);
    heads[present] = ResolveCompoundHead(meta, frame);
    indices[present] = index;
    ++present;
  }
  profile->meta_resolve_ns += sw.ElapsedNanos();

  sw.Restart();
  allocator.IncRefBatch(std::span<const FrameId>(heads.data(), present));
  profile->refcount_ns += sw.ElapsedNanos();

  sw.Restart();
  for (size_t i = 0; i < present; ++i) {
    uint64_t index = indices[i];
    Pte entry = LoadEntry(&src[index]);
    if (wrprotect && entry.IsWritable()) {
      Pte protected_entry = entry.WithoutFlag(kPteWritable);
      StoreEntry(&src[index], protected_entry);
      entry = protected_entry;
    }
    StoreEntry(&dst[index], entry);
    if (rmap != nullptr) {
      rmap->Add(entry.frame(), &dst[index]);
    }
  }
  profile->entry_copy_ns += sw.ElapsedNanos();

  profile->pte_entries_copied += present;
  if (counters != nullptr) {
    counters->pte_entries_copied += present;
  }
  CountVm(VmCounter::k_fork_pte_entries_copied, present);
}

}  // namespace

void CopyHugeEntry(FrameAllocator& allocator, reclaim::RmapRegistry* rmap,
                   uint64_t* parent_slot, uint64_t* child_slot, ForkCounters* counters) {
  Pte entry = LoadEntry(parent_slot);
  ODF_DCHECK(entry.IsPresent() && entry.IsHuge());
  FrameId head = entry.frame();
  allocator.IncRef(head);
  if (entry.IsWritable()) {
    Pte protected_entry = entry.WithoutFlag(kPteWritable);
    StoreEntry(parent_slot, protected_entry);
    entry = protected_entry;
  }
  StoreEntry(child_slot, entry);
  if (rmap != nullptr) {
    rmap->Add(head, child_slot, /*huge=*/true);
  }
  if (counters != nullptr) {
    ++counters->huge_entries_copied;
  }
  CountVm(VmCounter::k_fork_huge_entries_copied);
}

namespace {

// Fallback when the child's PTE table for `chunk` cannot be allocated: share the parent's
// table on-demand-fork style (zero allocation below the PMD) instead of failing the fork.
// The chunk then COWs lazily exactly like an ODF chunk would. Returns false when even the
// child's upper-level path to the PMD entry cannot be built.
bool ShareChunkFallback(AddressSpace& parent, AddressSpace& child, Vaddr chunk,
                        uint64_t* parent_pmd, ForkCounters* counters) {
  FrameAllocator& allocator = parent.allocator();
  uint64_t* child_pmd = child.walker().TryEnsureEntry(child.pgd(), chunk, PtLevel::kPmd);
  if (child_pmd == nullptr) {
    return false;
  }
  ODF_DCHECK(!LoadEntry(child_pmd).IsPresent());
  Pte pmd = LoadEntry(parent_pmd);
  FrameId table = pmd.frame();
  allocator.IncPtShare(table);
  Pte shared_entry = pmd.WithoutFlag(kPteWritable);
  StoreEntry(parent_pmd, shared_entry);
  StoreEntry(child_pmd, shared_entry);
  if (counters != nullptr) {
    ++counters->pte_tables_shared;
  }
  CountVm(VmCounter::k_pte_tables_shared);
  CountVm(VmCounter::k_fork_degrade_classic);
  ODF_TRACE(pte_table_shared, parent.owner_pid(), table);
  ODF_TRACE(fork_degrade_classic, parent.owner_pid(), chunk,
            static_cast<uint64_t>(DegradeFlavor::kClassicShareTable));
  return true;
}

}  // namespace

bool ClassicCopyPageTables(AddressSpace& parent, AddressSpace& child, ForkProfile* profile,
                           ForkCounters* counters) {
  FrameAllocator& allocator = parent.allocator();
  Walker& parent_walker = parent.walker();
  Walker& child_walker = child.walker();
  // Chunks that degraded to table sharing: later VMAs overlapping the same 2 MiB chunk are
  // already fully covered by the shared table and must not copy into it.
  std::set<Vaddr> shared_chunks;

  for (const auto& [start, vma] : parent.vmas()) {
    bool wrprotect = vma.kind != VmaKind::kFileShared;
    for (Vaddr chunk = EntryBase(vma.start, PtLevel::kPmd); chunk < vma.end;
         chunk += kPteTableSpan) {
      if (shared_chunks.count(chunk) != 0) {
        continue;
      }
      // If an earlier kOnDemandHuge fork left this PUD span's PMD table shared, classic
      // fork must not mutate the shared copy: dedicate it for the parent first.
      if (!EnsureExclusivePmdPath(parent, chunk, AllocPolicy::kTry)) {
        return false;
      }
      uint64_t* parent_pmd = parent_walker.FindEntry(parent.pgd(), chunk, PtLevel::kPmd);
      if (parent_pmd == nullptr) {
        continue;
      }
      Pte pmd = LoadEntry(parent_pmd);
      if (!pmd.IsPresent()) {
        continue;
      }

      if (pmd.IsHuge()) {
        uint64_t* child_pmd =
            child_walker.TryEnsureEntry(child.pgd(), chunk, PtLevel::kPmd);
        if (child_pmd == nullptr) {
          return false;
        }
        if (!LoadEntry(child_pmd).IsPresent()) {
          CopyHugeEntry(allocator, child.rmap(), parent_pmd, child_pmd, counters);
        }
        continue;
      }

      // If the parent is itself sharing this table from an earlier on-demand-fork, classic
      // fork must not mutate the shared copy on other processes' behalf: dedicate first.
      if (allocator.GetMeta(pmd.frame()).pt_share_count.load(std::memory_order_acquire) > 1) {
        if (DedicatePteTable(parent, chunk, parent_pmd, AllocPolicy::kTry) ==
            kInvalidFrame) {
          return false;
        }
        pmd = LoadEntry(parent_pmd);
      }
      uint64_t* src = allocator.TableEntries(pmd.frame());

      Vaddr lo = std::max(chunk, vma.start);
      Vaddr hi = std::min(chunk + kPteTableSpan, vma.end);

      Stopwatch alloc_sw;
      uint64_t* first_child_slot =
          child_walker.TryEnsureEntry(child.pgd(), lo, PtLevel::kPte);
      if (first_child_slot == nullptr) {
        // Could not build the child's copy of this chunk — degrade to sharing the parent's
        // table (the on-demand-fork mechanism as a zero-allocation fallback).
        if (!ShareChunkFallback(parent, child, chunk, parent_pmd, counters)) {
          return false;
        }
        shared_chunks.insert(chunk);
        continue;
      }
      uint64_t* dst = first_child_slot - TableIndex(lo, PtLevel::kPte);
      if (profile != nullptr) {
        profile->table_alloc_ns += alloc_sw.ElapsedNanos();
        ++profile->pte_tables_visited;
        CopyPteSliceProfiled(allocator, parent.swap_space(), child.rmap(), src, dst, lo, hi,
                             wrprotect, profile, counters);
      } else {
        CopyPteSliceFused(allocator, parent.swap_space(), child.rmap(), src, dst, lo, hi,
                          wrprotect, counters);
      }
    }
  }
  return true;
}

}  // namespace odf
