// The fork engines: classic fork (copy every last-level entry, per-page refcounts — what
// Linux does) and on-demand-fork (share last-level tables, defer copying to faults — the
// paper's contribution). Both operate on the simulated mm (AddressSpace).
#ifndef ODF_SRC_CORE_FORK_H_
#define ODF_SRC_CORE_FORK_H_

#include <atomic>
#include <cstdint>

#include "src/mm/address_space.h"

namespace odf {

enum class ForkMode {
  kClassic,       // Traditional fork: copy PTE tables eagerly, COW data pages.
  kOnDemand,      // On-demand-fork: share PTE tables, COW them at fault time.
  kOnDemandHuge,  // Extension sketched in §4 "Huge Page Support": additionally share PMD
                  // tables (which describe 2 MiB pages directly), write-protecting at the
                  // PUD level. Tables then COW lazily at two levels.
};

// Cost attribution for the fork invocation, mirroring the perf-events breakdown of Fig. 3.
// Filled when a profile pointer is passed to CopyAddressSpace (the instrumented path times
// each sub-operation in separate batched passes per table).
struct ForkProfile {
  uint64_t pte_entries_copied = 0;
  uint64_t pte_tables_visited = 0;
  uint64_t huge_entries_copied = 0;
  uint64_t meta_resolve_ns = 0;  // compound_head() analog: first touch of PageMeta.
  uint64_t refcount_ns = 0;      // page_ref_inc() analog: atomic increments.
  uint64_t entry_copy_ns = 0;    // Writing protected entries to both tables.
  uint64_t table_alloc_ns = 0;   // Allocating child PTE tables.
  uint64_t upper_level_ns = 0;   // Copying PGD/PUD/PMD structure.
  uint64_t total_ns = 0;

  uint64_t AttributedNs() const {
    return meta_resolve_ns + refcount_ns + entry_copy_ns + table_alloc_ns + upper_level_ns;
  }
};

// Counters the fork paths bump; exposed for tests and the Fig. 2 scalability analysis.
struct ForkCounters {
  // Atomic: forks of independent processes may run concurrently (§4 "Thread Safety").
  std::atomic<uint64_t> classic_forks{0};
  std::atomic<uint64_t> on_demand_forks{0};
  std::atomic<uint64_t> pte_entries_copied{0};
  std::atomic<uint64_t> pte_tables_shared{0};
  std::atomic<uint64_t> pmd_tables_shared{0};  // kOnDemandHuge only.
  std::atomic<uint64_t> huge_entries_copied{0};
};

// Duplicates `parent`'s virtual memory into `child` (a freshly constructed, empty address
// space) according to `mode`. The VMA list is copied either way; the difference is entirely
// in how last-level page tables are treated:
//
//   kClassic:  allocate a child PTE table per parent PTE table; for every present entry,
//              resolve the page's metadata, atomically take a page reference, write-protect
//              private mappings in both copies. Shared-file entries keep their write bit.
//
//   kOnDemand: copy only the upper three levels; each parent PTE table gets its share count
//              incremented and both parent and child PMD entries write-protected (§3.1).
//              Huge (PMD-level) mappings are copied eagerly like classic fork, matching the
//              paper's 4 KiB-only implementation scope (§4).
//
// The parent's TLB is fully flushed (its translations may have lost write permission).
//
// Returns false when a required allocation fails mid-copy (ENOMEM after reclaim, or an
// injected page_table_alloc failure). Table-allocation failures degrade gracefully where a
// zero-allocation sharing fallback exists (see DegradeFlavor in src/mm/fault.h); when no
// fallback applies the copy stops. Either way every page/table reference the child holds is
// reachable through the child's page tables, so the caller rolls back with
// child.TearDown() and the parent is left fully intact (its write-protected entries are
// benign: the fault path re-enables or COWs them on the next write). See docs/robustness.md.
bool CopyAddressSpace(AddressSpace& parent, AddressSpace& child, ForkMode mode,
                      ForkProfile* profile = nullptr, ForkCounters* counters = nullptr);

const char* ForkModeName(ForkMode mode);

}  // namespace odf

#endif  // ODF_SRC_CORE_FORK_H_
