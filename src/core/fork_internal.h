// Internal entry points shared between the fork engine translation units.
#ifndef ODF_SRC_CORE_FORK_INTERNAL_H_
#define ODF_SRC_CORE_FORK_INTERNAL_H_

#include "src/core/fork.h"

namespace odf {

// Classic fork's copy_page_range analog (fork_classic.cc). Returns false on an
// unrecoverable mid-copy allocation failure (child partially built; caller tears it down).
// A failed child PTE-table allocation degrades to ODF-style sharing of the parent's table
// for that chunk instead of failing the fork (DegradeFlavor::kClassicShareTable).
bool ClassicCopyPageTables(AddressSpace& parent, AddressSpace& child, ForkProfile* profile,
                           ForkCounters* counters);

// On-demand-fork's share-last-level walk (fork_odf.cc). With share_pmd_tables, PMD tables
// are shared as well (the §4 huge-page generalization). Returns false on an unrecoverable
// mid-copy allocation failure. A failed child PMD-table allocation degrades to sharing the
// parent's whole PMD table write-protected at the PUD (DegradeFlavor::kOdfSharePmd) — the
// kOnDemandHuge mechanism used as a zero-allocation fallback.
bool OnDemandSharePageTables(AddressSpace& parent, AddressSpace& child, ForkProfile* profile,
                             ForkCounters* counters, bool share_pmd_tables);

// Copies a huge (PMD-level) mapping entry from `parent_slot` into `child_slot`: takes a
// reference on the compound page, write-protects private mappings in both entries, and
// registers the child's new mapping in the reverse map (`rmap` may be nullptr).
// Shared-file huge mappings are not supported (matches AddressSpace).
void CopyHugeEntry(FrameAllocator& allocator, reclaim::RmapRegistry* rmap,
                   uint64_t* parent_slot, uint64_t* child_slot, ForkCounters* counters);

}  // namespace odf

#endif  // ODF_SRC_CORE_FORK_INTERNAL_H_
