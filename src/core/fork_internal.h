// Internal entry points shared between the fork engine translation units.
#ifndef ODF_SRC_CORE_FORK_INTERNAL_H_
#define ODF_SRC_CORE_FORK_INTERNAL_H_

#include "src/core/fork.h"

namespace odf {

// Classic fork's copy_page_range analog (fork_classic.cc).
void ClassicCopyPageTables(AddressSpace& parent, AddressSpace& child, ForkProfile* profile,
                           ForkCounters* counters);

// On-demand-fork's share-last-level walk (fork_odf.cc). With share_pmd_tables, PMD tables
// are shared as well (the §4 huge-page generalization).
void OnDemandSharePageTables(AddressSpace& parent, AddressSpace& child, ForkProfile* profile,
                             ForkCounters* counters, bool share_pmd_tables);

// Copies a huge (PMD-level) mapping entry from `parent_slot` into `child_slot`: takes a
// reference on the compound page and write-protects private mappings in both entries.
// Shared-file huge mappings are not supported (matches AddressSpace).
void CopyHugeEntry(FrameAllocator& allocator, uint64_t* parent_slot, uint64_t* child_slot,
                   ForkCounters* counters);

}  // namespace odf

#endif  // ODF_SRC_CORE_FORK_INTERNAL_H_
