#include "src/mm/address_space.h"

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "src/mm/range_ops.h"
#include "src/reclaim/mm_gate.h"
#include "src/reclaim/rmap.h"
#include "src/replay/recorder.h"
#include "src/util/log.h"

namespace odf {

namespace {

// Base of the bump region for address assignment; matches the spirit of mmap_base.
constexpr Vaddr kMmapBase = 0x0000'1000'0000ULL;
// Guard gap between consecutive mappings so off-by-one accesses fault in tests.
constexpr Vaddr kGuardGap = kPageSize;

}  // namespace

AddressSpace::AddressSpace(FrameAllocator* allocator, SwapSpace* swap,
                           reclaim::RmapRegistry* rmap)
    : allocator_(allocator),
      swap_(swap),
      rmap_(rmap),
      walker_(allocator),
      pgd_(AllocPageTable(*allocator)),
      mmap_cursor_(kMmapBase) {}

AddressSpace::~AddressSpace() { TearDown(); }

void AddressSpace::TearDown() {
  if (torn_down_) {
    return;
  }
  // No AS-gate acquisition here: teardown's callers guarantee no thread is concurrently
  // driving this address space (one driver thread per process; the OOM killer's victim is
  // never the process whose allocation is being serviced). Skipping the gate is what lets
  // the OOM path reap a victim while other threads sit at quota-wait points holding their
  // own AS gates. The MmGate still excludes the shrinker while frames are released.
  reclaim::MmGate::SharedScope gate;
  std::vector<std::pair<Vaddr, Vaddr>> ranges;
  ranges.reserve(vmas_.size());
  for (const auto& [start, vma] : vmas_) {
    ranges.emplace_back(vma.start, vma.end);
  }
  vmas_.clear();  // Cleared first so ZapRange's live-VMA checks see a dying space.
  for (const auto& [start, end] : ranges) {
    ZapRange(*this, start, end);
  }
  FreePageTables(*this);
  torn_down_ = true;
}

Vaddr AddressSpace::AllocateRange(uint64_t length, uint64_t alignment, Vaddr hint) {
  auto is_free = [&](Vaddr start) {
    Vaddr end = start + length;
    if (end > kUserAddressSpaceEnd) {
      return false;
    }
    auto it = vmas_.upper_bound(start);
    if (it != vmas_.begin() && std::prev(it)->second.end + kGuardGap > start) {
      return false;
    }
    return it == vmas_.end() || it->second.start >= end + kGuardGap;
  };

  if (hint != 0) {
    Vaddr aligned = hint & ~(alignment - 1);
    if (aligned == hint && is_free(hint)) {
      return hint;
    }
  }
  Vaddr candidate = (mmap_cursor_ + alignment - 1) & ~(alignment - 1);
  while (!is_free(candidate)) {
    // Skip past the colliding VMA.
    auto it = vmas_.upper_bound(candidate);
    Vaddr next = (it != vmas_.begin()) ? std::prev(it)->second.end + kGuardGap : candidate;
    if (it != vmas_.end() && it->second.start < candidate + length + kGuardGap) {
      next = std::max(next, it->second.end + kGuardGap);
    }
    ODF_CHECK(next > candidate) << "address space exhausted";
    candidate = (next + alignment - 1) & ~(alignment - 1);
  }
  mmap_cursor_ = candidate + length + kGuardGap;
  return candidate;
}

void AddressSpace::InsertVma(VmArea vma) {
  ODF_DCHECK(vma.start < vma.end);
  vmas_.emplace(vma.start, std::move(vma));
}

Vaddr AddressSpace::MapAnonymous(uint64_t length, uint32_t prot, bool huge, Vaddr hint) {
  MmLockTable::WriteScope ws(locks_);  // Layout mutation: excludes faulters and readers.
  reclaim::MmGate::SharedScope gate;
  ODF_CHECK(length > 0);
  uint64_t granule = huge ? kHugePageSize : kPageSize;
  length = (length + granule - 1) & ~(granule - 1);
  Vaddr start = AllocateRange(length, granule, hint);
  VmArea vma;
  vma.start = start;
  vma.end = start + length;
  vma.prot = prot;
  vma.kind = VmaKind::kAnonPrivate;
  vma.huge = huge;
  InsertVma(std::move(vma));
  return start;
}

Vaddr AddressSpace::MapFile(std::shared_ptr<MemFile> file, uint64_t file_offset,
                            uint64_t length, uint32_t prot, bool shared, Vaddr hint) {
  MmLockTable::WriteScope ws(locks_);
  reclaim::MmGate::SharedScope gate;
  ODF_CHECK(file != nullptr);
  ODF_CHECK(length > 0);
  ODF_CHECK(file_offset % kPageSize == 0) << "file offset must be page-aligned";
  length = PageAlignUp(length);
  Vaddr start = AllocateRange(length, kPageSize, hint);
  VmArea vma;
  vma.start = start;
  vma.end = start + length;
  vma.prot = prot;
  vma.kind = shared ? VmaKind::kFileShared : VmaKind::kFilePrivate;
  vma.file = std::move(file);
  vma.file_offset = file_offset;
  InsertVma(std::move(vma));
  return start;
}

VmArea* AddressSpace::FindVma(Vaddr va) {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  VmArea& vma = std::prev(it)->second;
  return vma.Contains(va) ? &vma : nullptr;
}

void AddressSpace::SplitVmaAt(Vaddr va) {
  VmArea* vma = FindVma(va);
  if (vma == nullptr || vma->start == va) {
    return;
  }
  if (vma->huge) {
    ODF_CHECK(IsHugeAligned(va)) << "huge VMAs can only be split at 2 MiB boundaries";
  }
  ODF_CHECK(IsPageAligned(va));
  VmArea tail = *vma;
  tail.start = va;
  if (tail.IsFileBacked()) {
    tail.file_offset = vma->file_offset + (va - vma->start);
  }
  vma->end = va;
  InsertVma(std::move(tail));
}

void AddressSpace::Unmap(Vaddr start, uint64_t length) {
  MmLockTable::WriteScope ws(locks_);  // Reentrant: Remap shrinks via Unmap.
  reclaim::MmGate::SharedScope gate;
  ODF_CHECK(IsPageAligned(start));
  length = PageAlignUp(length);
  Vaddr end = start + length;
  SplitVmaAt(start);
  SplitVmaAt(end);
  // Remove every VMA inside [start, end) before zapping so the §3.3 live-VMA checks reflect
  // the post-unmap world.
  for (auto it = vmas_.lower_bound(start); it != vmas_.end() && it->second.start < end;) {
    ODF_CHECK(it->second.end <= end) << "VMA split failed to produce aligned pieces";
    it = vmas_.erase(it);
  }
  ZapRange(*this, start, end);
}

Vaddr AddressSpace::Remap(Vaddr old_start, uint64_t old_length, uint64_t new_length) {
  MmLockTable::WriteScope ws(locks_);
  reclaim::MmGate::SharedScope gate;
  ODF_CHECK(IsPageAligned(old_start));
  old_length = PageAlignUp(old_length);
  new_length = PageAlignUp(new_length);
  ODF_CHECK(new_length > 0);

  SplitVmaAt(old_start);
  SplitVmaAt(old_start + old_length);
  VmArea* vma = FindVma(old_start);
  ODF_CHECK(vma != nullptr && vma->start == old_start && vma->end == old_start + old_length)
      << "mremap range must cover exactly one mapping";
  ODF_CHECK(!vma->huge) << "mremap of huge mappings is not supported";

  if (new_length == old_length) {
    return old_start;
  }
  if (new_length < old_length) {
    Unmap(old_start + new_length, old_length - new_length);
    return old_start;
  }

  // Try growing in place.
  Vaddr wanted_end = old_start + new_length;
  auto next = vmas_.upper_bound(old_start);
  bool room = (next == vmas_.end() || next->second.start >= wanted_end + kGuardGap) &&
              wanted_end <= kUserAddressSpaceEnd;
  if (room) {
    vma->end = wanted_end;
    return old_start;
  }

  // Move the mapping: relocate page-table entries, never data pages.
  VmArea moved = *vma;
  vmas_.erase(old_start);
  Vaddr new_start = AllocateRange(new_length, kPageSize, 0);
  MovePageRange(*this, old_start, new_start, old_length);
  ZapRange(*this, old_start, old_start + old_length);  // Frees now-empty tables.
  moved.start = new_start;
  moved.end = new_start + new_length;
  InsertVma(std::move(moved));
  return new_start;
}

void AddressSpace::Protect(Vaddr start, uint64_t length, uint32_t prot) {
  MmLockTable::WriteScope ws(locks_);
  reclaim::MmGate::SharedScope gate;
  ODF_CHECK(IsPageAligned(start));
  length = PageAlignUp(length);
  Vaddr end = start + length;
  SplitVmaAt(start);
  SplitVmaAt(end);
  for (auto it = vmas_.lower_bound(start); it != vmas_.end() && it->second.start < end; ++it) {
    it->second.prot = prot;
  }
  ProtectRange(*this, start, end, prot);
}

void AddressSpace::AdviseDontNeed(Vaddr start, uint64_t length) {
  MmLockTable::WriteScope ws(locks_);
  reclaim::MmGate::SharedScope gate;
  ODF_CHECK(IsPageAligned(start));
  length = PageAlignUp(length);
  Vaddr end = start + length;
  // The range must be fully mapped (we do not model EFAULT semantics for holes).
  for (Vaddr va = start; va < end;) {
    VmArea* vma = FindVma(va);
    ODF_CHECK(vma != nullptr) << "madvise over unmapped address " << va;
    if (vma->huge) {
      ODF_CHECK(IsHugeAligned(va) && (end - va) % kHugePageSize == 0)
          << "MADV_DONTNEED on huge mappings must be 2 MiB-granular";
    }
    va = vma->end;
  }
  // Dropping translations while keeping the VMAs is exactly a zap: the next touch
  // demand-faults fresh (zero / page-cache) content.
  ZapRange(*this, start, end);
}

void AddressSpace::Mincore(Vaddr start, uint64_t length, std::vector<uint8_t>* out) {
  MmLockTable::ReadScope rs(locks_);  // Pure reader: excludes layout mutators only.
  reclaim::MmGate::SharedScope gate;
  ODF_CHECK(IsPageAligned(start));
  length = PageAlignUp(length);
  out->assign(length / kPageSize, 0);
  for (uint64_t i = 0; i < out->size(); ++i) {
    Vaddr va = start + i * kPageSize;
    uint64_t* pmd_slot = walker_.FindEntry(pgd_, va, PtLevel::kPmd);
    if (pmd_slot == nullptr) {
      continue;
    }
    Pte pmd = LoadEntry(pmd_slot);
    if (!pmd.IsPresent()) {
      continue;
    }
    if (pmd.IsHuge()) {
      (*out)[i] = 1;
      continue;
    }
    uint64_t* entries = allocator_->TableEntries(pmd.frame());
    Pte entry = LoadEntry(&entries[TableIndex(va, PtLevel::kPte)]);
    if (entry.IsPresent()) {
      (*out)[i] = 1;
    } else if (entry.IsSwap()) {
      (*out)[i] = 2;
    }
  }
}

void AddressSpace::PopulateRange(Vaddr start, uint64_t length) {
  replay::OpScope op(OpKind::k_populate, owner_pid_);
  op.Arg(start).Arg(length);
  // Exclusive even though populate only installs: it direct-fills whole tables without the
  // fault path's shard locks, so concurrent faulters must be excluded outright. Holding the
  // gate across the quota-wait inside the batch allocations is sound because neither the
  // shrinker nor the OOM killer ever acquires an address-space gate.
  MmLockTable::WriteScope ws(locks_);
  reclaim::MmGate::SharedScope gate;
  if (owner_pid_ == 0) {
    op.Cancel();  // Not reached through a Process: not a schedule entry.
  }
  Vaddr end = start + length;
  VmArea* vma = FindVma(start);
  ODF_CHECK(vma != nullptr && end <= vma->end) << "populate range must be inside one VMA";

  // Populate installs entries; like the fault handler, it must never write into tables
  // shared with other processes (their VMA layouts may differ).
  for (Vaddr chunk = EntryBase(start, PtLevel::kPmd); chunk < end; chunk += kPteTableSpan) {
    EnsureExclusivePmdPath(*this, chunk);
    uint64_t* pmd_slot = walker_.FindEntry(pgd_, chunk, PtLevel::kPmd);
    if (pmd_slot != nullptr) {
      Pte pmd = LoadEntry(pmd_slot);
      if (pmd.IsPresent() && !pmd.IsHuge() &&
          allocator_->GetMeta(pmd.frame()).pt_share_count.load(std::memory_order_acquire) >
              1) {
        DedicatePteTable(*this, chunk, pmd_slot);
      }
    }
  }

  if (vma->huge) {
    for (Vaddr va = start; va < end; va += kHugePageSize) {
      uint64_t* pmd_slot = walker_.EnsureEntry(pgd_, va, PtLevel::kPmd);
      if (LoadEntry(pmd_slot).IsPresent()) {
        continue;
      }
      FrameId head = allocator_->AllocateCompound(kPageFlagAnon | kPageFlagZeroFill);
      uint64_t flags = kPtePresent | kPteUser | kPteAccessed | kPteHuge;
      if (vma->IsWritable()) {
        flags |= kPteWritable;
      }
      StoreEntry(pmd_slot, Pte::Make(head, flags));
      if (rmap_ != nullptr) {
        rmap_->Add(head, pmd_slot, /*huge=*/true);
      }
    }
    return;
  }

  for (Vaddr chunk = start; chunk < end;) {
    Vaddr chunk_end = std::min(end, EntryBase(chunk, PtLevel::kPmd) + kPteTableSpan);
    uint64_t* first_slot = walker_.EnsureEntry(pgd_, chunk, PtLevel::kPte);
    ODF_CHECK(first_slot != nullptr);
    // Direct-fill the table: the slot pointer is interior to the table's entry array.
    uint64_t* entries = first_slot - TableIndex(chunk, PtLevel::kPte);
    if (vma->kind == VmaKind::kAnonPrivate) {
      // Batch-allocate a frame for every absent slot in this chunk: one shared-pool lock
      // round-trip per table instead of one allocation per page.
      std::array<uint64_t*, kEntriesPerTable> slots;
      size_t absent = 0;
      for (Vaddr va = chunk; va < chunk_end; va += kPageSize) {
        uint64_t* slot = &entries[TableIndex(va, PtLevel::kPte)];
        Pte entry = LoadEntry(slot);
        // Poisoned VAs stay dead: populate must not resurrect a page lost to a memory
        // error (the touching process gets kHwPoison on access instead).
        if (!entry.IsPresent() && !entry.IsHwPoison()) {
          slots[absent++] = slot;
        }
      }
      std::array<FrameId, kEntriesPerTable> frames;
      allocator_->AllocateBatch(kPageFlagAnon | kPageFlagZeroFill,
                                std::span<FrameId>(frames.data(), absent));
      uint64_t flags = kPtePresent | kPteUser | kPteAccessed;
      if (vma->IsWritable()) {
        flags |= kPteWritable;
      }
      for (size_t k = 0; k < absent; ++k) {
        StoreEntry(slots[k], Pte::Make(frames[k], flags));
        if (rmap_ != nullptr) {
          rmap_->Add(frames[k], slots[k]);
        }
      }
      chunk = chunk_end;
      continue;
    }
    for (Vaddr va = chunk; va < chunk_end; va += kPageSize) {
      uint64_t* slot = &entries[TableIndex(va, PtLevel::kPte)];
      Pte existing = LoadEntry(slot);
      if (existing.IsPresent() || existing.IsHwPoison()) {
        continue;
      }
      uint64_t flags = kPtePresent | kPteUser | kPteAccessed;
      FrameId cache_frame = vma->file->GetPage(vma->FilePageIndex(va));
      allocator_->IncRef(cache_frame);
      if (vma->kind == VmaKind::kFileShared && vma->IsWritable()) {
        flags |= kPteWritable;
      }
      StoreEntry(slot, Pte::Make(cache_frame, flags));
      if (rmap_ != nullptr) {
        rmap_->Add(cache_frame, slot);
      }
    }
    chunk = chunk_end;
  }
}

void AddressSpace::AdoptVmaForFork(const VmArea& vma) {
  ODF_DCHECK(FindVma(vma.start) == nullptr && FindVma(vma.end - 1) == nullptr);
  InsertVma(vma);
  mmap_cursor_ = std::max(mmap_cursor_, vma.end + kGuardGap);
}

uint64_t AddressSpace::MappedBytes() const {
  uint64_t total = 0;
  for (const auto& [start, vma] : vmas_) {
    total += vma.length();
  }
  return total;
}

uint64_t AddressSpace::CountPresentPtes() {
  uint64_t count = 0;
  for (const auto& [start, vma] : vmas_) {
    for (Vaddr chunk = EntryBase(vma.start, PtLevel::kPmd); chunk < vma.end;
         chunk += kPteTableSpan) {
      uint64_t* pmd_slot = walker_.FindEntry(pgd_, chunk, PtLevel::kPmd);
      if (pmd_slot == nullptr) {
        continue;
      }
      Pte pmd = LoadEntry(pmd_slot);
      if (!pmd.IsPresent()) {
        continue;
      }
      if (pmd.IsHuge()) {
        count += kEntriesPerTable;
        continue;
      }
      uint64_t* entries = allocator_->TableEntries(pmd.frame());
      Vaddr lo = std::max(chunk, vma.start);
      Vaddr hi = std::min(chunk + kPteTableSpan, vma.end);
      for (Vaddr va = lo; va < hi; va += kPageSize) {
        if (LoadEntry(&entries[TableIndex(va, PtLevel::kPte)]).IsPresent()) {
          ++count;
        }
      }
    }
  }
  return count;
}

}  // namespace odf
