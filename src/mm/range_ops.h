// Page-table range operations shared by fork, munmap, mremap, mprotect and exit teardown.
//
// This is where the paper's last-level page-table lifecycle (§3.5), unmap/remap COW (§3.3)
// and table-refcount-based page accounting (§3.6) are implemented.
#ifndef ODF_SRC_MM_RANGE_OPS_H_
#define ODF_SRC_MM_RANGE_OPS_H_

#include "src/mm/address_space.h"
#include "src/util/mutex.h"

namespace odf {

// Split page-table locks (the kernel's per-table spinlock analog): serialize structural
// mutation of a PTE table that may be shared across address spaces. An annotated
// capability: lock sites use debug::MutexGuard, so the analysis sees the RAII extent.
util::Mutex& PtSplitLock(FrameId table);

// How a range operation allocates the page-table frames it needs.
//   kNoFail — abort on hard OOM, never consult fault injection (teardown/rollback paths
//             MUST use this: rollback cannot itself fail).
//   kTry    — use fallible allocation; the operation reports failure (kInvalidFrame /
//             false) and leaves all page tables in a consistent, unmodified state.
enum class AllocPolicy { kNoFail, kTry };

// Drops one address-space reference to a PTE table (§3.5). The last dropper releases the
// page references held on behalf of all sharers (§3.6), retires the table's leaf entries
// from the reverse map (`rmap` may be nullptr), and frees the table frame.
void DropPteTableReference(FrameAllocator& allocator, SwapSpace* swap,
                           reclaim::RmapRegistry* rmap, FrameId table);

// Drops one reference to a PMD table (the §4 huge-page extension: kOnDemandHuge shares PMD
// tables). The last dropper releases everything the table references — huge compound pages
// and PTE-table references — and frees the table frame.
void DropPmdTableReference(FrameAllocator& allocator, SwapSpace* swap,
                           reclaim::RmapRegistry* rmap, FrameId table);

// Copy-on-write of a shared PMD table for `as` (§4 extension): analogous to
// DedicatePteTable one level up. The private copy takes a reference on each huge compound
// page and each PTE table; entries in BOTH copies are write-protected so the next level
// still COWs lazily. `pud_span_base` is the 1 GiB-aligned base the PUD entry covers.
// Under AllocPolicy::kTry, returns kInvalidFrame when the private table cannot be
// allocated; the shared table and the PUD entry are left untouched.
FrameId DedicatePmdTable(AddressSpace& as, Vaddr pud_span_base, uint64_t* pud_slot,
                         AllocPolicy policy = AllocPolicy::kNoFail);

// Makes the PMD table covering `va` exclusive to `as` (dedicating it if shared). Required
// before any structural mutation below the PUD entry (zap, remap, protect, classic fork).
// Returns false only under AllocPolicy::kTry when the dedication allocation failed.
bool EnsureExclusivePmdPath(AddressSpace& as, Vaddr va,
                            AllocPolicy policy = AllocPolicy::kNoFail);

// Copy-on-write of a shared PTE table for `as` (§3.4): allocates a private table, copies all
// 512 entries (preserving accessed bits, clearing writable in BOTH copies so data pages stay
// COW-protected), takes one reference per mapped page, repoints `pmd_slot`, drops one share
// from the old table, and flushes the 2 MiB region from this address space's TLB.
//
// If the share count has already dropped to 1 (the other sharers dedicated or exited), no
// copy is needed: the PMD entry is simply write-enabled again ("fixup"). Returns the table
// the PMD entry points at afterwards. Under AllocPolicy::kTry, returns kInvalidFrame when
// the private table cannot be allocated; the shared table and PMD entry are left untouched
// (the fixup path needs no allocation and always succeeds).
FrameId DedicatePteTable(AddressSpace& as, Vaddr chunk_base, uint64_t* pmd_slot,
                         AllocPolicy policy = AllocPolicy::kNoFail);

// Drops one reference to the data frame mapped by a leaf entry (4 KiB page or, for
// `huge`, a 2 MiB compound head).
void PutMappedPage(FrameAllocator& allocator, Pte entry, bool huge);

// Removes all translations in [start, end). Must run after the VMAs covering the range have
// been removed from the address-space map (the live-VMA check for §3.3 relies on it).
// Shared PTE tables whose 2 MiB span no longer backs any live VMA are dropped whole; shared
// tables still needed by a neighbouring VMA are dedicated first and zapped partially.
void ZapRange(AddressSpace& as, Vaddr start, Vaddr end);

// Moves translations of [old_start, old_start+length) to new_start (mremap). Shared PTE
// tables touched on either side are dedicated first (§3.3). Data pages are not copied.
void MovePageRange(AddressSpace& as, Vaddr old_start, Vaddr new_start, uint64_t length);

// Applies a protection downgrade to present translations in [start, end) (mprotect).
// Write-permission removal clears writable bits in dedicated tables; shared tables are
// already write-protected at the PMD and need no structural change.
void ProtectRange(AddressSpace& as, Vaddr start, Vaddr end, uint32_t prot);

// Frees the upper-level paging skeleton (PGD/PUD/PMD tables) after all VMAs were zapped.
// Defensively releases any leftover leaf state.
void FreePageTables(AddressSpace& as);

// True if any live VMA overlaps [lo, hi).
bool RangeHasLiveVma(const AddressSpace& as, Vaddr lo, Vaddr hi);

}  // namespace odf

#endif  // ODF_SRC_MM_RANGE_OPS_H_
