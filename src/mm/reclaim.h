// Page reclaim: a clock (second-chance) algorithm over the accessed bits the software MMU
// maintains, swapping out cold single-owner anonymous pages. This is the "kernel takes
// appropriate action to free more pages" half of the paper's §4 robustness story; the OOM
// killer lives in the Kernel facade.
#ifndef ODF_SRC_MM_RECLAIM_H_
#define ODF_SRC_MM_RECLAIM_H_

#include "src/mm/address_space.h"
#include "src/mm/swap.h"

namespace odf {

// One clock pass over `as`: pages with the accessed bit set get a second chance (the bit is
// cleared); cold pages are swapped out (or simply dropped if their content is still
// logical-zero). Only 4 KiB private-anonymous pages with refcount 1 living in dedicated
// tables are eligible — pages visible through shared PTE tables are skipped, as the
// reclaimer has no reverse map for sharers. Returns the number of frames freed.
uint64_t ClockReclaimAddressSpace(AddressSpace& as, SwapSpace& swap, uint64_t want);

}  // namespace odf

#endif  // ODF_SRC_MM_RECLAIM_H_
