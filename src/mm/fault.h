// The page-fault handler: demand paging, data-page COW, and — the paper's contribution —
// copy-on-write of shared last-level page tables (§3.4).
#ifndef ODF_SRC_MM_FAULT_H_
#define ODF_SRC_MM_FAULT_H_

#include "src/mm/address_space.h"

namespace odf {

enum class FaultResult {
  kHandled,      // Translation now succeeds; retry the access.
  kSegvUnmapped, // No VMA covers the address.
  kSegvProt,     // The VMA forbids this access.
};

// Resolves all fault causes for an access to `va` until the translation succeeds or the
// access is found to be illegal. On success the final translation is inserted into the TLB
// and `frame_out` (if non-null) receives the 4 KiB frame.
FaultResult HandleFault(AddressSpace& as, Vaddr va, AccessType access,
                        FrameId* frame_out = nullptr);

}  // namespace odf

#endif  // ODF_SRC_MM_FAULT_H_
