// The page-fault handler: demand paging, data-page COW, and — the paper's contribution —
// copy-on-write of shared last-level page tables (§3.4).
#ifndef ODF_SRC_MM_FAULT_H_
#define ODF_SRC_MM_FAULT_H_

#include "src/mm/address_space.h"
#include "src/reclaim/mm_gate.h"
#include "src/util/thread_annotations.h"

namespace odf {

enum class FaultResult {
  kHandled,          // Translation now succeeds; retry the access.
  kSegvUnmapped,     // No VMA covers the address.
  kSegvProt,         // The VMA forbids this access.
  kOom,              // A required allocation failed (ENOMEM after reclaim, or injected).
  kSwapIoError,      // Swap-in read failed; the swap slot keeps its reference, retry later.
  kRetryExhausted,   // The fault chain did not converge within the retry budget.
  kHwPoison,         // The page was lost to a memory error (SIGBUS/BUS_MCEERR_AR analog):
                     // the PTE is a poison marker and the frame is quarantined. Recoverable
                     // for the kernel; the data at this VA is gone (docs/memory-failure.md).
};

// True for the verdicts where the access did not complete but the address space is
// consistent and the process may continue (the "raises a signal, does not panic" class):
// kOom / kSwapIoError / kRetryExhausted may succeed on retry once memory is freed or
// injection is disarmed; kHwPoison is sticky for the VA but leaves the kernel and every
// other mapping intact. See docs/robustness.md.
//
// Deliberately an exhaustive switch with no default: adding a FaultResult without deciding
// its recoverability is a compile error (-Werror=switch), not a silent misclassification.
inline bool IsRecoverableFault(FaultResult result) {
  switch (result) {
    case FaultResult::kHandled:
    case FaultResult::kSegvUnmapped:
    case FaultResult::kSegvProt:
      return false;
    case FaultResult::kOom:
    case FaultResult::kSwapIoError:
    case FaultResult::kRetryExhausted:
    case FaultResult::kHwPoison:
      return true;
  }
  return false;  // Unreachable for in-range enumerators.
}

// Arg a1 of the fork_degrade_classic tracepoint: which graceful-degradation path fired
// when a compound or page-table allocation failed (docs/robustness.md).
enum class DegradeFlavor : uint64_t {
  kHugeDemand4k = 0,       // Huge demand-install fell back to 4 KiB demand paging.
  kHugeCowSplit = 1,       // Huge COW split the 2 MiB mapping into a PTE table of tails.
  kOdfSharePmd = 2,        // ODF fork shared the whole PMD table instead of a fresh copy.
  kClassicShareTable = 3,  // Classic fork shared a PTE table ODF-style instead of copying.
};

// Resolves all fault causes for an access to `va` until the translation succeeds or the
// access is found to be illegal. On success the final translation is inserted into the TLB
// and `frame_out` (if non-null) receives the 4 KiB frame.
//
// All allocations on this path are fallible (FrameAllocator::TryAllocate and friends): a
// denied allocation yields kOom and a failed swap-device read yields kSwapIoError, with the
// page tables left consistent — nothing is ever half-installed. The retry loop is bounded;
// a chain that does not converge yields kRetryExhausted instead of aborting.
// Lock contract (the L2 slow path in Process::AccessMemory): the per-AS gate shared
// (layout is stable), the covering 2 MiB shard (this range's faults are serialized), and
// the MmGate shared (the evictor is excluded). See docs/debugging.md for the order.
FaultResult HandleFault(AddressSpace& as, Vaddr va, AccessType access,
                        FrameId* frame_out = nullptr)
    ODF_REQUIRES_SHARED(as.locks()) ODF_REQUIRES(as.locks().shard_cap)
        ODF_REQUIRES_SHARED(reclaim::MmGate::Global());

// Splits a present huge PMD mapping into a PTE table of per-4KiB entries onto the same
// compound's tail frames (write-protected; each page then COWs individually). Used by the
// huge-COW degrade path and by memory failure (src/mf), which must take a 2 MiB mapping
// apart to offline a single dead subpage. Returns false when the one table allocation
// fails; a concurrent change of *pmd_slot returns true with nothing mutated (the caller's
// retry loop re-translates). Caller must hold the mutation-side locks of this space.
// Two callers, two regimes the analysis cannot express as one contract: the fault path
// holds {AS gate shared, shard, MmGate shared}; memory-failure holds {MmGate exclusive},
// which by itself excludes every faulting thread. Their intersection — some hold on the
// MmGate — is what the annotation states; the disjunction is enforced at runtime by
// lockdep and MmGate::ThreadHoldsExclusive() checks.
bool SplitHugeMapping(AddressSpace& as, Vaddr chunk_base, uint64_t* pmd_slot)
    ODF_REQUIRES_SHARED(reclaim::MmGate::Global());

}  // namespace odf

#endif  // ODF_SRC_MM_FAULT_H_
