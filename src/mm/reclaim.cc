#include "src/mm/reclaim.h"

#include <algorithm>

#include "src/mm/range_ops.h"
#include "src/reclaim/rmap.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {

uint64_t ClockReclaimAddressSpace(AddressSpace& as, SwapSpace& swap, uint64_t want) {
  FrameAllocator& allocator = as.allocator();
  Walker& walker = as.walker();
  uint64_t freed = 0;

  for (const auto& [start, vma] : as.vmas()) {
    if (vma.kind != VmaKind::kAnonPrivate || vma.huge || freed >= want) {
      continue;
    }
    for (Vaddr chunk = EntryBase(vma.start, PtLevel::kPmd); chunk < vma.end && freed < want;
         chunk += kPteTableSpan) {
      // Skip spans reachable through shared tables (no rmap to fix other sharers' views).
      uint64_t* pud_slot = walker.FindEntry(as.pgd(), chunk, PtLevel::kPud);
      if (pud_slot == nullptr) {
        continue;
      }
      Pte pud = LoadEntry(pud_slot);
      if (!pud.IsPresent() ||
          allocator.GetMeta(pud.frame()).pt_share_count.load(std::memory_order_acquire) > 1) {
        continue;
      }
      uint64_t* pmd_slot = walker.FindEntry(as.pgd(), chunk, PtLevel::kPmd);
      if (pmd_slot == nullptr) {
        continue;
      }
      Pte pmd = LoadEntry(pmd_slot);
      if (!pmd.IsPresent() || pmd.IsHuge() ||
          allocator.GetMeta(pmd.frame()).pt_share_count.load(std::memory_order_acquire) > 1) {
        continue;
      }

      uint64_t* entries = allocator.TableEntries(pmd.frame());
      Vaddr lo = std::max(chunk, vma.start);
      Vaddr hi = std::min(chunk + kPteTableSpan, vma.end);
      for (Vaddr va = lo; va < hi && freed < want; va += kPageSize) {
        uint64_t* slot = &entries[TableIndex(va, PtLevel::kPte)];
        Pte entry = LoadEntry(slot);
        if (!entry.IsPresent()) {
          continue;
        }
        FrameId frame = entry.frame();
        PageMeta& meta = allocator.GetMeta(frame);
        if (meta.IsCompound() || (meta.flags & kPageFlagAnon) == 0 ||
            meta.refcount.load(std::memory_order_acquire) != 1) {
          continue;
        }
        if (entry.IsAccessed()) {
          // Second chance: clear the bit; the page is a victim on the next pass unless the
          // process touches it again (the walker will re-set the bit).
          StoreEntry(slot, entry.WithoutFlag(kPteAccessed));
          as.tlb().InvalidatePage(va);
          continue;
        }
        const std::byte* data = allocator.PeekData(frame);
        if (data == nullptr) {
          // Never materialised: logically zero. Drop it; a refault demand-zeroes.
          if (as.rmap() != nullptr) {
            as.rmap()->Remove(frame, slot);
          }
          StoreEntry(slot, Pte());
        } else {
          // odf-lint: allow(direct-writeback) — legacy clock reclaimer, kept for unit tests.
          SwapSlot swap_slot = swap.TryWriteOut(data);
          if (swap_slot == kInvalidSwapSlot) {
            // Device write failed (injected I/O error): keep the page resident and move on,
            // like the kernel re-activating a page whose writeback failed.
            continue;
          }
          if (as.rmap() != nullptr) {
            as.rmap()->Remove(frame, slot);
          }
          StoreEntry(slot, Pte::MakeSwap(swap_slot));
        }
        // Gen-before-free (mm_locks.h): bump the shard generation while the entry's
        // frame reference is still held, so a lock-free reader that pinned the frame
        // before the rewrite fails its generation recheck instead of keeping a frame
        // that the DecRef below may free and recycle.
        as.tlb().InvalidatePage(va);
        allocator.DecRef(frame);
        ++as.stats().pages_swapped_out;
        CountVm(VmCounter::k_pgswapout);
        ODF_TRACE(page_swap_out, as.owner_pid(), va);
        ++freed;
      }
    }
  }
  return freed;
}

}  // namespace odf
